// Custom kernel through the compiler path: author a kernel as an
// expression DAG (KernelIr), decompose it into an ABB flow graph, inspect
// the composition, and execute it — including a variant with an op outside
// the ABB library that needs CAMEL's programmable fabric.
#include <iostream>

#include "core/arch_config.h"
#include "core/system.h"
#include "common/config_error.h"
#include "dataflow/decomposer.h"
#include "dataflow/kernel_ir.h"
#include "dse/table.h"
#include "workloads/workload.h"

using namespace ara;

namespace {

// A gradient-magnitude kernel with a divide and a square root:
//   gx = (e - w) * 0.5;  gy = (n - s) * 0.5
//   mag = sqrt(gx*gx + gy*gy)
//   out = mag / (center + eps)
dataflow::KernelIr make_gradient_kernel(bool with_trig) {
  dataflow::KernelIr ir(with_trig ? "gradient-oriented" : "gradient", 1024);
  const auto c = ir.input();
  const auto e = ir.input();
  const auto w = ir.input();
  const auto n = ir.input();
  const auto s = ir.input();
  const auto half = ir.constant();
  const auto eps = ir.constant();

  const auto gx = ir.binary(dataflow::IrOp::kMul,
                            ir.binary(dataflow::IrOp::kSub, e, w), half);
  const auto gy = ir.binary(dataflow::IrOp::kMul,
                            ir.binary(dataflow::IrOp::kSub, n, s), half);
  const auto g2 = ir.binary(dataflow::IrOp::kAdd,
                            ir.binary(dataflow::IrOp::kMul, gx, gx),
                            ir.binary(dataflow::IrOp::kMul, gy, gy));
  const auto mag = ir.unary(dataflow::IrOp::kSqrt, g2);
  const auto den = ir.binary(dataflow::IrOp::kAdd, c, eps);
  auto out = ir.binary(dataflow::IrOp::kDiv, mag, den);
  if (with_trig) {
    // Edge orientation via sin() — not in the ABB library; needs the
    // CAMEL programmable fabric.
    out = ir.binary(dataflow::IrOp::kMul, out,
                    ir.unary(dataflow::IrOp::kSin, gx));
  }
  ir.mark_output(out);
  return ir;
}

void describe(const dataflow::DecomposeResult& result) {
  std::cout << "  decomposed into " << result.dfg.size() << " ABB tasks: "
            << result.poly_groups << " poly group(s), " << result.direct_ops
            << " dedicated op(s), " << result.fabric_ops
            << " fabric op(s); " << result.dfg.chain_edges()
            << " chain edges, critical path "
            << result.dfg.critical_path_nodes() << " nodes\n";
  dse::Table t({"task", "kind", "fabric?", "mem in B", "chained preds"});
  for (TaskId id = 0; id < result.dfg.size(); ++id) {
    const auto& node = result.dfg.node(id);
    t.add_row({std::to_string(id), abb::kind_name(node.kind),
               node.needs_fabric ? "yes" : "no",
               std::to_string(node.mem_in_bytes),
               std::to_string(node.preds.size())});
  }
  t.print(std::cout);
}

core::RunResult run_on(core::ArchConfig config, const dataflow::Dfg& dfg,
                       const char* name) {
  workloads::Workload wl;
  wl.name = name;
  wl.dfg = dfg;
  wl.invocations = 50;
  wl.concurrency = 16;
  wl.buffer_rotation = 4;
  core::System system(config);
  return system.run(wl);
}

}  // namespace

int main() {
  // --- in-library kernel on pure CHARM ---
  std::cout << "1) gradient kernel through the CHARM compiler:\n";
  const auto ir = make_gradient_kernel(/*with_trig=*/false);
  const auto result = dataflow::Decomposer(/*allow_fabric=*/false)
                          .decompose(ir);
  describe(result);

  const auto r = run_on(core::ArchConfig::ring_design(12, 2, 32), result.dfg,
                        "gradient");
  std::cout << "  executed 50 invocations in " << r.makespan << " cycles ("
            << dse::Table::num(r.seconds() * 1e6, 1) << " us), "
            << r.chains_direct << " direct chains\n\n";

  // --- out-of-library kernel: CHARM rejects, CAMEL composes ---
  std::cout << "2) oriented-gradient kernel (uses sin):\n";
  const auto ir2 = make_gradient_kernel(/*with_trig=*/true);
  try {
    dataflow::Decomposer(/*allow_fabric=*/false).decompose(ir2);
  } catch (const ConfigError& e) {
    std::cout << "  CHARM compiler: REJECTED (" << e.what() << ")\n";
  }
  const auto camel_result =
      dataflow::Decomposer(/*allow_fabric=*/true).decompose(ir2);
  describe(camel_result);

  core::ArchConfig camel = core::ArchConfig::ring_design(12, 2, 32);
  camel.island.fabric_blocks = 1;  // CAMEL: PF block per island
  const auto r2 = run_on(camel, camel_result.dfg, "gradient-oriented");
  std::cout << "  CAMEL executed 50 invocations in " << r2.makespan
            << " cycles (" << dse::Table::num(r2.seconds() * 1e6, 1)
            << " us)\n";
  return 0;
}
