// Quickstart: build the paper's best configuration (24 islands, 2-ring
// 32-byte SPM<->DMA network), run the Denoise benchmark, and print the
// headline numbers next to a software (CMP) baseline.
#include <iostream>

#include "cmp/cmp_model.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "workloads/registry.h"

int main() {
  using namespace ara;

  // 1. Pick a design point. ArchConfig exposes every parameter the paper's
  //    design-space exploration sweeps; best_config() is the Sec. 5.8 winner.
  core::ArchConfig config = core::ArchConfig::best_config();
  std::cout << "design point: " << config.summary() << "\n";

  // 2. Pick a workload. The registry holds the paper's seven benchmarks.
  workloads::Workload wl = workloads::make_benchmark("Denoise");
  std::cout << "workload: " << wl.name << " (" << wl.dfg.size()
            << " ABB tasks/invocation, chaining degree "
            << wl.dfg.chaining_degree() << ", " << wl.invocations
            << " invocations)\n\n";

  // 3. Simulate.
  core::System system(config);
  const core::RunResult r = system.run(wl);
  r.print(std::cout);

  // 4. Compare against the 12-core CMP software baseline (Fig. 10 style).
  const cmp::CmpModel baseline(cmp::CmpConfig::xeon_e5_2420());
  const cmp::CmpResult sw = baseline.run(wl);
  std::cout << "\nvs " << baseline.config().name << ":\n"
            << "  speedup      " << sw.seconds / r.seconds() << "X\n"
            << "  energy gain  " << sw.joules / r.energy.total() << "X\n";
  return 0;
}
