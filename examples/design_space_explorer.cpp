// Design-space explorer: sweep island count x SPM<->DMA topology for a
// benchmark and rank design points by performance, performance/energy and
// compute density — a miniature of the paper's Section 5 exploration that
// users can point at their own workloads.
//
// Usage: design_space_explorer [benchmark] [--jobs N]
//   benchmark   one of the paper's seven workloads (default EKF-SLAM)
//   --jobs N    parallel sweep workers (default: hardware concurrency;
//               every design point is an independent simulation)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "dse/parallel_sweep.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace ara;

  std::string bench = "EKF-SLAM";
  unsigned jobs = 0;  // 0 = hardware concurrency
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atol(argv[++i]));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::atol(arg.c_str() + 7));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: design_space_explorer [benchmark] [--jobs N]\n";
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::cerr << "unknown option '" << arg
                << "'\nusage: design_space_explorer [benchmark] [--jobs N]\n";
      return 2;
    } else {
      bench = arg;
    }
  }

  const auto wl = workloads::make_benchmark(bench, 0.25);
  std::cout << "exploring design space for " << bench << " ("
            << wl.dfg.size() << " tasks/invocation, chaining degree "
            << dse::Table::num(wl.dfg.chaining_degree(), 2) << ")\n\n";

  // Every island count x network topology the paper evaluates, as one flat
  // job list for the parallel executor.
  std::vector<std::string> labels;
  std::vector<dse::SweepJob> sweep_jobs;
  for (std::uint32_t islands : dse::paper_island_counts()) {
    for (const auto& cp : dse::paper_network_configs(islands)) {
      labels.push_back(std::to_string(islands) + " islands, " + cp.label);
      sweep_jobs.push_back({cp.config, &wl});
    }
  }

  const dse::ParallelSweepExecutor executor(jobs);
  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = executor.run(sweep_jobs);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  struct Point {
    std::string label;
    dse::SweepResult sweep;
  };
  std::vector<Point> points;
  points.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    points.push_back({labels[i], sweep[i]});
  }

  // Rank by performance.
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.sweep.result.performance() > b.sweep.result.performance();
  });

  dse::Table t({"rank", "design point", "perf (inv/s)", "perf/energy",
                "perf/area", "islands mm2", "sim events", "sim wall s"});
  const double p0 = points.front().sweep.result.performance();
  const double e0 = points.front().sweep.result.perf_per_energy();
  const double a0 = points.front().sweep.result.perf_per_island_area();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i].sweep.result;
    t.add_row({std::to_string(i + 1), points[i].label,
               dse::Table::num(r.performance() / p0, 3),
               dse::Table::num(r.perf_per_energy() / e0, 3),
               dse::Table::num(r.perf_per_island_area() / a0, 3),
               dse::Table::num(r.area.islands_mm2, 0),
               std::to_string(points[i].sweep.events),
               dse::Table::num(points[i].sweep.wall_seconds, 3)});
  }
  t.print(std::cout);

  double point_s = 0;
  std::uint64_t events = 0;
  for (const auto& s : sweep) {
    point_s += s.wall_seconds;
    events += s.events;
  }
  std::cout << "\nswept " << sweep.size() << " design points ("
            << events << " simulator events) in "
            << dse::Table::num(wall_s, 2) << " s wall with "
            << executor.jobs() << " worker(s); summed point time "
            << dse::Table::num(point_s, 2) << " s ("
            << dse::Table::num(wall_s > 0 ? point_s / wall_s : 0, 2)
            << "x effective parallelism)\n";

  std::cout << "\n(the paper's chosen design — 24 islands, 2-ring 32B — "
               "balances all three metrics; see Sec. 5.8)\n";
  return 0;
}
