// Design-space explorer: sweep island count x SPM<->DMA topology for a
// benchmark (argv[1], default EKF-SLAM) and rank design points by
// performance, performance/energy and compute density — a miniature of the
// paper's Section 5 exploration that users can point at their own
// workloads.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace ara;

  const std::string bench = argc > 1 ? argv[1] : "EKF-SLAM";
  const auto wl = workloads::make_benchmark(bench, 0.25);
  std::cout << "exploring design space for " << bench << " ("
            << wl.dfg.size() << " tasks/invocation, chaining degree "
            << dse::Table::num(wl.dfg.chaining_degree(), 2) << ")\n\n";

  struct Point {
    std::string label;
    core::RunResult result;
  };
  std::vector<Point> points;
  for (std::uint32_t islands : dse::paper_island_counts()) {
    for (const auto& cp : dse::paper_network_configs(islands)) {
      const std::string label =
          std::to_string(islands) + " islands, " + cp.label;
      points.push_back({label, dse::run_point(cp.config, wl)});
    }
  }

  // Rank by performance.
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.result.performance() > b.result.performance();
  });

  dse::Table t({"rank", "design point", "perf (inv/s)", "perf/energy",
                "perf/area", "islands mm2"});
  const double p0 = points.front().result.performance();
  const double e0 = points.front().result.perf_per_energy();
  const double a0 = points.front().result.perf_per_island_area();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    t.add_row({std::to_string(i + 1), p.label,
               dse::Table::num(p.result.performance() / p0, 3),
               dse::Table::num(p.result.perf_per_energy() / e0, 3),
               dse::Table::num(p.result.perf_per_island_area() / a0, 3),
               dse::Table::num(p.result.area.islands_mm2, 0)});
  }
  t.print(std::cout);

  std::cout << "\n(the paper's chosen design — 24 islands, 2-ring 32B — "
               "balances all three metrics; see Sec. 5.8)\n";
  return 0;
}
