// Design-space explorer: sweep island count x SPM<->DMA topology for a
// benchmark and rank design points by performance, performance/energy and
// compute density — a miniature of the paper's Section 5 exploration that
// users can point at their own workloads.
//
// Usage: design_space_explorer [benchmark] [--jobs N] [--shards N]
//                              [--metrics FILE] [--cache DIR]
//   benchmark       one of the paper's seven workloads (default EKF-SLAM)
// Shared flags (common::CliOptions; each has an ARA_* env fallback):
//   --jobs N        parallel sweep workers (default: hardware concurrency;
//                   every design point is an independent simulation)
//   --shards N      partitioned-kernel workers inside each simulation
//                   (default 1; results are byte-identical either way)
//   --metrics FILE  write every point's full stat-registry snapshot as
//                   labeled JSON ({"points":[{"label":..,"metrics":..}]})
//   --cache DIR     memoize design points on disk: a re-run of the same
//                   sweep restores every point without simulating
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/check.h"
#include "common/cli_options.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "obs/metrics_export.h"
#include "sim/event_queue.h"
#include "workloads/registry.h"

namespace {

void usage(std::ostream& os) {
  os << "usage: design_space_explorer [benchmark] [options]\n"
     << ara::common::CliOptions::help(
            ara::common::CliOptions::kJobs | ara::common::CliOptions::kShards |
            ara::common::CliOptions::kMetrics |
            ara::common::CliOptions::kCache | ara::common::CliOptions::kCheck);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ara;

  auto cli = common::CliOptions::parse(
      argc, argv,
      common::CliOptions::kJobs | common::CliOptions::kShards |
          common::CliOptions::kMetrics | common::CliOptions::kCache |
          common::CliOptions::kCheck);
  if (!cli.ok()) {
    std::cerr << "error: " << cli.error << "\n";
    usage(std::cerr);
    return 2;
  }
  if (cli.check) check::set_enabled(true);

  std::string bench = "EKF-SLAM";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::cerr << "unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 2;
    } else {
      bench = arg;
    }
  }

  const auto wl = workloads::make_benchmark(bench, 0.25);
  std::cout << "exploring design space for " << bench << " ("
            << wl.dfg.size() << " tasks/invocation, chaining degree "
            << dse::Table::num(wl.dfg.chaining_degree(), 2) << ")\n\n";

  // Every island count x network topology the paper evaluates, as one
  // flat request.
  std::vector<std::string> labels;
  dse::SweepRequest request;
  for (std::uint32_t islands : dse::paper_island_counts()) {
    for (const auto& cp : dse::paper_network_configs(islands)) {
      labels.push_back(std::to_string(islands) + " islands, " + cp.label);
      request.add(cp.config, wl);
    }
  }
  request.jobs = cli.jobs;
  request.shards = cli.shards;

  dse::ResultCache cache(cli.cache_dir);
  if (!cli.cache_dir.empty()) {
    request.cache = &cache;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const auto sweep = dse::run(request);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  struct Point {
    std::string label;
    dse::SweepResult sweep;
  };
  std::vector<Point> points;
  points.reserve(sweep.size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    points.push_back({labels[i], sweep[i]});
  }

  // Rank by performance.
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    return a.sweep.result.performance() > b.sweep.result.performance();
  });

  dse::Table t({"rank", "design point", "perf (inv/s)", "perf/energy",
                "perf/area", "islands mm2", "sim events", "sim wall s"});
  const double p0 = points.front().sweep.result.performance();
  const double e0 = points.front().sweep.result.perf_per_energy();
  const double a0 = points.front().sweep.result.perf_per_island_area();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i].sweep.result;
    t.add_row({std::to_string(i + 1), points[i].label,
               dse::Table::num(r.performance() / p0, 3),
               dse::Table::num(r.perf_per_energy() / e0, 3),
               dse::Table::num(r.perf_per_island_area() / a0, 3),
               dse::Table::num(r.area.islands_mm2, 0),
               std::to_string(points[i].sweep.events),
               dse::Table::num(points[i].sweep.wall_seconds, 3)});
  }
  t.print(std::cout);

  double point_s = 0;
  std::uint64_t events = 0;
  std::size_t cached = 0;
  for (const auto& s : sweep) {
    point_s += s.wall_seconds;
    events += s.events;
    if (s.from_cache) ++cached;
  }
  const unsigned workers =
      cli.jobs != 0 ? cli.jobs
                    : std::max(1u, std::thread::hardware_concurrency());
  std::cout << "\nswept " << sweep.size() << " design points ("
            << events << " simulator events) in "
            << dse::Table::num(wall_s, 2) << " s wall with "
            << workers << " worker(s); summed point time "
            << dse::Table::num(point_s, 2) << " s ("
            << dse::Table::num(wall_s > 0 ? point_s / wall_s : 0, 2)
            << "x effective parallelism)\n";
  if (request.cache != nullptr) {
    std::cout << "result cache (" << cli.cache_dir << "): " << cached << "/"
              << sweep.size() << " points restored ("
              << cache.disk_hits() << " from disk, "
              << cache.misses() << " simulated and stored)\n";
  }

  // Self-profile: where simulated time went, by event kind, summed over
  // every point (counts are deterministic; seconds are host wall-clock).
  std::array<sim::EventKindStats, sim::kNumEventKinds> kinds{};
  for (const auto& s : sweep) {
    for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
      kinds[k].count += s.event_kinds[k].count;
      kinds[k].seconds += s.event_kinds[k].seconds;
    }
  }
  std::cout << "event dispatch profile:";
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    if (kinds[k].count == 0) continue;
    std::cout << " " << sim::event_kind_name(static_cast<sim::EventKind>(k))
              << "=" << kinds[k].count << " ("
              << dse::Table::num(kinds[k].seconds * 1e3, 0) << " ms)";
  }
  std::cout << "\n";

  if (!cli.metrics_file.empty()) {
    std::vector<std::pair<std::string, const obs::MetricsSnapshot*>> labeled;
    labeled.reserve(points.size());
    for (const auto& p : points) {
      labeled.emplace_back(p.label, &p.sweep.metrics);
    }
    std::ofstream os(cli.metrics_file);
    if (!os) {
      std::cerr << "error: cannot write metrics to " << cli.metrics_file
                << "\n";
      return 1;
    }
    obs::MetricsExporter::write_labeled_json(os, labeled);
    std::cout << "per-point metrics written to " << cli.metrics_file << " ("
              << labeled.size() << " points)\n";
  }

  std::cout << "\n(the paper's chosen design — 24 islands, 2-ring 32B — "
               "balances all three metrics; see Sec. 5.8)\n";
  return 0;
}
