// ara_sim: command-line front end to the simulator — pick a benchmark and
// a design point, run it, and get the report (optionally a CSV row and a
// Chrome trace). This is the "just let me try a configuration" entry point
// a downstream user reaches for first.
//
// Usage:
//   ara_sim [--bench NAME] [--islands N] [--net ring|proxy|chain]
//           [--rings N] [--width BYTES] [--ports 1|2] [--sharing]
//           [--scale F] [--mono] [--csv] [--trace FILE] [--metrics FILE]
//           [--offline N] [--policy fifo|sjf|ljf] [--shards N] [--list]
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "check/check.h"
#include "common/cli_options.h"
#include "common/config_error.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "dse/report.h"
#include "dse/spec.h"
#include "dse/table.h"
#include "obs/metrics_export.h"
#include "workloads/registry.h"

namespace {

void usage() {
  std::cout <<
      "ara_sim — accelerator-rich architecture simulator\n"
      "  --bench NAME     benchmark (default Denoise); --list shows all\n"
      "  --islands N      island count, must divide 120 (default 24)\n"
      "  --net KIND       ring | proxy | chain (default ring)\n"
      "  --rings N        rings for --net ring (default 2)\n"
      "  --width BYTES    link width 16|32|64 (default 32)\n"
      "  --ports M        SPM port multiplier 1|2 (default 1)\n"
      "  --sharing        enable neighbour SPM sharing\n"
      "  --mono           ARC-style monolithic accelerators\n"
      "  --policy P       GAM policy: fifo | sjf | ljf (default fifo)\n"
      "  --offline N      take N islands offline mid-run capability demo\n"
      "  --scale F        invocation scale factor (default 0.25)\n"
      "  --csv            print the result as a CSV row\n"
      << ara::common::CliOptions::help(ara::common::CliOptions::kTrace |
                                       ara::common::CliOptions::kMetrics |
                                       ara::common::CliOptions::kCheck |
                                       ara::common::CliOptions::kShards);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ara;

  const auto cli = common::CliOptions::parse(
      argc, argv,
      common::CliOptions::kTrace | common::CliOptions::kMetrics |
          common::CliOptions::kCheck | common::CliOptions::kShards);
  if (!cli.ok()) {
    std::cerr << "error: " << cli.error << "\n";
    return 2;
  }
  if (cli.check) check::set_enabled(true);
  const std::string& trace_file = cli.trace_file;
  const std::string& metrics_file = cli.metrics_file;

  // Design-point knobs accumulate into a dse::PointSpec — the shared spec
  // module whose defaults and to_config() the serve protocol and
  // dse::search use too, so a CLI run of these flags is the same design
  // point (and the same bits) as a served point of the same spec.
  std::string bench = "Denoise";
  dse::PointSpec spec;
  double scale = 0.25;
  bool csv = false;
  std::uint32_t offline = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--list") {
      for (const auto& n : workloads::benchmark_names()) {
        std::cout << n << "\n";
      }
      return 0;
    } else if (arg == "--bench") {
      bench = next();
    } else if (arg == "--islands") {
      spec.islands = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--net") {
      spec.net = next();
    } else if (arg == "--rings") {
      spec.rings = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--width") {
      spec.link_bytes = std::stoul(next());
    } else if (arg == "--ports") {
      spec.ports = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--sharing") {
      spec.sharing = true;
    } else if (arg == "--mono") {
      spec.mono = true;
    } else if (arg == "--policy") {
      spec.policy = next();
    } else if (arg == "--offline") {
      offline = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (arg == "--scale") {
      scale = std::stod(next());
    } else if (arg == "--csv") {
      csv = true;
    } else {
      std::cerr << "unknown option '" << arg << "' (see --help)\n";
      return 2;
    }
  }

  core::ArchConfig cfg;
  try {
    cfg = spec.to_config();
  } catch (const ConfigError& e) {
    // Bad knob value (unknown net/policy name) is a usage error, same as
    // an unknown flag.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  cfg.trace_enabled = !trace_file.empty();

  try {
    const auto wl = workloads::make_benchmark(bench, scale);
    core::System system(cfg);
    system.set_shards(cli.shards);
    for (std::uint32_t i = 0; i < offline && i < system.island_count(); ++i) {
      system.composer().set_island_offline(i, true);
    }
    const auto r = system.run(wl);

    if (csv) {
      dse::Table t({"benchmark", "config", "makespan_cycles", "perf_inv_s",
                    "energy_mj", "islands_mm2", "avg_util", "l2_hit",
                    "chains_direct", "chains_spilled"});
      t.add_row({wl.name, r.config, std::to_string(r.makespan),
                 dse::Table::num(r.performance(), 1),
                 dse::Table::num(r.energy.total() * 1e3, 3),
                 dse::Table::num(r.area.islands_mm2, 1),
                 dse::Table::num(r.avg_abb_utilization, 4),
                 dse::Table::num(r.l2_hit_rate, 4),
                 std::to_string(r.chains_direct),
                 std::to_string(r.chains_spilled)});
      t.print_csv(std::cout);
    } else {
      dse::SystemReport(system, r).print(std::cout);
    }

    if (!trace_file.empty()) {
      std::ofstream os(trace_file);
      system.write_trace(os);
      std::cerr << "trace written to " << trace_file << " ("
                << system.trace().size() << " events";
      if (system.trace().dropped() > 0) {
        std::cerr << ", " << system.trace().dropped() << " dropped";
      }
      std::cerr << ")\n";
    }
    if (!metrics_file.empty()) {
      const auto snap = obs::MetricsSnapshot::capture(system.stats());
      if (!obs::MetricsExporter::write_file(metrics_file, snap)) {
        std::cerr << "error: cannot write metrics to " << metrics_file << "\n";
        return 1;
      }
      std::cerr << "metrics written to " << metrics_file << " ("
                << snap.counters.size() << " counters, "
                << snap.histograms.size() << " histograms)\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
