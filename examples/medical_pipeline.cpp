// Medical-imaging pipeline: tiles flow through the paper's original CDSC
// driver domain (Deblur -> Denoise -> Registration -> Segmentation) on one
// chip, with stages overlapping across tiles — the accelerator-rich
// architecture acting as a medical imaging appliance. Prints per-stage
// latency, the overall pipeline result, a detailed system report, and the
// GAM's wait-time feedback under overload.
#include <iostream>

#include "core/arch_config.h"
#include "core/pipeline.h"
#include "core/system.h"
#include "dse/report.h"
#include "dse/table.h"
#include "workloads/registry.h"

int main() {
  using namespace ara;

  const core::ArchConfig config = core::ArchConfig::best_config();
  std::cout << "medical imaging pipeline on: " << config.summary() << "\n\n";

  std::vector<workloads::Workload> stages = {
      workloads::make_benchmark("Deblur", 0.25),
      workloads::make_benchmark("Denoise", 0.25),
      workloads::make_benchmark("Registration", 0.25),
      workloads::make_benchmark("Segmentation", 0.25)};

  core::System system(config);
  const auto r = core::run_pipeline(system, stages, /*tiles=*/32);

  dse::Table t({"stage", "tasks/inv", "chain deg", "invocations",
                "mean latency (cyc)"});
  for (std::size_t s = 0; s < stages.size(); ++s) {
    t.add_row({stages[s].name, std::to_string(stages[s].dfg.size()),
               dse::Table::num(stages[s].dfg.chaining_degree(), 2),
               std::to_string(r.stages[s].invocations),
               dse::Table::num(r.stages[s].mean_latency_cycles, 0)});
  }
  t.print(std::cout);

  std::cout << "\npipeline of " << r.tiles << " tiles:\n";
  dse::SystemReport(system, r.overall).print(std::cout);

  // The GAM's wait-time feedback in action: overload a chip with a narrow
  // admission window.
  std::cout << "\nGAM behaviour under a narrow admission window:\n";
  core::ArchConfig tight = config;
  tight.max_jobs_in_flight = 4;
  core::System throttled(tight);
  auto wl = workloads::make_benchmark("Segmentation", 0.25);
  wl.concurrency = 32;
  throttled.run(wl);
  std::cout << "  requests:             " << throttled.gam().requests()
            << "\n"
            << "  queued at GAM:        " << throttled.gam().queued_requests()
            << "\n"
            << "  mean wait estimate:   "
            << dse::Table::num(throttled.gam().mean_wait_estimate(), 0)
            << " cycles\n"
            << "  interrupts delivered: "
            << throttled.gam().interrupts_delivered() << "\n";
  return 0;
}
