# Smoke test for the autotuning-search benchmark: run the small space at a
# reduced workload scale, require the exhaustive grid and every budgeted
# search to complete, and strictly validate the emitted BENCH_search.json
# with ara_json_check. Invoked by ctest as:
#   cmake -DBENCH=<bench_search> -DCHECK=<ara_json_check>
#         -DOUT_DIR=<dir> -P bench_search_smoke.cmake
foreach(var BENCH CHECK OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_search_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(report "${OUT_DIR}/BENCH_search.json")

execute_process(
  COMMAND "${BENCH}" --space small --scale 0.02 --out "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_search failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "bench_search did not write ${report}")
endif()

execute_process(
  COMMAND "${CHECK}" "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "BENCH_search.json is not valid JSON (${rc}):\n"
                      "${out}\n${err}")
endif()

# Shape checks: the grid reference, every budget row, and the warm rerun
# are present, and the warm rerun simulated nothing.
file(READ "${report}" report_text)
foreach(needle "\"bench\":\"search\"" "\"grid\"" "\"budgets\""
        "\"found_optimal\"" "\"gap\"" "\"warm_rerun\"")
  string(FIND "${report_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_search.json is missing ${needle}")
  endif()
endforeach()
if(NOT report_text MATCHES "\"warm_rerun\":{\"budget\":[0-9]+,\"simulated\":0,")
  message(FATAL_ERROR "warm search rerun re-simulated points:\n${report_text}")
endif()

message(STATUS "search bench smoke ok: report valid, warm rerun fully cached")
