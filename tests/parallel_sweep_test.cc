// Determinism and correctness tests for the parallel DSE executor: the
// parallel path must produce bit-identical RunResults to the serial path
// for every worker count, preserve input order, and report per-point
// observability. This file is also built TSan-instrumented when
// ARA_ENABLE_TSAN is on (see tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/config_error.h"
#include "dse/parallel_sweep.h"
#include "dse/sweep.h"
#include "workloads/registry.h"

namespace ara::dse {
namespace {

// Small-scale instances of one medical-imaging and one navigation
// benchmark — cheap enough to sweep repeatedly, heavy enough to exercise
// chaining, DMA and NoC paths.
std::vector<workloads::Workload> test_workloads() {
  std::vector<workloads::Workload> wls;
  wls.push_back(workloads::make_benchmark("Denoise", 0.03));
  wls.push_back(workloads::make_benchmark("EKF-SLAM", 0.03));
  return wls;
}

TEST(ParallelSweep, BitIdenticalToSerialAcrossJobCounts) {
  const auto points = paper_network_configs(6);
  const auto wls = test_workloads();

  // Serial reference: one single-point request per (point, workload),
  // point-major.
  std::vector<core::RunResult> expected;
  for (const auto& p : points) {
    for (const auto& wl : wls) {
      expected.push_back(
          std::move(run(SweepRequest{}.add(p.config, wl)).front().result));
    }
  }

  for (unsigned jobs : {1u, 2u, 8u}) {
    ParallelSweepExecutor executor(jobs);
    EXPECT_EQ(executor.jobs(), jobs);
    const auto got = executor.run(points, {&wls[0], &wls[1]});
    ASSERT_EQ(got.size(), expected.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(got[i].result, expected[i])
          << "jobs=" << jobs << " point " << i << " diverged from serial";
    }
  }
}

TEST(ParallelSweep, RunSweepDelegatesWithIdenticalResults) {
  const auto points = paper_network_configs(3);
  const auto wl = workloads::make_benchmark("Denoise", 0.03);

  const auto serial = run(SweepRequest{}.add_points(points, wl));  // jobs = 1
  const auto parallel =
      run(SweepRequest{}.add_points(points, wl).with_jobs(4));
  ASSERT_EQ(serial.size(), points.size());
  ASSERT_EQ(parallel.size(), points.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].result, parallel[i].result);
  }
}

// The deprecated run_point/run_sweep shims (and their migration A/B test)
// are gone: every caller uses dse::run, and ara_lint's no-deprecated-api
// rule fails the lint gate on any reintroduction of those identifiers.
// dse::run's own determinism coverage lives in the tests around this
// comment (serial-vs-parallel, jobs 1/2/8, cached-vs-fresh).
TEST(SweepRequestMigration, SingleAddMirrorsRemovedRunPointShape) {
  // What run_point(cfg, wl, &snap) used to return is .front() of a
  // one-element request — keep that shape pinned for downstream scripts.
  const auto points = paper_network_configs(6);
  const auto wl = workloads::make_benchmark("EKF-SLAM", 0.03);

  const auto one = run(SweepRequest{}.add(points[0].config, wl));
  ASSERT_EQ(one.size(), 1u);
  EXPECT_FALSE(one.front().from_cache);
  EXPECT_FALSE(one.front().metrics.empty());

  const auto sweep = run(SweepRequest{}.add_points(points, wl));
  ASSERT_EQ(sweep.size(), points.size());
  EXPECT_EQ(one.front().result, sweep.front().result);
}

TEST(ParallelSweep, ReportsObservabilityPerPoint) {
  const auto points = paper_network_configs(3);
  const auto wl = workloads::make_benchmark("Denoise", 0.03);

  ParallelSweepExecutor executor(2);
  const auto results = executor.run(points, wl);
  ASSERT_EQ(results.size(), points.size());
  for (const auto& r : results) {
    EXPECT_GT(r.events, 0u);
    EXPECT_GE(r.wall_seconds, 0.0);
    EXPECT_LT(r.worker, 2u);
    EXPECT_GT(r.result.makespan, 0u);
  }
}

TEST(ParallelSweep, PreservesInputOrderNotCompletionOrder) {
  // Mixed sizes: the 24-island points take longer than the 3-island ones,
  // so completion order differs from input order under contention.
  std::vector<ConfigPoint> points;
  for (std::uint32_t islands : {24u, 3u, 12u, 6u}) {
    points.push_back(paper_network_configs(islands)[0]);
  }
  const auto wl = workloads::make_benchmark("Denoise", 0.03);

  ParallelSweepExecutor executor(4);
  const auto results = executor.run(points, wl);
  ASSERT_EQ(results.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto ref = run(SweepRequest{}.add(points[i].config, wl));
    EXPECT_EQ(results[i].result.config, ref.front().result.config);
  }
}

TEST(ParallelSweep, PropagatesWorkerExceptions) {
  ParallelSweepExecutor executor(2);
  std::vector<SweepJob> bad_jobs(3);  // null workloads
  for (auto& j : bad_jobs) j.config = core::ArchConfig::paper_baseline(3);
  EXPECT_THROW(executor.run(bad_jobs), ConfigError);
}

// Regression: workers used to keep claiming (and simulating) the rest of
// the sweep after another worker had already thrown. With 64 jobs and 4
// workers, job 0 failing must stop the pool at roughly one job per worker
// — not burn through all 64.
TEST(ParallelSweep, StopsClaimingAfterFirstFailure) {
  constexpr unsigned kWorkers = 4;
  constexpr std::size_t kJobs = 64;
  std::atomic<int> claims{0};
  std::atomic<bool> thrown{false};

  const ParallelSweepExecutor::JobRunner runner =
      [&](const SweepJob&, std::size_t index, unsigned) -> SweepResult {
    claims.fetch_add(1);
    if (index == 0) {
      // Let every worker claim its first job, then fail the sweep.
      while (claims.load() < static_cast<int>(kWorkers)) {
        std::this_thread::yield();
      }
      thrown.store(true);
      throw ConfigError("job 0 failed");
    }
    // Hold the other workers inside their current job until the failure
    // has happened, then give the stop flag ample time to be raised
    // before this worker returns to the claim loop.
    while (!thrown.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    return SweepResult{};
  };

  ParallelSweepExecutor executor(kWorkers);
  std::vector<SweepJob> sweep_jobs(kJobs);
  EXPECT_THROW(executor.run_with(sweep_jobs, runner), ConfigError);
  // One claim per worker, plus a small allowance for a worker that raced
  // past the stop flag — nowhere near the 64 the old code would burn.
  EXPECT_LE(claims.load(), static_cast<int>(kWorkers) + 4);
}

// Regression: ErrorSlot used to keep the FIRST exception in completion
// order, so which error surfaced from a multi-failure sweep depended on
// thread scheduling. Now the lowest-indexed failing job wins — the error
// a serial run would hit first — even when it is captured last.
TEST(ParallelSweep, LowestIndexErrorWinsDeterministically) {
  constexpr std::size_t kJobs = 8;
  for (unsigned workers : {1u, 2u, 8u}) {
    const int barrier =
        static_cast<int>(std::min<std::size_t>(workers, kJobs));
    std::atomic<int> claims{0};
    std::atomic<int> thrown{0};

    const ParallelSweepExecutor::JobRunner runner =
        [&](const SweepJob&, std::size_t index, unsigned) -> SweepResult {
      claims.fetch_add(1);
      if (index == 0) {
        // Fail LAST: every other concurrently-claimed job throws first,
        // so completion order and index order disagree.
        while (thrown.load() < barrier - 1) std::this_thread::yield();
        throw ConfigError("job 0");
      }
      while (claims.load() < barrier) std::this_thread::yield();
      thrown.fetch_add(1);
      throw ConfigError("job " + std::to_string(index));
    };

    ParallelSweepExecutor executor(workers);
    std::vector<SweepJob> sweep_jobs(kJobs);
    try {
      executor.run_with(sweep_jobs, runner);
      FAIL() << "sweep with failing jobs did not throw (workers="
             << workers << ")";
    } catch (const ConfigError& e) {
      // ConfigError prefixes its messages; the payload must be job 0's.
      EXPECT_NE(std::string(e.what()).find("job 0"), std::string::npos)
          << "workers=" << workers << " surfaced: " << e.what();
    }
  }
}

TEST(ParallelSweep, ZeroJobsPicksHardwareConcurrency) {
  ParallelSweepExecutor executor(0);
  EXPECT_GE(executor.jobs(), 1u);
}

TEST(ParallelSweep, EmptyJobListIsFine) {
  ParallelSweepExecutor executor(4);
  EXPECT_TRUE(executor.run(std::vector<SweepJob>{}).empty());
}

}  // namespace
}  // namespace ara::dse
