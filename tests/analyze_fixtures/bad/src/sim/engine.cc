// Transitive layering breach: sim -> (unlayered tools header) -> serve.
// Each individual edge looks legal to the per-file linter.
#include "bridge.h"
#include "sim/cycle_a.h"

namespace ara::sim {
int engine_tick() { return bridge_poke() + cycle_value(); }
}  // namespace ara::sim
