// Include cycle seed: a <-> b.
#pragma once
#include "sim/cycle_b.h"

inline int cycle_value() { return 1; }
