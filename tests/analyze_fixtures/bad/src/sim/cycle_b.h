#pragma once
#include "sim/cycle_a.h"

inline int cycle_other() { return 2; }
