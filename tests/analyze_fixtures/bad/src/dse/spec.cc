namespace ara::dse {

std::string PointSpec::label() const {
  return "islands=" + std::to_string(islands);
}

}  // namespace ara::dse
