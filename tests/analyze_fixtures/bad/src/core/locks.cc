// Lock-order cycle seed: drain() takes mu_a_ then mu_b_, refill() takes
// them in the opposite order — a potential static deadlock.
#include "common/mutex.h"

namespace ara::core {

void Pool::drain() {
  common::MutexLock a(mu_a_);
  common::MutexLock b(mu_b_);
  flush();
}

void Pool::refill() {
  common::MutexLock b(mu_b_);
  common::MutexLock a(mu_a_);
  fill();
}

}  // namespace ara::core
