// Stat-name seeds: one documented, one undocumented, one breaking the
// <subsystem>.<id>.<stat> grammar.
namespace ara::core {

void Pool::snapshot(StatRegistry& stats) {
  stats.counter("sim.fixture.documented", documented_);
  stats.counter("sim.fixture.ghostly", ghostly_);
  stats.counter("BadStatName", bad_);
}

}  // namespace ara::core
