// Protocol drift seed: "ghost" is parsed here but no in-repo producer
// (client builder, PointSpec label) ever emits it.
namespace ara::serve::protocol {

bool parse_request(const JsonValue& root, Request* out) {
  take_string(root, "type", &out->type);
  take_string(root, "workload", &out->workload);
  take_u32(root, "islands", &out->islands);
  take_u32(root, "ghost", &out->ghost);
  return true;
}

std::string pong_response() { return "{\"type\":\"pong\",\"code\":0}"; }

}  // namespace ara::serve::protocol
