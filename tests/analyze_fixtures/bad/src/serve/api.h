#pragma once

namespace ara::serve {
inline int api_version() { return 3; }
}  // namespace ara::serve
