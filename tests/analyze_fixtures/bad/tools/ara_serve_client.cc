// Fixture client: builds the simple request forms and reads "code" back.
namespace {

std::string build_request() {
  return "{\"type\":\"ping\",\"workload\":\"Denoise\"}";
}

int response_code(const JsonValue& parsed) {
  const JsonValue* code = parsed.find("code");
  return code != nullptr ? code->as_int() : -1;
}

}  // namespace
