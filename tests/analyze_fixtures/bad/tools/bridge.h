// Unlayered helper that smuggles a serve/ dependency into whoever
// includes it.
#pragma once
#include "serve/api.h"

inline int bridge_poke() { return ara::serve::api_version(); }
