// Unlayered helper, now self-contained.
#pragma once

inline int bridge_poke() { return 3; }
