// Corrected twin: every emitted stat is documented and well-formed.
namespace ara::core {

void Pool::snapshot(StatRegistry& stats) {
  stats.counter("sim.fixture.documented", documented_);
  stats.counter("sim.fixture.ghostly", ghostly_);
}

}  // namespace ara::core
