// Corrected twin: one global order, mu_a_ before mu_b_, everywhere.
#include "common/mutex.h"

namespace ara::core {

void Pool::drain() {
  common::MutexLock a(mu_a_);
  common::MutexLock b(mu_b_);
  flush();
}

void Pool::refill() {
  common::MutexLock a(mu_a_);
  common::MutexLock b(mu_b_);
  fill();
}

}  // namespace ara::core
