// Corrected twin: everything parsed has a producer and vice versa.
namespace ara::serve::protocol {

bool parse_request(const JsonValue& root, Request* out) {
  take_string(root, "type", &out->type);
  take_string(root, "workload", &out->workload);
  take_u32(root, "islands", &out->islands);
  return true;
}

std::string pong_response() { return "{\"type\":\"pong\",\"code\":0}"; }

}  // namespace ara::serve::protocol
