// Corrected twin: the unlayered bridge no longer drags serve/ in.
#include "bridge.h"
#include "sim/cycle_a.h"

namespace ara::sim {
int engine_tick() { return bridge_poke() + cycle_value(); }
}  // namespace ara::sim
