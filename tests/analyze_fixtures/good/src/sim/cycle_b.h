#pragma once

inline int cycle_other() { return 2; }
