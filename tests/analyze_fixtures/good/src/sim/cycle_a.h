// Corrected twin: the dependency is one-way.
#pragma once
#include "sim/cycle_b.h"

inline int cycle_value() { return 1; }
