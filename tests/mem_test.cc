// Unit tests for the memory system: controllers, L2 banks, MemorySystem.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "mem/l2_cache.h"
#include "mem/memory_controller.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"

namespace ara::mem {
namespace {

TEST(MemoryController, LatencyPlusBandwidth) {
  MemoryControllerConfig c;
  c.bandwidth_bytes_per_cycle = 10;
  c.avg_latency = 180;
  MemoryController mc("mc", c);
  // 64B: ceil(64/10)=7 occupancy + 180 latency.
  EXPECT_EQ(mc.access(0, 64), 187u);
  EXPECT_EQ(mc.total_bytes(), 64u);
  EXPECT_EQ(mc.accesses(), 1u);
}

TEST(MemoryController, ChannelSerializes) {
  MemoryController mc("mc", {});
  const Tick t1 = mc.access(0, 640);
  const Tick t2 = mc.access(0, 640);
  EXPECT_EQ(t2 - t1, 64u);  // second occupies after the first
}

L2BankConfig small_l2() {
  L2BankConfig c;
  c.capacity = 8 * 1024;  // 128 blocks
  c.associativity = 4;
  return c;
}

TEST(L2Bank, MissThenHit) {
  L2Bank bank("l2", small_l2());
  auto miss = bank.access(0, 0x1000, false);
  EXPECT_FALSE(miss.hit);
  auto hit = bank.access(miss.bank_done, 0x1000, false);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(bank.hits(), 1u);
  EXPECT_EQ(bank.misses(), 1u);
  EXPECT_DOUBLE_EQ(bank.hit_rate(), 0.5);
}

TEST(L2Bank, SameBlockDifferentOffsetsHit) {
  L2Bank bank("l2", small_l2());
  bank.access(0, 0x1000, false);
  EXPECT_TRUE(bank.access(0, 0x1004, false).hit);
  EXPECT_TRUE(bank.access(0, 0x103F, true).hit);
}

TEST(L2Bank, LruEvictsOldest) {
  L2BankConfig c = small_l2();
  L2Bank bank("l2", c);
  const std::size_t sets = (c.capacity / c.block_bytes) / c.associativity;
  // Fill one set (4 ways), then touch way 0 to refresh it, then insert a
  // 5th conflicting block: the eviction victim must not be way 0.
  auto addr_in_set = [&](std::uint64_t i) {
    return (i * sets) * c.block_bytes;  // all map to set 0
  };
  for (std::uint64_t i = 0; i < 4; ++i) bank.access(0, addr_in_set(i), false);
  bank.access(0, addr_in_set(0), false);      // refresh LRU of block 0
  bank.access(0, addr_in_set(4), false);      // evicts block 1
  EXPECT_TRUE(bank.access(0, addr_in_set(0), false).hit);
  EXPECT_FALSE(bank.access(0, addr_in_set(1), false).hit);
}

TEST(L2Bank, FlushDropsEverything) {
  L2Bank bank("l2", small_l2());
  bank.access(0, 0x2000, false);
  bank.flush();
  EXPECT_FALSE(bank.access(0, 0x2000, false).hit);
}

TEST(L2Bank, RejectsBadConfig) {
  L2BankConfig c = small_l2();
  c.associativity = 0;
  EXPECT_THROW(L2Bank("bad", c), ConfigError);
  c = small_l2();
  c.capacity = 64;  // one block < associativity 4
  EXPECT_THROW(L2Bank("bad", c), ConfigError);
}

class MemorySystemTest : public ::testing::Test {
 protected:
  MemorySystemTest() : mesh_(noc::MeshConfig{}) {
    MemorySystemConfig cfg;
    std::vector<NodeId> l2_nodes, mc_nodes;
    for (std::uint32_t i = 0; i < cfg.num_l2_banks; ++i) {
      l2_nodes.push_back(mesh_.node_at(2, i % 8));
    }
    for (std::uint32_t i = 0; i < cfg.num_memory_controllers; ++i) {
      mc_nodes.push_back(mesh_.node_at(0, i));
    }
    mem_ = std::make_unique<MemorySystem>(mesh_, cfg, l2_nodes, mc_nodes);
  }
  noc::Mesh mesh_;
  std::unique_ptr<MemorySystem> mem_;
};

TEST_F(MemorySystemTest, AllocateIsBlockAlignedAndDisjoint) {
  const Addr a = mem_->allocate(100);
  const Addr b = mem_->allocate(1);
  EXPECT_EQ(a % kBlockBytes, 0u);
  EXPECT_EQ(b % kBlockBytes, 0u);
  EXPECT_GE(b, a + 100);
}

TEST_F(MemorySystemTest, ColdReadMissesWarmReadHits) {
  const Addr a = mem_->allocate(4096);
  const Tick t1 = mem_->read(0, 5, a, 4096);
  EXPECT_DOUBLE_EQ(mem_->l2_hit_rate(), 0.0);
  EXPECT_GT(mem_->dram_bytes(), 0u);
  const Bytes dram_before = mem_->dram_bytes();
  const Tick t2 = mem_->read(t1, 5, a, 4096);
  EXPECT_GT(mem_->l2_hit_rate(), 0.45);
  EXPECT_EQ(mem_->dram_bytes(), dram_before);  // all hits, no new DRAM
  EXPECT_LT(t2 - t1, t1);                      // warm read faster
}

TEST_F(MemorySystemTest, InterleavedBlocksFillAllSetsRegression) {
  // Regression for the bank-local indexing bug: a contiguous buffer much
  // smaller than a bank must be fully cache-resident on the second pass.
  const Addr a = mem_->allocate(256 * 1024);
  Tick t = mem_->read(0, 5, a, 256 * 1024);
  const Bytes dram_before = mem_->dram_bytes();
  mem_->read(t, 5, a, 256 * 1024);
  EXPECT_EQ(mem_->dram_bytes(), dram_before);
}

TEST_F(MemorySystemTest, WritesReachDramOnMiss) {
  const Addr a = mem_->allocate(1024);
  mem_->write(0, 5, a, 1024);
  EXPECT_GT(mem_->dram_bytes(), 0u);
  // Second write hits in L2 (write-allocate) and stays on chip.
  const Bytes before = mem_->dram_bytes();
  mem_->write(100000, 5, a, 1024);
  EXPECT_EQ(mem_->dram_bytes(), before);
}

TEST_F(MemorySystemTest, FlushRestoresColdBehaviour) {
  const Addr a = mem_->allocate(512);
  mem_->read(0, 5, a, 512);
  const Bytes before = mem_->dram_bytes();
  mem_->flush_caches();
  mem_->read(100000, 5, a, 512);
  EXPECT_GT(mem_->dram_bytes(), before);
}

TEST_F(MemorySystemTest, TrafficSpreadsOverControllers) {
  // Read a buffer crossing several interleave pages.
  const Addr a = mem_->allocate(64 * 1024);
  mem_->read(0, 5, a, 64 * 1024);
  std::size_t used = 0;
  for (std::size_t i = 0; i < mem_->controller_count(); ++i) {
    if (mem_->controller(i).total_bytes() > 0) ++used;
  }
  EXPECT_EQ(used, mem_->controller_count());
}

TEST_F(MemorySystemTest, ZeroByteOpsAreFree) {
  EXPECT_EQ(mem_->read(42, 5, 0x1000, 0), 42u);
  EXPECT_EQ(mem_->write(42, 5, 0x1000, 0), 42u);
}

TEST(MemorySystemConfigTest, RejectsMismatchedPlacement) {
  noc::Mesh mesh{noc::MeshConfig{}};
  MemorySystemConfig cfg;
  EXPECT_THROW(MemorySystem(mesh, cfg, {0, 1}, {2, 3, 4, 5}), ConfigError);
}

}  // namespace
}  // namespace ara::mem
