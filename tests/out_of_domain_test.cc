// Tests for the out-of-domain (CAMEL) workload suite and the Orion router
// energy decomposition.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "power/orion_like.h"
#include "workloads/out_of_domain.h"
#include "workloads/registry.h"

namespace ara {
namespace {

TEST(OutOfDomain, SuiteHasThreeMembers) {
  const auto& names = workloads::out_of_domain_names();
  ASSERT_EQ(names.size(), 3u);
  for (const auto& n : names) {
    const auto w = workloads::make_out_of_domain(n, 0.1);
    EXPECT_EQ(w.name, n);
    EXPECT_TRUE(w.dfg.finalized());
  }
  EXPECT_THROW(workloads::make_out_of_domain("Nope"), ConfigError);
}

TEST(OutOfDomain, EveryMemberNeedsFabric) {
  for (const auto& n : workloads::out_of_domain_names()) {
    const auto w = workloads::make_out_of_domain(n, 0.1);
    std::size_t fabric = 0;
    for (const auto& node : w.dfg.nodes()) fabric += node.needs_fabric;
    EXPECT_GT(fabric, 0u) << n;
  }
}

TEST(OutOfDomain, ReachableThroughRegistry) {
  const auto w = workloads::make_benchmark("BlackScholes", 0.1);
  EXPECT_EQ(w.name, "BlackScholes");
}

TEST(OutOfDomain, PureCharmCannotComposeCamelCan) {
  auto w = workloads::make_out_of_domain("LPCIP", 0.03);
  w.concurrency = 4;

  // Pure CHARM: no fabric blocks — fabric tasks can never be placed, the
  // job falls to the per-task path and would deadlock-check; the system
  // refuses cleanly.
  core::ArchConfig charm = core::ArchConfig::ring_design(6, 2, 32);
  {
    core::System sys(charm);
    EXPECT_THROW(sys.run(w), ConfigError);
  }

  // CAMEL: fabric blocks present — runs to completion.
  core::ArchConfig camel = charm;
  camel.island.fabric_blocks = 1;
  core::System sys(camel);
  const auto r = sys.run(w);
  EXPECT_EQ(r.jobs, w.invocations);
  // Fabric engines actually did work.
  std::uint64_t fabric_tasks = 0;
  for (IslandId i = 0; i < sys.island_count(); ++i) {
    auto& isl = sys.island(i);
    for (AbbId a = 0; a < isl.num_abbs(); ++a) {
      if (isl.engine(a).is_fabric()) {
        fabric_tasks += isl.engine(a).tasks_executed();
      }
    }
  }
  EXPECT_GT(fabric_tasks, 0u);
}

TEST(OrionBreakdown, ComponentsSumToHeadlineConstant) {
  const power::NocEnergyBreakdownPj b;
  EXPECT_DOUBLE_EQ(b.total(), power::kNocPjPerByteHop);
  EXPECT_GT(b.buffer_write, 0.0);
  EXPECT_GT(b.buffer_read, 0.0);
  EXPECT_GT(b.crossbar, 0.0);
  EXPECT_GT(b.arbitration, 0.0);
  EXPECT_GT(b.link, 0.0);
}

TEST(OrionBreakdown, LinkAndCrossbarDominate) {
  // Orion's characteristic split: datapath (link + crossbar) outweighs
  // control (arbitration).
  const power::NocEnergyBreakdownPj b;
  EXPECT_GT(b.link + b.crossbar, b.arbitration * 4);
}

}  // namespace
}  // namespace ara
