// Tests for the DSE harness: named config points, sweep driver, tables.
#include <gtest/gtest.h>

#include <sstream>

#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace ara::dse {
namespace {

TEST(Sweep, PaperNetworkConfigsShape) {
  const auto points = paper_network_configs(6);
  ASSERT_EQ(points.size(), 5u);
  EXPECT_EQ(points[0].label, "proxy-xbar");
  EXPECT_EQ(points[0].config.island.net.topology,
            island::SpmDmaTopology::kProxyXbar);
  EXPECT_EQ(points[1].label, "1-ring,16B");
  EXPECT_EQ(points[1].config.island.net.link_bytes, 16u);
  EXPECT_EQ(points[4].config.island.net.num_rings, 3u);
  for (const auto& p : points) {
    EXPECT_EQ(p.config.num_islands, 6u);
    EXPECT_NO_THROW(p.config.validate());
  }
}

TEST(Sweep, PaperIslandCounts) {
  const auto& counts = paper_island_counts();
  EXPECT_EQ(counts, (std::vector<std::uint32_t>{3, 6, 12, 24}));
  for (std::uint32_t c : counts) EXPECT_EQ(120 % c, 0u);
}

TEST(Sweep, RunRequestPreservesOrder) {
  auto wl = workloads::make_benchmark("Denoise", 0.03);
  const auto points = paper_network_configs(6);
  const auto results =
      run(SweepRequest{}.add_points({points[0], points[3]}, wl));
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].result.jobs, wl.invocations);
  EXPECT_EQ(results[1].result.jobs, wl.invocations);
  EXPECT_NE(results[0].result.config, results[1].result.config);
  EXPECT_FALSE(results[0].from_cache);  // no cache on the request
  EXPECT_GT(results[0].events, 0u);
}

TEST(Sweep, RequestBuildersCompose) {
  auto wl = workloads::make_benchmark("Denoise", 0.03);
  ResultCache cache;
  SweepRequest req;
  req.add(core::ArchConfig::paper_baseline(6), wl)
      .add_points(paper_network_configs(3), wl)
      .with_jobs(2)
      .with_cache(&cache);
  EXPECT_EQ(req.sweep.size(), 6u);
  EXPECT_EQ(req.jobs, 2u);
  EXPECT_EQ(req.cache, &cache);
  for (const auto& job : req.sweep) EXPECT_EQ(job.workload, &wl);
}

TEST(Table, AlignsAndPrintsRows) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x"});  // short row padded
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.185), "18.5%");
}

}  // namespace
}  // namespace ara::dse
