// Unit tests for the mesh NoC: topology, XY routing, contention, accounting.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "noc/mesh.h"

namespace ara::noc {
namespace {

MeshConfig small_config() {
  MeshConfig c;
  c.width = 4;
  c.height = 4;
  c.link_bytes_per_cycle = 16;
  c.local_port_bytes_per_cycle = 16;
  c.router_latency = 2;
  return c;
}

TEST(Mesh, NodeCoordinatesRoundTrip) {
  Mesh m(small_config());
  EXPECT_EQ(m.node_count(), 16u);
  for (std::uint32_t y = 0; y < 4; ++y) {
    for (std::uint32_t x = 0; x < 4; ++x) {
      const NodeId n = m.node_at(x, y);
      EXPECT_EQ(m.x_of(n), x);
      EXPECT_EQ(m.y_of(n), y);
    }
  }
}

TEST(Mesh, HopCountIsManhattan) {
  Mesh m(small_config());
  EXPECT_EQ(m.hops(m.node_at(0, 0), m.node_at(0, 0)), 0u);
  EXPECT_EQ(m.hops(m.node_at(0, 0), m.node_at(3, 0)), 3u);
  EXPECT_EQ(m.hops(m.node_at(0, 0), m.node_at(3, 3)), 6u);
  EXPECT_EQ(m.hops(m.node_at(2, 1), m.node_at(1, 3)), 3u);
}

TEST(Mesh, TransferLatencyScalesWithDistance) {
  Mesh m(small_config());
  const Tick near = m.transfer(0, m.node_at(0, 0), m.node_at(1, 0), 64);
  Mesh m2(small_config());
  const Tick far = m2.transfer(0, m2.node_at(0, 0), m2.node_at(3, 3), 64);
  EXPECT_GT(far, near);
}

TEST(Mesh, ZeroByteTransferIsFree) {
  Mesh m(small_config());
  EXPECT_EQ(m.transfer(7, 0, 5, 0), 7u);
  EXPECT_EQ(m.total_packets(), 0u);
}

TEST(Mesh, SelfTransferUsesOnlyLocalPort) {
  Mesh m(small_config());
  const Tick t = m.transfer(0, 5, 5, 64);
  // One ejection: occupancy 4 cycles (64B at 16B/c) + router latency 2.
  EXPECT_EQ(t, 6u);
}

TEST(Mesh, ContentionSerializesSameRoute) {
  Mesh m(small_config());
  const NodeId a = m.node_at(0, 0), b = m.node_at(3, 0);
  const Tick t1 = m.transfer(0, a, b, 1024);
  const Tick t2 = m.transfer(0, a, b, 1024);
  EXPECT_GT(t2, t1);  // queued behind the first on every hop
}

TEST(Mesh, DisjointRoutesDoNotInterfere) {
  Mesh m(small_config());
  const Tick t1 = m.transfer(0, m.node_at(0, 0), m.node_at(1, 0), 256);
  const Tick t2 = m.transfer(0, m.node_at(0, 3), m.node_at(1, 3), 256);
  EXPECT_EQ(t1, t2);  // same shape, different rows
}

TEST(Mesh, FlitAccounting) {
  Mesh m(small_config());
  m.transfer(0, m.node_at(0, 0), m.node_at(2, 0), 64);
  // 64B = 4 flits of 16B; path = 2 hops + ejection = 3 links.
  EXPECT_EQ(m.total_flit_hops(), 12u);
  EXPECT_EQ(m.total_bytes_injected(), 64u);
  EXPECT_EQ(m.total_packets(), 1u);
}

TEST(Mesh, ControlMessageIsOneFlit) {
  Mesh m(small_config());
  m.send_control(0, m.node_at(0, 0), m.node_at(1, 0));
  EXPECT_EQ(m.total_flit_hops(), 2u);  // 1 flit x (1 hop + ejection)
}

TEST(Mesh, UtilizationReflectsTraffic) {
  Mesh m(small_config());
  EXPECT_DOUBLE_EQ(m.max_link_utilization(100), 0.0);
  const Tick end = m.transfer(0, m.node_at(0, 0), m.node_at(3, 3), 4096);
  EXPECT_GT(m.max_link_utilization(end), 0.2);
  EXPECT_LE(m.max_link_utilization(end), 1.0);
}

TEST(Mesh, RejectsOutOfRangeEndpoints) {
  Mesh m(small_config());
  EXPECT_THROW(m.transfer(0, 0, 99, 64), ConfigError);
}

TEST(Mesh, ChunkingPipelinesLargeTransfers) {
  // A large transfer should take roughly size/bw + path latency, not
  // path_length * size/bw (store-and-forward of the whole payload).
  Mesh m(small_config());
  const NodeId a = m.node_at(0, 0), b = m.node_at(3, 3);
  const Bytes size = 16 * 1024;
  const Tick t = m.transfer(0, a, b, size);
  const double serialization = static_cast<double>(size) / 16.0;
  EXPECT_LT(static_cast<double>(t), serialization * 2.0);
  EXPECT_GE(static_cast<double>(t), serialization);
}

TEST(Router, PortsExistAndAccumulate) {
  Mesh m(small_config());
  m.transfer(0, m.node_at(0, 0), m.node_at(1, 0), 128);
  const Router& r = m.router(m.node_at(0, 0));
  EXPECT_EQ(r.port(Direction::kEast).total_bytes(), 128u);
  EXPECT_GT(r.total_bytes(), 0u);
}

TEST(Mesh, RejectsZeroDimensions) {
  MeshConfig c = small_config();
  c.width = 0;
  EXPECT_THROW(Mesh m(c), ConfigError);
}

}  // namespace
}  // namespace ara::noc
