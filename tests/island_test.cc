// Unit tests for the island layer: SPM groups, crossbars, SPM<->DMA
// networks, DMA engine, and the assembled island's data-movement paths.
#include <gtest/gtest.h>

#include <memory>

#include "common/config_error.h"
#include "island/island.h"
#include "island/spm_dma_net.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"

namespace ara::island {
namespace {

TEST(SpmGroup, TracksTrafficAndEnergy) {
  SpmGroup spm("s", 8192, 5, 5);
  spm.record_write(1024);
  spm.record_read(2048);
  EXPECT_EQ(spm.bytes_written(), 1024u);
  EXPECT_EQ(spm.bytes_read(), 2048u);
  EXPECT_GT(spm.dynamic_energy_j(), 0.0);
  EXPECT_GT(spm.area_mm2(), 0.0);
  EXPECT_GT(spm.leakage_mw(), 0.0);
}

TEST(SpmGroup, MorePortsMoreArea) {
  SpmGroup one("a", 8192, 1, 1);
  SpmGroup five("b", 8192, 5, 5);
  EXPECT_GT(five.area_mm2(), one.area_mm2());
}

TEST(SpmGroup, RejectsZeroCapacity) {
  EXPECT_THROW(SpmGroup("bad", 0, 1, 1), ConfigError);
}

TEST(AbbSpmXbar, SharingTriplesAreaAndAddsLatency) {
  AbbSpmXbar priv("p", 5, 8192, false);
  AbbSpmXbar shared("s", 5, 8192, true);
  EXPECT_NEAR(shared.area_mm2() / priv.area_mm2(), 3.0, 1e-9);
  EXPECT_GT(shared.latency(), priv.latency());
}

TEST(AbbSpmXbar, Sec51SpmToXbarRatio) {
  // Paper Sec. 5.1: SPM ~20% of the private crossbar area, ~7% with
  // sharing (2/3 capacity vs 3X crossbar).
  SpmGroup spm("s", 8192, 5, 5);
  AbbSpmXbar priv("p", 5, 8192, false);
  EXPECT_NEAR(spm.area_mm2() / priv.area_mm2(), 0.20, 0.02);
  // Sharing triples the crossbar (sized from the baseline footprint):
  // the same SPM is now ~6.7% of it (the paper's "reduced to 7%").
  AbbSpmXbar shared("sh", 5, 8192, true);
  EXPECT_NEAR(spm.area_mm2() / shared.area_mm2(), 0.067, 0.01);
}

SpmDmaNetConfig ring_cfg(std::uint32_t rings, Bytes width) {
  SpmDmaNetConfig c;
  c.topology = SpmDmaTopology::kRing;
  c.num_rings = rings;
  c.link_bytes = width;
  return c;
}

TEST(SpmDmaNet, FactoryProducesRequestedTopology) {
  SpmDmaNetConfig c;
  c.topology = SpmDmaTopology::kProxyXbar;
  EXPECT_EQ(make_spm_dma_net("n", c, 4)->topology(),
            SpmDmaTopology::kProxyXbar);
  c.topology = SpmDmaTopology::kChainingXbar;
  EXPECT_EQ(make_spm_dma_net("n", c, 4)->topology(),
            SpmDmaTopology::kChainingXbar);
  EXPECT_EQ(make_spm_dma_net("n", ring_cfg(2, 32), 4)->topology(),
            SpmDmaTopology::kRing);
}

TEST(SpmDmaNet, FactoryRejectsBadConfigs) {
  SpmDmaNetConfig c;
  EXPECT_THROW(make_spm_dma_net("n", c, 0), ConfigError);
  c.topology = SpmDmaTopology::kRing;
  c.num_rings = 0;
  EXPECT_THROW(make_spm_dma_net("n", c, 4), ConfigError);
}

TEST(ProxyXbar, ChainCrossesHubTwice) {
  SpmDmaNetConfig c;
  c.topology = SpmDmaTopology::kProxyXbar;
  c.link_bytes = 32;
  ProxyXbarNet net("n", c, 8);
  // A chain moves bytes SPM->DMA->SPM: hub sees the payload twice.
  net.chain(0, 0, 3, 256);
  EXPECT_EQ(net.total_bytes(), 512u);
}

TEST(ProxyXbar, LoadAndDrainCrossHubOnce) {
  SpmDmaNetConfig c;
  c.topology = SpmDmaTopology::kProxyXbar;
  ProxyXbarNet net("n", c, 8);
  net.to_spm(0, 2, 256);
  net.from_spm(0, 2, 256);
  EXPECT_EQ(net.total_bytes(), 512u);
}

TEST(ChainingXbar, SingleTraversalChain) {
  SpmDmaNetConfig c;
  c.topology = SpmDmaTopology::kChainingXbar;
  ChainingXbarNet cnet("c", c, 8);
  ProxyXbarNet pnet("p", c, 8);
  const Tick tc = cnet.chain(0, 0, 7, 4096);
  const Tick tp = pnet.chain(0, 0, 7, 4096);
  EXPECT_LT(tc, tp);  // direct SPM->SPM beats two hub traversals
}

TEST(ChainingXbar, AreaExplodesWithIslandSize) {
  SpmDmaNetConfig c;
  c.topology = SpmDmaTopology::kChainingXbar;
  ChainingXbarNet small("s", c, 5);
  ChainingXbarNet big("b", c, 40);
  // Cubic growth: 40-ABB island is vastly more than 8X the 5-ABB one.
  EXPECT_GT(big.area_mm2() / small.area_mm2(), 100.0);
}

TEST(RingNet, HopsDeterminelatency) {
  RingNet net("r", ring_cfg(1, 32), 8);
  const Tick near = net.to_spm(0, 0, 64);   // stop 0 -> 1: one hop
  RingNet net2("r2", ring_cfg(1, 32), 8);
  const Tick far = net2.to_spm(0, 7, 64);   // stop 0 -> 8: eight hops
  EXPECT_GT(far, near);
}

TEST(RingNet, UnidirectionalWrapAround) {
  RingNet net("r", ring_cfg(1, 32), 8);
  // from_spm(0): stop 1 -> stop 0 must wrap the whole ring (8 hops).
  const Tick t = net.from_spm(0, 0, 64);
  RingNet net2("r2", ring_cfg(1, 32), 8);
  const Tick t2 = net2.to_spm(0, 0, 64);
  EXPECT_GT(t, t2);
}

TEST(RingNet, MultipleRingsAddBandwidth) {
  RingNet one("r1", ring_cfg(1, 32), 8);
  RingNet two("r2", ring_cfg(2, 32), 8);
  // Same big transfer: two rings stripe chunks and finish sooner.
  const Tick t1 = one.to_spm(0, 4, 16 * 1024);
  const Tick t2 = two.to_spm(0, 4, 16 * 1024);
  EXPECT_LT(t2, t1);
}

TEST(RingNet, WiderLinksFaster) {
  RingNet narrow("rn", ring_cfg(1, 16), 8);
  RingNet wide("rw", ring_cfg(1, 32), 8);
  EXPECT_LT(wide.to_spm(0, 4, 8192), narrow.to_spm(0, 4, 8192));
}

TEST(RingNet, ByteHopAccounting) {
  RingNet net("r", ring_cfg(1, 32), 4);
  net.to_spm(0, 0, 64);  // 1 hop
  EXPECT_EQ(net.byte_hops(), 64u);
  net.to_spm(0, 3, 64);  // 4 hops
  EXPECT_EQ(net.byte_hops(), 64u + 256u);
  EXPECT_GT(net.dynamic_energy_j(), 0.0);
}

TEST(RingNet, AreaScalesWithWidthAndRings) {
  RingNet a("a", ring_cfg(1, 16), 8);
  RingNet b("b", ring_cfg(1, 32), 8);
  RingNet c("c", ring_cfg(3, 32), 8);
  EXPECT_NEAR(b.area_mm2() / a.area_mm2(), 2.0, 1e-9);
  // Sublinear ring-count growth (shared spine): 3 rings < 3X one ring.
  EXPECT_GT(c.area_mm2(), 2.0 * b.area_mm2());
  EXPECT_LT(c.area_mm2(), 3.0 * b.area_mm2());
}

TEST(DmaEngine, ProcessesAtConfiguredRate) {
  DmaEngine dma("d", 64.0, 512);
  const Tick t = dma.process(0, 640);  // 10 cycles + 4 latency
  EXPECT_EQ(t, 14u);
  EXPECT_EQ(dma.total_bytes(), 640u);
}

TEST(DmaEngine, RejectsSubBlockChunks) {
  EXPECT_THROW(DmaEngine("d", 64.0, 32), ConfigError);
}

// ---- assembled island ----

class IslandTest : public ::testing::Test {
 protected:
  IslandTest() : mesh_(noc::MeshConfig{}) {
    mem::MemorySystemConfig mcfg;
    std::vector<NodeId> l2_nodes, mc_nodes;
    for (std::uint32_t i = 0; i < mcfg.num_l2_banks; ++i) {
      l2_nodes.push_back(mesh_.node_at(2, i % 8));
    }
    for (std::uint32_t i = 0; i < mcfg.num_memory_controllers; ++i) {
      mc_nodes.push_back(mesh_.node_at(0, i));
    }
    mem_ = std::make_unique<mem::MemorySystem>(mesh_, mcfg, l2_nodes,
                                               mc_nodes);
  }

  std::unique_ptr<Island> make_island(IslandId id, NodeId node,
                                      IslandConfig cfg = {}) {
    const std::vector<abb::AbbKind> kinds = {
        abb::AbbKind::kPoly, abb::AbbKind::kPoly, abb::AbbKind::kDivide,
        abb::AbbKind::kSqrt, abb::AbbKind::kSum};
    return std::make_unique<Island>(id, mesh_, node, *mem_, cfg, kinds);
  }

  noc::Mesh mesh_;
  std::unique_ptr<mem::MemorySystem> mem_;
};

TEST_F(IslandTest, BuildsRequestedBlocks) {
  auto isl = make_island(0, 9);
  EXPECT_EQ(isl->num_abbs(), 5u);
  EXPECT_EQ(isl->engine(0).kind(), abb::AbbKind::kPoly);
  EXPECT_EQ(isl->engine(2).kind(), abb::AbbKind::kDivide);
  EXPECT_FALSE(isl->engine(0).is_fabric());
}

TEST_F(IslandTest, FabricBlocksAppended) {
  IslandConfig cfg;
  cfg.fabric_blocks = 2;
  auto isl = make_island(0, 9, cfg);
  EXPECT_EQ(isl->num_abbs(), 7u);
  EXPECT_TRUE(isl->engine(5).is_fabric());
  EXPECT_TRUE(isl->engine(6).is_fabric());
}

TEST_F(IslandTest, DmaLoadMovesDataIntoSpm) {
  auto isl = make_island(0, 9);
  const Addr a = mem_->allocate(4096);
  const Tick t = isl->dma_load(0, a, 4096, 0);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(isl->spm(0).bytes_written(), 4096u);
  EXPECT_EQ(isl->dma().total_bytes(), 4096u);
  EXPECT_GT(isl->net().total_bytes(), 0u);
}

TEST_F(IslandTest, DmaStoreDrainsSpm) {
  auto isl = make_island(0, 9);
  const Addr a = mem_->allocate(2048);
  const Tick t = isl->dma_store(0, 1, a, 2048);
  EXPECT_GT(t, 0u);
  EXPECT_EQ(isl->spm(1).bytes_read(), 2048u);
}

TEST_F(IslandTest, IntraIslandChainSkipsNoC) {
  auto isl = make_island(0, 9);
  const std::uint64_t packets_before = mesh_.total_packets();
  Island::chain(0, *isl, 0, *isl, 1, 1024);
  EXPECT_EQ(mesh_.total_packets(), packets_before);
  EXPECT_EQ(isl->spm(0).bytes_read(), 1024u);
  EXPECT_EQ(isl->spm(1).bytes_written(), 1024u);
}

TEST_F(IslandTest, InterIslandChainCrossesNoC) {
  auto a = make_island(0, 9);
  auto b = make_island(1, 30);
  const std::uint64_t packets_before = mesh_.total_packets();
  const Tick t_inter = Island::chain(0, *a, 0, *b, 1, 1024);
  EXPECT_GT(mesh_.total_packets(), packets_before);
  auto c = make_island(2, 9);
  const Tick t_intra = Island::chain(0, *c, 0, *c, 1, 1024);
  EXPECT_GT(t_inter, t_intra);
}

TEST_F(IslandTest, SharingShrinksSpmGrowsXbar) {
  auto priv = make_island(0, 9);
  IslandConfig cfg;
  cfg.spm_sharing = true;
  auto shared = make_island(1, 30, cfg);
  EXPECT_LT(shared->spm(0).capacity(), priv->spm(0).capacity());
  EXPECT_GT(shared->abb_spm_xbar_area_mm2(), priv->abb_spm_xbar_area_mm2());
}

TEST_F(IslandTest, PortMultiplierGrowsSpmArea) {
  auto exact = make_island(0, 9);
  IslandConfig cfg;
  cfg.spm_port_multiplier = 2;
  auto doubled = make_island(1, 30, cfg);
  EXPECT_GT(doubled->spm_area_mm2(), exact->spm_area_mm2());
  EXPECT_EQ(doubled->engine(0).spm_ports(), 2 * exact->engine(0).spm_ports());
}

TEST_F(IslandTest, AreaRollupsArePositiveAndAdditive) {
  auto isl = make_island(0, 9);
  const double total = isl->total_area_mm2();
  EXPECT_GT(total, 0.0);
  EXPECT_GT(total, isl->compute_area_mm2() + isl->spm_area_mm2());
}

TEST_F(IslandTest, EnergyRollupCoversComponents) {
  auto isl = make_island(0, 9);
  const Addr a = mem_->allocate(4096);
  isl->dma_load(0, a, 4096, 0);
  isl->engine(0).execute(0, 100);
  const double total = isl->dynamic_energy_j();
  EXPECT_GT(total, 0.0);
  EXPECT_NEAR(total,
              isl->compute_energy_j() + isl->spm_energy_j() +
                  isl->xbar_energy_j() + isl->net_energy_j() +
                  isl->dma_energy_j(),
              1e-15);
}

TEST_F(IslandTest, UtilizationStats) {
  IslandConfig cfg;
  cfg.base_conflict_rate = 0.0;  // exact arithmetic for the assertion
  auto isl = make_island(0, 9, cfg);
  isl->engine(0).execute(0, 960);  // poly: 40 + 960 = 1000 busy
  EXPECT_NEAR(isl->avg_abb_utilization(2000), 0.1, 1e-9);  // 0.5 / 5 abbs
  EXPECT_NEAR(isl->peak_abb_utilization(2000), 0.5, 1e-9);
}

}  // namespace
}  // namespace ara::island
