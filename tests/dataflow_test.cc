// Unit tests for the dataflow layer: DFG, kernel IR, and the decomposer.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "dataflow/decomposer.h"
#include "dataflow/dfg.h"
#include "dataflow/kernel_ir.h"

namespace ara::dataflow {
namespace {

DfgNode simple_node(abb::AbbKind kind = abb::AbbKind::kPoly,
                    std::uint64_t elements = 100) {
  DfgNode n;
  n.kind = kind;
  n.elements = elements;
  n.mem_in_bytes = elements * 4;
  n.chain_in_bytes = elements * 4;
  return n;
}

TEST(Dfg, AddNodesAndEdges) {
  Dfg g("test");
  const TaskId a = g.add_node(simple_node());
  const TaskId b = g.add_node(simple_node(abb::AbbKind::kDivide));
  g.add_edge(a, b);
  g.finalize();
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.node(b).preds.size(), 1u);
  EXPECT_EQ(g.node(a).succs.size(), 1u);
  EXPECT_EQ(g.chain_edges(), 1u);
}

TEST(Dfg, TopoOrderRespectsEdges) {
  Dfg g;
  const TaskId a = g.add_node(simple_node());
  const TaskId b = g.add_node(simple_node());
  const TaskId c = g.add_node(simple_node());
  g.add_edge(c, b);  // c -> b, a independent
  g.add_edge(b, a);  // b -> a
  g.finalize();
  const auto& topo = g.topo_order();
  std::vector<std::size_t> pos(3);
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  EXPECT_LT(pos[c], pos[b]);
  EXPECT_LT(pos[b], pos[a]);
}

TEST(Dfg, DetectsCycles) {
  Dfg g;
  const TaskId a = g.add_node(simple_node());
  const TaskId b = g.add_node(simple_node());
  g.add_edge(a, b);
  g.add_edge(b, a);
  EXPECT_THROW(g.finalize(), ConfigError);
}

TEST(Dfg, RejectsSelfEdgeAndBadIds) {
  Dfg g;
  const TaskId a = g.add_node(simple_node());
  EXPECT_THROW(g.add_edge(a, a), ConfigError);
  EXPECT_THROW(g.add_edge(a, 99), ConfigError);
}

TEST(Dfg, RejectsMutationAfterFinalize) {
  Dfg g;
  g.add_node(simple_node());
  g.finalize();
  EXPECT_THROW(g.add_node(simple_node()), ConfigError);
  EXPECT_THROW(g.finalize(), ConfigError);
}

TEST(Dfg, ChainingDegree) {
  Dfg g;
  const TaskId a = g.add_node(simple_node());
  const TaskId b = g.add_node(simple_node());
  g.add_node(simple_node());
  g.add_node(simple_node());
  g.add_edge(a, b);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.chaining_degree(), 0.25);
}

TEST(Dfg, TotalsAndCriticalPath) {
  Dfg g;
  const TaskId a = g.add_node(simple_node(abb::AbbKind::kPoly, 100));
  const TaskId b = g.add_node(simple_node(abb::AbbKind::kDivide, 100));
  const TaskId c = g.add_node(simple_node(abb::AbbKind::kSqrt, 100));
  g.add_edge(a, b);
  g.add_edge(b, c);
  g.finalize();
  EXPECT_EQ(g.total_mem_in(), 3u * 400u);
  EXPECT_EQ(g.total_chain_bytes(), 2u * 400u);
  EXPECT_EQ(g.critical_path_nodes(), 3u);
}

TEST(Dfg, FusedProfileAccumulates) {
  Dfg g;
  const TaskId a = g.add_node(simple_node(abb::AbbKind::kPoly, 200));
  const TaskId b = g.add_node(simple_node(abb::AbbKind::kDivide, 200));
  g.add_edge(a, b);
  g.finalize();
  const FusedProfile fp = g.fused_profile();
  EXPECT_EQ(fp.pipeline_latency,
            abb::params(abb::AbbKind::kPoly).pipeline_latency +
                abb::params(abb::AbbKind::kDivide).pipeline_latency);
  EXPECT_EQ(fp.elements, 200u);
  EXPECT_GT(fp.energy_pj_per_invocation, 0.0);
  EXPECT_GT(fp.area_mm2, 0.0);
}

// ---- kernel IR ----

TEST(KernelIr, BuildersValidate) {
  KernelIr ir("k", 100);
  const auto a = ir.input();
  const auto b = ir.input();
  const auto s = ir.binary(IrOp::kAdd, a, b);
  const auto q = ir.unary(IrOp::kSqrt, s);
  ir.mark_output(q);
  EXPECT_EQ(ir.size(), 4u);
  EXPECT_EQ(ir.input_count(), 2u);
  EXPECT_THROW(ir.binary(IrOp::kAdd, a, 99), ConfigError);
  EXPECT_THROW(ir.unary(IrOp::kAdd, a), ConfigError);
  EXPECT_THROW(ir.binary(IrOp::kSqrt, a, b), ConfigError);
  EXPECT_THROW(ir.mark_output(99), ConfigError);
}

TEST(KernelIr, OpClassification) {
  EXPECT_TRUE(is_poly_op(IrOp::kAdd));
  EXPECT_TRUE(is_poly_op(IrOp::kMul));
  EXPECT_FALSE(is_poly_op(IrOp::kDiv));
  EXPECT_TRUE(is_direct_abb_op(IrOp::kDiv));
  EXPECT_TRUE(is_direct_abb_op(IrOp::kReduceSum));
  EXPECT_FALSE(is_direct_abb_op(IrOp::kSin));
  EXPECT_TRUE(is_fabric_op(IrOp::kSin));
}

// ---- decomposer ----

TEST(Decomposer, GroupsArithmeticIntoOnePolyBlock) {
  KernelIr ir("k", 64);
  const auto a = ir.input();
  const auto b = ir.input();
  const auto c = ir.input();
  const auto m = ir.binary(IrOp::kMul, a, b);
  const auto s = ir.binary(IrOp::kAdd, m, c);
  ir.mark_output(s);
  const auto result = Decomposer().decompose(ir);
  EXPECT_EQ(result.poly_groups, 1u);
  EXPECT_EQ(result.dfg.size(), 1u);
  EXPECT_EQ(result.dfg.node(0).kind, abb::AbbKind::kPoly);
  // 3 streamed inputs x 64 elements x 4 bytes.
  EXPECT_EQ(result.dfg.node(0).mem_in_bytes, 3u * 64u * 4u);
  EXPECT_EQ(result.dfg.node(0).mem_out_bytes, 64u * 4u);
}

TEST(Decomposer, DirectOpsGetDedicatedBlocks) {
  KernelIr ir("k", 32);
  const auto a = ir.input();
  const auto b = ir.input();
  const auto d = ir.binary(IrOp::kDiv, a, b);
  const auto q = ir.unary(IrOp::kSqrt, d);
  ir.mark_output(q);
  const auto result = Decomposer().decompose(ir);
  EXPECT_EQ(result.direct_ops, 2u);
  EXPECT_EQ(result.dfg.size(), 2u);
  EXPECT_EQ(result.dfg.chain_edges(), 1u);  // div -> sqrt
}

TEST(Decomposer, SplitsGroupsAtSixteenInputs) {
  // Sum 20 inputs pairwise: one poly block holds at most 16 externals.
  KernelIr ir("k", 16);
  std::vector<std::uint32_t> vals;
  for (int i = 0; i < 20; ++i) vals.push_back(ir.input());
  std::uint32_t acc = vals[0];
  for (int i = 1; i < 20; ++i) acc = ir.binary(IrOp::kAdd, acc, vals[i]);
  ir.mark_output(acc);
  const auto result = Decomposer().decompose(ir);
  EXPECT_GE(result.poly_groups, 2u);
  for (const auto& n : result.dfg.nodes()) {
    EXPECT_LE(n.mem_in_bytes / (16 * 4), 16u);
  }
}

TEST(Decomposer, FabricOpsFlaggedOrRejected) {
  KernelIr ir("k", 16);
  const auto a = ir.input();
  const auto s = ir.unary(IrOp::kSin, a);
  ir.mark_output(s);
  const auto result = Decomposer(/*allow_fabric=*/true).decompose(ir);
  EXPECT_EQ(result.fabric_ops, 1u);
  EXPECT_TRUE(result.dfg.node(0).needs_fabric);
  EXPECT_THROW(Decomposer(/*allow_fabric=*/false).decompose(ir),
               ConfigError);
}

TEST(Decomposer, ConstantsAreNotOperandTraffic) {
  KernelIr ir("k", 64);
  const auto a = ir.input();
  const auto c = ir.constant();
  const auto m = ir.binary(IrOp::kMul, a, c);
  ir.mark_output(m);
  const auto result = Decomposer().decompose(ir);
  EXPECT_EQ(result.dfg.node(0).mem_in_bytes, 64u * 4u);  // only `a`
}

TEST(Decomposer, ChainEdgesBetweenGroups) {
  // poly -> div -> poly: three tasks, two chain edges.
  KernelIr ir("k", 64);
  const auto a = ir.input();
  const auto b = ir.input();
  const auto s = ir.binary(IrOp::kAdd, a, b);
  const auto d = ir.binary(IrOp::kDiv, s, a);
  const auto t = ir.binary(IrOp::kMul, d, d);
  ir.mark_output(t);
  const auto result = Decomposer().decompose(ir);
  EXPECT_EQ(result.dfg.size(), 3u);
  EXPECT_EQ(result.dfg.chain_edges(), 2u);
  EXPECT_EQ(result.dfg.critical_path_nodes(), 3u);
}

TEST(Decomposer, ReductionMapsToSumBlock) {
  KernelIr ir("k", 64);
  std::vector<std::uint32_t> vals;
  for (int i = 0; i < 8; ++i) vals.push_back(ir.input());
  const auto r = ir.reduce(vals);
  ir.mark_output(r);
  const auto result = Decomposer().decompose(ir);
  ASSERT_EQ(result.dfg.size(), 1u);
  EXPECT_EQ(result.dfg.node(0).kind, abb::AbbKind::kSum);
}

}  // namespace
}  // namespace ara::dataflow
