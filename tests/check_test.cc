// Tests for the ara::check correctness harness: the invariant checker must
// pass cleanly on healthy runs across execution modes without perturbing
// results, and — the part that proves the checker actually checks — a
// deliberately injected conservation bug must be caught.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "check/check.h"
#include "check/fuzz.h"
#include "core/arch_config.h"
#include "core/config_digest.h"
#include "core/run_result.h"
#include "core/system.h"
#include "sim/event_queue.h"
#include "workloads/registry.h"

namespace ara::check {
namespace {

workloads::Workload small_workload() {
  return workloads::make_benchmark("Denoise", 0.03);
}

/// A ledger that satisfies every conservation law (5 invocations of a
/// 4-task DFG with 2 chain edges, one edge per job spilled).
RunLedger balanced_ledger() {
  RunLedger l;
  l.invocations = 5;
  l.tasks_expected = 20;
  l.chain_edges_expected = 10;
  l.jobs_submitted = 5;
  l.jobs_completed = 5;
  l.gam_requests = 5;
  l.interrupts = 5;
  l.tasks_started = 20;
  l.chains_direct = 5;
  l.chains_spilled = 5;
  l.events_scheduled = 400;
  l.events_dispatched = 400;
  l.events_pending = 0;
  return l;
}

TEST(VerifyLedger, AcceptsBalancedLedger) {
  EXPECT_GT(verify_ledger(balanced_ledger()), 0u);
}

// Every conservation law individually: corrupt exactly one field and the
// verifier must throw a CheckError naming a violated invariant.
TEST(VerifyLedger, CatchesEveryCorruptedField) {
  struct Corruption {
    const char* name;
    std::uint64_t RunLedger::* field;
  };
  const Corruption corruptions[] = {
      {"jobs_submitted", &RunLedger::jobs_submitted},
      {"jobs_completed", &RunLedger::jobs_completed},
      {"gam_requests", &RunLedger::gam_requests},
      {"interrupts", &RunLedger::interrupts},
      {"tasks_started", &RunLedger::tasks_started},
      {"chains_direct", &RunLedger::chains_direct},
      {"chains_spilled", &RunLedger::chains_spilled},
      {"events_scheduled", &RunLedger::events_scheduled},
      {"events_dispatched", &RunLedger::events_dispatched},
      {"events_pending", &RunLedger::events_pending},
  };
  for (const auto& c : corruptions) {
    RunLedger bad = balanced_ledger();
    bad.*(c.field) += 1;  // one lost/duplicated job, task, chain or event
    try {
      verify_ledger(bad);
      FAIL() << "corrupting " << c.name << " was not detected";
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find("invariant violated"),
                std::string::npos)
          << c.name << ": " << e.what();
    }
  }
}

// Acceptance-criterion negative test: take the ledger of a real, healthy
// run and inject a conservation bug (a completed job that never happened).
// The same verifier that just passed the pristine ledger must now throw.
TEST(VerifyLedger, InjectedConservationBugInRealRunIsCaught) {
  ScopedEnable on;
  core::System sys(core::ArchConfig::paper_baseline(6));
  sys.run(small_workload());
  ASSERT_NE(sys.checker(), nullptr);

  const RunLedger& healthy = sys.checker()->last_ledger();
  EXPECT_GT(verify_ledger(healthy), 0u);

  RunLedger corrupted = healthy;
  corrupted.jobs_completed += 1;
  EXPECT_THROW(verify_ledger(corrupted), CheckError);
}

TEST(InvariantChecker, CleanRunsAcrossExecutionModes) {
  ScopedEnable on;
  const auto wl = small_workload();

  core::ArchConfig composable = core::ArchConfig::ring_design(6, 2, 32);
  core::ArchConfig sharing = composable;
  sharing.island.spm_sharing = true;
  core::ArchConfig per_task = composable;
  per_task.force_per_task = true;
  core::ArchConfig mono = composable;
  mono.mode = abc::ExecutionMode::kMonolithic;

  for (const auto& cfg : {composable, sharing, per_task, mono}) {
    core::System sys(cfg);
    const auto r = sys.run(wl);
    EXPECT_EQ(r.jobs, wl.invocations);
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_GT(sys.checker()->checks_passed(), 0u);
    EXPECT_GE(sys.checker()->samples(), 1u);
  }
}

TEST(InvariantChecker, CheckedRunIsBitIdenticalToUnchecked) {
  const core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  const auto wl = small_workload();

  core::RunResult plain;
  std::uint64_t plain_events = 0;
  {
    ScopedEnable off(false);
    core::System sys(cfg);
    plain = sys.run(wl);
    plain_events = sys.simulator().events_processed();
    EXPECT_EQ(sys.checker(), nullptr);
  }

  ScopedEnable on;
  core::System sys(cfg);
  const core::RunResult checked = sys.run(wl);
  EXPECT_EQ(checked, plain) << "invariant checking perturbed the simulation";
  EXPECT_EQ(sys.simulator().events_processed(), plain_events);
}

// Stats accumulate across run() calls on one System; the ledger must be
// per-run deltas, so a second run verifies against its own expectations.
TEST(InvariantChecker, MultiRunSystemVerifiesPerRun) {
  ScopedEnable on;
  core::System sys(core::ArchConfig::paper_baseline(3));
  const auto wl = small_workload();
  sys.run(wl);
  const std::uint64_t first_checks = sys.checker()->checks_passed();
  sys.run(wl);
  EXPECT_EQ(sys.checker()->last_ledger().invocations, wl.invocations);
  EXPECT_GT(sys.checker()->checks_passed(), first_checks);
}

TEST(CheckEnable, OverrideBeatsEnvironmentAndRestores) {
  clear_enabled_override();
  set_enabled(true);
  EXPECT_TRUE(enabled());
  set_enabled(false);
  EXPECT_FALSE(enabled());
  {
    ScopedEnable on;
    EXPECT_TRUE(enabled());
    {
      ScopedEnable off(false);
      EXPECT_FALSE(enabled());
    }
    EXPECT_TRUE(enabled());
  }
  EXPECT_FALSE(enabled());  // restored to the pre-scope override
  clear_enabled_override();
}

// ------------------------------------------------- simulator observer hook

TEST(SimulatorObserver, FiresEveryPeriodWithoutEnteringEventAccounting) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  sim.set_observer([&fired] { ++fired; }, 10);
  for (int i = 0; i < 95; ++i) {
    sim.schedule_at(static_cast<Tick>(i), [] {});
  }
  EXPECT_EQ(sim.events_scheduled(), 95u);
  sim.run();
  EXPECT_EQ(sim.events_processed(), 95u);  // observer is not an event
  EXPECT_EQ(fired, 9u);                    // floor(95 / 10)
  sim.clear_observer();
}

TEST(SimulatorObserver, ZeroPeriodIsRejected) {
  sim::Simulator sim;
  EXPECT_THROW(sim.set_observer([] {}, 0), sim::ScheduleError);
}

// ---------------------------------------------------------- fuzz generator

TEST(FuzzGenerator, SameSeedSamePoint) {
  const FuzzPoint a = generate_point(42);
  const FuzzPoint b = generate_point(42);
  EXPECT_EQ(core::canonical_text(a.config), core::canonical_text(b.config));
  EXPECT_EQ(core::canonical_text(a.workload),
            core::canonical_text(b.workload));
}

TEST(FuzzGenerator, DifferentSeedsExploreDifferentPoints) {
  const FuzzPoint a = generate_point(1);
  const FuzzPoint b = generate_point(2);
  EXPECT_NE(core::canonical_text(a.config) + core::canonical_text(a.workload),
            core::canonical_text(b.config) + core::canonical_text(b.workload));
}

TEST(FuzzGenerator, GeneratedPointsAreValidAndBounded) {
  const FuzzLimits limits{4, 6, 8};
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    const FuzzPoint p = generate_point(seed, limits);
    EXPECT_NO_THROW(p.config.validate()) << "seed " << seed;
    EXPECT_LE(p.config.num_islands, 4u) << "seed " << seed;
    EXPECT_LE(p.workload.dfg.size(), 6u) << "seed " << seed;
    EXPECT_LE(p.workload.invocations, 8u) << "seed " << seed;
    EXPECT_GE(p.workload.invocations, 2u) << "seed " << seed;
  }
}

TEST(FuzzGenerator, CrossCheckPassesOnAHealthyPoint) {
  const std::string failure = cross_check(generate_point(7, {4, 6, 6}));
  EXPECT_TRUE(failure.empty()) << failure;
}

TEST(FuzzGenerator, ReproTextRecordsSeedLimitsAndFailure) {
  const FuzzLimits limits{4, 6, 8};
  const FuzzPoint p = generate_point(3, limits);
  const std::string text = repro_text(p, limits, "example divergence");
  EXPECT_NE(text.find("seed = 3"), std::string::npos);
  EXPECT_NE(text.find("limits.max_islands = 4"), std::string::npos);
  EXPECT_NE(text.find("example divergence"), std::string::npos);
  EXPECT_NE(text.find("[config]"), std::string::npos);
  EXPECT_NE(text.find("[workload]"), std::string::npos);
}

}  // namespace
}  // namespace ara::check
