// StatRegistry / Histogram edge cases: prefix sums, empty-histogram
// percentiles, overflow-bucket percentiles, max_seen, and the monotonic
// set_counter roll-up used by end-of-run snapshots.
#include <gtest/gtest.h>

#include "sim/stats.h"

namespace ara::sim {
namespace {

TEST(StatRegistry, CounterCreateOrFetch) {
  StatRegistry reg;
  Counter& a = reg.counter("x.count");
  a.inc(3);
  // Same name fetches the same counter.
  EXPECT_EQ(&reg.counter("x.count"), &a);
  EXPECT_EQ(reg.counter("x.count").value(), 3u);
  EXPECT_EQ(reg.find_counter("x.count"), &a);
  EXPECT_EQ(reg.find_counter("absent"), nullptr);
}

TEST(StatRegistry, CounterPrefixSum) {
  StatRegistry reg;
  reg.counter("island.0.spm.bytes").inc(10);
  reg.counter("island.1.spm.bytes").inc(20);
  reg.counter("island.10.spm.bytes").inc(40);
  reg.counter("noc.flits").inc(1000);
  EXPECT_EQ(reg.counter_sum_by_prefix("island."), 70u);
  EXPECT_EQ(reg.counter_sum_by_prefix("island.1"), 60u);  // 1 and 10
  EXPECT_EQ(reg.counter_sum_by_prefix("noc."), 1000u);
  EXPECT_EQ(reg.counter_sum_by_prefix("mem."), 0u);
  // Empty prefix matches everything.
  EXPECT_EQ(reg.counter_sum_by_prefix(""), 1070u);
}

TEST(StatRegistry, AccumulatorPrefixSum) {
  StatRegistry reg;
  reg.accumulator("energy.island").add(1.5);
  reg.accumulator("energy.noc").add(2.5);
  reg.accumulator("other").add(100.0);
  EXPECT_DOUBLE_EQ(reg.accumulator_sum_by_prefix("energy."), 4.0);
  EXPECT_DOUBLE_EQ(reg.accumulator_sum_by_prefix("nope"), 0.0);
}

TEST(StatRegistry, SetCounterIsMonotonic) {
  StatRegistry reg;
  reg.set_counter("sim.events", 100);
  EXPECT_EQ(reg.counter("sim.events").value(), 100u);
  reg.set_counter("sim.events", 250);
  EXPECT_EQ(reg.counter("sim.events").value(), 250u);
  // A lower value must not decrease the counter.
  reg.set_counter("sim.events", 50);
  EXPECT_EQ(reg.counter("sim.events").value(), 250u);
}

TEST(Accumulator, EmptyAndMinMax) {
  Accumulator a("a");
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
  a.add(-2.0);
  a.add(6.0);
  EXPECT_DOUBLE_EQ(a.min(), -2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h("h", 10, 4);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_EQ(h.max_seen(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, BucketAssignmentAndMean) {
  Histogram h("h", 10, 4);  // [0,10) [10,20) [20,30) [30,40) + overflow
  h.record(0);
  h.record(9);
  h.record(10);
  h.record(39);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_DOUBLE_EQ(h.mean(), (0 + 9 + 10 + 39) / 4.0);
  EXPECT_EQ(h.bucket_width(), 10u);
}

TEST(Histogram, OverflowBucketPercentile) {
  Histogram h("h", 10, 2);  // [0,10) [10,20) + overflow
  for (int i = 0; i < 9; ++i) h.record(5);
  h.record(1000);  // overflow
  EXPECT_EQ(h.buckets().back(), 1u);
  // Percentiles are bucket midpoints (halving the old upper-bound bias):
  // p50 resolves to the first bucket's midpoint, while any percentile
  // landing in the open-ended overflow bucket — which has no midpoint —
  // reports the exact max instead.
  EXPECT_EQ(h.percentile(0.5), 5u);
  EXPECT_EQ(h.percentile(0.95), 1000u);
  EXPECT_EQ(h.percentile(1.0), 1000u);
  EXPECT_EQ(h.max_seen(), 1000u);
}

TEST(Histogram, MaxSeenTracksExactValue) {
  Histogram h("h", 64, 8);
  h.record(7);
  h.record(513);  // overflow bucket, exact max still kept
  h.record(12);
  EXPECT_EQ(h.max_seen(), 513u);
}

TEST(Histogram, MinSeenTracksExactValue) {
  Histogram h("h", 64, 8);
  EXPECT_EQ(h.min_seen(), 0u);  // empty histogram reports 0
  h.record(513);
  EXPECT_EQ(h.min_seen(), 513u);  // not stuck at the 0 default
  h.record(7);
  h.record(12);
  EXPECT_EQ(h.min_seen(), 7u);
  EXPECT_EQ(h.max_seen(), 513u);
}

TEST(Histogram, MidpointPercentileInsideOneBucket) {
  Histogram h("h", 100, 4);
  for (int i = 0; i < 4; ++i) h.record(250);  // all in [200,300)
  // Every percentile reports the shared bucket's midpoint, not its upper
  // bound 300 (which would overstate the true value 250 by 20%).
  EXPECT_EQ(h.percentile(0.5), 250u);
  EXPECT_EQ(h.percentile(0.99), 250u);
}

TEST(StatRegistry, HistogramCreateOrFetchKeepsShape) {
  StatRegistry reg;
  Histogram& h = reg.histogram("lat", 32, 16);
  h.record(40);
  // Re-fetch with different (ignored) shape parameters returns the original.
  Histogram& again = reg.histogram("lat", 999, 1);
  EXPECT_EQ(&again, &h);
  EXPECT_EQ(again.bucket_width(), 32u);
  EXPECT_EQ(again.count(), 1u);
}

}  // namespace
}  // namespace ara::sim
