# Smoke test for the event-kernel hot-path benchmark: run it at a reduced
# event budget, require the kernels to agree (the bench exits non-zero on a
# checksum divergence), and strictly validate the emitted BENCH_kernel.json
# with ara_json_check. Invoked by ctest as:
#   cmake -DBENCH=<bench_kernel_hotpath> -DCHECK=<ara_json_check>
#         -DOUT_DIR=<dir> -P bench_kernel_smoke.cmake
foreach(var BENCH CHECK OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_kernel_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(report "${OUT_DIR}/BENCH_kernel.json")

execute_process(
  COMMAND "${BENCH}" --events 20000 --repeats 2 --out "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_kernel_hotpath failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "bench_kernel_hotpath did not write ${report}")
endif()

execute_process(
  COMMAND "${CHECK}" "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "BENCH_kernel.json is not valid JSON (${rc}):\n"
                      "${out}\n${err}")
endif()

# Shape checks: all three scenarios present, checksums matched, and the
# report carries the headline speedup fields.
file(READ "${report}" report_text)
foreach(needle "\"bench\":\"kernel_hotpath\"" "\"near_chain\""
        "\"same_tick_fanout\"" "\"mixed_horizon\"" "\"total\""
        "\"speedup\"" "\"heap_callbacks\"")
  string(FIND "${report_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_kernel.json is missing ${needle}")
  endif()
endforeach()
if(report_text MATCHES "\"checksum_match\":false")
  message(FATAL_ERROR "kernel/legacy checksum divergence in ${report}")
endif()

message(STATUS "kernel hot-path smoke ok: report valid, kernels agree")
