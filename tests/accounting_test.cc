// Tests for the energy/area accounting roll-ups and RunResult metrics.
#include <gtest/gtest.h>

#include <sstream>

#include "common/units.h"
#include "core/arch_config.h"
#include "core/run_result.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "power/energy_accounting.h"
#include "workloads/registry.h"

namespace ara {
namespace {

core::RunResult sim_point(const core::ArchConfig& cfg,
                          const workloads::Workload& w) {
  return dse::run(dse::SweepRequest{}.add(cfg, w)).front().result;
}

core::RunResult run_small() {
  auto w = workloads::make_benchmark("Deblur", 0.05);
  return sim_point(core::ArchConfig::ring_design(6, 2, 32), w);
}

TEST(EnergyAccounting, EveryActiveComponentContributes) {
  const auto r = run_small();
  EXPECT_GT(r.energy.abb_j, 0.0);
  EXPECT_GT(r.energy.spm_j, 0.0);
  EXPECT_GT(r.energy.abb_spm_xbar_j, 0.0);
  EXPECT_GT(r.energy.island_net_j, 0.0);
  EXPECT_GT(r.energy.dma_j, 0.0);
  EXPECT_GT(r.energy.noc_j, 0.0);
  EXPECT_GT(r.energy.l2_j, 0.0);
  EXPECT_GT(r.energy.dram_j, 0.0);
  EXPECT_GT(r.energy.leakage_j, 0.0);
  EXPECT_GT(r.energy.platform_j, 0.0);
  EXPECT_EQ(r.energy.mono_j, 0.0);  // composable mode
}

TEST(EnergyAccounting, PlatformFloorMatchesRuntime) {
  const auto r = run_small();
  EXPECT_NEAR(r.energy.platform_j,
              power::kPlatformPowerW * ticks_to_seconds(r.makespan),
              1e-12);
}

TEST(EnergyAccounting, LongerRunMoreLeakage) {
  auto w1 = workloads::make_benchmark("Deblur", 0.05);
  auto w2 = workloads::make_benchmark("Deblur", 0.15);
  const auto r1 = sim_point(core::ArchConfig::ring_design(6, 2, 32), w1);
  const auto r2 = sim_point(core::ArchConfig::ring_design(6, 2, 32), w2);
  EXPECT_GT(r2.makespan, r1.makespan);
  EXPECT_GT(r2.energy.leakage_j, r1.energy.leakage_j);
}

TEST(AreaAccounting, FixedAcrossWorkloads) {
  auto w1 = workloads::make_benchmark("Denoise", 0.05);
  auto w2 = workloads::make_benchmark("EKF-SLAM", 0.05);
  const auto cfg = core::ArchConfig::ring_design(6, 2, 32);
  const auto r1 = sim_point(cfg, w1);
  const auto r2 = sim_point(cfg, w2);
  EXPECT_DOUBLE_EQ(r1.area.total(), r2.area.total());
  EXPECT_DOUBLE_EQ(r1.area.islands_mm2, r2.area.islands_mm2);
}

TEST(AreaAccounting, MoreAbbsMoreIslandArea) {
  core::ArchConfig small = core::ArchConfig::ring_design(6, 2, 32);
  core::ArchConfig big = small;
  big.total_abbs = 240;
  core::System sys_small(small);
  core::System sys_big(big);
  EXPECT_GT(sys_big.islands_area_mm2(), sys_small.islands_area_mm2());
}

TEST(RunResult, DerivedMetricsConsistent) {
  const auto r = run_small();
  EXPECT_NEAR(r.performance(), static_cast<double>(r.jobs) / r.seconds(),
              1e-6);
  EXPECT_NEAR(r.perf_per_energy(), r.performance() / r.energy.total(), 1e-6);
  EXPECT_NEAR(r.perf_per_island_area(),
              r.performance() / r.area.islands_mm2, 1e-9);
}

TEST(RunResult, ZeroMakespanIsSafe) {
  core::RunResult r;
  EXPECT_EQ(r.performance(), 0.0);
  EXPECT_EQ(r.perf_per_energy(), 0.0);
  EXPECT_EQ(r.perf_per_island_area(), 0.0);
  std::ostringstream os;
  r.print(os);  // must not divide by zero / crash
  EXPECT_FALSE(os.str().empty());
}

TEST(EnergyAccounting, MonolithicModeUsesMonoBucket) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  cfg.mode = abc::ExecutionMode::kMonolithic;
  auto w = workloads::make_benchmark("Denoise", 0.05);
  const auto r = sim_point(cfg, w);
  EXPECT_GT(r.energy.mono_j, 0.0);
  EXPECT_EQ(r.energy.abb_j, 0.0);  // no composable engine activity
}

TEST(EnergyAccounting, BiggerNetworkMoreLeakage) {
  // 3-ring network leaks more than 1-ring (more area).
  auto w = workloads::make_benchmark("Denoise", 0.05);
  const auto r1 = sim_point(core::ArchConfig::ring_design(6, 1, 32), w);
  const auto r3 = sim_point(core::ArchConfig::ring_design(6, 3, 32), w);
  const double leak_rate_1 =
      r1.energy.leakage_j / ticks_to_seconds(r1.makespan);
  const double leak_rate_3 =
      r3.energy.leakage_j / ticks_to_seconds(r3.makespan);
  EXPECT_GT(leak_rate_3, leak_rate_1);
}

}  // namespace
}  // namespace ara
