// Observability layer: trace JSON escaping/validity, capacity + category
// filtering, metrics export (JSON/CSV), the strict JSON validator, and the
// end-to-end System integration (instrumented registry, rich traces,
// deterministic metrics under the parallel sweep executor).
#include <gtest/gtest.h>

#include <sstream>

#include "core/arch_config.h"
#include "core/system.h"
#include "dse/parallel_sweep.h"
#include "obs/json_check.h"
#include "obs/metrics_export.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace ara {
namespace {

// ---- json_check ----

TEST(JsonCheck, AcceptsValidDocuments) {
  for (const char* doc : {
           "{}",
           "[]",
           "null",
           "true",
           "-12.5e3",
           R"({"a":[1,2,{"b":null}],"c":"x\ny","d":"\u00e9"})",
           "[1, 2, 3]",
           "\"plain string\"",
       }) {
    std::string err;
    EXPECT_TRUE(obs::validate_json(doc, &err)) << doc << ": " << err;
  }
}

TEST(JsonCheck, RejectsInvalidDocuments) {
  for (const char* doc : {
           "",
           "{",
           "[1,2,]",
           "{\"a\":}",
           "{\"a\":1,}",
           "01",
           "1.e5",
           "+1",
           "nul",
           "\"unterminated",
           "\"raw\ncontrol\"",
           "\"bad escape \\q\"",
           "\"bad unicode \\u12g4\"",
           "[1] trailing",
           "{\"dup\" 1}",
       }) {
    std::string err;
    EXPECT_FALSE(obs::validate_json(doc, &err)) << doc;
    EXPECT_FALSE(err.empty()) << doc;
  }
}

// ---- trace collector ----

TEST(Trace, JsonEscapesControlCharacters) {
  // Regression: control characters (tab, newline, 0x01) must come out as
  // \uXXXX (or \n/\t) escapes, never raw bytes.
  sim::TraceCollector t;
  t.record_span(std::string("bad\tname\nwith") + '\x01' + "ctrl", 0, 0, 0, 10,
                "task");
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_EQ(out.find('\t'), std::string::npos);
  EXPECT_NE(out.find("\\u0001"), std::string::npos);
  std::string err;
  EXPECT_TRUE(obs::validate_json(out, &err)) << err;
}

TEST(Trace, InstantCarriesTid) {
  sim::TraceCollector t;
  t.record_instant("spill", 3, 7, 100, "spill");
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"tid\":7"), std::string::npos);
  EXPECT_NE(out.find("\"pid\":3"), std::string::npos);
}

TEST(Trace, CapacityCapCountsDropped) {
  sim::TraceCollector t;
  t.set_capacity(3);
  for (int i = 0; i < 10; ++i) {
    t.record_instant("e" + std::to_string(i), 0, 0, i, "task");
  }
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.dropped(), 7u);
  // Metadata bypasses the cap.
  t.name_process(0, "island 0");
  EXPECT_EQ(t.size(), 4u);
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("trace_buffer_full"), std::string::npos);
  std::string err;
  EXPECT_TRUE(obs::validate_json(out, &err)) << err;
}

TEST(Trace, CategoryFilter) {
  sim::TraceCollector t;
  t.set_category_filter({"dma"});
  EXPECT_TRUE(t.category_enabled("dma"));
  EXPECT_FALSE(t.category_enabled("task"));
  t.record_instant("kept", 0, 0, 1, "dma");
  t.record_instant("filtered", 0, 0, 2, "task");
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.dropped(), 0u);  // filtered != dropped-by-capacity
}

TEST(Trace, CounterFlowAndMetadataAreValidJson) {
  sim::TraceCollector t;
  t.name_process(1, "island 1");
  t.name_thread(1, 2, "slot 2: poly");
  t.record_counter("queue", 1, 10, "jobs", 3.5);
  const auto flow = t.begin_flow("dma", 1, 2, 10, "dma");
  t.step_flow(flow, "dma", 1, sim::kTraceTidDma, 20, "dma");
  t.end_flow(flow, "dma", sim::kTracePidMem, 0, 30, "dma");
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  for (const char* phase : {"\"ph\":\"M\"", "\"ph\":\"C\"", "\"ph\":\"s\"",
                            "\"ph\":\"t\"", "\"ph\":\"f\""}) {
    EXPECT_NE(out.find(phase), std::string::npos) << phase;
  }
  std::string err;
  EXPECT_TRUE(obs::validate_json(out, &err)) << err;
}

// ---- metrics export ----

TEST(MetricsExport, SnapshotCapturesAllKinds) {
  sim::StatRegistry reg;
  reg.counter("island.0.spm.bytes").inc(42);
  reg.accumulator("energy.total").add(1.25);
  reg.histogram("mem.read_latency", 16, 8).record(33);
  const auto snap = obs::MetricsSnapshot::capture(reg);
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "island.0.spm.bytes");
  EXPECT_EQ(snap.counters[0].value, 42u);
  ASSERT_EQ(snap.accumulators.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.accumulators[0].sum, 1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].max, 33u);
  EXPECT_EQ(snap.counter_sum_by_prefix("island."), 42u);
  EXPECT_FALSE(snap.empty());
}

TEST(MetricsExport, JsonIsValidAndCsvHasHeader) {
  sim::StatRegistry reg;
  reg.counter("a.count").inc(7);
  reg.histogram("a.lat", 8, 4).record(9);
  reg.accumulator("a.energy").add(0.5);
  const auto snap = obs::MetricsSnapshot::capture(reg);

  std::ostringstream js;
  obs::MetricsExporter::write_json(js, snap);
  std::string err;
  EXPECT_TRUE(obs::validate_json(js.str(), &err)) << err;
  EXPECT_NE(js.str().find("\"a.count\""), std::string::npos);

  std::ostringstream csv;
  obs::MetricsExporter::write_csv(csv, snap);
  EXPECT_EQ(csv.str().rfind("kind,name,value,count,mean,min,max,p50,p95,p99",
                            0),
            0u);
  EXPECT_NE(csv.str().find("counter,a.count,7"), std::string::npos);
}

TEST(MetricsExport, HistogramMinExportedAndRoundTrips) {
  sim::StatRegistry reg;
  auto& h = reg.histogram("a.lat", 8, 4);
  h.record(21);
  h.record(3);
  const auto snap = obs::MetricsSnapshot::capture(reg);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].min, 3u);  // true minimum, not a 0 default
  EXPECT_EQ(snap.histograms[0].max, 21u);

  std::ostringstream js;
  obs::MetricsExporter::write_json(js, snap);
  EXPECT_NE(js.str().find("\"min\":3"), std::string::npos);

  // CSV row carries ...,min,max,p50,p95,p99 with the real min.
  std::ostringstream csv;
  obs::MetricsExporter::write_csv(csv, snap);
  EXPECT_NE(csv.str().find(",3,21,"), std::string::npos);

  obs::JsonValue parsed;
  std::string err;
  ASSERT_TRUE(obs::parse_json(js.str(), &parsed, &err)) << err;
  obs::MetricsSnapshot rt;
  ASSERT_TRUE(obs::MetricsExporter::snapshot_from_json(parsed, &rt));
  ASSERT_EQ(rt.histograms.size(), 1u);
  EXPECT_EQ(rt.histograms[0].min, 3u);
  EXPECT_EQ(rt.histograms[0].max, 21u);
}

// Determinism the no-unordered-iter lint rule protects: exported metric
// order must depend only on names (StatRegistry is a std::map), never on
// registration order or hash-bucket layout.
TEST(MetricsExport, ExportOrderIndependentOfRegistrationOrder) {
  sim::StatRegistry fwd;
  fwd.counter("abc.0.ops").inc(1);
  fwd.counter("noc.link.flits").inc(2);
  fwd.counter("island.3.spm.bytes").inc(3);
  fwd.accumulator("energy.total").add(0.5);

  sim::StatRegistry rev;
  rev.accumulator("energy.total").add(0.5);
  rev.counter("island.3.spm.bytes").inc(3);
  rev.counter("noc.link.flits").inc(2);
  rev.counter("abc.0.ops").inc(1);

  const auto snap_fwd = obs::MetricsSnapshot::capture(fwd);
  const auto snap_rev = obs::MetricsSnapshot::capture(rev);

  std::ostringstream js_fwd, js_rev;
  obs::MetricsExporter::write_json(js_fwd, snap_fwd);
  obs::MetricsExporter::write_json(js_rev, snap_rev);
  EXPECT_EQ(js_fwd.str(), js_rev.str());

  // And the order is the sorted one, byte for byte.
  ASSERT_EQ(snap_fwd.counters.size(), 3u);
  EXPECT_EQ(snap_fwd.counters[0].name, "abc.0.ops");
  EXPECT_EQ(snap_fwd.counters[1].name, "island.3.spm.bytes");
  EXPECT_EQ(snap_fwd.counters[2].name, "noc.link.flits");
}

TEST(MetricsExport, LabeledJsonIsValid) {
  sim::StatRegistry reg;
  reg.counter("x").inc(1);
  const auto snap = obs::MetricsSnapshot::capture(reg);
  std::ostringstream os;
  obs::MetricsExporter::write_labeled_json(
      os, {{"point \"a\"", &snap}, {"point b", &snap}});
  std::string err;
  EXPECT_TRUE(obs::validate_json(os.str(), &err)) << err;
  EXPECT_NE(os.str().find("\"points\""), std::string::npos);
}

// ---- System integration ----

TEST(Observability, SystemRegistryCoversSubsystems) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  core::System sys(cfg);
  auto w = workloads::make_benchmark("Denoise", 0.05);
  sys.run(w);
  const auto& reg = sys.stats();
  // Namespaced counters from every major subsystem.
  EXPECT_GT(reg.counter_sum_by_prefix("island."), 0u);
  EXPECT_GT(reg.counter_sum_by_prefix("noc."), 0u);
  EXPECT_GT(reg.counter_sum_by_prefix("mem."), 0u);
  EXPECT_GT(reg.counter_sum_by_prefix("abc."), 0u);
  EXPECT_GT(reg.counter_sum_by_prefix("gam."), 0u);
  EXPECT_GT(reg.counter_sum_by_prefix("sim."), 0u);
  // Per-id naming scheme: island 0's DMA moved bytes, router 0 saw flits.
  EXPECT_NE(reg.find_counter("island.0.dma.bytes"), nullptr);
  EXPECT_NE(reg.find_counter("noc.router.0.flits"), nullptr);
  // Live latency histograms filled during the run.
  std::uint64_t hist_samples = 0;
  for (const auto& [name, h] : reg.histograms()) hist_samples += h->count();
  EXPECT_GT(hist_samples, 0u);
}

TEST(Observability, SystemTraceIsRichAndValid) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  cfg.trace_enabled = true;
  core::System sys(cfg);
  auto w = workloads::make_benchmark("Denoise", 0.05);
  sys.run(w);
  std::ostringstream os;
  sys.write_trace(os);
  const std::string out = os.str();
  std::string err;
  ASSERT_TRUE(obs::validate_json(out, &err)) << err;
  // Spans from >= 3 subsystems (task = ABC slots, dma = islands, gam).
  for (const char* cat : {"\"cat\":\"task\"", "\"cat\":\"dma\"",
                          "\"cat\":\"gam\""}) {
    EXPECT_NE(out.find(cat), std::string::npos) << cat;
  }
  // Counter-track samples and track metadata.
  EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(out.find("island 0"), std::string::npos);
}

TEST(Observability, TraceDroppedSurfacesInMetricsSnapshot) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  cfg.trace_enabled = true;
  cfg.trace_capacity = 16;  // tiny ring: a real run must overflow it
  core::System sys(cfg);
  auto w = workloads::make_benchmark("Denoise", 0.05);
  sys.run(w);
  const sim::Counter* dropped = sys.stats().find_counter("trace.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_GT(dropped->value(), 0u);
  // The drop count rides a MetricsSnapshot like any other counter, so the
  // stats endpoint / --metrics exports surface trace-buffer saturation.
  const auto snap = obs::MetricsSnapshot::capture(sys.stats());
  bool found = false;
  for (const auto& c : snap.counters) {
    if (c.name == "trace.dropped") {
      found = true;
      EXPECT_EQ(c.value, dropped->value());
    }
  }
  EXPECT_TRUE(found);
}

TEST(Observability, EventKindProfileCounts) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  core::System sys(cfg);
  sys.simulator().set_self_profiling(true);
  auto w = workloads::make_benchmark("Denoise", 0.05);
  sys.run(w);
  const auto& kinds = sys.simulator().kind_stats();
  std::uint64_t total = 0;
  for (const auto& k : kinds) total += k.count;
  EXPECT_EQ(total, sys.simulator().events_processed());
  const auto gam_req =
      kinds[static_cast<std::size_t>(sim::EventKind::kGamRequest)].count;
  EXPECT_GT(gam_req, 0u);
}

TEST(Observability, MetricsIdenticalSerialVsParallel) {
  auto w = workloads::make_benchmark("Denoise", 0.05);
  std::vector<dse::SweepJob> jobs;
  for (std::uint32_t islands : {3u, 6u}) {
    for (const auto& p : dse::paper_network_configs(islands)) {
      jobs.push_back({p.config, &w});
    }
  }
  const auto serial = dse::ParallelSweepExecutor(1).run(jobs);
  const auto parallel = dse::ParallelSweepExecutor(8).run(jobs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    std::ostringstream a, b;
    obs::MetricsExporter::write_json(a, serial[i].metrics);
    obs::MetricsExporter::write_json(b, parallel[i].metrics);
    EXPECT_EQ(a.str(), b.str()) << "point " << i;
    // Deterministic per-kind dispatch counts, too (wall-clock seconds are
    // host-dependent and excluded).
    for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
      EXPECT_EQ(serial[i].event_kinds[k].count, parallel[i].event_kinds[k].count);
    }
  }
}

}  // namespace
}  // namespace ara
