// ara_analyze engine tests. The in-memory cases pin the shared lexer
// (comments, raw strings with prefixes, backslash-newline splices) and
// each cross-file analysis in isolation; the fixture cases prove every
// analysis both fires on the seeded violation in
// tests/analyze_fixtures/bad/ and stays silent on the corrected twin in
// good/ (tests/analyze_smoke.cmake covers the CLI contract).
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analyze_core.h"
#include "obs/json_check.h"

namespace ara::analyze {
namespace {

std::string fixture_root(const std::string& twin) {
  return std::string(ARA_ANALYZE_FIXTURE_DIR) + "/" + twin;
}

std::set<std::string> finding_keys(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const auto& f : findings) keys.insert(f.key);
  return keys;
}

std::set<std::string> finding_rules(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const auto& f : findings) rules.insert(f.rule);
  return rules;
}

// ------------------------------------------------------------- lexer

TEST(AnalyzeLexer, BlockCommentIsBlankedAcrossLines) {
  const auto lexed = lex(
      "int a; /* std::rand()\n"
      "   still comment */ int b;\n");
  ASSERT_EQ(lexed.view.code.size(), 2u);
  EXPECT_EQ(lexed.view.code[0].find("rand"), std::string::npos);
  EXPECT_NE(lexed.view.code[1].find("int b"), std::string::npos);
  // No identifier token from inside the comment either.
  for (const auto& t : lexed.tokens) EXPECT_NE(t.text, "rand");
}

TEST(AnalyzeLexer, LineSpliceContinuesALineComment) {
  // The continuation line is part of the comment (C++ phase-2 splicing);
  // the old lint scanner treated it as code.
  const auto lexed = lex(
      "// comment \\\n"
      "std::rand();\n"
      "int x;\n");
  ASSERT_EQ(lexed.view.code.size(), 3u);
  EXPECT_EQ(lexed.view.code[1].find("rand"), std::string::npos);
  EXPECT_NE(lexed.view.code[2].find("int x"), std::string::npos);
}

TEST(AnalyzeLexer, LineSpliceContinuesAStringLiteral) {
  const auto lexed = lex("const char* s = \"ab\\\ncd\";\n");
  ASSERT_EQ(lexed.tokens.size(), 7u);  // const char * s = "abcd" ;
  const Token& str = lexed.tokens[5];
  EXPECT_EQ(str.kind, Token::Kind::kString);
  EXPECT_EQ(str.text, "abcd");
}

TEST(AnalyzeLexer, RawStringsWithEveryPrefixAreLiterals) {
  for (const std::string prefix : {"R", "u8R", "uR", "UR", "LR"}) {
    const auto lexed =
        lex("const char* r = " + prefix + "\"xy(rand() \\ \"quote\")xy\";\n");
    bool found = false;
    for (const auto& t : lexed.tokens) {
      EXPECT_NE(t.text, "rand") << prefix;
      if (t.kind == Token::Kind::kString) {
        found = true;
        EXPECT_EQ(t.text, "rand() \\ \"quote\"") << prefix;
      }
    }
    EXPECT_TRUE(found) << prefix;
    // The code view blanks the contents but keeps structural quotes.
    EXPECT_EQ(lexed.view.code[0].find("rand"), std::string::npos) << prefix;
  }
}

TEST(AnalyzeLexer, StringEscapesAreDecodedInTokens) {
  const auto lexed = lex("const char* s = \"a\\n\\\"b\\\"\";\n");
  const Token* str = nullptr;
  for (const auto& t : lexed.tokens) {
    if (t.kind == Token::Kind::kString) str = &t;
  }
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->text, "a\n\"b\"");
}

TEST(AnalyzeLexer, DigitSeparatorsStayOneNumberToken) {
  const auto lexed = lex("int n = 1'000'000;\n");
  bool seen = false;
  for (const auto& t : lexed.tokens) {
    if (t.kind == Token::Kind::kNumber) {
      EXPECT_EQ(t.text, "1'000'000");
      seen = true;
    }
  }
  EXPECT_TRUE(seen);
}

// -------------------------------------------------------- include graph

TEST(AnalyzeIncludes, DetectsACycle) {
  Corpus corpus;
  add_source(&corpus, "src/sim/a.h", "#include \"sim/b.h\"\n");
  add_source(&corpus, "src/sim/b.h", "#include \"sim/a.h\"\n");
  std::vector<Finding> findings;
  analyze_includes(corpus, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].key, "include-cycle:src/sim/a.h <-> src/sim/b.h");
}

TEST(AnalyzeIncludes, AcyclicGraphIsSilent) {
  Corpus corpus;
  add_source(&corpus, "src/sim/a.h", "#include \"sim/b.h\"\n");
  add_source(&corpus, "src/sim/b.h", "int b;\n");
  std::vector<Finding> findings;
  analyze_includes(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeIncludes, TransitiveBreachThroughUnlayeredHeaderFires) {
  // sim -> tools header -> serve: each edge is invisible to the per-file
  // layering rule, the closure is not.
  Corpus corpus;
  add_source(&corpus, "src/sim/engine.cc", "#include \"bridge.h\"\n");
  add_source(&corpus, "tools/bridge.h", "#include \"serve/api.h\"\n");
  add_source(&corpus, "src/serve/api.h", "int v;\n");
  std::vector<Finding> findings;
  analyze_includes(corpus, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "transitive-layering");
  EXPECT_EQ(findings[0].key,
            "transitive-layering:src/sim/engine.cc:serve");
  EXPECT_EQ(findings[0].file, "src/sim/engine.cc");
}

TEST(AnalyzeIncludes, ClosureOfTheLayerMatrixIsLegal) {
  // serve -> dse is a direct edge; dse -> island is transitive through
  // the matrix closure, so reaching island from serve is NOT a finding.
  Corpus corpus;
  add_source(&corpus, "src/serve/server.cc", "#include \"dse/sweep.h\"\n");
  add_source(&corpus, "src/dse/sweep.h", "#include \"island/island.h\"\n");
  add_source(&corpus, "src/island/island.h", "int i;\n");
  std::vector<Finding> findings;
  analyze_includes(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

// ----------------------------------------------------------- lock order

constexpr const char* kDrainThenRefill =
    "void Pool::drain() {\n"
    "  common::MutexLock a(mu_a_);\n"
    "  common::MutexLock b(mu_b_);\n"
    "}\n";

TEST(AnalyzeLockOrder, OppositeOrdersAreACycle) {
  Corpus corpus;
  add_source(&corpus, "src/core/locks.cc",
             std::string(kDrainThenRefill) +
                 "void Pool::refill() {\n"
                 "  common::MutexLock b(mu_b_);\n"
                 "  common::MutexLock a(mu_a_);\n"
                 "}\n");
  std::vector<Finding> findings;
  analyze_lock_order(corpus, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
  EXPECT_NE(findings[0].key.find("Pool::mu_a_"), std::string::npos);
  EXPECT_NE(findings[0].key.find("Pool::mu_b_"), std::string::npos);
}

TEST(AnalyzeLockOrder, ConsistentOrderIsSilent) {
  Corpus corpus;
  add_source(&corpus, "src/core/locks.cc",
             std::string(kDrainThenRefill) +
                 "void Pool::refill() {\n"
                 "  common::MutexLock a(mu_a_);\n"
                 "  common::MutexLock b(mu_b_);\n"
                 "}\n");
  std::vector<Finding> findings;
  analyze_lock_order(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeLockOrder, GuardScopeEndsAtTheClosingBrace) {
  // mu_b_ is taken after mu_a_'s guard block closed: no edge, no cycle
  // even though the reverse order appears elsewhere.
  Corpus corpus;
  add_source(&corpus, "src/core/locks.cc",
             "void Pool::drain() {\n"
             "  { common::MutexLock a(mu_a_); }\n"
             "  common::MutexLock b(mu_b_);\n"
             "}\n"
             "void Pool::refill() {\n"
             "  common::MutexLock b(mu_b_);\n"
             "  common::MutexLock a(mu_a_);\n"
             "}\n");
  std::vector<Finding> findings;
  analyze_lock_order(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeLockOrder, CrossClassCycleSpansFiles) {
  Corpus corpus;
  add_source(&corpus, "src/serve/server.cc",
             "void Server::submit() {\n"
             "  common::MutexLock l(mu_);\n"
             "  common::MutexLock c(cache_mu_);\n"
             "}\n");
  add_source(&corpus, "src/serve/cache.cc",
             "void Server::evict() {\n"
             "  common::MutexLock c(cache_mu_);\n"
             "  common::MutexLock l(mu_);\n"
             "}\n");
  std::vector<Finding> findings;
  analyze_lock_order(corpus, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lock-order");
}

// ---------------------------------------------------------------- stats

TEST(AnalyzeStats, GrammarViolationsFire) {
  Corpus corpus;
  add_source(&corpus, "src/core/stats.cc",
             "void f(StatRegistry& s) {\n"
             "  s.counter(\"BadStatName\", 1);\n"
             "  s.counter(\"sim.good.name\", 2);\n"
             "  s.histogram(\"also_no_dots\", 3);\n"
             "}\n");
  std::vector<Finding> findings;
  analyze_stats(corpus, &findings);  // no docs: grammar-only mode
  EXPECT_EQ(finding_keys(findings),
            (std::set<std::string>{"stat-grammar:BadStatName",
                                   "stat-grammar:also_no_dots"}));
}

TEST(AnalyzeStats, ConcatenatedNamesBecomeGlobsAndStayLegal) {
  Corpus corpus;
  add_source(&corpus, "src/noc/mesh.cc",
             "void f(StatRegistry& s, int n) {\n"
             "  s.counter(\"noc.router.\" + std::to_string(n) + \".flits\","
             " 1);\n"
             "}\n");
  corpus.docs.push_back(
      {"DESIGN.md", "Routers export `noc.router.*.flits` counters.\n"});
  std::vector<Finding> findings;
  analyze_stats(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeStats, UndocumentedAndPhantomBothFire) {
  Corpus corpus;
  add_source(&corpus, "src/core/stats.cc",
             "void f(StatRegistry& s) {\n"
             "  s.counter(\"sim.fixture.documented\", 1);\n"
             "  s.counter(\"sim.fixture.ghostly\", 2);\n"
             "}\n");
  corpus.docs.push_back({"DESIGN.md",
                         "Exports `sim.fixture.documented`; also claims\n"
                         "`sim.fixture.phantom` which nothing emits.\n"});
  std::vector<Finding> findings;
  analyze_stats(corpus, &findings);
  EXPECT_EQ(finding_keys(findings),
            (std::set<std::string>{"stat-undocumented:sim.fixture.ghostly",
                                   "stat-phantom:sim.fixture.phantom"}));
}

TEST(AnalyzeStats, FencedCodeBlocksAndFilenamesAreNotClaims) {
  Corpus corpus;
  add_source(&corpus, "src/core/stats.cc",
             "void f(StatRegistry& s) {\n"
             "  s.counter(\"sim.fixture.documented\", 1);\n"
             "}\n");
  corpus.docs.push_back(
      {"DESIGN.md",
       "Exports `sim.fixture.documented` (see `src/core/stats.cc` and\n"
       "`tools/analyze_core.h`).\n"
       "```\n"
       "`sim.fenced.away` never counts as a claim\n"
       "```\n"});
  std::vector<Finding> findings;
  analyze_stats(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

// ------------------------------------------------------------- protocol

Corpus proto_corpus(const std::string& server_body) {
  Corpus corpus;
  add_source(&corpus, "src/serve/protocol.cc", server_body);
  add_source(&corpus, "tools/ara_serve_client.cc",
             "std::string build() {\n"
             "  return \"{\\\"type\\\":\\\"ping\\\","
             "\\\"workload\\\":\\\"x\\\"}\";\n"
             "}\n"
             "int code(const JsonValue& v) {\n"
             "  const JsonValue* c = v.find(\"code\");\n"
             "  return 0;\n"
             "}\n");
  add_source(&corpus, "src/dse/spec.cc",
             "std::string PointSpec::label() const {\n"
             "  return \"islands=\" + std::to_string(islands);\n"
             "}\n");
  return corpus;
}

constexpr const char* kBalancedServer =
    "bool parse(const JsonValue& root) {\n"
    "  take_string(root, \"type\", &t);\n"
    "  take_string(root, \"workload\", &w);\n"
    "  take_u32(root, \"islands\", &i);\n"
    "  return true;\n"
    "}\n"
    "std::string pong() { return \"{\\\"type\\\":\\\"pong\\\","
    "\\\"code\\\":0}\"; }\n";

TEST(AnalyzeProtocol, BalancedSurfacesAreSilent) {
  Corpus corpus = proto_corpus(kBalancedServer);
  std::vector<Finding> findings;
  analyze_protocol(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

TEST(AnalyzeProtocol, ParsedButNeverProducedFires) {
  Corpus corpus = proto_corpus(
      "bool parse(const JsonValue& root) {\n"
      "  take_string(root, \"type\", &t);\n"
      "  take_string(root, \"workload\", &w);\n"
      "  take_u32(root, \"islands\", &i);\n"
      "  take_u32(root, \"ghost\", &g);\n"
      "  return true;\n"
      "}\n"
      "std::string pong() { return \"{\\\"type\\\":\\\"pong\\\","
      "\\\"code\\\":0}\"; }\n");
  std::vector<Finding> findings;
  analyze_protocol(corpus, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].key, "proto-unproduced:ghost");
  EXPECT_EQ(findings[0].file, "src/serve/protocol.cc");
}

TEST(AnalyzeProtocol, ClientReadingUnproducedFieldFires) {
  Corpus corpus;
  add_source(&corpus, "src/serve/protocol.cc", kBalancedServer);
  add_source(&corpus, "tools/ara_serve_client.cc",
             "std::string build() {\n"
             "  return \"{\\\"type\\\":\\\"ping\\\","
             "\\\"workload\\\":\\\"x\\\",\\\"islands\\\":1}\";\n"
             "}\n"
             "int f(const JsonValue& v) {\n"
             "  const JsonValue* s = v.find(\"surprise\");\n"
             "  return 0;\n"
             "}\n");
  std::vector<Finding> findings;
  analyze_protocol(corpus, &findings);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].key, "proto-unparsed:surprise");
}

TEST(AnalyzeProtocol, PartialCorpusStaysSilent) {
  // Unit-test corpora that hold only one end of the wire must not report
  // the missing half as drift.
  Corpus corpus;
  add_source(&corpus, "src/serve/protocol.cc", kBalancedServer);
  std::vector<Finding> findings;
  analyze_protocol(corpus, &findings);
  EXPECT_TRUE(findings.empty());
}

// ----------------------------------------------- baseline + renderers

TEST(AnalyzeBaseline, BaselinedKeysAreCountedAndStaleOnesReported) {
  Corpus corpus;
  add_source(&corpus, "src/sim/a.h", "#include \"sim/b.h\"\n");
  add_source(&corpus, "src/sim/b.h", "#include \"sim/a.h\"\n");
  const std::set<std::string> baseline = parse_baseline(
      "# comment\n"
      "include-cycle:src/sim/a.h <-> src/sim/b.h  # trailing comment\n"
      "stale-entry:never-matches\n");
  const AnalyzeResult result = analyze(corpus, baseline, "baseline.txt");
  EXPECT_EQ(result.baselined, 1u);
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "stale-baseline");
  EXPECT_EQ(result.findings[0].file, "baseline.txt");
}

TEST(AnalyzeBaseline, WriteThenReadRoundTripsToClean) {
  Corpus corpus;
  add_source(&corpus, "src/sim/a.h", "#include \"sim/b.h\"\n");
  add_source(&corpus, "src/sim/b.h", "#include \"sim/a.h\"\n");
  const AnalyzeResult first = analyze(corpus, {});
  ASSERT_FALSE(first.findings.empty());
  const std::set<std::string> baseline =
      parse_baseline(to_baseline(first));
  const AnalyzeResult second = analyze(corpus, baseline, "baseline.txt");
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baselined, first.findings.size());
}

TEST(AnalyzeRender, JsonIsStrictRfc8259) {
  Corpus corpus;
  add_source(&corpus, "src/core/stats.cc",
             "void f(StatRegistry& s) {\n"
             "  s.counter(\"Bad\\\"Quoted\\nName\", 1);\n"
             "}\n");
  add_source(&corpus, "src/sim/a.h", "#include \"sim/b.h\"\n");
  add_source(&corpus, "src/sim/b.h", "#include \"sim/a.h\"\n");
  const AnalyzeResult result = analyze(corpus, {});
  ASSERT_FALSE(result.findings.empty());
  std::string error;
  EXPECT_TRUE(obs::validate_json(to_json(result), &error)) << error;
  EXPECT_TRUE(obs::validate_json(
      to_json(AnalyzeResult{}), &error))
      << error;
}

TEST(AnalyzeRules, CatalogIsSortedAndCoversEveryEmittedRule) {
  const auto& catalog = rules();
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(catalog[i - 1].id, catalog[i].id);
  }
  const std::set<std::string> ids = [] {
    std::set<std::string> s;
    for (const auto& r : rules()) s.insert(r.id);
    return s;
  }();
  EXPECT_EQ(ids,
            (std::set<std::string>{
                "include-cycle", "lock-order", "proto-unparsed",
                "proto-unproduced", "stale-baseline", "stat-grammar",
                "stat-phantom", "stat-undocumented", "transitive-layering"}));
}

// ------------------------------------------------------ fixture corpus

TEST(AnalyzeFixtures, BadTwinFiresEveryAnalysis) {
  const std::string root = fixture_root("bad");
  const Corpus corpus = load_corpus({root}, {root + "/DESIGN.md"});
  ASSERT_EQ(corpus.files.size(), 10u);
  ASSERT_EQ(corpus.docs.size(), 1u);
  const AnalyzeResult result = analyze(corpus, {});
  EXPECT_EQ(finding_rules(result.findings),
            (std::set<std::string>{"include-cycle", "transitive-layering",
                                   "lock-order", "stat-grammar",
                                   "stat-undocumented", "stat-phantom",
                                   "proto-unproduced"}));
  EXPECT_EQ(result.findings.size(), 7u);
  // Keys are stable rel-paths: independent of where the checkout lives.
  const std::set<std::string> keys = finding_keys(result.findings);
  EXPECT_TRUE(keys.count("transitive-layering:src/sim/engine.cc:serve"));
  EXPECT_TRUE(keys.count("include-cycle:src/sim/cycle_a.h <-> "
                         "src/sim/cycle_b.h"));
  EXPECT_TRUE(keys.count("proto-unproduced:ghost"));
  EXPECT_TRUE(keys.count("stat-undocumented:sim.fixture.ghostly"));
}

TEST(AnalyzeFixtures, GoodTwinIsCompletelySilent) {
  const std::string root = fixture_root("good");
  const Corpus corpus = load_corpus({root}, {root + "/DESIGN.md"});
  ASSERT_EQ(corpus.files.size(), 10u);
  const AnalyzeResult result = analyze(corpus, {});
  EXPECT_TRUE(result.findings.empty())
      << to_text(result);
}

}  // namespace
}  // namespace ara::analyze
