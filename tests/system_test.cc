// Integration tests: the assembled System running workloads end to end.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "workloads/registry.h"

namespace ara::core {
namespace {

RunResult sim_point(const ArchConfig& cfg, const workloads::Workload& w) {
  return dse::run(dse::SweepRequest{}.add(cfg, w)).front().result;
}

workloads::Workload tiny(const std::string& name = "Denoise") {
  auto w = workloads::make_benchmark(name, 0.1);
  return w;
}

TEST(ArchConfig, ValidatesDivisibility) {
  ArchConfig c = ArchConfig::paper_baseline(7);  // 120 % 7 != 0
  EXPECT_THROW(c.validate(), ConfigError);
  EXPECT_NO_THROW(ArchConfig::paper_baseline(6).validate());
}

TEST(ArchConfig, PaperConfigsWellFormed) {
  for (std::uint32_t islands : dse::paper_island_counts()) {
    EXPECT_NO_THROW(ArchConfig::paper_baseline(islands).validate());
  }
  const ArchConfig best = ArchConfig::best_config();
  EXPECT_NO_THROW(best.validate());
  EXPECT_EQ(best.num_islands, 24u);
  EXPECT_EQ(best.island.net.num_rings, 2u);
  EXPECT_EQ(best.island.net.link_bytes, 32u);
  EXPECT_FALSE(best.island.spm_sharing);
  EXPECT_EQ(best.island.spm_port_multiplier, 1u);
}

TEST(ArchConfig, SummaryMentionsKeyKnobs) {
  const std::string s = ArchConfig::best_config().summary();
  EXPECT_NE(s.find("24 islands"), std::string::npos);
  EXPECT_NE(s.find("ring"), std::string::npos);
}

TEST(System, BuildsPaperTopology) {
  System sys(ArchConfig::paper_baseline(12));
  EXPECT_EQ(sys.island_count(), 12u);
  // 120 ABBs distributed 10 per island, paper mix overall.
  std::uint32_t total = 0, poly = 0;
  for (IslandId i = 0; i < sys.island_count(); ++i) {
    total += sys.island(i).num_abbs();
    for (abb::AbbKind k : sys.island_abbs(i)) {
      if (k == abb::AbbKind::kPoly) ++poly;
    }
  }
  EXPECT_EQ(total, 120u);
  EXPECT_EQ(poly, 78u);
}

TEST(System, DistinctComponentPlacement) {
  System sys(ArchConfig::paper_baseline(24));
  std::set<NodeId> nodes;
  for (IslandId i = 0; i < sys.island_count(); ++i) {
    EXPECT_TRUE(nodes.insert(sys.island_node(i)).second);
  }
  EXPECT_TRUE(nodes.insert(sys.gam_node()).second);
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_TRUE(nodes.insert(sys.core_node(c)).second);
  }
}

TEST(System, RunCompletesAllJobs) {
  System sys(ArchConfig::best_config());
  const auto w = tiny();
  const RunResult r = sys.run(w);
  EXPECT_EQ(r.jobs, w.invocations);
  EXPECT_GT(r.makespan, 0u);
  EXPECT_GT(r.performance(), 0.0);
}

TEST(System, ResultInvariants) {
  System sys(ArchConfig::ring_design(6, 2, 32));
  const RunResult r = sys.run(tiny("EKF-SLAM"));
  EXPECT_GT(r.energy.total(), 0.0);
  EXPECT_GT(r.energy.abb_j, 0.0);
  EXPECT_GT(r.energy.noc_j, 0.0);
  EXPECT_GT(r.energy.platform_j, 0.0);
  EXPECT_GT(r.area.total(), r.area.islands_mm2);
  EXPECT_GE(r.avg_abb_utilization, 0.0);
  EXPECT_LE(r.avg_abb_utilization, 1.0);
  EXPECT_GE(r.peak_abb_utilization, r.avg_abb_utilization);
  EXPECT_GE(r.l2_hit_rate, 0.0);
  EXPECT_LE(r.l2_hit_rate, 1.0);
  EXPECT_GT(r.chains_direct + r.chains_spilled, 0u);
}

TEST(System, DeterministicAcrossRuns) {
  const auto w = tiny("Segmentation");
  System a(ArchConfig::best_config());
  System b(ArchConfig::best_config());
  const RunResult ra = a.run(w);
  const RunResult rb = b.run(w);
  EXPECT_EQ(ra.makespan, rb.makespan);
  EXPECT_EQ(ra.chains_direct, rb.chains_direct);
  EXPECT_DOUBLE_EQ(ra.energy.total(), rb.energy.total());
}

TEST(System, ChainsAreDirectUnderAtomicComposition) {
  System sys(ArchConfig::best_config());
  const auto w = tiny("EKF-SLAM");
  const RunResult r = sys.run(w);
  EXPECT_EQ(r.chains_spilled, 0u);
  EXPECT_EQ(r.chains_direct, w.dfg.chain_edges() * w.invocations);
}

TEST(System, MonolithicModeRuns) {
  ArchConfig cfg = ArchConfig::ring_design(6, 2, 32);
  cfg.mode = abc::ExecutionMode::kMonolithic;
  System sys(cfg);
  const RunResult r = sys.run(tiny("Deblur"));
  EXPECT_EQ(r.jobs, tiny("Deblur").invocations);
  EXPECT_GT(r.energy.mono_j, 0.0);
  EXPECT_GT(r.avg_abb_utilization, 0.0);
}

TEST(System, MoreIslandsFasterForLowChaining) {
  const auto w = tiny("Denoise");
  const RunResult few = sim_point(ArchConfig::paper_baseline(3), w);
  const RunResult many = sim_point(ArchConfig::paper_baseline(24), w);
  EXPECT_GT(many.performance(), few.performance());
}

TEST(System, RingBeatsProxyXbarForChainingHeavyAt3Islands) {
  const auto w = tiny("Segmentation");
  const RunResult xbar = sim_point(ArchConfig::paper_baseline(3), w);
  const RunResult ring = sim_point(ArchConfig::ring_design(3, 2, 32), w);
  EXPECT_GT(ring.performance(), 1.2 * xbar.performance());
}

TEST(System, FabricConfigRunsOutOfDomainKernels) {
  ArchConfig cfg = ArchConfig::ring_design(6, 2, 32);
  cfg.island.fabric_blocks = 2;
  System sys(cfg);
  workloads::DfgGenParams p;
  p.tasks = 8;
  p.fabric_fraction = 0.25;
  p.seed = 42;
  workloads::Workload w;
  w.name = "exotic";
  w.dfg = workloads::generate_dfg(w.name, p);
  w.invocations = 10;
  w.concurrency = 4;
  const RunResult r = sys.run(w);
  EXPECT_EQ(r.jobs, 10u);
}

TEST(System, GamWaitFeedbackUnderPressure) {
  ArchConfig cfg = ArchConfig::best_config();
  cfg.max_jobs_in_flight = 2;
  System sys(cfg);
  auto w = tiny();
  w.concurrency = 16;
  sys.run(w);
  EXPECT_GT(sys.gam().queued_requests(), 0u);
  EXPECT_EQ(sys.gam().interrupts_delivered(), w.invocations);
}

TEST(System, EnergyBreakdownSumsToTotal) {
  System sys(ArchConfig::best_config());
  const RunResult r = sys.run(tiny());
  const auto& e = r.energy;
  const double parts = e.abb_j + e.spm_j + e.abb_spm_xbar_j +
                       e.island_net_j + e.dma_j + e.noc_j + e.l2_j +
                       e.dram_j + e.mono_j + e.leakage_j + e.platform_j;
  EXPECT_NEAR(e.total(), parts, 1e-15);
}

TEST(System, RunResultPrintIsWellFormed) {
  System sys(ArchConfig::best_config());
  const RunResult r = sys.run(tiny());
  std::ostringstream os;
  r.print(os);
  EXPECT_NE(os.str().find("makespan"), std::string::npos);
  EXPECT_NE(os.str().find("Denoise"), std::string::npos);
}

}  // namespace
}  // namespace ara::core
