// Tests for the content-addressed sweep result cache: key scheme and
// invalidation, the in-process and on-disk tiers, bit-exact round-trips
// (doubles included), corrupt-file tolerance, and the cached-vs-fresh
// determinism contract through dse::run().
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/arch_config.h"
#include "core/config_digest.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "obs/json_check.h"
#include "workloads/registry.h"

namespace ara::dse {
namespace {

workloads::Workload test_workload(double scale = 0.03) {
  return workloads::make_benchmark("Denoise", scale);
}

// Fresh per-test scratch directory under gtest's temp root.
std::string scratch_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "ara_cache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

// Run one design point through dse::run and return its SweepResult.
SweepResult run_one(const core::ArchConfig& cfg, const workloads::Workload& wl,
                    ResultCache* cache = nullptr) {
  auto results = run(SweepRequest{}.add(cfg, wl).with_cache(cache));
  return std::move(results.front());
}

std::string exact_metrics(const obs::MetricsSnapshot& snap) {
  std::ostringstream os;
  obs::MetricsExporter::write_snapshot_exact(os, snap);
  return os.str();
}

TEST(ResultCacheKey, StableForIdenticalInputs) {
  const auto cfg = core::ArchConfig::paper_baseline(6);
  const auto wl = test_workload();
  EXPECT_EQ(ResultCache::key(cfg, wl), ResultCache::key(cfg, wl));
  // A value-identical copy hashes the same: content, not identity.
  const core::ArchConfig cfg2 = cfg;
  const workloads::Workload wl2 = wl;
  EXPECT_EQ(ResultCache::key(cfg, wl), ResultCache::key(cfg2, wl2));
}

TEST(ResultCacheKey, ConfigChangeChangesKey) {
  const auto wl = test_workload();
  const auto base = core::ArchConfig::paper_baseline(6);
  EXPECT_NE(ResultCache::key(base, wl),
            ResultCache::key(core::ArchConfig::paper_baseline(12), wl));

  core::ArchConfig tweaked = base;
  tweaked.island.net.link_bytes *= 2;
  EXPECT_NE(ResultCache::key(base, wl), ResultCache::key(tweaked, wl));
}

TEST(ResultCacheKey, WorkloadChangeChangesKey) {
  const auto cfg = core::ArchConfig::paper_baseline(6);
  EXPECT_NE(ResultCache::key(cfg, test_workload(0.03)),
            ResultCache::key(cfg, test_workload(0.05)));
  EXPECT_NE(ResultCache::key(cfg, test_workload()),
            ResultCache::key(cfg, workloads::make_benchmark("EKF-SLAM", 0.03)));
}

TEST(ResultCacheKey, SaltChangeChangesKey) {
  const auto cfg = core::ArchConfig::paper_baseline(6);
  const auto wl = test_workload();
  EXPECT_NE(ResultCache::key(cfg, wl, kSimVersionSalt),
            ResultCache::key(cfg, wl, kSimVersionSalt + 1));
}

TEST(ResultCache, MemoryTierHitRestoresEntry) {
  ResultCache cache;
  const auto cfg = core::ArchConfig::paper_baseline(3);
  const auto wl = test_workload();
  const auto fresh = run_one(cfg, wl);

  const std::uint64_t k = ResultCache::key(cfg, wl);
  ResultCache::Entry miss;
  EXPECT_FALSE(cache.lookup(k, &miss));
  EXPECT_EQ(cache.misses(), 1u);

  ResultCache::Entry entry;
  entry.result = fresh.result;
  entry.metrics = fresh.metrics;
  entry.events = fresh.events;
  entry.event_kinds = fresh.event_kinds;
  cache.insert(k, entry);
  EXPECT_EQ(cache.size(), 1u);

  ResultCache::Entry hit;
  ASSERT_TRUE(cache.lookup(k, &hit));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.disk_hits(), 0u);  // memory-only cache
  EXPECT_EQ(hit.result, fresh.result);
  EXPECT_EQ(hit.events, fresh.events);
  EXPECT_EQ(exact_metrics(hit.metrics), exact_metrics(fresh.metrics));
}

TEST(ResultCache, DiskTierRoundTripsBitExactly) {
  const std::string dir = scratch_dir("disk_roundtrip");
  const auto cfg = core::ArchConfig::paper_baseline(6);
  const auto wl = test_workload();
  const std::uint64_t k = ResultCache::key(cfg, wl);
  const auto fresh = run_one(cfg, wl);

  {
    ResultCache writer(dir);
    ResultCache::Entry entry;
    entry.result = fresh.result;
    entry.metrics = fresh.metrics;
    entry.events = fresh.events;
    entry.event_kinds = fresh.event_kinds;
    writer.insert(k, entry);
    ASSERT_TRUE(std::filesystem::exists(writer.entry_path(k)));
  }

  // A brand-new cache over the same directory: nothing in memory, so the
  // hit must come from disk — and restore every field bit-exactly,
  // including all the double-valued energy/area/latency numbers.
  ResultCache reader(dir);
  ResultCache::Entry hit;
  ASSERT_TRUE(reader.lookup(k, &hit));
  EXPECT_EQ(reader.disk_hits(), 1u);
  EXPECT_EQ(hit.result, fresh.result);  // operator== is exact equality
  EXPECT_EQ(hit.events, fresh.events);
  EXPECT_EQ(exact_metrics(hit.metrics), exact_metrics(fresh.metrics));
  for (std::size_t i = 0; i < sim::kNumEventKinds; ++i) {
    EXPECT_EQ(hit.event_kinds[i].count, fresh.event_kinds[i].count);
    // Host wall-clock never round-trips through the cache.
    EXPECT_EQ(hit.event_kinds[i].seconds, 0.0);
  }

  // A disk hit is promoted: a second lookup is served from memory.
  ResultCache::Entry again;
  ASSERT_TRUE(reader.lookup(k, &again));
  EXPECT_EQ(reader.disk_hits(), 1u);
  EXPECT_EQ(reader.hits(), 2u);
}

TEST(ResultCache, EntryJsonIsStrictlyValid) {
  const auto cfg = core::ArchConfig::paper_baseline(3);
  const auto wl = test_workload();
  const auto fresh = run_one(cfg, wl);
  ResultCache::Entry entry;
  entry.result = fresh.result;
  entry.metrics = fresh.metrics;
  entry.events = fresh.events;

  const std::uint64_t k = ResultCache::key(cfg, wl);
  const std::string text = ResultCache::to_json(k, kSimVersionSalt, entry);
  std::string error;
  EXPECT_TRUE(obs::validate_json(text, &error)) << error;

  ResultCache::Entry parsed;
  ASSERT_TRUE(ResultCache::from_json(text, k, kSimVersionSalt, &parsed));
  EXPECT_EQ(parsed.result, entry.result);
  EXPECT_EQ(parsed.events, entry.events);
  EXPECT_EQ(exact_metrics(parsed.metrics), exact_metrics(entry.metrics));
}

TEST(ResultCache, FromJsonRejectsKeyOrSaltMismatch) {
  const auto cfg = core::ArchConfig::paper_baseline(3);
  const auto wl = test_workload();
  ResultCache::Entry entry;
  entry.result = run_one(cfg, wl).result;

  const std::uint64_t k = ResultCache::key(cfg, wl);
  const std::string text = ResultCache::to_json(k, kSimVersionSalt, entry);
  ResultCache::Entry out;
  EXPECT_FALSE(ResultCache::from_json(text, k + 1, kSimVersionSalt, &out));
  EXPECT_FALSE(ResultCache::from_json(text, k, kSimVersionSalt + 1, &out));
  EXPECT_TRUE(ResultCache::from_json(text, k, kSimVersionSalt, &out));
}

TEST(ResultCache, CorruptDiskFilesAreMissesNotErrors) {
  const std::string dir = scratch_dir("corrupt");
  const auto cfg = core::ArchConfig::paper_baseline(3);
  const auto wl = test_workload();
  const std::uint64_t k = ResultCache::key(cfg, wl);

  ResultCache cache(dir);
  std::filesystem::create_directories(dir);

  // Truncated JSON, non-JSON garbage, and valid-JSON-wrong-shape must all
  // read as clean misses.
  for (const char* junk :
       {"{\"key\":\"", "not json at all \x01", "[1,2,3]", "{}"}) {
    {
      std::ofstream os(cache.entry_path(k), std::ios::trunc);
      os << junk;
    }
    ResultCache::Entry out;
    EXPECT_FALSE(cache.lookup(k, &out)) << "junk: " << junk;
  }
  // And insert() after a corrupt read repairs the file.
  ResultCache::Entry entry;
  entry.result = run_one(cfg, wl).result;
  cache.insert(k, entry);
  ResultCache reader(dir);
  ResultCache::Entry out;
  EXPECT_TRUE(reader.lookup(k, &out));
  EXPECT_EQ(out.result, entry.result);
}

// Determinism A/B: a cache-served sweep must be bit-identical to a fresh
// one at every worker count, and the second pass must be entirely hits.
TEST(ResultCache, CachedSweepBitIdenticalToFreshAcrossJobCounts) {
  const auto wl = test_workload();
  const auto points = paper_network_configs(6);

  // Fresh reference, no cache.
  const auto fresh = run(SweepRequest{}.add_points(points, wl));

  for (unsigned jobs : {1u, 2u, 8u}) {
    ResultCache cache;
    const auto first = run(
        SweepRequest{}.add_points(points, wl).with_jobs(jobs).with_cache(
            &cache));
    ASSERT_EQ(first.size(), fresh.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_FALSE(first[i].from_cache);
      EXPECT_EQ(first[i].result, fresh[i].result)
          << "jobs=" << jobs << " point " << i << " (cold pass)";
    }
    EXPECT_EQ(cache.size(), points.size());

    const auto warm = run(
        SweepRequest{}.add_points(points, wl).with_jobs(jobs).with_cache(
            &cache));
    ASSERT_EQ(warm.size(), fresh.size());
    for (std::size_t i = 0; i < fresh.size(); ++i) {
      EXPECT_TRUE(warm[i].from_cache)
          << "jobs=" << jobs << " point " << i << " missed a warm cache";
      EXPECT_EQ(warm[i].result, fresh[i].result)
          << "jobs=" << jobs << " point " << i << " (warm pass)";
      EXPECT_EQ(warm[i].events, fresh[i].events);
      EXPECT_EQ(exact_metrics(warm[i].metrics),
                exact_metrics(fresh[i].metrics));
    }
  }
}

// Invalidation through the sweep driver: changing the config or the salt
// must miss; re-running the identical request must hit.
TEST(ResultCache, SweepInvalidationOnConfigOrSaltChange) {
  const auto wl = test_workload();
  ResultCache cache;
  const auto cfg6 = core::ArchConfig::paper_baseline(6);
  const auto cfg12 = core::ArchConfig::paper_baseline(12);

  auto r1 = run_one(cfg6, wl, &cache);
  EXPECT_FALSE(r1.from_cache);
  auto r2 = run_one(cfg6, wl, &cache);
  EXPECT_TRUE(r2.from_cache);
  EXPECT_EQ(r1.result, r2.result);

  // Different config: miss, then its own entry.
  auto r3 = run_one(cfg12, wl, &cache);
  EXPECT_FALSE(r3.from_cache);
  EXPECT_EQ(cache.size(), 2u);

  // A cache constructed under a different salt never sees the old entries
  // on disk; in memory the tiers are distinct instances anyway — assert at
  // the key level, where the salt is folded in.
  EXPECT_NE(ResultCache::key(cfg6, wl, kSimVersionSalt),
            ResultCache::key(cfg6, wl, kSimVersionSalt + 1));
  const std::string dir = scratch_dir("salt");
  {
    ResultCache writer(dir);
    ResultCache::Entry entry;
    entry.result = r1.result;
    writer.insert(ResultCache::key(cfg6, wl, writer.salt()), entry);
  }
  ResultCache stale(dir, kSimVersionSalt + 1);
  ResultCache::Entry out;
  EXPECT_FALSE(stale.lookup(ResultCache::key(cfg6, wl, stale.salt()), &out));
}

// Regression: the on-disk tier used to write every insert through one
// shared "<path>.tmp" scratch file with no lock — two workers inserting
// the same key could interleave bytes and rename a corrupt file into
// place. Writers are now serialized (disk_mu_), so hammering one key from
// many threads must leave exactly one strictly-valid, bit-exact entry.
TEST(ResultCache, ConcurrentSameKeyDiskInsertsStayWellFormed) {
  const auto wl = test_workload();
  const auto cfg = core::ArchConfig::paper_baseline(3);
  const std::string dir = scratch_dir("concurrent_insert");

  ResultCache::Entry entry;
  {
    const SweepResult fresh = run_one(cfg, wl);
    entry.result = fresh.result;
    entry.metrics = fresh.metrics;
    entry.events = fresh.events;
    entry.event_kinds = fresh.event_kinds;
  }

  ResultCache cache(dir);
  const std::uint64_t key = ResultCache::key(cfg, wl, cache.salt());
  constexpr int kThreads = 8;
  constexpr int kInsertsPerThread = 25;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kInsertsPerThread; ++i) cache.insert(key, entry);
    });
  }
  for (auto& th : writers) th.join();

  // Exactly one file, no stray scratch leftovers, strictly valid JSON.
  int files = 0;
  for (const auto& f : std::filesystem::directory_iterator(dir)) {
    ++files;
    EXPECT_EQ(f.path().extension(), ".json") << f.path();
    std::ifstream in(f.path());
    std::ostringstream buf;
    buf << in.rdbuf();
    EXPECT_TRUE(obs::validate_json(buf.str())) << f.path();
  }
  EXPECT_EQ(files, 1);

  // A fresh cache over the same directory restores the entry bit-exactly.
  ResultCache reader(dir);
  ResultCache::Entry out;
  ASSERT_TRUE(reader.lookup(key, &out));
  EXPECT_EQ(out.result, entry.result);
  EXPECT_EQ(out.events, entry.events);
  EXPECT_EQ(exact_metrics(out.metrics), exact_metrics(entry.metrics));
  EXPECT_EQ(reader.disk_hits(), 1u);
}

// Regression: hits()/misses()/disk_hits()/size() used to read their
// counters without taking the lock, racing with sweep workers mutating
// the cache. They now lock, so a reporter may sample mid-run and the
// totals must reconcile exactly once the workers finish.
TEST(ResultCache, TelemetryAccountsEveryLookupUnderConcurrency) {
  ResultCache cache;  // memory tier only
  const auto wl = test_workload();
  const auto cfg = core::ArchConfig::paper_baseline(3);
  const std::uint64_t key = ResultCache::key(cfg, wl, cache.salt());

  ResultCache::Entry entry;
  entry.events = 7;

  constexpr int kThreads = 6;
  constexpr int kLookupsPerThread = 200;
  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    while (!stop.load()) {
      (void)cache.hits();
      (void)cache.misses();
      (void)cache.disk_hits();
      (void)cache.size();
    }
  });
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kLookupsPerThread; ++i) {
        ResultCache::Entry out;
        if (!cache.lookup(key, &out)) cache.insert(key, entry);
      }
    });
  }
  for (auto& th : workers) th.join();
  stop.store(true);
  sampler.join();

  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<std::uint64_t>(kThreads) * kLookupsPerThread);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.disk_hits(), 0u);
  EXPECT_GE(cache.hits(), 1u);
}

TEST(ConfigDigest, CanonicalTextCoversConfigFields) {
  const auto base = core::ArchConfig::paper_baseline(6);
  core::ArchConfig tweaked = base;
  tweaked.island.spm_sharing = !tweaked.island.spm_sharing;
  EXPECT_NE(core::canonical_text(base), core::canonical_text(tweaked));
  EXPECT_EQ(core::canonical_text(base), core::canonical_text(base));
  // The digest text embeds section headers, so hashes can't collide by
  // field-order coincidence across sections.
  EXPECT_NE(core::canonical_text(base).find("[arch]"), std::string::npos);
}

}  // namespace
}  // namespace ara::dse
