// Golden regression bands: guards the calibrated reproduction. These are
// deliberately wide bands around the paper-shape results (EXPERIMENTS.md);
// they fail when a change breaks a reproduced trend, not when noise moves
// a third decimal.
#include <gtest/gtest.h>

#include "cmp/cmp_model.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "power/area_model.h"
#include "workloads/registry.h"

namespace ara {
namespace {

constexpr double kScale = 0.25;

core::RunResult sim_point(const core::ArchConfig& cfg,
                          const workloads::Workload& w) {
  return dse::run(dse::SweepRequest{}.add(cfg, w)).front().result;
}

double perf(const core::ArchConfig& cfg, const workloads::Workload& w) {
  return sim_point(cfg, w).performance();
}

TEST(Golden, Fig7RingBeatsProxyForChainingHeavyAt3Islands) {
  for (const char* name : {"Segmentation", "EKF-SLAM"}) {
    auto w = workloads::make_benchmark(name, kScale);
    const double xbar = perf(core::ArchConfig::paper_baseline(3), w);
    const double ring = perf(core::ArchConfig::ring_design(3, 2, 32), w);
    EXPECT_GT(ring / xbar, 1.5) << name;
    EXPECT_LT(ring / xbar, 3.0) << name;
  }
}

TEST(Golden, Fig7GapCollapsesAt24Islands) {
  auto w = workloads::make_benchmark("EKF-SLAM", kScale);
  const double xbar = perf(core::ArchConfig::paper_baseline(24), w);
  const double ring = perf(core::ArchConfig::ring_design(24, 2, 32), w);
  EXPECT_GT(ring / xbar, 0.9);
  EXPECT_LT(ring / xbar, 1.4);
}

TEST(Golden, Fig7LowChainingIndifferentToTopology) {
  auto w = workloads::make_benchmark("Denoise", kScale);
  const double xbar = perf(core::ArchConfig::paper_baseline(3), w);
  const double ring = perf(core::ArchConfig::ring_design(3, 2, 32), w);
  EXPECT_NEAR(ring / xbar, 1.0, 0.15);
}

TEST(Golden, Fig6DenoiseScalesMoreThanEkfWithIslands) {
  auto denoise = workloads::make_benchmark("Denoise", kScale);
  auto ekf = workloads::make_benchmark("EKF-SLAM", kScale);
  const double d_gain = perf(core::ArchConfig::paper_baseline(24), denoise) /
                        perf(core::ArchConfig::paper_baseline(3), denoise);
  const double e_gain = perf(core::ArchConfig::paper_baseline(24), ekf) /
                        perf(core::ArchConfig::paper_baseline(3), ekf);
  EXPECT_GT(d_gain, 1.8);
  EXPECT_GT(e_gain, 1.3);
  EXPECT_GT(d_gain, e_gain);  // the Fig. 6 ordering
}

TEST(Golden, Fig10SpeedupBands) {
  const cmp::CmpModel cmp12(cmp::CmpConfig::xeon_e5_2420());
  const core::ArchConfig best = core::ArchConfig::best_config();
  struct Band {
    const char* name;
    double lo, hi;
  };
  // Paper values +/- ~35%.
  const Band bands[] = {
      {"Denoise", 2.8, 5.8},
      {"Segmentation", 19.0, 40.0},
      {"EKF-SLAM", 1.2, 2.5},
  };
  for (const auto& b : bands) {
    auto w = workloads::make_benchmark(b.name, kScale);
    const auto r = sim_point(best, w);
    const double speedup = cmp12.run(w).seconds / r.seconds();
    EXPECT_GT(speedup, b.lo) << b.name;
    EXPECT_LT(speedup, b.hi) << b.name;
  }
}

TEST(Golden, Fig10EnergyGainTracksSpeedup) {
  // The paper's energy-gain/speedup ratio is ~2.76 across benchmarks.
  const cmp::CmpModel cmp12(cmp::CmpConfig::xeon_e5_2420());
  auto w = workloads::make_benchmark("Deblur", kScale);
  const auto r = sim_point(core::ArchConfig::best_config(), w);
  const auto sw = cmp12.run(w);
  const double ratio =
      (sw.joules / r.energy.total()) / (sw.seconds / r.seconds());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 3.6);
}

TEST(Golden, Sec52ChainingXbarAreaBlowup) {
  // >97% of a 40-ABB island.
  core::ArchConfig cfg = core::ArchConfig::paper_baseline(3);
  cfg.island.net.topology = island::SpmDmaTopology::kChainingXbar;
  core::System sys(cfg);
  const auto& isl = sys.island(0);
  EXPECT_GT(isl.net_area_mm2() / isl.total_area_mm2(), 0.97);
}

TEST(Golden, Sec57AreaShares) {
  {
    core::System sys(core::ArchConfig::paper_baseline(3));
    const auto& isl = sys.island(0);
    const double share = isl.net_area_mm2() / isl.total_area_mm2();
    EXPECT_GT(share, 0.40);  // proxy xbar, large island: paper 44-50%
    EXPECT_LT(share, 0.52);
  }
  for (std::uint32_t rings : {1u, 2u, 3u}) {
    core::System sys(core::ArchConfig::ring_design(3, rings, 32));
    const auto& isl = sys.island(0);
    const double share = isl.net_area_mm2() / isl.total_area_mm2();
    EXPECT_GT(share, 0.10);  // paper: rings 16-40%
    EXPECT_LT(share, 0.46);
  }
}

TEST(Golden, Sec53TwoNarrowRingsMatchOneWide) {
  auto w = workloads::make_benchmark("EKF-SLAM", kScale);
  const double two16 = perf(core::ArchConfig::ring_design(3, 2, 16), w);
  const double one32 = perf(core::ArchConfig::ring_design(3, 1, 32), w);
  EXPECT_NEAR(two16 / one32, 1.0, 0.12);
}

TEST(Golden, Sec54PortDoublingIsNegligible) {
  auto w = workloads::make_benchmark("Registration", kScale);
  core::ArchConfig exact = core::ArchConfig::ring_design(6, 2, 32);
  core::ArchConfig doubled = exact;
  doubled.island.spm_port_multiplier = 2;
  const double gain = perf(doubled, w) / perf(exact, w);
  EXPECT_NEAR(gain, 1.0, 0.05);
}

TEST(Golden, UtilizationInPaperBallpark) {
  auto w = workloads::make_benchmark("Deblur", kScale);
  const auto r = sim_point(core::ArchConfig::best_config(), w);
  EXPECT_GT(r.avg_abb_utilization, 0.05);
  EXPECT_LT(r.avg_abb_utilization, 0.35);
  EXPECT_GT(r.peak_abb_utilization, 0.2);
}

TEST(Golden, JobLatencyStatsPopulated) {
  auto w = workloads::make_benchmark("Denoise", kScale);
  const auto r = sim_point(core::ArchConfig::best_config(), w);
  EXPECT_GT(r.job_latency_mean, 0.0);
  EXPECT_GE(r.job_latency_p95, r.job_latency_p50);
  EXPECT_GE(r.job_latency_max, r.job_latency_p95 / 2);  // bucket granular
  EXPECT_LE(r.job_latency_max, r.makespan);
}

}  // namespace
}  // namespace ara
