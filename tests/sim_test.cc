// Unit tests for the discrete-event kernel, RNG, stats and SharedLink.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/shared_link.h"
#include "sim/stats.h"

namespace ara::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTickRunsInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(5, [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.schedule_in(5, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 6u);
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(s.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50u);
  EXPECT_TRUE(s.run_until(1000));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventsAtLimit) {
  Simulator s;
  int fired = 0;
  s.schedule_at(50, [&] { ++fired; });
  EXPECT_TRUE(s.run_until(50));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CountsEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextInSingletonRange) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.next_in(42, 42), 42);
    EXPECT_EQ(r.next_in(-7, -7), -7);
  }
}

// Regression: `hi - lo + 1` used to wrap for lo > hi, silently sampling from
// nearly the whole int64 domain instead of failing.
TEST(Rng, NextInRejectsInvertedRange) {
  Rng r(19);
  EXPECT_THROW(r.next_in(3, -3), ConfigError);
  EXPECT_THROW(r.next_in(1, 0), ConfigError);
}

TEST(SharedLink, LatencyOnlyForZeroQueue) {
  SharedLink link("l", 16.0, 5);
  // 16 bytes at 16 B/cyc: 1 cycle occupancy + 5 latency.
  EXPECT_EQ(link.submit(0, 16), 6u);
}

TEST(SharedLink, SerializesBackToBackTransfers) {
  SharedLink link("l", 16.0, 0);
  EXPECT_EQ(link.submit(0, 64), 4u);
  EXPECT_EQ(link.submit(0, 64), 8u);   // queued behind the first
  EXPECT_EQ(link.submit(100, 64), 104u);  // idle gap, then serves
}

TEST(SharedLink, FractionalBandwidthRoundsUp) {
  SharedLink link("l", 10.0, 0);
  EXPECT_EQ(link.submit(0, 64), 7u);  // ceil(64/10) = 7
}

TEST(SharedLink, ZeroBytesCostsOnlyLatency) {
  SharedLink link("l", 8.0, 3);
  EXPECT_EQ(link.submit(10, 0), 13u);
  EXPECT_EQ(link.total_bytes(), 0u);
}

TEST(SharedLink, TracksUtilizationAndBytes) {
  SharedLink link("l", 16.0, 0);
  link.submit(0, 160);  // 10 cycles busy
  EXPECT_EQ(link.total_bytes(), 160u);
  EXPECT_EQ(link.busy_cycles(), 10u);
  EXPECT_DOUBLE_EQ(link.utilization(20), 0.5);
  EXPECT_EQ(link.transfers(), 1u);
}

TEST(SharedLink, RejectsZeroBandwidth) {
  EXPECT_THROW(SharedLink("bad", 0.0, 1), std::runtime_error);
}

TEST(Stats, CounterAccumulates) {
  StatRegistry reg;
  auto& c = reg.counter("a.b");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.counter("a.b").value(), 5u);  // same object
}

TEST(Stats, AccumulatorTracksMoments) {
  StatRegistry reg;
  auto& a = reg.accumulator("x");
  a.add(1.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.sum(), 4.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Stats, PrefixSums) {
  StatRegistry reg;
  reg.counter("net.a").inc(1);
  reg.counter("net.b").inc(2);
  reg.counter("other").inc(10);
  EXPECT_EQ(reg.counter_sum_by_prefix("net."), 3u);
}

TEST(Stats, HistogramPercentiles) {
  StatRegistry reg;
  auto& h = reg.histogram("lat", 10, 10);
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 10.0);
  EXPECT_EQ(h.max_seen(), 99u);
}

TEST(Stats, HistogramOverflowBucket) {
  StatRegistry reg;
  auto& h = reg.histogram("lat", 10, 4);
  h.record(1000000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

}  // namespace
}  // namespace ara::sim
