// Unit tests for the discrete-event kernel, RNG, stats and SharedLink.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/shared_link.h"
#include "sim/stats.h"

namespace ara::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0u);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.events_processed(), 0u);
}

TEST(Simulator, ExecutesEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30u);
}

TEST(Simulator, SameTickRunsInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(5, [&, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  s.schedule_at(1, [&] {
    ++fired;
    s.schedule_in(5, [&] { ++fired; });
  });
  s.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), 6u);
}

TEST(Simulator, RunUntilStopsAtLimit) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(100, [&] { ++fired; });
  EXPECT_FALSE(s.run_until(50));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 50u);
  EXPECT_TRUE(s.run_until(1000));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, RunUntilExecutesEventsAtLimit) {
  Simulator s;
  int fired = 0;
  s.schedule_at(50, [&] { ++fired; });
  EXPECT_TRUE(s.run_until(50));
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, CountsEvents) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.events_processed(), 7u);
}

// Regression: schedule_at used to clamp past ticks to now(), silently
// reordering the event after same-tick events it should have preceded.
// It is now a checked error.
TEST(Simulator, SchedulePastThrows) {
  Simulator s;
  s.schedule_at(10, [] {});
  s.run();
  ASSERT_EQ(s.now(), 10u);
  EXPECT_THROW(s.schedule_at(9, [] {}), ScheduleError);
  EXPECT_THROW(s.schedule_at(0, [] {}), ScheduleError);
  EXPECT_NO_THROW(s.schedule_at(10, [] {}));  // now() itself is fine
  s.run();
  EXPECT_EQ(s.events_processed(), 2u);
}

// An event thrown far beyond the calendar-queue wheel horizon lands in the
// overflow heap and must migrate back into the wheel, in order, as the
// window slides forward. 4096 is the wheel size; use several multiples.
TEST(Simulator, FarFutureEventsMigrateFromOverflowInOrder) {
  Simulator s;
  std::vector<Tick> fired;
  const std::vector<Tick> ticks = {1,     5000,  4096,  100000, 4095,
                                   12288, 99999, 65536, 3,      8191};
  for (Tick t : ticks) {
    s.schedule_at(t, [&fired, &s] { fired.push_back(s.now()); });
  }
  s.run();
  ASSERT_EQ(fired.size(), ticks.size());
  std::vector<Tick> expected = ticks;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(s.now(), 100000u);
}

// Same-tick events split between the wheel and the overflow heap (scheduled
// before and after the window covered the tick) must still run in schedule
// order once they meet in the same bucket.
TEST(Simulator, OverflowAndWheelInterleaveBySeq) {
  Simulator s;
  std::vector<int> order;
  // Tick 5000 is beyond the initial window: goes to overflow.
  s.schedule_at(5000, [&] { order.push_back(0); });
  // Advance time so 5000 falls inside the wheel window, then schedule two
  // more events at the same tick, which append to the (migrated) bucket.
  s.schedule_at(2000, [&] {
    s.schedule_at(5000, [&] { order.push_back(1); });
    s.schedule_at(5000, [&] { order.push_back(2); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// Randomized stress: the kernel must agree with a trivial reference model
// (a stable-sorted (tick, seq) list) on the exact dispatch sequence,
// including events scheduled from within events and ticks far past the
// wheel horizon.
TEST(Simulator, RandomStressMatchesReferenceModel) {
  using Ref = std::pair<Tick, std::uint64_t>;  // (tick, insertion seq)

  // Pass 1: everything scheduled up front with explicit sequence tags;
  // check the kernel's order against a min-heap reference exactly.
  Simulator s;
  Rng rng(999);
  std::priority_queue<Ref, std::vector<Ref>, std::greater<Ref>> ref;
  std::vector<Ref> fired;
  for (std::uint64_t seq = 0; seq < 2000; ++seq) {
    Tick at = 0;
    switch (rng.next_below(3)) {
      case 0: at = rng.next_below(64); break;       // near buckets
      case 1: at = rng.next_below(4096); break;     // whole wheel window
      default: at = rng.next_below(100000); break;  // overflow heap
    }
    ref.push({at, seq});
    s.schedule_at(at, [&fired, at, seq] { fired.push_back({at, seq}); });
  }
  s.run();
  ASSERT_EQ(fired.size(), 2000u);
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_EQ(fired[i], ref.top()) << "dispatch " << i << " out of order";
    ref.pop();
  }

  // Pass 2: events that reschedule successors at random horizons while the
  // window slides. Dispatch ticks must be monotonically non-decreasing and
  // the queue must drain completely.
  Simulator s2;
  Rng rng2(12345);
  auto random_delay = [&rng2]() -> Tick {
    switch (rng2.next_below(4)) {
      case 0: return rng2.next_below(8);             // same/near tick
      case 1: return rng2.next_below(512);           // inside the wheel
      case 2: return 4096 + rng2.next_below(4096);   // just past horizon
      default: return rng2.next_below(50000);        // far future
    }
  };
  std::vector<Tick> when;
  std::uint64_t to_spawn = 400;
  std::function<void()> body = [&] {
    when.push_back(s2.now());
    if (to_spawn > 0) {
      --to_spawn;
      s2.schedule_in(random_delay(), body);
    }
  };
  for (int i = 0; i < 100; ++i) s2.schedule_at(random_delay(), body);
  s2.run();
  for (std::size_t i = 1; i < when.size(); ++i) {
    EXPECT_LE(when[i - 1], when[i]) << "time went backwards at dispatch " << i;
  }
  EXPECT_EQ(s2.pending(), 0u);
  EXPECT_EQ(s2.events_processed(), when.size());
  EXPECT_EQ(when.size(), 500u);  // 100 roots + 400 spawned
}

// Callback small-buffer optimization telemetry: small captures stay inline,
// oversized captures are counted as heap spills.
TEST(Simulator, CountsHeapCallbacks) {
  Simulator s;
  int x = 0;
  s.schedule_at(1, [&x] { ++x; });  // one pointer: inline
  s.run();
  EXPECT_EQ(s.heap_callbacks(), 0u);

  struct Fat {
    char pad[2 * EventCallback::kInlineBytes] = {};
  };
  Fat fat;
  s.schedule_at(s.now(), [fat, &x] { x += static_cast<int>(sizeof(fat)); });
  s.run();
  EXPECT_EQ(s.heap_callbacks(), 1u);
  EXPECT_GT(x, 0);
}

// The self-profiling switch must not change dispatch counts, only add
// wall-clock attribution.
TEST(Simulator, KindStatsCountDispatches) {
  Simulator s;
  s.schedule_at(1, [] {}, EventKind::kGamRequest);
  s.schedule_at(2, [] {}, EventKind::kGamRequest);
  s.schedule_at(3, [] {}, EventKind::kTaskComplete);
  s.run();
  const auto& stats = s.kind_stats();
  EXPECT_EQ(stats[static_cast<std::size_t>(EventKind::kGamRequest)].count, 2u);
  EXPECT_EQ(stats[static_cast<std::size_t>(EventKind::kTaskComplete)].count,
            1u);
  // Not self-profiling: no wall-clock attribution.
  EXPECT_EQ(stats[static_cast<std::size_t>(EventKind::kGamRequest)].seconds,
            0.0);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.next_u64() != b.next_u64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.next_bool(0.0));
    EXPECT_TRUE(r.next_bool(1.0));
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextInSingletonRange) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(r.next_in(42, 42), 42);
    EXPECT_EQ(r.next_in(-7, -7), -7);
  }
}

// Regression: `hi - lo + 1` used to wrap for lo > hi, silently sampling from
// nearly the whole int64 domain instead of failing.
TEST(Rng, NextInRejectsInvertedRange) {
  Rng r(19);
  EXPECT_THROW(r.next_in(3, -3), ConfigError);
  EXPECT_THROW(r.next_in(1, 0), ConfigError);
}

TEST(SharedLink, LatencyOnlyForZeroQueue) {
  SharedLink link("l", 16.0, 5);
  // 16 bytes at 16 B/cyc: 1 cycle occupancy + 5 latency.
  EXPECT_EQ(link.submit(0, 16), 6u);
}

TEST(SharedLink, SerializesBackToBackTransfers) {
  SharedLink link("l", 16.0, 0);
  EXPECT_EQ(link.submit(0, 64), 4u);
  EXPECT_EQ(link.submit(0, 64), 8u);   // queued behind the first
  EXPECT_EQ(link.submit(100, 64), 104u);  // idle gap, then serves
}

TEST(SharedLink, FractionalBandwidthRoundsUp) {
  SharedLink link("l", 10.0, 0);
  EXPECT_EQ(link.submit(0, 64), 7u);  // ceil(64/10) = 7
}

TEST(SharedLink, ZeroBytesCostsOnlyLatency) {
  SharedLink link("l", 8.0, 3);
  EXPECT_EQ(link.submit(10, 0), 13u);
  EXPECT_EQ(link.total_bytes(), 0u);
}

TEST(SharedLink, TracksUtilizationAndBytes) {
  SharedLink link("l", 16.0, 0);
  link.submit(0, 160);  // 10 cycles busy
  EXPECT_EQ(link.total_bytes(), 160u);
  EXPECT_EQ(link.busy_cycles(), 10u);
  EXPECT_DOUBLE_EQ(link.utilization(20), 0.5);
  EXPECT_EQ(link.transfers(), 1u);
}

TEST(SharedLink, RejectsZeroBandwidth) {
  EXPECT_THROW(SharedLink("bad", 0.0, 1), std::runtime_error);
}

TEST(Stats, CounterAccumulates) {
  StatRegistry reg;
  auto& c = reg.counter("a.b");
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(reg.counter("a.b").value(), 5u);  // same object
}

TEST(Stats, AccumulatorTracksMoments) {
  StatRegistry reg;
  auto& a = reg.accumulator("x");
  a.add(1.0);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.sum(), 4.0);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(Stats, PrefixSums) {
  StatRegistry reg;
  reg.counter("net.a").inc(1);
  reg.counter("net.b").inc(2);
  reg.counter("other").inc(10);
  EXPECT_EQ(reg.counter_sum_by_prefix("net."), 3u);
}

TEST(Stats, HistogramPercentiles) {
  StatRegistry reg;
  auto& h = reg.histogram("lat", 10, 10);
  for (std::uint64_t v = 0; v < 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(static_cast<double>(h.percentile(0.5)), 50.0, 10.0);
  EXPECT_EQ(h.max_seen(), 99u);
}

TEST(Stats, HistogramOverflowBucket) {
  StatRegistry reg;
  auto& h = reg.histogram("lat", 10, 4);
  h.record(1000000);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.buckets().back(), 1u);
}

}  // namespace
}  // namespace ara::sim
