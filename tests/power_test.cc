// Tests for the power/area models: McPAT-like pipeline (Figs 1-3),
// compute-unit characterization (Sec. 1), Orion-like network energy, and
// the area formulas behind Secs. 5.1/5.2/5.7.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "power/area_model.h"
#include "power/compute_unit_energy.h"
#include "power/mcpat_like.h"
#include "power/orion_like.h"

namespace ara::power {
namespace {

TEST(McPatLike, Fig2SharesExact) {
  const McPatLikePipeline m{PipelineParams{}, InstructionMix{}};
  EXPECT_NEAR(m.share(PipeComponent::kFetch), 0.089, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kDecode), 0.060, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kRename), 0.121, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kRegFiles), 0.027, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kScheduler), 0.108, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kMisc), 0.237, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kFpu), 0.079, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kIntAlu), 0.138, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kMulDiv), 0.040, 1e-9);
  EXPECT_NEAR(m.share(PipeComponent::kMemory), 0.101, 1e-9);
}

TEST(McPatLike, SharesSumToOne) {
  const McPatLikePipeline m{PipelineParams{}, InstructionMix{}};
  double sum = 0;
  for (std::size_t i = 0; i < kNumPipeComponents; ++i) {
    sum += m.share(static_cast<PipeComponent>(i));
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(McPatLike, IntAluPerOpMatchesSec1Anchor) {
  // 460 pJ/instr x 13.8% / 52% int-ish instructions ~= 122 pJ = 0.122 nJ.
  const McPatLikePipeline m{PipelineParams{}, InstructionMix{}};
  const InstructionMix mix;
  const double per_op =
      m.energy_pj(PipeComponent::kIntAlu) / (mix.int_alu + mix.branch);
  EXPECT_NEAR(per_op, 122.0, 1.0);
}

TEST(McPatLike, AsicSubstitutionSavesPaperShare) {
  const McPatLikePipeline m{PipelineParams{}, InstructionMix{}};
  const auto asic = m.with_asic_compute_units(0.97);
  EXPECT_NEAR(asic.savings_share(), 0.249, 0.002);  // paper: 24.9%
  // Compute units fall below 1% of the original total.
  const double orig = m.total_pj();
  double compute = 0;
  for (auto c : {PipeComponent::kFpu, PipeComponent::kIntAlu,
                 PipeComponent::kMulDiv}) {
    compute += asic.energy_pj(c);
  }
  EXPECT_LT(compute / orig, 0.01);
}

TEST(McPatLike, SubstitutionLeavesOtherComponentsAlone) {
  const McPatLikePipeline m{PipelineParams{}, InstructionMix{}};
  const auto asic = m.with_asic_compute_units(0.97);
  for (std::size_t i = 0; i < kNumPipeComponents; ++i) {
    const auto c = static_cast<PipeComponent>(i);
    if (!is_compute_unit(c)) {
      EXPECT_DOUBLE_EQ(asic.energy_pj(c), m.energy_pj(c));
    }
  }
}

TEST(McPatLike, StructureScalingResponds) {
  PipelineParams big;
  big.rob_entries = 192;
  big.rs_entries = 256;
  const McPatLikePipeline base{PipelineParams{}, InstructionMix{}};
  const McPatLikePipeline scaled{big, InstructionMix{}};
  EXPECT_GT(scaled.energy_pj(PipeComponent::kScheduler),
            base.energy_pj(PipeComponent::kScheduler));
  EXPECT_GT(scaled.energy_pj(PipeComponent::kMisc),
            base.energy_pj(PipeComponent::kMisc));
}

TEST(McPatLike, ActivityScalingResponds) {
  InstructionMix fp_heavy;
  fp_heavy.int_alu = 0.30;
  fp_heavy.fp = 0.24;
  fp_heavy.muldiv = 0.04;
  fp_heavy.load = 0.20;
  fp_heavy.store = 0.10;
  fp_heavy.branch = 0.12;
  const McPatLikePipeline base{PipelineParams{}, InstructionMix{}};
  const McPatLikePipeline heavy{PipelineParams{}, fp_heavy};
  EXPECT_NEAR(heavy.energy_pj(PipeComponent::kFpu),
              2.0 * base.energy_pj(PipeComponent::kFpu), 1e-9);
}

TEST(McPatLike, RejectsBadMixAndReduction) {
  InstructionMix bad;
  bad.int_alu = 0.9;  // sums > 1
  EXPECT_THROW((McPatLikePipeline{PipelineParams{}, bad}), ConfigError);
  const McPatLikePipeline m{PipelineParams{}, InstructionMix{}};
  EXPECT_THROW(m.with_asic_compute_units(1.5), ConfigError);
}

TEST(ComputeUnitEnergy, PaperTableValues) {
  const auto& t = compute_op_table();
  EXPECT_DOUBLE_EQ(t[0].processor_nj, 0.122);
  EXPECT_DOUBLE_EQ(t[0].asic_nj, 0.002);
  EXPECT_DOUBLE_EQ(t[1].processor_nj, 0.120);
  EXPECT_DOUBLE_EQ(t[1].asic_nj, 0.007);
  EXPECT_DOUBLE_EQ(t[2].processor_nj, 0.150);
  EXPECT_DOUBLE_EQ(t[2].asic_nj, 0.008);
}

TEST(ComputeUnitEnergy, SavingFactorsMatchPaper) {
  EXPECT_NEAR(asic_saving_factor(ComputeOp::kAdd32), 61.0, 0.5);
  EXPECT_NEAR(asic_saving_factor(ComputeOp::kMul32), 17.0, 0.5);
  EXPECT_NEAR(asic_saving_factor(ComputeOp::kFpSingle), 19.0, 0.5);
}

TEST(ComputeUnitEnergy, DecompositionMultipliesOut) {
  for (auto op : {ComputeOp::kAdd32, ComputeOp::kMul32, ComputeOp::kFpSingle}) {
    const auto d = saving_decomposition(op);
    EXPECT_NEAR(d.excess_functionality * d.excess_precision * d.dynamic_logic,
                asic_saving_factor(op), 1e-6);
  }
}

TEST(OrionLike, XbarEnergyGrowsWithPorts) {
  EXPECT_GT(xbar_pj_per_byte(41), xbar_pj_per_byte(6));
}

TEST(AreaModel, SpmAreaScalesWithCapacityAndPorts) {
  EXPECT_GT(spm_group_area_mm2(16 * 1024, 1), spm_group_area_mm2(8 * 1024, 1));
  EXPECT_GT(spm_group_area_mm2(8 * 1024, 4), spm_group_area_mm2(8 * 1024, 1));
}

TEST(AreaModel, ProxyVsChainingGrowth) {
  // Proxy grows mildly; chaining grows cubically (Sec. 5.2).
  const double p5 = proxy_xbar_area_mm2(5, 32);
  const double p40 = proxy_xbar_area_mm2(40, 32);
  const double c5 = chaining_xbar_area_mm2(5, 32);
  const double c40 = chaining_xbar_area_mm2(40, 32);
  EXPECT_LT(p40 / p5, 20.0);
  EXPECT_GT(c40 / c5, 100.0);
}

TEST(AreaModel, RingStopLinearInWidth) {
  EXPECT_NEAR(ring_stop_area_mm2(32) / ring_stop_area_mm2(16), 2.0, 1e-9);
}

TEST(McPatLike, ComponentNamesStable) {
  EXPECT_STREQ(component_name(PipeComponent::kMisc), "Miscellaneous");
  EXPECT_STREQ(component_name(PipeComponent::kIntAlu), "Int ALU");
  EXPECT_TRUE(is_compute_unit(PipeComponent::kFpu));
  EXPECT_FALSE(is_compute_unit(PipeComponent::kMemory));
}

}  // namespace
}  // namespace ara::power
