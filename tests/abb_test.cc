// Unit tests for the ABB library: kind parameters, mixes, engine timing.
#include <gtest/gtest.h>

#include "abb/abb_engine.h"
#include "abb/abb_types.h"
#include "common/config_error.h"

namespace ara::abb {
namespace {

TEST(AbbTypes, ParamsAreSane) {
  for (AbbKind k : asic_kinds()) {
    const auto& p = params(k);
    EXPECT_GT(p.pipeline_latency, 0u) << p.name;
    EXPECT_GE(p.initiation_interval, 1u) << p.name;
    EXPECT_GT(p.input_words, 0u) << p.name;
    EXPECT_GT(p.min_spm_ports, 0u) << p.name;
    EXPECT_GT(p.spm_bytes, 0u) << p.name;
    EXPECT_GT(p.area_mm2, 0.0) << p.name;
    EXPECT_GT(p.energy_pj_per_elem, 0.0) << p.name;
  }
}

TEST(AbbTypes, PaperMixIs120Blocks) {
  const AbbMix mix = paper_mix();
  EXPECT_EQ(mix.total(), 120u);
  EXPECT_EQ(mix.count[0], 78u);  // poly
  EXPECT_EQ(mix.count[1], 18u);  // divide
  EXPECT_EQ(mix.count[2], 9u);   // sqrt
  EXPECT_EQ(mix.count[3], 6u);   // power
  EXPECT_EQ(mix.count[4], 9u);   // sum
}

TEST(AbbTypes, ScaledMixPreservesTotalAndProportions) {
  for (std::uint32_t total : {10u, 60u, 120u, 240u, 333u}) {
    const AbbMix mix = scaled_mix(total);
    EXPECT_EQ(mix.total(), total) << total;
    for (std::size_t k = 0; k < kNumAsicAbbKinds; ++k) {
      EXPECT_GE(mix.count[k], 1u);
    }
    // Poly stays dominant.
    EXPECT_GT(mix.count[0], mix.count[1]);
  }
}

TEST(AbbTypes, ScaledMixAtPaperTotalMatchesPaperMix) {
  const AbbMix mix = scaled_mix(120);
  const AbbMix paper = paper_mix();
  for (std::size_t k = 0; k < kNumAsicAbbKinds; ++k) {
    EXPECT_EQ(mix.count[k], paper.count[k]);
  }
}

TEST(AbbTypes, ScaledMixRejectsTinyTotals) {
  EXPECT_THROW(scaled_mix(3), ConfigError);
}

TEST(AbbEngine, ComputeCyclesLatencyPlusBody) {
  AbbEngine e(0, 0, AbbKind::kDivide, 1, 0.0);
  const auto& p = params(AbbKind::kDivide);
  EXPECT_EQ(e.compute_cycles(100), p.pipeline_latency + 100u);
}

TEST(AbbEngine, ConflictsStretchExecution) {
  AbbEngine clean(0, 0, AbbKind::kPoly, 5, 0.0);
  AbbEngine conflicted(0, 1, AbbKind::kPoly, 5, 0.10);
  EXPECT_GT(conflicted.compute_cycles(1000), clean.compute_cycles(1000));
  EXPECT_NEAR(conflicted.stall_factor(), 1.10, 1e-9);
}

TEST(AbbEngine, OverProvisionedPortsShrinkConflictsQuadratically) {
  AbbEngine exact(0, 0, AbbKind::kPoly, 5, 0.08);
  AbbEngine doubled(0, 1, AbbKind::kPoly, 10, 0.08);
  EXPECT_NEAR(exact.stall_factor(), 1.08, 1e-9);
  EXPECT_NEAR(doubled.stall_factor(), 1.02, 1e-9);  // 0.08 / 4
}

TEST(AbbEngine, RejectsUnderProvisionedPorts) {
  EXPECT_THROW(AbbEngine(0, 0, AbbKind::kPoly, 2, 0.0), ConfigError);
}

TEST(AbbEngine, ExecuteTracksBusyAndEnergy) {
  AbbEngine e(0, 0, AbbKind::kSqrt, 1, 0.0);
  const Tick done = e.execute(10, 500);
  EXPECT_EQ(done, 10 + e.compute_cycles(500));
  EXPECT_EQ(e.busy_cycles(), e.compute_cycles(500));
  EXPECT_EQ(e.elements_processed(), 500u);
  EXPECT_EQ(e.tasks_executed(), 1u);
  EXPECT_GT(e.dynamic_energy_j(), 0.0);
  EXPECT_TRUE(e.busy_at(done - 1));
  EXPECT_FALSE(e.busy_at(done));
}

TEST(AbbEngine, UtilizationFractionOfWindow) {
  AbbEngine e(0, 0, AbbKind::kSum, 5, 0.0);
  const Tick done = e.execute(0, 990);
  EXPECT_EQ(done, 1000u);  // 10 latency + 990
  EXPECT_DOUBLE_EQ(e.utilization(2000), 0.5);
}

TEST(AbbEngine, FabricRunsSlowerAndHotter) {
  AbbEngine asic(0, 0, AbbKind::kPoly, 5, 0.0);
  AbbEngine fabric(0, 1, AbbKind::kPoly, 5, 0.0, /*is_fabric=*/true);
  EXPECT_GT(fabric.compute_cycles(100), asic.compute_cycles(100));
  asic.execute(0, 100);
  fabric.execute(0, 100);
  EXPECT_GT(fabric.dynamic_energy_j(), asic.dynamic_energy_j());
  EXPECT_GT(fabric.area_mm2(), asic.area_mm2());
  EXPECT_TRUE(fabric.is_fabric());
}

TEST(AbbEngine, SpmTrafficAccounting) {
  AbbEngine e(0, 0, AbbKind::kPoly, 5, 0.0);
  e.execute(0, 10);
  const auto& p = params(AbbKind::kPoly);
  EXPECT_EQ(e.spm_words_accessed(), 10u * (p.input_words + p.output_words));
}

TEST(AbbTypes, KindNamesStable) {
  EXPECT_STREQ(kind_name(AbbKind::kPoly), "poly");
  EXPECT_STREQ(kind_name(AbbKind::kDivide), "divide");
  EXPECT_STREQ(kind_name(AbbKind::kSqrt), "sqrt");
  EXPECT_STREQ(kind_name(AbbKind::kPower), "power");
  EXPECT_STREQ(kind_name(AbbKind::kSum), "sum");
  EXPECT_STREQ(kind_name(AbbKind::kFabric), "fabric");
}

}  // namespace
}  // namespace ara::abb
