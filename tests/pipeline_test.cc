// Tests for multi-kernel pipelines, GAM policies, the system report and
// CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "common/config_error.h"
#include "core/pipeline.h"
#include "core/system.h"
#include "dse/report.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace ara {
namespace {

std::vector<workloads::Workload> two_stage() {
  return {workloads::make_benchmark("Deblur", 0.05),
          workloads::make_benchmark("Denoise", 0.05)};
}

TEST(Pipeline, TilesFlowThroughAllStages) {
  core::System sys(core::ArchConfig::best_config());
  const auto stages = two_stage();
  const auto r = core::run_pipeline(sys, stages, 12);
  EXPECT_EQ(r.tiles, 12u);
  ASSERT_EQ(r.stages.size(), 2u);
  EXPECT_EQ(r.stages[0].invocations, 12u);
  EXPECT_EQ(r.stages[1].invocations, 12u);
  EXPECT_GT(r.stages[0].mean_latency_cycles, 0.0);
  EXPECT_GT(r.overall.makespan, 0u);
  EXPECT_GT(r.overall.energy.total(), 0.0);
}

TEST(Pipeline, StagesOverlapAcrossTiles) {
  // Pipelined execution of N tiles through S stages must beat N * S
  // sequential single-tile latencies.
  const auto stages = two_stage();
  core::System pipelined(core::ArchConfig::best_config());
  const auto r = core::run_pipeline(pipelined, stages, 12);

  core::System serial(core::ArchConfig::best_config());
  const auto r1 = core::run_pipeline(serial, stages, 1);
  EXPECT_LT(r.overall.makespan, 12 * r1.overall.makespan);
}

TEST(Pipeline, FourStageMedicalPipeline) {
  std::vector<workloads::Workload> stages = {
      workloads::make_benchmark("Deblur", 0.05),
      workloads::make_benchmark("Denoise", 0.05),
      workloads::make_benchmark("Registration", 0.05),
      workloads::make_benchmark("Segmentation", 0.05)};
  core::System sys(core::ArchConfig::best_config());
  const auto r = core::run_pipeline(sys, stages, 8);
  EXPECT_EQ(r.tiles, 8u);
  for (const auto& s : r.stages) EXPECT_EQ(s.invocations, 8u);
  EXPECT_EQ(r.overall.chains_spilled, 0u);
}

TEST(Pipeline, RejectsEmptyInput) {
  core::System sys(core::ArchConfig::best_config());
  EXPECT_THROW(core::run_pipeline(sys, {}, 4), ConfigError);
  EXPECT_THROW(core::run_pipeline(sys, two_stage(), 0), ConfigError);
}

// ---- GAM policies ----

TEST(GamPolicy, NamesStable) {
  EXPECT_STREQ(abc::gam_policy_name(abc::GamPolicy::kFifo), "fifo");
  EXPECT_STREQ(abc::gam_policy_name(abc::GamPolicy::kShortestFirst),
               "shortest-first");
  EXPECT_STREQ(abc::gam_policy_name(abc::GamPolicy::kLargestFirst),
               "largest-first");
}

TEST(GamPolicy, AllPoliciesCompleteAllJobs) {
  for (auto policy : {abc::GamPolicy::kFifo, abc::GamPolicy::kShortestFirst,
                      abc::GamPolicy::kLargestFirst}) {
    core::ArchConfig cfg = core::ArchConfig::best_config();
    cfg.gam_policy = policy;
    cfg.max_jobs_in_flight = 2;  // force queueing so ordering matters
    core::System sys(cfg);
    auto w = workloads::make_benchmark("Denoise", 0.05);
    const auto r = sys.run(w);
    EXPECT_EQ(r.jobs, w.invocations) << abc::gam_policy_name(policy);
  }
}

TEST(GamPolicy, PolicyChangesAdmissionOrderDeterministically) {
  // With identical jobs the policies coincide; verify determinism per
  // policy (same makespan run to run).
  for (auto policy :
       {abc::GamPolicy::kShortestFirst, abc::GamPolicy::kLargestFirst}) {
    core::ArchConfig cfg = core::ArchConfig::best_config();
    cfg.gam_policy = policy;
    cfg.max_jobs_in_flight = 2;
    auto w = workloads::make_benchmark("Deblur", 0.05);
    core::System a(cfg);
    core::System b(cfg);
    EXPECT_EQ(a.run(w).makespan, b.run(w).makespan);
  }
}

// ---- report ----

TEST(SystemReport, AggregatesAndPrints) {
  core::System sys(core::ArchConfig::ring_design(6, 2, 32));
  auto w = workloads::make_benchmark("Segmentation", 0.1);
  const auto result = sys.run(w);
  dse::SystemReport report(sys, result);

  EXPECT_GT(report.mean_island_ni_utilization(), 0.0);
  EXPECT_GT(report.mean_dma_utilization(), 0.0);
  EXPECT_GT(report.mean_mc_utilization(), 0.0);
  EXPECT_GE(report.mean_tlb_hit_rate(), 0.0);

  std::ostringstream os;
  report.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("per-island utilization"), std::string::npos);
  EXPECT_NE(out.find("GAM:"), std::string::npos);
  EXPECT_NE(out.find("NoC peak link utilization"), std::string::npos);
}

// ---- CSV ----

TEST(TableCsv, EscapesCommasAndFormats) {
  dse::Table t({"name", "value"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name,value\nplain,1\n\"with,comma\",2\n");
}

}  // namespace
}  // namespace ara
