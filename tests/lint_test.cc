// ara_lint engine tests: the fixture corpus under tests/lint_fixtures/
// pins the exact (rule, line) set every rule produces — including the
// false-positive traps in clean.cc — and the in-memory cases pin the
// comment/string stripping, suppression, and path-scoping mechanics.
// The fixtures are linted in-process through lint_core.h (not by spawning
// the ara_lint binary; tests/lint_smoke.cmake covers the CLI contract).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint_core.h"

namespace ara::lint {
namespace {

std::string fixture_path(const std::string& rel) {
  return std::string(ARA_LINT_FIXTURE_DIR) + "/" + rel;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

using RuleLine = std::pair<std::string, int>;

/// Lint one fixture file and return its (rule, line) pairs in order.
std::vector<RuleLine> lint_fixture(const std::string& rel,
                                   std::size_t* suppressed = nullptr) {
  const std::string path = fixture_path(rel);
  std::vector<RuleLine> out;
  for (const auto& f : lint_source(path, slurp(path), suppressed)) {
    EXPECT_EQ(f.file, path);
    EXPECT_FALSE(f.message.empty()) << f.rule;
    out.emplace_back(f.rule, f.line);
  }
  return out;
}

TEST(LintFixtures, RandRule) {
  const std::vector<RuleLine> expected = {
      {"no-rand", 6}, {"no-rand", 7}, {"no-rand", 8}, {"no-rand", 9}};
  EXPECT_EQ(lint_fixture("src/sim/rand.cc"), expected);
}

TEST(LintFixtures, WallClockRuleWithInlineAllow) {
  std::size_t suppressed = 0;
  const std::vector<RuleLine> expected = {
      {"no-wall-clock", 7}, {"no-wall-clock", 8}, {"no-wall-clock", 9}};
  EXPECT_EQ(lint_fixture("src/sim/wall_clock.cc", &suppressed), expected);
  EXPECT_EQ(suppressed, 1u);  // the sanctioned telemetry line
}

TEST(LintFixtures, SanctionedClockSiteIsExemptWithoutAllowComments) {
  // src/obs/clock.cc (obs::MonotonicClock::host()) is the one path the
  // no-wall-clock rule exempts; the fixture carries no allow() comments,
  // so a clean result proves the allowlist (not a suppression) admits it.
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_fixture("src/obs/clock.cc", &suppressed).empty());
  EXPECT_EQ(suppressed, 0u);
}

TEST(LintFixtures, ObsWallClockOutsideSanctionedFileStillFires) {
  const std::vector<RuleLine> expected = {{"no-wall-clock", 6}};
  EXPECT_EQ(lint_fixture("src/obs/wall_clock_probe.cc"), expected);
}

TEST(LintFixtures, UnorderedIterRule) {
  const std::vector<RuleLine> expected = {{"no-unordered-iter", 9},
                                          {"no-unordered-iter", 12}};
  EXPECT_EQ(lint_fixture("src/obs/unordered_iter.cc"), expected);
}

TEST(LintFixtures, StatNamingRule) {
  const std::vector<RuleLine> expected = {
      {"stat-naming", 12}, {"stat-naming", 13}, {"stat-naming", 15}};
  EXPECT_EQ(lint_fixture("src/noc/stat_naming.cc"), expected);
}

TEST(LintFixtures, LayeringRule) {
  const std::vector<RuleLine> expected = {{"layering", 7}, {"layering", 8}};
  EXPECT_EQ(lint_fixture("src/sim/layering.cc"), expected);
}

TEST(LintFixtures, SeededViolationInDseTreeFailsTheGate) {
  const std::vector<RuleLine> expected = {{"no-rand", 6}};
  EXPECT_EQ(lint_fixture("src/dse/seeded_rand.cc"), expected);
}

TEST(LintFixtures, SanctionedSearchSamplerSiteIsExemptWithoutAllowComments) {
  // src/dse/search.cc (the check::PointSampler reuse) is the one path the
  // layering rule exempts for the dse -> check edge; the fixture carries
  // no allow() comments, so a clean result proves the allowlist (not a
  // suppression) admits it.
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_fixture("src/dse/search.cc", &suppressed).empty());
  EXPECT_EQ(suppressed, 0u);
}

TEST(LintFixtures, DseCheckIncludeOutsideSanctionedFileStillFires) {
  const std::vector<RuleLine> expected = {{"layering", 4}};
  EXPECT_EQ(lint_fixture("src/dse/sampler_probe.cc"), expected);
}

TEST(LintFixtures, RawNewDeleteRule) {
  const std::vector<RuleLine> expected = {{"no-raw-new-delete", 9},
                                          {"no-raw-new-delete", 10},
                                          {"no-raw-new-delete", 11},
                                          {"no-raw-new-delete", 12}};
  EXPECT_EQ(lint_fixture("raw_new.cc"), expected);
}

TEST(LintFixtures, NakedLockRule) {
  const std::vector<RuleLine> expected = {{"no-naked-lock", 6},
                                          {"no-naked-lock", 8},
                                          {"no-naked-lock", 11},
                                          {"no-naked-lock", 12}};
  EXPECT_EQ(lint_fixture("naked_lock.cc"), expected);
}

TEST(LintFixtures, DeprecatedApiRule) {
  const std::vector<RuleLine> expected = {{"no-deprecated-api", 6},
                                          {"no-deprecated-api", 7},
                                          {"no-deprecated-api", 8},
                                          {"no-deprecated-api", 9}};
  EXPECT_EQ(lint_fixture("deprecated_api.cc"), expected);
}

TEST(LintFixtures, SuppressedFileIsCleanAndCounted) {
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_fixture("src/mem/suppressed.cc", &suppressed).empty());
  // Line 6 silences two findings inline; line 9's delete is silenced by
  // the standalone allow() on line 8.
  EXPECT_EQ(suppressed, 3u);
}

TEST(LintFixtures, BadSuppressionRule) {
  const std::vector<RuleLine> expected = {{"bad-suppression", 4},
                                          {"bad-suppression", 5}};
  EXPECT_EQ(lint_fixture("bad_suppression.cc"), expected);
}

TEST(LintFixtures, CleanFileWithTrapsHasNoFindings) {
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_fixture("src/sim/clean.cc", &suppressed).empty());
  EXPECT_EQ(suppressed, 0u);
}

TEST(LintFixtures, CommentAndLiteralTrapsNeverFire) {
  // Regression corpus for the shared lexer: std::rand/new/delete/lock
  // mentions inside a block comment, a string, a prefixed raw string and
  // a backslash-spliced // comment. The old per-line scanner lexed the
  // spliced continuation line as code and fired no-rand on it.
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_fixture("src/sim/comment_trap.cc", &suppressed).empty());
  EXPECT_EQ(suppressed, 0u);
}

// ----------------------------------------------------- engine mechanics

TEST(LintEngine, CommentsAndStringsNeverMatch) {
  const std::string src =
      "/* rand() srand new delete\n"
      "   spans lines */\n"
      "const char* s = \"rand() delete p\";\n"
      "const char* r = R\"xx(new int rand())xx\";\n"
      "int ok = 0;  // mu.lock() run_point()\n";
  EXPECT_TRUE(lint_source("src/sim/x.cc", src).empty());
}

TEST(LintEngine, SplicedLineCommentSwallowsItsContinuation) {
  const std::string src =
      "// note \\\n"
      "int x = rand();\n"
      "int y = rand();\n";
  const auto findings = lint_source("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 3);  // line 2 is still inside the comment
}

TEST(LintEngine, PrefixedRawStringsStayStripped) {
  const std::string src =
      "const char* r = u8R\"(rand() delete new)\";\n"
      "const char* s = LR\"q(mu.lock() run_sweep)q\";\n";
  EXPECT_TRUE(lint_source("src/sim/x.cc", src).empty());
}

TEST(LintEngine, RawStringSpanningLinesStaysStripped) {
  const std::string src =
      "const char* r = R\"(first\n"
      "rand() delete new mu.lock()\n"
      ")\";\n"
      "int* p = new int;\n";
  const auto findings = lint_source("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "no-raw-new-delete");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(LintEngine, SrcScopedRulesIgnoreToolsAndBench) {
  const std::string src = "int x = rand();\n";
  EXPECT_EQ(lint_source("src/sim/x.cc", src).size(), 1u);
  EXPECT_TRUE(lint_source("tools/x.cc", src).empty());
  EXPECT_TRUE(lint_source("bench/x.cc", src).empty());
}

TEST(LintEngine, ClockSeamAllowlistAdmitsOnlyTheExactPath) {
  const std::string src = "auto t = std::chrono::steady_clock::now();\n";
  EXPECT_TRUE(lint_source("src/obs/clock.cc", src).empty());
  EXPECT_TRUE(lint_source("/abs/repo/src/obs/clock.cc", src).empty());
  // Same layer, different file; same name, different layer; a clock.cc
  // header-sibling — none inherit the exemption.
  EXPECT_EQ(lint_source("src/obs/window.cc", src).size(), 1u);
  EXPECT_EQ(lint_source("src/sim/clock.cc", src).size(), 1u);
  EXPECT_EQ(lint_source("src/obs/clock.h", src).size(), 1u);
  // The allowlist only bypasses no-wall-clock, not the other rules.
  EXPECT_EQ(lint_source("src/obs/clock.cc", "int x = rand();\n").size(), 1u);
}

TEST(LintEngine, PrecedingAllowOnlyCountsWhenStandalone) {
  // The allow() shares a line with code, so it does not extend downward.
  const std::string src =
      "int a = 1;  // ara-lint: allow(no-rand)\n"
      "int b = rand();\n";
  const auto findings = lint_source("src/sim/x.cc", src);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 2);
}

TEST(LintEngine, LayeringAllowsDeclaredEdgesOnly) {
  EXPECT_TRUE(
      lint_source("src/mem/x.cc", "#include \"noc/link.h\"\n").empty());
  const auto up =
      lint_source("src/noc/x.cc", "#include \"mem/dram_model.h\"\n");
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0].rule, "layering");
}

TEST(LintEngine, SearchSamplerAllowlistAdmitsOnlyTheExactPath) {
  const std::string src = "#include \"check/fuzz.h\"\n";
  EXPECT_TRUE(lint_source("src/dse/search.cc", src).empty());
  EXPECT_TRUE(lint_source("/abs/repo/src/dse/search.cc", src).empty());
  // Same layer, different file; same name, different layer; the header
  // sibling — none inherit the exemption.
  EXPECT_EQ(lint_source("src/dse/other.cc", src).size(), 1u);
  EXPECT_EQ(lint_source("src/serve/search.cc", src).size(), 1u);
  EXPECT_EQ(lint_source("src/dse/search.h", src).size(), 1u);
  // The exemption only covers the dse -> check edge: an undeclared edge
  // to another layer from the sanctioned file still fires.
  EXPECT_EQ(
      lint_source("src/dse/search.cc", "#include \"serve/server.h\"\n")
          .size(),
      1u);
}

TEST(LintEngine, RuleCatalogIsSortedAndComplete) {
  const auto& catalog = rules();
  const std::set<std::string> ids = {
      "bad-suppression", "layering",          "no-deprecated-api",
      "no-naked-lock",   "no-rand",           "no-raw-new-delete",
      "no-unordered-iter", "no-wall-clock",   "stat-naming"};
  ASSERT_EQ(catalog.size(), ids.size());
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    EXPECT_EQ(ids.count(catalog[i].id), 1u) << catalog[i].id;
    EXPECT_FALSE(catalog[i].summary.empty());
    if (i > 0) {
      EXPECT_LT(catalog[i - 1].id, catalog[i].id);
    }
  }
}

TEST(LintEngine, WholeCorpusThroughLintPaths) {
  const LintResult result = lint_paths({std::string(ARA_LINT_FIXTURE_DIR)});
  EXPECT_EQ(result.files_scanned, 17u);
  EXPECT_EQ(result.suppressed, 4u);
  // Sum of every fixture's expected findings above (clock.cc,
  // dse/search.cc and comment_trap.cc add zero; wall_clock_probe.cc and
  // sampler_probe.cc add one each).
  EXPECT_EQ(result.findings.size(), 4u + 3u + 2u + 3u + 2u + 1u + 4u + 4u +
                                        4u + 2u + 1u + 1u);
  // Deterministic: sorted by path, then line.
  for (std::size_t i = 1; i < result.findings.size(); ++i) {
    const auto& a = result.findings[i - 1];
    const auto& b = result.findings[i];
    EXPECT_LE(a.file, b.file);
    if (a.file == b.file) {
      EXPECT_LE(a.line, b.line);
    }
  }
}

}  // namespace
}  // namespace ara::lint
