// Property-based and parameterized tests: invariants that must hold across
// the whole design space and under randomized inputs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <tuple>

#include "check/check.h"
#include "check/fuzz.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "island/spm_dma_net.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/shared_link.h"
#include "workloads/registry.h"

namespace ara {
namespace {

core::RunResult sim_point(const core::ArchConfig& cfg,
                          const workloads::Workload& w) {
  return dse::run(dse::SweepRequest{}.add(cfg, w)).front().result;
}

// ---------- SharedLink properties under random traffic ----------

class SharedLinkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SharedLinkProperty, ConservationAndNonOverlap) {
  sim::Rng rng(GetParam());
  sim::SharedLink link("p", 8.0, 2);
  Bytes total = 0;
  Tick busy_expected = 0;
  for (int i = 0; i < 2000; ++i) {
    const Tick ready = rng.next_below(100000);
    const Bytes bytes = 1 + rng.next_below(1024);
    const Tick done = link.submit(ready, bytes);
    const Tick occupancy = ceil_div<Tick>(bytes, 8);
    // Completion is never before ready + occupancy + latency.
    EXPECT_GE(done, ready + occupancy + 2);
    total += bytes;
    busy_expected += occupancy;
  }
  EXPECT_EQ(link.total_bytes(), total);
  EXPECT_EQ(link.busy_cycles(), busy_expected);  // no double-booked cycles
  EXPECT_EQ(link.transfers(), 2000u);
}

TEST_P(SharedLinkProperty, GapFillingNeverBlocksEarlyTraffic) {
  sim::Rng rng(GetParam());
  sim::SharedLink link("p", 16.0, 0);
  // Reserve far in the future, then verify a small early payload is not
  // pushed behind it (the no-backfill serialization bug).
  link.submit(1'000'000, 64);
  const Tick done = link.submit(10, 64);
  EXPECT_LE(done, 14u + 4u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharedLinkProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- Event queue ordering under random schedules ----------

class EventOrderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventOrderProperty, MonotonicExecution) {
  sim::Rng rng(GetParam());
  sim::Simulator s;
  Tick last = 0;
  bool ok = true;
  for (int i = 0; i < 500; ++i) {
    const Tick at = rng.next_below(10000);
    s.schedule_at(at, [&, at] {
      if (at < last) ok = false;
      last = at;
    });
  }
  s.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(s.events_processed(), 500u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventOrderProperty,
                         ::testing::Values(17, 23, 29, 31));

// ---------- Ring network properties across sizes ----------

class RingProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(RingProperty, TransfersCompleteAndAccount) {
  const auto [rings, abbs] = GetParam();
  island::SpmDmaNetConfig cfg;
  cfg.topology = island::SpmDmaTopology::kRing;
  cfg.num_rings = rings;
  cfg.link_bytes = 32;
  auto net = island::make_spm_dma_net("p", cfg, abbs);
  Bytes moved = 0;
  Tick t = 0;
  sim::Rng rng(rings * 100 + abbs);
  for (int i = 0; i < 200; ++i) {
    const AbbId a = static_cast<AbbId>(rng.next_below(abbs));
    const AbbId b = static_cast<AbbId>(rng.next_below(abbs));
    const Bytes bytes = 64 * (1 + rng.next_below(8));
    Tick done;
    switch (rng.next_below(3)) {
      case 0:
        done = net->to_spm(t, a, bytes);
        break;
      case 1:
        done = net->from_spm(t, a, bytes);
        break;
      default:
        done = net->chain(t, a, b, bytes);
        break;
    }
    EXPECT_GE(done, t);
    moved += (a == b && rng.next_below(3) == 2) ? 0 : 0;  // bookkeeping only
  }
  EXPECT_GT(net->total_bytes(), 0u);
  EXPECT_GT(net->area_mm2(), 0.0);
  EXPECT_GE(net->dynamic_energy_j(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RingProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(5, 10, 20, 40)));

// ---------- Whole-system properties across the design space ----------

struct DesignPoint {
  std::uint32_t islands;
  island::SpmDmaTopology topo;
  std::uint32_t rings;
  Bytes width;
  bool sharing;
  std::uint32_t ports;
};

class SystemProperty : public ::testing::TestWithParam<DesignPoint> {};

TEST_P(SystemProperty, WorkloadAlwaysCompletesWithInvariants) {
  const auto& dp = GetParam();
  core::ArchConfig cfg = core::ArchConfig::paper_baseline(dp.islands);
  cfg.island.net.topology = dp.topo;
  cfg.island.net.num_rings = dp.rings;
  cfg.island.net.link_bytes = dp.width;
  cfg.island.spm_sharing = dp.sharing;
  cfg.island.spm_port_multiplier = dp.ports;
  cfg.validate();

  auto w = workloads::make_benchmark("Registration", 0.05);
  core::System sys(cfg);
  const auto r = sys.run(w);

  EXPECT_EQ(r.jobs, w.invocations);
  EXPECT_GT(r.makespan, 0u);
  EXPECT_GT(r.energy.total(), 0.0);
  EXPECT_GT(r.area.islands_mm2, 0.0);
  EXPECT_LE(r.peak_abb_utilization, 1.0);
  // Every chain edge was served exactly once, one way or the other.
  EXPECT_EQ(r.chains_direct + r.chains_spilled,
            w.dfg.chain_edges() * w.invocations);
  EXPECT_LE(r.noc_peak_link_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    DesignSpace, SystemProperty,
    ::testing::Values(
        DesignPoint{3, island::SpmDmaTopology::kProxyXbar, 1, 32, false, 1},
        DesignPoint{6, island::SpmDmaTopology::kRing, 1, 16, false, 1},
        DesignPoint{6, island::SpmDmaTopology::kRing, 2, 32, false, 2},
        DesignPoint{12, island::SpmDmaTopology::kChainingXbar, 1, 32, false,
                    1},
        DesignPoint{12, island::SpmDmaTopology::kRing, 3, 32, true, 1},
        DesignPoint{24, island::SpmDmaTopology::kRing, 2, 32, false, 1},
        DesignPoint{24, island::SpmDmaTopology::kProxyXbar, 1, 16, true, 2}));

// ---------- Determinism across the benchmark suite ----------

class DeterminismProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismProperty, SameConfigSameResult) {
  auto w = workloads::make_benchmark(GetParam(), 0.05);
  const auto a = sim_point(core::ArchConfig::ring_design(6, 2, 32), w);
  const auto b = sim_point(core::ArchConfig::ring_design(6, 2, 32), w);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, DeterminismProperty,
                         ::testing::ValuesIn(workloads::benchmark_names()));

// ---------- Monotonicity: fewer resources never helps ----------

TEST(MonotonicityProperty, WiderRingNeverHurtsMuch) {
  // Allowing small scheduling noise, a 2-ring 32B network should never be
  // materially slower than a 1-ring 16B one.
  for (const char* name : {"Denoise", "Segmentation"}) {
    auto w = workloads::make_benchmark(name, 0.05);
    const auto narrow =
        sim_point(core::ArchConfig::ring_design(6, 1, 16), w);
    const auto wide =
        sim_point(core::ArchConfig::ring_design(6, 2, 32), w);
    EXPECT_GT(wide.performance(), 0.95 * narrow.performance()) << name;
  }
}

// ---------- Seeded fuzz sweep: random design points, invariants armed ----
//
// Each seed deterministically samples a valid (ArchConfig, Workload) point
// from check::generate_point — the same corpus tools/ara_fuzz minimizes
// from — runs it with the invariant checker enabled, and asserts the
// metamorphic monotonicity relations on top. The seed count is 8 in a
// plain ara_tests run; the `fuzz`-labeled ctest entry re-runs this suite
// with ARA_FUZZ_SEEDS=64 (read at process start, before instantiation).

int fuzz_seed_count() {
  if (const char* s = std::getenv("ARA_FUZZ_SEEDS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return 8;
}

class FuzzProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzProperty, RandomPointHoldsInvariantsAndMonotonicity) {
  check::ScopedEnable invariants_on;
  const check::FuzzPoint p = check::generate_point(GetParam());

  auto run_full = [](const core::ArchConfig& cfg,
                     const workloads::Workload& w) {
    return std::move(dse::run(dse::SweepRequest{}.add(cfg, w)).front());
  };

  const auto base = run_full(p.config, p.workload);
  EXPECT_EQ(base.result.jobs, p.workload.invocations);
  EXPECT_GT(base.result.makespan, 0u);
  if (p.config.mode == abc::ExecutionMode::kComposable) {
    EXPECT_EQ(base.result.chains_direct + base.result.chains_spilled,
              p.workload.dfg.chain_edges() * p.workload.invocations);
  }

  // Over-provisioning SPM ports adds capacity only: never materially slower.
  core::ArchConfig ported = p.config;
  ported.island.spm_port_multiplier = 2;
  const auto more_ports = run_full(ported, p.workload);
  EXPECT_GT(more_ports.result.performance(), 0.95 * base.result.performance())
      << "seed " << GetParam() << ": doubling SPM ports lost throughput";

  // More invocations of the same DFG is strictly more work: completing
  // them must dispatch strictly more events. (Makespan itself is NOT
  // monotone in job count — extra jobs can reshape composition decisions
  // into a better packing, the classic multiprocessor scheduling anomaly.)
  workloads::Workload longer = p.workload;
  longer.invocations += 4;
  const auto more_work = run_full(p.config, longer);
  EXPECT_EQ(more_work.result.jobs, longer.invocations);
  EXPECT_GT(more_work.events, base.events)
      << "seed " << GetParam() << ": extra invocations took fewer events";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzProperty,
    ::testing::Range<std::uint64_t>(
        1, static_cast<std::uint64_t>(fuzz_seed_count()) + 1));

}  // namespace
}  // namespace ara
