// dse::search contract tests: the deterministic block of a SearchResult
// is a pure function of the SearchSpec — byte-identical across worker
// counts, reruns, and cold/warm caches — while the telemetry fields
// (simulated / cache_hits / coalesced) track how much real simulation the
// shared ResultCache saved. Also pins the degenerate-spec ConfigError
// surface and the Pareto-frontier invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/config_error.h"
#include "dse/result_cache.h"
#include "dse/search.h"

namespace ara::dse {
namespace {

/// A 4-point space (islands x rings) that exhaustive searches cover
/// instantly; keep scale tiny so full-fidelity evaluations stay cheap.
SearchSpace tiny_space() {
  SearchSpace sp;
  sp.islands = {3, 6};
  sp.rings = {1, 2};
  sp.widths = {32};
  sp.ports = {1};
  sp.sharing = {false};
  return sp;
}

SearchSpec tiny_spec() {
  SearchSpec spec;
  spec.workload = "Denoise";
  spec.scale = 0.03;
  spec.space = tiny_space();
  spec.budget = 4;
  return spec;
}

/// A spec whose budget is well under the (default) 96-point space, so the
/// sample/halve/refine pipeline actually runs.
SearchSpec sampled_spec() {
  SearchSpec spec;
  spec.workload = "Denoise";
  spec.scale = 0.02;
  spec.budget = 12;
  spec.seed = 7;
  return spec;
}

TEST(SearchSpace, SizeIsTheDedupedCrossProduct) {
  SearchSpace sp = tiny_space();
  EXPECT_EQ(sp.size(), 4u);
  // Duplicates never multiply the space (first occurrence wins).
  sp.islands = {3, 6, 3, 6, 6};
  EXPECT_EQ(sp.size(), 4u);
  const SearchSpace norm = sp.normalized();
  EXPECT_EQ(norm.islands, (std::vector<std::uint32_t>{3, 6}));
  EXPECT_EQ(SearchSpace{}.size(), 96u);
}

TEST(SearchObjective, NamesRoundTrip) {
  for (const Objective o : {Objective::kPerf, Objective::kPerfPerEnergy,
                            Objective::kPerfPerArea}) {
    Objective back = Objective::kPerf;
    EXPECT_TRUE(objective_from_name(objective_name(o), &back));
    EXPECT_EQ(back, o);
  }
  Objective out = Objective::kPerf;
  EXPECT_FALSE(objective_from_name("latency", &out));
}

TEST(SearchValidate, DegenerateSpecsThrowTypedErrors) {
  {
    SearchSpec spec = tiny_spec();
    spec.workload.clear();
    EXPECT_THROW(search(SearchRequest{spec}), ConfigError);
  }
  {
    SearchSpec spec = tiny_spec();
    spec.budget = 0;
    EXPECT_THROW(search(SearchRequest{spec}), ConfigError);
  }
  {
    SearchSpec spec = tiny_spec();
    spec.scale = 0;
    EXPECT_THROW(search(SearchRequest{spec}), ConfigError);
  }
  {
    SearchSpec spec = tiny_spec();
    spec.space.islands.clear();  // empty bound list
    EXPECT_THROW(search(SearchRequest{spec}), ConfigError);
  }
  {
    SearchSpec spec = tiny_spec();
    spec.space.nets = {"bogus"};  // value the config layer rejects
    EXPECT_THROW(search(SearchRequest{spec}), ConfigError);
  }
  {
    SearchSpec spec = tiny_spec();
    spec.workload = "NoSuchBench";  // surfaces from the workload registry
    EXPECT_THROW(search(SearchRequest{spec}), ConfigError);
  }
}

TEST(SearchExhaustive, BudgetCoveringTheSpaceEvaluatesAllOfIt) {
  SearchRequest request;
  request.spec = tiny_spec();
  request.spec.budget = 64;  // >> 4-point space
  const SearchResult r = search(request);
  EXPECT_EQ(r.space_size, 4u);
  EXPECT_EQ(r.evaluated, 4u);
  ASSERT_EQ(r.stages.size(), 1u);
  EXPECT_EQ(r.stages[0].name, "exhaustive");
  EXPECT_EQ(r.stages[0].evaluated, 4u);
  EXPECT_FALSE(r.frontier.empty());
}

TEST(SearchDeterminism, JobsCountNeverChangesTheResultBytes) {
  std::string baseline;
  for (const unsigned jobs : {1u, 2u, 8u}) {
    ResultCache cache;  // fresh per run: no warmth crosses jobs counts
    SearchRequest request;
    request.spec = sampled_spec();
    request.jobs = jobs;
    request.cache = &cache;
    const std::string json = search_result_json(search(request));
    if (baseline.empty()) {
      baseline = json;
    } else {
      EXPECT_EQ(json, baseline) << "jobs=" << jobs;
    }
  }
  EXPECT_FALSE(baseline.empty());
}

TEST(SearchDeterminism, WarmRerunIsByteIdenticalAndFullyCached) {
  ResultCache cache;
  SearchRequest request;
  request.spec = sampled_spec();
  request.jobs = 2;
  request.cache = &cache;

  const SearchResult cold = search(request);
  EXPECT_GT(cold.simulated, 0u);
  EXPECT_LE(cold.evaluated, request.spec.budget);

  const SearchResult warm = search(request);
  EXPECT_EQ(search_result_json(warm), search_result_json(cold));
  EXPECT_EQ(warm.simulated, 0u);
  EXPECT_EQ(warm.cache_hits, warm.evaluated);
}

TEST(SearchCache, OverlappingSearchOnlySimulatesTheNewPoints) {
  ResultCache cache;
  SearchRequest first;
  first.spec = tiny_spec();  // 4-point exhaustive search
  first.cache = &cache;
  const SearchResult r1 = search(first);
  EXPECT_EQ(r1.simulated, 4u);

  SearchRequest second = first;
  second.spec.space.rings = {1, 2, 3};  // superset: 6 points, 4 shared
  second.spec.budget = 6;
  const SearchResult r2 = search(second);
  EXPECT_EQ(r2.evaluated, 6u);
  EXPECT_EQ(r2.cache_hits, 4u);
  EXPECT_EQ(r2.simulated, 2u);
  EXPECT_LT(r2.simulated, r1.simulated);
}

TEST(SearchBudget, SingleEvaluationBudgetStillProducesAWinner) {
  SearchRequest request;
  request.spec = sampled_spec();
  request.spec.budget = 1;
  const SearchResult r = search(request);
  EXPECT_EQ(r.evaluated, 1u);
  ASSERT_EQ(r.frontier.size(), 1u);
  EXPECT_GT(r.best.performance, 0.0);
}

TEST(SearchFrontier, IsNonDominatedAndObjectiveSorted) {
  SearchRequest request;
  request.spec = sampled_spec();
  request.spec.budget = 16;
  const SearchResult r = search(request);
  EXPECT_LE(r.evaluated, request.spec.budget);
  ASSERT_FALSE(r.frontier.empty());
  // best is the frontier head under the requested objective.
  EXPECT_EQ(r.best.spec.label(), r.frontier.front().spec.label());
  for (std::size_t i = 1; i < r.frontier.size(); ++i) {
    EXPECT_GE(r.frontier[i - 1].performance, r.frontier[i].performance);
  }
  // No frontier member dominates another on all three axes.
  for (const auto& a : r.frontier) {
    for (const auto& b : r.frontier) {
      if (a.spec.label() == b.spec.label()) continue;
      const bool dominates = b.performance >= a.performance &&
                             b.perf_per_energy >= a.perf_per_energy &&
                             b.perf_per_area >= a.perf_per_area &&
                             (b.performance > a.performance ||
                              b.perf_per_energy > a.perf_per_energy ||
                              b.perf_per_area > a.perf_per_area);
      EXPECT_FALSE(dominates)
          << b.spec.label() << " dominates " << a.spec.label();
    }
  }
  // Frontier entries are distinct design points.
  std::set<std::string> labels;
  for (const auto& c : r.frontier) labels.insert(c.spec.label());
  EXPECT_EQ(labels.size(), r.frontier.size());
}

TEST(SearchStages, HalvingLaddersScaleUpToFullFidelity) {
  SearchRequest request;
  request.spec = sampled_spec();
  const SearchResult r = search(request);
  ASSERT_GE(r.stages.size(), 2u);
  EXPECT_EQ(r.stages.front().name, "sample");
  // Multipliers never decrease along the ladder and end at full scale.
  double prev = 0;
  std::uint64_t total = 0;
  for (const auto& stage : r.stages) {
    EXPECT_GE(stage.scale_mult, prev);
    prev = stage.scale_mult;
    total += stage.evaluated;
  }
  EXPECT_EQ(prev, 1.0);
  EXPECT_EQ(total, r.evaluated);
}

}  // namespace
}  // namespace ara::dse
