// Fixture: no-raw-new-delete fires everywhere (not just under src/);
// deleted member functions and 'operator new' must not trip it.
struct Block {
  static void* operator new(unsigned long size);
  Block(const Block&) = delete;
};

int* fixture_raw_new() {
  int* p = new int(7);
  delete p;
  int* q = new int[4];
  delete[] q;
  return nullptr;
}
