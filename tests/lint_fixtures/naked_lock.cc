// Fixture: no-naked-lock fires on direct mutex methods anywhere;
// RAII guards are clean.
#include <mutex>

void fixture_naked_lock(std::mutex& mu, bool flag) {
  mu.lock();
  if (flag) {
    mu.unlock();
    return;
  }
  if (mu.try_lock()) {
    mu.unlock();
  }
  const std::lock_guard<std::mutex> guard(mu);
}
