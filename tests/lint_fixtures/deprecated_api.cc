// Fixture: identifiers of removed APIs fail no-deprecated-api; prose
// mentions of run_point in comments stay legal.
struct SweepOutput;

SweepOutput* fixture_deprecated() {
  extern SweepOutput* run_point();
  extern SweepOutput* run_sweep();
  if (run_sweep() != nullptr) {
    return run_point();
  }
  return nullptr;
}
