// Fixture: an allow() naming an unknown rule is itself a finding and
// silences nothing.
int fixture_bad_suppression(int x) {
  x += 1;  // ara-lint: allow(no-such-rule)
  x += 2;  // ara-lint: allow(no-rand, also-bogus)
  return x;
}
