// Fixture: the search-sampler exemption is the exact path
// src/dse/search.cc — any other dse file including "check/..." is still a
// layering violation (the dse -> check edge is not in layer_deps).
#include "check/fuzz.h"

unsigned long long fixture_sampler_probe() {
  return 0;
}
