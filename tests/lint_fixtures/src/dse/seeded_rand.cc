// Fixture: the acceptance check — a violation seeded into a src/dse
// tree must fail the gate.
#include <cstdlib>

unsigned fixture_seeded_choice(unsigned n) {
  return static_cast<unsigned>(rand()) % (n + 1u);
}
