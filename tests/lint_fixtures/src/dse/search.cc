// Fixture: src/dse/search.cc is the sanctioned dse -> check include site
// (the search optimizer reuses check::PointSampler) — the layering path
// allowlist exempts it with NO allow comments, so this file must lint
// clean as-is even though "check/" is outside dse's layer_deps edges.
#include "check/fuzz.h"
#include "dse/sweep.h"

unsigned long long fixture_search_draw() {
  return 0;
}
