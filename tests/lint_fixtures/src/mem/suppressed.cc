// Fixture: every violation here carries an allow() — the file must lint
// clean, with the engine counting the suppressions.
#include <cstdlib>

int fixture_suppressed() {
  int* p = new int(rand());  // ara-lint: allow(no-raw-new-delete, no-rand)
  const int v = *p;
  // ara-lint: allow(no-raw-new-delete)
  delete p;
  return v;
}
