// Fixture: false-positive traps — everything here must lint clean.
// Prose trips nothing: rand(), new Foo, delete p, steady_clock::now(),
// run_point(), mu.lock().
#include <map>
#include <string>

namespace {

struct Operand {
  int value = 0;
};

int operand(int x) { return x; }

struct Registry {
  long& counter(const std::string& name);
};

int fixture_clean(Registry& reg) {
  const std::string note = "rand() new Foo delete p mu.lock()";
  const char* raw = R"(run_point steady_clock delete new)";
  const int big = 1'000'000;
  const char tick = 'n';
  std::map<int, Operand> ordered;
  ordered[big % 7].value = operand(static_cast<int>(note.size()));
  int total = static_cast<int>(tick) + (raw != nullptr ? 1 : 0);
  for (const auto& kv : ordered) {
    total += kv.second.value;
  }
  reg.counter("cmp.queue.depth");
  struct NoCopy {
    NoCopy(const NoCopy&) = delete;
  };
  return total;
}

}  // namespace
