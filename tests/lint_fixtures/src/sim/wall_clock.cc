// Fixture: no-wall-clock fires on host-clock reads; an allow() comment
// marks the one sanctioned telemetry read.
#include <chrono>
#include <ctime>

double fixture_wall_clock() {
  const auto a = std::chrono::steady_clock::now();
  const auto b = std::chrono::system_clock::now();
  const std::time_t t = std::time(nullptr);
  // Self-profiling telemetry (host seconds, never simulated time):
  const auto ok = std::chrono::steady_clock::now();  // ara-lint: allow(no-wall-clock)
  (void)a;
  (void)b;
  (void)ok;
  return static_cast<double>(t);
}
