// Regression corpus for the shared lexer (tools/analyze_core.h): every
// banned-identifier mention below lives in a comment or literal, so no
// rule may fire. The spliced // comment is the case the old per-line
// scanner got wrong: it reset comment state at the newline and lexed the
// continuation line as code.
namespace ara::sim {

/* block comment mentioning std::rand() srand delete and new int,
   still inside the same comment on this line */
const char* kMsg = "calls std::rand() and mu.lock() in prose";
const char* kRaw = u8R"seq(rand() delete p run_point(cfg))seq";
// spliced line comment, continuation belongs to the comment: \
std::rand();
int traps_done = 0;

}  // namespace ara::sim
