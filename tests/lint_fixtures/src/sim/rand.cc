// Fixture: no-rand fires on every banned randomness identifier.
#include <cstdlib>
#include <random>

int fixture_rand() {
  const int x = rand();
  std::srand(42u);
  std::random_device rd;
  std::mt19937 gen(rd());
  return x + static_cast<int>(gen());
}
