// Fixture: src/sim sits at the bottom of the stack — it may include
// common/ and itself, never the layers built on top of it.
#include <vector>

#include "common/mutex.h"
#include "sim/event_queue.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"

int fixture_layering() { return 0; }
