// Fixture: src/obs/clock.cc is the sanctioned obs::MonotonicClock host
// implementation — the no-wall-clock path allowlist exempts it with NO
// allow comments, so this file must lint clean as-is.
#include <chrono>

unsigned long long fixture_host_now_ns() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}
