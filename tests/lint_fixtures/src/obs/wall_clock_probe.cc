// Fixture: the clock-seam exemption is the exact path src/obs/clock.cc —
// any other file in the obs layer reading the host clock still fires.
#include <chrono>

unsigned long long fixture_probe_now_ns() {
  const auto t = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<unsigned long long>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t).count());
}
