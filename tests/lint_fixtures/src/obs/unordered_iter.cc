// Fixture: no-unordered-iter fires on range-for / .begin() over
// unordered containers; std::map iteration is the sanctioned fix.
#include <map>
#include <string>
#include <unordered_map>

double fixture_export(const std::unordered_map<std::string, double>& stats) {
  double total = 0.0;
  for (const auto& kv : stats) {
    total += kv.second;
  }
  const auto it = stats.begin();
  (void)it;
  std::map<std::string, double> ordered;
  for (const auto& kv : ordered) {
    total += kv.second;
  }
  return total;
}
