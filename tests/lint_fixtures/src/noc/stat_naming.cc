// Fixture: StatRegistry registrations must be <subsystem>.<id>.<stat>.
#include <string>

struct Registry {
  long& counter(const std::string& name);
  double& accumulator(const std::string& name);
  void record_counter(const std::string& name);
};

void fixture_stats(Registry& reg, int id) {
  reg.counter("noc.router.flits");
  reg.counter("BadName");
  reg.accumulator("noc.");
  reg.counter("noc.link." + std::to_string(id));
  reg.counter("Noc.Link." + std::to_string(id));
  reg.record_counter("gam queue");
}
