// Tests for the bottleneck analyzer — including the paper's Sec. 5.5
// claims as executable assertions.
#include <gtest/gtest.h>

#include <sstream>

#include "core/arch_config.h"
#include "core/system.h"
#include "dse/bottleneck.h"
#include "workloads/registry.h"

namespace ara {
namespace {

TEST(Bottleneck, ProxyHubBindsChainingHeavyAt3Islands) {
  // Sec. 5.5: chaining through the proxy crossbar serializes on the DMA
  // hub for large islands.
  core::System sys(core::ArchConfig::paper_baseline(3));
  auto w = workloads::make_benchmark("EKF-SLAM", 0.25);
  const auto r = sys.run(w);
  const auto report = dse::analyze_bottleneck(sys, r);
  EXPECT_EQ(report.binding(), dse::Resource::kIslandNetHub);
  EXPECT_GT(report.binding_utilization(), 0.7);
}

TEST(Bottleneck, RingRelievesHubThenNocBinds) {
  // With rings, the island network stops binding and the chip-level
  // interconnect (NoC links / island interfaces) takes over — the paper's
  // "the link connecting the ABB island to the rest of the system has
  // been fully utilized".
  core::System sys(core::ArchConfig::ring_design(3, 2, 32));
  auto w = workloads::make_benchmark("EKF-SLAM", 0.25);
  const auto r = sys.run(w);
  const auto report = dse::analyze_bottleneck(sys, r);
  EXPECT_TRUE(report.binding() == dse::Resource::kNocLinks ||
              report.binding() == dse::Resource::kNocInterface)
      << resource_name(report.binding());
  EXPECT_GT(report.binding_utilization(), 0.7);
}

TEST(Bottleneck, EntriesSortedAndComplete) {
  core::System sys(core::ArchConfig::ring_design(6, 2, 32));
  auto w = workloads::make_benchmark("Denoise", 0.1);
  const auto r = sys.run(w);
  const auto report = dse::analyze_bottleneck(sys, r);
  ASSERT_GE(report.entries.size(), 6u);
  for (std::size_t i = 1; i < report.entries.size(); ++i) {
    EXPECT_GE(report.entries[i - 1].peak_utilization,
              report.entries[i].peak_utilization);
  }
  // Ring configs report ring links, not a hub.
  bool has_ring = false, has_hub = false;
  for (const auto& e : report.entries) {
    has_ring |= e.resource == dse::Resource::kIslandNetRing;
    has_hub |= e.resource == dse::Resource::kIslandNetHub;
  }
  EXPECT_TRUE(has_ring);
  EXPECT_FALSE(has_hub);
}

TEST(Bottleneck, PrintsReadableReport) {
  core::System sys(core::ArchConfig::ring_design(6, 2, 32));
  auto w = workloads::make_benchmark("Deblur", 0.05);
  const auto r = sys.run(w);
  const auto report = dse::analyze_bottleneck(sys, r);
  std::ostringstream os;
  report.print(os);
  EXPECT_NE(os.str().find("binding resource:"), std::string::npos);
}

TEST(Bottleneck, ResourceNamesStable) {
  EXPECT_STREQ(dse::resource_name(dse::Resource::kNocInterface),
               "island NoC interface");
  EXPECT_STREQ(dse::resource_name(dse::Resource::kMemoryController),
               "memory controller");
}

}  // namespace
}  // namespace ara
