// Unit tests for the ara_serve subsystem: wire protocol (framing, request
// parsing, response building), the fair admission queue, in-flight point
// coalescing (PointCoalescer + the coalescing-aware dse::run paths), and
// the Server core — with the bit-identity contract pinned: a served
// point's "entry" object must be byte-for-byte the ResultCache JSON a
// local dse::run of the same design point produces. The socket front end
// is covered end-to-end by the serve_smoke ctest entry.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/config_error.h"
#include "core/config_digest.h"
#include "dse/coalesce.h"
#include "dse/result_cache.h"
#include "dse/search.h"
#include "dse/sweep.h"
#include "obs/clock.h"
#include "obs/json_check.h"
#include "obs/json_io.h"
#include "obs/span.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workloads/registry.h"

namespace ara::serve {
namespace {

using protocol::PointSpec;
using protocol::ReadStatus;
using protocol::Request;

// ------------------------------------------------------------- FairQueue

TEST(FairQueue, RoundRobinAcrossClients) {
  FairQueue<int> q(16);
  // A submits 3, then B submits 2, then C submits 1.
  EXPECT_TRUE(q.push("a", 1));
  EXPECT_TRUE(q.push("a", 2));
  EXPECT_TRUE(q.push("a", 3));
  EXPECT_TRUE(q.push("b", 4));
  EXPECT_TRUE(q.push("b", 5));
  EXPECT_TRUE(q.push("c", 6));
  EXPECT_EQ(q.size(), 6u);

  std::vector<int> order;
  int item = 0;
  while (q.pop(&item)) order.push_back(item);
  // One item per client per rotation: a,b,c then a,b then a.
  EXPECT_EQ(order, (std::vector<int>{1, 4, 6, 2, 5, 3}));
  EXPECT_TRUE(q.empty());
}

TEST(FairQueue, SingleClientStaysFifo) {
  FairQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push("only", i));
  std::vector<int> order;
  int item = 0;
  while (q.pop(&item)) order.push_back(item);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(FairQueue, RejectsAtCapacityAndRecovers) {
  FairQueue<int> q(2);
  EXPECT_TRUE(q.push("a", 1));
  EXPECT_TRUE(q.push("b", 2));
  EXPECT_FALSE(q.push("a", 3));  // full, regardless of client
  EXPECT_FALSE(q.push("c", 4));
  int item = 0;
  EXPECT_TRUE(q.pop(&item));
  EXPECT_TRUE(q.push("c", 5));  // capacity freed
  EXPECT_EQ(q.size(), 2u);
}

TEST(FairQueue, ZeroCapacityRejectsEverything) {
  FairQueue<int> q(0);
  EXPECT_FALSE(q.push("a", 1));
  int item = 0;
  EXPECT_FALSE(q.pop(&item));
}

// -------------------------------------------------------------- framing

TEST(Protocol, FrameRoundTripOverPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload = "{\"type\":\"ping\"}";
  ASSERT_TRUE(protocol::write_frame(fds[1], payload));
  ASSERT_TRUE(protocol::write_frame(fds[1], ""));  // empty frame is legal
  std::string got;
  EXPECT_EQ(protocol::read_frame(fds[0], &got), ReadStatus::kOk);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(protocol::read_frame(fds[0], &got), ReadStatus::kOk);
  EXPECT_EQ(got, "");
  ::close(fds[1]);
  EXPECT_EQ(protocol::read_frame(fds[0], &got), ReadStatus::kEof);
  ::close(fds[0]);
}

TEST(Protocol, TruncatedFrameIsAnErrorNotEof) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const unsigned char header[4] = {0, 0, 0, 10};  // promises 10 bytes
  ASSERT_EQ(::write(fds[1], header, 4), 4);
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);  // delivers 3
  ::close(fds[1]);
  std::string got;
  EXPECT_EQ(protocol::read_frame(fds[0], &got), ReadStatus::kError);
  ::close(fds[0]);
}

TEST(Protocol, OversizedLengthPrefixIsRejectedUnread) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::uint32_t huge = protocol::kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(huge >> 24),
      static_cast<unsigned char>(huge >> 16),
      static_cast<unsigned char>(huge >> 8),
      static_cast<unsigned char>(huge)};
  ASSERT_EQ(::write(fds[1], header, 4), 4);
  std::string got;
  EXPECT_EQ(protocol::read_frame(fds[0], &got), ReadStatus::kError);
  ::close(fds[0]);
  ::close(fds[1]);
  EXPECT_FALSE(protocol::write_frame(-1, std::string(
      protocol::kMaxFrameBytes + 1, 'x')));
}

TEST(Protocol, WriteToClosedPeerFailsInsteadOfRaisingSigpipe) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ::close(fds[0]);
  // The default SIGPIPE disposition is in effect in this process: a
  // plain ::write here would kill the test, so this EXPECT doubles as
  // proof that write_frame reports a dead peer as a clean failure.
  EXPECT_FALSE(protocol::write_frame(fds[1], "{\"type\":\"ping\"}"));
  ::close(fds[1]);
}

// ------------------------------------------------------- request parsing

TEST(Protocol, ParsesPingStatsAndSweep) {
  Request req;
  std::string error;
  ASSERT_TRUE(protocol::parse_request("{\"type\":\"ping\"}", &req, &error));
  EXPECT_EQ(req.kind, Request::Kind::kPing);
  ASSERT_TRUE(protocol::parse_request("{\"type\":\"stats\"}", &req, &error));
  EXPECT_EQ(req.kind, Request::Kind::kStats);

  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"sweep\",\"client\":\"alice\",\"workload\":\"Denoise\","
      "\"scale\":0.05,\"points\":[{\"islands\":6,\"net\":\"proxy\"},"
      "{\"rings\":3,\"width\":16,\"mono\":true,\"policy\":\"sjf\"}]}",
      &req, &error))
      << error;
  EXPECT_EQ(req.kind, Request::Kind::kSweep);
  EXPECT_EQ(req.client, "alice");
  EXPECT_EQ(req.workload, "Denoise");
  EXPECT_DOUBLE_EQ(req.scale, 0.05);
  ASSERT_EQ(req.points.size(), 2u);
  EXPECT_EQ(req.points[0].islands, 6u);
  EXPECT_EQ(req.points[0].net, "proxy");
  EXPECT_EQ(req.points[1].rings, 3u);
  EXPECT_EQ(req.points[1].link_bytes, 16u);
  EXPECT_TRUE(req.points[1].mono);
  EXPECT_EQ(req.points[1].policy, "sjf");
}

TEST(Protocol, SweepDefaultsMirrorAraSim) {
  Request req;
  std::string error;
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"sweep\",\"workload\":\"Deblur\"}", &req, &error));
  EXPECT_EQ(req.client, "anon");
  EXPECT_DOUBLE_EQ(req.scale, 0.25);
  ASSERT_EQ(req.points.size(), 1u);  // one default point
  // The default PointSpec is ara_sim's default design point.
  EXPECT_EQ(core::canonical_text(req.points[0].to_config()),
            core::canonical_text(core::ArchConfig::ring_design(24, 2, 32)));
}

TEST(Protocol, RejectsMalformedRequests) {
  Request req;
  std::string error;
  const char* bad[] = {
      "not json",
      "[1,2,3]",
      "{\"type\":\"teapot\"}",
      "{\"type\":\"sweep\"}",                      // no workload
      "{\"type\":\"sweep\",\"workload\":\"D\",\"scale\":0}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":[]}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":[7]}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":[{\"islands\":"
      "\"six\"}]}",
  };
  for (const char* text : bad) {
    error.clear();
    EXPECT_FALSE(protocol::parse_request(text, &req, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
}

TEST(Protocol, RejectsOutOfRangeAndNonIntegralPointFields) {
  Request req;
  std::string error;
  const char* bad[] = {
      // A u32 field past UINT32_MAX must reject, not truncate to a
      // small value and simulate a different design point.
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"islands\":4294967320}]}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"islands\":-3}]}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"islands\":2.5}]}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"islands\":1e2}]}",
      // A u64 field: negative would wrap through strtoull, and one past
      // UINT64_MAX overflows it.
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"width\":-1}]}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"width\":18446744073709551616}]}",
  };
  for (const char* text : bad) {
    error.clear();
    EXPECT_FALSE(protocol::parse_request(text, &req, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // Boundary: exactly UINT32_MAX is in range and parses unclipped.
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"sweep\",\"workload\":\"D\",\"points\":"
      "[{\"islands\":4294967295}]}",
      &req, &error))
      << error;
  EXPECT_EQ(req.points.at(0).islands, 4294967295u);
}

TEST(Protocol, ShardsFieldIsOptionalAndValidated) {
  Request req;
  std::string error;
  // Absent -> the unsharded default, on both request kinds.
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"sweep\",\"workload\":\"D\"}", &req, &error));
  EXPECT_EQ(req.shards, 1u);
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"search\",\"workload\":\"D\"}", &req, &error));
  EXPECT_EQ(req.shards, 1u);

  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"sweep\",\"workload\":\"D\",\"shards\":4}", &req, &error))
      << error;
  EXPECT_EQ(req.shards, 4u);
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"search\",\"workload\":\"D\",\"shards\":16}", &req,
      &error))
      << error;
  EXPECT_EQ(req.shards, protocol::kMaxShards);

  // Zero, past the cap, non-integral and non-numeric all reject with an
  // error naming the field (a bad worker count must not silently fall
  // back to serial execution).
  const char* bad[] = {
      "{\"type\":\"sweep\",\"workload\":\"D\",\"shards\":0}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"shards\":17}",
      "{\"type\":\"search\",\"workload\":\"D\",\"shards\":0}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"shards\":2.5}",
      "{\"type\":\"sweep\",\"workload\":\"D\",\"shards\":\"four\"}",
  };
  for (const char* text : bad) {
    error.clear();
    EXPECT_FALSE(protocol::parse_request(text, &req, &error)) << text;
    EXPECT_NE(error.find("shards"), std::string::npos) << text;
  }
}

TEST(Protocol, PointSpecConfigMatchesCliConstruction) {
  // Mirror of ara_sim `--islands 6 --net chain --ports 2 --sharing --mono
  // --policy ljf`: same base design, same overrides, same canonical text.
  PointSpec spec;
  spec.islands = 6;
  spec.net = "chain";
  spec.ports = 2;
  spec.sharing = true;
  spec.mono = true;
  spec.policy = "ljf";

  core::ArchConfig expected = core::ArchConfig::ring_design(24, 2, 32);
  expected.num_islands = 6;
  expected.island.net.topology = island::SpmDmaTopology::kChainingXbar;
  expected.island.spm_port_multiplier = 2;
  expected.island.spm_sharing = true;
  expected.mode = abc::ExecutionMode::kMonolithic;
  expected.gam_policy = abc::GamPolicy::kLargestFirst;

  EXPECT_EQ(core::canonical_text(spec.to_config()),
            core::canonical_text(expected));

  PointSpec bad;
  bad.net = "torus";
  EXPECT_THROW(bad.to_config(), ConfigError);
  bad = PointSpec{};
  bad.policy = "lifo";
  EXPECT_THROW(bad.to_config(), ConfigError);
}

// -------------------------------------------------- versioned envelope

TEST(Protocol, EnvelopeVersionDefaultsToOneAndAcceptsExplicitOne) {
  Request req;
  std::string error;
  // Absent "v" means v1: every pre-envelope client frame stays valid.
  ASSERT_TRUE(protocol::parse_request("{\"type\":\"ping\"}", &req, &error));
  EXPECT_EQ(req.v, protocol::kProtocolVersion);
  ASSERT_TRUE(
      protocol::parse_request("{\"v\":1,\"type\":\"ping\"}", &req, &error))
      << error;
  EXPECT_EQ(req.v, 1u);
  // Key order in the envelope is irrelevant.
  ASSERT_TRUE(
      protocol::parse_request("{\"type\":\"stats\",\"v\":1}", &req, &error))
      << error;
  EXPECT_EQ(req.kind, Request::Kind::kStats);
}

TEST(Protocol, EnvelopeRejectsUnsupportedVersionsListingSupportedOnes) {
  Request req;
  std::string error;
  EXPECT_FALSE(
      protocol::parse_request("{\"v\":2,\"type\":\"ping\"}", &req, &error));
  EXPECT_NE(error.find("unsupported protocol version '2'"),
            std::string::npos)
      << error;
  EXPECT_NE(error.find("supported: 1"), std::string::npos) << error;
  // Version 0 and non-integral versions are malformed, not "old".
  EXPECT_FALSE(
      protocol::parse_request("{\"v\":0,\"type\":\"ping\"}", &req, &error));
  for (const char* text : {"{\"v\":-1,\"type\":\"ping\"}",
                           "{\"v\":1.5,\"type\":\"ping\"}",
                           "{\"v\":\"1\",\"type\":\"ping\"}"}) {
    error.clear();
    EXPECT_FALSE(protocol::parse_request(text, &req, &error)) << text;
    EXPECT_NE(error.find("\"v\" must be an unsigned integer"),
              std::string::npos)
        << error;
  }
}

TEST(Protocol, UnknownTypeErrorListsTheSharedRegistry) {
  EXPECT_EQ(protocol::supported_types(), "ping|search|stats|sweep");
  Request req;
  std::string error;
  EXPECT_FALSE(
      protocol::parse_request("{\"type\":\"teapot\"}", &req, &error));
  EXPECT_NE(error.find("unknown request type 'teapot'"), std::string::npos)
      << error;
  EXPECT_NE(error.find("(supported: ping|search|stats|sweep)"),
            std::string::npos)
      << error;
}

TEST(Protocol, ErrorResponseCarriesTheTraceIdWhenMinted) {
  EXPECT_EQ(protocol::error_response("bad_request", "nope"),
            "{\"type\":\"error\",\"code\":\"bad_request\","
            "\"message\":\"nope\"}");
  EXPECT_EQ(protocol::error_response("bad_request", "nope", 7),
            "{\"type\":\"error\",\"code\":\"bad_request\","
            "\"message\":\"nope\",\"trace_id\":7}");
}

// -------------------------------------------------------- search parsing

TEST(Protocol, ParsesSearchWithDefaults) {
  Request req;
  std::string error;
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"search\",\"workload\":\"Denoise\"}", &req, &error))
      << error;
  EXPECT_EQ(req.kind, Request::Kind::kSearch);
  EXPECT_EQ(req.search.workload, "Denoise");
  EXPECT_DOUBLE_EQ(req.search.scale, 0.25);
  EXPECT_EQ(req.search.objective, dse::Objective::kPerf);
  EXPECT_EQ(req.search.budget, 16u);
  EXPECT_EQ(req.search.seed, 1u);
  EXPECT_EQ(req.search.space.size(), dse::SearchSpace{}.size());
  // The admission/logging fields mirror the spec for fairness + the log.
  EXPECT_EQ(req.workload, "Denoise");
  EXPECT_DOUBLE_EQ(req.scale, 0.25);
}

TEST(Protocol, ParsesSearchWithExplicitSpaceAndKnobs) {
  Request req;
  std::string error;
  ASSERT_TRUE(protocol::parse_request(
      "{\"v\":1,\"type\":\"search\",\"workload\":\"Deblur\","
      "\"scale\":0.05,\"objective\":\"perf_per_energy\",\"budget\":9,"
      "\"seed\":42,\"space\":{\"islands\":[3,6],\"rings\":[1,2,3],"
      "\"widths\":[16],\"ports\":[2],\"sharing\":[true],"
      "\"mono\":[false,true],\"policies\":[\"sjf\",\"fifo\"]}}",
      &req, &error))
      << error;
  EXPECT_EQ(req.search.objective, dse::Objective::kPerfPerEnergy);
  EXPECT_EQ(req.search.budget, 9u);
  EXPECT_EQ(req.search.seed, 42u);
  EXPECT_EQ(req.search.space.islands,
            (std::vector<std::uint32_t>{3, 6}));
  EXPECT_EQ(req.search.space.rings, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(req.search.space.widths, (std::vector<std::uint64_t>{16}));
  EXPECT_EQ(req.search.space.ports, (std::vector<std::uint32_t>{2}));
  EXPECT_EQ(req.search.space.sharing, (std::vector<bool>{true}));
  EXPECT_EQ(req.search.space.mono, (std::vector<bool>{false, true}));
  EXPECT_EQ(req.search.space.policies,
            (std::vector<std::string>{"sjf", "fifo"}));
  // Unspecified lists keep the default space ("nets" above).
  EXPECT_EQ(req.search.space.nets, (std::vector<std::string>{"ring"}));
}

TEST(Protocol, RejectsMalformedSearchRequests) {
  Request req;
  std::string error;
  const char* bad[] = {
      "{\"type\":\"search\"}",  // no workload
      "{\"type\":\"search\",\"workload\":\"D\",\"scale\":0}",
      "{\"type\":\"search\",\"workload\":\"D\",\"objective\":\"latency\"}",
      "{\"type\":\"search\",\"workload\":\"D\",\"budget\":0}",
      "{\"type\":\"search\",\"workload\":\"D\",\"budget\":4097}",
      "{\"type\":\"search\",\"workload\":\"D\",\"seed\":-1}",
      "{\"type\":\"search\",\"workload\":\"D\",\"space\":7}",
      "{\"type\":\"search\",\"workload\":\"D\",\"space\":"
      "{\"islands\":[]}}",
      "{\"type\":\"search\",\"workload\":\"D\",\"space\":"
      "{\"islands\":3}}",
      "{\"type\":\"search\",\"workload\":\"D\",\"space\":"
      "{\"sharing\":[1]}}",
  };
  for (const char* text : bad) {
    error.clear();
    EXPECT_FALSE(protocol::parse_request(text, &req, &error)) << text;
    EXPECT_FALSE(error.empty()) << text;
  }
  // The budget cap's boundary is admitted; the cap message names it.
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"search\",\"workload\":\"D\",\"budget\":4096}", &req,
      &error))
      << error;
  EXPECT_EQ(req.search.budget, 4096u);
  protocol::parse_request(
      "{\"type\":\"search\",\"workload\":\"D\",\"budget\":4097}", &req,
      &error);
  EXPECT_NE(error.find("4096"), std::string::npos) << error;
}

// ------------------------------------------------------------ coalescing

dse::ResultCache::Entry entry_of(const dse::SweepResult& r) {
  dse::ResultCache::Entry entry;
  entry.result = r.result;
  entry.metrics = r.metrics;
  entry.events = r.events;
  entry.event_kinds = r.event_kinds;
  for (auto& k : entry.event_kinds) k.seconds = 0;
  return entry;
}

TEST(Coalescer, DuplicatePointsInOneRequestSimulateOnce) {
  const auto wl = workloads::make_benchmark("Denoise", 0.03);
  const auto config = core::ArchConfig::ring_design(3, 1, 16);
  dse::PointCoalescer coalescer;
  dse::ResultCache cache;
  const auto results = dse::run(dse::SweepRequest{}
                                    .add(config, wl)
                                    .add(config, wl)
                                    .add(config, wl)
                                    .with_cache(&cache)
                                    .with_coalescer(&coalescer));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].coalesced);
  EXPECT_FALSE(results[0].from_cache);
  EXPECT_TRUE(results[1].coalesced);
  EXPECT_TRUE(results[2].coalesced);
  EXPECT_EQ(results[0].result, results[1].result);
  EXPECT_EQ(results[0].result, results[2].result);
  EXPECT_EQ(results[0].events, results[1].events);
  EXPECT_EQ(coalescer.in_flight(), 0u);  // every claim retired
}

TEST(Coalescer, FollowerGetsLeaderEntryBitExact) {
  const auto wl = workloads::make_benchmark("Denoise", 0.03);
  const auto config = core::ArchConfig::ring_design(3, 1, 16);
  const auto plain = dse::run(dse::SweepRequest{}.add(config, wl)).front();

  dse::PointCoalescer coalescer;
  dse::ResultCache cache;
  const std::uint64_t key =
      dse::ResultCache::key(config, wl, cache.salt());
  const auto leader = coalescer.join(key);
  ASSERT_TRUE(leader.leader);

  std::vector<dse::SweepResult> follower_results;
  std::thread follower([&] {
    follower_results = dse::run(dse::SweepRequest{}
                                    .add(config, wl)
                                    .with_cache(&cache)
                                    .with_coalescer(&coalescer));
  });
  // Deterministic hand-off: publish only after the other request has
  // verifiably joined as a follower.
  while (coalescer.coalesced() < 1) std::this_thread::yield();
  cache.insert(key, entry_of(plain));  // cache-then-publish, as dse::run does
  coalescer.publish(leader, entry_of(plain));
  follower.join();

  ASSERT_EQ(follower_results.size(), 1u);
  EXPECT_TRUE(follower_results[0].coalesced);
  EXPECT_FALSE(follower_results[0].from_cache);
  EXPECT_EQ(follower_results[0].result, plain.result);
  EXPECT_EQ(follower_results[0].events, plain.events);
  EXPECT_EQ(follower_results[0].wall_seconds, 0.0);  // nothing simulated here
  EXPECT_EQ(coalescer.coalesced(), 1u);
  EXPECT_EQ(coalescer.in_flight(), 0u);
}

TEST(Coalescer, AbandonedFollowerSelfSimulatesBitExact) {
  const auto wl = workloads::make_benchmark("Denoise", 0.03);
  const auto config = core::ArchConfig::ring_design(3, 1, 16);
  const auto plain = dse::run(dse::SweepRequest{}.add(config, wl)).front();

  dse::PointCoalescer coalescer;
  dse::ResultCache cache;
  const std::uint64_t key =
      dse::ResultCache::key(config, wl, cache.salt());
  const auto leader = coalescer.join(key);

  std::vector<dse::SweepResult> follower_results;
  std::thread follower([&] {
    follower_results = dse::run(dse::SweepRequest{}
                                    .add(config, wl)
                                    .with_cache(&cache)
                                    .with_coalescer(&coalescer));
  });
  while (coalescer.coalesced() < 1) std::this_thread::yield();
  coalescer.abandon(leader);  // the "leader's sweep threw" path
  follower.join();

  ASSERT_EQ(follower_results.size(), 1u);
  EXPECT_FALSE(follower_results[0].coalesced);  // it really simulated
  EXPECT_EQ(follower_results[0].result, plain.result);
  EXPECT_EQ(follower_results[0].events, plain.events);
  // The orphan fallback still populated the shared cache.
  dse::ResultCache::Entry cached;
  EXPECT_TRUE(cache.lookup(key, &cached));
  EXPECT_EQ(cached.result, plain.result);
}

// -------------------------------------------------------- request tracing

TEST(Coalescer, TracedRunIsBitIdenticalAndCountsOutcomes) {
  const auto wl = workloads::make_benchmark("Denoise", 0.03);
  const auto small = core::ArchConfig::ring_design(3, 1, 16);
  const auto big = core::ArchConfig::ring_design(6, 1, 16);

  // Untraced reference with no warm state.
  const auto plain =
      dse::run(dse::SweepRequest{}.add(small, wl).add(big, wl));

  obs::FakeClock clock;
  obs::RequestTrace trace;
  trace.clock = &clock;
  dse::PointCoalescer coalescer;
  dse::ResultCache cache;
  const auto traced = dse::run(dse::SweepRequest{}
                                   .add(small, wl)
                                   .add(big, wl)
                                   .add(small, wl)  // in-request duplicate
                                   .with_cache(&cache)
                                   .with_coalescer(&coalescer)
                                   .with_trace(&trace));
  // Two fresh misses; the repeated point is an alias of the first.
  EXPECT_EQ(trace.misses, 2u);
  EXPECT_EQ(trace.aliases, 1u);
  EXPECT_EQ(trace.hits, 0u);
  EXPECT_EQ(trace.followers, 0u);
  EXPECT_EQ(trace.failed, 0u);

  // Tracing is pure observability: results and cache-entry bytes match
  // the untraced run exactly.
  ASSERT_EQ(traced.size(), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(traced[i].result, plain[i].result);
    EXPECT_EQ(traced[i].events, plain[i].events);
  }
  const std::uint64_t key = dse::ResultCache::key(small, wl, cache.salt());
  EXPECT_EQ(
      dse::ResultCache::to_json(key, cache.salt(), entry_of(traced[0])),
      dse::ResultCache::to_json(key, cache.salt(), entry_of(plain[0])));

  // Warm repeat against the same cache: pure hits.
  obs::RequestTrace warm;
  warm.clock = &clock;
  const auto warm_run = dse::run(dse::SweepRequest{}
                                     .add(small, wl)
                                     .add(big, wl)
                                     .with_cache(&cache)
                                     .with_coalescer(&coalescer)
                                     .with_trace(&warm));
  EXPECT_EQ(warm.hits, 2u);
  EXPECT_EQ(warm.misses, 0u);
  EXPECT_EQ(warm_run[0].result, plain[0].result);
}

// ---------------------------------------------------------------- server

/// Byte-extract every "entry":{...} object embedded in a sweep response.
std::vector<std::string> extract_entries(const std::string& response) {
  std::vector<std::string> out;
  const std::string tag = "\"entry\":";
  std::size_t pos = 0;
  while ((pos = response.find(tag, pos)) != std::string::npos) {
    std::size_t i = pos + tag.size();
    const std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < response.size(); ++i) {
      const char c = response[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}') {
        if (--depth == 0) {
          ++i;
          break;
        }
      }
    }
    out.push_back(response.substr(start, i - start));
    pos = i;
  }
  return out;
}

std::string trimmed_entry_json(std::uint64_t key, std::uint64_t salt,
                               const dse::ResultCache::Entry& entry) {
  std::string text = dse::ResultCache::to_json(key, salt, entry);
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

std::uint64_t counter_value(const obs::MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double gauge_value(const obs::MetricsSnapshot& snap,
                   const std::string& name) {
  for (const auto& a : snap.accumulators) {
    if (a.name == name) return a.sum;  // scalar gauges encode value as sum
  }
  return -1;
}

Request small_sweep_request() {
  Request req;
  req.kind = Request::Kind::kSweep;
  req.client = "tester";
  req.workload = "Denoise";
  req.scale = 0.03;
  PointSpec a;
  a.islands = 3;
  a.rings = 1;
  a.link_bytes = 16;
  PointSpec b = a;
  b.islands = 6;
  req.points = {a, b};
  return req;
}

TEST(Server, ServedEntriesAreBitIdenticalToLocalDseRun) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.handlers = 1;
  opts.queue_capacity = 4;
  Server server(opts);
  server.start();

  const Request req = small_sweep_request();
  const std::string response = server.handle(req);
  ASSERT_NE(response.find("\"type\":\"sweep_result\""), std::string::npos)
      << response;

  // Local reference through the exact same public API the CLI uses.
  const auto wl = workloads::make_benchmark(req.workload, req.scale);
  dse::SweepRequest sweep;
  std::vector<std::uint64_t> keys;
  for (const auto& spec : req.points) {
    const auto config = spec.to_config();
    keys.push_back(
        dse::ResultCache::key(config, wl, dse::kSimVersionSalt));
    sweep.add(config, wl);
  }
  const auto local = dse::run(sweep);

  const auto served = extract_entries(response);
  ASSERT_EQ(served.size(), req.points.size());
  for (std::size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i], trimmed_entry_json(keys[i], dse::kSimVersionSalt,
                                            entry_of(local[i])))
        << "served point " << i << " diverged from the local dse::run";
  }

  // Warm repeat: zero re-simulations, byte-identical entries, every
  // point flagged from_cache.
  const std::string warm = server.handle(req);
  EXPECT_EQ(extract_entries(warm), served);
  obs::JsonValue parsed;
  ASSERT_TRUE(obs::parse_json(warm, &parsed, nullptr));
  const obs::JsonValue* points = parsed.find("points");
  ASSERT_NE(points, nullptr);
  for (const auto& point : points->items) {
    ASSERT_NE(point.find("from_cache"), nullptr);
    EXPECT_TRUE(point.find("from_cache")->boolean);
  }
  const auto snap = server.stats_snapshot();
  EXPECT_EQ(counter_value(snap, "serve.server.points_simulated"), 2u);
  EXPECT_EQ(counter_value(snap, "serve.server.points_cached"), 2u);
  EXPECT_EQ(counter_value(snap, "serve.server.sweeps"), 2u);
  server.stop();
}

/// Byte-extract the first balanced JSON object following `tag`.
std::string extract_object(const std::string& text, const std::string& tag) {
  const std::size_t pos = text.find(tag);
  if (pos == std::string::npos) return "";
  std::size_t i = pos + tag.size();
  const std::size_t start = i;
  int depth = 0;
  bool in_string = false;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      if (--depth == 0) {
        ++i;
        break;
      }
    }
  }
  return text.substr(start, i - start);
}

TEST(Server, ServedSearchResultIsBitIdenticalToLocalDseSearch) {
  ServerOptions opts;
  opts.jobs = 2;
  opts.handlers = 1;
  opts.queue_capacity = 4;
  Server server(opts);
  server.start();

  Request req;
  std::string error;
  ASSERT_TRUE(protocol::parse_request(
      "{\"v\":1,\"type\":\"search\",\"workload\":\"Denoise\","
      "\"scale\":0.03,\"budget\":4,\"space\":{\"islands\":[3,6],"
      "\"rings\":[1,2],\"widths\":[16],\"ports\":[1],"
      "\"sharing\":[false]}}",
      &req, &error))
      << error;
  const std::string response = server.handle(req);
  ASSERT_NE(response.find("\"type\":\"search_result\""), std::string::npos)
      << response;

  // Local reference with different jobs and no cache: the deterministic
  // block must still match byte for byte.
  dse::SearchRequest local;
  local.spec = req.search;
  local.jobs = 1;
  const std::string expected = dse::search_result_json(dse::search(local));
  EXPECT_EQ(extract_object(response, "\"result\":"), expected);

  // Warm repeat through the server's shared cache: same bytes, all hits.
  const std::string warm = server.handle(req);
  EXPECT_EQ(extract_object(warm, "\"result\":"), expected);
  obs::JsonValue parsed;
  ASSERT_TRUE(obs::parse_json(warm, &parsed, nullptr));
  EXPECT_EQ(parsed.find("simulated")->as_u64(), 0u);
  EXPECT_EQ(parsed.find("cache_hits")->as_u64(), 4u);

  const auto snap = server.stats_snapshot();
  EXPECT_EQ(counter_value(snap, "serve.search.requests"), 2u);
  EXPECT_EQ(counter_value(snap, "serve.search.evaluated"), 8u);
  EXPECT_EQ(counter_value(snap, "serve.search.simulated"), 4u);
  EXPECT_EQ(counter_value(snap, "serve.search.cache_hits"), 4u);
  server.stop();
}

TEST(Server, SearchWithUnknownWorkloadIsATypedBadRequest) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.handlers = 1;
  opts.queue_capacity = 2;
  Server server(opts);
  server.start();

  Request req;
  std::string error;
  ASSERT_TRUE(protocol::parse_request(
      "{\"type\":\"search\",\"workload\":\"NoSuchBenchmark\",\"budget\":2}",
      &req, &error))
      << error;
  const std::string response = server.handle(req);
  EXPECT_NE(response.find("\"type\":\"error\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"code\":\"bad_request\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"trace_id\":"), std::string::npos) << response;
  server.stop();
}

TEST(Server, PingStatsAndBadWorkload) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.handlers = 1;
  opts.queue_capacity = 2;
  Server server(opts);
  server.start();

  Request ping;
  ping.kind = Request::Kind::kPing;
  EXPECT_EQ(server.handle(ping), "{\"type\":\"pong\"}");

  Request bad = small_sweep_request();
  bad.workload = "NoSuchBenchmark";
  const std::string err = server.handle(bad);
  EXPECT_NE(err.find("\"type\":\"error\""), std::string::npos) << err;
  EXPECT_NE(err.find("\"code\":\"bad_request\""), std::string::npos) << err;

  Request stats;
  stats.kind = Request::Kind::kStats;
  const std::string response = server.handle(stats);
  obs::JsonValue parsed;
  std::string parse_error;
  ASSERT_TRUE(obs::parse_json(response, &parsed, &parse_error))
      << parse_error;
  EXPECT_EQ(parsed.find("type")->text, "stats");
  const obs::JsonValue* metrics = parsed.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->find("counters"), nullptr);
  server.stop();
}

TEST(Server, ZeroQueueCapacityRejectsWithOverloaded) {
  ServerOptions opts;
  opts.queue_capacity = 0;  // nothing may wait -> synchronous reject
  Server server(opts);      // handlers never started: reject needs none

  const std::string response = server.handle(small_sweep_request());
  EXPECT_NE(response.find("\"code\":\"overloaded\""), std::string::npos)
      << response;
  const auto snap = server.stats_snapshot();
  EXPECT_EQ(counter_value(snap, "serve.server.rejected_overload"), 1u);
}

TEST(Server, DrainingRejectsNewSweepsButAnswersPing) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.handlers = 1;
  Server server(opts);
  server.start();
  server.begin_drain();

  const std::string response = server.handle(small_sweep_request());
  EXPECT_NE(response.find("\"code\":\"draining\""), std::string::npos)
      << response;
  Request ping;
  ping.kind = Request::Kind::kPing;
  EXPECT_EQ(server.handle(ping), "{\"type\":\"pong\"}");
  server.stop();  // idempotent with the destructor's stop
}

TEST(Server, ConcurrentIdenticalRequestsSimulateEachPointOnce) {
  ServerOptions opts;
  opts.jobs = 1;
  opts.handlers = 4;  // enough for all submitters to run concurrently
  opts.queue_capacity = 8;
  Server server(opts);
  server.start();

  const Request req = small_sweep_request();
  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        Request mine = req;
        mine.client = "client-" + std::to_string(c);
        responses[static_cast<std::size_t>(c)] = server.handle(mine);
      });
    }
    for (auto& t : clients) t.join();
  }

  // However the four requests interleaved (coalesced, cached, or leader),
  // each distinct point was simulated exactly once and every client got
  // byte-identical entry objects.
  const auto first = extract_entries(responses[0]);
  ASSERT_EQ(first.size(), req.points.size());
  for (const auto& response : responses) {
    EXPECT_EQ(extract_entries(response), first);
  }
  const auto snap = server.stats_snapshot();
  EXPECT_EQ(counter_value(snap, "serve.server.points_simulated"),
            req.points.size());
  EXPECT_EQ(counter_value(snap, "serve.server.points"),
            req.points.size() * kClients);
  server.stop();
}

TEST(Server, FakeClockTracingWindowAndJsonlLog) {
  const std::string dir = testing::TempDir() + "ara_serve_log";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string log_path = dir + "/requests.jsonl";

  obs::FakeClock clock(500000000ull);  // t = 0.5 s
  ServerOptions opts;
  opts.jobs = 1;
  opts.handlers = 1;
  opts.queue_capacity = 4;
  opts.clock = &clock;
  opts.log_path = log_path;
  Server server(opts);
  ASSERT_NE(server.request_log(), nullptr);
  ASSERT_TRUE(server.request_log()->ok());
  server.start();

  const Request req = small_sweep_request();
  const std::string cold = server.handle(req);
  clock.advance_ns(1000000000ull);  // warm request lands in the next bucket
  const std::string warm = server.handle(req);

  // Trace ids mint sequentially and ride the response envelope; tracing
  // never perturbs the served entry bytes.
  EXPECT_NE(cold.find("\"trace_id\":1"), std::string::npos) << cold;
  EXPECT_NE(warm.find("\"trace_id\":2"), std::string::npos) << warm;
  EXPECT_EQ(extract_entries(cold), extract_entries(warm));

  // serve.window.* aggregates both requests with FakeClock-exact values:
  // 4 points total, the warm request's 2 served without simulation, over
  // a span from bucket 0's start (t=0) to now (t=1.5s).
  const auto snap = server.stats_snapshot();
  EXPECT_EQ(counter_value(snap, "serve.window.requests"), 2u);
  EXPECT_EQ(counter_value(snap, "serve.window.points"), 4u);
  EXPECT_EQ(counter_value(snap, "serve.window.points_avoided"), 2u);
  EXPECT_EQ(counter_value(snap, "serve.window.span_ns"), 1500000000u);
  EXPECT_DOUBLE_EQ(gauge_value(snap, "serve.window.hit_ratio"), 0.5);
  EXPECT_DOUBLE_EQ(gauge_value(snap, "serve.window.req_per_sec"),
                   2e9 / 1.5e9);

  // Rejected requests are logged with their typed error but never feed
  // the completion window.
  server.stop();
  const std::string rejected = server.handle(req);
  EXPECT_NE(rejected.find("\"code\":\"draining\""), std::string::npos);
  EXPECT_EQ(counter_value(server.stats_snapshot(), "serve.window.requests"),
            2u);

  ASSERT_EQ(server.request_log()->lines(), 3u);
  std::ifstream in(log_path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  for (const auto& l : lines) {
    std::string err;
    EXPECT_TRUE(obs::validate_json(l, &err)) << err << "\n" << l;
  }
  obs::JsonValue first, second, third;
  ASSERT_TRUE(obs::parse_json(lines[0], &first, nullptr));
  ASSERT_TRUE(obs::parse_json(lines[1], &second, nullptr));
  ASSERT_TRUE(obs::parse_json(lines[2], &third, nullptr));
  EXPECT_EQ(first.find("trace_id")->as_u64(), 1u);
  EXPECT_EQ(second.find("trace_id")->as_u64(), 2u);
  EXPECT_EQ(first.find("client")->text, "tester");
  EXPECT_EQ(first.find("workload")->text, "Denoise");
  // Outcome classification end to end: cold = all misses, warm = all hits.
  EXPECT_EQ(first.find("outcomes")->find("miss")->as_u64(), 2u);
  EXPECT_EQ(first.find("outcomes")->find("hit")->as_u64(), 0u);
  EXPECT_EQ(second.find("outcomes")->find("hit")->as_u64(), 2u);
  EXPECT_EQ(second.find("outcomes")->find("miss")->as_u64(), 0u);
  EXPECT_EQ(third.find("error")->text, "draining");
  EXPECT_EQ(third.find("outcomes")->find("miss")->as_u64(), 0u);
  // With the clock frozen during each request every duration is exactly
  // zero — the span plumbing itself is deterministic.
  EXPECT_EQ(first.find("total_ns")->as_u64(), 0u);
  EXPECT_EQ(first.find("phases_ns")->find("simulate")->as_u64(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(Server, SessionCapRejectsThenReapingReadmits) {
  const std::string path = testing::TempDir() + "ara_serve_cap.sock";
  ServerOptions opts;
  opts.socket_path = path;
  opts.jobs = 1;
  opts.handlers = 1;
  opts.max_sessions = 1;
  Server server(opts);
  std::string error;
  ASSERT_TRUE(server.listen(&error)) << error;
  server.start();
  std::atomic<int> signal{0};
  std::thread loop([&] { server.serve(signal); });

  // First connection is admitted; the pong proves its session is live
  // (and therefore registered) before the second connect races it.
  const int a = protocol::connect_unix(path);
  ASSERT_GE(a, 0);
  ASSERT_TRUE(protocol::write_frame(a, "{\"type\":\"ping\"}"));
  std::string got;
  ASSERT_EQ(protocol::read_frame(a, &got), ReadStatus::kOk);
  EXPECT_EQ(got, "{\"type\":\"pong\"}");

  // Second concurrent connection is one past the cap: it receives a
  // typed "overloaded" frame and the server closes it.
  const int b = protocol::connect_unix(path);
  ASSERT_GE(b, 0);
  ASSERT_EQ(protocol::read_frame(b, &got), ReadStatus::kOk);
  EXPECT_NE(got.find("\"code\":\"overloaded\""), std::string::npos) << got;
  EXPECT_EQ(protocol::read_frame(b, &got), ReadStatus::kEof);
  ::close(b);

  // After the first session closes and the accept loop reaps it, a new
  // connection fits under the cap again — this only succeeds if finished
  // session threads are actually joined and removed, not accumulated.
  ::close(a);
  for (;;) {
    const int c = protocol::connect_unix(path);
    ASSERT_GE(c, 0);
    const bool wrote = protocol::write_frame(c, "{\"type\":\"ping\"}");
    const ReadStatus status =
        wrote ? protocol::read_frame(c, &got) : ReadStatus::kError;
    ::close(c);
    if (status == ReadStatus::kOk && got == "{\"type\":\"pong\"}") break;
    std::this_thread::yield();  // still over the cap; retry until reaped
  }

  signal.store(SIGTERM, std::memory_order_release);
  loop.join();
}

}  // namespace
}  // namespace ara::serve
