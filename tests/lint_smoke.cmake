# Smoke test for the ara_lint CLI contract: the fixture corpus must fail
# the gate (exit 1) with every rule id represented, a clean file must pass
# (exit 0), a fully-suppressed file must pass while reporting the
# suppression count, and --json output must be strict RFC 8259 (validated
# with ara_json_check). Invoked by ctest as:
#   cmake -DLINT=<ara_lint> -DCHECK=<ara_json_check>
#         -DFIXTURES=<tests/lint_fixtures> -DOUT_DIR=<dir> -P lint_smoke.cmake
foreach(var LINT CHECK FIXTURES OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "lint_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

# 1. Seeded violations fail the gate, and every rule shows up by id.
execute_process(
  COMMAND "${LINT}" "${FIXTURES}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
      "ara_lint on the fixture corpus: want exit 1, got ${rc}:\n${out}\n${err}")
endif()
foreach(rule
    no-rand no-wall-clock no-unordered-iter no-raw-new-delete
    stat-naming layering no-naked-lock no-deprecated-api bad-suppression)
  if(NOT out MATCHES ": ${rule}: ")
    message(FATAL_ERROR "rule '${rule}' missing from fixture findings:\n${out}")
  endif()
endforeach()

# 2. A clean file passes.
execute_process(
  COMMAND "${LINT}" "${FIXTURES}/src/sim/clean.cc"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_lint on clean.cc: want exit 0, got ${rc}:\n${out}\n${err}")
endif()

# 3. Suppressions silence findings but stay visible in the summary.
execute_process(
  COMMAND "${LINT}" "${FIXTURES}/src/mem/suppressed.cc"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "ara_lint on suppressed.cc: want exit 0, got ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES "3 suppressed")
  message(FATAL_ERROR "suppression count missing from summary:\n${out}")
endif()

# 4. --json output is one strict JSON value.
set(json_file "${OUT_DIR}/lint_findings.json")
execute_process(
  COMMAND "${LINT}" --json "${FIXTURES}"
  RESULT_VARIABLE rc
  OUTPUT_FILE "${json_file}"
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "ara_lint --json: want exit 1, got ${rc}:\n${err}")
endif()
execute_process(
  COMMAND "${CHECK}" "${json_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--json output is not valid JSON:\n${out}\n${err}")
endif()

# 5. --list-rules names every rule.
execute_process(
  COMMAND "${LINT}" --list-rules
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_lint --list-rules failed (${rc}):\n${err}")
endif()
if(NOT out MATCHES "no-unordered-iter")
  message(FATAL_ERROR "--list-rules output incomplete:\n${out}")
endif()

message(STATUS "lint_smoke: all CLI contract checks passed")
