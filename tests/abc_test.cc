// Tests for the runtime: ABC composition, chaining, sharing constraint,
// fallback spilling, monolithic (ARC) mode, and the GAM.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "abc/abc.h"
#include "abc/gam.h"
#include "common/config_error.h"
#include "dataflow/dfg.h"
#include "island/island.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/event_queue.h"

namespace ara::abc {
namespace {

using dataflow::Dfg;
using dataflow::DfgNode;

DfgNode node(abb::AbbKind kind, std::uint64_t elements = 128,
             Bytes mem_in = 512, Bytes mem_out = 0) {
  DfgNode n;
  n.kind = kind;
  n.elements = elements;
  n.mem_in_bytes = mem_in;
  n.mem_out_bytes = mem_out;
  n.chain_in_bytes = elements * 4;
  return n;
}

/// Two-island fixture with a small mixed ABB set per island.
class AbcTest : public ::testing::Test {
 protected:
  AbcTest() : mesh_(noc::MeshConfig{}) {
    mem::MemorySystemConfig mcfg;
    std::vector<NodeId> l2_nodes, mc_nodes;
    for (std::uint32_t i = 0; i < mcfg.num_l2_banks; ++i) {
      l2_nodes.push_back(mesh_.node_at(2, i % 8));
    }
    for (std::uint32_t i = 0; i < mcfg.num_memory_controllers; ++i) {
      mc_nodes.push_back(mesh_.node_at(0, i));
    }
    mem_ = std::make_unique<mem::MemorySystem>(mesh_, mcfg, l2_nodes,
                                               mc_nodes);
  }

  void build(AbcConfig cfg = {}, island::IslandConfig icfg = {},
             std::vector<abb::AbbKind> kinds = {abb::AbbKind::kPoly,
                                                abb::AbbKind::kPoly,
                                                abb::AbbKind::kDivide,
                                                abb::AbbKind::kSqrt}) {
    islands_.push_back(std::make_unique<island::Island>(
        0, mesh_, mesh_.node_at(0, 1), *mem_, icfg, kinds));
    islands_.push_back(std::make_unique<island::Island>(
        1, mesh_, mesh_.node_at(7, 1), *mem_, icfg, kinds));
    std::vector<island::Island*> ptrs;
    for (auto& i : islands_) ptrs.push_back(i.get());
    abc_ = std::make_unique<Abc>(sim_, *mem_, ptrs, cfg);
  }

  JobId run_job(const Dfg* dfg, Tick* done_at = nullptr) {
    Tick done = 0;
    const JobId id = abc_->submit_job(dfg, mem_->allocate(64 * 1024),
                                      mem_->allocate(64 * 1024), 0,
                                      [&](JobId, Tick t) { done = t; });
    sim_.run();
    if (done_at != nullptr) *done_at = done;
    return id;
  }

  sim::Simulator sim_;
  noc::Mesh mesh_;
  std::unique_ptr<mem::MemorySystem> mem_;
  std::vector<std::unique_ptr<island::Island>> islands_;
  std::unique_ptr<Abc> abc_;
};

TEST_F(AbcTest, SingleTaskJobCompletes) {
  build();
  Dfg g("one");
  g.add_node(node(abb::AbbKind::kPoly, 128, 2048, 512));
  g.finalize();
  Tick done = 0;
  run_job(&g, &done);
  EXPECT_EQ(abc_->jobs_completed(), 1u);
  EXPECT_GT(done, 0u);
  EXPECT_EQ(abc_->tasks_started(), 1u);
}

TEST_F(AbcTest, ChainedTasksTransferDirectly) {
  build();
  Dfg g("chain");
  const TaskId a = g.add_node(node(abb::AbbKind::kPoly, 128, 2048));
  const TaskId b = g.add_node(node(abb::AbbKind::kDivide, 128, 0, 512));
  g.add_edge(a, b);
  g.finalize();
  run_job(&g);
  EXPECT_EQ(abc_->chains_direct(), 1u);
  EXPECT_EQ(abc_->chains_spilled(), 0u);
}

TEST_F(AbcTest, ChainedConsumerPrefersProducerIsland) {
  build();
  Dfg g("local");
  const TaskId a = g.add_node(node(abb::AbbKind::kPoly, 128, 2048));
  const TaskId b = g.add_node(node(abb::AbbKind::kDivide, 128, 0, 512));
  g.add_edge(a, b);
  g.finalize();
  const std::uint64_t packets_before = mesh_.total_packets();
  run_job(&g);
  // Chain stayed on one island: only memory traffic hit the NoC, and both
  // islands' engines show the work split 1 poly + 1 divide on the SAME
  // island (island 0, first pick).
  EXPECT_EQ(islands_[0]->engine(2).tasks_executed(), 1u);
  EXPECT_EQ(islands_[1]->engine(2).tasks_executed(), 0u);
  EXPECT_GT(mesh_.total_packets(), packets_before);  // memory traffic only
}

TEST_F(AbcTest, LoadBalancesAcrossIslands) {
  build();
  Dfg g("wide");
  for (int i = 0; i < 4; ++i) g.add_node(node(abb::AbbKind::kPoly));
  g.finalize();
  run_job(&g);
  // 4 independent poly tasks over 2 islands x 2 poly slots: both islands
  // used.
  const auto used = [&](int isl) {
    return islands_[isl]->engine(0).tasks_executed() +
           islands_[isl]->engine(1).tasks_executed();
  };
  EXPECT_EQ(used(0) + used(1), 4u);
  EXPECT_GT(used(0), 0u);
  EXPECT_GT(used(1), 0u);
}

TEST_F(AbcTest, QueuesWhenInventoryExhausted) {
  build();
  // 3 jobs each needing both poly blocks of one island; inventory is 4
  // poly total, so the third job waits for releases.
  Dfg g("two-poly");
  g.add_node(node(abb::AbbKind::kPoly));
  g.add_node(node(abb::AbbKind::kPoly));
  g.finalize();
  std::uint64_t completed = 0;
  for (int i = 0; i < 3; ++i) {
    abc_->submit_job(&g, mem_->allocate(4096), mem_->allocate(4096), 0,
                     [&](JobId, Tick) { ++completed; });
  }
  sim_.run();
  EXPECT_EQ(completed, 3u);
  EXPECT_GE(abc_->tasks_queued(), 1u);
}

TEST_F(AbcTest, OversizedJobFallsBackToSpilling) {
  build();
  // 5 divide tasks chained: only 2 divide blocks chip-wide, so atomic
  // composition is impossible; the per-task path must spill chains when a
  // consumer cannot be placed at its producer's completion.
  Dfg g("big");
  TaskId prev = g.add_node(node(abb::AbbKind::kDivide, 128, 1024));
  for (int i = 0; i < 4; ++i) {
    const TaskId t = g.add_node(node(abb::AbbKind::kDivide, 128, 0,
                                     i == 3 ? 512u : 0u));
    g.add_edge(prev, t);
    prev = t;
  }
  g.finalize();
  Tick done = 0;
  run_job(&g, &done);
  EXPECT_EQ(abc_->jobs_completed(), 1u);
  EXPECT_GT(done, 0u);
  // Sequential chain with free resources at each completion: chains stay
  // direct even in fallback mode.
  EXPECT_EQ(abc_->chains_direct() + abc_->chains_spilled(), 4u);
}

TEST_F(AbcTest, OversizedParallelJobSpillsUnderPressure) {
  build();
  // Two oversized jobs compete for the 2 divide blocks; some chains must
  // spill through memory.
  Dfg g("bigpar");
  const TaskId head = g.add_node(node(abb::AbbKind::kDivide, 128, 1024));
  for (int i = 0; i < 3; ++i) {
    const TaskId t = g.add_node(node(abb::AbbKind::kDivide, 128, 0, 512));
    g.add_edge(head, t);
  }
  g.finalize();
  std::uint64_t completed = 0;
  for (int i = 0; i < 2; ++i) {
    abc_->submit_job(&g, mem_->allocate(8192), mem_->allocate(8192), 0,
                     [&](JobId, Tick) { ++completed; });
  }
  sim_.run();
  EXPECT_EQ(completed, 2u);
  EXPECT_GT(abc_->chains_spilled(), 0u);
}

TEST_F(AbcTest, SharingConstraintBlocksNeighbours) {
  island::IslandConfig icfg;
  icfg.spm_sharing = true;
  build({}, icfg,
        {abb::AbbKind::kPoly, abb::AbbKind::kPoly, abb::AbbKind::kPoly,
         abb::AbbKind::kPoly});
  // 4 poly slots per island but neighbours block: at most 2 concurrently
  // active per island (slots 0 and 2, or 1 and 3).
  Dfg g("four");
  for (int i = 0; i < 4; ++i) g.add_node(node(abb::AbbKind::kPoly));
  g.finalize();
  run_job(&g);
  EXPECT_EQ(abc_->jobs_completed(), 1u);
  for (auto& isl : islands_) {
    EXPECT_FALSE(isl->engine(0).tasks_executed() > 0 &&
                 isl->engine(1).tasks_executed() > 0 &&
                 isl->engine(2).tasks_executed() > 0 &&
                 isl->engine(3).tasks_executed() > 0)
        << "4 neighbouring slots cannot all have been used for one "
           "4-task atomic job";
  }
}

TEST_F(AbcTest, MonolithicModeRunsFusedPipeline) {
  AbcConfig cfg;
  cfg.mode = ExecutionMode::kMonolithic;
  build(cfg);
  Dfg g("mono");
  const TaskId a = g.add_node(node(abb::AbbKind::kPoly, 256, 4096));
  const TaskId b = g.add_node(node(abb::AbbKind::kDivide, 256, 0, 1024));
  g.add_edge(a, b);
  g.finalize();
  Tick done = 0;
  run_job(&g, &done);
  EXPECT_EQ(abc_->jobs_completed(), 1u);
  EXPECT_GT(done, 0u);
  EXPECT_GT(abc_->mono_dynamic_energy_j(), 0.0);
  EXPECT_GT(abc_->mono_busy_cycles(0), 0u);
  // Composable machinery untouched.
  EXPECT_EQ(abc_->chains_direct(), 0u);
}

TEST_F(AbcTest, MonolithicJobsSpreadOverIslands) {
  AbcConfig cfg;
  cfg.mode = ExecutionMode::kMonolithic;
  build(cfg);
  Dfg g("mono2");
  g.add_node(node(abb::AbbKind::kPoly, 4096, 64 * 1024, 16 * 1024));
  g.finalize();
  std::uint64_t completed = 0;
  for (int i = 0; i < 4; ++i) {
    abc_->submit_job(&g, mem_->allocate(64 * 1024), mem_->allocate(64 * 1024),
                     0, [&](JobId, Tick) { ++completed; });
  }
  sim_.run();
  EXPECT_EQ(completed, 4u);
  EXPECT_GT(abc_->mono_busy_cycles(0), 0u);
  EXPECT_GT(abc_->mono_busy_cycles(1), 0u);
}

TEST_F(AbcTest, RejectsUnfinalizedDfg) {
  build();
  Dfg g("raw");
  g.add_node(node(abb::AbbKind::kPoly));
  EXPECT_THROW(abc_->submit_job(&g, 0, 0, 0, nullptr), ConfigError);
}

// ---- GAM ----

class GamTest : public AbcTest {
 protected:
  void build_gam(std::uint32_t window) {
    build();
    GamConfig gc;
    gc.node = mesh_.node_at(3, 3);
    gc.max_jobs_in_flight = window;
    gam_ = std::make_unique<Gam>(sim_, mesh_, *abc_, gc);
  }
  std::unique_ptr<Gam> gam_;
};

TEST_F(GamTest, DeliversCompletionInterrupt) {
  build_gam(4);
  Dfg g("one");
  g.add_node(node(abb::AbbKind::kPoly, 128, 2048, 512));
  g.finalize();
  Tick done = 0;
  gam_->submit(&g, mem_->allocate(4096), mem_->allocate(4096),
               mesh_.node_at(4, 0), [&](JobId, Tick t) { done = t; });
  sim_.run();
  EXPECT_GT(done, 0u);
  EXPECT_EQ(gam_->interrupts_delivered(), 1u);
  EXPECT_EQ(gam_->requests(), 1u);
  EXPECT_EQ(gam_->queued_requests(), 0u);
}

TEST_F(GamTest, AdmissionWindowQueuesExcess) {
  build_gam(1);
  Dfg g("one");
  g.add_node(node(abb::AbbKind::kPoly, 512, 8192, 1024));
  g.finalize();
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    gam_->submit(&g, mem_->allocate(16 * 1024), mem_->allocate(16 * 1024),
                 mesh_.node_at(4, 0), [&](JobId, Tick) { ++completed; });
  }
  sim_.run();
  EXPECT_EQ(completed, 3);
  EXPECT_EQ(gam_->queued_requests(), 2u);
  EXPECT_GE(gam_->mean_wait_estimate(), 0.0);
}

}  // namespace
}  // namespace ara::abc
