// Tests for the shared CLI flag parser: both `--flag V` and `--flag=V`
// forms, ARA_* environment fallbacks (flags win), in-place argv stripping,
// the accept bitmask, malformed-value reporting, and help text coverage.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli_options.h"

namespace ara::common {
namespace {

/// Mutable argv for parse(); keeps the backing strings alive.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    strings_.insert(strings_.begin(), "prog");
    for (auto& s : strings_) ptrs_.push_back(s.data());
    argc_ = static_cast<int>(ptrs_.size());
  }
  int& argc() { return argc_; }
  char** data() { return ptrs_.data(); }
  /// Arguments left after parsing (excluding argv[0]).
  std::vector<std::string> rest() const {
    std::vector<std::string> out;
    for (int i = 1; i < argc_; ++i) out.emplace_back(ptrs_[i]);
    return out;
  }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
  int argc_ = 0;
};

/// Scoped environment variable; restores the previous value on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

constexpr unsigned kAll = CliOptions::kJobs | CliOptions::kMetrics |
                          CliOptions::kTrace | CliOptions::kCache |
                          CliOptions::kCheck;

TEST(CliOptions, ParsesSpaceAndEqualsForms) {
  Argv a({"--jobs", "4", "--metrics=m.json", "--trace", "t.json",
          "--cache=/tmp/c"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  ASSERT_TRUE(opts.ok()) << opts.error;
  EXPECT_EQ(opts.jobs, 4u);
  EXPECT_EQ(opts.metrics_file, "m.json");
  EXPECT_EQ(opts.trace_file, "t.json");
  EXPECT_EQ(opts.cache_dir, "/tmp/c");
  EXPECT_TRUE(a.rest().empty());  // everything recognized was stripped
}

TEST(CliOptions, StripsOnlyRecognizedFlagsPreservingOrder) {
  Argv a({"positional", "--jobs", "2", "--other", "--metrics=m.json", "-x"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts.jobs, 2u);
  EXPECT_EQ(a.rest(), (std::vector<std::string>{"positional", "--other",
                                                "-x"}));
}

TEST(CliOptions, AcceptMaskLeavesUnacceptedFlagsAlone) {
  Argv a({"--jobs", "2", "--trace", "t.json"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), CliOptions::kTrace);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts.jobs, 0u);  // not accepted, not parsed
  EXPECT_EQ(opts.trace_file, "t.json");
  // --jobs and its value survive for the tool's own parser to reject.
  EXPECT_EQ(a.rest(), (std::vector<std::string>{"--jobs", "2"}));
}

TEST(CliOptions, EnvironmentSeedsDefaults) {
  ScopedEnv jobs("ARA_JOBS", "8");
  ScopedEnv cache("ARA_CACHE", "/tmp/envcache");
  Argv a({});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  ASSERT_TRUE(opts.ok()) << opts.error;
  EXPECT_EQ(opts.jobs, 8u);
  EXPECT_EQ(opts.cache_dir, "/tmp/envcache");
}

TEST(CliOptions, ExplicitFlagBeatsEnvironment) {
  ScopedEnv jobs("ARA_JOBS", "8");
  ScopedEnv metrics("ARA_METRICS", "env.json");
  Argv a({"--jobs=3", "--metrics", "flag.json"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts.jobs, 3u);
  EXPECT_EQ(opts.metrics_file, "flag.json");
}

TEST(CliOptions, MalformedJobsValueIsAnError) {
  ScopedEnv jobs("ARA_JOBS", nullptr);  // make sure env can't interfere
  for (const char* bad : {"banana", "4x", "", "-1"}) {
    Argv a({"--jobs", bad});
    const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
    EXPECT_FALSE(opts.ok()) << "accepted --jobs " << bad;
    EXPECT_NE(opts.error.find("--jobs"), std::string::npos) << opts.error;
  }
}

TEST(CliOptions, MalformedEnvironmentValueIsAnError) {
  ScopedEnv jobs("ARA_JOBS", "lots");
  Argv a({});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  EXPECT_FALSE(opts.ok());
  EXPECT_NE(opts.error.find("ARA_JOBS"), std::string::npos) << opts.error;
}

TEST(CliOptions, MissingValueIsAnError) {
  Argv a({"--metrics"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  EXPECT_FALSE(opts.ok());
  EXPECT_NE(opts.error.find("--metrics"), std::string::npos) << opts.error;
  EXPECT_TRUE(a.rest().empty());  // the bare flag is still stripped
}

// Regression: `--metrics --trace t.json` used to consume `--trace` as the
// metrics file name, silently eating the next flag. A `--`-prefixed token
// is never a value now — the flag reports "missing value" and the next
// flag still parses normally.
TEST(CliOptions, FlagTokenIsNeverConsumedAsValue) {
  Argv a({"--metrics", "--trace", "t.json"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  EXPECT_FALSE(opts.ok());
  EXPECT_NE(opts.error.find("--metrics"), std::string::npos) << opts.error;
  EXPECT_TRUE(opts.metrics_file.empty());
  EXPECT_EQ(opts.trace_file, "t.json");  // the next flag was not swallowed
  EXPECT_TRUE(a.rest().empty());
}

TEST(CliOptions, DashValueStillPossibleViaEqualsForm) {
  Argv a({"--metrics=--odd-name.json"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  ASSERT_TRUE(opts.ok()) << opts.error;
  EXPECT_EQ(opts.metrics_file, "--odd-name.json");
}

TEST(CliOptions, ZeroJobsMeansHardwareConcurrency) {
  Argv a({"--jobs", "0"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), CliOptions::kJobs);
  ASSERT_TRUE(opts.ok());
  EXPECT_EQ(opts.jobs, 0u);  // 0 is valid and means "pick for me"
}

TEST(CliOptions, CheckFlagIsBooleanAndStripped) {
  ScopedEnv env("ARA_CHECK", nullptr);
  Argv a({"positional", "--check", "--other"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
  ASSERT_TRUE(opts.ok()) << opts.error;
  EXPECT_TRUE(opts.check);
  // Boolean: it must not have swallowed the following argument.
  EXPECT_EQ(a.rest(), (std::vector<std::string>{"positional", "--other"}));
}

TEST(CliOptions, CheckDefaultsOffAndUnacceptedMaskLeavesIt) {
  ScopedEnv env("ARA_CHECK", nullptr);
  Argv off({});
  EXPECT_FALSE(CliOptions::parse(off.argc(), off.data(), kAll).check);

  Argv a({"--check"});
  const auto opts = CliOptions::parse(a.argc(), a.data(), CliOptions::kJobs);
  EXPECT_FALSE(opts.check);
  EXPECT_EQ(a.rest(), (std::vector<std::string>{"--check"}));
}

// Regression: `--check=VALUE` used to fall through unmatched (only the
// bare form was recognized), so it survived in argv and tools rejected it
// as an unknown option. Both forms parse now, through the same truthiness
// rule as ARA_CHECK.
TEST(CliOptions, CheckEqualsFormHonorsTruthinessAndStrips) {
  ScopedEnv env("ARA_CHECK", nullptr);
  for (const char* on : {"--check=1", "--check=true", "--check=yes"}) {
    Argv a({on, "positional"});
    const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
    ASSERT_TRUE(opts.ok()) << opts.error;
    EXPECT_TRUE(opts.check) << on;
    EXPECT_EQ(a.rest(), (std::vector<std::string>{"positional"})) << on;
  }
  for (const char* off : {"--check=0", "--check=off", "--check=false",
                          "--check="}) {
    Argv a({off});
    const auto opts = CliOptions::parse(a.argc(), a.data(), kAll);
    ASSERT_TRUE(opts.ok()) << opts.error;
    EXPECT_FALSE(opts.check) << off;
    EXPECT_TRUE(a.rest().empty()) << off;
  }
}

TEST(CliOptions, CheckEnvironmentFallbackHonorsTruthiness) {
  for (const char* on : {"1", "true", "yes"}) {
    ScopedEnv env("ARA_CHECK", on);
    Argv a({});
    EXPECT_TRUE(CliOptions::parse(a.argc(), a.data(), kAll).check) << on;
  }
  for (const char* off : {"0", "off", "false", ""}) {
    ScopedEnv env("ARA_CHECK", off);
    Argv a({});
    EXPECT_FALSE(CliOptions::parse(a.argc(), a.data(), kAll).check)
        << "'" << off << "'";
  }
}

TEST(CliOptions, HelpListsExactlyTheAcceptedFlags) {
  const std::string all = CliOptions::help(kAll);
  for (const char* flag : {"--jobs", "--metrics", "--trace", "--cache",
                           "--check"}) {
    EXPECT_NE(all.find(flag), std::string::npos) << flag;
  }
  for (const char* env : {"ARA_JOBS", "ARA_METRICS", "ARA_TRACE",
                          "ARA_CACHE", "ARA_CHECK"}) {
    EXPECT_NE(all.find(env), std::string::npos) << env;
  }
  const std::string sub =
      CliOptions::help(CliOptions::kTrace | CliOptions::kMetrics);
  EXPECT_NE(sub.find("--trace"), std::string::npos);
  EXPECT_NE(sub.find("--metrics"), std::string::npos);
  EXPECT_EQ(sub.find("--jobs"), std::string::npos);
  EXPECT_EQ(sub.find("--cache"), std::string::npos);
}

}  // namespace
}  // namespace ara::common
