# Smoke test for the partitioned-kernel parallelism benchmark: run it at a
# reduced budget (the bench itself exits non-zero if any worker count's
# checksum or aggregates diverge from the serial run), then strictly
# validate the emitted BENCH_kernel_parallel.json with ara_json_check.
# Speedup is deliberately NOT gated here — the container may have a single
# core (see the bench header / EXPERIMENTS.md). Invoked by ctest as:
#   cmake -DBENCH=<bench_kernel_parallel> -DCHECK=<ara_json_check>
#         -DOUT_DIR=<dir> -P bench_kernel_parallel_smoke.cmake
foreach(var BENCH CHECK OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_kernel_parallel_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(report "${OUT_DIR}/BENCH_kernel_parallel.json")

execute_process(
  COMMAND "${BENCH}" --events 8000 --work 40 --repeats 2 --out "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_kernel_parallel failed (${rc}):\n${out}\n${err}")
endif()
if(NOT EXISTS "${report}")
  message(FATAL_ERROR "bench_kernel_parallel did not write ${report}")
endif()

execute_process(
  COMMAND "${CHECK}" "${report}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "BENCH_kernel_parallel.json is not valid JSON (${rc}):\n"
                      "${out}\n${err}")
endif()

# Shape checks: all three worker counts present on an >= 8-island config,
# every row carries the identity bit, and cross traffic was not vacuous.
file(READ "${report}" report_text)
foreach(needle "\"bench\":\"kernel_parallel\"" "\"islands\":8"
        "\"workers\":1" "\"workers\":2" "\"workers\":4"
        "\"checksum_match\":true" "\"cross_events\"" "\"windows\"")
  string(FIND "${report_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "BENCH_kernel_parallel.json is missing ${needle}")
  endif()
endforeach()
if(report_text MATCHES "\"cross_events\":0[,}]")
  message(FATAL_ERROR "parallel bench ran with zero cross traffic (vacuous)")
endif()

message(STATUS "kernel parallel smoke ok: report valid, all worker counts agree")
