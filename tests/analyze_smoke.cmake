# Smoke test for the ara_analyze CLI contract: the seeded bad/ twin must
# fail the gate (exit 1) with every cross-file analysis represented, the
# corrected good/ twin must pass (exit 0), --json must be strict RFC 8259
# (validated with ara_json_check), --write-baseline followed by
# --baseline must round-trip to a clean run, and a stale baseline entry
# must itself fail the gate. Invoked by ctest as:
#   cmake -DANALYZE=<ara_analyze> -DCHECK=<ara_json_check>
#         -DFIXTURES=<tests/analyze_fixtures> -DOUT_DIR=<dir>
#         -P analyze_smoke.cmake
foreach(var ANALYZE CHECK FIXTURES OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "analyze_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")

# 1. The seeded bad/ twin fails the gate with every analysis by id.
execute_process(
  COMMAND "${ANALYZE}" --doc "${FIXTURES}/bad/DESIGN.md" "${FIXTURES}/bad"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
      "ara_analyze on bad/: want exit 1, got ${rc}:\n${out}\n${err}")
endif()
foreach(rule
    include-cycle transitive-layering lock-order stat-grammar
    stat-undocumented stat-phantom proto-unproduced)
  if(NOT out MATCHES ": ${rule}: ")
    message(FATAL_ERROR "analysis '${rule}' missing from bad/ findings:\n${out}")
  endif()
endforeach()

# 2. The corrected good/ twin passes.
execute_process(
  COMMAND "${ANALYZE}" --doc "${FIXTURES}/good/DESIGN.md" "${FIXTURES}/good"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "ara_analyze on good/: want exit 0, got ${rc}:\n${out}\n${err}")
endif()

# 3. --json output is one strict JSON value.
set(json_file "${OUT_DIR}/analyze_findings.json")
execute_process(
  COMMAND "${ANALYZE}" --json
    --doc "${FIXTURES}/bad/DESIGN.md" "${FIXTURES}/bad"
  RESULT_VARIABLE rc
  OUTPUT_FILE "${json_file}"
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "ara_analyze --json: want exit 1, got ${rc}:\n${err}")
endif()
execute_process(
  COMMAND "${CHECK}" "${json_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--json output is not valid JSON:\n${out}\n${err}")
endif()

# 4. --write-baseline then --baseline round-trips to a clean gate.
set(baseline_file "${OUT_DIR}/analyze_baseline.txt")
execute_process(
  COMMAND "${ANALYZE}" --write-baseline "${baseline_file}"
    --doc "${FIXTURES}/bad/DESIGN.md" "${FIXTURES}/bad"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "ara_analyze --write-baseline: want exit 0, got ${rc}:\n${err}")
endif()
execute_process(
  COMMAND "${ANALYZE}" --baseline "${baseline_file}"
    --doc "${FIXTURES}/bad/DESIGN.md" "${FIXTURES}/bad"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
      "baselined bad/ run: want exit 0, got ${rc}:\n${out}\n${err}")
endif()

# 5. A stale baseline entry is itself a finding (baselines cannot rot).
file(APPEND "${baseline_file}" "include-cycle:never/was/a.h <-> never/was/b.h\n")
execute_process(
  COMMAND "${ANALYZE}" --baseline "${baseline_file}"
    --doc "${FIXTURES}/bad/DESIGN.md" "${FIXTURES}/bad"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR
      "stale baseline entry: want exit 1, got ${rc}:\n${out}\n${err}")
endif()
if(NOT out MATCHES ": stale-baseline: ")
  message(FATAL_ERROR "stale-baseline finding missing:\n${out}")
endif()

# 6. --list-rules names every analysis.
execute_process(
  COMMAND "${ANALYZE}" --list-rules
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_analyze --list-rules failed (${rc}):\n${err}")
endif()
if(NOT out MATCHES "transitive-layering")
  message(FATAL_ERROR "--list-rules output incomplete:\n${out}")
endif()

message(STATUS "analyze_smoke: all CLI contract checks passed")
