// Differential test battery for the partitioned parallel event kernel
// (sim/shard.h) and its System integration: byte-identity across shard /
// worker counts and window widths, conservative-sync error paths, the
// fault-injection negative probes, and the cross-shard conservation law in
// check::verify_ledger. See DESIGN.md "Partitioned kernel".
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/check.h"
#include "core/arch_config.h"
#include "core/run_result.h"
#include "core/system.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"
#include "sim/event_queue.h"
#include "sim/shard.h"
#include "workloads/registry.h"

namespace ara {
namespace {

using sim::ShardOptions;
using sim::ShardedSimulator;
using sim::Simulator;

// ------------------------------------------------------- kernel plumbing

TEST(ShardKernelApi, PeekNextReportsEarliestPendingTick) {
  Simulator sim;
  Tick at = 0;
  EXPECT_FALSE(sim.peek_next(&at));
  sim.schedule_at(40, [] {});
  sim.schedule_at(7, [] {});
  ASSERT_TRUE(sim.peek_next(&at));
  EXPECT_EQ(at, 7u);
  // Far-future event through the overflow heap must peek correctly too.
  Simulator far;
  far.schedule_at(1u << 20, [] {});
  ASSERT_TRUE(far.peek_next(&at));
  EXPECT_EQ(at, 1u << 20);
}

TEST(ShardKernelApi, AdvanceToMovesClockWithoutDispatching) {
  Simulator sim;
  bool ran = false;
  sim.schedule_at(100, [&ran] { ran = true; });
  sim.advance_to(50);
  EXPECT_EQ(sim.now(), 50u);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.events_processed(), 0u);
  // Backwards and event-jumping advances are contract violations.
  EXPECT_THROW(sim.advance_to(10), sim::ScheduleError);
  EXPECT_THROW(sim.advance_to(101), sim::ScheduleError);
  sim.run();
  EXPECT_TRUE(ran);
}

// ------------------------------------------------ deterministic replicas

/// Deterministic hub-and-spoke script: all decisions derive from (site,
/// id), so every worker count and window width must reproduce the exact
/// dispatch stream. Mirrors check::shard_cross_check's generator but with
/// fixed parameters so divergences here are deterministic test failures.
class Script {
 public:
  explicit Script(ShardedSimulator* ssim) : ssim_(ssim) {}

  void seed_roots(int roots) {
    for (int i = 0; i < roots; ++i) {
      const std::uint32_t site =
          static_cast<std::uint32_t>(i) % ssim_->sites();
      ssim_->schedule_at(site, static_cast<Tick>(i * 13 % 97),
                         [this, site, i] { arm(site, i * 2 + 1, 0); });
    }
  }

  void arm(std::uint32_t site, std::uint64_t id, int depth) {
    if (depth >= 4) return;
    const std::uint64_t r =
        (id ^ (site * 0x9e3779b97f4a7c15ull)) * 0xff51afd7ed558ccdull;
    const Tick now = ssim_->site_now(site);
    if (r % 10 < 6) {
      ssim_->schedule_at(site, now + 1 + static_cast<Tick>((r >> 16) % 40),
                         [this, site, id, depth] {
                           arm(site, id * 31 + 7, depth + 1);
                         });
    }
    if ((r >> 24) % 10 < 4) {
      const std::uint32_t dst =
          site == 0
              ? 1 + static_cast<std::uint32_t>((r >> 32) % (ssim_->sites() - 1))
              : 0;
      ssim_->send(site, dst,
                  now + ssim_->lookahead() + static_cast<Tick>((r >> 44) % 20),
                  [this, dst, id, depth] { arm(dst, id * 37 + 11, depth + 1); });
    }
  }

 private:
  ShardedSimulator* ssim_;
};

struct Fingerprint {
  std::uint64_t checksum, processed, scheduled, cross_sent, cross_delivered;
};

Fingerprint run_script(const ShardOptions& so, int roots = 40) {
  ShardedSimulator ssim(so);
  Script script(&ssim);
  script.seed_roots(roots);
  ssim.run();
  EXPECT_EQ(ssim.pending(), 0u);
  EXPECT_EQ(ssim.cross_sent(), ssim.cross_delivered());
  return {ssim.checksum(), ssim.events_processed(), ssim.events_scheduled(),
          ssim.cross_sent(), ssim.cross_delivered()};
}

ShardOptions hub_and_spokes() {
  ShardOptions so;
  so.sites = 5;
  so.lookahead = 4;
  so.workers = 1;
  return so;
}

TEST(ShardKernel, ByteIdenticalAcrossWorkerCounts) {
  ShardOptions so = hub_and_spokes();
  const Fingerprint want = run_script(so);
  ASSERT_GT(want.cross_sent, 0u) << "script generated no cross traffic";
  for (unsigned workers : {2u, 4u, 8u}) {
    so.workers = workers;
    const Fingerprint got = run_script(so);
    EXPECT_EQ(got.checksum, want.checksum) << "workers=" << workers;
    EXPECT_EQ(got.processed, want.processed) << "workers=" << workers;
    EXPECT_EQ(got.scheduled, want.scheduled) << "workers=" << workers;
    EXPECT_EQ(got.cross_sent, want.cross_sent) << "workers=" << workers;
  }
}

TEST(ShardKernel, WindowWidthInvariance) {
  ShardOptions so = hub_and_spokes();
  const Fingerprint want = run_script(so);  // window = lookahead (widest)
  for (Tick window : {Tick{1}, Tick{2}, Tick{3}}) {
    so.window = window;
    so.workers = 2;
    const Fingerprint got = run_script(so);
    EXPECT_EQ(got.checksum, want.checksum) << "window=" << window;
    EXPECT_EQ(got.processed, want.processed) << "window=" << window;
    EXPECT_EQ(got.cross_delivered, want.cross_delivered)
        << "window=" << window;
  }
}

TEST(ShardKernel, NarrowWindowsExecuteMoreWindows) {
  ShardOptions so = hub_and_spokes();
  ShardedSimulator wide(so);
  Script ws(&wide);
  ws.seed_roots(40);
  wide.run();
  so.window = 1;
  ShardedSimulator narrow(so);
  Script ns(&narrow);
  ns.seed_roots(40);
  narrow.run();
  EXPECT_GT(narrow.windows(), wide.windows());
  EXPECT_EQ(narrow.checksum(), wide.checksum());
}

TEST(ShardKernel, SingleSiteDegradesToPlainSimulator) {
  // One site, no cross edges: the runner must degrade to a plain run —
  // same dispatch count as an identical Simulator script and one
  // mega-window.
  ShardOptions so;
  so.sites = 1;
  so.cross_traffic = false;
  ShardedSimulator ssim(so);
  Simulator plain;
  for (int i = 0; i < 20; ++i) {
    const Tick at = static_cast<Tick>(i * 7 % 31);
    ssim.schedule_at(0, at, [] {});
    plain.schedule_at(at, [] {});
  }
  ssim.run();
  plain.run();
  EXPECT_EQ(ssim.events_processed(), plain.events_processed());
  EXPECT_EQ(ssim.windows(), 1u);
  EXPECT_EQ(ssim.cross_sent(), 0u);
  EXPECT_EQ(ssim.channel_peak(), 0u);
}

// ------------------------------------------------------- error contracts

TEST(ShardKernel, LookaheadViolationThrowsOnSend) {
  ShardOptions so = hub_and_spokes();
  ShardedSimulator ssim(so);
  bool threw = false;
  ssim.schedule_at(0, 10, [&ssim, &threw] {
    try {
      ssim.send(0, 1, 12, [] {});  // 12 < 10 + lookahead(4)
    } catch (const sim::LookaheadError&) {
      threw = true;
    }
  });
  ssim.run();
  EXPECT_TRUE(threw);
}

TEST(ShardKernel, BarrierBackstopCatchesSkippedLookaheadCheck) {
  // With the eager send() check faulted off, the merge-time causality
  // check must still refuse an event behind the executed horizon — a
  // violation is an error, never a silent late delivery.
  ShardOptions so = hub_and_spokes();
  so.fault_skip_lookahead_check = true;
  ShardedSimulator ssim(so);
  ssim.schedule_at(0, 1, [&ssim] { ssim.send(0, 1, 1, [] {}); });
  ssim.schedule_at(1, 2, [] {});
  EXPECT_THROW(ssim.run(), sim::LookaheadError);
}

TEST(ShardKernel, ChannelCapacityBoundsOneWindow) {
  ShardOptions so = hub_and_spokes();
  so.channel_capacity = 2;
  ShardedSimulator ssim(so);
  ssim.schedule_at(0, 0, [&ssim] {
    ssim.send(0, 1, 10, [] {});
    ssim.send(0, 1, 11, [] {});
    EXPECT_THROW(ssim.send(0, 1, 12, [] {}), sim::ChannelError);
  });
  EXPECT_NO_THROW(ssim.run());
}

TEST(ShardKernel, CrossTrafficOffRejectsSend) {
  ShardOptions so;
  so.sites = 2;
  so.cross_traffic = false;
  ShardedSimulator ssim(so);
  EXPECT_THROW(ssim.send(0, 1, 100, [] {}), std::logic_error);
}

TEST(ShardKernel, RejectsDegenerateOptions) {
  ShardOptions zero_sites;
  zero_sites.sites = 0;
  EXPECT_THROW(ShardedSimulator{zero_sites}, std::invalid_argument);
  ShardOptions wide_window = hub_and_spokes();
  wide_window.window = wide_window.lookahead + 1;
  EXPECT_THROW(ShardedSimulator{wide_window}, std::invalid_argument);
}

// --------------------------------------------------- fault-injection probes

TEST(ShardKernel, InjectedMergeInversionFlipsChecksum) {
  // A guaranteed cross-vs-local tie at tick 10 on site 1: clean order is
  // cross-before-local; the injected inversion must be visible in the
  // checksum, or the differential battery could never catch a real
  // merge-order bug of this shape.
  auto tie_run = [](bool invert) {
    ShardOptions so;
    so.sites = 2;
    so.lookahead = 10;
    so.fault_invert_merge = invert;
    ShardedSimulator ssim(so);
    ssim.schedule_at(1, 10, [] {});
    ssim.schedule_at(0, 0, [&ssim] { ssim.send(0, 1, 10, [] {}); });
    ssim.run();
    return ssim.checksum();
  };
  EXPECT_NE(tie_run(false), tie_run(true));
}

// ------------------------------------------------- System-level identity

std::string snapshot_text(const obs::MetricsSnapshot& s) {
  std::ostringstream os;
  obs::MetricsExporter::write_snapshot_exact(os, s);
  return os.str();
}

dse::SweepResult run_point(unsigned shards, unsigned jobs = 1,
                           dse::ResultCache* cache = nullptr) {
  const auto wl = workloads::make_benchmark("Denoise", 0.05);
  dse::SweepRequest rq;
  rq.add(core::ArchConfig::paper_baseline(12), wl);
  rq.with_jobs(jobs).with_shards(shards);
  if (cache != nullptr) rq.with_cache(cache);
  return dse::run(rq).front();
}

TEST(ShardSystem, ByteIdenticalAcrossShardAndJobCounts) {
  const dse::SweepResult ref = run_point(1);
  const std::string ref_snapshot = snapshot_text(ref.metrics);
  for (unsigned shards : {2u, 4u, 8u}) {
    for (unsigned jobs : {1u, 2u, 8u}) {
      const dse::SweepResult got = run_point(shards, jobs);
      EXPECT_TRUE(got.result == ref.result)
          << "shards=" << shards << " jobs=" << jobs;
      EXPECT_EQ(got.events, ref.events)
          << "shards=" << shards << " jobs=" << jobs;
      EXPECT_EQ(snapshot_text(got.metrics), ref_snapshot)
          << "shards=" << shards << " jobs=" << jobs;
      for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
        EXPECT_EQ(got.event_kinds[k].count, ref.event_kinds[k].count)
            << "shards=" << shards << " kind=" << k;
      }
    }
  }
}

TEST(ShardSystem, ColdShardedCacheServesUnshardedWarmRun) {
  // shards is deliberately NOT part of the cache key: an entry written by
  // a sharded run must serve an unsharded run bit for bit (and the other
  // way round).
  dse::ResultCache cache;
  const dse::SweepResult cold = run_point(4, 2, &cache);
  EXPECT_FALSE(cold.from_cache);
  const dse::SweepResult warm = run_point(1, 1, &cache);
  EXPECT_TRUE(warm.from_cache);
  EXPECT_TRUE(warm.result == cold.result);
  EXPECT_EQ(snapshot_text(warm.metrics), snapshot_text(cold.metrics));
  const dse::SweepResult warm_sharded = run_point(8, 8, &cache);
  EXPECT_TRUE(warm_sharded.from_cache);
  EXPECT_TRUE(warm_sharded.result == cold.result);
}

TEST(ShardSystem, ShardCountersAreShardCountInvariant) {
  // The sim.shard.* counters are part of MetricsSnapshot, so byte-identity
  // forces them to describe the partition (fixed by the architecture), not
  // the worker count.
  const dse::SweepResult a = run_point(1);
  const dse::SweepResult b = run_point(4);
  auto counter = [](const obs::MetricsSnapshot& s, const std::string& name) {
    for (const auto& c : s.counters) {
      if (c.name == name) return c.value;
    }
    ADD_FAILURE() << "counter " << name << " missing from snapshot";
    return std::uint64_t{0};
  };
  for (const char* name :
       {"sim.shard.sites", "sim.shard.windows", "sim.shard.cross.sent",
        "sim.shard.cross.delivered", "sim.shard.channel.peak",
        "sim.shard.idle_site_windows"}) {
    EXPECT_EQ(counter(a.metrics, name), counter(b.metrics, name)) << name;
  }
  // 12-island config: hub + 12 island sites.
  EXPECT_EQ(counter(a.metrics, "sim.shard.sites"), 13u);
  // Today's composer-centric model keeps every event on the hub, so the
  // degenerate plan moves nothing across channels.
  EXPECT_EQ(counter(a.metrics, "sim.shard.cross.sent"), 0u);
}

TEST(ShardSystem, CheckedShardedRunSatisfiesInvariants) {
  check::ScopedEnable invariants_on;
  const dse::SweepResult checked = run_point(4, 2);
  const dse::SweepResult plain = run_point(1, 1);
  // Checking never perturbs results, sharded or not.
  EXPECT_TRUE(checked.result == plain.result);
}

// --------------------------------------------- cross-shard conservation law

check::RunLedger balanced_ledger() {
  check::RunLedger l;
  l.events_scheduled = 90;
  l.events_dispatched = 100;  // includes 10 cross deliveries
  l.events_pending = 0;
  l.cross_shard_sent = 10;
  l.cross_shard_delivered = 10;
  return l;
}

TEST(ShardLedger, CrossShardTransfersBalance) {
  EXPECT_GT(check::verify_ledger(balanced_ledger()), 0u);
}

TEST(ShardLedger, UndeliveredTransferIsCaught) {
  check::RunLedger l = balanced_ledger();
  l.cross_shard_delivered = 9;  // one transfer vanished in a channel
  EXPECT_THROW(check::verify_ledger(l), check::CheckError);
}

TEST(ShardLedger, UnaccountedDispatchIsCaught) {
  check::RunLedger l = balanced_ledger();
  l.events_dispatched = 101;  // dispatched more than scheduled + delivered
  EXPECT_THROW(check::verify_ledger(l), check::CheckError);
}

TEST(ShardLedger, ReducesToUnshardedLawWhenNoCrossTraffic) {
  check::RunLedger l = balanced_ledger();
  l.cross_shard_sent = l.cross_shard_delivered = 0;
  l.events_dispatched = 90;
  EXPECT_GT(check::verify_ledger(l), 0u);
}

TEST(ShardLedger, KernelAggregatesSatisfyTheLaw) {
  // A real cross-traffic run's aggregates must satisfy the documented law
  // verbatim: dispatched + pending == scheduled + cross_delivered.
  ShardedSimulator ssim(hub_and_spokes());
  Script script(&ssim);
  script.seed_roots(40);
  ssim.run();
  ASSERT_GT(ssim.cross_delivered(), 0u);
  check::RunLedger l;
  l.events_scheduled = ssim.events_scheduled();
  l.events_dispatched = ssim.events_processed();
  l.events_pending = ssim.pending();
  l.cross_shard_sent = ssim.cross_sent();
  l.cross_shard_delivered = ssim.cross_delivered();
  EXPECT_GT(check::verify_ledger(l), 0u);
}

}  // namespace
}  // namespace ara
