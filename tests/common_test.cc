// Unit tests for common types, units and config errors.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "common/types.h"
#include "common/units.h"

namespace ara {
namespace {

TEST(Types, CeilDiv) {
  EXPECT_EQ(ceil_div<std::uint64_t>(0, 4), 0u);
  EXPECT_EQ(ceil_div<std::uint64_t>(1, 4), 1u);
  EXPECT_EQ(ceil_div<std::uint64_t>(4, 4), 1u);
  EXPECT_EQ(ceil_div<std::uint64_t>(5, 4), 2u);
  EXPECT_EQ(ceil_div<std::uint64_t>(64, 64), 1u);
}

TEST(Types, BlockConstant) {
  EXPECT_EQ(kBlockBytes, 64u);
}

TEST(Units, ByteLiterals) {
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
}

TEST(Units, BandwidthConversion) {
  // 10 GB/s at a 1 GHz clock is 10 bytes per cycle.
  EXPECT_DOUBLE_EQ(gbps_to_bytes_per_cycle(10.0), 10.0);
}

TEST(Units, TickSeconds) {
  EXPECT_DOUBLE_EQ(ticks_to_seconds(1'000'000'000ull), 1.0);
  EXPECT_DOUBLE_EQ(ticks_to_seconds(0), 0.0);
}

TEST(Units, EnergyConversions) {
  EXPECT_DOUBLE_EQ(pj_to_j(1e12), 1.0);
  EXPECT_DOUBLE_EQ(nj_to_j(1e9), 1.0);
  // 1000 mW for 1e9 cycles at 1 GHz = 1 J.
  EXPECT_DOUBLE_EQ(mw_over_ticks_to_j(1000.0, 1'000'000'000ull), 1.0);
}

TEST(ConfigError, CheckThrowsWithMessage) {
  EXPECT_NO_THROW(config_check(true, "fine"));
  try {
    config_check(false, "bad knob");
    FAIL() << "expected throw";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("bad knob"), std::string::npos);
  }
}

}  // namespace
}  // namespace ara
