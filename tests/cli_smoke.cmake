# Smoke test for the observability exporters and the on-disk result cache:
# run ara_sim with --trace and --metrics on a small config, validate every
# produced file with the strict JSON checker (ara_json_check, no external
# deps), then exercise design_space_explorer's --cache directory — cold
# write, warm re-read, and corrupt-file tolerance. Invoked by ctest as:
#   cmake -DCLI=<ara_sim> -DDSE=<design_space_explorer>
#         -DCHECK=<ara_json_check> -DOUT_DIR=<dir> -P cli_smoke.cmake
foreach(var CLI DSE CHECK OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/smoke_trace.json")
set(metrics_file "${OUT_DIR}/smoke_metrics.json")
set(metrics_csv "${OUT_DIR}/smoke_metrics.csv")

execute_process(
  COMMAND "${CLI}" --bench Denoise --islands 6 --scale 0.05
          --trace "${trace_file}" --metrics "${metrics_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_sim failed (${rc}):\n${out}\n${err}")
endif()

foreach(f "${trace_file}" "${metrics_file}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "ara_sim did not write ${f}")
  endif()
endforeach()

execute_process(
  COMMAND "${CHECK}" "${trace_file}" "${metrics_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "JSON validation failed (${rc}):\n${out}\n${err}")
endif()

# The metrics JSON must carry counters from the four major subsystems.
file(READ "${metrics_file}" metrics_text)
foreach(prefix "island." "noc." "mem." "abc.")
  if(NOT metrics_text MATCHES "\"${prefix}")
    message(FATAL_ERROR "metrics JSON has no '${prefix}*' stats")
  endif()
endforeach()

# The trace must contain spans from >= 3 subsystems plus counter samples.
file(READ "${trace_file}" trace_text)
foreach(needle "\"cat\":\"task\"" "\"cat\":\"dma\"" "\"cat\":\"gam\""
        "\"ph\":\"C\"" "\"ph\":\"M\"")
  string(FIND "${trace_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace JSON is missing ${needle}")
  endif()
endforeach()

# CSV export path: header row + at least one counter row.
execute_process(
  COMMAND "${CLI}" --bench Denoise --islands 6 --scale 0.05 --csv
          --metrics "${metrics_csv}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_sim --metrics csv failed (${rc}):\n${out}\n${err}")
endif()
file(READ "${metrics_csv}" csv_text)
if(NOT csv_text MATCHES "^kind,name,value,count,mean,min,max,p50,p95,p99\n")
  message(FATAL_ERROR "metrics CSV header mismatch")
endif()
if(NOT csv_text MATCHES "counter,island\\.")
  message(FATAL_ERROR "metrics CSV has no island counters")
endif()

# --- on-disk result cache smoke -------------------------------------------
# Cold run populates the cache directory; the warm run must restore every
# point from disk; corrupting one entry must degrade to a clean miss, not an
# error. Every cache file must be strictly valid JSON.
set(cache_dir "${OUT_DIR}/result_cache")
file(REMOVE_RECURSE "${cache_dir}")

execute_process(
  COMMAND "${DSE}" Denoise --cache "${cache_dir}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE cold_out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explorer cold cache run failed (${rc}):\n"
                      "${cold_out}\n${err}")
endif()
file(GLOB cache_files "${cache_dir}/*.json")
list(LENGTH cache_files n_cache_files)
if(n_cache_files EQUAL 0)
  message(FATAL_ERROR "cold run wrote no cache files to ${cache_dir}")
endif()
if(NOT cold_out MATCHES "0/([0-9]+) points restored")
  message(FATAL_ERROR "cold run unexpectedly hit the cache:\n${cold_out}")
endif()

# Every cache entry is strict RFC 8259 JSON.
execute_process(
  COMMAND "${CHECK}" ${cache_files}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cache entry JSON validation failed (${rc}):\n"
                      "${out}\n${err}")
endif()

execute_process(
  COMMAND "${DSE}" Denoise --cache "${cache_dir}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE warm_out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explorer warm cache run failed (${rc}):\n"
                      "${warm_out}\n${err}")
endif()
if(NOT warm_out MATCHES "${n_cache_files}/${n_cache_files} points restored")
  message(FATAL_ERROR "warm run did not restore every point from the "
                      "cache:\n${warm_out}")
endif()

# Corrupt one entry: the next run must treat it as a miss, re-simulate that
# point, and still succeed with every other point restored.
list(GET cache_files 0 victim)
file(WRITE "${victim}" "{ truncated garbage")
execute_process(
  COMMAND "${DSE}" Denoise --cache "${cache_dir}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE corrupt_out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "explorer failed on a corrupt cache entry (${rc}):\n"
                      "${corrupt_out}\n${err}")
endif()
math(EXPR n_minus_one "${n_cache_files} - 1")
if(NOT corrupt_out MATCHES "${n_minus_one}/${n_cache_files} points restored")
  message(FATAL_ERROR "corrupt entry was not treated as a single miss:\n"
                      "${corrupt_out}")
endif()
# And the corrupt file was repaired by the re-simulated point.
execute_process(
  COMMAND "${CHECK}" "${victim}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "corrupt cache entry was not rewritten (${rc}):\n"
                      "${out}\n${err}")
endif()

message(STATUS "cli smoke ok: trace + metrics JSON/CSV valid; result cache "
               "cold/warm/corrupt all behaved")
