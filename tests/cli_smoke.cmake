# Smoke test for the observability exporters: run ara_sim with --trace and
# --metrics on a small config, then validate every produced file with the
# strict JSON checker (ara_json_check, no external deps). Invoked by ctest
# as:
#   cmake -DCLI=<ara_sim> -DCHECK=<ara_json_check> -DOUT_DIR=<dir>
#         -P cli_smoke.cmake
foreach(var CLI CHECK OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "cli_smoke.cmake requires -D${var}=...")
  endif()
endforeach()

file(MAKE_DIRECTORY "${OUT_DIR}")
set(trace_file "${OUT_DIR}/smoke_trace.json")
set(metrics_file "${OUT_DIR}/smoke_metrics.json")
set(metrics_csv "${OUT_DIR}/smoke_metrics.csv")

execute_process(
  COMMAND "${CLI}" --bench Denoise --islands 6 --scale 0.05
          --trace "${trace_file}" --metrics "${metrics_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_sim failed (${rc}):\n${out}\n${err}")
endif()

foreach(f "${trace_file}" "${metrics_file}")
  if(NOT EXISTS "${f}")
    message(FATAL_ERROR "ara_sim did not write ${f}")
  endif()
endforeach()

execute_process(
  COMMAND "${CHECK}" "${trace_file}" "${metrics_file}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "JSON validation failed (${rc}):\n${out}\n${err}")
endif()

# The metrics JSON must carry counters from the four major subsystems.
file(READ "${metrics_file}" metrics_text)
foreach(prefix "island." "noc." "mem." "abc.")
  if(NOT metrics_text MATCHES "\"${prefix}")
    message(FATAL_ERROR "metrics JSON has no '${prefix}*' stats")
  endif()
endforeach()

# The trace must contain spans from >= 3 subsystems plus counter samples.
file(READ "${trace_file}" trace_text)
foreach(needle "\"cat\":\"task\"" "\"cat\":\"dma\"" "\"cat\":\"gam\""
        "\"ph\":\"C\"" "\"ph\":\"M\"")
  string(FIND "${trace_text}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "trace JSON is missing ${needle}")
  endif()
endforeach()

# CSV export path: header row + at least one counter row.
execute_process(
  COMMAND "${CLI}" --bench Denoise --islands 6 --scale 0.05 --csv
          --metrics "${metrics_csv}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "ara_sim --metrics csv failed (${rc}):\n${out}\n${err}")
endif()
file(READ "${metrics_csv}" csv_text)
if(NOT csv_text MATCHES "^kind,name,value,count,mean,min,max,p50,p95,p99\n")
  message(FATAL_ERROR "metrics CSV header mismatch")
endif()
if(NOT csv_text MATCHES "counter,island\\.")
  message(FATAL_ERROR "metrics CSV has no island counters")
endif()

message(STATUS "cli smoke ok: trace + metrics JSON/CSV all valid")
