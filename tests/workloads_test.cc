// Tests for the workload generators and registry.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "cmp/cmp_model.h"
#include "workloads/calibration.h"
#include "workloads/medical.h"
#include "workloads/navigation.h"
#include "workloads/registry.h"

namespace ara::workloads {
namespace {

TEST(Generator, DeterministicForSameParams) {
  DfgGenParams p;
  p.tasks = 20;
  p.seed = 7;
  const auto a = generate_dfg("a", p);
  const auto b = generate_dfg("b", p);
  ASSERT_EQ(a.size(), b.size());
  for (TaskId t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a.node(t).kind, b.node(t).kind);
    EXPECT_EQ(a.node(t).elements, b.node(t).elements);
    EXPECT_EQ(a.node(t).preds, b.node(t).preds);
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  DfgGenParams p;
  p.tasks = 20;
  p.seed = 7;
  const auto a = generate_dfg("a", p);
  p.seed = 8;
  const auto b = generate_dfg("b", p);
  bool differs = false;
  for (TaskId t = 0; t < a.size(); ++t) {
    if (a.node(t).elements != b.node(t).elements) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, ChainFractionControlsChainingDegree) {
  DfgGenParams low;
  low.tasks = 400;
  low.chain_fraction = 0.1;
  low.seed = 11;
  DfgGenParams high = low;
  high.chain_fraction = 0.7;
  const double d_low = generate_dfg("l", low).chaining_degree();
  const double d_high = generate_dfg("h", high).chaining_degree();
  EXPECT_LT(d_low, 0.2);
  EXPECT_GT(d_high, 0.5);
}

TEST(Generator, LeavesStoreOutput) {
  DfgGenParams p;
  p.tasks = 30;
  p.seed = 3;
  const auto g = generate_dfg("g", p);
  for (const auto& n : g.nodes()) {
    if (n.succs.empty()) {
      EXPECT_GT(n.mem_out_bytes, 0u);
    } else {
      EXPECT_EQ(n.mem_out_bytes, 0u);
    }
  }
}

TEST(Generator, ComputeIterationsScaleElementsNotBytes) {
  DfgGenParams p;
  p.tasks = 10;
  p.seed = 5;
  p.compute_iterations = 1;
  const auto one = generate_dfg("one", p);
  p.compute_iterations = 4;
  const auto four = generate_dfg("four", p);
  for (TaskId t = 0; t < one.size(); ++t) {
    EXPECT_EQ(four.node(t).elements, 4 * one.node(t).elements);
    EXPECT_EQ(four.node(t).mem_in_bytes, one.node(t).mem_in_bytes);
  }
}

TEST(Generator, ChainWordsScaleChainBytes) {
  DfgGenParams p;
  p.tasks = 10;
  p.seed = 5;
  p.chain_words = 1;
  const auto one = generate_dfg("one", p);
  p.chain_words = 2;
  const auto two = generate_dfg("two", p);
  for (TaskId t = 0; t < one.size(); ++t) {
    EXPECT_EQ(two.node(t).chain_in_bytes, 2 * one.node(t).chain_in_bytes);
  }
}

TEST(Generator, FabricFractionMarksNodes) {
  DfgGenParams p;
  p.tasks = 200;
  p.seed = 5;
  p.fabric_fraction = 0.3;
  const auto g = generate_dfg("g", p);
  std::size_t fabric = 0;
  for (const auto& n : g.nodes()) fabric += n.needs_fabric ? 1 : 0;
  EXPECT_GT(fabric, 30u);
  EXPECT_LT(fabric, 100u);
}

TEST(Registry, SevenPaperBenchmarks) {
  const auto& names = benchmark_names();
  ASSERT_EQ(names.size(), 7u);
  EXPECT_EQ(names[0], "Deblur");
  EXPECT_EQ(names[2], "Segmentation");
  EXPECT_EQ(names[5], "EKF-SLAM");
}

TEST(Registry, AllBenchmarksConstruct) {
  for (const auto& w : all_benchmarks(0.1)) {
    EXPECT_FALSE(w.name.empty());
    EXPECT_TRUE(w.dfg.finalized());
    EXPECT_GT(w.dfg.size(), 0u);
    EXPECT_GT(w.invocations, 0u);
    EXPECT_GT(w.cmp_cycles_per_invocation, 0.0);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_benchmark("Nonesuch"), ConfigError);
}

TEST(Registry, ScaleAdjustsInvocations) {
  const auto full = make_benchmark("Denoise", 1.0);
  const auto half = make_benchmark("Denoise", 0.5);
  EXPECT_NEAR(static_cast<double>(half.invocations),
              full.invocations / 2.0, 1.0);
}

TEST(Registry, ChainingOrderingMatchesPaperNarrative) {
  // Denoise is the low-chaining example, EKF-SLAM the high-chaining one.
  const double denoise = make_benchmark("Denoise").dfg.chaining_degree();
  const double ekf = make_benchmark("EKF-SLAM").dfg.chaining_degree();
  const double seg = make_benchmark("Segmentation").dfg.chaining_degree();
  EXPECT_LT(denoise, 0.2);
  EXPECT_GT(ekf, 0.5);
  EXPECT_GT(seg, 0.4);
  EXPECT_LT(denoise, seg);
}

TEST(Registry, DenoiseIrGoesThroughCompiler) {
  const auto w = make_benchmark("DenoiseIR");
  EXPECT_TRUE(w.dfg.finalized());
  EXPECT_GT(w.dfg.size(), 2u);       // poly groups + sqrt + div at least
  EXPECT_GT(w.dfg.chain_edges(), 2u);
  bool has_sqrt = false, has_div = false;
  for (const auto& n : w.dfg.nodes()) {
    has_sqrt |= n.kind == abb::AbbKind::kSqrt;
    has_div |= n.kind == abb::AbbKind::kDivide;
  }
  EXPECT_TRUE(has_sqrt);
  EXPECT_TRUE(has_div);
}

TEST(SoftwareCost, ScalesWithMultiplier) {
  const auto w = make_benchmark("Deblur");
  const double x1 = software_cycles_per_invocation(w.dfg, 1.0);
  const double x2 = software_cycles_per_invocation(w.dfg, 2.0);
  EXPECT_NEAR(x2, 2.0 * x1, 1e-6);
}

TEST(CmpModel, TimeAndEnergyScaleWithWork) {
  cmp::CmpModel model(cmp::CmpConfig::xeon_e5_2420());
  Workload w = make_benchmark("Denoise", 1.0);
  const auto r1 = model.run(w);
  w.cmp_cycles_per_invocation *= 2;
  const auto r2 = model.run(w);
  EXPECT_NEAR(r2.seconds, 2 * r1.seconds, 1e-12);
  EXPECT_NEAR(r2.joules, 2 * r1.joules, 1e-9);
}

TEST(CmpModel, MoreCoresFaster) {
  const Workload w = make_benchmark("Denoise", 1.0);
  const auto r12 = cmp::CmpModel(cmp::CmpConfig::xeon_e5_2420()).run(w);
  const auto r4 = cmp::CmpModel(cmp::CmpConfig::xeon_e5405()).run(w);
  EXPECT_LT(r12.seconds, r4.seconds);
}

TEST(CmpModel, ConfigsMatchPaperMachines) {
  const auto c12 = cmp::CmpConfig::xeon_e5_2420();
  EXPECT_EQ(c12.cores, 12u);
  EXPECT_DOUBLE_EQ(c12.freq_ghz, 1.9);
  const auto c4 = cmp::CmpConfig::xeon_e5405();
  EXPECT_EQ(c4.cores, 4u);
  EXPECT_DOUBLE_EQ(c4.freq_ghz, 2.0);
}

TEST(Workload, InputOutputByteHelpers) {
  const auto w = make_benchmark("Denoise", 1.0);
  EXPECT_EQ(workload_input_bytes(w), w.dfg.total_mem_in());
  EXPECT_EQ(workload_output_bytes(w), w.dfg.total_mem_out());
  EXPECT_GT(workload_input_bytes(w), 0u);
}

}  // namespace
}  // namespace ara::workloads
