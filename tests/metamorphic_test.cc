// Metamorphic relations over the island DSE: known input transformations
// must move results in a known direction (or not at all), with a small
// tolerance where event-order scheduling noise is legal. Every simulation
// here runs with the ara::check invariant checker armed, so each relation
// doubles as conservation coverage.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/check.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"
#include "workloads/registry.h"

namespace ara {
namespace {

// Scheduling noise allowance used across the relations (matches the
// MonotonicityProperty tolerance in property_test.cc): "never reduces
// throughput" means "never reduces it by more than 5%".
constexpr double kTolerance = 0.95;

core::RunResult sim_point(const core::ArchConfig& cfg,
                          const workloads::Workload& w) {
  check::ScopedEnable invariants_on;
  return std::move(
      dse::run(dse::SweepRequest{}.add(cfg, w)).front().result);
}

/// 10 ABBs per island, so growing the island count genuinely adds hardware
/// (the ring_design default keeps total_abbs fixed and only re-partitions).
core::ArchConfig islands_config(std::uint32_t islands) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(islands, 2, 32);
  cfg.total_abbs = islands * 10;
  cfg.validate();
  return cfg;
}

TEST(Metamorphic, AddingIslandsNeverReducesThroughput) {
  for (const char* name : {"Denoise", "EKF-SLAM"}) {
    const auto w = workloads::make_benchmark(name, 0.05);
    double prev = 0;
    for (std::uint32_t islands : {3u, 6u, 12u}) {
      const double perf = sim_point(islands_config(islands), w).performance();
      EXPECT_GT(perf, kTolerance * prev)
          << name << ": growing to " << islands << " islands lost throughput";
      prev = perf;
    }
  }
}

TEST(Metamorphic, AddingSpmBanksNeverReducesThroughput) {
  // More SPM ports per bank (the paper's over-provisioning axis) and more
  // ABBs (hence SPM banks) at a fixed island count: both add capacity only.
  const auto w = workloads::make_benchmark("Segmentation", 0.05);
  core::ArchConfig base = core::ArchConfig::ring_design(6, 2, 32);
  const double base_perf = sim_point(base, w).performance();

  core::ArchConfig ported = base;
  ported.island.spm_port_multiplier = 2;
  EXPECT_GT(sim_point(ported, w).performance(), kTolerance * base_perf)
      << "doubling SPM ports reduced throughput";

  core::ArchConfig more_banks = base;
  more_banks.total_abbs = base.total_abbs * 2;
  more_banks.validate();
  EXPECT_GT(sim_point(more_banks, w).performance(), kTolerance * base_perf)
      << "doubling ABB/SPM banks reduced throughput";
}

TEST(Metamorphic, HalvingNocBandwidthNeverIncreasesThroughput) {
  for (const char* name : {"Denoise", "Registration"}) {
    const auto w = workloads::make_benchmark(name, 0.05);
    core::ArchConfig full = core::ArchConfig::ring_design(12, 2, 32);
    core::ArchConfig halved = full;
    halved.mesh.link_bytes_per_cycle /= 2;
    halved.mesh.local_port_bytes_per_cycle /= 2;
    const double perf_full = sim_point(full, w).performance();
    const double perf_halved = sim_point(halved, w).performance();
    EXPECT_LT(kTolerance * perf_halved, perf_full)
        << name << ": halving NoC bandwidth increased throughput";
  }
}

TEST(Metamorphic, OfflineIslandsDoNoWorkAndLoseNone) {
  // Taking islands offline must (a) strictly zero the work done on that
  // hardware, (b) conserve the task total — displaced, not dropped — and
  // (c) never increase throughput.
  check::ScopedEnable invariants_on;
  const auto w = workloads::make_benchmark("Denoise", 0.1);

  auto total_tasks = [](core::System& sys) {
    std::uint64_t total = 0;
    for (IslandId i = 0; i < sys.island_count(); ++i) {
      for (AbbId a = 0; a < sys.island(i).num_abbs(); ++a) {
        total += sys.island(i).engine(a).tasks_executed();
      }
    }
    return total;
  };

  core::System healthy(core::ArchConfig::ring_design(12, 2, 32));
  const auto r_healthy = healthy.run(w);
  const std::uint64_t tasks_healthy = total_tasks(healthy);

  core::System degraded(core::ArchConfig::ring_design(12, 2, 32));
  for (IslandId i = 0; i < 4; ++i) {
    degraded.composer().set_island_offline(i, true);
  }
  const auto r_degraded = degraded.run(w);

  std::uint64_t offline_tasks = 0;
  for (IslandId i = 0; i < 4; ++i) {
    for (AbbId a = 0; a < degraded.island(i).num_abbs(); ++a) {
      offline_tasks += degraded.island(i).engine(a).tasks_executed();
    }
  }
  EXPECT_EQ(offline_tasks, 0u) << "offline islands executed work";
  EXPECT_EQ(total_tasks(degraded), tasks_healthy)
      << "tasks were dropped, not displaced";
  EXPECT_EQ(r_degraded.jobs, r_healthy.jobs);
  EXPECT_LE(r_degraded.performance(), r_healthy.performance())
      << "a third of the chip went offline and throughput went up";
}

TEST(Metamorphic, CacheHitReturnsBitIdenticalResults) {
  check::ScopedEnable invariants_on;
  const auto w = workloads::make_benchmark("EKF-SLAM", 0.05);
  const core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);

  auto snapshot_text = [](const obs::MetricsSnapshot& s) {
    std::ostringstream os;
    obs::MetricsExporter::write_snapshot_exact(os, s);
    return os.str();
  };

  dse::ResultCache cache;  // in-memory
  const auto cold =
      dse::run(dse::SweepRequest{}.add(cfg, w).with_cache(&cache));
  const auto warm =
      dse::run(dse::SweepRequest{}.add(cfg, w).with_cache(&cache));
  ASSERT_EQ(cold.size(), 1u);
  ASSERT_EQ(warm.size(), 1u);
  EXPECT_FALSE(cold[0].from_cache);
  ASSERT_TRUE(warm[0].from_cache);

  EXPECT_EQ(warm[0].result, cold[0].result);  // bit-exact RunResult
  EXPECT_EQ(warm[0].events, cold[0].events);
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    EXPECT_EQ(warm[0].event_kinds[k].count, cold[0].event_kinds[k].count);
  }
  EXPECT_EQ(snapshot_text(warm[0].metrics), snapshot_text(cold[0].metrics));
}

}  // namespace
}  // namespace ara
