// Tests for the IR-authored benchmark kernels and BiN/TLB additions.
#include <gtest/gtest.h>

#include "common/config_error.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "island/tlb.h"
#include "mem/bin_allocator.h"
#include "workloads/ir_kernels.h"
#include "workloads/registry.h"

namespace ara {
namespace {

using workloads::ir::make_ir_workload;

TEST(IrKernels, DeblurStructure) {
  const auto w = make_ir_workload(workloads::ir::deblur_kernel(), 10, 1.0);
  EXPECT_GT(w.dfg.size(), 3u);
  EXPECT_GT(w.dfg.chain_edges(), 3u);
  std::size_t divides = 0, sqrts = 0;
  for (const auto& n : w.dfg.nodes()) {
    divides += n.kind == abb::AbbKind::kDivide;
    sqrts += n.kind == abb::AbbKind::kSqrt;
  }
  EXPECT_EQ(divides, 2u);  // dx, dy normalizations
  EXPECT_EQ(sqrts, 1u);    // TV norm
}

TEST(IrKernels, SegmentationIsChainHeavy) {
  const auto w =
      make_ir_workload(workloads::ir::segmentation_kernel(), 10, 1.0);
  EXPECT_GT(w.dfg.chaining_degree(), 0.5);
  EXPECT_GE(w.dfg.critical_path_nodes(), 4u);
}

TEST(IrKernels, RegistrationUsesPowerBlocks) {
  const auto w =
      make_ir_workload(workloads::ir::registration_kernel(), 10, 1.0);
  std::size_t power = 0;
  for (const auto& n : w.dfg.nodes()) {
    power += n.kind == abb::AbbKind::kPower;
  }
  EXPECT_EQ(power, 2u);  // exp + log
}

TEST(IrKernels, EkfHasTwoOutputs) {
  const auto w = make_ir_workload(workloads::ir::ekf_slam_kernel(), 10, 1.0);
  std::size_t stores = 0;
  for (const auto& n : w.dfg.nodes()) {
    stores += n.mem_out_bytes > 0 ? 1 : 0;
  }
  EXPECT_GE(stores, 2u);  // state + covariance updates
}

TEST(IrKernels, DisparityUsesSumReduction) {
  const auto w = make_ir_workload(workloads::ir::disparity_kernel(), 10, 1.0);
  bool has_sum = false;
  for (const auto& n : w.dfg.nodes()) {
    has_sum |= n.kind == abb::AbbKind::kSum;
  }
  EXPECT_TRUE(has_sum);
}

TEST(IrKernels, AllSevenCompileAndRun) {
  const dataflow::KernelIr kernels[] = {
      workloads::ir::deblur_kernel(256),
      workloads::ir::denoise_kernel(256),
      workloads::ir::segmentation_kernel(256),
      workloads::ir::registration_kernel(256),
      workloads::ir::robot_localization_kernel(256),
      workloads::ir::ekf_slam_kernel(256),
      workloads::ir::disparity_kernel(256),
  };
  for (const auto& k : kernels) {
    auto w = make_ir_workload(k, 5, 1.0);
    w.concurrency = 4;
    core::System sys(core::ArchConfig::ring_design(6, 2, 32));
    const auto r = sys.run(w);
    EXPECT_EQ(r.jobs, 5u) << k.name();
    EXPECT_EQ(r.chains_spilled, 0u) << k.name();
  }
}

// ---- TLB ----

TEST(Tlb, HitsAfterFirstTouch) {
  island::TlbConfig cfg;
  cfg.page_bytes = 4096;
  island::Tlb tlb("t", cfg);
  EXPECT_EQ(tlb.translate(0, 0x1000), 0u + cfg.walk_latency);  // cold miss
  EXPECT_EQ(tlb.translate(200, 0x1800), 200u);                 // same page
  EXPECT_DOUBLE_EQ(tlb.hit_rate(), 0.5);
}

TEST(Tlb, RangeWalksEachNewPage) {
  island::TlbConfig cfg;
  cfg.page_bytes = 4096;
  island::Tlb tlb("t", cfg);
  // 3 pages cold: 3 walks.
  const Tick t = tlb.translate_range(0, 0, 3 * cfg.page_bytes);
  EXPECT_EQ(t, 3 * cfg.walk_latency);
  // Re-walk: all hits.
  EXPECT_EQ(tlb.translate_range(t, 0, 3 * cfg.page_bytes), t);
}

TEST(Tlb, LruEvictionOnOverflow) {
  island::TlbConfig cfg;
  cfg.page_bytes = 4096;
  cfg.entries = 2;
  island::Tlb tlb("t", cfg);
  tlb.translate(0, 0 * cfg.page_bytes);
  tlb.translate(0, 1 * cfg.page_bytes);
  tlb.translate(0, 0 * cfg.page_bytes);  // refresh page 0
  tlb.translate(0, 2 * cfg.page_bytes);  // evicts page 1
  const auto misses_before = tlb.misses();
  tlb.translate(0, 0 * cfg.page_bytes);  // hit
  EXPECT_EQ(tlb.misses(), misses_before);
  tlb.translate(0, 1 * cfg.page_bytes);  // miss (evicted)
  EXPECT_EQ(tlb.misses(), misses_before + 1);
}

TEST(Tlb, FlushForgets) {
  island::Tlb tlb("t", {});
  tlb.translate(0, 0x4000);
  tlb.flush();
  const auto misses = tlb.misses();
  tlb.translate(0, 0x4000);
  EXPECT_EQ(tlb.misses(), misses + 1);
}

TEST(Tlb, RejectsBadConfig) {
  island::TlbConfig cfg;
  cfg.entries = 0;
  EXPECT_THROW(island::Tlb("bad", cfg), ConfigError);
}

TEST(Tlb, DisabledIslandSkipsTranslation) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  cfg.island.tlb_enabled = false;
  core::System sys(cfg);
  auto w = workloads::make_benchmark("Denoise", 0.05);
  sys.run(w);
  EXPECT_EQ(sys.island(0).tlb().hits() + sys.island(0).tlb().misses(), 0u);
}

TEST(Tlb, EnabledIslandTranslates) {
  core::System sys(core::ArchConfig::ring_design(3, 2, 32));
  auto w = workloads::make_benchmark("Denoise", 0.3);
  sys.run(w);
  EXPECT_GT(sys.island(0).tlb().hits() + sys.island(0).tlb().misses(), 0u);
}

TEST(Tlb, HugePagesRescueStreamingHitRate) {
  // With 4 KB pages a 32-entry TLB covers 128 KB — far less than the
  // streaming working set, so it thrashes. 2 MB pages cover the whole
  // buffer rotation; this is why accelerator DMA favours huge pages.
  auto w = workloads::make_benchmark("Denoise", 0.3);
  core::ArchConfig small_pages = core::ArchConfig::ring_design(3, 2, 32);
  small_pages.island.tlb.page_bytes = 4096;
  core::ArchConfig huge_pages = core::ArchConfig::ring_design(3, 2, 32);
  core::System sys_small(small_pages);
  core::System sys_huge(huge_pages);
  sys_small.run(w);
  sys_huge.run(w);
  EXPECT_LT(sys_small.island(0).tlb().hit_rate(), 0.5);
  EXPECT_GT(sys_huge.island(0).tlb().hit_rate(), 0.9);
}

// ---- BiN ----

TEST(BinAllocator, PinsWithinBudget) {
  mem::BinConfig cfg;
  cfg.max_pinned_fraction = 0.5;
  // 4 banks x 16 blocks; budget 8 blocks per bank.
  mem::BinAllocator bin(cfg, std::vector<Bytes>(4, 16 * kBlockBytes));
  const Bytes pinned = bin.pin_range(0, 16 * kBlockBytes);
  EXPECT_EQ(pinned, 16 * kBlockBytes);  // 4 blocks per bank, within budget
  EXPECT_TRUE(bin.is_pinned(0));
  EXPECT_TRUE(bin.is_pinned(15 * kBlockBytes));
  EXPECT_FALSE(bin.is_pinned(16 * kBlockBytes));
}

TEST(BinAllocator, RejectsBeyondBudget) {
  mem::BinConfig cfg;
  cfg.max_pinned_fraction = 0.25;  // 1 block budget per 4-block bank
  mem::BinAllocator bin(cfg, std::vector<Bytes>(2, 4 * kBlockBytes));
  const Bytes pinned = bin.pin_range(0, 8 * kBlockBytes);
  EXPECT_EQ(pinned, 2 * kBlockBytes);  // one per bank
  EXPECT_GT(bin.pin_rejections(), 0u);
}

TEST(BinAllocator, UnpinReleasesBudget) {
  mem::BinConfig cfg;
  cfg.max_pinned_fraction = 0.25;
  mem::BinAllocator bin(cfg, std::vector<Bytes>(1, 4 * kBlockBytes));
  EXPECT_EQ(bin.pin_range(0, kBlockBytes), kBlockBytes);
  EXPECT_EQ(bin.pin_range(kBlockBytes, kBlockBytes), 0u);  // budget full
  bin.unpin_range(0, kBlockBytes);
  EXPECT_EQ(bin.pin_range(kBlockBytes, kBlockBytes), kBlockBytes);
  EXPECT_EQ(bin.total_pinned_bytes(), kBlockBytes);
}

TEST(BinAllocator, PinningImprovesHitRateEndToEnd) {
  auto w = workloads::make_benchmark("Deblur", 0.05);
  core::ArchConfig off = core::ArchConfig::best_config();
  core::ArchConfig on = off;
  on.mem.bin_pinning = true;
  core::System sys_off(off);
  core::System sys_on(on);
  const auto r_off = sys_off.run(w);
  const auto r_on = sys_on.run(w);
  EXPECT_GT(sys_on.memory().bin().total_pinned_bytes(), 0u);
  EXPECT_GE(r_on.l2_hit_rate, r_off.l2_hit_rate);
  EXPECT_LE(r_on.dram_bytes, r_off.dram_bytes);
}

TEST(BinAllocator, RejectsBadConfig) {
  mem::BinConfig cfg;
  cfg.max_pinned_fraction = 0.0;
  EXPECT_THROW(mem::BinAllocator(cfg, {64 * kBlockBytes}), ConfigError);
  EXPECT_THROW(mem::BinAllocator(mem::BinConfig{}, {}), ConfigError);
}

}  // namespace
}  // namespace ara
