// Request-tracing layer tests: the obs clock seam, ScopedSpan phase
// accounting, the sliding-window time-series math, and the JSONL request
// log — all driven by obs::FakeClock so every duration, rate and quantile
// is an exact, reproducible value (no sleeps, no host clock).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "obs/clock.h"
#include "obs/json_check.h"
#include "obs/json_io.h"
#include "obs/request_log.h"
#include "obs/span.h"
#include "obs/window.h"

namespace ara::obs {
namespace {

// ---- clock seam ----

TEST(MonotonicClock, HostClockAdvances) {
  MonotonicClock& c = MonotonicClock::host();
  const std::uint64_t a = c.now_ns();
  const std::uint64_t b = c.now_ns();
  EXPECT_GE(b, a);
  EXPECT_EQ(&MonotonicClock::host(), &c);  // one process-wide instance
}

TEST(FakeClock, MovesOnlyWhenAdvanced) {
  FakeClock c(100);
  EXPECT_EQ(c.now_ns(), 100u);
  EXPECT_EQ(c.now_ns(), 100u);
  c.advance_ns(50);
  EXPECT_EQ(c.now_ns(), 150u);
  c.set_ns(7);
  EXPECT_EQ(c.now_ns(), 7u);
}

// ---- spans ----

TEST(ScopedSpan, ChargesElapsedFakeTimeToOnePhase) {
  FakeClock clock(1000);
  RequestTrace trace;
  trace.clock = &clock;
  {
    ScopedSpan span(&trace, Phase::kSimulate);
    clock.advance_ns(250);
  }
  EXPECT_EQ(trace.phase(Phase::kSimulate), 250u);
  EXPECT_EQ(trace.phase(Phase::kQueued), 0u);
  EXPECT_EQ(trace.phase_total_ns(), 250u);
  // A second span on the same phase accumulates.
  {
    ScopedSpan span(&trace, Phase::kSimulate);
    clock.advance_ns(50);
  }
  EXPECT_EQ(trace.phase(Phase::kSimulate), 300u);
}

TEST(ScopedSpan, NullTraceOrClockIsANoOp) {
  { ScopedSpan span(nullptr, Phase::kQueued); }  // must not crash
  RequestTrace untimed;  // clock stays null
  {
    ScopedSpan span(&untimed, Phase::kQueued);
  }
  EXPECT_EQ(untimed.phase_total_ns(), 0u);
}

TEST(ScopedSpan, StopIsIdempotentAndEarly) {
  FakeClock clock;
  RequestTrace trace;
  trace.clock = &clock;
  {
    ScopedSpan span(&trace, Phase::kSerialize);
    clock.advance_ns(10);
    span.stop();
    clock.advance_ns(1000);  // after stop(); never charged
    span.stop();
  }
  EXPECT_EQ(trace.phase(Phase::kSerialize), 10u);
}

TEST(Phases, NamesAreStableLogSchema) {
  // The JSONL schema's phase keys; renaming one breaks log consumers.
  EXPECT_STREQ(phase_name(Phase::kQueued), "queued");
  EXPECT_STREQ(phase_name(Phase::kCacheLookup), "cache_lookup");
  EXPECT_STREQ(phase_name(Phase::kSimulate), "simulate");
  EXPECT_STREQ(phase_name(Phase::kCoalesceWait), "coalesce_wait");
  EXPECT_STREQ(phase_name(Phase::kSerialize), "serialize");
}

// ---- sliding window ----

constexpr std::uint64_t kSecond = 1000000000ull;

TEST(SlidingWindow, EmptyWindowSummarizesToZeros) {
  SlidingWindow w(kSecond, 60);
  const auto s = w.summarize(5 * kSecond);
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.span_ns, 0u);
  EXPECT_DOUBLE_EQ(s.requests_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(s.p50_ms, 0.0);
}

TEST(SlidingWindow, RatesAndHitRatioAreExactUnderFakeClock) {
  SlidingWindow w(kSecond, 60);
  FakeClock clock(kSecond / 2);
  // One request every second for 4 seconds: 4 points each, 3 avoided.
  for (int i = 0; i < 4; ++i) {
    w.record(clock.now_ns(), /*latency_ns=*/2000000, /*points=*/4,
             /*points_avoided=*/3);
    clock.advance_ns(kSecond);
  }
  const auto s = w.summarize(4 * kSecond);
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.points, 16u);
  EXPECT_EQ(s.points_avoided, 12u);
  EXPECT_DOUBLE_EQ(s.hit_ratio, 0.75);
  // Span runs from the oldest live bucket's start (epoch 0) to now.
  EXPECT_EQ(s.span_ns, 4 * kSecond);
  EXPECT_DOUBLE_EQ(s.requests_per_sec, 1.0);
  // 2 ms lands in the [2^20, 2^21) ns bin; its midpoint is 1.5 * 2^20 ns.
  EXPECT_DOUBLE_EQ(s.p50_ms, 1.5 * (1 << 20) / 1e6);
  EXPECT_DOUBLE_EQ(s.p99_ms, s.p50_ms);
}

TEST(SlidingWindow, OldBucketsRotateOutAndSlotsRecycle) {
  SlidingWindow w(kSecond, 4);  // 4-second window
  w.record(kSecond / 10, 1000, 1, 0);  // epoch 0
  EXPECT_EQ(w.summarize(2 * kSecond).requests, 1u);
  // At t=5s the window is epochs [2,5]; epoch 0 has aged out.
  EXPECT_EQ(w.summarize(5 * kSecond).requests, 0u);
  // Epoch 4 reuses epoch 0's ring slot; the stale bucket must reset, not
  // accumulate into the old counts.
  w.record(4 * kSecond + kSecond / 2, 1000, 1, 0);
  const auto s = w.summarize(5 * kSecond);
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.span_ns, 1 * kSecond);
  EXPECT_DOUBLE_EQ(s.requests_per_sec, 1.0);
}

TEST(SlidingWindow, QuantilesSeparateFastAndSlowRequests) {
  SlidingWindow w(kSecond, 60);
  const std::uint64_t now = kSecond / 4;
  for (int i = 0; i < 99; ++i) w.record(now, 1000000, 1, 0);  // ~1 ms
  w.record(now, kSecond, 1, 0);                               // 1 s outlier
  const auto s = w.summarize(now);
  // 1 ms -> [2^19, 2^20) bin; 1 s -> [2^29, 2^30) bin.
  EXPECT_DOUBLE_EQ(s.p50_ms, 1.5 * (1 << 19) / 1e6);
  EXPECT_DOUBLE_EQ(s.p95_ms, s.p50_ms);
  EXPECT_DOUBLE_EQ(s.p99_ms, 1.5 * (1 << 29) / 1e6);
}

// ---- request log ----

RequestTrace sample_trace() {
  RequestTrace t;
  t.id = 7;
  t.client = "bench \"a\"";  // quote forces JSON escaping
  t.workload = "Denoise";
  t.points = 6;
  t.total_ns = 5000000;  // 5 ms
  t.add_phase(Phase::kQueued, 1000);
  t.add_phase(Phase::kCacheLookup, 2000);
  t.add_phase(Phase::kSimulate, 4000000);
  t.add_phase(Phase::kSerialize, 3000);
  t.hits = 2;
  t.aliases = 1;
  t.followers = 1;
  t.misses = 2;
  return t;
}

TEST(RequestLog, FormatLineIsStrictJsonWithExactDurations) {
  const RequestTrace t = sample_trace();
  const std::string line = RequestLog::format_line(t, /*slow_ms=*/0);
  std::string err;
  ASSERT_TRUE(validate_json(line, &err)) << err << "\n" << line;

  JsonValue parsed;
  ASSERT_TRUE(parse_json(line, &parsed, &err)) << err;
  EXPECT_EQ(parsed.find("trace_id")->as_u64(), 7u);
  EXPECT_EQ(parsed.find("client")->text, "bench \"a\"");
  EXPECT_EQ(parsed.find("total_ns")->as_u64(), 5000000u);
  // Integer-exact per-phase durations under the schema's stable keys, and
  // their sum stays within the request total (phases are disjoint
  // sub-intervals of it).
  const JsonValue* phases = parsed.find("phases_ns");
  ASSERT_NE(phases, nullptr);
  std::uint64_t sum = 0;
  for (const char* key :
       {"queued", "cache_lookup", "simulate", "coalesce_wait", "serialize"}) {
    const JsonValue* v = phases->find(key);
    ASSERT_NE(v, nullptr) << key;
    sum += v->as_u64();
  }
  EXPECT_EQ(sum, t.phase_total_ns());
  EXPECT_LE(sum, t.total_ns);
  const JsonValue* outcomes = parsed.find("outcomes");
  ASSERT_NE(outcomes, nullptr);
  EXPECT_EQ(outcomes->find("hit")->as_u64(), 2u);
  EXPECT_EQ(outcomes->find("alias")->as_u64(), 1u);
  EXPECT_EQ(outcomes->find("follower")->as_u64(), 1u);
  EXPECT_EQ(outcomes->find("miss")->as_u64(), 2u);
  EXPECT_EQ(outcomes->find("failed")->as_u64(), 0u);
}

TEST(RequestLog, SlowFlagUsesThreshold) {
  const RequestTrace t = sample_trace();  // 5 ms total
  EXPECT_NE(RequestLog::format_line(t, 5).find("\"slow\":true"),
            std::string::npos);
  EXPECT_NE(RequestLog::format_line(t, 6).find("\"slow\":false"),
            std::string::npos);
  EXPECT_NE(RequestLog::format_line(t, 0).find("\"slow\":false"),
            std::string::npos);
}

TEST(RequestLog, AppendsJsonlAndRotatesAtMaxBytes) {
  const std::string dir = ::testing::TempDir() + "ara_request_log";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/requests.jsonl";

  RequestLog::Options opts;
  opts.path = path;
  const std::string one_line = RequestLog::format_line(sample_trace(), 0);
  // Room for roughly two lines per file, so 6 appends must rotate.
  opts.max_bytes = (one_line.size() + 1) * 2 + 1;
  RequestLog log(opts);
  ASSERT_TRUE(log.ok());
  for (int i = 0; i < 6; ++i) {
    EXPECT_TRUE(log.append(sample_trace()));
  }
  EXPECT_EQ(log.lines(), 6u);
  EXPECT_GE(log.rotations(), 1u);
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));

  // Every line in both files is a complete, valid JSON object.
  std::size_t lines = 0;
  for (const std::string file : {path, path + ".1"}) {
    std::ifstream in(file);
    std::string line;
    while (std::getline(in, line)) {
      std::string err;
      EXPECT_TRUE(validate_json(line, &err)) << file << ": " << err;
      ++lines;
    }
  }
  // The live file plus the most recent rotation survive (older rotations
  // are replaced, keeping disk usage bounded at ~2x max_bytes).
  EXPECT_GE(lines, 3u);
  EXPECT_LE(lines, 6u);
  std::filesystem::remove_all(dir);
}

TEST(RequestLog, UnwritablePathReportsNotOk) {
  RequestLog::Options opts;
  opts.path = "/nonexistent-dir/requests.jsonl";
  RequestLog log(opts);
  EXPECT_FALSE(log.ok());
  EXPECT_FALSE(log.append(sample_trace()));
  EXPECT_EQ(log.lines(), 0u);
}

}  // namespace
}  // namespace ara::obs
