// Failure-injection and tracing tests: islands going offline mid-run
// (yield / thermal capping), demotion of uncomposable jobs, and the
// Chrome-trace exporter.
#include <gtest/gtest.h>

#include <sstream>

#include "check/check.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "sim/trace.h"
#include "workloads/registry.h"

namespace ara {
namespace {

TEST(FailureInjection, CompletesWithOfflineIslands) {
  core::System sys(core::ArchConfig::ring_design(12, 2, 32));
  // Take a third of the chip offline before the run.
  for (IslandId i = 0; i < 4; ++i) {
    sys.composer().set_island_offline(i, true);
  }
  auto w = workloads::make_benchmark("Denoise", 0.1);
  const auto r = sys.run(w);
  EXPECT_EQ(r.jobs, w.invocations);
  // Offline islands did no compute.
  for (IslandId i = 0; i < 4; ++i) {
    for (AbbId a = 0; a < sys.island(i).num_abbs(); ++a) {
      EXPECT_EQ(sys.island(i).engine(a).tasks_executed(), 0u);
    }
  }
}

TEST(FailureInjection, OfflineIslandsReduceThroughput) {
  auto w = workloads::make_benchmark("Segmentation", 0.1);
  core::System healthy(core::ArchConfig::ring_design(12, 2, 32));
  const auto r_healthy = healthy.run(w);
  core::System degraded(core::ArchConfig::ring_design(12, 2, 32));
  for (IslandId i = 0; i < 6; ++i) {
    degraded.composer().set_island_offline(i, true);
  }
  const auto r_degraded = degraded.run(w);
  EXPECT_EQ(r_degraded.jobs, w.invocations);
  EXPECT_LT(r_degraded.performance(), r_healthy.performance());
}

TEST(FailureInjection, RecoveryAfterBringingIslandBack) {
  core::System sys(core::ArchConfig::ring_design(6, 2, 32));
  sys.composer().set_island_offline(0, true);
  EXPECT_TRUE(sys.composer().island_offline(0));
  sys.composer().set_island_offline(0, false);
  EXPECT_FALSE(sys.composer().island_offline(0));
  auto w = workloads::make_benchmark("Deblur", 0.05);
  const auto r = sys.run(w);
  EXPECT_EQ(r.jobs, w.invocations);
}

TEST(FailureInjection, DemotesJobsWhenChipShrinks) {
  // 3 islands, then all but one offline: a kind-rich job can no longer be
  // composed atomically and must be demoted to per-task mode, yet still
  // completes (possibly spilling chains).
  core::System sys(core::ArchConfig::ring_design(3, 2, 32));
  sys.composer().set_island_offline(0, true);
  sys.composer().set_island_offline(1, true);
  auto w = workloads::make_benchmark("EKF-SLAM", 0.05);
  const auto r = sys.run(w);
  EXPECT_EQ(r.jobs, w.invocations);
  EXPECT_EQ(r.chains_direct + r.chains_spilled,
            w.dfg.chain_edges() * w.invocations);
}

TEST(FailureInjection, MidRunOfflineDrainsInFlightJobsUnderInvariants) {
  // Islands go offline *while jobs are in flight* (thermal capping): tasks
  // already running on them drain to completion, new work routes around
  // them, and — with the invariant checker armed for the whole run — every
  // job, task and chain edge is still conserved. One island later returns
  // to service mid-run, exercising the re-admission path too.
  const core::ArchConfig cfg = core::ArchConfig::ring_design(12, 2, 32);
  auto w = workloads::make_benchmark("Denoise", 0.1);

  // Baseline makespan so the injection ticks are genuinely mid-run.
  Tick makespan = 0;
  {
    core::System probe(cfg);
    makespan = probe.run(w).makespan;
  }
  ASSERT_GT(makespan, 4u);

  check::ScopedEnable invariants_on;
  core::System sys(cfg);
  sys.simulator().schedule_at(makespan / 4, [&sys] {
    for (IslandId i = 0; i < 4; ++i) {
      sys.composer().set_island_offline(i, true);
    }
  });
  sys.simulator().schedule_at(makespan / 2, [&sys] {
    sys.composer().set_island_offline(2, false);
  });

  const auto r = sys.run(w);
  EXPECT_EQ(r.jobs, w.invocations);
  EXPECT_GT(r.makespan, makespan / 4) << "offline event fired after the run";
  EXPECT_EQ(r.chains_direct + r.chains_spilled,
            w.dfg.chain_edges() * w.invocations);
  ASSERT_NE(sys.checker(), nullptr);
  EXPECT_GT(sys.checker()->checks_passed(), 0u);
  EXPECT_TRUE(sys.composer().island_offline(0));
  EXPECT_FALSE(sys.composer().island_offline(2));
}

TEST(FailureInjection, RejectsBadIslandId) {
  core::System sys(core::ArchConfig::ring_design(6, 2, 32));
  EXPECT_THROW(sys.composer().set_island_offline(99, true),
               std::runtime_error);
}

// ---- tracing ----

TEST(Trace, CollectsTaskSpans) {
  core::ArchConfig cfg = core::ArchConfig::ring_design(6, 2, 32);
  cfg.trace_enabled = true;
  core::System sys(cfg);
  auto w = workloads::make_benchmark("Denoise", 0.05);
  const auto r = sys.run(w);
  // At least one span per started task (plus DMA/GAM spans, flow arrows,
  // counter samples and track metadata).
  EXPECT_GE(sys.trace().size(), w.dfg.size() * r.jobs);
}

TEST(Trace, DisabledByDefault) {
  core::System sys(core::ArchConfig::ring_design(6, 2, 32));
  auto w = workloads::make_benchmark("Denoise", 0.05);
  sys.run(w);
  EXPECT_TRUE(sys.trace().empty());
}

TEST(Trace, JsonIsWellFormed) {
  sim::TraceCollector t;
  t.record_span("task \"a\"", 1, 2, 100, 250, "task");
  t.record_instant("spill", 0, 0, 300, "spill");
  std::ostringstream os;
  t.write_json(os);
  const std::string out = os.str();
  EXPECT_EQ(out.front(), '[');
  EXPECT_NE(out.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(out.find(R"("dur":150)"), std::string::npos);
  EXPECT_NE(out.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(out.find("\\\"a\\\""), std::string::npos);  // escaped quotes
}

TEST(Trace, SpanEndClampedToStart) {
  sim::TraceCollector t;
  t.record_span("x", 0, 0, 100, 50, "task");  // end < start
  std::ostringstream os;
  t.write_json(os);
  EXPECT_NE(os.str().find(R"("dur":0)"), std::string::npos);
}

}  // namespace
}  // namespace ara
