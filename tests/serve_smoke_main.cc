// End-to-end smoke driver for ara_serve (the `serve_smoke` ctest entry).
//
// Spawns a real ara_serve daemon on an AF_UNIX socket and exercises the
// full serving story over the wire:
//   1. liveness       — ping/pong;
//   2. cold sweep     — a 2-point Denoise sweep returns entry objects;
//   3. warm repeat    — the identical sweep is served entirely from the
//                       warm cache (every point from_cache, the server's
//                       points_simulated counter unchanged) and the
//                       response's entry objects are BYTE-identical;
//   4. concurrency    — four clients sweep fresh points at once; the
//                       stats endpoint shows exactly one simulation per
//                       distinct point (coalescing + cache, no dupes);
//   5. telemetry      — the stats endpoint's serve.window.* sliding
//                       window shows non-zero request rates and latency
//                       quantiles while traffic flows;
//   6. envelope       — {"v":1,...} frames are served, {"v":2,...} and
//                       unknown types get typed bad_request errors that
//                       list the supported versions/types (byte-compat:
//                       version-less PR-6/7 frames keep working);
//   7. served search  — a search request returns a search_result whose
//                       deterministic "result" block is byte-identical on
//                       rerun, reuses the sweep traffic's cache warmth
//                       (cache_hits > 0), and an overlapping follow-up
//                       search only simulates its new points;
//   8. error tracing  — a bad_request error frame carries the trace_id
//                       minted at admission, and that id joins against
//                       the --log JSONL line recording the failure;
//   9. admission      — a second server with --queue 0 rejects a sweep
//                       with a typed "overloaded" error;
//  10. graceful drain — SIGTERM while a request is in flight: the
//                       response still arrives, the connection sees EOF,
//                       the daemon exits 0 and its on-disk cache persists;
//  11. request log    — every --log JSONL line is strict RFC 8259 JSON
//                       carrying a trace id and per-phase durations that
//                       sum to within the request's total;
//  12. purity         — a daemon without --log (and with --jobs 1) serves
//                       entry objects and search result blocks
//                       byte-identical to the logged --jobs 2 daemon's
//                       (tracing and worker counts never perturb results);
//  13. sharding       — a sweep with "shards":4 (partitioned-kernel
//                       workers) serves entry objects byte-identical to a
//                       separate cold daemon simulating the same fresh
//                       points unsharded, and out-of-range "shards" gets
//                       a typed bad_request naming the field.
//
// Standalone binary (not gtest): it forks/execs and signals real
// processes, which is cleaner outside the gtest harness. Any failure
// prints a FAIL line and exits 1; the driver kills the daemons on exit.
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_check.h"
#include "obs/json_io.h"
#include "serve/protocol.h"

namespace {

using ara::serve::protocol::ReadStatus;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("ok   - %s\n", what.c_str());
  } else {
    std::printf("FAIL - %s\n", what.c_str());
    ++g_failures;
  }
}

pid_t spawn_server(const std::string& binary, const std::string& socket_path,
                   const std::string& cache_dir, const std::string& queue,
                   const std::vector<std::string>& extra = {}) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    std::vector<std::string> args = {binary,    "--socket", socket_path,
                                     "--handlers", "2",     "--jobs",
                                     "2",       "--queue",  queue};
    if (!cache_dir.empty()) {
      args.push_back("--cache");
      args.push_back(cache_dir);
    }
    args.insert(args.end(), extra.begin(), extra.end());
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(binary.c_str(), argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  return pid;
}

/// Connect with retries while the daemon starts up (~seconds budget).
int connect_retry(const std::string& socket_path) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int fd = ara::serve::protocol::connect_unix(socket_path);
    if (fd >= 0) return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return -1;
}

/// One request/response round trip on an existing connection.
bool round_trip(int fd, const std::string& request, std::string* response) {
  return ara::serve::protocol::write_frame(fd, request) &&
         ara::serve::protocol::read_frame(fd, response) == ReadStatus::kOk;
}

/// Fresh-connection convenience.
bool one_shot(const std::string& socket_path, const std::string& request,
              std::string* response) {
  const int fd = ara::serve::protocol::connect_unix(socket_path);
  if (fd < 0) return false;
  const bool ok = round_trip(fd, request, response);
  ::close(fd);
  return ok;
}

std::uint64_t stat_counter(const std::string& socket_path,
                           const std::string& name) {
  std::string response;
  if (!one_shot(socket_path, "{\"type\":\"stats\"}", &response)) return 0;
  ara::obs::JsonValue parsed;
  if (!ara::obs::parse_json(response, &parsed, nullptr)) return 0;
  const ara::obs::JsonValue* metrics = parsed.find("metrics");
  const ara::obs::JsonValue* counters =
      metrics != nullptr ? metrics->find("counters") : nullptr;
  const ara::obs::JsonValue* value =
      counters != nullptr ? counters->find(name) : nullptr;
  return value != nullptr ? value->as_u64() : 0;
}

/// serve.window.* scalar gauges are accumulator-encoded (value in "sum").
double stat_gauge(const std::string& socket_path, const std::string& name) {
  std::string response;
  if (!one_shot(socket_path, "{\"type\":\"stats\"}", &response)) return -1;
  ara::obs::JsonValue parsed;
  if (!ara::obs::parse_json(response, &parsed, nullptr)) return -1;
  const ara::obs::JsonValue* metrics = parsed.find("metrics");
  const ara::obs::JsonValue* accs =
      metrics != nullptr ? metrics->find("accumulators") : nullptr;
  const ara::obs::JsonValue* value =
      accs != nullptr ? accs->find(name) : nullptr;
  const ara::obs::JsonValue* sum =
      value != nullptr ? value->find("sum") : nullptr;
  return sum != nullptr ? sum->as_double() : -1;
}

bool all_points_flag(const std::string& response, const char* flag) {
  ara::obs::JsonValue parsed;
  if (!ara::obs::parse_json(response, &parsed, nullptr)) return false;
  const ara::obs::JsonValue* points = parsed.find("points");
  if (points == nullptr || points->items.empty()) return false;
  for (const auto& point : points->items) {
    const ara::obs::JsonValue* v = point.find(flag);
    if (v == nullptr || !v->boolean) return false;
  }
  return true;
}

std::string sweep_request(const std::string& client, unsigned islands) {
  return "{\"type\":\"sweep\",\"client\":\"" + client +
         "\",\"workload\":\"Denoise\",\"scale\":0.03,\"points\":["
         "{\"islands\":" + std::to_string(islands) +
         ",\"rings\":1,\"width\":16},{\"islands\":" +
         std::to_string(islands) + ",\"rings\":2,\"width\":32}]}";
}

bool dir_has_entries(const std::string& dir) {
  const std::string probe = dir;
  struct stat st{};
  if (::stat(probe.c_str(), &st) != 0) return false;
  // Any regular .json cache file counts; readdir via popen would drag in
  // more machinery than the check deserves, so glob through stat on the
  // directory and rely on the warm-server checks for content.
  return S_ISDIR(st.st_mode);
}

}  // namespace

int main(int argc, char** argv) {
  std::string server_binary;
  std::string out_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--server" && i + 1 < argc) server_binary = argv[++i];
    if (arg == "--dir" && i + 1 < argc) out_dir = argv[++i];
  }
  if (server_binary.empty()) {
    std::fprintf(stderr, "usage: %s --server PATH_TO_ara_serve --dir DIR\n",
                 argv[0]);
    return 2;
  }
  ::mkdir(out_dir.c_str(), 0755);
  const std::string socket_path = out_dir + "/ara_serve.sock";
  const std::string cache_dir = out_dir + "/cache";
  const std::string log_path = out_dir + "/requests.jsonl";
  // A previous run's on-disk cache would make the "cold" sweep below a
  // disk hit (0 simulations); every run starts from an empty cache and an
  // empty request log.
  std::error_code discard;
  std::filesystem::remove_all(cache_dir, discard);
  std::filesystem::remove(log_path, discard);
  std::filesystem::remove(log_path + ".1", discard);

  const pid_t server = spawn_server(server_binary, socket_path, cache_dir,
                                    "8", {"--log", log_path, "--slow-ms", "1"});

  // ---- 1. liveness ----
  const int fd = connect_retry(socket_path);
  check(fd >= 0, "daemon came up and accepts connections");
  std::string response;
  check(fd >= 0 && round_trip(fd, "{\"type\":\"ping\"}", &response) &&
            response == "{\"type\":\"pong\"}",
        "ping answers pong");
  check(round_trip(fd, "this is not json", &response) &&
            response.find("\"code\":\"bad_request\"") != std::string::npos,
        "malformed frame gets a typed bad_request error");

  // ---- 2. cold sweep ----
  std::string cold;
  check(round_trip(fd, sweep_request("alice", 3), &cold) &&
            cold.find("\"type\":\"sweep_result\"") != std::string::npos &&
            cold.find("\"entry\":{") != std::string::npos,
        "cold sweep returns a sweep_result with entry objects");
  const std::uint64_t simulated_cold =
      stat_counter(socket_path, "serve.server.points_simulated");
  check(simulated_cold == 2,
        "cold sweep simulated exactly its 2 distinct points (saw " +
            std::to_string(simulated_cold) + ")");

  // ---- 3. warm repeat ----
  std::string warm;
  check(round_trip(fd, sweep_request("alice", 3), &warm),
        "warm repeat sweep succeeds");
  check(all_points_flag(warm, "from_cache"),
        "warm repeat served every point from the cache");
  check(stat_counter(socket_path, "serve.server.points_simulated") ==
            simulated_cold,
        "warm repeat re-simulated nothing");
  // from_cache/wall_seconds flags differ between cold and warm, but the
  // entry payloads must be byte-identical. Extract each balanced
  // "entry":{...} object for the comparison.
  const auto extract_entries = [](const std::string& s) {
    std::vector<std::string> out;
    const std::string tag = "\"entry\":";
    std::size_t pos = 0;
    while ((pos = s.find(tag, pos)) != std::string::npos) {
      std::size_t i = pos + tag.size();
      const std::size_t start = i;
      int depth = 0;
      bool in_string = false;
      for (; i < s.size(); ++i) {
        const char c = s[i];
        if (in_string) {
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            in_string = false;
          }
        } else if (c == '"') {
          in_string = true;
        } else if (c == '{') {
          ++depth;
        } else if (c == '}' && --depth == 0) {
          ++i;
          break;
        }
      }
      out.push_back(s.substr(start, i - start));
      pos = i;
    }
    return out;
  };
  check(!extract_entries(cold).empty() &&
            extract_entries(cold) == extract_entries(warm),
        "warm entries are byte-identical to the cold ones");

  // ---- 4. concurrent clients on fresh points ----
  const std::uint64_t before =
      stat_counter(socket_path, "serve.server.points_simulated");
  {
    std::vector<std::thread> clients;
    std::vector<bool> ok(4, false);
    for (int c = 0; c < 4; ++c) {
      clients.emplace_back([&, c] {
        std::string r;
        // Two clients share islands=6, two share islands=12: 4 distinct
        // points total across 8 submitted.
        ok[static_cast<std::size_t>(c)] =
            one_shot(socket_path,
                     sweep_request("client-" + std::to_string(c),
                                   c < 2 ? 6 : 12),
                     &r) &&
            r.find("\"type\":\"sweep_result\"") != std::string::npos;
      });
    }
    for (auto& t : clients) t.join();
    bool all_ok = true;
    for (const bool b : ok) all_ok = all_ok && b;
    check(all_ok, "4 concurrent clients all got sweep results");
  }
  const std::uint64_t after =
      stat_counter(socket_path, "serve.server.points_simulated");
  check(after - before == 4,
        "8 concurrent points -> exactly 4 simulations (coalesced/cached), "
        "saw " + std::to_string(after - before));

  // ---- 5. live time-series telemetry ----
  // Eight sweeps have flowed by now; the 60-second sliding window must
  // show them with non-zero rates and latency quantiles.
  const std::uint64_t win_requests =
      stat_counter(socket_path, "serve.window.requests");
  check(win_requests >= 6,
        "serve.window.requests counts the sweeps so far (saw " +
            std::to_string(win_requests) + ")");
  check(stat_counter(socket_path, "serve.window.points") > 0,
        "serve.window.points is non-zero");
  check(stat_counter(socket_path, "serve.window.points_avoided") > 0,
        "serve.window.points_avoided reflects the warm/coalesced points");
  const double rps = stat_gauge(socket_path, "serve.window.req_per_sec");
  check(rps > 0.0, "serve.window.req_per_sec gauge is positive (saw " +
                       std::to_string(rps) + ")");
  const double p50 = stat_gauge(socket_path, "serve.window.p50_ms");
  const double p99 = stat_gauge(socket_path, "serve.window.p99_ms");
  check(p50 > 0.0 && p99 >= p50,
        "latency quantiles are positive and ordered (p50 " +
            std::to_string(p50) + " ms, p99 " + std::to_string(p99) + " ms)");
  const double hit_ratio = stat_gauge(socket_path, "serve.window.hit_ratio");
  check(hit_ratio > 0.0 && hit_ratio <= 1.0,
        "serve.window.hit_ratio is in (0, 1] (saw " +
            std::to_string(hit_ratio) + ")");

  // ---- 6. versioned envelope ----
  std::string versioned;
  check(round_trip(fd, "{\"v\":1,\"type\":\"ping\"}", &versioned) &&
            versioned == "{\"type\":\"pong\"}",
        "explicit v:1 ping answers pong");
  check(round_trip(fd, "{\"v\":2,\"type\":\"ping\"}", &versioned) &&
            versioned.find("\"code\":\"bad_request\"") !=
                std::string::npos &&
            versioned.find("unsupported protocol version '2'") !=
                std::string::npos,
        "v:2 frame gets a typed error naming the unsupported version");
  check(round_trip(fd, "{\"type\":\"teapot\"}", &versioned) &&
            versioned.find("\"code\":\"bad_request\"") !=
                std::string::npos &&
            versioned.find("ping|search|stats|sweep") != std::string::npos,
        "unknown type error lists the supported request registry");

  // ---- 7. served search ----
  // Byte-extract the first balanced JSON object following `tag`.
  const auto extract_object = [](const std::string& s,
                                 const std::string& tag) -> std::string {
    std::size_t pos = s.find(tag);
    if (pos == std::string::npos) return "";
    std::size_t i = pos + tag.size();
    const std::size_t start = i;
    int depth = 0;
    bool in_string = false;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (in_string) {
        if (c == '\\') {
          ++i;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{') {
        ++depth;
      } else if (c == '}' && --depth == 0) {
        ++i;
        break;
      }
    }
    return s.substr(start, i - start);
  };
  const auto response_u64 = [](const std::string& s, const char* key,
                               std::uint64_t* out) {
    ara::obs::JsonValue parsed;
    if (!ara::obs::parse_json(s, &parsed, nullptr)) return false;
    const ara::obs::JsonValue* v = parsed.find(key);
    if (v == nullptr) return false;
    *out = v->as_u64();
    return true;
  };
  // A 4-point space (islands x rings at width 16) that overlaps the
  // sweep traffic above: (3,1,16) and (6,1,16) are already cached, so
  // even this first search must report cache hits.
  const std::string search_req =
      "{\"v\":1,\"type\":\"search\",\"client\":\"alice\","
      "\"workload\":\"Denoise\",\"scale\":0.03,\"budget\":4,\"seed\":5,"
      "\"space\":{\"islands\":[3,6],\"rings\":[1,2],\"widths\":[16],"
      "\"ports\":[1],\"sharing\":[false]}}";
  std::string search_cold;
  check(round_trip(fd, search_req, &search_cold) &&
            search_cold.find("\"type\":\"search_result\"") !=
                std::string::npos,
        "search request returns a search_result");
  const std::string result_cold = extract_object(search_cold, "\"result\":");
  std::uint64_t search_hits = 0;
  std::uint64_t search_sims = 0;
  check(response_u64(search_cold, "cache_hits", &search_hits) &&
            search_hits > 0,
        "first search reuses the sweep traffic's cache warmth (saw " +
            std::to_string(search_hits) + " hits)");
  check(response_u64(search_cold, "simulated", &search_sims) &&
            search_hits + search_sims == 4,
        "search evaluations are accounted as hits or simulations");

  std::string search_warm;
  check(round_trip(fd, search_req, &search_warm) &&
            extract_object(search_warm, "\"result\":") == result_cold &&
            !result_cold.empty(),
        "rerun search result block is byte-identical");
  std::uint64_t warm_sims = 1;
  check(response_u64(search_warm, "simulated", &warm_sims) && warm_sims == 0,
        "rerun search simulated nothing (saw " + std::to_string(warm_sims) +
            ")");

  // Overlapping follow-up: a strict superset space (rings 1-3) may only
  // simulate the two new ring-3 points.
  const std::string search_wide =
      "{\"v\":1,\"type\":\"search\",\"client\":\"alice\","
      "\"workload\":\"Denoise\",\"scale\":0.03,\"budget\":6,\"seed\":5,"
      "\"space\":{\"islands\":[3,6],\"rings\":[1,2,3],\"widths\":[16],"
      "\"ports\":[1],\"sharing\":[false]}}";
  std::string search_overlap;
  std::uint64_t overlap_sims = 0;
  std::uint64_t overlap_hits = 0;
  check(round_trip(fd, search_wide, &search_overlap) &&
            response_u64(search_overlap, "simulated", &overlap_sims) &&
            response_u64(search_overlap, "cache_hits", &overlap_hits) &&
            overlap_sims == 2 && overlap_hits == 4,
        "overlapping search only simulates its 2 new points (saw " +
            std::to_string(overlap_sims) + " sims, " +
            std::to_string(overlap_hits) + " hits)");
  check(stat_counter(socket_path, "serve.search.requests") == 3,
        "serve.search.requests counted all three searches");

  // ---- 8. error frames join the request log via trace_id ----
  std::string bad_sweep_response;
  std::uint64_t error_trace_id = 0;
  check(round_trip(fd,
                   "{\"type\":\"sweep\",\"client\":\"alice\","
                   "\"workload\":\"NoSuchBenchmark\"}",
                   &bad_sweep_response) &&
            bad_sweep_response.find("\"code\":\"bad_request\"") !=
                std::string::npos &&
            response_u64(bad_sweep_response, "trace_id", &error_trace_id) &&
            error_trace_id > 0,
        "bad-workload sweep error frame carries its admission trace_id");

  // ---- 9. admission control ----
  const std::string socket2 = out_dir + "/ara_serve_q0.sock";
  const pid_t server2 = spawn_server(server_binary, socket2, "", "0");
  const int fd2 = connect_retry(socket2);
  check(fd2 >= 0, "queue-0 daemon came up");
  std::string rejected;
  check(fd2 >= 0 && round_trip(fd2, sweep_request("bob", 24), &rejected) &&
            rejected.find("\"code\":\"overloaded\"") != std::string::npos,
        "queue-0 daemon rejects a sweep with 'overloaded'");
  if (fd2 >= 0) ::close(fd2);
  ::kill(server2, SIGTERM);
  int status2 = 0;
  ::waitpid(server2, &status2, 0);
  check(WIFEXITED(status2) && WEXITSTATUS(status2) == 0,
        "queue-0 daemon exits 0 on SIGTERM");

  // ---- 10. graceful drain ----
  // Fire a sweep of a fresh (heavier) point and SIGTERM the daemon while
  // it is in flight: the response must still arrive, then EOF.
  check(ara::serve::protocol::write_frame(fd, sweep_request("alice", 24)),
        "in-flight sweep submitted before SIGTERM");
  // Give the session thread time to read the frame and enter handle();
  // the 24-island sweep runs long enough that the signal lands mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::kill(server, SIGTERM);
  std::string draining_response;
  check(ara::serve::protocol::read_frame(fd, &draining_response) ==
                ReadStatus::kOk &&
            draining_response.find("\"type\":\"sweep_result\"") !=
                std::string::npos,
        "in-flight sweep completed during drain");
  std::string eof_probe;
  check(ara::serve::protocol::read_frame(fd, &eof_probe) == ReadStatus::kEof,
        "connection reaches EOF after drain");
  ::close(fd);
  int status = 0;
  ::waitpid(server, &status, 0);
  check(WIFEXITED(status) && WEXITSTATUS(status) == 0,
        "daemon exits 0 after graceful drain");
  check(dir_has_entries(cache_dir), "on-disk cache directory was created");

  // ---- 11. JSONL request log ----
  // The daemon has exited, so the log is complete: cold + warm + 4
  // concurrent + 3 searches + bad-workload error + drain sweep = 11
  // lines, each a strict RFC 8259 JSON object carrying a trace id and
  // per-phase durations bounded by the request total.
  {
    std::ifstream in(log_path);
    check(in.good(), "request log exists at --log path");
    std::size_t lines = 0;
    std::size_t timed = 0;
    std::size_t slow = 0;
    bool all_valid = true;
    bool all_traced = true;
    bool phases_bounded = true;
    bool error_line_joined = false;
    std::string line;
    while (std::getline(in, line)) {
      ++lines;
      std::string err;
      if (!ara::obs::validate_json(line, &err)) {
        std::printf("    invalid JSONL line: %s (%s)\n", line.c_str(),
                    err.c_str());
        all_valid = false;
        continue;
      }
      ara::obs::JsonValue parsed;
      if (!ara::obs::parse_json(line, &parsed, nullptr)) {
        all_valid = false;
        continue;
      }
      const ara::obs::JsonValue* trace_id = parsed.find("trace_id");
      if (trace_id == nullptr || trace_id->as_u64() == 0) all_traced = false;
      const ara::obs::JsonValue* total = parsed.find("total_ns");
      const ara::obs::JsonValue* phases = parsed.find("phases_ns");
      std::uint64_t phase_sum = 0;
      for (const char* key : {"queued", "cache_lookup", "simulate",
                              "coalesce_wait", "serialize"}) {
        const ara::obs::JsonValue* v =
            phases != nullptr ? phases->find(key) : nullptr;
        if (v == nullptr) {
          all_valid = false;
        } else {
          phase_sum += v->as_u64();
        }
      }
      if (total == nullptr || phase_sum > total->as_u64()) {
        phases_bounded = false;
      }
      if (total != nullptr && total->as_u64() > 0) ++timed;
      const ara::obs::JsonValue* slow_flag = parsed.find("slow");
      if (slow_flag != nullptr && slow_flag->boolean) ++slow;
      // The bad-workload error frame's trace_id must join against the
      // log line that recorded the failure.
      const ara::obs::JsonValue* err_field = parsed.find("error");
      if (trace_id != nullptr && trace_id->as_u64() == error_trace_id &&
          err_field != nullptr && err_field->text == "bad_request") {
        error_line_joined = true;
      }
    }
    check(lines == 11, "request log holds one line per queued request "
                       "(saw " + std::to_string(lines) + ", want 11)");
    check(error_line_joined,
          "the error frame's trace_id joins a bad_request log line");
    check(all_valid, "every request-log line is strict RFC 8259 JSON with "
                     "the full phase schema");
    check(all_traced, "every request-log line carries a non-zero trace id");
    check(phases_bounded,
          "per-phase durations sum to within each request's total");
    check(timed == lines, "every logged request has a non-zero total_ns");
    check(slow > 0, "--slow-ms 1 flagged at least one sweep as slow (saw " +
                        std::to_string(slow) + ")");
  }

  // ---- 12. tracing/logging/jobs never perturb results ----
  // A fresh daemon with no --log, a cold in-memory cache, and --jobs 1
  // (last flag wins over spawn_server's default --jobs 2) must serve the
  // same sweep with byte-identical entry objects and the same search
  // with a byte-identical deterministic "result" block: the tracing and
  // logging layers observe the pipeline, and the worker count only
  // changes how fast evaluations run, never which ones or their bits.
  const std::string socket3 = out_dir + "/ara_serve_nolog.sock";
  const pid_t server3 =
      spawn_server(server_binary, socket3, "", "8", {"--jobs", "1"});
  const int fd3 = connect_retry(socket3);
  check(fd3 >= 0, "no-log daemon came up");
  std::string unlogged;
  check(fd3 >= 0 && round_trip(fd3, sweep_request("alice", 3), &unlogged) &&
            unlogged.find("\"type\":\"sweep_result\"") != std::string::npos,
        "no-log daemon answers the original cold sweep");
  check(!extract_entries(cold).empty() &&
            extract_entries(unlogged) == extract_entries(cold),
        "entries are byte-identical with and without request logging");
  std::string unlogged_search;
  check(fd3 >= 0 && round_trip(fd3, search_req, &unlogged_search) &&
            extract_object(unlogged_search, "\"result\":") == result_cold &&
            !result_cold.empty(),
        "search result block is byte-identical across --jobs 1/2 and "
        "cold/warm caches");
  // ---- 13. sharded execution serves identical bytes ----
  // "shards" picks the partitioned kernel's worker count per simulated
  // point — an execution resource, deliberately not part of the cache
  // key. The no-log daemon simulates fresh 8-island points at shards:4; a
  // separate cold daemon simulates the same points unsharded; the served
  // entry objects must be byte-identical.
  const auto sharded_sweep = [](const std::string& client, unsigned islands,
                                unsigned shards) {
    return "{\"type\":\"sweep\",\"client\":\"" + client +
           "\",\"workload\":\"Denoise\",\"scale\":0.03,\"shards\":" +
           std::to_string(shards) + ",\"points\":[{\"islands\":" +
           std::to_string(islands) +
           ",\"rings\":1,\"width\":16},{\"islands\":" +
           std::to_string(islands) + ",\"rings\":2,\"width\":32}]}";
  };
  std::string sharded;
  check(fd3 >= 0 && round_trip(fd3, sharded_sweep("alice", 8, 4), &sharded) &&
            sharded.find("\"type\":\"sweep_result\"") != std::string::npos &&
            !all_points_flag(sharded, "from_cache"),
        "shards:4 sweep of fresh 8-island points simulates and succeeds");
  std::string bad_shards;
  check(fd3 >= 0 &&
            round_trip(fd3, sharded_sweep("alice", 8, 17), &bad_shards) &&
            bad_shards.find("\"code\":\"bad_request\"") != std::string::npos &&
            bad_shards.find("shards") != std::string::npos,
        "shards:17 gets a typed bad_request naming the field");

  const std::string socket4 = out_dir + "/ara_serve_serial.sock";
  const pid_t server4 =
      spawn_server(server_binary, socket4, "", "8", {"--jobs", "1"});
  const int fd4 = connect_retry(socket4);
  check(fd4 >= 0, "unsharded reference daemon came up");
  std::string serial;
  check(fd4 >= 0 && round_trip(fd4, sweep_request("alice", 8), &serial) &&
            serial.find("\"type\":\"sweep_result\"") != std::string::npos,
        "reference daemon sweeps the same 8-island points unsharded");
  check(!extract_entries(sharded).empty() &&
            extract_entries(sharded) == extract_entries(serial),
        "shards:4 entries are byte-identical to the unsharded run's");
  if (fd4 >= 0) ::close(fd4);
  ::kill(server4, SIGTERM);
  int status4 = 0;
  ::waitpid(server4, &status4, 0);
  check(WIFEXITED(status4) && WEXITSTATUS(status4) == 0,
        "reference daemon exits 0 on SIGTERM");

  if (fd3 >= 0) ::close(fd3);
  ::kill(server3, SIGTERM);
  int status3 = 0;
  ::waitpid(server3, &status3, 0);
  check(WIFEXITED(status3) && WEXITSTATUS(status3) == 0,
        "no-log daemon exits 0 on SIGTERM");

  if (g_failures != 0) {
    std::printf("serve_smoke: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("serve_smoke: all checks passed\n");
  return 0;
}
