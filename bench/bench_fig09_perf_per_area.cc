// Figure 9: performance per unit area (compute density) of the SPM<->DMA
// network designs, all seven benchmarks at 3 and 24 islands, normalized to
// the proxy crossbar at the respective island count.
//
// Paper shape: compute density DROPS as network resources are added —
// under-provisioned networks win on density even though performance
// suffers; there is little justification for enlarging the network far
// beyond the NoC-interface bandwidth cap.
#include <iostream>

#include "bench_util.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig09() {
  using namespace ara;
  benchutil::print_header(
      "Figure 9 (performance per unit island area; normalized to proxy "
      "xbar)",
      "density falls as network resources grow; small networks see high "
      "utilization");

  const double scale = benchutil::bench_scale();
  for (std::uint32_t islands : {3u, 24u}) {
    std::cout << "\n--- " << islands << " islands ---\n";
    const auto points = dse::paper_network_configs(islands);
    std::vector<std::string> headers = {"benchmark"};
    for (const auto& p : points) headers.push_back(p.label);
    dse::Table t(std::move(headers));

    for (const auto& name : workloads::benchmark_names()) {
      auto wl = workloads::make_benchmark(name, scale);
      std::vector<std::string> row = {name};
      double base = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto r = dse::run_point(points[i].config, wl);
        if (i == 0) base = r.perf_per_island_area();
        row.push_back(dse::Table::num(
            benchutil::norm(r.perf_per_island_area(), base), 3));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
}

void micro_area_rollup(benchmark::State& state) {
  ara::core::System system(ara::core::ArchConfig::ring_design(3, 2, 32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.islands_area_mm2());
  }
}
BENCHMARK(micro_area_rollup);

}  // namespace

int main(int argc, char** argv) {
  fig09();
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
