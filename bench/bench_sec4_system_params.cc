// Sec. 4: the simulated system's parameters ("Table 2 of [8], with the
// exception that the system in this work is configured with 4 memory
// controllers (avg. 180-cycle latency @ 10 GB/s) and 120 ABBs (78
// polynomial, 18 divide, 9 sqrt, 6 power, 9 sum) with uniform distribution
// of ABBs among the islands"). This bench echoes the substrate parameters
// the simulator instantiates, with the paper-stated values called out.
#include <iostream>

#include "bench_util.h"
#include "abb/abb_types.h"
#include "core/arch_config.h"
#include "core/system.h"
#include "dse/table.h"

namespace {

void sec4() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 4 (simulated system parameters)",
      "4 MCs @ 180 cycles / 10 GB/s; 120 ABBs = 78/18/9/6/9; uniform "
      "island distribution");

  const core::ArchConfig cfg = core::ArchConfig::best_config();
  dse::Table t({"parameter", "value", "paper-stated"});
  t.add_row({"memory controllers",
             std::to_string(cfg.mem.num_memory_controllers), "4"});
  t.add_row({"MC latency (avg cycles)",
             std::to_string(cfg.mem.mc.avg_latency), "180"});
  t.add_row({"MC bandwidth (B/cycle @1GHz)",
             dse::Table::num(cfg.mem.mc.bandwidth_bytes_per_cycle, 0),
             "10 GB/s"});
  t.add_row({"total ABBs", std::to_string(cfg.total_abbs), "120"});
  const auto mix = abb::paper_mix();
  t.add_row({"  polynomial", std::to_string(mix.count[0]), "78"});
  t.add_row({"  divide", std::to_string(mix.count[1]), "18"});
  t.add_row({"  sqrt", std::to_string(mix.count[2]), "9"});
  t.add_row({"  power", std::to_string(mix.count[3]), "6"});
  t.add_row({"  sum", std::to_string(mix.count[4]), "9"});
  t.add_row({"shared L2 banks", std::to_string(cfg.mem.num_l2_banks),
             "(Table 2 of [8])"});
  t.add_row({"L2 bank capacity (KiB)",
             std::to_string(cfg.mem.l2.capacity / 1024), "-"});
  t.add_row({"NoC", std::to_string(cfg.mesh.width) + "x" +
                        std::to_string(cfg.mesh.height) + " mesh, " +
                        dse::Table::num(cfg.mesh.link_bytes_per_cycle, 0) +
                        " B/cyc links", "(GEMS-based)"});
  t.add_row({"cores", std::to_string(cfg.num_cores), "-"});
  t.add_row({"DMA chunk (B)", std::to_string(cfg.island.dma_chunk_bytes),
             "-"});
  t.add_row({"island TLB", std::to_string(cfg.island.tlb.entries) +
                               " entries, " +
                               std::to_string(cfg.island.tlb.page_bytes /
                                              (1024 * 1024)) +
                               " MiB pages", "(small TLB, Sec. 2)"});
  t.print(std::cout);

  std::cout << "\nper-kind ABB parameters:\n";
  dse::Table a({"kind", "latency", "II", "in words", "min ports",
                "SPM KiB", "area mm2", "pJ/elem"});
  for (abb::AbbKind k : abb::asic_kinds()) {
    const auto& p = abb::params(k);
    a.add_row({p.name, std::to_string(p.pipeline_latency),
               std::to_string(p.initiation_interval),
               std::to_string(p.input_words),
               std::to_string(p.min_spm_ports),
               std::to_string(p.spm_bytes / 1024),
               dse::Table::num(p.area_mm2, 3),
               dse::Table::num(p.energy_pj_per_elem, 0)});
  }
  a.print(std::cout);

  // Island distribution check: uniform per Sec. 4.
  core::System sys(cfg);
  std::cout << "\nABBs per island: " << cfg.abbs_per_island()
            << " (uniform across " << cfg.num_islands << " islands)\n";
}

void micro_mix_scaling(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ara::abb::scaled_mix(120).total());
  }
}
BENCHMARK(micro_mix_scaling);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec4();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
