// Sec. 5.7: area & compute density. The SPM<->DMA network accounts for
// 16-40% of island area for ring networks (depending on link width and
// ring count) and 44-50% for crossbar networks on large islands.
#include <iostream>

#include "bench_util.h"
#include "core/system.h"
#include "dse/table.h"
#include "island/island_config.h"

namespace {

void sec57() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 5.7 (island area breakdown by SPM<->DMA network)",
      "ring: 16-40% of island area; crossbar: 44-50% for large islands");

  dse::Table t({"islands", "ABBs/isl", "network", "net mm2", "island mm2",
                "net share"});
  struct Net {
    const char* label;
    island::SpmDmaTopology topo;
    std::uint32_t rings;
    Bytes width;
  };
  const Net nets[] = {
      {"1-ring,16B", island::SpmDmaTopology::kRing, 1, 16},
      {"1-ring,32B", island::SpmDmaTopology::kRing, 1, 32},
      {"2-ring,32B", island::SpmDmaTopology::kRing, 2, 32},
      {"3-ring,32B", island::SpmDmaTopology::kRing, 3, 32},
      {"proxy-xbar", island::SpmDmaTopology::kProxyXbar, 1, 32},
  };
  for (std::uint32_t islands : {3u, 6u, 12u, 24u}) {
    for (const auto& net : nets) {
      core::ArchConfig cfg = core::ArchConfig::paper_baseline(islands);
      cfg.island.net.topology = net.topo;
      cfg.island.net.num_rings = net.rings;
      cfg.island.net.link_bytes = net.width;
      core::System system(cfg);
      const auto& isl = system.island(0);
      t.add_row({std::to_string(islands), std::to_string(120 / islands),
                 net.label, dse::Table::num(isl.net_area_mm2(), 2),
                 dse::Table::num(isl.total_area_mm2(), 2),
                 dse::Table::pct(isl.net_area_mm2() / isl.total_area_mm2())});
    }
  }
  t.print(std::cout);

  // Full-island component breakdown at the 3-island (40 ABB) point.
  std::cout << "\ncomponent breakdown, 40-ABB island with 2-ring,32B:\n";
  core::ArchConfig cfg = core::ArchConfig::ring_design(3, 2, 32);
  core::System system(cfg);
  const auto& isl = system.island(0);
  dse::Table c({"component", "mm2", "share"});
  const double total = isl.total_area_mm2();
  c.add_row({"ABB compute engines", dse::Table::num(isl.compute_area_mm2(), 2),
             dse::Table::pct(isl.compute_area_mm2() / total)});
  c.add_row({"SPM banks", dse::Table::num(isl.spm_area_mm2(), 2),
             dse::Table::pct(isl.spm_area_mm2() / total)});
  c.add_row({"ABB<->SPM crossbars",
             dse::Table::num(isl.abb_spm_xbar_area_mm2(), 2),
             dse::Table::pct(isl.abb_spm_xbar_area_mm2() / total)});
  c.add_row({"SPM<->DMA network", dse::Table::num(isl.net_area_mm2(), 2),
             dse::Table::pct(isl.net_area_mm2() / total)});
  c.print(std::cout);
}

void micro_island_build(benchmark::State& state) {
  for (auto _ : state) {
    ara::core::System system(ara::core::ArchConfig::ring_design(3, 2, 32));
    benchmark::DoNotOptimize(system.island(0).total_area_mm2());
  }
}
BENCHMARK(micro_island_build);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec57();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
