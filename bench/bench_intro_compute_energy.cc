// Sec. 1: compute-unit energy, processor vs dedicated 45nm ASIC blocks.
// Paper: add 0.122 vs 0.002 nJ (61X), mul 0.120 vs 0.007 (17X),
//        SP FP 0.150 vs 0.008 (19X).
#include <iostream>

#include "bench_util.h"
#include "dse/table.h"
#include "power/compute_unit_energy.h"

namespace {

void intro_energy() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 1 compute-unit energy comparison",
      "ASIC saves 61X (add), 17X (mul), 19X (SP FP)");

  dse::Table t({"operation", "processor nJ", "ASIC nJ", "ASIC clock",
                "saving factor"});
  for (const auto& e : power::compute_op_table()) {
    t.add_row({e.name, dse::Table::num(e.processor_nj, 3),
               dse::Table::num(e.asic_nj, 3),
               dse::Table::num(e.asic_clock_mhz / 1000.0, 1) + " GHz",
               dse::Table::num(e.processor_nj / e.asic_nj, 0) + "X"});
  }
  t.print(std::cout);

  std::cout << "\nInefficiency decomposition (paper's three sources):\n";
  dse::Table d({"operation", "excess functionality", "excess precision",
                "dynamic logic"});
  for (const auto& e : power::compute_op_table()) {
    const auto dec = power::saving_decomposition(e.op);
    d.add_row({e.name, dse::Table::num(dec.excess_functionality, 1) + "X",
               dse::Table::num(dec.excess_precision, 1) + "X",
               dse::Table::num(dec.dynamic_logic, 1) + "X"});
  }
  d.print(std::cout);
}

void micro_saving_factor(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ara::power::asic_saving_factor(ara::power::ComputeOp::kAdd32));
  }
}
BENCHMARK(micro_saving_factor);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  intro_energy();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
