// Sec. 5.3: ring width and ring count. The paper finds a 2-ring network of
// 16-byte links performs almost identically to a 1-ring network of 32-byte
// links (with simpler routers), because the SPM<->DMA network moves data
// at cache-block/half-block granularity, so narrowing below a half block
// buys nothing.
#include <iostream>

#include "bench_util.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void sec53() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 5.3 (ring width & ring count)",
      "2-ring 16B ~= 1-ring 32B; multiple narrow rings only help when "
      "packets are smaller than the ring width");

  const double scale = benchutil::bench_scale();
  struct Design {
    const char* label;
    std::uint32_t rings;
    Bytes width;
  };
  const Design designs[] = {
      {"1-ring,16B", 1, 16}, {"2-ring,16B", 2, 16}, {"1-ring,32B", 1, 32},
      {"2-ring,32B", 2, 32}, {"3-ring,32B", 3, 32}, {"1-ring,64B", 1, 64},
  };

  std::vector<std::string> headers = {"benchmark"};
  for (const auto& d : designs) headers.push_back(d.label);
  dse::Table t(std::move(headers));

  for (const char* name : {"Denoise", "Segmentation", "EKF-SLAM"}) {
    auto wl = workloads::make_benchmark(name, scale);
    std::vector<std::string> row = {name};
    double base = 0;
    for (std::size_t i = 0; i < std::size(designs); ++i) {
      const auto cfg =
          core::ArchConfig::ring_design(3, designs[i].rings, designs[i].width);
      const auto r = benchutil::metered_point(
          std::string(name) + ", " + designs[i].label, cfg, wl);
      if (i == 0) base = r.performance();
      row.push_back(dse::Table::num(benchutil::norm(r.performance(), base), 3));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\n(2-ring,16B should track 1-ring,32B closely; widening a "
               "single ring to 64B buys little beyond block granularity)\n";
}

void micro_ring_transfer(benchmark::State& state) {
  ara::island::SpmDmaNetConfig cfg;
  cfg.topology = ara::island::SpmDmaTopology::kRing;
  cfg.num_rings = 2;
  cfg.link_bytes = 16;
  auto net = ara::island::make_spm_dma_net("bench", cfg, 40);
  ara::Tick t = 0;
  for (auto _ : state) {
    t = net->to_spm(t, 20, 512);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(micro_ring_transfer);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec53();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
