// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints the paper artifact it regenerates (same rows /
// series the paper reports, normalized the same way) and then runs a small
// google-benchmark suite measuring the simulator machinery behind it.
// ARA_BENCH_SCALE (env) scales workload invocation counts; default 0.5
// keeps full-suite runtime moderate while leaving steady-state behaviour
// unchanged. The shared flags — `--jobs N` (sweep workers), `--shards N`
// (partitioned-kernel workers inside each simulation), `--metrics F`
// (stat-registry export) and `--cache DIR` (on-disk result memoization),
// each with an ARA_* env fallback — are parsed once by parse_cli() via
// common::CliOptions and stripped before google-benchmark sees argv.
#pragma once

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/check.h"
#include "common/cli_options.h"
#include "dse/parallel_sweep.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"
#include "sim/event_queue.h"

namespace ara::benchutil {

inline double bench_scale() {
  if (const char* s = std::getenv("ARA_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.5;
}

namespace detail {
inline std::optional<dse::ResultCache>& cache_storage() {
  static std::optional<dse::ResultCache> cache;
  return cache;
}
inline unsigned& shards_storage() {
  static unsigned shards = 1;
  return shards;
}
}  // namespace detail

/// The process-wide ResultCache behind --cache / ARA_CACHE; null until
/// parse_cli sees the flag (memoization off).
inline dse::ResultCache* sweep_cache() {
  auto& c = detail::cache_storage();
  return c.has_value() ? &*c : nullptr;
}

/// The --shards / ARA_SHARDS value parse_cli saw (default 1): partitioned-
/// kernel workers inside every simulation the bench runs. Results are
/// byte-identical for every value; only wall time changes.
inline unsigned bench_shards() { return detail::shards_storage(); }

/// Parse and strip the shared bench flags (--jobs / --shards / --metrics /
/// --cache / --check, with ARA_* env fallbacks) out of argv —
/// google-benchmark rejects flags it does not know. A --cache directory
/// activates sweep_cache(); --check arms the invariant checker on every
/// simulated System. Exits 2 on a malformed value.
inline common::CliOptions parse_cli(int& argc, char** argv) {
  auto opts = common::CliOptions::parse(
      argc, argv,
      common::CliOptions::kJobs | common::CliOptions::kShards |
          common::CliOptions::kMetrics | common::CliOptions::kCache |
          common::CliOptions::kCheck);
  if (!opts.ok()) {
    std::cerr << "error: " << opts.error << "\n";
    std::exit(2);
  }
  if (!opts.cache_dir.empty()) {
    detail::cache_storage().emplace(opts.cache_dir);
  }
  detail::shards_storage() = opts.shards;
  if (opts.check) check::set_enabled(true);
  return opts;
}

/// The worker count a SweepRequest with `jobs` actually runs with.
inline unsigned resolved_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Process-wide sink behind the --metrics flag: figure code records labeled
/// stat-registry snapshots as it runs design points, and main() exports the
/// collection once as labeled JSON ({"points":[{"label":..,"metrics":..}]}).
class MetricsSink {
 public:
  static MetricsSink& instance() {
    static MetricsSink sink;
    return sink;
  }

  void record(std::string label, obs::MetricsSnapshot snapshot) {
    points_.emplace_back(std::move(label), std::move(snapshot));
  }

  /// Record every point of a sweep; labels and results are parallel (points
  /// beyond the label list get positional names).
  void record_sweep(const std::vector<std::string>& labels,
                    const std::vector<dse::SweepResult>& results) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      record(i < labels.size() ? labels[i] : "point " + std::to_string(i),
             results[i].metrics);
    }
  }

  /// Write everything recorded so far to `path`. No-op when `path` is empty
  /// (the flag was not given); an empty sink still writes valid JSON.
  void export_to(const std::string& path) const {
    if (path.empty()) return;
    std::vector<std::pair<std::string, const obs::MetricsSnapshot*>> pts;
    pts.reserve(points_.size());
    for (const auto& p : points_) pts.emplace_back(p.first, &p.second);
    std::ofstream os(path);
    if (!os) {
      std::cerr << "[metrics] cannot write " << path << "\n";
      return;
    }
    obs::MetricsExporter::write_labeled_json(os, pts);
    std::cout << "[metrics] " << pts.size() << " point snapshot(s) -> "
              << path << "\n";
  }

 private:
  std::vector<std::pair<std::string, obs::MetricsSnapshot>> points_;
};

/// Single-point dse::run that records the point's registry snapshot into
/// the MetricsSink under `label` and memoizes through sweep_cache() when
/// --cache is active.
inline core::RunResult metered_point(const std::string& label,
                                     const core::ArchConfig& config,
                                     const workloads::Workload& workload) {
  auto results =
      dse::run(dse::SweepRequest{}
                   .add(config, workload)
                   .with_cache(sweep_cache())
                   .with_shards(bench_shards()));
  MetricsSink::instance().record(label, std::move(results.front().metrics));
  return std::move(results.front().result);
}

/// Simple wall-clock stopwatch for sweep observability.
class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// One-line observability summary for a parallel sweep: how many points, the
/// wall-clock of the whole sweep vs the summed per-point wall time. Their
/// ratio is the average number of points in flight (effective parallelism);
/// it matches the realized speedup when workers get dedicated cores, and
/// overstates it on an oversubscribed machine.
inline void print_sweep_stats(const std::vector<dse::SweepResult>& results,
                              double sweep_wall_s, unsigned jobs) {
  double point_s = 0;
  std::uint64_t events = 0;
  std::size_t cached = 0;
  for (const auto& r : results) {
    point_s += r.wall_seconds;
    events += r.events;
    if (r.from_cache) ++cached;
  }
  std::cout << "[sweep] " << results.size() << " points, " << events
            << " events, jobs=" << jobs << ": " << sweep_wall_s
            << " s wall vs " << point_s << " s summed point time ("
            << (sweep_wall_s > 0 ? point_s / sweep_wall_s : 0)
            << "x effective parallelism)\n";
  if (cached > 0) {
    std::cout << "[sweep] " << cached << "/" << results.size()
              << " points served from the result cache\n";
  }

  // Simulator self-profile, summed over every point: dispatch counts per
  // event kind (deterministic) and host wall-clock attribution (measured
  // per event by the simulators, which run with self-profiling on).
  std::array<sim::EventKindStats, sim::kNumEventKinds> kinds{};
  for (const auto& r : results) {
    for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
      kinds[k].count += r.event_kinds[k].count;
      kinds[k].seconds += r.event_kinds[k].seconds;
    }
  }
  std::cout << "[sweep] event profile:";
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    if (kinds[k].count == 0) continue;
    std::cout << " " << sim::event_kind_name(static_cast<sim::EventKind>(k))
              << "=" << kinds[k].count << "/"
              << static_cast<long>(kinds[k].seconds * 1e3) << "ms";
  }
  std::cout << "\n";
}

inline double norm(double value, double base) {
  return base == 0 ? 0.0 : value / base;
}

inline void print_header(const std::string& artifact,
                         const std::string& paper_summary) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << artifact << "\n"
            << "Paper reports: " << paper_summary << "\n"
            << "==============================================================\n";
}

/// Print + run the registered google-benchmark microbenchmarks.
inline int run_micro(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ara::benchutil
