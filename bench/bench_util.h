// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints the paper artifact it regenerates (same rows /
// series the paper reports, normalized the same way) and then runs a small
// google-benchmark suite measuring the simulator machinery behind it.
// ARA_BENCH_SCALE (env) scales workload invocation counts; default 0.5
// keeps full-suite runtime moderate while leaving steady-state behaviour
// unchanged. `--jobs N` (or ARA_JOBS) sets the parallel-sweep worker count
// for the design-space figures (default: hardware concurrency).
#pragma once

#include <benchmark/benchmark.h>

#include <array>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "dse/parallel_sweep.h"
#include "obs/metrics_export.h"
#include "sim/event_queue.h"

namespace ara::benchutil {

inline double bench_scale() {
  if (const char* s = std::getenv("ARA_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.5;
}

/// Parse and strip `--jobs N` / `--jobs=N` from argv (google-benchmark
/// rejects unknown flags), falling back to the ARA_JOBS env var. Returns 0
/// ("use hardware concurrency") when neither is given.
inline unsigned parse_jobs(int& argc, char** argv) {
  unsigned jobs = 0;
  if (const char* s = std::getenv("ARA_JOBS")) {
    const long v = std::atol(s);
    if (v > 0) jobs = static_cast<unsigned>(v);
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int consumed = 0;
    if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<unsigned>(std::atol(arg.c_str() + 7));
      consumed = 1;
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<unsigned>(std::atol(argv[i + 1]));
      consumed = 2;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      --i;
    }
  }
  return jobs;
}

/// Parse and strip `--metrics FILE` / `--metrics=FILE` from argv, falling
/// back to the ARA_METRICS env var. Returns "" when neither is given. The
/// resulting path is consumed by export_sweep_metrics below.
inline std::string parse_metrics(int& argc, char** argv) {
  std::string path;
  if (const char* s = std::getenv("ARA_METRICS")) path = s;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    int consumed = 0;
    if (arg.rfind("--metrics=", 0) == 0) {
      path = arg.substr(10);
      consumed = 1;
    } else if (arg == "--metrics" && i + 1 < argc) {
      path = argv[i + 1];
      consumed = 2;
    }
    if (consumed > 0) {
      for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
      argc -= consumed;
      --i;
    }
  }
  return path;
}

/// Process-wide sink behind the --metrics flag: figure code records labeled
/// stat-registry snapshots as it runs design points, and main() exports the
/// collection once as labeled JSON ({"points":[{"label":..,"metrics":..}]}).
class MetricsSink {
 public:
  static MetricsSink& instance() {
    static MetricsSink sink;
    return sink;
  }

  void record(std::string label, obs::MetricsSnapshot snapshot) {
    points_.emplace_back(std::move(label), std::move(snapshot));
  }

  /// Record every point of a sweep; labels and results are parallel (points
  /// beyond the label list get positional names).
  void record_sweep(const std::vector<std::string>& labels,
                    const std::vector<dse::SweepResult>& results) {
    for (std::size_t i = 0; i < results.size(); ++i) {
      record(i < labels.size() ? labels[i] : "point " + std::to_string(i),
             results[i].metrics);
    }
  }

  /// Write everything recorded so far to `path`. No-op when `path` is empty
  /// (the flag was not given); an empty sink still writes valid JSON.
  void export_to(const std::string& path) const {
    if (path.empty()) return;
    std::vector<std::pair<std::string, const obs::MetricsSnapshot*>> pts;
    pts.reserve(points_.size());
    for (const auto& p : points_) pts.emplace_back(p.first, &p.second);
    std::ofstream os(path);
    if (!os) {
      std::cerr << "[metrics] cannot write " << path << "\n";
      return;
    }
    obs::MetricsExporter::write_labeled_json(os, pts);
    std::cout << "[metrics] " << pts.size() << " point snapshot(s) -> "
              << path << "\n";
  }

 private:
  std::vector<std::pair<std::string, obs::MetricsSnapshot>> points_;
};

/// dse::run_point that also records the point's registry snapshot into the
/// MetricsSink under `label`.
inline core::RunResult metered_point(const std::string& label,
                                     const core::ArchConfig& config,
                                     const workloads::Workload& workload) {
  obs::MetricsSnapshot snap;
  auto result = dse::run_point(config, workload, &snap);
  MetricsSink::instance().record(label, std::move(snap));
  return result;
}

/// Simple wall-clock stopwatch for sweep observability.
class WallTimer {
 public:
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =
      std::chrono::steady_clock::now();
};

/// One-line observability summary for a parallel sweep: how many points, the
/// wall-clock of the whole sweep vs the summed per-point wall time. Their
/// ratio is the average number of points in flight (effective parallelism);
/// it matches the realized speedup when workers get dedicated cores, and
/// overstates it on an oversubscribed machine.
inline void print_sweep_stats(const std::vector<dse::SweepResult>& results,
                              double sweep_wall_s, unsigned jobs) {
  double point_s = 0;
  std::uint64_t events = 0;
  for (const auto& r : results) {
    point_s += r.wall_seconds;
    events += r.events;
  }
  std::cout << "[sweep] " << results.size() << " points, " << events
            << " events, jobs=" << jobs << ": " << sweep_wall_s
            << " s wall vs " << point_s << " s summed point time ("
            << (sweep_wall_s > 0 ? point_s / sweep_wall_s : 0)
            << "x effective parallelism)\n";

  // Simulator self-profile, summed over every point: dispatch counts per
  // event kind (deterministic) and host wall-clock attribution (measured
  // per event by the simulators, which run with self-profiling on).
  std::array<sim::EventKindStats, sim::kNumEventKinds> kinds{};
  for (const auto& r : results) {
    for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
      kinds[k].count += r.event_kinds[k].count;
      kinds[k].seconds += r.event_kinds[k].seconds;
    }
  }
  std::cout << "[sweep] event profile:";
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    if (kinds[k].count == 0) continue;
    std::cout << " " << sim::event_kind_name(static_cast<sim::EventKind>(k))
              << "=" << kinds[k].count << "/"
              << static_cast<long>(kinds[k].seconds * 1e3) << "ms";
  }
  std::cout << "\n";
}

inline double norm(double value, double base) {
  return base == 0 ? 0.0 : value / base;
}

inline void print_header(const std::string& artifact,
                         const std::string& paper_summary) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << artifact << "\n"
            << "Paper reports: " << paper_summary << "\n"
            << "==============================================================\n";
}

/// Print + run the registered google-benchmark microbenchmarks.
inline int run_micro(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ara::benchutil
