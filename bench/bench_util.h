// Shared helpers for the figure/table reproduction benches.
//
// Every bench binary prints the paper artifact it regenerates (same rows /
// series the paper reports, normalized the same way) and then runs a small
// google-benchmark suite measuring the simulator machinery behind it.
// ARA_BENCH_SCALE (env) scales workload invocation counts; default 0.5
// keeps full-suite runtime moderate while leaving steady-state behaviour
// unchanged.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <string>

namespace ara::benchutil {

inline double bench_scale() {
  if (const char* s = std::getenv("ARA_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0) return v;
  }
  return 0.5;
}

inline double norm(double value, double base) {
  return base == 0 ? 0.0 : value / base;
}

inline void print_header(const std::string& artifact,
                         const std::string& paper_summary) {
  std::cout << "==============================================================\n"
            << "Reproduction of " << artifact << "\n"
            << "Paper reports: " << paper_summary << "\n"
            << "==============================================================\n";
}

/// Print + run the registered google-benchmark microbenchmarks.
inline int run_micro(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace ara::benchutil
