// Sec. 5.1: SPM sharing analysis. The paper dismisses neighbour SPM
// sharing: the ABB<->SPM crossbar grows 3X while SPM banks shrink to
// 0.66X; SPM is ~20% of the private crossbar's area (7% with sharing);
// and sharing constrains concurrent allocation (an active ABB blocks its
// neighbours), hurting effective parallelism.
#include <iostream>

#include "bench_util.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "power/area_model.h"
#include "workloads/registry.h"

namespace {

void sec51() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 5.1 (SPM sharing is a poor trade)",
      "sharing: crossbar 3X, SPM banks 0.66X, SPM/xbar 20% -> 7%, "
      "neighbours blocked while an ABB is active");

  // Area analysis on the polynomial ABB (the dominant kind).
  const auto& poly = abb::params(abb::AbbKind::kPoly);
  const double spm_priv =
      power::spm_group_area_mm2(poly.spm_bytes, poly.min_spm_ports);
  const double xbar_priv =
      power::abb_spm_xbar_area_mm2(poly.min_spm_ports, poly.spm_bytes, false);
  const Bytes shared_spm = poly.spm_bytes * 2 / 3;
  const double spm_shared =
      power::spm_group_area_mm2(shared_spm, poly.min_spm_ports);
  // Crossbar sizing uses the baseline footprint: sharing changes the
  // connectivity (3X), not the bank macros behind it.
  const double xbar_shared =
      power::abb_spm_xbar_area_mm2(poly.min_spm_ports, poly.spm_bytes, true);

  dse::Table t({"quantity", "model", "paper"});
  t.add_row({"crossbar growth with sharing",
             dse::Table::num(xbar_shared / xbar_priv, 2) + "X", "3X"});
  t.add_row({"SPM capacity with sharing",
             dse::Table::num(
                 static_cast<double>(shared_spm) /
                     static_cast<double>(poly.spm_bytes), 2) + "X",
             "0.66X"});
  t.add_row({"SPM area / crossbar area (private)",
             dse::Table::pct(spm_priv / xbar_priv), "~20%"});
  t.add_row({"SPM area / crossbar area (sharing)",
             dse::Table::pct(spm_shared / xbar_shared), "~7%"});
  t.print(std::cout);

  // Allocation-constraint cost: run a chaining-heavy benchmark with and
  // without sharing (3 islands, proxy crossbar baseline).
  std::cout << "\nruntime cost of the sharing allocation constraint "
               "(Segmentation, 3 islands):\n";
  const double scale = benchutil::bench_scale();
  auto wl = workloads::make_benchmark("Segmentation", scale);
  core::ArchConfig base = core::ArchConfig::paper_baseline(3);
  const auto r_priv = benchutil::metered_point("private SPM", base, wl);
  base.island.spm_sharing = true;
  const auto r_shared = benchutil::metered_point("neighbour sharing", base, wl);

  dse::Table rt({"design", "relative performance", "island area mm2"});
  rt.add_row({"private SPM", "1.000", dse::Table::num(r_priv.area.islands_mm2, 1)});
  rt.add_row({"neighbour sharing",
              dse::Table::num(r_shared.performance() / r_priv.performance(), 3),
              dse::Table::num(r_shared.area.islands_mm2, 1)});
  rt.print(std::cout);
  std::cout << "=> sharing is dismissed as a design choice (paper Sec. 5.1)\n";
}

void micro_area_formulas(benchmark::State& state) {
  const auto& poly = ara::abb::params(ara::abb::AbbKind::kPoly);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ara::power::abb_spm_xbar_area_mm2(
        poly.min_spm_ports, poly.spm_bytes, true));
  }
}
BENCHMARK(micro_area_formulas);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec51();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
