// Figure 6: performance impact of SPM<->DMA network choice while varying
// the number of ABB islands (3/6/12/24; 120 ABBs fixed), for Denoise and
// EKF-SLAM, normalized to the 3-island proxy-crossbar baseline.
//
// Paper shape: performance rises with island count (more NoC interfaces);
// low-chaining Denoise gains more than chaining-heavy EKF-SLAM; ring
// configurations sit above the crossbar, with the gap largest for small
// island counts.
//
// All 32 design points are independent simulations, so they run on the
// parallel sweep executor (`--jobs N`, default hardware concurrency).
#include <iostream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "core/system.h"
#include "dse/parallel_sweep.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig06(unsigned jobs) {
  using namespace ara;
  benchutil::print_header(
      "Figure 6 (network choice vs island count; normalized to 3-island "
      "baseline)",
      "series rise 3->24 islands; Denoise (low chaining) gains most; "
      "crossbar trails rings");

  const double scale = benchutil::bench_scale();
  struct Series {
    const char* workload;
    const char* net;
  };
  const Series series[] = {
      {"Denoise", "proxy-xbar"},  {"Denoise", "1-ring,16B"},
      {"Denoise", "1-ring,32B"},  {"Denoise", "2-ring,32B"},
      {"Denoise", "3-ring,32B"},  {"EKF-SLAM", "proxy-xbar"},
      {"EKF-SLAM", "1-ring,16B"}, {"EKF-SLAM", "1-ring,32B"},
  };
  const auto& island_counts = dse::paper_island_counts();

  // Workloads built once and borrowed by every job.
  std::map<std::string, workloads::Workload> wls;
  for (const char* wname : {"Denoise", "EKF-SLAM"}) {
    wls.emplace(wname, workloads::make_benchmark(wname, scale));
  }

  // Job list: series-major, island-count-minor, so the result of series s
  // at island count i lands at index s * |counts| + i.
  std::vector<dse::SweepJob> sweep_jobs;
  std::vector<std::string> labels;
  for (const auto& s : series) {
    for (std::uint32_t islands : island_counts) {
      core::ArchConfig cfg = core::ArchConfig::paper_baseline(islands);
      for (const auto& p : dse::paper_network_configs(islands)) {
        if (p.label == s.net) cfg = p.config;
      }
      sweep_jobs.push_back({cfg, &wls.at(s.workload)});
      labels.push_back(std::string(s.workload) + ", " + s.net + ", " +
                       std::to_string(islands) + " islands");
    }
  }

  dse::SweepRequest request;
  request.sweep = std::move(sweep_jobs);
  request.jobs = jobs;
  request.shards = benchutil::bench_shards();
  request.cache = benchutil::sweep_cache();
  const benchutil::WallTimer timer;
  const auto results = dse::run(request);
  const double wall_s = timer.seconds();

  // Baseline: 3-island proxy crossbar, per workload — series 0 and 5 at
  // the first island count.
  std::map<std::string, double> base_perf;
  base_perf["Denoise"] = results[0].result.performance();
  base_perf["EKF-SLAM"] =
      results[5 * island_counts.size()].result.performance();

  dse::Table t({"series", "3 islands", "6 islands", "12 islands",
                "24 islands"});
  for (std::size_t si = 0; si < std::size(series); ++si) {
    const auto& s = series[si];
    std::vector<std::string> row = {std::string(s.workload) + ", " + s.net};
    for (std::size_t ii = 0; ii < island_counts.size(); ++ii) {
      const auto& r = results[si * island_counts.size() + ii].result;
      row.push_back(dse::Table::num(
          ara::benchutil::norm(r.performance(), base_perf[s.workload]), 3));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  benchutil::print_sweep_stats(results, wall_s,
                               benchutil::resolved_jobs(jobs));
  benchutil::MetricsSink::instance().record_sweep(labels, results);
}

void micro_system_build(benchmark::State& state) {
  for (auto _ : state) {
    ara::core::System system(ara::core::ArchConfig::paper_baseline(12));
    benchmark::DoNotOptimize(system.islands_area_mm2());
  }
}
BENCHMARK(micro_system_build);

// Full Fig. 6-style sweep at small scale with 1 vs N workers: the ratio of
// the two timings is the realized parallel speedup on this machine.
void micro_parallel_sweep(benchmark::State& state) {
  auto wl = ara::workloads::make_benchmark("Denoise", 0.05);
  ara::dse::SweepRequest request;
  for (std::uint32_t islands : ara::dse::paper_island_counts()) {
    request.add_points(ara::dse::paper_network_configs(islands), wl);
  }
  request.jobs = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ara::dse::run(request).size());
  }
}
BENCHMARK(micro_parallel_sweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig06(cli.jobs);
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
