// Figure 6: performance impact of SPM<->DMA network choice while varying
// the number of ABB islands (3/6/12/24; 120 ABBs fixed), for Denoise and
// EKF-SLAM, normalized to the 3-island proxy-crossbar baseline.
//
// Paper shape: performance rises with island count (more NoC interfaces);
// low-chaining Denoise gains more than chaining-heavy EKF-SLAM; ring
// configurations sit above the crossbar, with the gap largest for small
// island counts.
#include <iostream>
#include <map>

#include "bench_util.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig06() {
  using namespace ara;
  benchutil::print_header(
      "Figure 6 (network choice vs island count; normalized to 3-island "
      "baseline)",
      "series rise 3->24 islands; Denoise (low chaining) gains most; "
      "crossbar trails rings");

  const double scale = benchutil::bench_scale();
  struct Series {
    const char* workload;
    const char* net;
  };
  const Series series[] = {
      {"Denoise", "proxy-xbar"},  {"Denoise", "1-ring,16B"},
      {"Denoise", "1-ring,32B"},  {"Denoise", "2-ring,32B"},
      {"Denoise", "3-ring,32B"},  {"EKF-SLAM", "proxy-xbar"},
      {"EKF-SLAM", "1-ring,16B"}, {"EKF-SLAM", "1-ring,32B"},
  };

  dse::Table t({"series", "3 islands", "6 islands", "12 islands",
                "24 islands"});
  // Baseline: 3-island proxy crossbar, per workload.
  std::map<std::string, double> base_perf;
  for (const char* wname : {"Denoise", "EKF-SLAM"}) {
    auto wl = workloads::make_benchmark(wname, scale);
    base_perf[wname] =
        dse::run_point(core::ArchConfig::paper_baseline(3), wl).performance();
  }

  for (const auto& s : series) {
    auto wl = workloads::make_benchmark(s.workload, scale);
    std::vector<std::string> row = {std::string(s.workload) + ", " + s.net};
    for (std::uint32_t islands : dse::paper_island_counts()) {
      core::ArchConfig cfg = core::ArchConfig::paper_baseline(islands);
      for (const auto& p : dse::paper_network_configs(islands)) {
        if (p.label == s.net) cfg = p.config;
      }
      const auto r = dse::run_point(cfg, wl);
      row.push_back(dse::Table::num(
          ara::benchutil::norm(r.performance(), base_perf[s.workload]), 3));
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

void micro_system_build(benchmark::State& state) {
  for (auto _ : state) {
    ara::core::System system(ara::core::ArchConfig::paper_baseline(12));
    benchmark::DoNotOptimize(system.islands_area_mm2());
  }
}
BENCHMARK(micro_system_build);

}  // namespace

int main(int argc, char** argv) {
  fig06();
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
