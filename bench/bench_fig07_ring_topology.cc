// Figure 7: performance of SPM<->DMA ring networks vs the proxy-crossbar
// baseline, for all seven benchmarks at 3 islands (40 ABBs/island) and
// 24 islands (5 ABBs/island). Normalized per island count to the proxy
// crossbar.
//
// Paper shape: most ring configurations outperform the crossbar; the
// impact shrinks as islands increase; the crossbar is worst for the
// chaining-heavy benchmarks (Segmentation, Robot Localization, EKF-SLAM,
// peaking around 2.2-2.6X at 3 islands).
#include <iostream>

#include "bench_util.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig07() {
  using namespace ara;
  benchutil::print_header(
      "Figure 7 (ring vs proxy crossbar; 3 and 24 islands)",
      "rings win, most for chaining-heavy benchmarks at 3 islands "
      "(up to ~2.6X); impact shrinks at 24 islands");

  const double scale = benchutil::bench_scale();
  for (std::uint32_t islands : {3u, 24u}) {
    std::cout << "\n--- " << islands << " islands ("
              << 120 / islands << " ABBs/island) ---\n";
    const auto points = dse::paper_network_configs(islands);
    std::vector<std::string> headers = {"benchmark"};
    for (const auto& p : points) headers.push_back(p.label);
    headers.push_back("chain degree");
    dse::Table t(std::move(headers));

    for (const auto& name : workloads::benchmark_names()) {
      auto wl = workloads::make_benchmark(name, scale);
      std::vector<std::string> row = {name};
      double base = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto r = dse::run_point(points[i].config, wl);
        if (i == 0) base = r.performance();
        row.push_back(
            dse::Table::num(benchutil::norm(r.performance(), base), 3));
      }
      row.push_back(dse::Table::num(wl.dfg.chaining_degree(), 2));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
}

void micro_run_denoise_small(benchmark::State& state) {
  auto wl = ara::workloads::make_benchmark("Denoise", 0.05);
  for (auto _ : state) {
    ara::core::System system(ara::core::ArchConfig::best_config());
    benchmark::DoNotOptimize(system.run(wl).makespan);
  }
}
BENCHMARK(micro_run_denoise_small)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  fig07();
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
