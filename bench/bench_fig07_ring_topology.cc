// Figure 7: performance of SPM<->DMA ring networks vs the proxy-crossbar
// baseline, for all seven benchmarks at 3 islands (40 ABBs/island) and
// 24 islands (5 ABBs/island). Normalized per island count to the proxy
// crossbar.
//
// Paper shape: most ring configurations outperform the crossbar; the
// impact shrinks as islands increase; the crossbar is worst for the
// chaining-heavy benchmarks (Segmentation, Robot Localization, EKF-SLAM,
// peaking around 2.2-2.6X at 3 islands).
//
// The 2 x 7 x 5 = 70 design points run on the parallel sweep executor
// (`--jobs N`, default hardware concurrency).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/system.h"
#include "dse/parallel_sweep.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig07(unsigned jobs) {
  using namespace ara;
  benchutil::print_header(
      "Figure 7 (ring vs proxy crossbar; 3 and 24 islands)",
      "rings win, most for chaining-heavy benchmarks at 3 islands "
      "(up to ~2.6X); impact shrinks at 24 islands");

  const double scale = benchutil::bench_scale();
  const auto& names = workloads::benchmark_names();
  const std::vector<std::uint32_t> island_counts = {3, 24};

  std::vector<workloads::Workload> wls;
  wls.reserve(names.size());
  for (const auto& name : names) {
    wls.push_back(workloads::make_benchmark(name, scale));
  }

  // island-count-major, benchmark-, then network-point-minor.
  std::vector<dse::SweepJob> sweep_jobs;
  std::vector<std::string> labels;
  for (std::uint32_t islands : island_counts) {
    const auto points = dse::paper_network_configs(islands);
    for (const auto& wl : wls) {
      for (const auto& p : points) {
        sweep_jobs.push_back({p.config, &wl});
        labels.push_back(wl.name + ", " + p.label + ", " +
                         std::to_string(islands) + " islands");
      }
    }
  }

  dse::SweepRequest request;
  request.sweep = std::move(sweep_jobs);
  request.jobs = jobs;
  request.shards = benchutil::bench_shards();
  request.cache = benchutil::sweep_cache();
  const benchutil::WallTimer timer;
  const auto results = dse::run(request);
  const double wall_s = timer.seconds();

  std::size_t idx = 0;
  for (std::uint32_t islands : island_counts) {
    std::cout << "\n--- " << islands << " islands ("
              << 120 / islands << " ABBs/island) ---\n";
    const auto points = dse::paper_network_configs(islands);
    std::vector<std::string> headers = {"benchmark"};
    for (const auto& p : points) headers.push_back(p.label);
    headers.push_back("chain degree");
    dse::Table t(std::move(headers));

    for (std::size_t b = 0; b < names.size(); ++b) {
      std::vector<std::string> row = {names[b]};
      double base = 0;
      for (std::size_t i = 0; i < points.size(); ++i, ++idx) {
        const auto& r = results[idx].result;
        if (i == 0) base = r.performance();
        row.push_back(
            dse::Table::num(benchutil::norm(r.performance(), base), 3));
      }
      row.push_back(dse::Table::num(wls[b].dfg.chaining_degree(), 2));
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  benchutil::print_sweep_stats(results, wall_s,
                               benchutil::resolved_jobs(jobs));
  benchutil::MetricsSink::instance().record_sweep(labels, results);
}

void micro_run_denoise_small(benchmark::State& state) {
  auto wl = ara::workloads::make_benchmark("Denoise", 0.05);
  for (auto _ : state) {
    ara::core::System system(ara::core::ArchConfig::best_config());
    benchmark::DoNotOptimize(system.run(wl).makespan);
  }
}
BENCHMARK(micro_run_denoise_small)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig07(cli.jobs);
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
