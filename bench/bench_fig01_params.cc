// Figure 1: hardware parameters of the modelled general-purpose processor,
// plus the Sec. 1 footnote anchors (McPAT vs synthesized Int ALU power).
#include <iostream>

#include "bench_util.h"
#include "dse/table.h"
#include "power/compute_unit_energy.h"
#include "power/mcpat_like.h"

namespace {

void fig01() {
  using namespace ara;
  benchutil::print_header(
      "Figure 1 (hardware parameters for general-purpose processor)",
      "4-wide OoO, 3 int ALUs, 2 FP ALUs, 96 ROB, 64 RS, 32KB L1s, 6MB L2");

  const power::PipelineParams p;
  dse::Table t({"PARAMETER", "VALUE"});
  t.add_row({"Fetch/issue/retire width", std::to_string(p.fetch_width)});
  t.add_row({"# Integer ALUs", std::to_string(p.int_alus)});
  t.add_row({"# FP ALUs", std::to_string(p.fp_alus)});
  t.add_row({"# ROB entries", std::to_string(p.rob_entries)});
  t.add_row({"# Reservation station entries", std::to_string(p.rs_entries)});
  t.add_row({"L1 I-cache", std::to_string(p.l1i_kb) + " KB, " +
                               std::to_string(p.assoc) + "-way set assoc."});
  t.add_row({"L1 D-cache", std::to_string(p.l1d_kb) + " KB, " +
                               std::to_string(p.assoc) + "-way set assoc."});
  t.add_row({"L2 cache", std::to_string(p.l2_mb) + " MB, " +
                             std::to_string(p.assoc) + "-way set assoc."});
  t.add_row({"Clock", dse::Table::num(p.freq_ghz, 1) + " GHz"});
  t.print(std::cout);

  std::cout << "\nSec. 1 footnote anchors:\n"
            << "  McPAT Int ALU power @2GHz: " << power::kMcPatIntAluPowerMw
            << " mW (paper: 422.02 mW)\n"
            << "  45nm synthesized Int ALU:  " << power::kSynthIntAluPowerMw
            << " mW @ " << power::kSynthIntAluClockMhz
            << " MHz max (paper: 11.41 mW @ 500 MHz)\n";
}

void micro_pipeline_model(benchmark::State& state) {
  ara::power::PipelineParams p;
  ara::power::InstructionMix m;
  for (auto _ : state) {
    ara::power::McPatLikePipeline model(p, m);
    benchmark::DoNotOptimize(model.total_pj());
  }
}
BENCHMARK(micro_pipeline_model);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig01();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
