// Sec. 5.4: SPM porting. Doubling SPM ports beyond the per-kind minimum
// contributes very little performance (software data layout already
// eliminates almost all bank conflicts) while increasing SPM area/power
// and the ABB<->SPM crossbar size — so exact provisioning is preferable.
#include <iostream>

#include "bench_util.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void sec54() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 5.4 (SPM porting: exact vs doubled)",
      "2X ports => negligible performance gain, larger SPM/crossbar area; "
      "exact provisioning preferable");

  const double scale = benchutil::bench_scale();
  dse::Table t({"benchmark", "perf x1 ports", "perf x2 ports",
                "island area x1", "island area x2"});
  double gain_sum = 0;
  int n = 0;
  for (const auto& name : workloads::benchmark_names()) {
    auto wl = workloads::make_benchmark(name, scale);
    core::ArchConfig exact = core::ArchConfig::ring_design(6, 2, 32);
    core::ArchConfig doubled = exact;
    doubled.island.spm_port_multiplier = 2;
    const auto r1 = benchutil::metered_point(name + ", x1 ports", exact, wl);
    const auto r2 = benchutil::metered_point(name + ", x2 ports", doubled, wl);
    const double gain = r2.performance() / r1.performance();
    gain_sum += gain;
    ++n;
    t.add_row({name, "1.000", dse::Table::num(gain, 3),
               dse::Table::num(r1.area.islands_mm2, 1),
               dse::Table::num(r2.area.islands_mm2, 1)});
  }
  t.print(std::cout);
  std::cout << "\nmean performance gain from 2X porting: "
            << dse::Table::num((gain_sum / n - 1.0) * 100.0, 2)
            << "% (paper: \"very little ... if at all\")\n";
}

void micro_conflict_model(benchmark::State& state) {
  ara::abb::AbbEngine exact(0, 0, ara::abb::AbbKind::kPoly, 5, 0.04);
  ara::abb::AbbEngine doubled(0, 1, ara::abb::AbbKind::kPoly, 10, 0.04);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact.compute_cycles(1024));
    benchmark::DoNotOptimize(doubled.compute_cycles(1024));
  }
}
BENCHMARK(micro_conflict_model);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec54();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
