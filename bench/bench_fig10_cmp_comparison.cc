// Figure 10 + Sec. 5.8: the DSE's best configuration (24 islands, 2-ring
// 32-byte SPM<->DMA network, no SPM sharing, exact SPM ports) vs a 12-core
// 1.9 GHz Xeon E5-2420 CMP.
//
// Paper: speedups {Deb 3.7, Den 4.3, Seg 28.6, Reg 4.8, Rob 3.0, Ekf 1.8,
// Dis 3.9} (avg ~7X) and energy gains {10.2, 12.1, 78.4, 13.4, 8.3, 5.1,
// 11.0} (avg ~20X); vs the 4-core CMP of [9]: 25X / 76X; ABB utilization
// 18.5% average, 43.5% peak.
#include <iostream>

#include "bench_util.h"
#include "cmp/cmp_model.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

struct PaperNumbers {
  const char* name;
  double speedup;
  double energy_gain;
};
constexpr PaperNumbers kPaper[] = {
    {"Deblur", 3.7, 10.2},           {"Denoise", 4.3, 12.1},
    {"Segmentation", 28.6, 78.4},    {"Registration", 4.8, 13.4},
    {"RobotLocalization", 3.0, 8.3}, {"EKF-SLAM", 1.8, 5.1},
    {"DisparityMap", 3.9, 11.0},
};

void fig10() {
  using namespace ara;
  benchutil::print_header(
      "Figure 10 (best accelerator-rich design vs 12-core CMP)",
      "avg 7X speedup / 20X energy; Segmentation the outlier winner; "
      "ABB util 18.5% avg / 43.5% peak");

  const double scale = benchutil::bench_scale();
  const core::ArchConfig best = core::ArchConfig::best_config();
  const cmp::CmpModel cmp12(cmp::CmpConfig::xeon_e5_2420());
  const cmp::CmpModel cmp4(cmp::CmpConfig::xeon_e5405());

  dse::Table t({"benchmark", "speedup", "paper", "energy gain", "paper",
                "avg util", "peak util"});
  double sp_sum = 0, eg_sum = 0, sp4_sum = 0, eg4_sum = 0;
  double util_sum = 0, util_peak = 0;
  for (const auto& pn : kPaper) {
    auto wl = workloads::make_benchmark(pn.name, scale);
    const auto r = benchutil::metered_point(
        std::string(pn.name) + ", best config", best, wl);
    const auto sw12 = cmp12.run(wl);
    const auto sw4 = cmp4.run(wl);
    const double speedup = sw12.seconds / r.seconds();
    const double egain = sw12.joules / r.energy.total();
    sp_sum += speedup;
    eg_sum += egain;
    sp4_sum += sw4.seconds / r.seconds();
    eg4_sum += sw4.joules / r.energy.total();
    util_sum += r.avg_abb_utilization;
    util_peak = std::max(util_peak, r.peak_abb_utilization);
    t.add_row({pn.name, dse::Table::num(speedup, 1),
               dse::Table::num(pn.speedup, 1), dse::Table::num(egain, 1),
               dse::Table::num(pn.energy_gain, 1),
               dse::Table::pct(r.avg_abb_utilization),
               dse::Table::pct(r.peak_abb_utilization)});
  }
  t.print(std::cout);

  const double n = static_cast<double>(std::size(kPaper));
  std::cout << "\naverages vs 12-core CMP: speedup "
            << dse::Table::num(sp_sum / n, 1) << "X (paper ~7X), energy "
            << dse::Table::num(eg_sum / n, 1) << "X (paper ~20X)\n"
            << "averages vs 4-core CMP:  speedup "
            << dse::Table::num(sp4_sum / n, 1) << "X (paper 25X), energy "
            << dse::Table::num(eg4_sum / n, 1) << "X (paper 76X)\n"
            << "ABB utilization: avg " << dse::Table::pct(util_sum / n)
            << " (paper 18.5%), peak " << dse::Table::pct(util_peak)
            << " (paper 43.5%)\n";
}

void micro_cmp_model(benchmark::State& state) {
  auto wl = ara::workloads::make_benchmark("Segmentation", 1.0);
  ara::cmp::CmpModel model(ara::cmp::CmpConfig::xeon_e5_2420());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.run(wl).seconds);
  }
}
BENCHMARK(micro_cmp_model);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig10();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
