// Sec. 2: the three architecture generations. ARC's monolithic
// accelerators deliver large gains over software (paper: 16X perf / 13X
// energy vs a 4-core Xeon on medical imaging); CHARM's composable ABBs
// deliver roughly 2X ARC's performance from better resource utilization;
// CAMEL's programmable fabric extends coverage to kernels with ops outside
// the ABB library at some efficiency cost (12X perf / 14X energy vs the
// 4-core CMP on out-of-domain benchmarks).
#include <iostream>

#include "bench_util.h"
#include "core/system.h"
#include "cmp/cmp_model.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/out_of_domain.h"
#include "workloads/registry.h"
#include "workloads/workload.h"

namespace {

void sec2() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 2 (ARC vs CHARM vs CAMEL)",
      "ARC ~16X/13X vs 4-core CMP; CHARM ~2X ARC perf; CAMEL ~12X/14X on "
      "out-of-domain kernels");

  const double scale = benchutil::bench_scale();
  const cmp::CmpModel cmp4(cmp::CmpConfig::xeon_e5405());

  // --- ARC vs CHARM on the medical imaging domain ---
  // ARC hosts a DEDICATED monolithic accelerator per kernel of the domain;
  // under the same silicon budget as CHARM's 120 shared ABBs, the area
  // available to any one kernel's accelerator is total-ABB-area divided by
  // the domain size, which bounds the instance count. This is the paper's
  // utilization/coverage argument: the composable ABBs serve whichever
  // kernel is running, dedicated accelerators cannot.
  std::cout << "\nmedical imaging domain, 12 islands (vs 4-core Xeon "
               "E5405):\n";
  constexpr int kDomainKernels = 4;
  double total_abb_area = 0;
  {
    core::System probe(core::ArchConfig::ring_design(12, 2, 32));
    for (IslandId i = 0; i < probe.island_count(); ++i) {
      total_abb_area += probe.island(i).compute_area_mm2();
    }
  }

  dse::Table t({"benchmark", "ARC accels", "ARC speedup", "ARC energy gain",
                "CHARM speedup", "CHARM energy gain", "CHARM/ARC"});
  double ratio_sum = 0;
  int n = 0;
  for (const char* name :
       {"Deblur", "Denoise", "Segmentation", "Registration"}) {
    auto wl = workloads::make_benchmark(name, scale);
    const auto sw = cmp4.run(wl);

    const double fused_area = wl.dfg.fused_profile().area_mm2;
    const auto instances = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(total_abb_area / kDomainKernels /
                                      fused_area));
    core::ArchConfig arc = core::ArchConfig::ring_design(12, 2, 32);
    arc.mode = abc::ExecutionMode::kMonolithic;
    arc.mono_instances = instances;
    const auto r_arc =
        benchutil::metered_point(std::string(name) + ", ARC", arc, wl);

    const core::ArchConfig charm = core::ArchConfig::ring_design(12, 2, 32);
    const auto r_charm =
        benchutil::metered_point(std::string(name) + ", CHARM", charm, wl);

    const double arc_sp = sw.seconds / r_arc.seconds();
    const double charm_sp = sw.seconds / r_charm.seconds();
    ratio_sum += charm_sp / arc_sp;
    ++n;
    t.add_row({name, std::to_string(instances), dse::Table::num(arc_sp, 1),
               dse::Table::num(sw.joules / r_arc.energy.total(), 1),
               dse::Table::num(charm_sp, 1),
               dse::Table::num(sw.joules / r_charm.energy.total(), 1),
               dse::Table::num(charm_sp / arc_sp, 2) + "X"});
  }
  t.print(std::cout);
  std::cout << "mean CHARM/ARC performance: "
            << dse::Table::num(ratio_sum / n, 2) << "X (paper: over 2X)\n";

  // --- CAMEL: the out-of-domain suite (ops outside the ABB library) ---
  std::cout << "\nout-of-domain suite on CAMEL islands (2 PF blocks "
               "each):\n";
  core::ArchConfig camel = core::ArchConfig::ring_design(12, 2, 32);
  camel.island.fabric_blocks = 2;
  dse::Table ct({"benchmark", "fabric tasks", "CAMEL speedup",
                 "CAMEL energy gain"});
  double sp_sum = 0, eg_sum = 0;
  int cn = 0;
  for (const auto& name : workloads::out_of_domain_names()) {
    auto wl = workloads::make_out_of_domain(name, scale);
    std::size_t fabric = 0;
    for (const auto& node : wl.dfg.nodes()) fabric += node.needs_fabric;
    const auto r = benchutil::metered_point(name + ", CAMEL", camel, wl);
    const auto sw = cmp4.run(wl);
    const double sp = sw.seconds / r.seconds();
    const double eg = sw.joules / r.energy.total();
    sp_sum += sp;
    eg_sum += eg;
    ++cn;
    ct.add_row({name, std::to_string(fabric), dse::Table::num(sp, 1),
                dse::Table::num(eg, 1)});
  }
  ct.print(std::cout);
  std::cout << "  suite averages: " << dse::Table::num(sp_sum / cn, 1)
            << "X speedup (paper 12X), " << dse::Table::num(eg_sum / cn, 1)
            << "X energy (paper 14X)\n"
            << "  (pure CHARM rejects these kernels: ops outside the ABB "
               "library)\n";
}

void micro_fused_profile(benchmark::State& state) {
  auto wl = ara::workloads::make_benchmark("Deblur", 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wl.dfg.fused_profile().pipeline_latency);
  }
}
BENCHMARK(micro_fused_profile);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec2();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
