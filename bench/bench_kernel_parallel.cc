// Partitioned-kernel parallelism benchmark: one island-shaped synthetic
// workload with genuine cross-site traffic, raced through
// sim::ShardedSimulator at workers 1 / 2 / 4 on identical scripts.
//
// Identity first, speed second: every worker count must reproduce the
// serial run's order-sensitive dispatch checksum and every deterministic
// aggregate bit for bit — a divergence is a FATAL error (exit 1), because
// a parallel kernel that changes results is wrong no matter how fast.
// The measured speedup is machine-dependent (a 1-core container runs all
// worker counts at ~1.0x) and is therefore reported, not gated, unless
// --require-speedup X asks for a hard floor (the ISSUE target is >= 1.8x
// at 4 workers on >= 8 islands, on hardware with >= 4 cores).
//
// Results go to stdout and a strict-JSON report (BENCH_kernel_parallel.json
// by default; validated in ctest by ara_json_check).
//
// Usage: bench_kernel_parallel [--events N] [--islands N] [--work K]
//                              [--repeats R] [--require-speedup X]
//                              [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_io.h"
#include "sim/shard.h"

namespace {

using ara::Tick;
using ara::sim::ShardedSimulator;
using ara::sim::ShardOptions;

/// Per-event compute load. The result feeds the next event's delay, so the
/// work cannot be elided — this is what gives the worker threads something
/// to overlap.
std::uint64_t spin(std::uint64_t x, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
  }
  return x;
}

struct ScriptParams {
  std::uint32_t islands = 8;
  int chains_per_island = 4;
  std::uint64_t steps_per_chain = 2000;
  int work = 150;       // spin iterations per event
  Tick lookahead = 4;   // NoC-hop-latency stand-in
};

/// Island-shaped workload: each island site runs `chains_per_island`
/// sequential event chains; every 16th step reports to the hub (site 0)
/// over a channel, and the hub acknowledges back — the GAM/NoC
/// coordination shape of ara. All state is carried in event captures, so
/// the dispatch stream is a pure function of the script parameters.
class Script {
 public:
  Script(ShardedSimulator* ssim, const ScriptParams& p) : ssim_(ssim), p_(p) {}

  void seed() {
    for (std::uint32_t island = 1; island <= p_.islands; ++island) {
      for (int c = 0; c < p_.chains_per_island; ++c) {
        const std::uint64_t id =
            island * 1000003ull + static_cast<std::uint64_t>(c);
        ssim_->schedule_at(island, static_cast<Tick>(c),
                           [this, island, id] {
                             step(island, id, p_.steps_per_chain);
                           });
      }
    }
  }

  void step(std::uint32_t site, std::uint64_t id, std::uint64_t remaining) {
    const std::uint64_t x = spin(id + remaining, p_.work);
    if (remaining == 0) return;
    if (remaining % 16 == 0) {
      // Progress report to the hub; the hub acks back one lookahead later.
      const Tick at = ssim_->site_now(site) + p_.lookahead +
                      static_cast<Tick>(x % 4);
      ssim_->send(site, 0, at, [this, site, id] {
        const std::uint64_t y = spin(id, p_.work / 2);
        const Tick back =
            ssim_->site_now(0) + p_.lookahead + static_cast<Tick>(y % 4);
        ssim_->send(0, site, back, [this, id] { (void)spin(id, 8); });
      });
    }
    const Tick delay = 1 + static_cast<Tick>(x % 8);
    ssim_->schedule_in(site, delay, [this, site, id, remaining] {
      step(site, id, remaining - 1);
    });
  }

 private:
  ShardedSimulator* ssim_;
  ScriptParams p_;
};

struct RunStats {
  double seconds = 0;  // best of the repeats
  std::uint64_t checksum = 0;
  std::uint64_t processed = 0;
  std::uint64_t cross_sent = 0;
  std::uint64_t cross_delivered = 0;
  std::uint64_t windows = 0;
};

RunStats run_once(const ScriptParams& p, unsigned workers, int repeats) {
  RunStats best;
  best.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    ShardOptions so;
    so.sites = 1 + p.islands;
    so.lookahead = p.lookahead;
    so.workers = workers;
    ShardedSimulator ssim(so);
    Script script(&ssim, p);
    script.seed();
    const auto t0 = std::chrono::steady_clock::now();
    ssim.run();
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best.seconds) best.seconds = s;
    best.checksum = ssim.checksum();
    best.processed = ssim.events_processed();
    best.cross_sent = ssim.cross_sent();
    best.cross_delivered = ssim.cross_delivered();
    best.windows = ssim.windows();
  }
  return best;
}

struct Row {
  unsigned workers = 1;
  RunStats stats;
  double speedup = 1;
};

void write_report(const std::string& path, const ScriptParams& p,
                  const std::vector<Row>& rows, unsigned hw_threads) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(1);
  }
  os << "{\"bench\":\"kernel_parallel\",\"islands\":" << p.islands
     << ",\"sites\":" << (1 + p.islands) << ",\"lookahead\":" << p.lookahead
     << ",\"hw_threads\":" << hw_threads << ",\"rows\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    if (i > 0) os << ",";
    os << "{\"workers\":" << r.workers << ",\"seconds\":";
    ara::obs::json_number(os, r.stats.seconds, 9);
    os << ",\"speedup\":";
    ara::obs::json_number(os, r.speedup, 6);
    os << ",\"events\":" << r.stats.processed
       << ",\"cross_events\":" << r.stats.cross_delivered
       << ",\"windows\":" << r.stats.windows << ",\"checksum_match\":true}";
  }
  os << "]}\n";
}

}  // namespace

int main(int argc, char** argv) {
  ScriptParams p;
  std::uint64_t events = 64000;  // approximate local-dispatch budget
  int repeats = 3;
  double require_speedup = 0;
  std::string out = "BENCH_kernel_parallel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--events") {
      events = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--islands") {
      p.islands = static_cast<std::uint32_t>(std::strtoul(
          next().c_str(), nullptr, 10));
    } else if (arg == "--work") {
      p.work = std::atoi(next().c_str());
    } else if (arg == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (arg == "--require-speedup") {
      require_speedup = std::atof(next().c_str());
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "bench_kernel_parallel [--events N] [--islands N] "
                   "[--work K] [--repeats R] [--require-speedup X] "
                   "[--out FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (events == 0 || p.islands == 0 || repeats <= 0 || p.work < 0) {
    std::cerr << "--events/--islands/--repeats must be positive\n";
    return 2;
  }
  p.steps_per_chain =
      std::max<std::uint64_t>(
          16, events / (static_cast<std::uint64_t>(p.islands) *
                        static_cast<std::uint64_t>(p.chains_per_island)));

  const unsigned hw = std::thread::hardware_concurrency();
  std::cout << "partitioned kernel: " << p.islands << " island sites + hub, "
            << "lookahead " << p.lookahead << ", ~" << events
            << " chain events, work " << p.work << " spins/event, best of "
            << repeats << " repeats (" << hw << " hardware threads)\n\n";

  std::vector<Row> rows;
  for (unsigned workers : {1u, 2u, 4u}) {
    Row row;
    row.workers = workers;
    row.stats = run_once(p, workers, repeats);
    if (!rows.empty()) {
      const RunStats& ref = rows.front().stats;
      const RunStats& got = row.stats;
      if (got.checksum != ref.checksum || got.processed != ref.processed ||
          got.cross_sent != ref.cross_sent ||
          got.cross_delivered != ref.cross_delivered ||
          got.windows != ref.windows) {
        std::cerr << "FATAL: workers=" << workers
                  << " diverged from the serial run (checksum " << std::hex
                  << got.checksum << " vs " << ref.checksum << std::dec
                  << ", events " << got.processed << " vs " << ref.processed
                  << ")\n";
        return 1;
      }
      row.speedup = got.seconds > 0 ? ref.seconds / got.seconds : 0;
    }
    std::cout << "  workers=" << workers << ": "
              << row.stats.seconds * 1e3 << " ms  ->  " << row.speedup
              << "x  (" << row.stats.processed << " events, "
              << row.stats.cross_delivered << " cross, "
              << row.stats.windows << " windows, checksum match)\n";
    rows.push_back(row);
  }

  std::cout << "\n  results byte-identical at every worker count; speedup "
               "is machine-dependent (target >= 1.8x at 4 workers on >= 8 "
               "islands with >= 4 cores; a 1-core host measures ~1.0x)\n";

  if (require_speedup > 0 && rows.back().speedup < require_speedup) {
    std::cerr << "FAIL: speedup " << rows.back().speedup
              << "x at workers=" << rows.back().workers << " is below the "
              << "required " << require_speedup << "x\n";
    return 1;
  }

  write_report(out, p, rows, hw);
  std::cout << "  report -> " << out << "\n";
  return 0;
}
