// Sec. 5.2: the chaining-optimized crossbar does not scale. For large
// islands (40 ABBs) the SPM<->DMA network exceeds 99% of the island area
// while buying only modest performance: most ABB pairs are not
// communicating at any given time, so the all-to-all capacity is severely
// over-provisioned.
#include <iostream>

#include "bench_util.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void sec52() {
  using namespace ara;
  benchutil::print_header(
      "Sec. 5.2 (chaining-optimized crossbar topology)",
      ">99% of a 40-ABB island's area; only modest performance gain");

  // Area share of the SPM<->DMA network across island sizes and topologies.
  dse::Table t({"ABBs/island", "net topology", "net area mm2",
                "share of island area"});
  for (std::uint32_t islands : {24u, 12u, 6u, 3u}) {
    for (auto topo : {island::SpmDmaTopology::kProxyXbar,
                      island::SpmDmaTopology::kChainingXbar}) {
      core::ArchConfig cfg = core::ArchConfig::paper_baseline(islands);
      cfg.island.net.topology = topo;
      core::System system(cfg);
      const auto& isl = system.island(0);
      t.add_row({std::to_string(120 / islands),
                 island::topology_name(topo),
                 dse::Table::num(isl.net_area_mm2(), 1),
                 dse::Table::pct(isl.net_area_mm2() / isl.total_area_mm2())});
    }
  }
  t.print(std::cout);

  // Performance: chaining xbar vs proxy xbar vs 2-ring on the two most
  // chaining-heavy benchmarks at 3 islands (40 ABBs/island).
  std::cout << "\nperformance at 3 islands (normalized to proxy xbar):\n";
  const double scale = benchutil::bench_scale();
  dse::Table pt({"benchmark", "proxy-xbar", "chaining-xbar", "2-ring,32B"});
  for (const char* name : {"Segmentation", "EKF-SLAM"}) {
    auto wl = workloads::make_benchmark(name, scale);
    core::ArchConfig proxy = core::ArchConfig::paper_baseline(3);
    core::ArchConfig chainx = proxy;
    chainx.island.net.topology = island::SpmDmaTopology::kChainingXbar;
    const core::ArchConfig ring = core::ArchConfig::ring_design(3, 2, 32);
    const std::string label(name);
    const double base =
        benchutil::metered_point(label + ", proxy-xbar", proxy, wl)
            .performance();
    pt.add_row({name, "1.000",
                dse::Table::num(
                    benchutil::metered_point(label + ", chaining-xbar", chainx,
                                             wl)
                            .performance() /
                        base,
                    3),
                dse::Table::num(
                    benchutil::metered_point(label + ", 2-ring,32B", ring, wl)
                            .performance() /
                        base,
                    3)});
  }
  pt.print(std::cout);
  std::cout << "=> the chaining-optimized crossbar buys performance but at "
               "an untenable area cost for large islands\n";
}

void micro_chain_transfer(benchmark::State& state) {
  ara::island::SpmDmaNetConfig cfg;
  cfg.topology = ara::island::SpmDmaTopology::kChainingXbar;
  auto net = ara::island::make_spm_dma_net("bench", cfg, 40);
  ara::Tick t = 0;
  for (auto _ : state) {
    t = net->chain(t, 0, 39, 512);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(micro_chain_transfer);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  sec52();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
