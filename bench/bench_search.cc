// Autotuning-search benchmark: dse::search head-to-head against the
// exhaustive grid sweep it replaces. For each evaluation budget the
// report records how much simulation the budgeted search spent and
// whether it reached the grid-optimal design point (and if not, how
// close its best got), plus a warm-cache rerun showing a repeated search
// against grid-warmed state simulating nothing.
//
// Results go to stdout and to a JSON report (BENCH_search.json by
// default; strict RFC 8259, validated in ctest by ara_json_check via
// tests/bench_search_smoke.cmake).
//
// Usage: bench_search [--scale F] [--space small|full] [--out FILE]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dse/result_cache.h"
#include "dse/search.h"
#include "obs/json_io.h"

namespace {

using ara::dse::Objective;
using ara::dse::ResultCache;
using ara::dse::SearchRequest;
using ara::dse::SearchResult;
using ara::dse::SearchSpace;
using ara::dse::SearchSpec;

double objective_metric(const ara::dse::SearchCandidate& c, Objective o) {
  switch (o) {
    case Objective::kPerf: return c.performance;
    case Objective::kPerfPerEnergy: return c.perf_per_energy;
    case Objective::kPerfPerArea: return c.perf_per_area;
  }
  return c.performance;
}

struct BudgetRow {
  std::uint64_t budget = 0;
  std::uint64_t evaluated = 0;
  std::uint64_t simulated = 0;
  bool found_optimal = false;
  double gap = 0;  // best_metric / grid_best_metric, 1.0 = optimal
  std::string best;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_search.json";
  std::string space_name = "small";
  double scale = 0.05;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--out") {
      out_path = next();
    } else if (arg == "--space") {
      space_name = next();
      if (space_name != "small" && space_name != "full") {
        std::cerr << "--space: expected small or full\n";
        return 2;
      }
    } else if (arg == "--scale") {
      scale = std::atof(next().c_str());
      if (!(scale > 0)) {
        std::cerr << "--scale: expected a positive number\n";
        return 2;
      }
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }

  SearchSpec spec;
  spec.workload = "Denoise";
  spec.scale = scale;
  spec.objective = Objective::kPerf;
  std::vector<std::uint64_t> budgets;
  if (space_name == "small") {
    // 18 points: enough structure for halving/refinement to matter while
    // the exhaustive reference stays cheap (the ctest smoke runs this).
    spec.space.islands = {3, 6, 12};
    spec.space.rings = {1, 2, 3};
    spec.space.widths = {16, 32};
    spec.space.ports = {1};
    spec.space.sharing = {false};
    budgets = {4, 8, 12};
  } else {
    // The paper's full sweep axes (SearchSpace defaults): 96 points.
    budgets = {8, 16, 24, 32};
  }
  const std::uint64_t space_size = spec.space.size();

  // Exhaustive grid reference: budget == space size puts dse::search in
  // grid mode, so the same evaluation pipeline produces the exact
  // frontier. Its cache doubles as the warm state for the rerun row.
  ResultCache grid_cache;
  SearchRequest grid_request;
  grid_request.spec = spec;
  grid_request.spec.budget = space_size;
  grid_request.cache = &grid_cache;
  const SearchResult grid = ara::dse::search(grid_request);
  const double grid_best = objective_metric(grid.best, spec.objective);
  std::cout << "grid: " << grid.simulated << " simulations over "
            << space_size << " points, best " << grid.best.spec.label()
            << "\n";

  std::vector<BudgetRow> rows;
  for (const std::uint64_t budget : budgets) {
    ResultCache cache;  // cold per budget: simulated == real search cost
    SearchRequest request;
    request.spec = spec;
    request.spec.budget = budget;
    request.cache = &cache;
    const SearchResult r = ara::dse::search(request);
    BudgetRow row;
    row.budget = budget;
    row.evaluated = r.evaluated;
    row.simulated = r.simulated;
    row.best = r.best.spec.label();
    row.found_optimal = row.best == grid.best.spec.label();
    const double best = objective_metric(r.best, spec.objective);
    row.gap = grid_best > 0 ? best / grid_best : 0;
    rows.push_back(row);
    std::cout << "budget " << budget << ": " << row.simulated
              << " simulations, best " << row.best
              << (row.found_optimal
                      ? " (grid optimal)"
                      : " (" + std::to_string(row.gap) + " of optimal)")
              << "\n";
  }

  // Warm rerun against the grid-warmed cache: the whole search is served
  // from memoized results (grid mode again, so every evaluation is a
  // full-fidelity point the cache already holds).
  SearchRequest warm_request;
  warm_request.spec = spec;
  warm_request.spec.budget = space_size;
  warm_request.cache = &grid_cache;
  const SearchResult warm = ara::dse::search(warm_request);
  std::cout << "warm rerun at budget " << warm.budget << ": "
            << warm.simulated << " simulations, " << warm.cache_hits
            << " cache hits\n";

  std::ostringstream os;
  os << "{\"bench\":\"search\",\"workload\":\"Denoise\",\"scale\":";
  ara::obs::json_number(os, scale, 17);
  os << ",\"space\":\"" << space_name << "\",\"space_size\":" << space_size
     << ",\"grid\":{\"simulations\":" << grid.simulated << ",\"best\":\"";
  ara::obs::json_escape(os, grid.best.spec.label());
  os << "\",\"metric\":";
  ara::obs::json_number(os, grid_best, 17);
  os << "},\"budgets\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const BudgetRow& row = rows[i];
    if (i > 0) os << ",";
    os << "{\"budget\":" << row.budget << ",\"evaluated\":" << row.evaluated
       << ",\"simulated\":" << row.simulated << ",\"found_optimal\":"
       << (row.found_optimal ? "true" : "false") << ",\"gap\":";
    ara::obs::json_number(os, row.gap, 17);
    os << ",\"best\":\"";
    ara::obs::json_escape(os, row.best);
    os << "\"}";
  }
  os << "],\"warm_rerun\":{\"budget\":" << warm.budget
     << ",\"simulated\":" << warm.simulated
     << ",\"cache_hits\":" << warm.cache_hits << "}}";

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 1;
  }
  out << os.str() << "\n";
  std::cout << "report -> " << out_path << "\n";
  return 0;
}
