// Figure 3: pipeline energy breakdown when custom ASIC replaces the
// compute units (Int ALU / FPU / Mul-Div).
// Paper: savings slice 24.9%; FPU 0.4%, Int ALU 0.2%, Mul/Div 0.2%;
// computation (compute + memory) now ~11% of the original energy.
#include <iostream>

#include "bench_util.h"
#include "dse/table.h"
#include "power/mcpat_like.h"

namespace {

void fig03() {
  using namespace ara;
  benchutil::print_header(
      "Figure 3 (energy breakdown with custom ASIC compute units)",
      "ALU/FPU/MulDiv savings 24.9% of original; compute <1%; "
      "remaining computation ~11%");

  const power::McPatLikePipeline original{power::PipelineParams{},
                                          power::InstructionMix{}};
  const auto asic = original.with_asic_compute_units(/*reduction=*/0.97);

  dse::Table t({"component", "share of original", "paper"});
  const double orig_total = original.total_pj();
  const char* paper[] = {"8.9%", "6.0%", "12.1%", "2.7%", "10.8%",
                         "23.7%", "0.4%", "0.2%", "0.2%", "10.1%"};
  double compute = 0, memory = 0;
  for (std::size_t i = 0; i < power::kNumPipeComponents; ++i) {
    const auto c = static_cast<power::PipeComponent>(i);
    const double share = asic.energy_pj(c) / orig_total;
    t.add_row({power::component_name(c), dse::Table::pct(share), paper[i]});
    if (power::is_compute_unit(c)) compute += share;
    if (c == power::PipeComponent::kMemory) memory += share;
  }
  t.add_row({"ALU/FPU/Mul/Div energy savings",
             dse::Table::pct(asic.savings_share()), "24.9%"});
  t.print(std::cout);

  std::cout << "\ncompute units now:        " << dse::Table::pct(compute)
            << " of original (paper: <1%)\n"
            << "computation (compute+mem): " << dse::Table::pct(compute + memory)
            << " of original (paper: ~11%)\n"
            << "=> an accelerator-rich architecture can attack the remaining "
            << dse::Table::pct(1 - compute - memory) << "\n";
}

void micro_substitution(benchmark::State& state) {
  ara::power::McPatLikePipeline model{ara::power::PipelineParams{},
                                      ara::power::InstructionMix{}};
  for (auto _ : state) {
    auto asic = model.with_asic_compute_units(0.97);
    benchmark::DoNotOptimize(asic.savings_share());
  }
}
BENCHMARK(micro_substitution);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig03();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
