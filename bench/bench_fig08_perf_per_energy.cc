// Figure 8: performance per unit energy of the SPM<->DMA network designs,
// for all seven benchmarks at 3 and 24 islands, normalized to the proxy
// crossbar at the respective island count.
//
// Paper shape: over-provisioning interconnect improves energy efficiency
// (higher performance at similar power per bit); efficiency gains from
// stronger interconnect shrink at 24 islands where the NoC interface
// dominates.
#include <iostream>

#include "bench_util.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig08() {
  using namespace ara;
  benchutil::print_header(
      "Figure 8 (performance per unit energy; normalized to proxy xbar)",
      "stronger interconnect => more energy-efficient operation; gains "
      "smaller at 24 islands (up to ~5-6X for chaining-heavy at 3 islands)");

  const double scale = benchutil::bench_scale();
  for (std::uint32_t islands : {3u, 24u}) {
    std::cout << "\n--- " << islands << " islands ---\n";
    const auto points = dse::paper_network_configs(islands);
    std::vector<std::string> headers = {"benchmark"};
    for (const auto& p : points) headers.push_back(p.label);
    dse::Table t(std::move(headers));

    for (const auto& name : workloads::benchmark_names()) {
      auto wl = workloads::make_benchmark(name, scale);
      std::vector<std::string> row = {name};
      double base = 0;
      for (std::size_t i = 0; i < points.size(); ++i) {
        const auto r = dse::run_point(points[i].config, wl);
        if (i == 0) base = r.perf_per_energy();
        row.push_back(
            dse::Table::num(benchutil::norm(r.perf_per_energy(), base), 3));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
}

void micro_energy_rollup(benchmark::State& state) {
  ara::core::System system(ara::core::ArchConfig::best_config());
  auto wl = ara::workloads::make_benchmark("Deblur", 0.05);
  auto r = system.run(wl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.energy.total());
    benchmark::DoNotOptimize(r.perf_per_energy());
  }
}
BENCHMARK(micro_energy_rollup);

}  // namespace

int main(int argc, char** argv) {
  fig08();
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
