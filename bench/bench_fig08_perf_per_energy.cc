// Figure 8: performance per unit energy of the SPM<->DMA network designs,
// for all seven benchmarks at 3 and 24 islands, normalized to the proxy
// crossbar at the respective island count.
//
// Paper shape: over-provisioning interconnect improves energy efficiency
// (higher performance at similar power per bit); efficiency gains from
// stronger interconnect shrink at 24 islands where the NoC interface
// dominates.
//
// The 2 x 7 x 5 = 70 design points run on the parallel sweep executor
// (`--jobs N`, default hardware concurrency).
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/system.h"
#include "dse/parallel_sweep.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void fig08(unsigned jobs) {
  using namespace ara;
  benchutil::print_header(
      "Figure 8 (performance per unit energy; normalized to proxy xbar)",
      "stronger interconnect => more energy-efficient operation; gains "
      "smaller at 24 islands (up to ~5-6X for chaining-heavy at 3 islands)");

  const double scale = benchutil::bench_scale();
  const auto& names = workloads::benchmark_names();
  const std::vector<std::uint32_t> island_counts = {3, 24};

  std::vector<workloads::Workload> wls;
  wls.reserve(names.size());
  for (const auto& name : names) {
    wls.push_back(workloads::make_benchmark(name, scale));
  }

  std::vector<dse::SweepJob> sweep_jobs;
  std::vector<std::string> labels;
  for (std::uint32_t islands : island_counts) {
    const auto points = dse::paper_network_configs(islands);
    for (const auto& wl : wls) {
      for (const auto& p : points) {
        sweep_jobs.push_back({p.config, &wl});
        labels.push_back(wl.name + ", " + p.label + ", " +
                         std::to_string(islands) + " islands");
      }
    }
  }

  dse::SweepRequest request;
  request.sweep = std::move(sweep_jobs);
  request.jobs = jobs;
  request.shards = benchutil::bench_shards();
  request.cache = benchutil::sweep_cache();
  const benchutil::WallTimer timer;
  const auto results = dse::run(request);
  const double wall_s = timer.seconds();

  std::size_t idx = 0;
  for (std::uint32_t islands : island_counts) {
    std::cout << "\n--- " << islands << " islands ---\n";
    const auto points = dse::paper_network_configs(islands);
    std::vector<std::string> headers = {"benchmark"};
    for (const auto& p : points) headers.push_back(p.label);
    dse::Table t(std::move(headers));

    for (const auto& name : names) {
      std::vector<std::string> row = {name};
      double base = 0;
      for (std::size_t i = 0; i < points.size(); ++i, ++idx) {
        const auto& r = results[idx].result;
        if (i == 0) base = r.perf_per_energy();
        row.push_back(
            dse::Table::num(benchutil::norm(r.perf_per_energy(), base), 3));
      }
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }
  benchutil::print_sweep_stats(results, wall_s,
                               benchutil::resolved_jobs(jobs));
  benchutil::MetricsSink::instance().record_sweep(labels, results);
}

void micro_energy_rollup(benchmark::State& state) {
  ara::core::System system(ara::core::ArchConfig::best_config());
  auto wl = ara::workloads::make_benchmark("Deblur", 0.05);
  auto r = system.run(wl);
  for (auto _ : state) {
    benchmark::DoNotOptimize(r.energy.total());
    benchmark::DoNotOptimize(r.perf_per_energy());
  }
}
BENCHMARK(micro_energy_rollup);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig08(cli.jobs);
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
