// Ablation study of the design choices DESIGN.md calls out, beyond the
// paper's own sweeps:
//  1. atomic virtual-accelerator composition (the ABC's model) vs naive
//     per-task placement with memory spills;
//  2. the lightweight interrupt path (ARC [6]) vs OS-level interrupt cost;
//  3. DMA through the shared L2 banks vs bypassing straight to DRAM
//     (the organization the BiN [7] line of work motivates).
#include <iostream>

#include "bench_util.h"
#include "core/system.h"
#include "dse/sweep.h"
#include "dse/table.h"
#include "workloads/registry.h"

namespace {

void ablation() {
  using namespace ara;
  benchutil::print_header(
      "Ablations (design choices behind the evaluated system)",
      "composition, lightweight interrupts, L2-resident DMA");

  const double scale = benchutil::bench_scale();

  std::cout << "\n1) ABC composition model (EKF-SLAM, best config):\n";
  {
    auto wl = workloads::make_benchmark("EKF-SLAM", scale);
    const core::ArchConfig atomic_cfg = core::ArchConfig::best_config();
    core::ArchConfig per_task = atomic_cfg;
    per_task.force_per_task = true;
    const auto a = benchutil::metered_point("composition: atomic", atomic_cfg, wl);
    const auto b = benchutil::metered_point("composition: per-task", per_task, wl);
    dse::Table t({"composition", "rel perf", "chains direct", "spilled"});
    t.add_row({"atomic (ABC)", "1.000", std::to_string(a.chains_direct),
               std::to_string(a.chains_spilled)});
    t.add_row({"per-task + spill",
               dse::Table::num(b.performance() / a.performance(), 3),
               std::to_string(b.chains_direct),
               std::to_string(b.chains_spilled)});
    t.print(std::cout);
  }

  std::cout << "\n2) interrupt path (Denoise, best config):\n";
  {
    auto wl = workloads::make_benchmark("Denoise", scale);
    dse::Table t({"interrupt overhead", "rel perf"});
    double base = 0;
    for (Tick overhead : {Tick{50}, Tick{2000}, Tick{10000}}) {
      core::ArchConfig cfg = core::ArchConfig::best_config();
      cfg.interrupt_overhead = overhead;
      const auto r = benchutil::metered_point(
          "interrupt overhead " + std::to_string(overhead), cfg, wl);
      if (base == 0) base = r.performance();
      t.add_row({(overhead == 50 ? "lightweight (50 cyc)"
                                 : "OS path (" + std::to_string(overhead) +
                                       " cyc)"),
                 dse::Table::num(r.performance() / base, 3)});
    }
    t.print(std::cout);
  }

  std::cout << "\n3) DMA data placement (Deblur, best config):\n";
  {
    auto wl = workloads::make_benchmark("Deblur", scale);
    const auto through_l2 = benchutil::metered_point(
        "dma through L2", core::ArchConfig::best_config(), wl);
    core::ArchConfig bypass = core::ArchConfig::best_config();
    bypass.mem.l2_bypass = true;
    const auto direct = benchutil::metered_point("dma bypass to DRAM", bypass, wl);
    dse::Table t({"memory path", "rel perf", "DRAM MB", "L2 hit"});
    t.add_row({"through shared L2 (BiN-style)", "1.000",
               dse::Table::num(
                   static_cast<double>(through_l2.dram_bytes) / 1e6, 1),
               dse::Table::pct(through_l2.l2_hit_rate)});
    t.add_row({"bypass to DRAM",
               dse::Table::num(direct.performance() / through_l2.performance(),
                               3),
               dse::Table::num(static_cast<double>(direct.dram_bytes) / 1e6,
                               1),
               "-"});
    t.print(std::cout);
  }
}

void ablation_extra() {
  using namespace ara;
  const double scale = benchutil::bench_scale();

  std::cout << "\n4) GAM admission policy (mixed-size queue pressure):\n";
  {
    // A mixed queue (small Denoise jobs + large Segmentation jobs) is where
    // the admission order matters; drive the GAM directly.
    const auto small = workloads::make_benchmark("Denoise", scale);
    const auto large = workloads::make_benchmark("Segmentation", scale);
    dse::Table t({"policy", "makespan (cyc)", "p95 latency (cyc)",
                  "mean latency (cyc)"});
    for (auto policy : {abc::GamPolicy::kFifo, abc::GamPolicy::kShortestFirst,
                        abc::GamPolicy::kLargestFirst}) {
      core::ArchConfig cfg = core::ArchConfig::best_config();
      cfg.gam_policy = policy;
      cfg.max_jobs_in_flight = 4;  // force a deep GAM queue
      core::System sys(cfg);
      const Addr in = sys.memory().allocate(1 << 20);
      const Addr out = sys.memory().allocate(1 << 20);
      Tick makespan = 0;
      int done = 0;
      const int kJobs = 120;
      for (int j = 0; j < kJobs; ++j) {
        const auto* dfg = (j % 3 == 0) ? &large.dfg : &small.dfg;
        sys.gam().submit(dfg, in, out, sys.core_node(j % 8),
                         [&](JobId, Tick at) {
                           ++done;
                           makespan = std::max(makespan, at);
                         });
      }
      sys.simulator().run();
      const auto& lat = sys.gam().job_latency();
      t.add_row({abc::gam_policy_name(policy), std::to_string(makespan),
                 std::to_string(lat.percentile(0.95)),
                 dse::Table::num(lat.mean(), 0)});
    }
    t.print(std::cout);
  }

  std::cout << "\n5) BiN buffer pinning in the NUCA L2 (Deblur):\n";
  {
    auto wl = workloads::make_benchmark("Deblur", scale);
    core::ArchConfig off = core::ArchConfig::best_config();
    core::ArchConfig on = off;
    on.mem.bin_pinning = true;
    const auto r_off = benchutil::metered_point("bin pinning off", off, wl);
    const auto r_on = benchutil::metered_point("bin pinning on", on, wl);
    dse::Table t({"BiN pinning", "rel perf", "L2 hit", "DRAM MB"});
    t.add_row({"off", "1.000", dse::Table::pct(r_off.l2_hit_rate),
               dse::Table::num(static_cast<double>(r_off.dram_bytes) / 1e6, 1)});
    t.add_row({"on",
               dse::Table::num(r_on.performance() / r_off.performance(), 3),
               dse::Table::pct(r_on.l2_hit_rate),
               dse::Table::num(static_cast<double>(r_on.dram_bytes) / 1e6, 1)});
    t.print(std::cout);
  }
}

void micro_config_clone(benchmark::State& state) {
  const auto base = ara::core::ArchConfig::best_config();
  for (auto _ : state) {
    auto copy = base;
    copy.force_per_task = true;
    benchmark::DoNotOptimize(copy.summary().size());
  }
}
BENCHMARK(micro_config_clone);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  ablation();
  ablation_extra();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
