// Figure 2: energy breakdown of the original OoO pipeline under a
// SPEC-like instruction mix (McPAT-style model).
// Paper shares: Fetch 8.9, Decode 6.0, Rename 12.1, Reg Files 2.7,
// Scheduler 10.8, Misc 23.7, FPU 7.9, Int ALU 13.8, Mul/Div 4.0,
// Memory 10.1 (percent).
#include <iostream>

#include "bench_util.h"
#include "dse/table.h"
#include "power/mcpat_like.h"

namespace {

constexpr double kPaperShares[] = {8.9, 6.0, 12.1, 2.7, 10.8,
                                   23.7, 7.9, 13.8, 4.0, 10.1};

void fig02() {
  using namespace ara;
  benchutil::print_header(
      "Figure 2 (energy breakdown of original pipeline)",
      "compute units 25.7% + memory 10.1%; 64% supports the "
      "instruction-oriented model");

  const power::McPatLikePipeline model{power::PipelineParams{},
                                       power::InstructionMix{}};
  dse::Table t({"component", "share (model)", "share (paper)",
                "pJ/instruction"});
  double compute = 0, memory = 0;
  for (std::size_t i = 0; i < power::kNumPipeComponents; ++i) {
    const auto c = static_cast<power::PipeComponent>(i);
    t.add_row({power::component_name(c), dse::Table::pct(model.share(c)),
               dse::Table::num(kPaperShares[i], 1) + "%",
               dse::Table::num(model.energy_pj(c), 1)});
    if (power::is_compute_unit(c)) compute += model.share(c);
    if (c == power::PipeComponent::kMemory) memory += model.share(c);
  }
  t.print(std::cout);
  std::cout << "\ncompute units total: " << dse::Table::pct(compute)
            << " (paper: 25.7%)\n"
            << "memory:              " << dse::Table::pct(memory)
            << " (paper: 10.1%)\n"
            << "overhead (neither):  " << dse::Table::pct(1 - compute - memory)
            << " (paper: 64%)\n"
            << "total energy/instr:  " << dse::Table::num(model.total_pj(), 0)
            << " pJ\n";
}

void micro_breakdown(benchmark::State& state) {
  ara::power::McPatLikePipeline model{ara::power::PipelineParams{},
                                      ara::power::InstructionMix{}};
  for (auto _ : state) {
    double sum = 0;
    for (std::size_t i = 0; i < ara::power::kNumPipeComponents; ++i) {
      sum += model.share(static_cast<ara::power::PipeComponent>(i));
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(micro_breakdown);

}  // namespace

int main(int argc, char** argv) {
  const auto cli = ara::benchutil::parse_cli(argc, argv);
  fig02();
  ara::benchutil::MetricsSink::instance().export_to(cli.metrics_file);
  std::cout << "\n";
  return ara::benchutil::run_micro(argc, argv);
}
