// Event-kernel hot-path benchmark: the overhauled Simulator (slab entries,
// small-buffer callbacks, two-level calendar queue) head-to-head against a
// faithful replica of the previous kernel (std::function entries in one
// (tick, seq) priority_queue), on the schedule patterns the full-system
// simulations actually produce.
//
// Both kernels execute the exact same event sequences — a checksum over
// every dispatch asserts it — so the wall-clock ratio is a pure kernel
// speedup, jobs=1, no simulation semantics involved. Results go to stdout
// and to a JSON report (BENCH_kernel.json by default; strict RFC 8259,
// validated in ctest by ara_json_check).
//
// Usage: bench_kernel_hotpath [--events N] [--repeats R] [--out FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <queue>
#include <string>
#include <vector>

#include "obs/json_io.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace {

using ara::Tick;

// ---------------------------------------------------------------------------
// Replica of the pre-overhaul kernel: one std::priority_queue of value
// entries holding std::function callbacks. Kept interface-compatible with
// ara::sim::Simulator for the templated drivers below.
class LegacySimulator {
 public:
  using EventFn = std::function<void()>;

  Tick now() const { return now_; }

  void schedule_at(Tick at, EventFn fn) {
    queue_.push(Entry{at, next_seq_++, std::move(fn)});
  }
  void schedule_in(Tick delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  bool step() {
    if (queue_.empty()) return false;
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    now_ = entry.at;
    ++events_processed_;
    entry.fn();
    return true;
  }

  void run() {
    while (step()) {
    }
  }

  std::uint64_t events_processed() const { return events_processed_; }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

// ---------------------------------------------------------------------------
// Schedule patterns. Each is a template so the identical code (and the
// identical lambda capture sizes) runs on both kernels; `checksum` folds in
// every dispatch so the compiler can't elide work and so we can assert both
// kernels saw the same sequence.

struct Mix {
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;

  void touch(Tick now, std::uint64_t payload) {
    ++events;
    checksum = checksum * 1099511628211ULL + (now + payload + 1);
  }
};

/// What a real scheduler's continuation captures: `this` plus a few scalars
/// (task id, chunk index, size). 32 bytes — past std::function's inline
/// buffer (16 on common ABIs, so the legacy kernel heap-allocates it),
/// comfortably inside EventCallback's 56-byte budget.
struct Capture {
  std::uint64_t a = 0, b = 0, c = 0;
  std::uint64_t sum() const { return a + b + c; }
};

/// DMA-chunk / pipeline-stage pattern: many concurrent chains, each event
/// rescheduling its successor a few ticks out. This is the kernel's common
/// case — near-future appends, popped in FIFO bucket order.
template <typename Sim>
void near_chain(Sim& sim, Mix& mix, std::uint64_t budget) {
  constexpr int kChains = 64;
  struct Chain {
    Sim* sim;
    Mix* mix;
    std::uint64_t* remaining;
    ara::sim::Rng rng{0};
  };
  std::vector<Chain> chains(kChains, Chain{&sim, &mix, &budget});
  for (int c = 0; c < kChains; ++c) {
    chains[c].rng = ara::sim::Rng(1000 + c);
    Chain* chain = &chains[c];
    auto step = [chain](auto&& self, Capture cap) -> void {
      chain->mix->touch(chain->sim->now(), cap.sum());
      if (*chain->remaining == 0) return;
      --*chain->remaining;
      cap.b += 1;
      chain->sim->schedule_in(1 + chain->rng.next_below(8),
                              [self, cap]() mutable { self(self, cap); });
    };
    const Capture cap{static_cast<std::uint64_t>(c), 0, 42};
    sim.schedule_at(static_cast<Tick>(c % 8),
                    [step, cap]() mutable { step(step, cap); });
  }
  sim.run();
}

/// GAM-burst pattern: admission events fan out same-tick work (slot grants,
/// task starts) that must run in schedule order within the tick.
template <typename Sim>
void same_tick_fanout(Sim& sim, Mix& mix, std::uint64_t budget) {
  struct Driver {
    Sim* sim;
    Mix* mix;
    std::uint64_t remaining;
  };
  Driver driver{&sim, &mix, budget};
  Driver* d = &driver;
  auto burst = [d](auto&& self) -> void {
    constexpr std::uint64_t kFan = 8;
    const std::uint64_t n = std::min<std::uint64_t>(kFan, d->remaining);
    d->remaining -= n;
    for (std::uint64_t i = 0; i < n; ++i) {
      const Capture cap{i, n, 7};
      d->sim->schedule_in(
          0, [d, cap] { d->mix->touch(d->sim->now(), cap.sum()); });
    }
    if (d->remaining > 0) {
      d->sim->schedule_in(3, [self]() mutable { self(self); });
    }
  };
  sim.schedule_at(0, [burst]() mutable { burst(burst); });
  sim.run();
}

/// Mixed-horizon pattern: mostly near-future work with a fraction of long
/// sleeps (trace samplers, idle-stretch interrupts) that land beyond the
/// calendar window and must migrate back in order.
template <typename Sim>
void mixed_horizon(Sim& sim, Mix& mix, std::uint64_t budget) {
  struct Driver {
    Sim* sim;
    Mix* mix;
    std::uint64_t remaining;
    ara::sim::Rng rng{7};
  };
  Driver driver{&sim, &mix, budget, ara::sim::Rng(7)};
  Driver* d = &driver;
  auto step = [d](auto&& self, Capture cap) -> void {
    d->mix->touch(d->sim->now(), cap.sum());
    if (d->remaining == 0) return;
    --d->remaining;
    cap.a += 1;
    const Tick delay = d->rng.next_below(16) == 0
                           ? 4096 + d->rng.next_below(8192)  // long sleep
                           : 1 + d->rng.next_below(32);      // near future
    d->sim->schedule_in(delay,
                        [self, cap]() mutable { self(self, cap); });
  };
  for (int i = 0; i < 16; ++i) {
    const Capture cap{static_cast<std::uint64_t>(i), 9, 1};
    sim.schedule_at(static_cast<Tick>(i),
                    [step, cap]() mutable { step(step, cap); });
  }
  sim.run();
}

// ---------------------------------------------------------------------------

struct Timing {
  double seconds = 0;  // best of the repeats
  std::uint64_t events = 0;
  std::uint64_t checksum = 0;
};

template <typename Sim, typename Pattern>
Timing time_pattern(Pattern pattern, std::uint64_t budget, int repeats) {
  Timing best;
  best.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    Sim sim;
    Mix mix;
    const auto t0 = std::chrono::steady_clock::now();
    pattern(sim, mix, budget);
    const double s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (s < best.seconds) best.seconds = s;
    best.events = mix.events;
    best.checksum = mix.checksum;
  }
  return best;
}

struct Scenario {
  const char* name;
  Timing legacy;
  Timing kernel;
  double speedup() const {
    return kernel.seconds > 0 ? legacy.seconds / kernel.seconds : 0;
  }
};

void write_report(const std::string& path, const std::vector<Scenario>& rows,
                  double legacy_total, double kernel_total,
                  std::uint64_t heap_callbacks) {
  std::ofstream os(path);
  if (!os) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(1);
  }
  os << "{\"bench\":\"kernel_hotpath\",\"jobs\":1,\"scenarios\":[";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    ara::obs::json_escape(os, r.name);
    os << "\",\"events\":" << r.kernel.events << ",\"legacy_s\":";
    ara::obs::json_number(os, r.legacy.seconds, 9);
    os << ",\"kernel_s\":";
    ara::obs::json_number(os, r.kernel.seconds, 9);
    os << ",\"speedup\":";
    ara::obs::json_number(os, r.speedup(), 6);
    os << ",\"checksum_match\":"
       << (r.legacy.checksum == r.kernel.checksum ? "true" : "false") << "}";
  }
  os << "],\"total\":{\"legacy_s\":";
  ara::obs::json_number(os, legacy_total, 9);
  os << ",\"kernel_s\":";
  ara::obs::json_number(os, kernel_total, 9);
  os << ",\"speedup\":";
  ara::obs::json_number(os, kernel_total > 0 ? legacy_total / kernel_total : 0,
                        6);
  os << "},\"heap_callbacks\":" << heap_callbacks << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t events = 400000;
  int repeats = 5;
  std::string out = "BENCH_kernel.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << arg << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--events") {
      events = std::strtoull(next().c_str(), nullptr, 10);
    } else if (arg == "--repeats") {
      repeats = std::atoi(next().c_str());
    } else if (arg == "--out") {
      out = next();
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "bench_kernel_hotpath [--events N] [--repeats R] "
                   "[--out FILE]\n";
      return 0;
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      return 2;
    }
  }
  if (events == 0 || repeats <= 0) {
    std::cerr << "--events and --repeats must be positive\n";
    return 2;
  }

  std::cout << "event-kernel hot path: overhauled Simulator vs legacy "
               "replica (std::function + priority_queue), jobs=1, "
            << events << " events/scenario, best of " << repeats
            << " repeats\n\n";

  std::vector<Scenario> rows;
  auto run_scenario = [&](const char* name, auto pattern) {
    Scenario s;
    s.name = name;
    s.legacy = time_pattern<LegacySimulator>(pattern, events, repeats);
    s.kernel = time_pattern<ara::sim::Simulator>(pattern, events, repeats);
    if (s.legacy.checksum != s.kernel.checksum ||
        s.legacy.events != s.kernel.events) {
      std::cerr << "FATAL: kernels diverged on '" << name
                << "' (events " << s.legacy.events << " vs "
                << s.kernel.events << ")\n";
      std::exit(1);
    }
    std::cout << "  " << name << ": legacy " << s.legacy.seconds * 1e3
              << " ms, kernel " << s.kernel.seconds * 1e3 << " ms  ->  "
              << s.speedup() << "x  (" << s.kernel.events
              << " events, checksums match)\n";
    rows.push_back(s);
  };

  run_scenario("near_chain", [](auto& sim, Mix& mix, std::uint64_t budget) {
    near_chain(sim, mix, budget);
  });
  run_scenario("same_tick_fanout",
               [](auto& sim, Mix& mix, std::uint64_t budget) {
                 same_tick_fanout(sim, mix, budget);
               });
  run_scenario("mixed_horizon", [](auto& sim, Mix& mix, std::uint64_t budget) {
    mixed_horizon(sim, mix, budget);
  });

  double legacy_total = 0, kernel_total = 0;
  for (const auto& r : rows) {
    legacy_total += r.legacy.seconds;
    kernel_total += r.kernel.seconds;
  }
  const double speedup =
      kernel_total > 0 ? legacy_total / kernel_total : 0;

  // Callback-inlining telemetry: re-run one pattern on an instrumented
  // simulator and report how many captures spilled to the heap.
  ara::sim::Simulator probe;
  Mix probe_mix;
  near_chain(probe, probe_mix, std::min<std::uint64_t>(events, 10000));
  const std::uint64_t heap_callbacks = probe.heap_callbacks();

  std::cout << "\n  total: legacy " << legacy_total * 1e3 << " ms, kernel "
            << kernel_total * 1e3 << " ms  ->  " << speedup
            << "x speedup (target >= 1.3x)\n"
            << "  heap-spilled callbacks in near_chain probe: "
            << heap_callbacks << "\n";

  write_report(out, rows, legacy_total, kernel_total, heap_callbacks);
  std::cout << "  report -> " << out << "\n";
  return 0;
}
