#include "sim/event_queue.h"

#include <chrono>
#include <utility>

namespace ara::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kOther:
      return "other";
    case EventKind::kGamRequest:
      return "gam_request";
    case EventKind::kGamInterrupt:
      return "gam_interrupt";
    case EventKind::kJobAdmit:
      return "job_admit";
    case EventKind::kTaskComplete:
      return "task_complete";
    case EventKind::kSlotRelease:
      return "slot_release";
    case EventKind::kJobFinish:
      return "job_finish";
    case EventKind::kTraceSampler:
      return "trace_sampler";
  }
  return "?";
}

Simulator::~Simulator() = default;

Simulator::Entry* Simulator::alloc_entry() {
  if (free_list_ == nullptr) {
    slabs_.push_back(std::make_unique<Entry[]>(kSlabEntries));
    Entry* slab = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabEntries; ++i) {
      slab[i].next = free_list_;
      free_list_ = &slab[i];
    }
  }
  Entry* e = free_list_;
  free_list_ = e->next;
  e->next = nullptr;
  return e;
}

void Simulator::free_entry(Entry* e) {
  e->fn.reset();  // release heap captures before the entry idles in the pool
  e->next = free_list_;
  free_list_ = e;
}

void Simulator::bucket_append(Entry* e) {
  Bucket& b = buckets_[e->at & kWheelMask];
  e->next = nullptr;
  if (b.tail == nullptr) {
    b.head = b.tail = e;
  } else {
    b.tail->next = e;
    b.tail = e;
  }
}

void Simulator::migrate_overflow() {
  // The heap pops in (tick, seq) order and direct appends always carry a
  // larger seq than anything migrated earlier (seq is global and
  // monotonic), so bucket FIFOs stay seq-sorted per tick.
  const Tick end = wheel_base_ + kWheelSize;
  while (!overflow_.empty() && overflow_.top()->at < end) {
    Entry* e = overflow_.top();
    overflow_.pop();
    bucket_append(e);
    ++wheel_count_;
  }
}

void Simulator::schedule_at(Tick at, EventFn fn, EventKind kind) {
  if (at < now_) {
    throw ScheduleError("schedule_at(" + std::to_string(at) +
                        "): tick is in the past (now=" +
                        std::to_string(now_) + ")");
  }
  if (!fn) {
    throw ScheduleError("schedule_at: empty callback");
  }
  if (!fn.is_inline()) ++heap_callbacks_;
  Entry* e = alloc_entry();
  e->at = at;
  e->seq = next_seq_++;
  e->kind = kind;
  e->fn = std::move(fn);
  ++size_;
  // Invariant: wheel_base_ <= now_ whenever caller code runs (the window
  // only moves in step(), to the tick being dispatched), so `at` is never
  // below the window and the unsigned subtraction is safe.
  if (at - wheel_base_ < kWheelSize) {
    bucket_append(e);
    ++wheel_count_;
    // A peek (run_until) may have advanced the cursor past `at` while the
    // wheel was empty ahead of it; pull it back so the scan sees the event.
    if (at < cursor_) cursor_ = at;
  } else {
    overflow_.push(e);
  }
}

void Simulator::set_observer(std::function<void()> fn, std::uint64_t every) {
  if (every == 0) {
    throw ScheduleError("set_observer: period must be non-zero");
  }
  observer_ = std::move(fn);
  observer_period_ = every;
  observer_next_ = events_processed_ + every;
}

void Simulator::clear_observer() {
  observer_ = nullptr;
  observer_period_ = 0;
  observer_next_ = 0;
}

bool Simulator::step() {
  if (size_ == 0) return false;
  if (wheel_count_ == 0) {
    // Everything pending is beyond the window: jump the window to the next
    // event instead of sliding across the gap one bucket at a time.
    wheel_base_ = cursor_ = overflow_.top()->at;
    migrate_overflow();
  }
  Bucket* b = &buckets_[cursor_ & kWheelMask];
  while (b->head == nullptr) {
    ++cursor_;
    b = &buckets_[cursor_ & kWheelMask];
  }
  Entry* e = b->head;
  b->head = e->next;
  if (b->head == nullptr) b->tail = nullptr;
  --wheel_count_;
  --size_;

  now_ = e->at;
  if (now_ > wheel_base_) {
    // Slide the window so it always covers [now, now + kWheelSize): one
    // heap-top comparison per time advance keeps "near future" relative to
    // the current tick, not to wherever the window last jumped.
    wheel_base_ = now_;
    migrate_overflow();
  }
  ++events_processed_;
  auto& stats = kind_stats_[static_cast<std::size_t>(e->kind)];
  ++stats.count;
  if (self_profiling_) {
    // Self-profiling only: measured seconds land in EventKindStats.seconds,
    // which is host telemetry and never feeds simulated time or results.
    const auto t0 = std::chrono::steady_clock::now();  // ara-lint: allow(no-wall-clock)
    e->fn();
    stats.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)  // ara-lint: allow(no-wall-clock)
            .count();
  } else {
    e->fn();
  }
  free_entry(e);
  if (observer_period_ != 0 && events_processed_ >= observer_next_) {
    observer_next_ = events_processed_ + observer_period_;
    observer_();
  }
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::peek_next(Tick* at) {
  if (size_ == 0) return false;
  if (wheel_count_ == 0) {
    *at = overflow_.top()->at;
  } else {
    while (buckets_[cursor_ & kWheelMask].head == nullptr) ++cursor_;
    *at = buckets_[cursor_ & kWheelMask].head->at;
  }
  return true;
}

void Simulator::advance_to(Tick at) {
  if (at < now_) {
    throw ScheduleError("advance_to(" + std::to_string(at) +
                        "): tick is in the past (now=" + std::to_string(now_) +
                        ")");
  }
  Tick next;
  if (peek_next(&next) && next < at) {
    throw ScheduleError("advance_to(" + std::to_string(at) +
                        "): would jump over a pending event at tick " +
                        std::to_string(next));
  }
  now_ = at;
}

bool Simulator::run_until(Tick limit) {
  Tick next;
  while (peek_next(&next)) {
    if (next > limit) {
      now_ = limit;
      return false;
    }
    step();
  }
  return true;
}

}  // namespace ara::sim
