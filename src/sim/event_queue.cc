#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace ara::sim {

void Simulator::schedule_at(Tick at, EventFn fn) {
  assert(at >= now_ && "cannot schedule an event in the past");
  if (at < now_) at = now_;  // defensive in release builds
  queue_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never observe the moved-from entry.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.at;
  ++events_processed_;
  entry.fn();
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::run_until(Tick limit) {
  while (!queue_.empty() && queue_.top().at <= limit) {
    step();
  }
  if (queue_.empty()) return true;
  now_ = limit;
  return false;
}

}  // namespace ara::sim
