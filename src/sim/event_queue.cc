#include "sim/event_queue.h"

#include <cassert>
#include <chrono>
#include <utility>

namespace ara::sim {

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kOther:
      return "other";
    case EventKind::kGamRequest:
      return "gam_request";
    case EventKind::kGamInterrupt:
      return "gam_interrupt";
    case EventKind::kJobAdmit:
      return "job_admit";
    case EventKind::kTaskComplete:
      return "task_complete";
    case EventKind::kSlotRelease:
      return "slot_release";
    case EventKind::kJobFinish:
      return "job_finish";
    case EventKind::kTraceSampler:
      return "trace_sampler";
  }
  return "?";
}

void Simulator::schedule_at(Tick at, EventFn fn, EventKind kind) {
  assert(at >= now_ && "cannot schedule an event in the past");
  if (at < now_) at = now_;  // defensive in release builds
  queue_.push(Entry{at, next_seq_++, std::move(fn), kind});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast, which is safe
  // because we pop immediately and never observe the moved-from entry.
  Entry entry = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = entry.at;
  ++events_processed_;
  auto& stats = kind_stats_[static_cast<std::size_t>(entry.kind)];
  ++stats.count;
  if (self_profiling_) {
    const auto t0 = std::chrono::steady_clock::now();
    entry.fn();
    stats.seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  } else {
    entry.fn();
  }
  return true;
}

void Simulator::run() {
  while (step()) {
  }
}

bool Simulator::run_until(Tick limit) {
  while (!queue_.empty() && queue_.top().at <= limit) {
    step();
  }
  if (queue_.empty()) return true;
  now_ = limit;
  return false;
}

}  // namespace ara::sim
