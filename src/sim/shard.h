// Partitioned parallel event kernel with conservative time-window sync.
//
// ShardedSimulator splits a simulation into `sites` (one Simulator per
// site: in the ara mapping each accelerator island plus its SPMs/xbar is a
// site, and GAM/NoC/MC form the hub site). Events local to a site go
// through that site's calendar queue exactly as before; events crossing
// sites travel through per-edge bounded channels and may only target ticks
// at least `lookahead` past the sender's clock — the conservative PDES
// rule, with the NoC hop latency as the natural lookahead in ara.
//
// Execution proceeds in lock-stepped, grid-aligned time windows no wider
// than the lookahead: every cross event sent while window k executes lands
// at or beyond the end of window k, so it is always staged at a barrier
// before the window containing its tick starts. Within a window each busy
// site dispatches the deterministic merge of
//   - its staged cross events, ordered by (tick, src_site, edge seq), and
//   - its local queue in the PR-3 (tick, local seq) order,
// with cross-before-local at equal ticks. Cross events are dispatched by
// the runner itself (never inserted into the destination queue), so they
// consume no local seq number — which is what makes the per-site dispatch
// sequence, and therefore the whole run, byte-identical across worker
// counts AND window sizes.
//
// `workers` only chooses how many threads execute the busy sites of a
// window (round-robin over the sorted busy list); it cannot affect any
// result, counter or checksum. All shared coordination goes through one
// annotated Mutex/CondVar generation barrier; site state is only ever
// touched by the worker that owns it for the current window, with the
// barrier providing the happens-before edges between windows.
//
// See DESIGN.md "Partitioned kernel" for the full determinism argument.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace ara::sim {

/// Thrown when a cross-site event violates the conservative lookahead
/// contract: send() requires `at >= site_now(src) + lookahead`. Also
/// raised at a window barrier if a violating event slipped past the send
/// check (fault injection / future bugs): an event behind the executed
/// horizon can no longer be dispatched in order, so it is never silently
/// delivered late.
class LookaheadError : public std::logic_error {
 public:
  explicit LookaheadError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a per-edge channel exceeds its per-window capacity bound.
/// Channel occupancy is a deterministic function of the sender's dispatch
/// stream, so a run either always fits or always throws.
class ChannelError : public std::logic_error {
 public:
  explicit ChannelError(const std::string& what) : std::logic_error(what) {}
};

struct ShardOptions {
  /// Number of partitions. Site ids are 0..sites-1; by convention site 0 is
  /// the hub (GAM/NoC/MC) and 1..N are islands, but the kernel is agnostic.
  std::uint32_t sites = 1;
  /// Conservative lookahead: minimum cross-site scheduling distance in
  /// ticks (>= 1). In ara this is the minimum NoC traversal latency between
  /// two partitions.
  Tick lookahead = 1;
  /// Synchronization window width; 0 means "use lookahead" (the widest
  /// safe window). Must be in [1, lookahead]. Results are invariant to the
  /// choice; only the window/stall counters depend on it.
  Tick window = 0;
  /// Worker threads executing busy sites, capped at `sites`; 0 resolves to
  /// std::thread::hardware_concurrency(). Purely an execution-strategy
  /// knob: results are byte-identical for every value.
  unsigned workers = 1;
  /// Per-edge channel bound: maximum cross events buffered on one
  /// (src,dst) edge within a single window.
  std::size_t channel_capacity = 4096;
  /// When false the topology has no cross edges (independent sites):
  /// channels are not allocated, send() throws, and the runner collapses
  /// the whole run into one mega-window per site. This is the degenerate
  /// plan core::System uses today (every model event lives on the hub).
  bool cross_traffic = true;
  /// Fault injection for the differential battery's negative tests: invert
  /// the cross-before-local tie rule at equal ticks. A real merge-order bug
  /// of this shape must be caught by the checksum/byte comparisons.
  bool fault_invert_merge = false;
  /// Fault injection: skip the eager lookahead check in send(), proving the
  /// barrier-level causality check still catches the violation.
  bool fault_skip_lookahead_check = false;
};

class ShardedSimulator {
 public:
  explicit ShardedSimulator(const ShardOptions& opts);
  /// Borrowed-hub variant: site 0 dispatches through `hub` (owned by the
  /// caller, e.g. core::System's Simulator, keeping its observer and
  /// per-kind stats intact); sites 1..N-1 are owned by the runner.
  ShardedSimulator(const ShardOptions& opts, Simulator* hub);
  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;
  ~ShardedSimulator();

  std::uint32_t sites() const { return static_cast<std::uint32_t>(sites_.size()); }
  unsigned workers() const { return workers_; }
  Tick lookahead() const { return lookahead_; }
  Tick window() const { return window_; }

  /// Schedule a site-local event; identical semantics to
  /// Simulator::schedule_at on that site's queue. During run(), callbacks
  /// may only schedule onto the site they are executing on (or send()).
  void schedule_at(std::uint32_t site, Tick at, EventFn fn,
                   EventKind kind = EventKind::kOther);
  void schedule_in(std::uint32_t site, Tick delay, EventFn fn,
                   EventKind kind = EventKind::kOther);

  /// Send a cross-site event from `src` to `dst` for tick `at`. Requires
  /// `at >= site_now(src) + lookahead` (LookaheadError otherwise) and a
  /// free slot on the (src,dst) channel (ChannelError otherwise). Must be
  /// called from the event stream of `src` (or before run()).
  void send(std::uint32_t src, std::uint32_t dst, Tick at, EventFn fn,
            EventKind kind = EventKind::kOther);

  Tick site_now(std::uint32_t site) const;
  /// The site's local queue (created on demand); tests and the hub owner
  /// use this for direct inspection.
  Simulator& site_sim(std::uint32_t site);

  /// Run to completion: window loop with channel merges at every barrier,
  /// until all queues, stages and channels drain. Deterministic for any
  /// worker count; site callbacks' exceptions are rethrown on the calling
  /// thread (lowest site id wins when several sites fail in one window).
  void run();

  // --- deterministic aggregates (never depend on `workers`) ---
  /// Local events accepted by site queues (excludes cross sends).
  std::uint64_t events_scheduled() const;
  /// Local dispatches + cross deliveries.
  std::uint64_t events_processed() const;
  std::uint64_t cross_sent() const;
  std::uint64_t cross_delivered() const;
  /// Local pending + staged + in-flight channel events.
  std::size_t pending() const;
  /// Lock-stepped windows executed (1 for a cross_traffic=false run with
  /// any work at all).
  std::uint64_t windows() const { return windows_; }
  /// Stall telemetry: site-windows in which a site had nothing to do.
  std::uint64_t idle_site_windows() const { return idle_site_windows_; }
  /// High-water mark of any single (src,dst) channel at a barrier.
  std::size_t channel_peak() const { return channel_peak_; }

  /// Order-sensitive dispatch checksum. Folds every local dispatch
  /// (tick, running count) and every cross delivery (tick, src, edge seq,
  /// kind) in per-site dispatch order, then folds the per-site sums in
  /// site order — any reordering anywhere changes it.
  std::uint64_t checksum() const;
  std::uint64_t site_checksum(std::uint32_t site) const;

 private:
  struct CrossEvent {
    Tick at = 0;
    std::uint32_t src = 0;
    std::uint64_t seq = 0;  // per-(src,dst)-edge send sequence
    EventKind kind = EventKind::kOther;
    EventCallback fn;
  };

  /// One (src,dst) edge. Only the worker executing `src` appends within a
  /// window; the coordinator drains it at the barrier (the generation
  /// barrier provides the happens-before edges, so no per-channel lock).
  struct Channel {
    std::vector<CrossEvent> buf;
    std::uint64_t next_seq = 0;
  };

  struct Site {
    Simulator* sim = nullptr;  // borrowed hub or owned.get(); lazy
    std::unique_ptr<Simulator> owned;
    /// Delivered cross events sorted by (at, src, seq); staged_next is the
    /// consumption cursor, compacted at barriers.
    std::vector<CrossEvent> staged;
    std::size_t staged_next = 0;
    std::uint64_t cross_delivered = 0;
    std::uint64_t checksum = 1469598103934665603ull;  // FNV offset basis
    std::exception_ptr error;
  };

  Simulator& ensure_sim(std::uint32_t site);
  Channel& channel(std::uint32_t src, std::uint32_t dst) {
    return channels_[src * sites_.size() + dst];
  }
  /// Next actionable tick for `site` (staged or local); false if idle.
  bool site_next(Site& s, Tick* at);
  /// Drain every channel into its destination's staging, keeping staging
  /// sorted by (at, src, seq). Throws LookaheadError if an event's tick is
  /// behind the executed horizon (only reachable with the send check
  /// faulted off — the barrier backstop of the negative tests).
  void merge_channels();
  /// Dispatch the (cross, local) merge of one site up to end_incl.
  void run_site_window(Site& s, Tick end_incl);
  void run_assigned(unsigned worker);
  void worker_loop(unsigned worker);
  void start_workers();
  void stop_workers();

  ShardOptions opts_;
  Tick lookahead_ = 1;
  Tick window_ = 1;
  unsigned workers_ = 1;

  std::vector<Site> sites_;
  std::vector<Channel> channels_;  // sites x sites, row = src (empty when
                                   // cross_traffic is off)

  // --- deterministic counters ---
  // (cross_sent is derived: each channel's next_seq counts its sends, and
  // only the worker owning `src` touches an edge within a window, so no
  // shared send counter exists to race on.)
  std::uint64_t windows_ = 0;
  std::uint64_t idle_site_windows_ = 0;
  std::size_t channel_peak_ = 0;
  /// Exclusive end of the executed region: no event below this tick can be
  /// dispatched any more.
  Tick horizon_ = 0;

  // --- window barrier (the only cross-thread state) ---
  // Protocol: the coordinator writes the busy list / window bounds, then
  // bumps generation_ under mu_; workers execute their round-robin share of
  // busy_ and report via done_count_. Site/channel data is intentionally
  // unguarded: between the generation hand-offs exactly one thread touches
  // any given site, and the barrier supplies the ordering.
  common::Mutex mu_;
  common::CondVar cv_;
  std::uint64_t generation_ ARA_GUARDED_BY(mu_) = 0;
  unsigned done_count_ ARA_GUARDED_BY(mu_) = 0;
  bool shutdown_ ARA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  std::vector<std::uint32_t> busy_;  // sorted busy site ids for this window
  Tick win_end_incl_ = 0;
};

}  // namespace ara::sim
