#include "sim/shard.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace ara::sim {

namespace {

constexpr Tick kNoLimit = std::numeric_limits<Tick>::max();
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Order-sensitive fold, same chain shape as the hot-path benchmark's
/// dispatch checksum: any change in value *or position* changes the sum.
std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return h * kFnvPrime + v + 1;
}

/// Strict weak order for staged cross events: (tick, src site, edge seq).
bool cross_less(const Tick a_at, const std::uint32_t a_src,
                const std::uint64_t a_seq, const Tick b_at,
                const std::uint32_t b_src, const std::uint64_t b_seq) {
  if (a_at != b_at) return a_at < b_at;
  if (a_src != b_src) return a_src < b_src;
  return a_seq < b_seq;
}

}  // namespace

ShardedSimulator::ShardedSimulator(const ShardOptions& opts)
    : ShardedSimulator(opts, nullptr) {}

ShardedSimulator::ShardedSimulator(const ShardOptions& opts, Simulator* hub)
    : opts_(opts) {
  if (opts.sites == 0) {
    throw std::invalid_argument("ShardedSimulator: sites must be >= 1");
  }
  if (opts.lookahead == 0) {
    throw std::invalid_argument("ShardedSimulator: lookahead must be >= 1");
  }
  window_ = opts.window == 0 ? opts.lookahead : opts.window;
  if (window_ > opts.lookahead) {
    throw std::invalid_argument(
        "ShardedSimulator: window must not exceed lookahead (a send inside "
        "window k could otherwise land back inside window k)");
  }
  lookahead_ = opts.lookahead;
  unsigned w = opts.workers;
  if (w == 0) w = std::max(1u, std::thread::hardware_concurrency());
  workers_ = std::min<unsigned>(w, opts.sites);
  sites_.resize(opts.sites);
  if (hub != nullptr) sites_[0].sim = hub;
  if (opts.cross_traffic) {
    channels_.resize(static_cast<std::size_t>(opts.sites) * opts.sites);
  }
}

ShardedSimulator::~ShardedSimulator() { stop_workers(); }

Simulator& ShardedSimulator::ensure_sim(std::uint32_t site) {
  Site& s = sites_.at(site);
  if (s.sim == nullptr) {
    // Lazy: a Simulator carries a full 4096-bucket wheel, and idle sites
    // (every island in today's hub-only degenerate plan) never need one.
    s.owned = std::make_unique<Simulator>();
    s.sim = s.owned.get();
  }
  return *s.sim;
}

void ShardedSimulator::schedule_at(std::uint32_t site, Tick at, EventFn fn,
                                   EventKind kind) {
  ensure_sim(site).schedule_at(at, std::move(fn), kind);
}

void ShardedSimulator::schedule_in(std::uint32_t site, Tick delay, EventFn fn,
                                   EventKind kind) {
  Simulator& sim = ensure_sim(site);
  sim.schedule_at(sim.now() + delay, std::move(fn), kind);
}

void ShardedSimulator::send(std::uint32_t src, std::uint32_t dst, Tick at,
                            EventFn fn, EventKind kind) {
  if (!opts_.cross_traffic) {
    throw std::logic_error(
        "ShardedSimulator::send: this plan has no cross edges "
        "(cross_traffic=false)");
  }
  if (src >= sites() || dst >= sites()) {
    throw std::out_of_range("ShardedSimulator::send: bad site id");
  }
  if (!fn) {
    throw ScheduleError("ShardedSimulator::send: empty callback");
  }
  const Tick src_clock = site_now(src);
  if (!opts_.fault_skip_lookahead_check && at < src_clock + lookahead_) {
    throw LookaheadError(
        "send(" + std::to_string(src) + "->" + std::to_string(dst) +
        ", at=" + std::to_string(at) + "): below lookahead horizon " +
        std::to_string(src_clock) + "+" + std::to_string(lookahead_));
  }
  Channel& ch = channel(src, dst);
  if (ch.buf.size() >= opts_.channel_capacity) {
    throw ChannelError("send(" + std::to_string(src) + "->" +
                       std::to_string(dst) + "): channel capacity " +
                       std::to_string(opts_.channel_capacity) +
                       " exceeded within one window");
  }
  CrossEvent ev;
  ev.at = at;
  ev.src = src;
  ev.seq = ch.next_seq++;
  ev.kind = kind;
  ev.fn = std::move(fn);
  ch.buf.push_back(std::move(ev));
}

Tick ShardedSimulator::site_now(std::uint32_t site) const {
  const Site& s = sites_.at(site);
  return s.sim == nullptr ? 0 : s.sim->now();
}

Simulator& ShardedSimulator::site_sim(std::uint32_t site) {
  return ensure_sim(site);
}

bool ShardedSimulator::site_next(Site& s, Tick* at) {
  bool have = false;
  if (s.staged_next < s.staged.size()) {
    *at = s.staged[s.staged_next].at;
    have = true;
  }
  Tick local;
  if (s.sim != nullptr && s.sim->peek_next(&local)) {
    if (!have || local < *at) *at = local;
    have = true;
  }
  return have;
}

void ShardedSimulator::merge_channels() {
  if (channels_.empty()) return;
  const std::uint32_t n = sites();
  for (std::uint32_t dst = 0; dst < n; ++dst) {
    Site& d = sites_[dst];
    bool compacted = false;
    for (std::uint32_t src = 0; src < n; ++src) {
      Channel& ch = channel(src, dst);
      if (ch.buf.empty()) continue;
      channel_peak_ = std::max(channel_peak_, ch.buf.size());
      // Barrier-level causality backstop: an event behind the executed
      // horizon can never be dispatched in order. With the eager send()
      // check on, this is unreachable; the negative tests fault that check
      // off and prove violations are still refused here.
      for (const CrossEvent& ev : ch.buf) {
        if (ev.at < horizon_) {
          throw LookaheadError(
              "cross event " + std::to_string(src) + "->" +
              std::to_string(dst) + " at tick " + std::to_string(ev.at) +
              " is behind the executed horizon " + std::to_string(horizon_));
        }
      }
      if (!compacted) {
        // Drop the consumed prefix once per dst before growing the vector.
        d.staged.erase(d.staged.begin(),
                       d.staged.begin() +
                           static_cast<std::ptrdiff_t>(d.staged_next));
        d.staged_next = 0;
        compacted = true;
      }
      // Per-edge sends are seq-ordered but not tick-ordered; sort the batch
      // (stable on (at, seq) — src is constant within an edge), then merge.
      std::sort(ch.buf.begin(), ch.buf.end(),
                [](const CrossEvent& a, const CrossEvent& b) {
                  return cross_less(a.at, a.src, a.seq, b.at, b.src, b.seq);
                });
      const std::ptrdiff_t mid =
          static_cast<std::ptrdiff_t>(d.staged.size());
      d.staged.insert(d.staged.end(),
                      std::make_move_iterator(ch.buf.begin()),
                      std::make_move_iterator(ch.buf.end()));
      std::inplace_merge(d.staged.begin(), d.staged.begin() + mid,
                         d.staged.end(),
                         [](const CrossEvent& a, const CrossEvent& b) {
                           return cross_less(a.at, a.src, a.seq, b.at, b.src,
                                             b.seq);
                         });
      ch.buf.clear();
    }
  }
}

void ShardedSimulator::run_site_window(Site& s, Tick end_incl) {
  for (;;) {
    const bool have_cross = s.staged_next < s.staged.size() &&
                            s.staged[s.staged_next].at <= end_incl;
    Tick local = 0;
    const bool have_local =
        s.sim != nullptr && s.sim->peek_next(&local) && local <= end_incl;
    if (!have_cross && !have_local) break;
    if (!have_cross && end_incl == kNoLimit && s.staged_next >= s.staged.size()) {
      // Mega-window fast path (cross_traffic=false): nothing can ever be
      // staged, so drain the local queue without re-peeking per event.
      while (s.sim->step()) {
        s.checksum = fold(fold(s.checksum, s.sim->now()),
                          s.sim->events_processed());
      }
      break;
    }
    bool pick_cross;
    if (!have_cross) {
      pick_cross = false;
    } else if (!have_local) {
      pick_cross = true;
    } else {
      const Tick tc = s.staged[s.staged_next].at;
      // Deterministic merge rule: cross-before-local at equal ticks. The
      // injected fault inverts the tie so the differential battery can
      // prove a merge-order bug is caught.
      pick_cross = opts_.fault_invert_merge ? tc < local : tc <= local;
    }
    if (pick_cross) {
      CrossEvent& ev = s.staged[s.staged_next];
      if (s.sim == nullptr) {
        // First cross delivery to an otherwise-silent site; its callback
        // may schedule local follow-ups, so it needs a queue now.
        s.owned = std::make_unique<Simulator>();
        s.sim = s.owned.get();
      }
      s.sim->advance_to(ev.at);
      s.checksum = fold(
          fold(fold(fold(s.checksum, ev.at), ev.src + 1), ev.seq),
          static_cast<std::uint64_t>(ev.kind));
      ++s.cross_delivered;
      EventCallback fn = std::move(ev.fn);
      ++s.staged_next;
      fn();
    } else {
      s.sim->step();
      s.checksum = fold(fold(s.checksum, s.sim->now()),
                        s.sim->events_processed());
    }
  }
}

void ShardedSimulator::run_assigned(unsigned worker) {
  for (std::size_t i = worker; i < busy_.size(); i += workers_) {
    Site& s = sites_[busy_[i]];
    try {
      run_site_window(s, win_end_incl_);
    } catch (...) {
      s.error = std::current_exception();
    }
  }
}

void ShardedSimulator::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      common::MutexLock lock(mu_);
      while (!shutdown_ && generation_ == seen) cv_.wait(mu_);
      if (shutdown_) return;
      seen = generation_;
    }
    run_assigned(worker);
    {
      common::MutexLock lock(mu_);
      ++done_count_;
    }
    cv_.notify_all();
  }
}

void ShardedSimulator::start_workers() {
  if (!threads_.empty()) return;
  threads_.reserve(workers_ - 1);
  for (unsigned w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

void ShardedSimulator::stop_workers() {
  if (threads_.empty()) return;
  {
    common::MutexLock lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  threads_.clear();
  {
    common::MutexLock lock(mu_);
    shutdown_ = false;
  }
}

void ShardedSimulator::run() {
  for (;;) {
    merge_channels();
    // Coordinator-side planning: find the earliest actionable tick.
    bool any = false;
    Tick m = 0;
    for (Site& s : sites_) {
      Tick t;
      if (site_next(s, &t)) {
        if (!any || t < m) m = t;
        any = true;
      }
    }
    if (!any) break;

    Tick end_incl;
    if (!opts_.cross_traffic) {
      // Independent sites: no event can ever cross, so one mega-window per
      // site is exactly equivalent to lock-stepped windows — and free.
      end_incl = kNoLimit;
    } else {
      const Tick base = m - (m % window_);
      end_incl = base + window_ - 1;
      horizon_ = base + window_;
    }

    busy_.clear();
    for (std::uint32_t i = 0; i < sites(); ++i) {
      Tick t;
      if (site_next(sites_[i], &t) && t <= end_incl) busy_.push_back(i);
    }

    if (busy_.size() <= 1 || workers_ == 1) {
      // Inline path: a single busy site (or a serial plan) runs on the
      // calling thread without waking anyone. Strategy, not semantics —
      // the dispatch stream is identical either way.
      for (std::uint32_t id : busy_) {
        Site& s = sites_[id];
        try {
          run_site_window(s, end_incl);
        } catch (...) {
          s.error = std::current_exception();
        }
      }
    } else {
      start_workers();
      win_end_incl_ = end_incl;
      {
        common::MutexLock lock(mu_);
        done_count_ = 0;
        ++generation_;
      }
      cv_.notify_all();
      run_assigned(0);
      {
        common::MutexLock lock(mu_);
        while (done_count_ < workers_ - 1) cv_.wait(mu_);
      }
    }

    ++windows_;
    idle_site_windows_ += sites() - busy_.size();

    for (Site& s : sites_) {
      // Lowest site id wins when several sites failed in one window, so
      // the surfaced error is deterministic for every worker count.
      if (s.error) {
        std::exception_ptr err = s.error;
        s.error = nullptr;
        stop_workers();
        std::rethrow_exception(err);
      }
    }
  }
  stop_workers();
}

std::uint64_t ShardedSimulator::events_scheduled() const {
  std::uint64_t n = 0;
  for (const Site& s : sites_) {
    if (s.sim != nullptr) n += s.sim->events_scheduled();
  }
  return n;
}

std::uint64_t ShardedSimulator::events_processed() const {
  std::uint64_t n = 0;
  for (const Site& s : sites_) {
    if (s.sim != nullptr) n += s.sim->events_processed();
    n += s.cross_delivered;
  }
  return n;
}

std::uint64_t ShardedSimulator::cross_delivered() const {
  std::uint64_t n = 0;
  for (const Site& s : sites_) n += s.cross_delivered;
  return n;
}

std::uint64_t ShardedSimulator::cross_sent() const {
  std::uint64_t n = 0;
  for (const Channel& ch : channels_) n += ch.next_seq;
  return n;
}

std::size_t ShardedSimulator::pending() const {
  std::size_t n = 0;
  for (const Site& s : sites_) {
    if (s.sim != nullptr) n += s.sim->pending();
    n += s.staged.size() - s.staged_next;
  }
  for (const Channel& ch : channels_) n += ch.buf.size();
  return n;
}

std::uint64_t ShardedSimulator::checksum() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const Site& s : sites_) h = fold(h, s.checksum);
  return h;
}

std::uint64_t ShardedSimulator::site_checksum(std::uint32_t site) const {
  return sites_.at(site).checksum;
}

}  // namespace ara::sim
