#include "sim/log.h"

#include <atomic>
#include <mutex>

namespace ara::sim {

namespace {
// Relaxed ordering suffices: the level is a filtering threshold, not a
// synchronization point between simulations.
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_output_mutex;
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_line(LogLevel level, Tick tick, const std::string& area,
              const std::string& message) {
  if (level < log_level()) return;
  // One lock per line: concurrent simulations (parallel DSE workers) must
  // not interleave characters within a line or race on the stream state.
  std::lock_guard<std::mutex> lock(g_output_mutex);
  std::cerr << "[" << tick << "] " << area << ": " << message << "\n";
}

}  // namespace ara::sim
