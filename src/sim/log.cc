#include "sim/log.h"

namespace ara::sim {

namespace {
LogLevel g_level = LogLevel::kWarn;
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, Tick tick, const std::string& area,
              const std::string& message) {
  if (level < g_level) return;
  std::cerr << "[" << tick << "] " << area << ": " << message << "\n";
}

}  // namespace ara::sim
