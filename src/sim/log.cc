#include "sim/log.h"

namespace ara::sim {

Logger& logger() {
  // Never destroyed: worker threads may log during process teardown.
  static Logger* const instance = new Logger;  // ara-lint: allow(no-raw-new-delete)
  return *instance;
}

void Logger::emit(LogLevel level, Tick tick, const std::string& area,
                  const std::string& message) {
  if (level < this->level()) return;
  common::MutexLock lock(mu_);
  *sink_ << "[" << tick << "] " << area << ": " << message << "\n";
}

void Logger::set_sink(std::ostream* sink) {
  common::MutexLock lock(mu_);
  sink_ = sink != nullptr ? sink : &std::cerr;
}

}  // namespace ara::sim
