// Minimal leveled logger. Disabled (Warn) by default so simulations stay
// quiet; tests and examples can raise the level for tracing.
//
// Thread-safe: the level is an atomic and each log line is emitted under a
// mutex, so concurrent simulations (one Simulator per thread, as in the
// parallel DSE executor) never interleave characters or race.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

#include "common/types.h"

namespace ara::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Global log threshold; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Emit a log line: "[tick] area: message". Used via the ARA_LOG macro so
/// message construction is skipped when the level is filtered out.
void log_line(LogLevel level, Tick tick, const std::string& area,
              const std::string& message);

}  // namespace ara::sim

#define ARA_LOG(level, tick, area, expr)                             \
  do {                                                               \
    if ((level) >= ::ara::sim::log_level()) {                        \
      std::ostringstream ara_log_os_;                                \
      ara_log_os_ << expr;                                           \
      ::ara::sim::log_line((level), (tick), (area), ara_log_os_.str()); \
    }                                                                \
  } while (0)
