// Minimal leveled logger. Disabled (Warn) by default so simulations stay
// quiet; tests and examples can raise the level for tracing.
//
// Thread-safe: the process-wide Logger keeps the level in an atomic and
// emits each line with the sink held under an annotated mutex, so
// concurrent simulations (one Simulator per thread, as in the parallel DSE
// executor) never interleave characters or race. The lock discipline is
// machine-checked by Clang's capability analysis
// (-DARA_ENABLE_THREAD_SAFETY_ANALYSIS=ON).
#pragma once

#include <atomic>
#include <iostream>
#include <sstream>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace ara::sim {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kOff = 4 };

/// Process-wide logging state: an atomic level threshold plus a
/// mutex-guarded output sink. One instance exists (logger()); the free
/// functions below are the conventional API.
class Logger {
 public:
  LogLevel level() const {
    // Relaxed ordering suffices: the level is a filtering threshold, not a
    // synchronization point between simulations.
    return level_.load(std::memory_order_relaxed);
  }
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }

  /// Emit one line: "[tick] area: message". One lock per line: concurrent
  /// simulations (parallel DSE workers) must not interleave characters
  /// within a line or race on the stream state.
  void emit(LogLevel level, Tick tick, const std::string& area,
            const std::string& message) ARA_EXCLUDES(mu_);

  /// Redirect output (default std::cerr). `sink` is borrowed and must
  /// outlive all logging; pass nullptr to restore std::cerr. Tests use this
  /// to capture output.
  void set_sink(std::ostream* sink) ARA_EXCLUDES(mu_);

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  common::Mutex mu_;
  std::ostream* sink_ ARA_GUARDED_BY(mu_) = &std::cerr;
};

/// The process-wide logger instance.
Logger& logger();

/// Global log threshold; messages below it are dropped.
inline LogLevel log_level() { return logger().level(); }
inline void set_log_level(LogLevel level) { logger().set_level(level); }

/// Emit a log line: "[tick] area: message". Used via the ARA_LOG macro so
/// message construction is skipped when the level is filtered out.
inline void log_line(LogLevel level, Tick tick, const std::string& area,
                     const std::string& message) {
  logger().emit(level, tick, area, message);
}

}  // namespace ara::sim

#define ARA_LOG(level, tick, area, expr)                             \
  do {                                                               \
    if ((level) >= ::ara::sim::log_level()) {                        \
      std::ostringstream ara_log_os_;                                \
      ara_log_os_ << expr;                                           \
      ::ara::sim::log_line((level), (tick), (area), ara_log_os_.str()); \
    }                                                                \
  } while (0)
