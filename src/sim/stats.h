// Statistics collection: named counters, accumulators and histograms,
// owned by a registry so components can declare stats without global state.
//
// Threading: single-owner state, deliberately unannotated (see
// common/thread_annotations.h conventions). A StatRegistry belongs to one
// core::System and is read/written only from that System's thread; cross-
// thread consumers get a value copy via obs::MetricsSnapshot::capture.
// Registration names must follow "<subsystem>.<id>.<stat>" — enforced by
// ara_lint's stat-naming rule.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace ara::sim {

/// Monotonic event counter (e.g. flits transmitted, SPM accesses).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  void inc(std::uint64_t by = 1) { value_ += by; }
  std::uint64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::uint64_t value_ = 0;
};

/// Running scalar accumulator for real-valued quantities (e.g. joules).
class Accumulator {
 public:
  explicit Accumulator(std::string name) : name_(std::move(name)) {}
  void add(double v) {
    sum_ += v;
    ++n_;
    if (v < min_ || n_ == 1) min_ = v;
    if (v > max_ || n_ == 1) max_ = v;
  }
  double sum() const { return sum_; }
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  double min() const { return n_ == 0 ? 0.0 : min_; }
  double max() const { return n_ == 0 ? 0.0 : max_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  double sum_ = 0, min_ = 0, max_ = 0;
  std::uint64_t n_ = 0;
};

/// Fixed-bucket histogram for latency-style distributions.
class Histogram {
 public:
  /// Buckets: [0,width), [width,2*width), ..., plus an overflow bucket.
  Histogram(std::string name, std::uint64_t bucket_width, std::size_t buckets);

  void record(std::uint64_t v);
  std::uint64_t count() const { return count_; }
  std::uint64_t bucket_width() const { return width_; }
  double mean() const {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  std::uint64_t max_seen() const { return max_; }
  std::uint64_t min_seen() const { return count_ == 0 ? 0 : min_; }
  /// Value below which `fraction` (0..1) of samples fall, reported as the
  /// containing bucket's midpoint (bucket-granular; overflow reports the
  /// true max). The upper bound was reported before PR 7 — it overstated
  /// p50 for distributions narrower than one bucket.
  std::uint64_t percentile(double fraction) const;
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::uint64_t width_;
  std::vector<std::uint64_t> buckets_;  // last bucket = overflow
  std::uint64_t count_ = 0, sum_ = 0, max_ = 0, min_ = 0;
};

/// Registry of named stats. Component constructors call counter()/etc. to
/// create-or-fetch; reporting code iterates.
class StatRegistry {
 public:
  Counter& counter(const std::string& name);
  Accumulator& accumulator(const std::string& name);
  Histogram& histogram(const std::string& name, std::uint64_t bucket_width = 64,
                       std::size_t buckets = 64);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Accumulator* find_accumulator(const std::string& name) const;

  /// Raise `name` to the absolute value `value` (create-or-fetch). Used by
  /// end-of-run roll-ups that copy totals tracked in component members into
  /// the registry; counters are monotonic, so a lower value is a no-op.
  void set_counter(const std::string& name, std::uint64_t value) {
    Counter& c = counter(name);
    if (value > c.value()) c.inc(value - c.value());
  }

  /// Sum of all counters whose name starts with `prefix`.
  std::uint64_t counter_sum_by_prefix(const std::string& prefix) const;
  /// Sum of all accumulators whose name starts with `prefix`.
  double accumulator_sum_by_prefix(const std::string& prefix) const;

  /// Human-readable dump of every stat, sorted by name.
  void print(std::ostream& os) const;

  /// Iteration access for exporters (name-sorted by map ordering).
  const std::map<std::string, std::unique_ptr<Counter>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Accumulator>>& accumulators()
      const {
    return accumulators_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Accumulator>> accumulators_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace ara::sim
