// SharedLink: the contention primitive used for every bandwidth-limited
// resource in the simulator (NoC links, ring segments, crossbar ports,
// SPM ports, memory-controller channels).
//
// A link has a bandwidth (bytes per cycle) and a pipeline latency. A
// payload occupies the link for ceil(bytes / bandwidth) cycles starting at
// the earliest gap at or after its ready time, and arrives at the far side
// pipeline_latency cycles after its last byte leaves.
//
// Reservations are interval-based with gap filling: because the simulator
// computes transfer paths as reservation chains (a payload reserves its
// whole route when issued, possibly far in the future), a naive
// single-watermark link would let a future response block an earlier
// request that shares one hop — serializing the entire system. Gap filling
// restores service-in-ready-order behaviour at each link.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace ara::sim {

class SharedLink {
 public:
  /// `bytes_per_cycle` must be > 0. `name` keys this link's stats.
  SharedLink(std::string name, double bytes_per_cycle, Tick pipeline_latency);

  /// Reserve the link for `bytes` starting no earlier than `ready_at`.
  /// Returns the tick at which the payload has fully arrived at the far side.
  Tick submit(Tick ready_at, Bytes bytes);

  /// Earliest tick at which a payload ready at `t` could start transmitting
  /// (ignores gap lengths; exact for payloads of one occupancy-cycle).
  Tick next_free(Tick t) const;

  Tick pipeline_latency() const { return latency_; }
  double bytes_per_cycle() const { return bytes_per_cycle_; }
  const std::string& name() const { return name_; }

  /// Total bytes accepted so far.
  Bytes total_bytes() const { return total_bytes_; }

  /// Cycles during which the link was transmitting.
  Tick busy_cycles() const { return busy_cycles_; }

  /// Fraction of `elapsed` cycles the link spent transmitting.
  double utilization(Tick elapsed) const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(busy_cycles_) /
                              static_cast<double>(elapsed);
  }

  /// Number of submit() calls (≈ packets/chunks).
  std::uint64_t transfers() const { return transfers_; }

  /// Number of live reservation intervals (bounded by compaction; exposed
  /// for tests).
  std::size_t reservation_intervals() const { return busy_.size(); }

 private:
  void compact();

  std::string name_;
  double bytes_per_cycle_;
  Tick latency_;
  /// Non-overlapping busy intervals, keyed by start tick; value = end tick.
  std::map<Tick, Tick> busy_;
  Tick busy_cycles_ = 0;
  Bytes total_bytes_ = 0;
  std::uint64_t transfers_ = 0;
  Tick high_watermark_ = 0;
};

}  // namespace ara::sim
