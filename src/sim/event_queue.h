// Discrete-event simulation kernel.
//
// The whole ara simulator is driven by one Simulator instance: components
// schedule callbacks at absolute or relative ticks, and the kernel executes
// them in (tick, insertion-order) order. Determinism is guaranteed by the
// secondary sequence number: two events at the same tick always run in the
// order they were scheduled, independent of heap internals.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace ara::sim {

/// Callback type executed when an event fires. Events are one-shot.
using EventFn = std::function<void()>;

/// Deterministic discrete-event simulator.
///
/// Usage:
///   Simulator s;
///   s.schedule_in(10, []{ ... });
///   s.run();                      // until the queue drains
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in ticks.
  Tick now() const { return now_; }

  /// Schedule `fn` to run at absolute tick `at` (>= now()).
  void schedule_at(Tick at, EventFn fn);

  /// Schedule `fn` to run `delay` ticks from now.
  void schedule_in(Tick delay, EventFn fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run until the event queue is empty or `limit` is reached, whichever
  /// comes first. Events scheduled exactly at `limit` are executed.
  /// Returns true if the queue drained (i.e. the simulation completed).
  bool run_until(Tick limit);

  /// Number of events executed so far (useful for runaway detection and
  /// determinism checks).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of events still pending.
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ara::sim
