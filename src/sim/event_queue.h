// Discrete-event simulation kernel.
//
// The whole ara simulator is driven by one Simulator instance: components
// schedule callbacks at absolute or relative ticks, and the kernel executes
// them in (tick, insertion-order) order. Determinism is guaranteed by the
// secondary sequence number: two events at the same tick always run in the
// order they were scheduled, independent of heap internals.
//
// Self-profiling: every event carries an EventKind tag; the kernel always
// counts dispatches per kind, and — when set_self_profiling(true) — also
// attributes host wall-clock to each kind, so sweeps can report where the
// simulator itself spends time (not just where simulated cycles go).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace ara::sim {

/// Callback type executed when an event fires. Events are one-shot.
using EventFn = std::function<void()>;

/// Dispatch classes for self-profiling. Schedulers tag each event; kOther
/// covers anything without a more specific class.
enum class EventKind : std::uint8_t {
  kOther = 0,
  kGamRequest,     // core request arriving at the GAM
  kGamInterrupt,   // completion interrupt delivered to a core
  kJobAdmit,       // ABC job admission / composition attempt
  kTaskComplete,   // ABB task completion handling
  kSlotRelease,    // ABB slot release + pending-work drain
  kJobFinish,      // job completion bookkeeping
  kTraceSampler,   // periodic counter-track trace sampling
};
inline constexpr std::size_t kNumEventKinds = 8;

const char* event_kind_name(EventKind kind);

/// Per-kind dispatch telemetry. `seconds` stays 0 unless self-profiling is
/// enabled on the Simulator.
struct EventKindStats {
  std::uint64_t count = 0;
  double seconds = 0;
};

/// Deterministic discrete-event simulator.
///
/// Usage:
///   Simulator s;
///   s.schedule_in(10, []{ ... });
///   s.run();                      // until the queue drains
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time in ticks.
  Tick now() const { return now_; }

  /// Schedule `fn` to run at absolute tick `at` (>= now()).
  void schedule_at(Tick at, EventFn fn, EventKind kind = EventKind::kOther);

  /// Schedule `fn` to run `delay` ticks from now.
  void schedule_in(Tick delay, EventFn fn,
                   EventKind kind = EventKind::kOther) {
    schedule_at(now_ + delay, std::move(fn), kind);
  }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run until the event queue is empty or `limit` is reached, whichever
  /// comes first. Events scheduled exactly at `limit` are executed.
  /// Returns true if the queue drained (i.e. the simulation completed).
  bool run_until(Tick limit);

  /// Number of events executed so far (useful for runaway detection and
  /// determinism checks).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of events still pending.
  std::size_t pending() const { return queue_.size(); }

  /// Enable host wall-clock attribution per event kind. Off by default:
  /// two steady_clock reads per event are measurable on hot sweeps.
  void set_self_profiling(bool enabled) { self_profiling_ = enabled; }
  bool self_profiling() const { return self_profiling_; }

  /// Per-kind dispatch counts (always tracked) and wall-clock seconds
  /// (tracked only while self-profiling), indexed by EventKind.
  const std::array<EventKindStats, kNumEventKinds>& kind_stats() const {
    return kind_stats_;
  }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    EventFn fn;
    EventKind kind;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  bool self_profiling_ = false;
  std::array<EventKindStats, kNumEventKinds> kind_stats_{};
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace ara::sim
