// Discrete-event simulation kernel.
//
// The whole ara simulator is driven by one Simulator instance: components
// schedule callbacks at absolute or relative ticks, and the kernel executes
// them in (tick, insertion-order) order. Determinism is guaranteed by the
// secondary sequence number: two events at the same tick always run in the
// order they were scheduled, independent of queue internals.
//
// Hot-path design (see DESIGN.md "Event kernel internals"):
//  - Entries are slab-allocated and recycled through an intrusive free
//    list; scheduling an event performs no heap allocation once the slabs
//    are warm (callback captures up to EventCallback::kInlineBytes are
//    stored in place too).
//  - The pending set is a two-level calendar queue: a power-of-two wheel of
//    per-tick FIFO buckets covers the near future (where almost every event
//    of a simulation lands), and a (tick, seq) min-heap holds the overflow
//    beyond the wheel horizon. Events migrate from the heap into the wheel
//    as the window advances, preserving (tick, seq) order exactly.
//
// Self-profiling: every event carries an EventKind tag; the kernel always
// counts dispatches per kind, and — when set_self_profiling(true) — also
// attributes host wall-clock to each kind, so sweeps can report where the
// simulator itself spends time (not just where simulated cycles go).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.h"
#include "sim/event_callback.h"

namespace ara::sim {

/// Callback type executed when an event fires. Events are one-shot.
using EventFn = EventCallback;

/// Thrown by Simulator::schedule_at for `at < now()`: an event in the past
/// can never be dispatched in (tick, seq) order, so the old behaviour of
/// silently clamping it to now() reordered it after events it should have
/// preceded. Scheduling into the past is a caller bug, never valid input.
class ScheduleError : public std::logic_error {
 public:
  explicit ScheduleError(const std::string& what) : std::logic_error(what) {}
};

/// Dispatch classes for self-profiling. Schedulers tag each event; kOther
/// covers anything without a more specific class.
enum class EventKind : std::uint8_t {
  kOther = 0,
  kGamRequest,     // core request arriving at the GAM
  kGamInterrupt,   // completion interrupt delivered to a core
  kJobAdmit,       // ABC job admission / composition attempt
  kTaskComplete,   // ABB task completion handling
  kSlotRelease,    // ABB slot release + pending-work drain
  kJobFinish,      // job completion bookkeeping
  kTraceSampler,   // periodic counter-track trace sampling
};
inline constexpr std::size_t kNumEventKinds = 8;

const char* event_kind_name(EventKind kind);

/// Per-kind dispatch telemetry. `seconds` stays 0 unless self-profiling is
/// enabled on the Simulator.
struct EventKindStats {
  std::uint64_t count = 0;
  double seconds = 0;
};

/// Deterministic discrete-event simulator.
///
/// Usage:
///   Simulator s;
///   s.schedule_in(10, []{ ... });
///   s.run();                      // until the queue drains
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulation time in ticks.
  Tick now() const { return now_; }

  /// Schedule `fn` to run at absolute tick `at`. Throws ScheduleError when
  /// `at < now()` — see ScheduleError for why this is never clamped.
  void schedule_at(Tick at, EventFn fn, EventKind kind = EventKind::kOther);

  /// Schedule `fn` to run `delay` ticks from now.
  void schedule_in(Tick delay, EventFn fn,
                   EventKind kind = EventKind::kOther) {
    schedule_at(now_ + delay, std::move(fn), kind);
  }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until the event queue is empty.
  void run();

  /// Run until the event queue is empty or `limit` is reached, whichever
  /// comes first. Events scheduled exactly at `limit` are executed.
  /// Returns true if the queue drained (i.e. the simulation completed).
  bool run_until(Tick limit);

  /// Report the tick of the next pending event without dispatching it (the
  /// peek run_until always performed, exposed for window schedulers that
  /// must decide whether a partition has work inside a time window before
  /// running it). Returns false when nothing is pending. Advancing cursor_
  /// over empty buckets is safe: wheel entries all lie at or beyond it.
  bool peek_next(Tick* at);

  /// Advance now() to `at` without dispatching anything. The partitioned
  /// runner (sim/shard.h) dispatches cross-partition events itself — they
  /// never consume a local seq number, which is what keeps local (tick,seq)
  /// order invariant across window sizes — but the callbacks it runs must
  /// see now() == their tick so relative scheduling lands correctly.
  /// Throws ScheduleError when `at < now()` or when a pending event before
  /// `at` would be jumped over.
  void advance_to(Tick at);

  /// Number of events executed so far (useful for runaway detection and
  /// determinism checks).
  std::uint64_t events_processed() const { return events_processed_; }

  /// Number of events ever accepted by schedule_at. The kernel conservation
  /// law events_scheduled() == events_processed() + pending() holds at every
  /// point where caller code runs (the invariant checker asserts it).
  std::uint64_t events_scheduled() const { return next_seq_; }

  /// Number of events still pending.
  std::size_t pending() const { return size_; }

  /// Install a synchronous observer called once every `every` dispatched
  /// events, after the event's callback has run. The observer executes
  /// outside event accounting — it is not an event, consumes no seq number
  /// and perturbs no counter or kind statistic — so simulation results are
  /// bit-identical with or without one installed. Single slot (the runtime
  /// invariant checker claims it); `every` must be non-zero.
  void set_observer(std::function<void()> fn, std::uint64_t every);
  void clear_observer();

  /// Enable host wall-clock attribution per event kind. Off by default:
  /// two steady_clock reads per event are measurable on hot sweeps.
  void set_self_profiling(bool enabled) { self_profiling_ = enabled; }
  bool self_profiling() const { return self_profiling_; }

  /// Per-kind dispatch counts (always tracked) and wall-clock seconds
  /// (tracked only while self-profiling), indexed by EventKind.
  const std::array<EventKindStats, kNumEventKinds>& kind_stats() const {
    return kind_stats_;
  }

  /// Events whose callback captures spilled to the heap (larger than
  /// EventCallback::kInlineBytes). Telemetry for the hot-path benchmark; a
  /// rising value means a scheduler grew a capture past the inline budget.
  std::uint64_t heap_callbacks() const { return heap_callbacks_; }

 private:
  // Wheel geometry: one bucket per tick over a 4096-tick window. The
  // simulator's schedule pattern is overwhelmingly near-future (DMA chunk
  // completions, link grants, pipeline stages), so nearly every event is a
  // bucket append + pop; only long sleeps (trace samplers, interrupt
  // delivery across an idle stretch) touch the overflow heap.
  static constexpr std::size_t kWheelBits = 12;
  static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
  static constexpr Tick kWheelMask = kWheelSize - 1;
  static constexpr std::size_t kSlabEntries = 256;

  struct Entry {
    Tick at = 0;
    std::uint64_t seq = 0;
    Entry* next = nullptr;  // intrusive: bucket FIFO chain or free list
    EventKind kind = EventKind::kOther;
    EventCallback fn;
  };

  /// Per-tick FIFO; all entries in one bucket share the same tick, so
  /// append-at-tail preserves seq order.
  struct Bucket {
    Entry* head = nullptr;
    Entry* tail = nullptr;
  };

  struct OverflowLater {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  Entry* alloc_entry();
  void free_entry(Entry* e);
  void bucket_append(Entry* e);
  /// Pull overflow entries that now fall inside the wheel window. Only
  /// called when the target buckets are empty of older-seq entries, so
  /// popping the heap in (tick, seq) order keeps every bucket sorted.
  void migrate_overflow();

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t heap_callbacks_ = 0;
  bool self_profiling_ = false;
  std::array<EventKindStats, kNumEventKinds> kind_stats_{};

  // --- observer (invariant checker) ---
  std::function<void()> observer_;
  std::uint64_t observer_period_ = 0;
  std::uint64_t observer_next_ = 0;

  // --- pending set ---
  std::size_t size_ = 0;         // wheel + overflow
  std::size_t wheel_count_ = 0;  // entries currently in buckets
  /// The wheel window is [wheel_base_, wheel_base_ + kWheelSize); cursor_
  /// is the lowest tick whose bucket may still hold entries.
  Tick wheel_base_ = 0;
  Tick cursor_ = 0;
  std::vector<Bucket> buckets_ = std::vector<Bucket>(kWheelSize);
  std::priority_queue<Entry*, std::vector<Entry*>, OverflowLater> overflow_;

  // --- slab allocator ---
  std::vector<std::unique_ptr<Entry[]>> slabs_;
  Entry* free_list_ = nullptr;
};

}  // namespace ara::sim
