// Deterministic pseudo-random number generation for the simulator.
//
// We deliberately avoid std::mt19937 + std::uniform_* distributions: their
// outputs are implementation-defined across standard libraries, which would
// break the "same config + seed => same result" guarantee the test suite
// asserts. xoshiro256** plus hand-rolled uniform mappings are fully portable.
#pragma once

#include <cstdint>

#include "common/config_error.h"

namespace ara::sim {

/// SplitMix64: used to seed xoshiro from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, portable PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping (slightly biased for
    // astronomically large bounds; irrelevant at simulator scales).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * bound) >> 64);
  }

  /// Bernoulli draw with probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi: an inverted
  /// range would make `hi - lo + 1` wrap around and silently sample from
  /// almost the whole int64 domain.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    config_check(lo <= hi, "Rng::next_in requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace ara::sim
