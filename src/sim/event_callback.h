// EventCallback: a move-only, small-buffer-optimized callable for the
// event kernel hot path.
//
// Nearly every event the simulator dispatches is a lambda capturing `this`
// plus a handful of scalars; std::function heap-allocates many of those and
// drags in RTTI/copy machinery the kernel never uses. EventCallback stores
// captures up to kInlineBytes in place (no allocation on the schedule hot
// path) and falls back to the heap only for oversized captures. Dispatch is
// one indirect call through a per-type vtable, same as std::function, but
// construction/destruction are allocation-free for the common case.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ara::sim {

class EventCallback {
 public:
  /// Inline capture budget. 56 bytes = 7 pointers, which covers every
  /// lambda the simulator schedules today (see bench_kernel_hotpath for the
  /// measured inline-hit rate); bigger captures take one heap allocation.
  static constexpr std::size_t kInlineBytes = 56;

  EventCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventCallback(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      // This class IS the small-buffer allocator: placement new into the
      // inline slab, heap spill only for oversized captures.
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));  // ara-lint: allow(no-raw-new-delete)
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));  // ara-lint: allow(no-raw-new-delete)
      ops_ = &heap_ops<Fn>;
    }
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }

  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;

  ~EventCallback() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Destroy the stored callable (releasing any heap capture) and return to
  /// the empty state. Called by the kernel when an Entry goes back on the
  /// free list, so captures don't outlive their event.
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the inline buffer (telemetry for the
  /// hot-path benchmark; heap fallbacks are worth knowing about).
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));  // ara-lint: allow(no-raw-new-delete)
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      true,
  };

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) { delete *static_cast<Fn**>(p); },  // ara-lint: allow(no-raw-new-delete)
      false,
  };

  void move_from(EventCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ara::sim
