#include "sim/stats.h"

#include <algorithm>
#include <iomanip>

namespace ara::sim {

Histogram::Histogram(std::string name, std::uint64_t bucket_width,
                     std::size_t buckets)
    : name_(std::move(name)),
      width_(bucket_width == 0 ? 1 : bucket_width),
      buckets_(buckets + 1, 0) {}

void Histogram::record(std::uint64_t v) {
  std::size_t idx = static_cast<std::size_t>(v / width_);
  if (idx >= buckets_.size() - 1) idx = buckets_.size() - 1;
  ++buckets_[idx];
  if (count_ == 0 || v < min_) min_ = v;
  ++count_;
  sum_ += v;
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::percentile(double fraction) const {
  if (count_ == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      fraction * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen <= target) continue;
    // Overflow bucket has no upper edge; the observed max is the best
    // point estimate there.
    if (i + 1 == buckets_.size()) return max_;
    return i * width_ + width_ / 2;
  }
  return max_;
}

Counter& StatRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(name);
  return *slot;
}

Accumulator& StatRegistry::accumulator(const std::string& name) {
  auto& slot = accumulators_[name];
  if (!slot) slot = std::make_unique<Accumulator>(name);
  return *slot;
}

Histogram& StatRegistry::histogram(const std::string& name,
                                   std::uint64_t bucket_width,
                                   std::size_t buckets) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(name, bucket_width, buckets);
  return *slot;
}

const Counter* StatRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Accumulator* StatRegistry::find_accumulator(
    const std::string& name) const {
  auto it = accumulators_.find(name);
  return it == accumulators_.end() ? nullptr : it->second.get();
}

std::uint64_t StatRegistry::counter_sum_by_prefix(
    const std::string& prefix) const {
  std::uint64_t sum = 0;
  for (auto it = counters_.lower_bound(prefix); it != counters_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second->value();
  }
  return sum;
}

double StatRegistry::accumulator_sum_by_prefix(
    const std::string& prefix) const {
  double sum = 0;
  for (auto it = accumulators_.lower_bound(prefix); it != accumulators_.end();
       ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    sum += it->second->sum();
  }
  return sum;
}

void StatRegistry::print(std::ostream& os) const {
  os << std::left;
  for (const auto& [name, c] : counters_) {
    os << std::setw(48) << name << " " << c->value() << "\n";
  }
  for (const auto& [name, a] : accumulators_) {
    os << std::setw(48) << name << " sum=" << a->sum() << " mean=" << a->mean()
       << " n=" << a->count() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << std::setw(48) << name << " n=" << h->count() << " mean=" << h->mean()
       << " max=" << h->max_seen() << "\n";
  }
}

}  // namespace ara::sim
