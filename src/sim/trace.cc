#include "sim/trace.h"

namespace ara::sim {

void TraceCollector::record_span(const std::string& name, IslandId island,
                                 AbbId slot, Tick start, Tick end,
                                 const std::string& category) {
  events_.push_back(Event{name, category, island, slot, start,
                          end < start ? start : end, false});
}

void TraceCollector::record_instant(const std::string& name, IslandId island,
                                    Tick at, const std::string& category) {
  events_.push_back(Event{name, category, island, 0, at, at, true});
}

namespace {
void json_escape(std::ostream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}
}  // namespace

void TraceCollector::write_json(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  for (const auto& e : events_) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")";
    json_escape(os, e.name);
    os << R"(","cat":")";
    json_escape(os, e.category);
    os << R"(","pid":)" << e.island << R"(,"tid":)" << e.slot;
    if (e.instant) {
      os << R"(,"ph":"i","ts":)" << e.start << R"(,"s":"p"})";
    } else {
      os << R"(,"ph":"X","ts":)" << e.start << R"(,"dur":)"
         << (e.end - e.start) << "}";
    }
  }
  os << "\n]\n";
}

}  // namespace ara::sim
