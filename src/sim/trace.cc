#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace ara::sim {

namespace {

void json_escape(std::ostream& os, const std::string& s) {
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (c < 0x20) {
          // Remaining control characters have no short escape; JSON strings
          // may not contain them raw.
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << raw;
        }
    }
  }
}

void json_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << 0;  // JSON has no NaN/Inf; clamp rather than corrupt the file
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  os << buf;
}

}  // namespace

bool TraceCollector::category_enabled(const std::string& category) const {
  if (categories_.empty()) return true;
  return std::find(categories_.begin(), categories_.end(), category) !=
         categories_.end();
}

void TraceCollector::push(Event e) {
  const bool meta =
      e.phase == Phase::kMetaProcess || e.phase == Phase::kMetaThread;
  if (!meta) {
    if (!category_enabled(e.category)) return;
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
  }
  events_.push_back(std::move(e));
}

void TraceCollector::record_span(const std::string& name, std::uint32_t pid,
                                 std::uint32_t tid, Tick start, Tick end,
                                 const std::string& category) {
  Event e;
  e.phase = Phase::kSpan;
  e.name = name;
  e.category = category;
  e.pid = pid;
  e.tid = tid;
  e.start = start;
  e.end = end < start ? start : end;
  push(std::move(e));
}

void TraceCollector::record_instant(const std::string& name, std::uint32_t pid,
                                    std::uint32_t tid, Tick at,
                                    const std::string& category) {
  Event e;
  e.phase = Phase::kInstant;
  e.name = name;
  e.category = category;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = at;
  push(std::move(e));
}

void TraceCollector::record_counter(const std::string& track,
                                    std::uint32_t pid, Tick at,
                                    const std::string& series, double value) {
  Event e;
  e.phase = Phase::kCounter;
  e.name = track;
  e.category = "counter";
  e.pid = pid;
  e.start = e.end = at;
  e.arg_name = series;
  e.arg_value = value;
  push(std::move(e));
}

std::uint64_t TraceCollector::begin_flow(const std::string& name,
                                         std::uint32_t pid, std::uint32_t tid,
                                         Tick at,
                                         const std::string& category) {
  const std::uint64_t id = next_flow_++;
  Event e;
  e.phase = Phase::kFlowStart;
  e.name = name;
  e.category = category;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = at;
  e.flow_id = id;
  push(std::move(e));
  return id;
}

void TraceCollector::step_flow(std::uint64_t flow, const std::string& name,
                               std::uint32_t pid, std::uint32_t tid, Tick at,
                               const std::string& category) {
  Event e;
  e.phase = Phase::kFlowStep;
  e.name = name;
  e.category = category;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = at;
  e.flow_id = flow;
  push(std::move(e));
}

void TraceCollector::end_flow(std::uint64_t flow, const std::string& name,
                              std::uint32_t pid, std::uint32_t tid, Tick at,
                              const std::string& category) {
  Event e;
  e.phase = Phase::kFlowEnd;
  e.name = name;
  e.category = category;
  e.pid = pid;
  e.tid = tid;
  e.start = e.end = at;
  e.flow_id = flow;
  push(std::move(e));
}

void TraceCollector::name_process(std::uint32_t pid, const std::string& name) {
  Event e;
  e.phase = Phase::kMetaProcess;
  e.name = "process_name";
  e.pid = pid;
  e.arg_name = name;
  push(std::move(e));
}

void TraceCollector::name_thread(std::uint32_t pid, std::uint32_t tid,
                                 const std::string& name) {
  Event e;
  e.phase = Phase::kMetaThread;
  e.name = "thread_name";
  e.pid = pid;
  e.tid = tid;
  e.arg_name = name;
  push(std::move(e));
}

void TraceCollector::write_json(std::ostream& os) const {
  os << "[\n";
  bool first = true;
  auto begin_event = [&](const Event& e) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")";
    json_escape(os, e.name);
    os << R"(","cat":")";
    json_escape(os, e.category.empty() ? "meta" : e.category);
    os << R"(","pid":)" << e.pid << R"(,"tid":)" << e.tid;
  };

  for (const auto& e : events_) {
    switch (e.phase) {
      case Phase::kSpan:
        begin_event(e);
        os << R"(,"ph":"X","ts":)" << e.start << R"(,"dur":)"
           << (e.end - e.start) << "}";
        break;
      case Phase::kInstant:
        begin_event(e);
        os << R"(,"ph":"i","ts":)" << e.start << R"(,"s":"t"})";
        break;
      case Phase::kCounter:
        begin_event(e);
        os << R"(,"ph":"C","ts":)" << e.start << R"(,"args":{")";
        json_escape(os, e.arg_name);
        os << R"(":)";
        json_number(os, e.arg_value);
        os << "}}";
        break;
      case Phase::kFlowStart:
        begin_event(e);
        os << R"(,"ph":"s","id":)" << e.flow_id << R"(,"ts":)" << e.start
           << "}";
        break;
      case Phase::kFlowStep:
        begin_event(e);
        os << R"(,"ph":"t","id":)" << e.flow_id << R"(,"ts":)" << e.start
           << "}";
        break;
      case Phase::kFlowEnd:
        begin_event(e);
        os << R"(,"ph":"f","bp":"e","id":)" << e.flow_id << R"(,"ts":)"
           << e.start << "}";
        break;
      case Phase::kMetaProcess:
      case Phase::kMetaThread:
        begin_event(e);
        os << R"(,"ph":"M","args":{"name":")";
        json_escape(os, e.arg_name);
        os << R"("}})";
        break;
    }
  }

  if (dropped_ > 0) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":"trace_buffer_full","cat":"trace","pid":)" << kTracePidSim
       << R"(,"tid":0,"ph":"i","ts":0,"s":"g","args":{"dropped_events":)"
       << dropped_ << "}}";
  }
  os << "\n]\n";
}

}  // namespace ara::sim
