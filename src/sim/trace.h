// TraceCollector: records task-level execution spans and exports them in
// the Chrome tracing JSON format (chrome://tracing, Perfetto), with one
// "process" per island and one "thread" per ABB slot — a visual timeline
// of how the ABC composes and schedules virtual accelerators.
//
// Beyond duration spans and instants the collector supports the richer
// Chrome trace-event vocabulary the viewers understand:
//  - metadata ("M") events naming processes and threads,
//  - counter-track ("C") samples (queue depths, link utilization),
//  - flow events ("s"/"t"/"f") that draw arrows following a logical
//    payload — e.g. one DMA transfer across SPM -> island net -> memory,
//  - category filtering at record time, and
//  - a bounded event buffer with an explicit dropped-events counter so a
//    runaway trace degrades gracefully instead of exhausting host memory.
//
// Threading: single-owner state, deliberately unannotated (see
// common/thread_annotations.h conventions). A TraceCollector is owned by
// one core::System and mutated only from that System's thread; parallel
// sweeps give every worker its own System, so the buffer is never shared.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace ara::sim {

/// Fixed trace pids for the non-island "processes"; islands use their own
/// IslandId as pid, so these start well above any plausible island count.
inline constexpr std::uint32_t kTracePidMem = 9000;
inline constexpr std::uint32_t kTracePidNoc = 9001;
inline constexpr std::uint32_t kTracePidGam = 9002;
inline constexpr std::uint32_t kTracePidSim = 9003;

/// Trace tid reserved for an island's DMA-engine track (ABB slots use their
/// AbbId as tid).
inline constexpr std::uint32_t kTraceTidDma = 999;

class TraceCollector {
 public:
  /// A complete span: [start, end) on (pid, tid).
  void record_span(const std::string& name, std::uint32_t pid,
                   std::uint32_t tid, Tick start, Tick end,
                   const std::string& category);

  /// An instantaneous event (e.g. job admitted, chain spilled) on a
  /// specific (pid, tid) — the slot is no longer hardcoded to 0.
  void record_instant(const std::string& name, std::uint32_t pid,
                      std::uint32_t tid, Tick at, const std::string& category);

  /// One counter-track sample: `track` names the counter, `series` the
  /// value's key inside it (rendered as a stacked area in the viewers).
  void record_counter(const std::string& track, std::uint32_t pid, Tick at,
                      const std::string& series, double value);

  /// Flow events: begin_flow() returns an id; step_flow()/end_flow() with
  /// the same id draw arrows through every recorded point. Viewers bind
  /// each point to the enclosing slice on its (pid, tid) at that timestamp.
  std::uint64_t begin_flow(const std::string& name, std::uint32_t pid,
                           std::uint32_t tid, Tick at,
                           const std::string& category);
  void step_flow(std::uint64_t flow, const std::string& name,
                 std::uint32_t pid, std::uint32_t tid, Tick at,
                 const std::string& category);
  void end_flow(std::uint64_t flow, const std::string& name, std::uint32_t pid,
                std::uint32_t tid, Tick at, const std::string& category);

  /// Metadata ("M") events naming a process / thread in the viewer.
  /// Metadata is exempt from the category filter and the capacity cap.
  void name_process(std::uint32_t pid, const std::string& name);
  void name_thread(std::uint32_t pid, std::uint32_t tid,
                   const std::string& name);

  /// Bound the event buffer: once `max_events` non-metadata events are
  /// buffered, further records are counted in dropped() instead of stored.
  void set_capacity(std::size_t max_events) { capacity_ = max_events; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t dropped() const { return dropped_; }

  /// Restrict recording to the given categories (empty list = record all).
  void set_category_filter(std::vector<std::string> categories) {
    categories_ = std::move(categories);
  }
  bool category_enabled(const std::string& category) const;

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Chrome trace-event JSON (array format; 1 tick = 1 us in the viewer).
  /// When events were dropped, a final instant on kTracePidSim carries the
  /// dropped count in its args.
  void write_json(std::ostream& os) const;

 private:
  enum class Phase : std::uint8_t {
    kSpan,
    kInstant,
    kCounter,
    kFlowStart,
    kFlowStep,
    kFlowEnd,
    kMetaProcess,
    kMetaThread,
  };

  struct Event {
    Phase phase;
    std::string name;
    std::string category;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    Tick start = 0;
    Tick end = 0;  // == start for non-spans
    /// Counter series / metadata name payload.
    std::string arg_name;
    double arg_value = 0;
    std::uint64_t flow_id = 0;
  };

  /// Append respecting the capacity cap; metadata bypasses the cap.
  void push(Event e);

  std::vector<Event> events_;
  std::vector<std::string> categories_;  // empty = all enabled
  std::size_t capacity_ = 1u << 20;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_flow_ = 1;
};

}  // namespace ara::sim
