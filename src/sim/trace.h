// TraceCollector: records task-level execution spans and exports them in
// the Chrome tracing JSON format (chrome://tracing, Perfetto), with one
// "process" per island and one "thread" per ABB slot — a visual timeline
// of how the ABC composes and schedules virtual accelerators.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace ara::sim {

class TraceCollector {
 public:
  /// A complete span: [start, end) on (island, slot).
  void record_span(const std::string& name, IslandId island, AbbId slot,
                   Tick start, Tick end, const std::string& category);

  /// An instantaneous event (e.g. job admitted, chain spilled).
  void record_instant(const std::string& name, IslandId island, Tick at,
                      const std::string& category);

  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Chrome trace-event JSON (array format; 1 tick = 1 us in the viewer).
  void write_json(std::ostream& os) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    IslandId island;
    AbbId slot;
    Tick start;
    Tick end;  // == start for instants
    bool instant;
  };
  std::vector<Event> events_;
};

}  // namespace ara::sim
