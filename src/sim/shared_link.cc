#include "sim/shared_link.h"

#include <cassert>
#include <cmath>
#include <utility>

#include "common/config_error.h"

namespace ara::sim {

namespace {
/// Reservations older than this relative to the highest start tick seen are
/// merged into one blocker interval; simulator chains never reach that far
/// back, so gap filling is unaffected in practice.
constexpr Tick kCompactHorizon = 1u << 21;  // ~2M cycles
constexpr std::size_t kCompactThreshold = 4096;
}  // namespace

SharedLink::SharedLink(std::string name, double bytes_per_cycle,
                       Tick pipeline_latency)
    : name_(std::move(name)),
      bytes_per_cycle_(bytes_per_cycle),
      latency_(pipeline_latency) {
  config_check(bytes_per_cycle > 0.0,
               "SharedLink '" + name_ + "' needs positive bandwidth");
}

Tick SharedLink::submit(Tick ready_at, Bytes bytes) {
  if (bytes == 0) return ready_at + latency_;
  auto occupancy = static_cast<Tick>(
      std::ceil(static_cast<double>(bytes) / bytes_per_cycle_));
  if (occupancy == 0) occupancy = 1;

  // Find the earliest gap of `occupancy` cycles at or after ready_at.
  Tick start = ready_at;
  auto it = busy_.upper_bound(ready_at);
  if (it != busy_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > start) start = prev->second;  // inside an interval
  }
  while (it != busy_.end()) {
    if (start + occupancy <= it->first) break;  // fits in the gap
    start = it->second;
    ++it;
  }
  const Tick end = start + occupancy;

  // Insert [start, end), merging with adjacent intervals.
  auto inserted = busy_.emplace(start, end).first;
  if (inserted != busy_.begin()) {
    auto prev = std::prev(inserted);
    if (prev->second == start) {
      prev->second = end;
      busy_.erase(inserted);
      inserted = prev;
    }
  }
  auto next = std::next(inserted);
  if (next != busy_.end() && next->first == inserted->second) {
    inserted->second = next->second;
    busy_.erase(next);
  }

  busy_cycles_ += occupancy;
  total_bytes_ += bytes;
  ++transfers_;
  if (start > high_watermark_) high_watermark_ = start;
  if (busy_.size() > kCompactThreshold) compact();
  return end + latency_;
}

Tick SharedLink::next_free(Tick t) const {
  auto it = busy_.upper_bound(t);
  if (it == busy_.begin()) return t;
  auto prev = std::prev(it);
  return prev->second > t ? prev->second : t;
}

void SharedLink::compact() {
  if (high_watermark_ < kCompactHorizon) return;
  const Tick cutoff = high_watermark_ - kCompactHorizon;
  // Replace everything ending before `cutoff` with one blocker interval.
  auto it = busy_.begin();
  Tick blocker_start = kTickMax;
  while (it != busy_.end() && it->second <= cutoff) {
    blocker_start = std::min(blocker_start, it->first);
    it = busy_.erase(it);
  }
  if (blocker_start != kTickMax) {
    Tick blocker_end = cutoff;
    if (!busy_.empty()) {
      blocker_end = std::min(blocker_end, busy_.begin()->first);
    }
    if (blocker_end > blocker_start) busy_.emplace(blocker_start, blocker_end);
  }
}

}  // namespace ara::sim
