#include "workloads/ir_kernels.h"

#include "dataflow/decomposer.h"
#include "workloads/calibration.h"
#include "workloads/registry.h"

namespace ara::workloads::ir {

using dataflow::IrOp;
using dataflow::KernelIr;

KernelIr deblur_kernel(std::uint64_t elements) {
  // Total-variation deblur, one pixel per element:
  //   gx = u_e - u;  gy = u_s - u                      (forward gradients)
  //   nrm = sqrt(gx^2 + gy^2 + eps)                    (TV norm)
  //   dx = gx / nrm;  dy = gy / nrm                    (normalized)
  //   div = dx - dx_w + dy - dy_n                      (divergence approx)
  //   out = u + dt * (div + lambda * (f - u))          (update)
  KernelIr ir("DeblurIR", elements);
  const auto u = ir.input();
  const auto f = ir.input();
  const auto u_e = ir.input();
  const auto u_s = ir.input();
  const auto dx_w = ir.input();  // neighbour term from previous sweep
  const auto dy_n = ir.input();
  const auto eps = ir.constant();
  const auto dt = ir.constant();
  const auto lambda = ir.constant();

  const auto gx = ir.binary(IrOp::kSub, u_e, u);
  const auto gy = ir.binary(IrOp::kSub, u_s, u);
  const auto g2 = ir.binary(
      IrOp::kAdd,
      ir.binary(IrOp::kAdd, ir.binary(IrOp::kMul, gx, gx),
                ir.binary(IrOp::kMul, gy, gy)),
      eps);
  const auto nrm = ir.unary(IrOp::kSqrt, g2);
  const auto dx = ir.binary(IrOp::kDiv, gx, nrm);
  const auto dy = ir.binary(IrOp::kDiv, gy, nrm);
  const auto div = ir.binary(IrOp::kAdd, ir.binary(IrOp::kSub, dx, dx_w),
                             ir.binary(IrOp::kSub, dy, dy_n));
  const auto fid = ir.binary(IrOp::kMul, lambda,
                             ir.binary(IrOp::kSub, f, u));
  const auto upd = ir.binary(IrOp::kMul, dt,
                             ir.binary(IrOp::kAdd, div, fid));
  const auto out = ir.binary(IrOp::kAdd, u, upd);
  ir.mark_output(out);
  return ir;
}

KernelIr denoise_kernel(std::uint64_t elements) {
  // Rician denoise (the Sec. 2 example; mirrors make_denoise_from_ir).
  KernelIr ir("DenoiseIRK", elements);
  const auto u = ir.input();
  const auto f = ir.input();
  const auto n0 = ir.input();
  const auto n1 = ir.input();
  const auto eps = ir.constant();

  const auto d0 = ir.binary(IrOp::kSub, u, n0);
  const auto d1 = ir.binary(IrOp::kSub, u, n1);
  const auto ss = ir.binary(IrOp::kAdd, ir.binary(IrOp::kMul, d0, d0),
                            ir.binary(IrOp::kMul, d1, d1));
  const auto g = ir.unary(IrOp::kSqrt, ss);
  const auto wgt = ir.binary(IrOp::kDiv, u,
                             ir.binary(IrOp::kAdd, g, eps));
  const auto r = ir.binary(IrOp::kAdd, ir.binary(IrOp::kMul, u, f), f);
  const auto out = ir.binary(IrOp::kAdd, ir.binary(IrOp::kMul, wgt, r),
                             ir.binary(IrOp::kAdd, n0, n1));
  ir.mark_output(out);
  return ir;
}

KernelIr segmentation_kernel(std::uint64_t elements) {
  // Level-set evolution, curvature-driven:
  //   gx, gy       forward gradients of phi
  //   mag = sqrt(gx^2 + gy^2 + eps)
  //   kx = gx / mag; ky = gy / mag                  (unit normal)
  //   curv = (kx - kx_w) + (ky - ky_n)              (divergence)
  //   force = alpha * g_edge / (1 + mag)            (edge-stopping term)
  //   out = phi + dt * (force * curv)
  KernelIr ir("SegmentationIR", elements);
  const auto phi = ir.input();
  const auto phi_e = ir.input();
  const auto phi_s = ir.input();
  const auto kx_w = ir.input();
  const auto ky_n = ir.input();
  const auto g_edge = ir.input();
  const auto eps = ir.constant();
  const auto one = ir.constant();
  const auto alpha = ir.constant();
  const auto dt = ir.constant();

  const auto gx = ir.binary(IrOp::kSub, phi_e, phi);
  const auto gy = ir.binary(IrOp::kSub, phi_s, phi);
  const auto mag = ir.unary(
      IrOp::kSqrt,
      ir.binary(IrOp::kAdd,
                ir.binary(IrOp::kAdd, ir.binary(IrOp::kMul, gx, gx),
                          ir.binary(IrOp::kMul, gy, gy)),
                eps));
  const auto kx = ir.binary(IrOp::kDiv, gx, mag);
  const auto ky = ir.binary(IrOp::kDiv, gy, mag);
  const auto curv = ir.binary(IrOp::kAdd, ir.binary(IrOp::kSub, kx, kx_w),
                              ir.binary(IrOp::kSub, ky, ky_n));
  const auto force =
      ir.binary(IrOp::kDiv, ir.binary(IrOp::kMul, alpha, g_edge),
                ir.binary(IrOp::kAdd, one, mag));
  const auto out = ir.binary(
      IrOp::kAdd, phi,
      ir.binary(IrOp::kMul, dt, ir.binary(IrOp::kMul, force, curv)));
  ir.mark_output(out);
  return ir;
}

KernelIr registration_kernel(std::uint64_t elements) {
  // Mutual-information style: Parzen-window weight via exp, log-likelihood
  // contribution, gradient step on the transform parameter.
  KernelIr ir("RegistrationIR", elements);
  const auto a = ir.input();       // fixed-image sample
  const auto b = ir.input();       // warped moving-image sample
  const auto pj = ir.input();      // joint probability estimate
  const auto pm = ir.input();      // marginal product estimate
  const auto sigma = ir.constant();
  const auto eps = ir.constant();

  const auto d = ir.binary(IrOp::kSub, a, b);
  const auto d2 = ir.binary(IrOp::kMul, d, d);
  const auto w = ir.unary(IrOp::kExp,
                          ir.binary(IrOp::kMul, sigma, d2));
  const auto ratio = ir.binary(IrOp::kDiv,
                               ir.binary(IrOp::kAdd, pj, eps),
                               ir.binary(IrOp::kAdd, pm, eps));
  const auto mi = ir.unary(IrOp::kLog, ratio);
  const auto out = ir.binary(IrOp::kMul, w, mi);
  ir.mark_output(out);
  return ir;
}

KernelIr robot_localization_kernel(std::uint64_t elements) {
  // Particle weight update, one particle per element:
  //   r = z - h(x)           (range residual, h(x) precomputed per pose)
  //   m = r^2 / (2 sigma^2)
  //   w' = w * exp(-m) / norm
  KernelIr ir("RobotLocalizationIR", elements);
  const auto z = ir.input();
  const auto hx = ir.input();
  const auto w = ir.input();
  const auto norm = ir.input();
  const auto inv2s2 = ir.constant();
  const auto neg = ir.constant();

  const auto r = ir.binary(IrOp::kSub, z, hx);
  const auto m = ir.binary(IrOp::kMul, ir.binary(IrOp::kMul, r, r),
                           inv2s2);
  const auto e = ir.unary(IrOp::kExp, ir.binary(IrOp::kMul, neg, m));
  const auto out = ir.binary(IrOp::kDiv, ir.binary(IrOp::kMul, w, e),
                             norm);
  ir.mark_output(out);
  return ir;
}

KernelIr ekf_slam_kernel(std::uint64_t elements) {
  // EKF landmark update (per landmark): predicted measurement from range
  // and bearing, innovation, Kalman-gain-weighted state correction, and a
  // covariance trace update — long chained arithmetic with div and sqrt.
  KernelIr ir("EkfSlamIR", elements);
  const auto dx = ir.input();
  const auto dy = ir.input();
  const auto z_r = ir.input();
  const auto k_r = ir.input();   // gain row (precomputed per landmark)
  const auto p = ir.input();     // covariance diagonal entry
  const auto x = ir.input();     // state entry
  const auto eps = ir.constant();
  const auto one = ir.constant();

  const auto q = ir.binary(IrOp::kAdd,
                           ir.binary(IrOp::kAdd,
                                     ir.binary(IrOp::kMul, dx, dx),
                                     ir.binary(IrOp::kMul, dy, dy)),
                           eps);
  const auto r_pred = ir.unary(IrOp::kSqrt, q);
  const auto innov = ir.binary(IrOp::kSub, z_r, r_pred);
  const auto gain = ir.binary(IrOp::kDiv, k_r, q);
  const auto dxs = ir.binary(IrOp::kMul, gain, innov);
  const auto x_new = ir.binary(IrOp::kAdd, x, dxs);
  const auto kh = ir.binary(IrOp::kMul, gain, r_pred);
  const auto p_new = ir.binary(IrOp::kMul,
                               ir.binary(IrOp::kSub, one, kh), p);
  ir.mark_output(x_new);
  ir.mark_output(p_new);
  return ir;
}

KernelIr disparity_kernel(std::uint64_t elements) {
  // Stereo SAD matching, one pixel per element: absolute differences over
  // an 8-tap window (|d| via sqrt(d^2)), reduced with the sum block, plus
  // parabolic subpixel refinement around the best cost.
  KernelIr ir("DisparityMapIR", elements);
  std::vector<std::uint32_t> taps;
  for (int i = 0; i < 8; ++i) {
    const auto l = ir.input();
    const auto r = ir.input();
    const auto d = ir.binary(IrOp::kSub, l, r);
    taps.push_back(ir.unary(IrOp::kSqrt, ir.binary(IrOp::kMul, d, d)));
  }
  const auto sad = ir.reduce(taps);
  const auto c_m = ir.input();  // neighbouring disparity costs
  const auto c_p = ir.input();
  const auto half = ir.constant();
  const auto eps = ir.constant();
  const auto num = ir.binary(IrOp::kMul, half,
                             ir.binary(IrOp::kSub, c_m, c_p));
  const auto den = ir.binary(
      IrOp::kAdd,
      ir.binary(IrOp::kSub, ir.binary(IrOp::kAdd, c_m, c_p),
                ir.binary(IrOp::kAdd, sad, sad)),
      eps);
  const auto out = ir.binary(IrOp::kDiv, num, den);
  ir.mark_output(out);
  return ir;
}

Workload make_ir_workload(const KernelIr& kernel, std::uint32_t invocations,
                          double sw_multiplier, bool allow_fabric) {
  dataflow::Decomposer dec(allow_fabric);
  Workload w;
  w.name = kernel.name();
  w.dfg = dec.decompose(kernel).dfg;
  w.invocations = invocations;
  w.concurrency = 48;
  w.buffer_rotation = 4;
  w.cmp_cycles_per_invocation =
      software_cycles_per_invocation(w.dfg, sw_multiplier);
  w.cmp_parallel_eff = calibration::kDefaultParallelEff;
  return w;
}

}  // namespace ara::workloads::ir
