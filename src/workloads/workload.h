// Workload: a benchmark expressed as an ABB flow graph plus invocation
// parameters and a software (CMP) cost profile.
//
// The paper's workloads come from the Medical Imaging pipeline (Deblur,
// Denoise, Segmentation, Registration) and the Navigation domain (Robot
// Localization, EKF-SLAM, Disparity Map), described in [6, 8, 9]. The
// originals are proprietary CDSC applications; here each benchmark is a
// parameterized DFG generator whose knobs (ABB mix, chaining degree, data
// volumes, software cost) are calibrated to reproduce the paper's relative
// behaviour. See DESIGN.md Sec. 2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "abb/abb_types.h"
#include "common/types.h"
#include "dataflow/dfg.h"

namespace ara::workloads {

struct Workload {
  std::string name;
  dataflow::Dfg dfg;
  /// Kernel launches over the whole run (e.g. tiles x frames).
  std::uint32_t invocations = 100;
  /// Kernel launches in flight at once (tile-level parallelism).
  std::uint32_t concurrency = 16;
  /// Distinct input tile buffers rotated across invocations; controls the
  /// L2-resident working set (smaller => more reuse).
  std::uint32_t buffer_rotation = 8;

  /// --- software (CMP) cost profile, for the Fig. 10 comparison ---
  /// Cycles one CMP core spends per kernel invocation.
  double cmp_cycles_per_invocation = 1e6;
  /// Parallel efficiency on a multicore (Amdahl + memory effects).
  double cmp_parallel_eff = 0.8;
};

/// Structural knobs for the statistical DFG generators.
struct DfgGenParams {
  std::uint32_t tasks = 12;
  /// Target fraction of nodes with a chained producer (the paper's "amount
  /// of ABB chaining"); realized degree is within a few percent.
  double chain_fraction = 0.3;
  /// Probability that a chain step branches into two consumers.
  double branch_prob = 0.1;
  /// ABB kind weights (poly/divide/sqrt/power/sum).
  std::array<double, abb::kNumAsicAbbKinds> kind_weights{
      {0.65, 0.15, 0.075, 0.05, 0.075}};
  /// Mean element groups streamed per task (+/- 25% jitter).
  std::uint64_t elements = 384;
  /// Compute sweeps over the streamed tile (iterative kernels re-process
  /// SPM-resident data; raises compute per byte moved).
  std::uint32_t compute_iterations = 1;
  /// Words per element carried over each chain edge (vector-valued
  /// intermediates make chaining traffic heavier, e.g. EKF covariance
  /// pipelines).
  std::uint32_t chain_words = 1;
  /// Streamed operand arrays read from memory by a chain-head task.
  std::uint32_t head_input_streams = 3;
  /// Extra streamed operand arrays read by a chained (non-head) task.
  std::uint32_t chained_input_streams = 1;
  /// Fraction of tasks whose op falls outside the ABB library and needs the
  /// CAMEL programmable fabric (0 for the in-domain benchmarks).
  double fabric_fraction = 0.0;
  /// Generator seed (fixed per benchmark for determinism).
  std::uint64_t seed = 1;
};

/// Build a DFG with the requested structure. Deterministic for a given
/// params value.
dataflow::Dfg generate_dfg(const std::string& name, const DfgGenParams& p);

/// Total bytes of input buffer one invocation streams from memory.
Bytes workload_input_bytes(const Workload& w);
/// Total bytes of output buffer one invocation stores to memory.
Bytes workload_output_bytes(const Workload& w);

}  // namespace ara::workloads
