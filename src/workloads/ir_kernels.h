// IR-authored kernels: each of the paper's seven benchmarks expressed as a
// KernelIr expression DAG and compiled through the Decomposer — the full
// CHARM toolflow (kernel -> ABB covering -> flow graph -> ABC execution).
//
// The statistical generators in medical.cc/navigation.cc remain the
// calibrated versions used for figure reproduction; these IR variants
// exercise the compiler end to end on structurally faithful kernels and
// are registered as "<Name>IR".
#pragma once

#include "dataflow/kernel_ir.h"
#include "workloads/workload.h"

namespace ara::workloads::ir {

/// Total-variation deblurring update: divergence of normalized gradients
/// plus a fidelity term.
dataflow::KernelIr deblur_kernel(std::uint64_t elements = 1536);

/// Rician denoise update: gradient magnitude, edge weight, fidelity
/// correction (the Sec. 2 running example).
dataflow::KernelIr denoise_kernel(std::uint64_t elements = 1536);

/// Level-set segmentation: curvature term with normalized gradients
/// (divide/sqrt-heavy, long chains).
dataflow::KernelIr segmentation_kernel(std::uint64_t elements = 1280);

/// Mutual-information image registration: joint-histogram weight with
/// exp/log terms.
dataflow::KernelIr registration_kernel(std::uint64_t elements = 1536);

/// Particle-filter robot localization: Gaussian likelihood weight update
/// per particle.
dataflow::KernelIr robot_localization_kernel(std::uint64_t elements = 1280);

/// EKF-SLAM innovation update: measurement prediction, residual,
/// gain-weighted state update (chained linear algebra).
dataflow::KernelIr ekf_slam_kernel(std::uint64_t elements = 1152);

/// Disparity-map stereo matching: SAD window reduction + subpixel refine.
dataflow::KernelIr disparity_kernel(std::uint64_t elements = 1664);

/// Compile any of the kernels above into a runnable workload.
/// `allow_fabric` must be true for kernels using out-of-library ops.
Workload make_ir_workload(const dataflow::KernelIr& kernel,
                          std::uint32_t invocations, double sw_multiplier,
                          bool allow_fabric = false);

}  // namespace ara::workloads::ir
