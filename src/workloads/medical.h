// Medical Imaging domain benchmarks (paper's original CDSC driver
// applications [11]): Deblur, Denoise, Segmentation, Registration.
#pragma once

#include "workloads/workload.h"

namespace ara::workloads {

/// Total-variation deblurring: poly-dominated stencil updates with moderate
/// chaining (gradient -> update pipelines).
Workload make_deblur(double scale = 1.0);

/// Rician denoising: mostly independent per-tile polynomial evaluation —
/// the paper's example of a benchmark with small amounts of chaining.
Workload make_denoise(double scale = 1.0);

/// Level-set segmentation: divide/sqrt-heavy with long chained pipelines —
/// the biggest winner vs. software (Fig. 10: 28.6X).
Workload make_segmentation(double scale = 1.0);

/// Image registration: polynomial + power (mutual-information style) with
/// moderate chaining.
Workload make_registration(double scale = 1.0);

/// Denoise expressed through the compiler path: a KernelIr expression for
/// the Rician denoise update, decomposed into ABBs. Structurally equivalent
/// to make_denoise() and used to validate the Decomposer end to end.
Workload make_denoise_from_ir(double scale = 1.0);

}  // namespace ara::workloads
