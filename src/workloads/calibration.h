// Calibration constants for the benchmark suite (see DESIGN.md Sec. 7).
//
// Software (CMP) cost: cycles a single general-purpose core spends per
// element group on each ABB kind's worth of work, assuming moderately
// vectorized code (SSE-era: several flops/cycle) with cache misses and
// branches amortized. Per-benchmark multipliers capture how much
// better/worse than that each application's software implementation
// behaves; Segmentation's level-set inner loop is dominated by
// transcendental calls and divergent branches, which is why the paper's
// Fig. 10 shows a 28.6X speedup for it while EKF-SLAM (BLAS-friendly
// dense linear algebra) only speeds up 1.8X.
#pragma once

#include <array>

#include "abb/abb_types.h"

namespace ara::workloads::calibration {

/// Single-core software cycles per element group, by ABB kind
/// (poly, divide, sqrt, power, sum).
inline constexpr std::array<double, abb::kNumAsicAbbKinds>
    kSwCyclesPerElement = {4.8, 3.6, 3.2, 14.0, 2.4};

/// Per-benchmark software slowdown multipliers (dimensionless), applied on
/// top of the per-kind base costs. Fitted so the Fig. 10 speedups land on
/// the paper's values.
inline constexpr double kDeblurSwMult = 0.64;
inline constexpr double kDenoiseSwMult = 1.11;
inline constexpr double kSegmentationSwMult = 11.0;
inline constexpr double kRegistrationSwMult = 1.22;
inline constexpr double kRobotLocSwMult = 0.69;
inline constexpr double kEkfSlamSwMult = 0.56;
inline constexpr double kDisparitySwMult = 1.39;

/// Parallel efficiency of the software implementation on a CMP.
inline constexpr double kDefaultParallelEff = 0.80;

}  // namespace ara::workloads::calibration
