#include "workloads/out_of_domain.h"

#include <algorithm>
#include <cmath>

#include "common/config_error.h"
#include "workloads/calibration.h"
#include "workloads/registry.h"

namespace ara::workloads {

namespace {

std::uint32_t scaled(std::uint32_t base, double scale) {
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(base * scale)));
}

Workload finish(Workload w, double sw_mult, std::uint32_t invocations,
                double scale) {
  w.invocations = scaled(invocations, scale);
  w.cmp_cycles_per_invocation =
      software_cycles_per_invocation(w.dfg, sw_mult);
  w.cmp_parallel_eff = calibration::kDefaultParallelEff;
  return w;
}

}  // namespace

Workload make_lpcip(double scale) {
  DfgGenParams p;
  p.tasks = 14;
  p.chain_fraction = 0.45;
  p.branch_prob = 0.10;
  p.kind_weights = {0.60, 0.14, 0.10, 0.06, 0.10};
  p.elements = 1280;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.fabric_fraction = 0.15;  // log-polar resampling trig
  p.seed = 0x10C1;
  Workload w;
  w.name = "LPCIP";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), 1.1, 120, scale);
}

Workload make_texture_synthesis(double scale) {
  DfgGenParams p;
  p.tasks = 16;
  p.chain_fraction = 0.40;
  p.branch_prob = 0.12;
  p.kind_weights = {0.50, 0.12, 0.08, 0.10, 0.20};
  p.elements = 1408;
  p.head_input_streams = 4;
  p.chained_input_streams = 1;
  p.fabric_fraction = 0.25;  // exotic neighbourhood distance kernels
  p.seed = 0x7E87;
  Workload w;
  w.name = "TextureSynthesis";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), 1.3, 110, scale);
}

Workload make_black_scholes(double scale) {
  DfgGenParams p;
  p.tasks = 12;
  p.chain_fraction = 0.55;
  p.branch_prob = 0.08;
  p.kind_weights = {0.34, 0.16, 0.12, 0.28, 0.10};  // exp/log heavy
  p.elements = 1536;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.fabric_fraction = 0.30;  // CDF approximation
  p.seed = 0xB5C0;
  Workload w;
  w.name = "BlackScholes";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), 1.5, 130, scale);
}

const std::vector<std::string>& out_of_domain_names() {
  static const std::vector<std::string> names = {"LPCIP", "TextureSynthesis",
                                                 "BlackScholes"};
  return names;
}

Workload make_out_of_domain(const std::string& name, double scale) {
  if (name == "LPCIP") return make_lpcip(scale);
  if (name == "TextureSynthesis") return make_texture_synthesis(scale);
  if (name == "BlackScholes") return make_black_scholes(scale);
  throw ConfigError("unknown out-of-domain benchmark '" + name + "'");
}

}  // namespace ara::workloads
