// Navigation domain benchmarks (paper Sec. 4, from CHARM/CAMEL [8, 9]):
// Robot Localization, EKF-SLAM, Disparity Map.
#pragma once

#include "workloads/workload.h"

namespace ara::workloads {

/// Particle-filter robot localization: divide-heavy weight updates with
/// substantial chaining.
Workload make_robot_localization(double scale = 1.0);

/// EKF-SLAM: long chained linear-algebra pipelines — the paper's example of
/// a benchmark with large amounts of ABB chaining.
Workload make_ekf_slam(double scale = 1.0);

/// Disparity-map stereo matching: sum/poly window correlation, light
/// chaining.
Workload make_disparity_map(double scale = 1.0);

}  // namespace ara::workloads
