#include "workloads/navigation.h"

#include <algorithm>
#include <cmath>

#include "workloads/calibration.h"
#include "workloads/registry.h"

namespace ara::workloads {

namespace {

std::uint32_t scaled(std::uint32_t base, double scale) {
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(base * scale)));
}

Workload finish(Workload w, double sw_mult, std::uint32_t invocations,
                double scale) {
  w.invocations = scaled(invocations, scale);
  w.cmp_cycles_per_invocation =
      software_cycles_per_invocation(w.dfg, sw_mult);
  w.cmp_parallel_eff = calibration::kDefaultParallelEff;
  return w;
}

}  // namespace

Workload make_robot_localization(double scale) {
  DfgGenParams p;
  p.tasks = 14;
  p.chain_fraction = 0.55;
  p.branch_prob = 0.12;
  p.kind_weights = {0.40, 0.28, 0.12, 0.08, 0.12};
  p.elements = 1280;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 2;
  p.seed = 0x40B0;
  Workload w;
  w.name = "RobotLocalization";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kRobotLocSwMult, 120, scale);
}

Workload make_ekf_slam(double scale) {
  DfgGenParams p;
  p.tasks = 18;
  p.chain_fraction = 0.70;  // the paper's heavy-chaining example
  p.branch_prob = 0.18;
  p.kind_weights = {0.46, 0.20, 0.10, 0.08, 0.16};
  p.elements = 1152;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 2;
  p.seed = 0xEF51;
  Workload w;
  w.name = "EKF-SLAM";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kEkfSlamSwMult, 120, scale);
}

Workload make_disparity_map(double scale) {
  DfgGenParams p;
  p.tasks = 12;
  p.chain_fraction = 0.30;
  p.branch_prob = 0.08;
  p.kind_weights = {0.52, 0.08, 0.06, 0.04, 0.30};
  p.elements = 1664;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 1;
  p.seed = 0xD15A;
  Workload w;
  w.name = "DisparityMap";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kDisparitySwMult, 132, scale);
}

}  // namespace ara::workloads
