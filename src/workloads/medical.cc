#include "workloads/medical.h"

#include <algorithm>
#include <cmath>

#include "dataflow/decomposer.h"
#include "dataflow/kernel_ir.h"
#include "workloads/calibration.h"
#include "workloads/registry.h"

namespace ara::workloads {

namespace {

std::uint32_t scaled(std::uint32_t base, double scale) {
  return std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(std::lround(base * scale)));
}

Workload finish(Workload w, double sw_mult, std::uint32_t invocations,
                double scale) {
  w.invocations = scaled(invocations, scale);
  w.cmp_cycles_per_invocation =
      software_cycles_per_invocation(w.dfg, sw_mult);
  w.cmp_parallel_eff = calibration::kDefaultParallelEff;
  return w;
}

}  // namespace

Workload make_deblur(double scale) {
  DfgGenParams p;
  p.tasks = 14;
  p.chain_fraction = 0.35;
  p.branch_prob = 0.12;
  p.kind_weights = {0.70, 0.10, 0.08, 0.04, 0.08};
  p.elements = 1536;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 1;
  p.seed = 0xDEB1;
  Workload w;
  w.name = "Deblur";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kDeblurSwMult, 120, scale);
}

Workload make_denoise(double scale) {
  DfgGenParams p;
  p.tasks = 12;
  p.chain_fraction = 0.10;  // the paper's low-chaining example
  p.branch_prob = 0.05;
  p.kind_weights = {0.75, 0.08, 0.06, 0.03, 0.08};
  p.elements = 1536;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 1;
  p.seed = 0xDE01;
  Workload w;
  w.name = "Denoise";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kDenoiseSwMult, 132, scale);
}

Workload make_segmentation(double scale) {
  DfgGenParams p;
  p.tasks = 20;
  p.chain_fraction = 0.60;  // heavy chaining (Sec. 5.5)
  p.branch_prob = 0.15;
  p.kind_weights = {0.42, 0.24, 0.16, 0.10, 0.08};
  p.elements = 1280;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 2;
  p.seed = 0x5E61;
  Workload w;
  w.name = "Segmentation";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kSegmentationSwMult, 108, scale);
}

Workload make_registration(double scale) {
  DfgGenParams p;
  p.tasks = 16;
  p.chain_fraction = 0.40;
  p.branch_prob = 0.10;
  p.kind_weights = {0.58, 0.10, 0.08, 0.16, 0.08};
  p.elements = 1536;
  p.head_input_streams = 3;
  p.chained_input_streams = 1;
  p.compute_iterations = 1;
  p.chain_words = 1;
  p.seed = 0x4E61;
  Workload w;
  w.name = "Registration";
  w.dfg = generate_dfg(w.name, p);
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kRegistrationSwMult, 120, scale);
}

Workload make_denoise_from_ir(double scale) {
  // Rician denoise update, one output pixel per element:
  //   g  = sqrt(sum of squared neighbour differences)   (gradient magnitude)
  //   w  = u / (g + eps)                                 (edge weight)
  //   r  = poly(u, f)                                    (fidelity correction)
  //   out = w * r + neighbour average                    (update)
  dataflow::KernelIr ir("DenoiseIR", 384);
  const auto u = ir.input();
  const auto f = ir.input();
  const auto n0 = ir.input();
  const auto n1 = ir.input();
  const auto eps = ir.constant();

  const auto d0 = ir.binary(dataflow::IrOp::kSub, u, n0);
  const auto d1 = ir.binary(dataflow::IrOp::kSub, u, n1);
  const auto s0 = ir.binary(dataflow::IrOp::kMul, d0, d0);
  const auto s1 = ir.binary(dataflow::IrOp::kMul, d1, d1);
  const auto ss = ir.binary(dataflow::IrOp::kAdd, s0, s1);
  const auto g = ir.unary(dataflow::IrOp::kSqrt, ss);
  const auto gd = ir.binary(dataflow::IrOp::kAdd, g, eps);
  const auto wgt = ir.binary(dataflow::IrOp::kDiv, u, gd);
  const auto r0 = ir.binary(dataflow::IrOp::kMul, u, f);
  const auto r1 = ir.binary(dataflow::IrOp::kAdd, r0, f);
  const auto upd = ir.binary(dataflow::IrOp::kMul, wgt, r1);
  const auto avg = ir.binary(dataflow::IrOp::kAdd, n0, n1);
  const auto out = ir.binary(dataflow::IrOp::kAdd, upd, avg);
  ir.mark_output(out);

  dataflow::Decomposer dec(/*allow_fabric=*/false);
  Workload w;
  w.name = "DenoiseIR";
  w.dfg = dec.decompose(ir).dfg;
  w.concurrency = 48;
  w.buffer_rotation = 4;
  return finish(std::move(w), calibration::kDenoiseSwMult, 220, scale);
}

}  // namespace ara::workloads
