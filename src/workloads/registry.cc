#include "workloads/registry.h"

#include "common/config_error.h"
#include "workloads/calibration.h"
#include "workloads/medical.h"
#include "workloads/navigation.h"
#include "workloads/out_of_domain.h"

namespace ara::workloads {

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names = {
      "Deblur",           "Denoise",  "Segmentation", "Registration",
      "RobotLocalization", "EKF-SLAM", "DisparityMap"};
  return names;
}

Workload make_benchmark(const std::string& name, double scale) {
  if (name == "Deblur") return make_deblur(scale);
  if (name == "Denoise") return make_denoise(scale);
  if (name == "Segmentation") return make_segmentation(scale);
  if (name == "Registration") return make_registration(scale);
  if (name == "RobotLocalization") return make_robot_localization(scale);
  if (name == "EKF-SLAM") return make_ekf_slam(scale);
  if (name == "DisparityMap") return make_disparity_map(scale);
  if (name == "DenoiseIR") return make_denoise_from_ir(scale);
  for (const auto& ood : out_of_domain_names()) {
    if (name == ood) return make_out_of_domain(name, scale);
  }
  throw ConfigError("unknown benchmark '" + name + "'");
}

std::vector<Workload> all_benchmarks(double scale) {
  std::vector<Workload> out;
  out.reserve(benchmark_names().size());
  for (const auto& name : benchmark_names()) {
    out.push_back(make_benchmark(name, scale));
  }
  return out;
}

double software_cycles_per_invocation(const dataflow::Dfg& dfg,
                                      double sw_multiplier) {
  double cycles = 0.0;
  for (const auto& n : dfg.nodes()) {
    const auto k = static_cast<std::size_t>(n.kind);
    cycles += static_cast<double>(n.elements) *
              calibration::kSwCyclesPerElement[k];
  }
  return cycles * sw_multiplier;
}

}  // namespace ara::workloads
