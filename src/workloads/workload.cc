#include "workloads/workload.h"

#include <algorithm>
#include <vector>

#include "common/config_error.h"
#include "sim/rng.h"

namespace ara::workloads {

dataflow::Dfg generate_dfg(const std::string& name, const DfgGenParams& p) {
  config_check(p.tasks > 0, "workload needs at least one task");
  sim::Rng rng(p.seed);

  struct ProtoNode {
    dataflow::DfgNode node;
    std::vector<TaskId> edges_from;  // producers
    std::uint64_t streamed = 0;      // elements moved (vs computed)
    bool has_succ = false;
  };
  std::vector<ProtoNode> proto;
  proto.reserve(p.tasks);

  auto pick_kind = [&]() {
    double total = 0;
    for (double w : p.kind_weights) total += w;
    double r = rng.next_double() * total;
    for (std::size_t k = 0; k < p.kind_weights.size(); ++k) {
      r -= p.kind_weights[k];
      if (r <= 0) return abb::asic_kinds()[k];
    }
    return abb::asic_kinds().back();
  };

  auto jittered_elements = [&]() {
    const double jitter = 0.75 + 0.5 * rng.next_double();  // +/- 25%
    return std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(
                static_cast<double>(p.elements) * jitter));
  };

  auto make_node = [&](bool is_head, TaskId pred) {
    ProtoNode pn;
    pn.node.kind = pick_kind();
    pn.streamed = jittered_elements();
    const std::uint64_t streamed = pn.streamed;
    pn.node.elements = streamed * p.compute_iterations;
    pn.node.needs_fabric =
        p.fabric_fraction > 0.0 && rng.next_bool(p.fabric_fraction);
    const std::uint32_t streams =
        is_head ? p.head_input_streams : p.chained_input_streams;
    pn.node.mem_in_bytes =
        static_cast<Bytes>(streams) * streamed * abb::kWordBytes;
    pn.node.chain_in_bytes =
        streamed * abb::kWordBytes * p.chain_words;
    if (!is_head) {
      pn.edges_from.push_back(pred);
      proto[pred].has_succ = true;
    }
    return pn;
  };

  // Build chains until the task budget is consumed. Chain length is
  // geometric with continuation probability = chain_fraction, so the
  // realized chaining degree (fraction of nodes with a producer) matches
  // the target in expectation.
  while (proto.size() < p.tasks) {
    proto.push_back(make_node(/*is_head=*/true, 0));
    TaskId prev = static_cast<TaskId>(proto.size() - 1);
    while (proto.size() < p.tasks && rng.next_bool(p.chain_fraction)) {
      proto.push_back(make_node(/*is_head=*/false, prev));
      const TaskId current = static_cast<TaskId>(proto.size() - 1);
      // Occasional fan-out: the same producer feeds a second consumer.
      if (proto.size() < p.tasks && rng.next_bool(p.branch_prob)) {
        proto.push_back(make_node(/*is_head=*/false, prev));
      }
      prev = current;
    }
  }

  // Leaf nodes store their result to memory.
  for (auto& pn : proto) {
    if (!pn.has_succ) {
      pn.node.mem_out_bytes = pn.streamed * abb::kWordBytes;
    }
  }

  dataflow::Dfg dfg(name);
  for (auto& pn : proto) {
    dataflow::DfgNode n = pn.node;
    n.preds.clear();  // edges added below for validation symmetry
    dfg.add_node(std::move(n));
  }
  for (TaskId t = 0; t < proto.size(); ++t) {
    for (TaskId producer : proto[t].edges_from) {
      dfg.add_edge(producer, t);
    }
  }
  dfg.finalize();
  return dfg;
}

Bytes workload_input_bytes(const Workload& w) { return w.dfg.total_mem_in(); }

Bytes workload_output_bytes(const Workload& w) {
  return w.dfg.total_mem_out();
}

}  // namespace ara::workloads
