// Benchmark registry: the paper's seven workloads by name.
#pragma once

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace ara::workloads {

/// The paper's benchmark order (Figs. 7-10): Deblur, Denoise, Segmentation,
/// Registration, Robot Localization, EKF-SLAM, Disparity Map.
const std::vector<std::string>& benchmark_names();

/// Construct a benchmark by name (throws ConfigError for unknown names).
/// `scale` multiplies the invocation count (1.0 = default experiment size).
Workload make_benchmark(const std::string& name, double scale = 1.0);

/// All seven benchmarks.
std::vector<Workload> all_benchmarks(double scale = 1.0);

/// Derived: single-core software cycles for one invocation of `dfg` given a
/// per-benchmark multiplier (used by the generators and tests).
double software_cycles_per_invocation(const dataflow::Dfg& dfg,
                                      double sw_multiplier);

}  // namespace ara::workloads
