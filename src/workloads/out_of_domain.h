// Out-of-domain benchmarks (the CAMEL evaluation set [9]): applications
// that deviate from the medical-imaging domain the ABB library was
// designed for, so some of their operations fall outside the five ASIC
// block kinds and require the programmable fabric. Pure CHARM cannot run
// them; CAMEL composes ASIC blocks for the covered ops and PF blocks for
// the rest.
#pragma once

#include <string>
#include <vector>

#include "workloads/workload.h"

namespace ara::workloads {

/// Local-polar-coordinate image descriptor (vision): polynomial resampling
/// with trigonometric coordinate transforms (fabric ops).
Workload make_lpcip(double scale = 1.0);

/// Texture synthesis: neighbourhood matching with exotic distance kernels.
Workload make_texture_synthesis(double scale = 1.0);

/// Black-Scholes option pricing: exp/log-heavy with a CDF approximation
/// outside the library.
Workload make_black_scholes(double scale = 1.0);

/// Names of the out-of-domain set.
const std::vector<std::string>& out_of_domain_names();

/// Construct a member of the out-of-domain set by name.
Workload make_out_of_domain(const std::string& name, double scale = 1.0);

}  // namespace ara::workloads
