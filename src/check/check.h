// ara::check — the runtime correctness harness (layer 1 of three: see
// DESIGN.md "Validation & fuzzing"; layers 2/3 are check/fuzz.h and the
// metamorphic test suite).
//
// The InvariantChecker hooks a core::System and machine-checks conservation
// laws while a workload runs:
//  - job conservation: jobs submitted == completed == GAM requests ==
//    interrupts delivered, per run;
//  - task/chain conservation: every DFG task starts exactly once per
//    invocation, and every chain edge is served exactly once — directly
//    SPM->SPM or spilled through shared memory;
//  - event balance: the kernel's events_scheduled == events_processed +
//    pending at every observation point, and the queue drains by run end;
//  - allocation/SPM occupancy: the ABC's slot-activity matrix stays
//    consistent (exclusive ownership, SPM-sharing neighbour exclusion,
//    no leaked or double-allocated slots) — Abc::audit_allocation;
//  - admission window: the GAM never oversubscribes max_jobs_in_flight;
//  - monotonicity: time and cumulative counters never move backwards;
//  - result sanity: utilizations and hit rates in [0, 1], latency
//    percentiles ordered, energy/area non-negative, stats-registry roll-ups
//    agree with component counters.
//
// Checking never perturbs results: live sampling rides the Simulator
// observer hook (not an event), so a checked run is bit-identical to an
// unchecked one. Violations throw CheckError. Enabled process-wide via
// ARA_CHECK / --check (common::CliOptions) or set_enabled(); cheap enough
// for every ctest.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/types.h"

namespace ara::core {
class System;
struct RunResult;
}  // namespace ara::core
namespace ara::workloads {
struct Workload;
}  // namespace ara::workloads

namespace ara::check {

/// Thrown when a runtime invariant is violated. The message names the
/// broken conservation law and the observed values.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Process-wide enable state: set_enabled() overrides; otherwise the
/// ARA_CHECK environment variable decides ("" / "0" / unset = off).
/// core::System consults this at construction.
bool enabled();
void set_enabled(bool on);
/// Drop any set_enabled() override and fall back to ARA_CHECK.
void clear_enabled_override();

/// RAII enable/restore for tests.
class ScopedEnable {
 public:
  explicit ScopedEnable(bool on = true);
  ~ScopedEnable();
  ScopedEnable(const ScopedEnable&) = delete;
  ScopedEnable& operator=(const ScopedEnable&) = delete;

 private:
  int prev_;  // tri-state override snapshot
};

/// Conservation ledger of one completed System::run, expressed as deltas so
/// multi-run Systems (stats accumulate across runs) verify per run.
/// verify_ledger() is a pure function of this struct, which is what makes
/// the checker's negative test possible: corrupt one field of a real ledger
/// and the verifier must throw.
struct RunLedger {
  // Expectations derived from the workload at begin_run.
  std::uint64_t invocations = 0;
  std::uint64_t tasks_expected = 0;       // dfg size x invocations (0 mono)
  std::uint64_t chain_edges_expected = 0; // chain edges x invocations (0 mono)
  // Observed counter deltas over the run.
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t gam_requests = 0;
  std::uint64_t interrupts = 0;
  std::uint64_t tasks_started = 0;
  std::uint64_t chains_direct = 0;
  std::uint64_t chains_spilled = 0;
  /// Newly scheduled this run, plus events already queued when it began.
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_pending = 0;  // at end of run (must be 0)
  /// Cross-shard channel transfers (partitioned kernel, sim/shard.h): an
  /// event sent over a channel is scheduled in one shard's stream but
  /// dispatched in another without ever entering a local queue, so the
  /// balance law credits deliveries to the dispatch side:
  ///   dispatched + pending == scheduled + cross_delivered,
  /// and a drained run moved every transfer: sent == delivered. Both fields
  /// are 0 for unsharded runs (and for today's hub-only degenerate plan),
  /// where the laws reduce exactly to the PR-4 originals.
  std::uint64_t cross_shard_sent = 0;
  std::uint64_t cross_shard_delivered = 0;
};

/// Verify every conservation law the ledger encodes; throws CheckError on
/// the first violation. Returns the number of invariants evaluated.
std::uint64_t verify_ledger(const RunLedger& ledger);

/// Live + end-of-run invariant checking for one core::System. Owned by the
/// System (constructed when check::enabled()); begin_run()/end_run()
/// bracket each System::run, and check_now() fires from the Simulator
/// observer every kSampleInterval dispatched events.
///
/// Threading: single-owner state, deliberately unannotated. The checker's
/// ledger, baselines and watermarks belong to exactly one System, and a
/// System (plus its Simulator and observer hook) lives on one thread for
/// its whole lifetime — the parallel sweep executor builds one per worker
/// and never shares them. The only process-shared piece of ara::check is
/// the tri-state enable override, which is a std::atomic in check.cc.
class InvariantChecker {
 public:
  /// Dispatches between live samples. Small enough to catch corruption
  /// close to its cause, large enough to stay cheap (<1% on tier-1 runs).
  static constexpr std::uint64_t kSampleInterval = 1024;

  explicit InvariantChecker(core::System& system);
  ~InvariantChecker();
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Snapshot baselines and arm the simulator observer.
  void begin_run(const workloads::Workload& workload);
  /// Disarm, build the run's ledger, verify it, and run the post-run
  /// result/stats checks against `result`.
  void end_run(const core::RunResult& result);
  /// One live structural pass (observer target; also callable directly).
  void check_now();

  /// Ledger of the most recent completed run (valid after end_run).
  const RunLedger& last_ledger() const { return ledger_; }
  /// Total invariants evaluated and live samples taken, cumulative.
  std::uint64_t checks_passed() const { return checks_passed_; }
  std::uint64_t samples() const { return samples_; }

 private:
  void fail(const std::string& what) const;

  core::System& sys_;
  RunLedger ledger_;
  std::uint64_t checks_passed_ = 0;
  std::uint64_t samples_ = 0;
  bool armed_ = false;

  // Baselines captured at begin_run (deltas give per-run conservation).
  struct Baseline {
    std::uint64_t jobs_submitted = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t gam_requests = 0;
    std::uint64_t interrupts = 0;
    std::uint64_t tasks_started = 0;
    std::uint64_t chains_direct = 0;
    std::uint64_t chains_spilled = 0;
    std::uint64_t events_scheduled = 0;
    std::uint64_t events_dispatched = 0;
    std::uint64_t events_pending = 0;  // queued before the run began
    std::uint64_t cross_shard_sent = 0;
    std::uint64_t cross_shard_delivered = 0;
  } base_;

  // Monotonicity watermarks advanced by every live sample.
  struct Watermark {
    Tick now = 0;
    std::uint64_t events_dispatched = 0;
    std::uint64_t jobs_completed = 0;
    std::uint64_t tasks_started = 0;
    std::uint64_t chains = 0;
    std::uint64_t flit_hops = 0;
    std::uint64_t dram_bytes = 0;
  } mark_;
};

}  // namespace ara::check
