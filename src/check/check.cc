#include "check/check.h"

#include <cstdlib>
#include <string>

#include "core/run_result.h"
#include "core/system.h"
#include "workloads/workload.h"

namespace ara::check {

namespace {

// Tri-state override: -1 = follow ARA_CHECK, 0/1 = forced. Atomic so that
// parallel sweep workers constructing Systems may read it while a test has
// just set it (writes happen-before the sweep starts, but TSAN still wants
// the access annotated).
std::atomic<int> g_override{-1};

bool env_enabled() {
  const char* s = std::getenv("ARA_CHECK");
  if (s == nullptr) return false;
  const std::string v(s);
  return !(v.empty() || v == "0" || v == "off" || v == "false");
}

}  // namespace

bool enabled() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return o != 0;
  return env_enabled();
}

void set_enabled(bool on) {
  g_override.store(on ? 1 : 0, std::memory_order_relaxed);
}

void clear_enabled_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

ScopedEnable::ScopedEnable(bool on)
    : prev_(g_override.load(std::memory_order_relaxed)) {
  set_enabled(on);
}

ScopedEnable::~ScopedEnable() {
  g_override.store(prev_, std::memory_order_relaxed);
}

// ------------------------------------------------------------- the ledger

namespace {

void ledger_fail(const std::string& law, std::uint64_t got,
                 std::uint64_t want) {
  throw CheckError("invariant violated: " + law + " (got " +
                   std::to_string(got) + ", expected " +
                   std::to_string(want) + ")");
}

}  // namespace

std::uint64_t verify_ledger(const RunLedger& l) {
  std::uint64_t checks = 0;
  auto expect_eq = [&](std::uint64_t got, std::uint64_t want,
                       const char* law) {
    ++checks;
    if (got != want) ledger_fail(law, got, want);
  };

  // Job conservation: every invocation is submitted, completed, requested
  // through the GAM and acknowledged with exactly one interrupt.
  expect_eq(l.jobs_submitted, l.invocations,
            "jobs submitted == invocations");
  expect_eq(l.jobs_completed, l.invocations,
            "jobs completed == invocations");
  expect_eq(l.gam_requests, l.invocations, "GAM requests == invocations");
  expect_eq(l.interrupts, l.invocations,
            "completion interrupts == invocations");
  expect_eq(l.jobs_completed, l.jobs_submitted,
            "jobs completed == jobs submitted");

  // Task conservation: each DFG task starts exactly once per invocation
  // (composable modes; monolithic runs carry tasks_expected == 0).
  expect_eq(l.tasks_started, l.tasks_expected,
            "tasks started == dfg tasks x invocations");

  // Chain conservation: every chain edge is served exactly once — either
  // directly SPM->SPM or spilled through shared memory, never both, never
  // dropped.
  expect_eq(l.chains_direct + l.chains_spilled, l.chain_edges_expected,
            "chains direct + spilled == chain edges x invocations");

  // Event balance: the kernel accepted exactly as many events as it
  // dispatched plus what is still pending, and a completed run drains.
  // Cross-shard channel transfers are dispatched without a local schedule,
  // so deliveries credit the dispatch side; with no sharding both cross
  // fields are 0 and this is the original balance law unchanged.
  expect_eq(l.events_dispatched + l.events_pending,
            l.events_scheduled + l.cross_shard_delivered,
            "events dispatched + pending == scheduled + cross delivered");
  expect_eq(l.cross_shard_delivered, l.cross_shard_sent,
            "cross-shard events delivered == sent (channels drained)");
  expect_eq(l.events_pending, 0, "event queue drained at end of run");

  return checks;
}

// --------------------------------------------------------- live checking

InvariantChecker::InvariantChecker(core::System& system) : sys_(system) {}

InvariantChecker::~InvariantChecker() {
  if (armed_) sys_.simulator().clear_observer();
}

void InvariantChecker::fail(const std::string& what) const {
  throw CheckError("invariant violated: " + what);
}

void InvariantChecker::begin_run(const workloads::Workload& workload) {
  const bool mono =
      sys_.config().mode == abc::ExecutionMode::kMonolithic;
  ledger_ = RunLedger{};
  ledger_.invocations = workload.invocations;
  ledger_.tasks_expected =
      mono ? 0 : workload.dfg.size() * std::uint64_t{workload.invocations};
  ledger_.chain_edges_expected =
      mono ? 0
           : workload.dfg.chain_edges() * std::uint64_t{workload.invocations};

  base_.jobs_submitted = sys_.composer().jobs_submitted();
  base_.jobs_completed = sys_.composer().jobs_completed();
  base_.gam_requests = sys_.gam().requests();
  base_.interrupts = sys_.gam().interrupts_delivered();
  base_.tasks_started = sys_.composer().tasks_started();
  base_.chains_direct = sys_.composer().chains_direct();
  base_.chains_spilled = sys_.composer().chains_spilled();
  base_.events_scheduled = sys_.simulator().events_scheduled();
  base_.events_dispatched = sys_.simulator().events_processed();
  // Events already queued when the run starts (e.g. a failure injection
  // scheduled before run()) dispatch inside the run: credit them to this
  // run's schedule side or the balance law would double-count them.
  base_.events_pending = sys_.simulator().pending();
  base_.cross_shard_sent = sys_.cross_shard_sent();
  base_.cross_shard_delivered = sys_.cross_shard_delivered();

  mark_ = Watermark{};
  mark_.now = sys_.simulator().now();
  mark_.events_dispatched = base_.events_dispatched;
  mark_.jobs_completed = base_.jobs_completed;
  mark_.tasks_started = base_.tasks_started;
  mark_.chains = base_.chains_direct + base_.chains_spilled;
  mark_.flit_hops = sys_.mesh().total_flit_hops();
  mark_.dram_bytes = sys_.memory().dram_bytes();

  sys_.simulator().set_observer([this] { check_now(); }, kSampleInterval);
  armed_ = true;
  check_now();
}

void InvariantChecker::check_now() {
  ++samples_;
  sim::Simulator& sim = sys_.simulator();

  // Kernel event balance holds at every point where caller code runs.
  ++checks_passed_;
  if (sim.events_scheduled() != sim.events_processed() + sim.pending())
    fail("events scheduled (" + std::to_string(sim.events_scheduled()) +
         ") != dispatched (" + std::to_string(sim.events_processed()) +
         ") + pending (" + std::to_string(sim.pending()) + ")");

  // Allocation / SPM-occupancy audit (exclusive slot ownership, sharing
  // neighbour exclusion, no leaked or double-allocated slots).
  const std::string audit = sys_.composer().audit_allocation(&checks_passed_);
  if (!audit.empty()) fail(audit);

  // GAM admission window is never oversubscribed.
  ++checks_passed_;
  if (sys_.gam().jobs_in_flight() > sys_.config().max_jobs_in_flight)
    fail("GAM window oversubscribed: " +
         std::to_string(sys_.gam().jobs_in_flight()) + " jobs in flight > " +
         std::to_string(sys_.config().max_jobs_in_flight));

  // Per-run progress bounds: deltas never exceed the run's expectations.
  const std::uint64_t d_jobs =
      sys_.composer().jobs_completed() - base_.jobs_completed;
  const std::uint64_t d_tasks =
      sys_.composer().tasks_started() - base_.tasks_started;
  const std::uint64_t d_chains = sys_.composer().chains_direct() +
                                 sys_.composer().chains_spilled() -
                                 base_.chains_direct - base_.chains_spilled;
  ++checks_passed_;
  if (d_jobs > ledger_.invocations)
    fail("more jobs completed than invocations submitted this run");
  ++checks_passed_;
  if (ledger_.tasks_expected != 0 && d_tasks > ledger_.tasks_expected)
    fail("more tasks started than dfg tasks x invocations");
  ++checks_passed_;
  if (ledger_.chain_edges_expected != 0 &&
      d_chains > ledger_.chain_edges_expected)
    fail("more chain edges served than exist");

  // Monotonicity: simulated time and cumulative counters never regress.
  auto mono = [&](std::uint64_t now_v, std::uint64_t& mark,
                  const char* what) {
    ++checks_passed_;
    if (now_v < mark)
      fail(std::string(what) + " moved backwards (" + std::to_string(now_v) +
           " < " + std::to_string(mark) + ")");
    mark = now_v;
  };
  mono(sim.now(), mark_.now, "simulated time");
  mono(sim.events_processed(), mark_.events_dispatched, "events dispatched");
  mono(sys_.composer().jobs_completed(), mark_.jobs_completed,
       "jobs completed");
  mono(sys_.composer().tasks_started(), mark_.tasks_started, "tasks started");
  mono(sys_.composer().chains_direct() + sys_.composer().chains_spilled(),
       mark_.chains, "chain counters");
  mono(sys_.mesh().total_flit_hops(), mark_.flit_hops, "NoC flit hops");
  mono(sys_.memory().dram_bytes(), mark_.dram_bytes, "DRAM bytes");
}

void InvariantChecker::end_run(const core::RunResult& r) {
  check_now();
  if (armed_) {
    sys_.simulator().clear_observer();
    armed_ = false;
  }

  ledger_.jobs_submitted =
      sys_.composer().jobs_submitted() - base_.jobs_submitted;
  ledger_.jobs_completed =
      sys_.composer().jobs_completed() - base_.jobs_completed;
  ledger_.gam_requests = sys_.gam().requests() - base_.gam_requests;
  ledger_.interrupts =
      sys_.gam().interrupts_delivered() - base_.interrupts;
  ledger_.tasks_started =
      sys_.composer().tasks_started() - base_.tasks_started;
  ledger_.chains_direct =
      sys_.composer().chains_direct() - base_.chains_direct;
  ledger_.chains_spilled =
      sys_.composer().chains_spilled() - base_.chains_spilled;
  ledger_.events_scheduled = sys_.simulator().events_scheduled() -
                             base_.events_scheduled + base_.events_pending;
  ledger_.events_dispatched =
      sys_.simulator().events_processed() - base_.events_dispatched;
  ledger_.events_pending = sys_.simulator().pending();
  ledger_.cross_shard_sent =
      sys_.cross_shard_sent() - base_.cross_shard_sent;
  ledger_.cross_shard_delivered =
      sys_.cross_shard_delivered() - base_.cross_shard_delivered;

  checks_passed_ += verify_ledger(ledger_);

  // --- post-run result sanity ---
  constexpr double kEps = 1e-9;
  auto expect = [&](bool ok, const std::string& what) {
    ++checks_passed_;
    if (!ok) fail(what);
  };
  expect(r.jobs == ledger_.invocations,
         "RunResult.jobs != invocations");
  expect(r.makespan > 0, "zero makespan for a non-empty run");
  expect(r.avg_abb_utilization >= 0.0 &&
             r.avg_abb_utilization <= 1.0 + kEps,
         "average ABB utilization outside [0, 1]");
  expect(r.peak_abb_utilization >= 0.0 &&
             r.peak_abb_utilization <= 1.0 + kEps,
         "peak ABB utilization outside [0, 1]");
  expect(r.noc_peak_link_utilization >= 0.0 &&
             r.noc_peak_link_utilization <= 1.0 + kEps,
         "NoC peak link utilization outside [0, 1] over the makespan");
  expect(r.l2_hit_rate >= 0.0 && r.l2_hit_rate <= 1.0 + kEps,
         "L2 hit rate outside [0, 1]");
  expect(r.job_latency_mean >= 0.0, "negative mean job latency");
  expect(r.job_latency_p50 <= r.job_latency_p95,
         "job latency p50 > p95 (histogram corrupted)");
  expect(r.job_latency_max <= r.makespan,
         "a job's latency exceeds the whole run's makespan");
  expect(r.energy.total() >= 0.0 && r.energy.abb_j >= 0.0 &&
             r.energy.dram_j >= 0.0 && r.energy.leakage_j >= 0.0,
         "negative energy component");
  expect(r.area.total() > 0.0, "non-positive chip area");
  expect(r.chains_direct == sys_.composer().chains_direct() &&
             r.chains_spilled == sys_.composer().chains_spilled(),
         "RunResult chain counters diverged from the composer's");

  // Stats-registry roll-ups must agree with the component counters they
  // were copied from (snapshot_stats ran just before end_run).
  auto expect_stat = [&](const char* name, std::uint64_t want) {
    ++checks_passed_;
    const sim::Counter* c = sys_.stats().find_counter(name);
    if (c == nullptr)
      fail(std::string("stats counter missing after snapshot: ") + name);
    if (c->value() != want)
      fail(std::string("stats counter ") + name + " (" +
           std::to_string(c->value()) + ") != component counter (" +
           std::to_string(want) + ")");
  };
  expect_stat("sim.events", sys_.simulator().events_processed());
  expect_stat("sim.shard.sites", sys_.shard_sites());
  expect_stat("sim.shard.cross.delivered", sys_.cross_shard_delivered());
  expect_stat("abc.jobs_completed", sys_.composer().jobs_completed());
  expect_stat("abc.tasks_started", sys_.composer().tasks_started());
  expect_stat("gam.interrupts", sys_.gam().interrupts_delivered());
  expect_stat("noc.flit_hops", sys_.mesh().total_flit_hops());
}

}  // namespace ara::check
