#include "check/fuzz.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "check/check.h"
#include "core/config_digest.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"
#include "sim/rng.h"
#include "sim/shard.h"

namespace ara::check {

namespace {

/// Decorrelate the point generator from the DFG generator (which also
/// consumes the seed) so neighbouring seeds explore independent corners.
constexpr std::uint64_t kPointSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kDfgSalt = 0xa5a5a5a55a5a5a5aull;

}  // namespace

PointSampler::PointSampler(std::uint64_t seed) : rng_(seed ^ kPointSalt) {}

FuzzPoint generate_point(std::uint64_t seed, const FuzzLimits& limits) {
  // The sampler wraps the salted Rng stream generate_point always used;
  // every draw below maps 1:1 onto the pre-PointSampler calls
  // (next_below -> pick, next_bool -> chance, next_double -> unit), so
  // the fuzz corpus for a given seed is unchanged.
  PointSampler rng(seed);
  FuzzPoint p;
  p.seed = seed;

  // --- architecture ---
  core::ArchConfig& cfg = p.config;
  const std::uint32_t max_islands =
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(limits.max_islands, 24));
  cfg.num_islands =
      1 + static_cast<std::uint32_t>(rng.pick(max_islands));
  // ABBs dealt evenly: total = islands x per-island keeps validate()'s
  // divisibility rule for every island count.
  const std::uint32_t abbs_per_island = rng.chance(0.5) ? 5 : 10;
  cfg.total_abbs = cfg.num_islands * abbs_per_island;

  switch (rng.pick(3)) {
    case 0:
      cfg.island.net.topology = island::SpmDmaTopology::kProxyXbar;
      break;
    case 1:
      cfg.island.net.topology = island::SpmDmaTopology::kChainingXbar;
      break;
    default:
      cfg.island.net.topology = island::SpmDmaTopology::kRing;
      break;
  }
  cfg.island.net.num_rings =
      1 + static_cast<std::uint32_t>(rng.pick(3));
  cfg.island.net.link_bytes = rng.chance(0.5) ? 16 : 32;
  cfg.island.spm_sharing = rng.chance(0.3);
  cfg.island.spm_port_multiplier = rng.chance(0.5) ? 1 : 2;
  cfg.island.tlb_enabled = rng.chance(0.8);

  cfg.mesh.link_bytes_per_cycle =
      16.0 * static_cast<double>(1u << rng.pick(3));  // 16/32/64
  cfg.mesh.local_port_bytes_per_cycle = rng.chance(0.5) ? 16.0 : 32.0;

  const bool monolithic = rng.chance(0.15);
  cfg.mode = monolithic ? abc::ExecutionMode::kMonolithic
                        : abc::ExecutionMode::kComposable;
  cfg.force_per_task = !monolithic && rng.chance(0.2);

  cfg.num_cores = 1 + static_cast<std::uint32_t>(rng.pick(8));
  cfg.max_jobs_in_flight =
      2 + static_cast<std::uint32_t>(rng.pick(31));
  switch (rng.pick(3)) {
    case 0:
      cfg.gam_policy = abc::GamPolicy::kFifo;
      break;
    case 1:
      cfg.gam_policy = abc::GamPolicy::kShortestFirst;
      break;
    default:
      cfg.gam_policy = abc::GamPolicy::kLargestFirst;
      break;
  }

  // Fabric tasks only when the islands carry fabric blocks; a fabric task
  // with zero fabric inventory could never be placed (a genuine deadlock,
  // not a bug the fuzzer should report).
  const bool fabric = !monolithic && rng.chance(0.25);
  cfg.island.fabric_blocks = fabric ? 1 : 0;

  // --- workload ---
  workloads::DfgGenParams gp;
  const std::uint32_t max_tasks = std::max<std::uint32_t>(3, limits.max_tasks);
  gp.tasks =
      3 + static_cast<std::uint32_t>(rng.pick(max_tasks - 2));
  gp.chain_fraction = rng.unit() * 0.6;
  gp.branch_prob = rng.unit() * 0.25;
  gp.elements = 32 + rng.pick(225);
  gp.compute_iterations = 1 + static_cast<std::uint32_t>(rng.pick(2));
  gp.chain_words = 1 + static_cast<std::uint32_t>(rng.pick(4));
  gp.head_input_streams = 1 + static_cast<std::uint32_t>(rng.pick(3));
  gp.chained_input_streams = static_cast<std::uint32_t>(rng.pick(3));
  gp.fabric_fraction = fabric ? 0.15 : 0.0;
  gp.seed = seed ^ kDfgSalt;

  workloads::Workload& w = p.workload;
  w.name = "fuzz-" + std::to_string(seed);
  w.dfg = workloads::generate_dfg(w.name, gp);
  const std::uint32_t max_inv =
      std::max<std::uint32_t>(2, limits.max_invocations);
  w.invocations =
      2 + static_cast<std::uint32_t>(rng.pick(max_inv - 1));
  w.concurrency = 1 + static_cast<std::uint32_t>(rng.pick(12));
  w.buffer_rotation = 1 + static_cast<std::uint32_t>(rng.pick(4));

  cfg.validate();  // generator bug if this ever throws
  return p;
}

// -------------------------------------------------------- cross-checking

namespace {

std::string snapshot_text(const obs::MetricsSnapshot& s) {
  std::ostringstream os;
  obs::MetricsExporter::write_snapshot_exact(os, s);
  return os.str();
}

/// Bit-exact comparison of two sweep results (ignoring host-dependent
/// wall-clock and worker fields). Empty string when identical.
std::string diff_results(const dse::SweepResult& got,
                         const dse::SweepResult& ref,
                         const std::string& label) {
  if (!(got.result == ref.result))
    return label + ": RunResult diverged from the serial reference";
  if (got.events != ref.events)
    return label + ": event count diverged (" + std::to_string(got.events) +
           " vs " + std::to_string(ref.events) + ")";
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    if (got.event_kinds[k].count != ref.event_kinds[k].count)
      return label + ": dispatch count for kind '" +
             sim::event_kind_name(static_cast<sim::EventKind>(k)) +
             "' diverged";
  }
  if (snapshot_text(got.metrics) != snapshot_text(ref.metrics))
    return label + ": MetricsSnapshot diverged";
  return {};
}

}  // namespace

std::string cross_check(const FuzzPoint& point) {
  ScopedEnable invariants_on;
  constexpr int kReplicas = 3;

  auto request = [&](unsigned jobs) {
    dse::SweepRequest rq;
    for (int i = 0; i < kReplicas; ++i) rq.add(point.config, point.workload);
    return rq.with_jobs(jobs);
  };
  auto run_checked =
      [&](unsigned jobs, dse::ResultCache* cache,
          std::vector<dse::SweepResult>* out) -> std::string {
    try {
      dse::SweepRequest rq = request(jobs);
      if (cache != nullptr) rq.with_cache(cache);
      *out = dse::run(rq);
    } catch (const std::exception& e) {
      return "jobs=" + std::to_string(jobs) + " run threw: " + e.what();
    }
    return {};
  };

  // Serial reference, then replica self-consistency at jobs 1/2/8.
  std::vector<dse::SweepResult> ref;
  if (std::string err = run_checked(1, nullptr, &ref); !err.empty())
    return err;
  for (unsigned jobs : {1u, 2u, 8u}) {
    std::vector<dse::SweepResult> got;
    if (jobs == 1u) {
      got = ref;
    } else if (std::string err = run_checked(jobs, nullptr, &got);
               !err.empty()) {
      return err;
    }
    for (int i = 0; i < kReplicas; ++i) {
      const std::string d =
          diff_results(got[i], ref[0],
                       "jobs=" + std::to_string(jobs) + " replica " +
                           std::to_string(i));
      if (!d.empty()) return d;
    }
  }

  // Cached-vs-fresh: a cold pass populates the cache, a warm pass must
  // restore every deterministic bit without simulating.
  dse::ResultCache cache;
  std::vector<dse::SweepResult> cold, warm;
  if (std::string err = run_checked(2, &cache, &cold); !err.empty())
    return "cold cache pass: " + err;
  if (std::string err = run_checked(2, &cache, &warm); !err.empty())
    return "warm cache pass: " + err;
  for (int i = 0; i < kReplicas; ++i) {
    if (std::string d = diff_results(cold[i], ref[0], "cold cache pass");
        !d.empty())
      return d;
    if (std::string d = diff_results(warm[i], ref[0], "warm cache pass");
        !d.empty())
      return d;
    if (!warm[i].from_cache)
      return "warm cache pass: replica " + std::to_string(i) +
             " was re-simulated instead of served from cache";
  }
  return {};
}

// ----------------------------------------------- sharded-kernel replica

namespace {

/// Deterministic hub-and-islands event script for the partitioned kernel.
/// Every decision an event makes (follow-ups, cross sends, delays) is a
/// pure function of its (site, id), never of execution order or any shared
/// RNG, so the dispatch stream — and therefore the checksum — is identical
/// for every worker count and window width.
class ShardScript {
 public:
  ShardScript(sim::ShardedSimulator* ssim, std::uint32_t sites,
              Tick lookahead)
      : ssim_(ssim), sites_(sites), lookahead_(lookahead) {}

  /// Root events dealt round-robin across sites at seeded random ticks.
  void seed_roots(std::uint64_t seed, int roots) {
    sim::Rng rng(seed);
    for (int i = 0; i < roots; ++i) {
      const std::uint32_t site =
          static_cast<std::uint32_t>(rng.next_below(sites_));
      const Tick at = rng.next_below(400);
      const std::uint64_t id = static_cast<std::uint64_t>(i) * 2 + 1;
      ssim_->schedule_at(site, at, [this, site, id] { arm(site, id, 0); });
    }
  }

  void arm(std::uint32_t site, std::uint64_t id, int depth) {
    if (depth >= 4) return;
    const std::uint64_t r =
        (id ^ (site * 0xdeadbeef9e3779b9ull)) * 0x9e3779b97f4a7c15ull;
    const Tick now = ssim_->site_now(site);
    if (r % 10 < 6) {
      const Tick at = now + 1 + static_cast<Tick>((r >> 16) % 50);
      ssim_->schedule_at(
          site, at, [this, site, id, depth] { arm(site, id * 31 + 7, depth + 1); });
    }
    if ((r >> 24) % 10 < 4) {
      // Hub-and-spoke traffic: islands talk to the hub, the hub fans back
      // out — the shape of ara's GAM/NoC coordination.
      const std::uint32_t dst =
          site == 0 ? 1 + static_cast<std::uint32_t>((r >> 32) % (sites_ - 1))
                    : 0;
      const Tick at = now + lookahead_ + static_cast<Tick>((r >> 44) % 30);
      ssim_->send(site, dst, at,
                  [this, dst, id, depth] { arm(dst, id * 37 + 11, depth + 1); });
    }
    if ((r >> 52) % 10 < 2) {
      // Same-tick follow-up: seq order inside the merge must hold.
      ssim_->schedule_at(
          site, now,
          [this, site, id, depth] { arm(site, id * 41 + 13, depth + 1); });
    }
  }

 private:
  sim::ShardedSimulator* ssim_;
  std::uint32_t sites_;
  Tick lookahead_;
};

/// Every deterministic aggregate of one sharded run, for exact comparison.
struct ShardFingerprint {
  std::uint64_t checksum = 0;
  std::uint64_t processed = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t cross_sent = 0;
  std::uint64_t cross_delivered = 0;
  std::uint64_t windows = 0;
  std::uint64_t idle = 0;
  std::uint64_t peak = 0;

  bool operator==(const ShardFingerprint& o) const {
    return checksum == o.checksum && processed == o.processed &&
           scheduled == o.scheduled && cross_sent == o.cross_sent &&
           cross_delivered == o.cross_delivered && windows == o.windows &&
           idle == o.idle && peak == o.peak;
  }
  std::string text() const {
    std::ostringstream os;
    os << "checksum=" << std::hex << checksum << std::dec
       << " processed=" << processed << " scheduled=" << scheduled
       << " cross=" << cross_sent << "/" << cross_delivered
       << " windows=" << windows << " idle=" << idle << " peak=" << peak;
    return os.str();
  }
};

ShardFingerprint run_script(std::uint64_t seed, const sim::ShardOptions& so,
                            int roots) {
  sim::ShardedSimulator ssim(so);
  ShardScript script(&ssim, so.sites, so.lookahead);
  script.seed_roots(seed, roots);
  ssim.run();
  ShardFingerprint fp;
  fp.checksum = ssim.checksum();
  fp.processed = ssim.events_processed();
  fp.scheduled = ssim.events_scheduled();
  fp.cross_sent = ssim.cross_sent();
  fp.cross_delivered = ssim.cross_delivered();
  fp.windows = ssim.windows();
  fp.idle = ssim.idle_site_windows();
  fp.peak = ssim.channel_peak();
  return fp;
}

/// Fixed negative probes (seed-independent): the fault-injection knobs must
/// provably change what the differential battery observes, or the battery
/// is vacuous.
std::string shard_negative_checks() {
  // A guaranteed cross-vs-local tick tie: the hub sends site 1 an event for
  // tick 10, and site 1 also has a local event at tick 10. Clean order is
  // cross-before-local; fault_invert_merge flips it and the checksum must
  // move.
  sim::ShardOptions so;
  so.sites = 2;
  so.lookahead = 10;
  auto tie_run = [&](bool invert) {
    sim::ShardOptions opts = so;
    opts.fault_invert_merge = invert;
    sim::ShardedSimulator ssim(opts);
    ssim.schedule_at(1, 10, [] {});
    ssim.schedule_at(0, 0, [&ssim] { ssim.send(0, 1, 10, [] {}); });
    ssim.run();
    return ssim.checksum();
  };
  if (tie_run(false) == tie_run(true)) {
    return "negative probe: fault_invert_merge did NOT change the checksum "
           "of a cross-vs-local tick tie — merge-order bugs would be "
           "invisible";
  }

  // Lookahead violation, eager path: send() must throw immediately.
  {
    sim::ShardedSimulator ssim(so);
    bool threw = false;
    ssim.schedule_at(0, 5, [&ssim, &threw] {
      try {
        ssim.send(0, 1, 5, [] {});  // at < now + lookahead
      } catch (const sim::LookaheadError&) {
        threw = true;
      }
    });
    ssim.run();
    if (!threw) {
      return "negative probe: a lookahead-violating send() was not rejected";
    }
  }

  // Lookahead violation, barrier backstop: with the eager check faulted
  // off, the merge-time causality check must still refuse to deliver the
  // event behind the horizon.
  {
    sim::ShardOptions opts = so;
    opts.fault_skip_lookahead_check = true;
    sim::ShardedSimulator ssim(opts);
    ssim.schedule_at(0, 5, [&ssim] { ssim.send(0, 1, 5, [] {}); });
    // Give site 1 work in the same window so the violation cannot hide
    // behind an idle site.
    ssim.schedule_at(1, 6, [] {});
    try {
      ssim.run();
      return "negative probe: a lookahead violation slipped past the "
             "barrier backstop";
    } catch (const sim::LookaheadError&) {
      // expected
    }
  }
  return {};
}

}  // namespace

std::string shard_cross_check(const FuzzPoint& point) {
  ScopedEnable invariants_on;

  // Layer 1: the full System simulation of the point, re-run under the
  // partitioned kernel at shards 2 and 4, byte-compared against the serial
  // reference (RunResult, event counts, per-kind dispatch counts, and the
  // exact MetricsSnapshot — including the sim.shard.* counters, which must
  // not depend on the shard count).
  auto run_shards =
      [&](unsigned shards,
          std::vector<dse::SweepResult>* out) -> std::string {
    try {
      dse::SweepRequest rq;
      rq.add(point.config, point.workload);
      rq.with_jobs(1).with_shards(shards);
      *out = dse::run(rq);
    } catch (const std::exception& e) {
      return "shards=" + std::to_string(shards) + " run threw: " + e.what();
    }
    return {};
  };
  std::vector<dse::SweepResult> ref;
  if (std::string err = run_shards(1, &ref); !err.empty()) return err;
  for (unsigned shards : {2u, 4u}) {
    std::vector<dse::SweepResult> got;
    if (std::string err = run_shards(shards, &got); !err.empty()) return err;
    const std::string d =
        diff_results(got[0], ref[0], "shards=" + std::to_string(shards));
    if (!d.empty()) return d;
  }

  // Layer 2: the kernel itself under genuine cross-site traffic. The
  // topology is seed-derived; workers 1/2/4 and a narrowed window must all
  // reproduce the same fingerprint bit for bit.
  PointSampler rng(point.seed ^ 0x5bd1e995u);
  sim::ShardOptions so;
  so.sites = 2 + static_cast<std::uint32_t>(rng.pick(7));
  so.lookahead = 2 + static_cast<Tick>(rng.pick(6));
  const int roots = 24 + static_cast<int>(rng.pick(40));
  so.workers = 1;
  const ShardFingerprint want = run_script(point.seed, so, roots);
  if (want.cross_sent == 0) {
    return "shard script for seed " + std::to_string(point.seed) +
           " generated no cross traffic — the differential is vacuous";
  }
  for (unsigned workers : {2u, 4u}) {
    so.workers = workers;
    const ShardFingerprint got = run_script(point.seed, so, roots);
    if (!(got == want)) {
      return "kernel replica at workers=" + std::to_string(workers) +
             " diverged: " + got.text() + " vs " + want.text();
    }
  }
  {
    // Window-width invariance: the checksum and event counts must not move
    // when the sync window narrows to a single tick (window/stall counters
    // legitimately change, so compare the order-sensitive core only).
    sim::ShardOptions narrow = so;
    narrow.workers = 2;
    narrow.window = 1;
    const ShardFingerprint got = run_script(point.seed, narrow, roots);
    if (got.checksum != want.checksum || got.processed != want.processed ||
        got.cross_sent != want.cross_sent ||
        got.cross_delivered != want.cross_delivered) {
      return "kernel replica at window=1 diverged: " + got.text() + " vs " +
             want.text();
    }
  }

  // Layer 3: prove the battery can actually catch the bugs it exists for.
  return shard_negative_checks();
}

std::string repro_text(const FuzzPoint& point, const FuzzLimits& limits,
                       const std::string& failure) {
  std::ostringstream os;
  os << "# ara_fuzz repro\n"
     << "seed = " << point.seed << "\n"
     << "limits.max_islands = " << limits.max_islands << "\n"
     << "limits.max_tasks = " << limits.max_tasks << "\n"
     << "limits.max_invocations = " << limits.max_invocations << "\n"
     << "failure = " << failure << "\n"
     << "\n# regenerate with check::generate_point(seed, limits)\n"
     << "\n[config]\n"
     << core::canonical_text(point.config) << "\n[workload]\n"
     << core::canonical_text(point.workload);
  return os.str();
}

}  // namespace ara::check
