#include "check/fuzz.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "check/check.h"
#include "core/config_digest.h"
#include "dse/result_cache.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"
#include "sim/rng.h"

namespace ara::check {

namespace {

/// Decorrelate the point generator from the DFG generator (which also
/// consumes the seed) so neighbouring seeds explore independent corners.
constexpr std::uint64_t kPointSalt = 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kDfgSalt = 0xa5a5a5a55a5a5a5aull;

}  // namespace

PointSampler::PointSampler(std::uint64_t seed) : rng_(seed ^ kPointSalt) {}

FuzzPoint generate_point(std::uint64_t seed, const FuzzLimits& limits) {
  // The sampler wraps the salted Rng stream generate_point always used;
  // every draw below maps 1:1 onto the pre-PointSampler calls
  // (next_below -> pick, next_bool -> chance, next_double -> unit), so
  // the fuzz corpus for a given seed is unchanged.
  PointSampler rng(seed);
  FuzzPoint p;
  p.seed = seed;

  // --- architecture ---
  core::ArchConfig& cfg = p.config;
  const std::uint32_t max_islands =
      std::max<std::uint32_t>(1, std::min<std::uint32_t>(limits.max_islands, 24));
  cfg.num_islands =
      1 + static_cast<std::uint32_t>(rng.pick(max_islands));
  // ABBs dealt evenly: total = islands x per-island keeps validate()'s
  // divisibility rule for every island count.
  const std::uint32_t abbs_per_island = rng.chance(0.5) ? 5 : 10;
  cfg.total_abbs = cfg.num_islands * abbs_per_island;

  switch (rng.pick(3)) {
    case 0:
      cfg.island.net.topology = island::SpmDmaTopology::kProxyXbar;
      break;
    case 1:
      cfg.island.net.topology = island::SpmDmaTopology::kChainingXbar;
      break;
    default:
      cfg.island.net.topology = island::SpmDmaTopology::kRing;
      break;
  }
  cfg.island.net.num_rings =
      1 + static_cast<std::uint32_t>(rng.pick(3));
  cfg.island.net.link_bytes = rng.chance(0.5) ? 16 : 32;
  cfg.island.spm_sharing = rng.chance(0.3);
  cfg.island.spm_port_multiplier = rng.chance(0.5) ? 1 : 2;
  cfg.island.tlb_enabled = rng.chance(0.8);

  cfg.mesh.link_bytes_per_cycle =
      16.0 * static_cast<double>(1u << rng.pick(3));  // 16/32/64
  cfg.mesh.local_port_bytes_per_cycle = rng.chance(0.5) ? 16.0 : 32.0;

  const bool monolithic = rng.chance(0.15);
  cfg.mode = monolithic ? abc::ExecutionMode::kMonolithic
                        : abc::ExecutionMode::kComposable;
  cfg.force_per_task = !monolithic && rng.chance(0.2);

  cfg.num_cores = 1 + static_cast<std::uint32_t>(rng.pick(8));
  cfg.max_jobs_in_flight =
      2 + static_cast<std::uint32_t>(rng.pick(31));
  switch (rng.pick(3)) {
    case 0:
      cfg.gam_policy = abc::GamPolicy::kFifo;
      break;
    case 1:
      cfg.gam_policy = abc::GamPolicy::kShortestFirst;
      break;
    default:
      cfg.gam_policy = abc::GamPolicy::kLargestFirst;
      break;
  }

  // Fabric tasks only when the islands carry fabric blocks; a fabric task
  // with zero fabric inventory could never be placed (a genuine deadlock,
  // not a bug the fuzzer should report).
  const bool fabric = !monolithic && rng.chance(0.25);
  cfg.island.fabric_blocks = fabric ? 1 : 0;

  // --- workload ---
  workloads::DfgGenParams gp;
  const std::uint32_t max_tasks = std::max<std::uint32_t>(3, limits.max_tasks);
  gp.tasks =
      3 + static_cast<std::uint32_t>(rng.pick(max_tasks - 2));
  gp.chain_fraction = rng.unit() * 0.6;
  gp.branch_prob = rng.unit() * 0.25;
  gp.elements = 32 + rng.pick(225);
  gp.compute_iterations = 1 + static_cast<std::uint32_t>(rng.pick(2));
  gp.chain_words = 1 + static_cast<std::uint32_t>(rng.pick(4));
  gp.head_input_streams = 1 + static_cast<std::uint32_t>(rng.pick(3));
  gp.chained_input_streams = static_cast<std::uint32_t>(rng.pick(3));
  gp.fabric_fraction = fabric ? 0.15 : 0.0;
  gp.seed = seed ^ kDfgSalt;

  workloads::Workload& w = p.workload;
  w.name = "fuzz-" + std::to_string(seed);
  w.dfg = workloads::generate_dfg(w.name, gp);
  const std::uint32_t max_inv =
      std::max<std::uint32_t>(2, limits.max_invocations);
  w.invocations =
      2 + static_cast<std::uint32_t>(rng.pick(max_inv - 1));
  w.concurrency = 1 + static_cast<std::uint32_t>(rng.pick(12));
  w.buffer_rotation = 1 + static_cast<std::uint32_t>(rng.pick(4));

  cfg.validate();  // generator bug if this ever throws
  return p;
}

// -------------------------------------------------------- cross-checking

namespace {

std::string snapshot_text(const obs::MetricsSnapshot& s) {
  std::ostringstream os;
  obs::MetricsExporter::write_snapshot_exact(os, s);
  return os.str();
}

/// Bit-exact comparison of two sweep results (ignoring host-dependent
/// wall-clock and worker fields). Empty string when identical.
std::string diff_results(const dse::SweepResult& got,
                         const dse::SweepResult& ref,
                         const std::string& label) {
  if (!(got.result == ref.result))
    return label + ": RunResult diverged from the serial reference";
  if (got.events != ref.events)
    return label + ": event count diverged (" + std::to_string(got.events) +
           " vs " + std::to_string(ref.events) + ")";
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    if (got.event_kinds[k].count != ref.event_kinds[k].count)
      return label + ": dispatch count for kind '" +
             sim::event_kind_name(static_cast<sim::EventKind>(k)) +
             "' diverged";
  }
  if (snapshot_text(got.metrics) != snapshot_text(ref.metrics))
    return label + ": MetricsSnapshot diverged";
  return {};
}

}  // namespace

std::string cross_check(const FuzzPoint& point) {
  ScopedEnable invariants_on;
  constexpr int kReplicas = 3;

  auto request = [&](unsigned jobs) {
    dse::SweepRequest rq;
    for (int i = 0; i < kReplicas; ++i) rq.add(point.config, point.workload);
    return rq.with_jobs(jobs);
  };
  auto run_checked =
      [&](unsigned jobs, dse::ResultCache* cache,
          std::vector<dse::SweepResult>* out) -> std::string {
    try {
      dse::SweepRequest rq = request(jobs);
      if (cache != nullptr) rq.with_cache(cache);
      *out = dse::run(rq);
    } catch (const std::exception& e) {
      return "jobs=" + std::to_string(jobs) + " run threw: " + e.what();
    }
    return {};
  };

  // Serial reference, then replica self-consistency at jobs 1/2/8.
  std::vector<dse::SweepResult> ref;
  if (std::string err = run_checked(1, nullptr, &ref); !err.empty())
    return err;
  for (unsigned jobs : {1u, 2u, 8u}) {
    std::vector<dse::SweepResult> got;
    if (jobs == 1u) {
      got = ref;
    } else if (std::string err = run_checked(jobs, nullptr, &got);
               !err.empty()) {
      return err;
    }
    for (int i = 0; i < kReplicas; ++i) {
      const std::string d =
          diff_results(got[i], ref[0],
                       "jobs=" + std::to_string(jobs) + " replica " +
                           std::to_string(i));
      if (!d.empty()) return d;
    }
  }

  // Cached-vs-fresh: a cold pass populates the cache, a warm pass must
  // restore every deterministic bit without simulating.
  dse::ResultCache cache;
  std::vector<dse::SweepResult> cold, warm;
  if (std::string err = run_checked(2, &cache, &cold); !err.empty())
    return "cold cache pass: " + err;
  if (std::string err = run_checked(2, &cache, &warm); !err.empty())
    return "warm cache pass: " + err;
  for (int i = 0; i < kReplicas; ++i) {
    if (std::string d = diff_results(cold[i], ref[0], "cold cache pass");
        !d.empty())
      return d;
    if (std::string d = diff_results(warm[i], ref[0], "warm cache pass");
        !d.empty())
      return d;
    if (!warm[i].from_cache)
      return "warm cache pass: replica " + std::to_string(i) +
             " was re-simulated instead of served from cache";
  }
  return {};
}

std::string repro_text(const FuzzPoint& point, const FuzzLimits& limits,
                       const std::string& failure) {
  std::ostringstream os;
  os << "# ara_fuzz repro\n"
     << "seed = " << point.seed << "\n"
     << "limits.max_islands = " << limits.max_islands << "\n"
     << "limits.max_tasks = " << limits.max_tasks << "\n"
     << "limits.max_invocations = " << limits.max_invocations << "\n"
     << "failure = " << failure << "\n"
     << "\n# regenerate with check::generate_point(seed, limits)\n"
     << "\n[config]\n"
     << core::canonical_text(point.config) << "\n[workload]\n"
     << core::canonical_text(point.workload);
  return os.str();
}

}  // namespace ara::check
