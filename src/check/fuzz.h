// ara::check fuzzing layer: deterministic generation of random-but-valid
// (ArchConfig, Workload) points and the differential cross-check each point
// is subjected to. Shared between tools/ara_fuzz (the command-line fuzzer,
// which adds seed minimization and repro files) and the fuzz-labeled test
// suites (property_test.cc), so both drive the identical corpus.
#pragma once

#include <cstdint>
#include <string>

#include "core/arch_config.h"
#include "sim/rng.h"
#include "workloads/workload.h"

namespace ara::check {

/// The deterministic design-space sampling stream generate_point draws
/// from, exposed as its own type so other samplers of the design space
/// (dse::search's candidate sampling) share the exact machinery: one
/// xoshiro stream decorrelated from the raw seed by the same salt, the
/// same draw primitives. Same seed -> same draw sequence, independent of
/// host, thread count, or what the drawn values are used for.
class PointSampler {
 public:
  explicit PointSampler(std::uint64_t seed);

  /// Uniform index in [0, n); n must be > 0.
  std::uint64_t pick(std::uint64_t n) { return rng_.next_below(n); }
  /// Bernoulli draw with probability `p`.
  bool chance(double p) { return rng_.next_bool(p); }
  /// Uniform double in [0, 1).
  double unit() { return rng_.next_double(); }

 private:
  sim::Rng rng_;
};

/// Upper bounds on the sampled design space. The defaults define the fuzz
/// corpus; the minimizer tightens them to shrink a failing seed while
/// keeping generation deterministic (same seed + same limits = same point).
struct FuzzLimits {
  std::uint32_t max_islands = 12;
  std::uint32_t max_tasks = 12;
  std::uint32_t max_invocations = 16;
};

/// One generated design point: a validated ArchConfig plus a workload whose
/// DFG was grown from the same seed.
struct FuzzPoint {
  std::uint64_t seed = 0;
  core::ArchConfig config;
  workloads::Workload workload;
};

/// Deterministically sample a valid point from `seed`. Covers topology
/// (proxy/chaining crossbars, 1-3 rings, 16/32B links), SPM sharing and
/// porting, NoC bandwidths, programmable-fabric tasks, GAM policies and
/// window sizes, composable/per-task/monolithic execution, and randomized
/// DFG structure. The returned config always passes ArchConfig::validate().
FuzzPoint generate_point(std::uint64_t seed, const FuzzLimits& limits = {});

/// Run the point's full differential cross-check with invariants enabled:
/// three replicas of the point swept at jobs 1, 2 and 8 must produce
/// bit-identical RunResult / MetricsSnapshot / event counts, and a
/// cached-vs-fresh pair through a ResultCache must restore the same bits
/// with from_cache set. Returns an empty string on success, else a
/// description of the first divergence or invariant violation.
std::string cross_check(const FuzzPoint& point);

/// Sharded-replica differential for the partitioned kernel. Three layers,
/// all deterministic from the point's seed:
///  1. the point's sweep re-run with --shards 2 and 4, byte-compared
///     against the serial (shards=1) reference exactly like cross_check;
///  2. a synthetic hub-and-islands script with real cross-site traffic run
///     through sim::ShardedSimulator at workers 1/2/4 (plus a narrowed
///     window), cross-checked by dispatch checksum and every deterministic
///     aggregate;
///  3. negative probes: an injected merge-order inversion must flip the
///     checksum, and a lookahead violation must throw LookaheadError both
///     from the eager send() check and from the barrier backstop when the
///     eager check is faulted off.
/// Returns an empty string on success, else the first divergence.
std::string shard_cross_check(const FuzzPoint& point);

/// Human-readable repro file contents for a failing seed: the seed and
/// limits to regenerate the point, the failure, and the canonical config /
/// workload text the cache digest is built from.
std::string repro_text(const FuzzPoint& point, const FuzzLimits& limits,
                       const std::string& failure);

}  // namespace ara::check
