#include "serve/protocol.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/config_error.h"
#include "dse/result_cache.h"
#include "obs/json_io.h"

namespace ara::serve::protocol {

namespace {

bool read_exact(int fd, char* buf, std::size_t n, bool* clean_eof) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r == 0) {
      if (clean_eof != nullptr) *clean_eof = got == 0;
      return false;
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      if (clean_eof != nullptr) *clean_eof = false;
      return false;
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

bool write_all(int fd, const char* buf, std::size_t n) {
  std::size_t put = 0;
  while (put < n) {
    // MSG_NOSIGNAL: a peer that closed its socket before reading the
    // response surfaces as EPIPE instead of raising SIGPIPE, whose
    // default action would kill the whole daemon. Non-socket fds (tests
    // frame over pipes) report ENOTSOCK and take the plain-write path.
    ssize_t w = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
    if (w < 0 && errno == ENOTSOCK) w = ::write(fd, buf + put, n - put);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    put += static_cast<std::size_t>(w);
  }
  return true;
}

// JSON field accessors over the obs DOM; each returns false when the
// member is present but has the wrong type (absence is fine — every
// request field beyond "type" has a default).
bool take_string(const obs::JsonValue& obj, const char* name,
                 std::string* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_string()) return false;
  *out = v->text;
  return true;
}

// Strict unsigned conversion over the number's source text: plain digits
// only (no sign, fraction, or exponent) and within [0, max]. as_u64()'s
// strtoull would silently wrap "islands": 4294967320 or "-1" into a
// small value and simulate a different design point than requested.
bool number_to_u64(const obs::JsonValue& v, std::uint64_t max,
                   std::uint64_t* out) {
  if (!v.is_number() || v.text.empty()) return false;
  for (const char c : v.text) {
    if (c < '0' || c > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long val = std::strtoull(v.text.c_str(), &end, 10);
  if (errno == ERANGE || *end != '\0' || val > max) return false;
  *out = val;
  return true;
}

bool take_u32(const obs::JsonValue& obj, const char* name,
              std::uint32_t* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  std::uint64_t val = 0;
  if (!number_to_u64(*v, UINT32_MAX, &val)) return false;
  *out = static_cast<std::uint32_t>(val);
  return true;
}

bool take_u64(const obs::JsonValue& obj, const char* name,
              std::uint64_t* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  return number_to_u64(*v, UINT64_MAX, out);
}

bool take_double(const obs::JsonValue& obj, const char* name, double* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_number()) return false;
  *out = v->as_double();
  return true;
}

bool take_bool(const obs::JsonValue& obj, const char* name, bool* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (v->kind != obs::JsonValue::Kind::kBool) return false;
  *out = v->boolean;
  return true;
}

bool parse_point(const obs::JsonValue& obj, PointSpec* out,
                 std::string* error) {
  if (!obj.is_object()) {
    *error = "every entry of \"points\" must be an object";
    return false;
  }
  PointSpec p;
  const bool ok = take_u32(obj, "islands", &p.islands) &&
                  take_string(obj, "net", &p.net) &&
                  take_u32(obj, "rings", &p.rings) &&
                  take_u64(obj, "width", &p.link_bytes) &&
                  take_u32(obj, "ports", &p.ports) &&
                  take_bool(obj, "sharing", &p.sharing) &&
                  take_bool(obj, "mono", &p.mono) &&
                  take_string(obj, "policy", &p.policy);
  if (!ok) {
    *error = "point field has the wrong JSON type or is out of range";
    return false;
  }
  *out = std::move(p);
  return true;
}

// Search-space lists: present => non-empty, correctly typed, and bounded
// (the space is a cross product; per-list caps keep it enumerable).
constexpr std::size_t kMaxSpaceValues = 24;

bool take_u32_list(const obs::JsonValue& obj, const char* name,
                   std::vector<std::uint32_t>* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_array() || v->items.empty() ||
      v->items.size() > kMaxSpaceValues) {
    return false;
  }
  std::vector<std::uint32_t> vals;
  for (const auto& item : v->items) {
    std::uint64_t x = 0;
    if (!number_to_u64(item, UINT32_MAX, &x)) return false;
    vals.push_back(static_cast<std::uint32_t>(x));
  }
  *out = std::move(vals);
  return true;
}

bool take_u64_list(const obs::JsonValue& obj, const char* name,
                   std::vector<std::uint64_t>* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_array() || v->items.empty() ||
      v->items.size() > kMaxSpaceValues) {
    return false;
  }
  std::vector<std::uint64_t> vals;
  for (const auto& item : v->items) {
    std::uint64_t x = 0;
    if (!number_to_u64(item, UINT64_MAX, &x)) return false;
    vals.push_back(x);
  }
  *out = std::move(vals);
  return true;
}

bool take_bool_list(const obs::JsonValue& obj, const char* name,
                    std::vector<bool>* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_array() || v->items.empty() ||
      v->items.size() > kMaxSpaceValues) {
    return false;
  }
  std::vector<bool> vals;
  for (const auto& item : v->items) {
    if (item.kind != obs::JsonValue::Kind::kBool) return false;
    vals.push_back(item.boolean);
  }
  *out = std::move(vals);
  return true;
}

bool take_string_list(const obs::JsonValue& obj, const char* name,
                      std::vector<std::string>* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr) return true;
  if (!v->is_array() || v->items.empty() ||
      v->items.size() > kMaxSpaceValues) {
    return false;
  }
  std::vector<std::string> vals;
  for (const auto& item : v->items) {
    if (!item.is_string()) return false;
    vals.push_back(item.text);
  }
  *out = std::move(vals);
  return true;
}

// ------------------------------------------- registry body parsers
// Each runs after the envelope (v / type / client) is validated; the
// registry row picked by "type" selects which one.

bool parse_empty_body(const obs::JsonValue& root, Request* out,
                      std::string* error) {
  (void)root;
  (void)out;
  (void)error;
  return true;
}

/// Optional "shards" on sweep/search bodies: partitioned-kernel workers
/// per simulated point. Pure execution resource (served bytes never depend
/// on it), so the only validation is the kMaxShards thread-budget cap.
bool take_shards(const obs::JsonValue& root, Request* out,
                 std::string* error) {
  std::uint32_t shards = 1;
  if (!take_u32(root, "shards", &shards) || shards == 0 ||
      shards > kMaxShards) {
    *error = "\"shards\" must be an integer between 1 and 16";
    return false;
  }
  out->shards = shards;
  return true;
}

bool parse_sweep_body(const obs::JsonValue& root, Request* out,
                      std::string* error) {
  if (!take_string(root, "workload", &out->workload) ||
      out->workload.empty()) {
    *error = "sweep request needs a string \"workload\"";
    return false;
  }
  if (!take_double(root, "scale", &out->scale) || out->scale <= 0) {
    *error = "\"scale\" must be a positive number";
    return false;
  }
  if (!take_shards(root, out, error)) return false;
  const obs::JsonValue* points = root.find("points");
  if (points == nullptr) {
    out->points.push_back(PointSpec{});
    return true;
  }
  if (!points->is_array() || points->items.empty()) {
    *error = "\"points\" must be a non-empty array";
    return false;
  }
  if (points->items.size() > 4096) {
    *error = "\"points\" is limited to 4096 entries per request";
    return false;
  }
  for (const auto& item : points->items) {
    PointSpec spec;
    if (!parse_point(item, &spec, error)) return false;
    out->points.push_back(std::move(spec));
  }
  return true;
}

bool parse_search_body(const obs::JsonValue& root, Request* out,
                       std::string* error) {
  dse::SearchSpec spec;
  if (!take_string(root, "workload", &spec.workload) ||
      spec.workload.empty()) {
    *error = "search request needs a string \"workload\"";
    return false;
  }
  if (!take_double(root, "scale", &spec.scale) || spec.scale <= 0) {
    *error = "\"scale\" must be a positive number";
    return false;
  }
  if (!take_shards(root, out, error)) return false;
  std::string objective = dse::objective_name(spec.objective);
  if (!take_string(root, "objective", &objective) ||
      !dse::objective_from_name(objective, &spec.objective)) {
    *error =
        "\"objective\" must be one of perf|perf_per_energy|perf_per_area";
    return false;
  }
  if (!take_u64(root, "budget", &spec.budget) || spec.budget == 0) {
    *error = "\"budget\" must be a positive integer";
    return false;
  }
  if (spec.budget > 4096) {
    *error = "\"budget\" is limited to 4096 evaluations per request";
    return false;
  }
  if (!take_u64(root, "seed", &spec.seed)) {
    *error = "\"seed\" must be an unsigned integer";
    return false;
  }
  const obs::JsonValue* space = root.find("space");
  if (space != nullptr) {
    if (!space->is_object()) {
      *error = "\"space\" must be an object of per-dimension value lists";
      return false;
    }
    const bool ok = take_u32_list(*space, "islands", &spec.space.islands) &&
                    take_string_list(*space, "nets", &spec.space.nets) &&
                    take_u32_list(*space, "rings", &spec.space.rings) &&
                    take_u64_list(*space, "widths", &spec.space.widths) &&
                    take_u32_list(*space, "ports", &spec.space.ports) &&
                    take_bool_list(*space, "sharing", &spec.space.sharing) &&
                    take_bool_list(*space, "mono", &spec.space.mono) &&
                    take_string_list(*space, "policies",
                                     &spec.space.policies);
    if (!ok) {
      *error = "search space list has the wrong JSON type, is empty, or "
               "exceeds 24 entries";
      return false;
    }
  }
  out->workload = spec.workload;
  out->scale = spec.scale;
  out->search = std::move(spec);
  return true;
}

}  // namespace

ReadStatus read_frame(int fd, std::string* payload) {
  unsigned char header[4];
  bool clean_eof = false;
  if (!read_exact(fd, reinterpret_cast<char*>(header), sizeof header,
                  &clean_eof)) {
    return clean_eof ? ReadStatus::kEof : ReadStatus::kError;
  }
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
  if (len > kMaxFrameBytes) return ReadStatus::kError;
  payload->assign(len, '\0');
  if (len > 0 && !read_exact(fd, payload->data(), len, nullptr)) {
    return ReadStatus::kError;
  }
  return ReadStatus::kOk;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const unsigned char header[4] = {
      static_cast<unsigned char>(len >> 24),
      static_cast<unsigned char>(len >> 16),
      static_cast<unsigned char>(len >> 8),
      static_cast<unsigned char>(len),
  };
  return write_all(fd, reinterpret_cast<const char*>(header), sizeof header) &&
         write_all(fd, payload.data(), payload.size());
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof addr.sun_path) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

const std::vector<RequestTypeInfo>& request_registry() {
  // Sorted by name; parse_request, supported_types(), and the client's
  // validator all walk this one table.
  static const std::vector<RequestTypeInfo> kRegistry = {
      {"ping", Request::Kind::kPing, &parse_empty_body},
      {"search", Request::Kind::kSearch, &parse_search_body},
      {"stats", Request::Kind::kStats, &parse_empty_body},
      {"sweep", Request::Kind::kSweep, &parse_sweep_body},
  };
  return kRegistry;
}

std::string supported_types() {
  std::string out;
  for (const RequestTypeInfo& t : request_registry()) {
    if (!out.empty()) out += "|";
    out += t.name;
  }
  return out;
}

bool parse_request(const std::string& text, Request* out,
                   std::string* error) {
  obs::JsonValue root;
  if (!obs::parse_json(text, &root, error)) return false;
  if (!root.is_object()) {
    *error = "request must be a JSON object";
    return false;
  }

  // Envelope: version first ("v", absent = v1 so every pre-envelope
  // client frame stays valid), then the type tag, then the fairness
  // bucket. Body parsing is the registry row's job.
  Request req;
  const obs::JsonValue* v = root.find("v");
  if (v != nullptr) {
    std::uint64_t val = 0;
    if (!number_to_u64(*v, UINT32_MAX, &val)) {
      *error = "\"v\" must be an unsigned integer";
      return false;
    }
    req.v = static_cast<std::uint32_t>(val);
  }
  if (req.v != kProtocolVersion) {
    *error = "unsupported protocol version '" + std::to_string(req.v) +
             "' (supported: " + std::to_string(kProtocolVersion) + ")";
    return false;
  }
  std::string type;
  if (!take_string(root, "type", &type) || type.empty()) {
    *error = "request needs a string \"type\"";
    return false;
  }
  const RequestTypeInfo* info = nullptr;
  for (const RequestTypeInfo& t : request_registry()) {
    if (type == t.name) {
      info = &t;
      break;
    }
  }
  if (info == nullptr) {
    *error = "unknown request type '" + type +
             "' (supported: " + supported_types() + ")";
    return false;
  }
  req.kind = info->kind;
  if (!take_string(root, "client", &req.client)) {
    *error = "\"client\" must be a string";
    return false;
  }
  if (req.client.empty()) req.client = "anon";
  if (!info->parse_body(root, &req, error)) return false;
  *out = std::move(req);
  return true;
}

std::string pong_response() { return "{\"type\":\"pong\"}"; }

std::string error_response(std::string_view code, std::string_view message,
                           std::uint64_t trace_id) {
  std::ostringstream os;
  os << "{\"type\":\"error\",\"code\":\"";
  obs::json_escape(os, code);
  os << "\",\"message\":\"";
  obs::json_escape(os, message);
  os << "\"";
  // 0 = no trace was minted (the frame never parsed); otherwise the id
  // joins this failure against the server's request log.
  if (trace_id != 0) os << ",\"trace_id\":" << trace_id;
  os << "}";
  return os.str();
}

std::string stats_response(const obs::MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"type\":\"stats\",\"metrics\":";
  obs::MetricsExporter::write_json(os, snapshot);
  os << "}";
  return os.str();
}

std::string sweep_response(const std::vector<dse::SweepResult>& results,
                           const std::vector<std::uint64_t>& keys,
                           std::uint64_t salt, std::uint64_t trace_id) {
  std::ostringstream os;
  os << "{\"type\":\"sweep_result\",";
  // 0 = untraced (direct protocol users); the server always mints one.
  if (trace_id != 0) os << "\"trace_id\":" << trace_id << ",";
  os << "\"points\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const dse::SweepResult& r = results[i];
    if (i > 0) os << ",";
    os << "{\"from_cache\":" << (r.from_cache ? "true" : "false")
       << ",\"coalesced\":" << (r.coalesced ? "true" : "false")
       << ",\"wall_seconds\":";
    obs::json_number(os, r.wall_seconds, 17);
    os << ",\"entry\":";
    dse::ResultCache::Entry entry;
    entry.result = r.result;
    entry.metrics = r.metrics;
    entry.events = r.events;
    entry.event_kinds = r.event_kinds;
    for (auto& k : entry.event_kinds) k.seconds = 0;  // host-dependent
    std::string entry_json = dse::ResultCache::to_json(keys[i], salt, entry);
    while (!entry_json.empty() && entry_json.back() == '\n') {
      entry_json.pop_back();
    }
    os << entry_json << "}";
  }
  os << "]}";
  return os.str();
}

std::string search_response(const dse::SearchResult& result,
                            std::uint64_t trace_id) {
  std::ostringstream os;
  os << "{\"type\":\"search_result\",";
  // 0 = untraced (direct protocol users); the server always mints one.
  if (trace_id != 0) os << "\"trace_id\":" << trace_id << ",";
  os << "\"simulated\":" << result.simulated
     << ",\"cache_hits\":" << result.cache_hits
     << ",\"coalesced\":" << result.coalesced << ",\"wall_seconds\":";
  obs::json_number(os, result.wall_seconds, 17);
  os << ",\"result\":" << dse::search_result_json(result) << "}";
  return os.str();
}

}  // namespace ara::serve::protocol
