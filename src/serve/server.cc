#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/config_error.h"
#include "dse/search.h"
#include "dse/sweep.h"
#include "workloads/registry.h"

namespace ara::serve {

Server::Server(const ServerOptions& opts)
    : opts_(opts),
      cache_(opts.cache_dir),
      clock_(opts.clock != nullptr ? opts.clock
                                   : &obs::MonotonicClock::host()),
      queue_(opts.queue_capacity) {
  if (!opts_.log_path.empty()) {
    log_ = std::make_unique<obs::RequestLog>(obs::RequestLog::Options{
        opts_.log_path, opts_.log_max_bytes, opts_.slow_ms});
  }
}

Server::~Server() { stop(); }

void Server::start() {
  const unsigned n = opts_.handlers > 0 ? opts_.handlers : 1;
  handlers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    handlers_.emplace_back([this] { handler_loop(); });
  }
}

std::string Server::handle(const protocol::Request& request) {
  {
    common::MutexLock lock(mu_);
    stats_.counter("serve.server.requests").inc();
  }
  switch (request.kind) {
    case protocol::Request::Kind::kPing:
      return protocol::pong_response();
    case protocol::Request::Kind::kStats:
      return protocol::stats_response(stats_snapshot());
    case protocol::Request::Kind::kSweep:
    case protocol::Request::Kind::kSearch:
      break;
  }

  // Admission mints the request's trace. The trace lives on this stack
  // frame alongside the Work; the handler thread borrows it through
  // Work::trace while this thread blocks on `done`.
  obs::RequestTrace trace;
  trace.clock = clock_;
  trace.client = request.client;
  trace.workload = request.workload;
  // For a search, "points" is the evaluation budget — the work the
  // request may admit, the same resource a sweep's point count names.
  trace.points = request.kind == protocol::Request::Kind::kSearch
                     ? request.search.budget
                     : request.points.size();
  trace.start_ns = clock_->now_ns();

  Work work;
  work.request = &request;
  work.trace = &trace;
  {
    common::MutexLock lock(mu_);
    trace.id = next_trace_id_++;
    if (draining_ || stopping_) {
      stats_.counter("serve.server.rejected_draining").inc();
      trace.error = "draining";
    } else if (!queue_.push(request.client, &work)) {
      stats_.counter("serve.server.rejected_overload").inc();
      trace.error = "overloaded";
    } else {
      work.enqueued_ns = clock_->now_ns();
      work_cv_.notify_one();
      while (!work.done) done_cv_.wait(mu_);
    }
  }
  trace.total_ns = clock_->now_ns() - trace.start_ns;

  if (trace.error == "draining") {
    if (log_ != nullptr) log_->append(trace);
    return protocol::error_response(
        "draining", "server is draining; no new sweeps are admitted",
        trace.id);
  }
  if (trace.error == "overloaded") {
    if (log_ != nullptr) log_->append(trace);
    return protocol::error_response(
        "overloaded", "request queue is full; retry after a sweep drains",
        trace.id);
  }

  // Completed (successfully or with a typed error) through a handler:
  // feed the live time-series, then the request log.
  {
    common::MutexLock lock(mu_);
    window_.record(clock_->now_ns(), trace.total_ns, trace.points,
                   trace.hits + trace.aliases + trace.followers);
  }
  if (log_ != nullptr) log_->append(trace);
  return std::move(work.response);
}

void Server::handler_loop() {
  for (;;) {
    Work* work = nullptr;
    {
      common::MutexLock lock(mu_);
      while (!stopping_ && !queue_.pop(&work)) work_cv_.wait(mu_);
      if (work == nullptr) return;  // stopping and the queue is dry
      ++in_flight_;
    }
    // Admission-queue wait ends here: charge push -> pop to the queued
    // span before any simulation work starts.
    work->trace->add_phase(obs::Phase::kQueued,
                           clock_->now_ns() - work->enqueued_ns);
    // Simulate with no lock held: only the queue hand-off is serialized.
    std::string response =
        work->request->kind == protocol::Request::Kind::kSearch
            ? execute_search(*work->request, work->trace)
            : execute_sweep(*work->request, work->trace);
    {
      common::MutexLock lock(mu_);
      work->response = std::move(response);
      work->done = true;
      --in_flight_;
      done_cv_.notify_all();
    }
  }
}

std::string Server::execute_sweep(const protocol::Request& request,
                                  obs::RequestTrace* trace) {
  try {
    const workloads::Workload workload =
        workloads::make_benchmark(request.workload, request.scale);
    dse::SweepRequest sweep;
    sweep.jobs = opts_.jobs;
    sweep.shards = request.shards;
    sweep.cache = &cache_;
    sweep.coalescer = &coalescer_;
    sweep.trace = trace;
    std::vector<std::uint64_t> keys;
    keys.reserve(request.points.size());
    for (const auto& point : request.points) {
      core::ArchConfig config = point.to_config();
      config.validate();
      keys.push_back(
          dse::ResultCache::key(config, workload, cache_.salt()));
      sweep.add(std::move(config), workload);
    }
    const std::vector<dse::SweepResult> results = dse::run(sweep);

    {
      common::MutexLock lock(mu_);
      stats_.counter("serve.server.sweeps").inc();
      for (const auto& r : results) {
        stats_.counter("serve.server.points").inc();
        if (r.from_cache) {
          stats_.counter("serve.server.points_cached").inc();
        } else if (r.coalesced) {
          stats_.counter("serve.server.points_coalesced").inc();
        } else {
          stats_.counter("serve.server.points_simulated").inc();
        }
      }
    }
    obs::ScopedSpan serialize_span(trace, obs::Phase::kSerialize);
    return protocol::sweep_response(results, keys, cache_.salt(),
                                    trace != nullptr ? trace->id : 0);
  } catch (const ConfigError& e) {
    if (trace != nullptr) {
      trace->error = "bad_request";
      // The points queued for simulation are the ones the failure ate.
      trace->failed += trace->misses;
      trace->misses = 0;
    }
    common::MutexLock lock(mu_);
    stats_.counter("serve.server.errors").inc();
    return protocol::error_response("bad_request", e.what(),
                                    trace != nullptr ? trace->id : 0);
  } catch (const std::exception& e) {
    if (trace != nullptr) {
      trace->error = "failed";
      trace->failed += trace->misses;
      trace->misses = 0;
    }
    common::MutexLock lock(mu_);
    stats_.counter("serve.server.errors").inc();
    return protocol::error_response("failed", e.what(),
                                    trace != nullptr ? trace->id : 0);
  }
}

std::string Server::execute_search(const protocol::Request& request,
                                   obs::RequestTrace* trace) {
  try {
    dse::SearchRequest sr;
    sr.spec = request.search;
    sr.jobs = opts_.jobs;
    sr.shards = request.shards;
    sr.cache = &cache_;
    sr.coalescer = &coalescer_;
    sr.trace = trace;
    const dse::SearchResult result = dse::search(sr);

    {
      common::MutexLock lock(mu_);
      stats_.counter("serve.search.requests").inc();
      stats_.counter("serve.search.evaluated").inc(result.evaluated);
      stats_.counter("serve.search.simulated").inc(result.simulated);
      stats_.counter("serve.search.cache_hits").inc(result.cache_hits);
      stats_.counter("serve.search.coalesced").inc(result.coalesced);
      stats_.counter("serve.search.frontier_points")
          .inc(result.frontier.size());
    }
    obs::ScopedSpan serialize_span(trace, obs::Phase::kSerialize);
    return protocol::search_response(result,
                                     trace != nullptr ? trace->id : 0);
  } catch (const ConfigError& e) {
    if (trace != nullptr) trace->error = "bad_request";
    common::MutexLock lock(mu_);
    stats_.counter("serve.server.errors").inc();
    return protocol::error_response("bad_request", e.what(),
                                    trace != nullptr ? trace->id : 0);
  } catch (const std::exception& e) {
    if (trace != nullptr) trace->error = "failed";
    common::MutexLock lock(mu_);
    stats_.counter("serve.server.errors").inc();
    return protocol::error_response("failed", e.what(),
                                    trace != nullptr ? trace->id : 0);
  }
}

void Server::begin_drain() {
  common::MutexLock lock(mu_);
  draining_ = true;
}

void Server::stop() {
  {
    common::MutexLock lock(mu_);
    draining_ = true;
    while (!queue_.empty() || in_flight_ > 0) done_cv_.wait(mu_);
    stopping_ = true;
    work_cv_.notify_all();
  }
  for (auto& t : handlers_) t.join();
  handlers_.clear();
}

obs::MetricsSnapshot Server::stats_snapshot() {
  common::MutexLock lock(mu_);
  // Monotonic roll-ups of the shared components' own telemetry (gauges
  // that can shrink, like coalescer in-flight, are deliberately absent:
  // counters only move up).
  stats_.set_counter("serve.cache.hits", cache_.hits());
  stats_.set_counter("serve.cache.misses", cache_.misses());
  stats_.set_counter("serve.cache.disk_hits", cache_.disk_hits());
  stats_.set_counter("serve.cache.entries", cache_.size());
  stats_.set_counter("serve.coalescer.coalesced", coalescer_.coalesced());
  obs::MetricsSnapshot snap = obs::MetricsSnapshot::capture(stats_);

  // serve.window.*: the sliding-window time-series. These are gauges over
  // the last window (they rise AND fall), so they go straight into the
  // snapshot values rather than through the monotonic counter registry.
  // A scalar gauge is encoded as an accumulator with one sample
  // (sum == mean == min == max == value); "serve.window" sorts after the
  // registry's "serve.*" names, so the snapshot stays name-ordered.
  const obs::SlidingWindow::Summary w = window_.summarize(clock_->now_ns());
  snap.counters.push_back({"serve.window.points", w.points});
  snap.counters.push_back({"serve.window.points_avoided", w.points_avoided});
  snap.counters.push_back({"serve.window.requests", w.requests});
  snap.counters.push_back({"serve.window.span_ns", w.span_ns});
  auto gauge = [&snap](const char* name, double v) {
    snap.accumulators.push_back({name, v, 1, v, v, v});
  };
  gauge("serve.window.hit_ratio", w.hit_ratio);
  gauge("serve.window.p50_ms", w.p50_ms);
  gauge("serve.window.p95_ms", w.p95_ms);
  gauge("serve.window.p99_ms", w.p99_ms);
  gauge("serve.window.req_per_sec", w.requests_per_sec);
  return snap;
}

// --------------------------------------------------------- socket front end

bool Server::listen(std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.empty() ||
      opts_.socket_path.size() + 1 > sizeof addr.sun_path) {
    *error = "socket path empty or too long: '" + opts_.socket_path + "'";
    return false;
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(),
              opts_.socket_path.size() + 1);
  ::unlink(opts_.socket_path.c_str());  // stale file from a crashed run
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    *error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    *error = "bind/listen on '" + opts_.socket_path +
             "': " + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  return true;
}

int Server::serve(const std::atomic<int>& signal) {
  while (signal.load(std::memory_order_acquire) == 0) {
    reap_sessions();
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // a signal landed; loop re-checks
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (sessions_.size() >= opts_.max_sessions) {
      {
        common::MutexLock lock(mu_);
        stats_.counter("serve.server.rejected_sessions").inc();
      }
      protocol::write_frame(
          fd, protocol::error_response(
                  "overloaded",
                  "too many concurrent connections; retry shortly"));
      ::close(fd);
      continue;
    }
    const std::uint64_t id = next_session_id_++;
    {
      common::MutexLock lock(session_mu_);
      session_fds_.push_back(fd);
    }
    sessions_.push_back(
        {id, std::thread([this, fd, id] { session(fd, id); })});
  }

  // Graceful drain: no new connections or sweeps; in-flight requests run
  // to completion and their responses are delivered before sockets close.
  begin_drain();
  ::close(listen_fd_);
  listen_fd_ = -1;
  {
    common::MutexLock lock(session_mu_);
    // Half-close each session's read side: a blocked read_frame wakes
    // with EOF immediately, while a session mid-request still writes its
    // response before noticing on the next read.
    for (const int fd : session_fds_) ::shutdown(fd, SHUT_RD);
  }
  for (auto& s : sessions_) s.thread.join();
  sessions_.clear();
  {
    common::MutexLock lock(session_mu_);
    finished_sessions_.clear();
  }
  stop();
  ::unlink(opts_.socket_path.c_str());
  return 0;
}

void Server::reap_sessions() {
  std::vector<std::uint64_t> done;
  {
    common::MutexLock lock(session_mu_);
    done.swap(finished_sessions_);
  }
  for (const std::uint64_t id : done) {
    for (auto it = sessions_.begin(); it != sessions_.end(); ++it) {
      if (it->id == id) {
        it->thread.join();
        sessions_.erase(it);
        break;
      }
    }
  }
}

void Server::session(int fd, std::uint64_t id) {
  std::string payload;
  for (;;) {
    const protocol::ReadStatus status = protocol::read_frame(fd, &payload);
    if (status != protocol::ReadStatus::kOk) break;
    protocol::Request request;
    std::string parse_error;
    std::string response;
    if (!protocol::parse_request(payload, &request, &parse_error)) {
      common::MutexLock lock(mu_);
      stats_.counter("serve.server.bad_requests").inc();
      response = protocol::error_response("bad_request", parse_error);
    } else {
      response = handle(request);
    }
    if (!protocol::write_frame(fd, response)) break;
  }
  {
    // Deregister before close so the drain path never shutdown()s a
    // recycled descriptor; announce completion so the accept loop joins
    // this thread instead of letting it linger unjoined.
    common::MutexLock lock(session_mu_);
    std::erase(session_fds_, fd);
    finished_sessions_.push_back(id);
  }
  ::close(fd);
}

}  // namespace ara::serve
