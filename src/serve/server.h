// ara_serve core: a persistent sweep service wrapped around dse::run.
//
// One Server owns the process-wide warm state — a dse::ResultCache (memory
// + optional disk tier) and a dse::PointCoalescer — and exposes a single
// entry point, handle(), that turns a parsed protocol::Request into a
// response string. Every sweep goes through the exact same dse::run path
// the CLI tools use, so a served point is bit-identical to a local run of
// the same design point (the contract tests/serve_test.cc pins).
//
// Request flow for a sweep:
//   session thread -> handle() -> admission control -> FairQueue ->
//   handler thread -> dse::run (shared cache + coalescer) -> response.
//
// Admission control is a bounded FairQueue with per-client round-robin
// scheduling: each client name owns a FIFO lane, and handlers take the
// next request from the next non-empty lane in rotation, so one client
// submitting hundreds of sweeps cannot starve another submitting one. A
// full queue rejects synchronously with a typed "overloaded" error; after
// begin_drain() new sweeps are rejected with "draining" while queued and
// in-flight work runs to completion.
//
// Observability: every sweep admission mints an obs::RequestTrace (id,
// per-phase spans, per-point outcomes) that rides the Work item through
// the queue and dse::run; completed requests feed the serve.window.*
// sliding-window time-series in the stats endpoint and, when configured,
// one JSONL line in the obs::RequestLog. All timing goes through the
// injectable obs::MonotonicClock seam, so tracing is deterministic under
// a FakeClock and sweeps stay bit-identical traced or not.
//
// Threading: mu_ guards the queue, the drain/stop flags, and the stat
// registry (a StatRegistry is single-owner, so the server's registry is
// only ever touched under mu_). Simulations never run under mu_ — a
// handler pops under the lock, simulates unlocked, then re-locks to
// deliver. The socket front end (listen/serve) adds one session thread
// per connection; session bookkeeping has its own session_mu_ so a slow
// accept loop never contends with the request path.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dse/coalesce.h"
#include "dse/result_cache.h"
#include "obs/clock.h"
#include "obs/request_log.h"
#include "obs/span.h"
#include "obs/window.h"
#include "serve/protocol.h"
#include "sim/stats.h"

namespace ara::serve {

/// Bounded multi-client round-robin queue. Each distinct client name owns
/// a FIFO lane; pop() serves lanes in rotation. Not internally locked —
/// the owner serializes access (Server uses its mu_).
template <typename T>
class FairQueue {
 public:
  explicit FairQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is at capacity (the caller rejects the request).
  bool push(const std::string& client, T item) {
    if (size_ >= capacity_) return false;
    for (auto& lane : lanes_) {
      if (lane.client == client) {
        lane.items.push_back(std::move(item));
        ++size_;
        return true;
      }
    }
    lanes_.push_back({client, {}});
    lanes_.back().items.push_back(std::move(item));
    ++size_;
    return true;
  }

  /// Take the next item round-robin across clients; false when empty.
  bool pop(T* out) {
    if (size_ == 0) return false;
    const std::size_t k = rr_ % lanes_.size();
    Lane& lane = lanes_[k];
    *out = std::move(lane.items.front());
    lane.items.pop_front();
    --size_;
    if (lane.items.empty()) {
      // The next lane slides into index k; pointing rr_ at k keeps the
      // rotation moving forward instead of re-serving an earlier lane.
      lanes_.erase(lanes_.begin() + static_cast<std::ptrdiff_t>(k));
      rr_ = lanes_.empty() ? 0 : k % lanes_.size();
    } else {
      rr_ = (k + 1) % lanes_.size();
    }
    return true;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Lane {
    std::string client;
    std::deque<T> items;  // never empty while in lanes_
  };
  std::size_t capacity_;
  std::size_t size_ = 0;
  std::vector<Lane> lanes_;  // arrival order of first pending request
  std::size_t rr_ = 0;       // next lane to serve
};

struct ServerOptions {
  /// AF_UNIX socket path (socket front end only; handle() needs none).
  std::string socket_path;
  /// Executor workers per sweep (dse::SweepRequest::jobs).
  unsigned jobs = 1;
  /// Concurrent sweep handlers (requests executing at once).
  unsigned handlers = 2;
  /// Sweeps that may wait beyond the executing ones; 0 rejects whenever
  /// no handler picks the request up instantly (useful in tests).
  std::size_t queue_capacity = 64;
  /// Concurrent client connections the socket front end admits; a
  /// connection past the cap gets a typed "overloaded" error frame and
  /// is closed (mirrors the queue's admission reject).
  std::size_t max_sessions = 256;
  /// On-disk cache tier directory ("" = memory-only warm cache).
  std::string cache_dir;
  /// JSONL request log path ("" = off): one RFC 8259 object per completed
  /// sweep request, rotated at log_max_bytes (see obs::RequestLog).
  std::string log_path;
  std::uint64_t log_max_bytes = 8u << 20;
  /// Requests slower than this many milliseconds get "slow":true in the
  /// log (0 = never flag).
  std::uint64_t slow_ms = 0;
  /// Time source for request spans and the serve.window.* time-series
  /// (null = the host clock; tests inject an obs::FakeClock).
  obs::MonotonicClock* clock = nullptr;
};

class Server {
 public:
  explicit Server(const ServerOptions& opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawn the handler pool. Sweeps submitted before start() queue (or
  /// reject) but do not execute.
  void start();

  /// Handle one request synchronously: ping/stats answer inline; sweeps
  /// and searches go through admission control and block until a handler
  /// finishes them. Always returns a well-formed response frame payload.
  std::string handle(const protocol::Request& request)
      ARA_EXCLUDES(mu_);

  /// Stop admitting sweeps ("draining" rejects); in-flight and queued
  /// work keeps running.
  void begin_drain() ARA_EXCLUDES(mu_);

  /// begin_drain(), wait for the queue and all in-flight sweeps to
  /// finish, then join the handler pool. Idempotent.
  void stop() ARA_EXCLUDES(mu_);

  /// Server + cache + coalescer telemetry as a metrics snapshot (the
  /// stats endpoint's payload).
  obs::MetricsSnapshot stats_snapshot() ARA_EXCLUDES(mu_);

  dse::ResultCache& cache() { return cache_; }
  dse::PointCoalescer& coalescer() { return coalescer_; }
  /// The JSONL request log (null when ServerOptions::log_path is empty).
  const obs::RequestLog* request_log() const { return log_.get(); }

  // --- socket front end -------------------------------------------------
  /// Bind + listen on opts.socket_path (replacing a stale socket file).
  /// False with *error filled on failure.
  bool listen(std::string* error);

  /// Accept loop: one session thread per connection, each answering
  /// frames in order via handle(). Returns (always 0) after `signal`
  /// becomes non-zero: the listener closes, sessions are told to finish
  /// their current request and stop, queued work drains, and the socket
  /// file is unlinked. Install a SIGTERM/SIGINT handler that sets
  /// `signal` to get graceful drain on shutdown.
  int serve(const std::atomic<int>& signal);

 private:
  /// One queued sweep; lives on the submitting thread's stack (which
  /// blocks on `done`, keeping the pointer valid for the handler).
  struct Work {
    const protocol::Request* request = nullptr;
    /// The submitter's trace (same stack frame as the Work). The handler
    /// charges the pop-to-push interval to the queued span and carries
    /// the trace through dse::run; the FairQueue hand-off orders the two
    /// threads' accesses.
    obs::RequestTrace* trace = nullptr;
    std::uint64_t enqueued_ns = 0;
    std::string response;
    bool done = false;
  };

  std::string execute_sweep(const protocol::Request& request,
                            obs::RequestTrace* trace) ARA_EXCLUDES(mu_);
  std::string execute_search(const protocol::Request& request,
                             obs::RequestTrace* trace) ARA_EXCLUDES(mu_);
  void handler_loop() ARA_EXCLUDES(mu_);
  void session(int fd, std::uint64_t id);
  void reap_sessions();

  const ServerOptions opts_;
  dse::ResultCache cache_;
  dse::PointCoalescer coalescer_;
  obs::MonotonicClock* clock_;  // opts_.clock or the host clock; never null
  std::unique_ptr<obs::RequestLog> log_;  // null when logging is off

  mutable common::Mutex mu_;
  common::CondVar work_cv_;  // handlers: queue non-empty or stopping
  common::CondVar done_cv_;  // submitters/stop(): a sweep finished
  FairQueue<Work*> queue_ ARA_GUARDED_BY(mu_);
  std::size_t in_flight_ ARA_GUARDED_BY(mu_) = 0;
  bool draining_ ARA_GUARDED_BY(mu_) = false;
  bool stopping_ ARA_GUARDED_BY(mu_) = false;
  sim::StatRegistry stats_ ARA_GUARDED_BY(mu_);
  obs::SlidingWindow window_ ARA_GUARDED_BY(mu_);
  std::uint64_t next_trace_id_ ARA_GUARDED_BY(mu_) = 1;

  std::vector<std::thread> handlers_;

  int listen_fd_ = -1;
  common::Mutex session_mu_;
  std::vector<int> session_fds_ ARA_GUARDED_BY(session_mu_);
  /// A finished session announces its id here; the accept loop joins and
  /// erases it on the next iteration, so a long-running daemon never
  /// accumulates unjoined (stack-retaining) session threads.
  std::vector<std::uint64_t> finished_sessions_ ARA_GUARDED_BY(session_mu_);
  struct Session {
    std::uint64_t id;
    std::thread thread;
  };
  /// Only serve() (one thread) appends/reaps/joins; sessions never touch
  /// it — they signal completion through finished_sessions_.
  std::vector<Session> sessions_;
  std::uint64_t next_session_id_ = 0;  // only serve() touches
};

}  // namespace ara::serve
