// ara_serve wire protocol: length-prefixed JSON over a local stream socket.
//
// Framing: every message (either direction) is a 4-byte big-endian payload
// length followed by that many bytes of UTF-8 JSON. Frames above
// kMaxFrameBytes are rejected without reading the payload, so a corrupt
// length prefix cannot make the server allocate gigabytes.
//
// Requests (client -> server), one JSON object per frame:
//   {"type":"ping"}
//   {"type":"stats"}
//   {"type":"sweep", "client":"alice", "workload":"Denoise",
//    "scale":0.05, "points":[{"islands":6,"net":"ring","rings":2,
//    "width":32,"ports":1,"sharing":false,"mono":false,"policy":"fifo"}]}
//
// Every point field is optional; the defaults mirror the ara_sim CLI
// (24-island 2-ring 32B design, fifo GAM, no sharing, 1x ports). "points"
// itself defaults to one default point, "client" (the fairness bucket) to
// "anon". PointSpec::to_config builds the ArchConfig exactly the way
// ara_sim's flag parser does, so a served point and a CLI run of the same
// spec are the same design point — and therefore, through dse::run, the
// same bits.
//
// Responses (server -> client):
//   {"type":"pong"}
//   {"type":"stats","metrics":{...obs::MetricsExporter JSON...}}
//   {"type":"sweep_result","trace_id":N,"points":[{"from_cache":B,
//    "coalesced":B,"wall_seconds":S,"entry":{...}}]}
//   {"type":"error","code":"bad_request|overloaded|draining|failed",
//    "message":"..."}
//
// Each point's "entry" object is byte-for-byte the on-disk ResultCache
// entry format (dse::ResultCache::to_json): deterministic fields only,
// 17-significant-digit doubles, embedded key + salt. Identical requests
// therefore produce byte-identical "entry" objects whether served fresh,
// from cache, or by coalescing — the serving contract the smoke test pins.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/arch_config.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"

namespace ara::serve::protocol {

/// Hard ceiling on one frame's payload (requests and responses).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

// ---------------------------------------------------------------- framing

/// Result of read_frame: distinguishes clean end-of-stream from damage.
enum class ReadStatus { kOk, kEof, kError };

/// Read one length-prefixed frame from `fd` into `*payload`. kEof means
/// the peer closed between frames (the clean case); kError covers
/// truncated frames, oversized lengths, and transport errors.
ReadStatus read_frame(int fd, std::string* payload);

/// Write one length-prefixed frame. False on transport error or an
/// oversized payload.
bool write_frame(int fd, std::string_view payload);

/// Connect to a listening AF_UNIX stream socket; -1 on failure.
int connect_unix(const std::string& path);

// ---------------------------------------------------------------- request

/// One design point of a sweep request; defaults mirror ara_sim.
struct PointSpec {
  std::uint32_t islands = 24;
  std::string net = "ring";  // ring | proxy | chain
  std::uint32_t rings = 2;
  std::uint64_t link_bytes = 32;
  std::uint32_t ports = 1;
  bool sharing = false;
  bool mono = false;
  std::string policy = "fifo";  // fifo | sjf | ljf
  /// Build the ArchConfig the way ara_sim's flag parser would (base
  /// ring_design, then overrides). Throws ConfigError on an unknown
  /// net/policy name; the result still needs ArchConfig::validate().
  core::ArchConfig to_config() const;
};

struct Request {
  enum class Kind { kPing, kStats, kSweep };
  Kind kind = Kind::kPing;
  /// Fairness bucket for per-client round-robin scheduling.
  std::string client = "anon";
  std::string workload;  // benchmark name (sweep only)
  double scale = 0.25;   // invocation scale factor (sweep only)
  std::vector<PointSpec> points;
};

/// Parse one request frame. False (with *error filled) on malformed JSON,
/// an unknown "type", a missing workload, or an out-of-range field.
bool parse_request(const std::string& text, Request* out, std::string* error);

// --------------------------------------------------------------- response

std::string pong_response();
std::string error_response(std::string_view code, std::string_view message);
/// {"type":"stats","metrics":{...}} via MetricsExporter::write_json.
std::string stats_response(const obs::MetricsSnapshot& snapshot);
/// Sweep response: per-point flags plus the ResultCache entry object for
/// each result. `keys` are the content-hash keys aligned with `results`;
/// `salt` is the cache salt the keys were computed under. A non-zero
/// `trace_id` is echoed as "trace_id" so a client can correlate its
/// response with the server's request log; it never affects the entry
/// objects (the bit-identity contract covers entries, not envelope).
std::string sweep_response(const std::vector<dse::SweepResult>& results,
                           const std::vector<std::uint64_t>& keys,
                           std::uint64_t salt, std::uint64_t trace_id = 0);

}  // namespace ara::serve::protocol
