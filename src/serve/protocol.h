// ara_serve wire protocol: length-prefixed JSON over a local stream socket.
//
// Framing: every message (either direction) is a 4-byte big-endian payload
// length followed by that many bytes of UTF-8 JSON. Frames above
// kMaxFrameBytes are rejected without reading the payload, so a corrupt
// length prefix cannot make the server allocate gigabytes.
//
// Requests (client -> server) are a versioned tagged union: one JSON
// object per frame, dispatched on "type", versioned by "v". "v" defaults
// to 1 — every pre-envelope (PR-6/7) client frame is a valid v1 frame —
// and the only version so far is kProtocolVersion. Unknown "type" or "v"
// values produce a typed bad_request whose message lists the supported
// types/versions. The set of types lives in one registry
// (request_registry) shared by the server's parser and the client's
// validator, so a new query type is added in exactly one place.
//
//   {"v":1,"type":"ping"}
//   {"type":"stats"}
//   {"type":"sweep", "client":"alice", "workload":"Denoise",
//    "scale":0.05, "points":[{"islands":6,"net":"ring","rings":2,
//    "width":32,"ports":1,"sharing":false,"mono":false,"policy":"fifo"}]}
//   {"type":"search", "client":"alice", "workload":"Denoise",
//    "scale":0.05, "objective":"perf", "budget":12, "seed":7,
//    "space":{"islands":[3,6,12,24],"rings":[1,2,3],"widths":[16,32]}}
//
// Every point field is optional; the defaults are dse::PointSpec's (the
// shared spec module — they mirror the ara_sim CLI: 24-island 2-ring 32B
// design, fifo GAM, no sharing, 1x ports). "points" itself defaults to
// one default point, "client" (the fairness bucket) to "anon". Search
// "space" lists default to dse::SearchSpace's per-dimension defaults.
// Sweep and search both accept an optional "shards" (default 1, capped at
// kMaxShards): partitioned-kernel workers per simulated point. It is an
// execution resource only — served bytes are identical for every value.
// PointSpec::to_config builds the ArchConfig exactly the way ara_sim's
// flag parser does, so a served point and a CLI run of the same spec are
// the same design point — and therefore, through dse::run, the same bits.
//
// Responses (server -> client):
//   {"type":"pong"}
//   {"type":"stats","metrics":{...obs::MetricsExporter JSON...}}
//   {"type":"sweep_result","trace_id":N,"points":[{"from_cache":B,
//    "coalesced":B,"wall_seconds":S,"entry":{...}}]}
//   {"type":"search_result","trace_id":N,"simulated":K,"cache_hits":H,
//    "coalesced":C,"wall_seconds":S,"result":{...search_result_json...}}
//   {"type":"error","code":"bad_request|overloaded|draining|failed",
//    "message":"...","trace_id":N}
//
// Each sweep point's "entry" object is byte-for-byte the on-disk
// ResultCache entry format (dse::ResultCache::to_json): deterministic
// fields only, 17-significant-digit doubles, embedded key + salt. A
// search's "result" object is dse::search_result_json — deterministic for
// a given (seed, space, budget); the sibling fields carry the
// warmth-dependent telemetry. Identical requests therefore produce
// byte-identical "entry"/"result" objects whether served fresh, from
// cache, or by coalescing — the serving contract the smoke test pins.
// "trace_id" on an error frame is present whenever the server minted a
// trace at admission (i.e. the request parsed), so failures join against
// the --log JSONL exactly like successes.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/arch_config.h"
#include "dse/search.h"
#include "dse/spec.h"
#include "dse/sweep.h"
#include "obs/metrics_export.h"

namespace ara::serve::protocol {

/// Hard ceiling on one frame's payload (requests and responses).
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// The one wire-protocol version so far. Requests without "v" are v1.
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Ceiling on the per-request "shards" field (partitioned-kernel workers
/// per simulated point). A client cannot commandeer an unbounded number of
/// server threads; values outside [1, kMaxShards] are a typed bad_request.
inline constexpr std::uint32_t kMaxShards = 16;

// ---------------------------------------------------------------- framing

/// Result of read_frame: distinguishes clean end-of-stream from damage.
enum class ReadStatus { kOk, kEof, kError };

/// Read one length-prefixed frame from `fd` into `*payload`. kEof means
/// the peer closed between frames (the clean case); kError covers
/// truncated frames, oversized lengths, and transport errors.
ReadStatus read_frame(int fd, std::string* payload);

/// Write one length-prefixed frame. False on transport error or an
/// oversized payload.
bool write_frame(int fd, std::string_view payload);

/// Connect to a listening AF_UNIX stream socket; -1 on failure.
int connect_unix(const std::string& path);

// ---------------------------------------------------------------- request

/// One design point of a sweep request. Lives in the shared dse spec
/// module since PR 8; the alias keeps protocol users compiling unchanged.
using PointSpec = dse::PointSpec;

struct Request {
  enum class Kind { kPing, kStats, kSweep, kSearch };
  Kind kind = Kind::kPing;
  /// Envelope version the frame declared (or defaulted to).
  std::uint32_t v = kProtocolVersion;
  /// Fairness bucket for per-client round-robin scheduling.
  std::string client = "anon";
  std::string workload;  // benchmark name (sweep/search)
  double scale = 0.25;   // invocation scale factor (sweep/search)
  /// Partitioned-kernel workers per simulated point (sweep/search;
  /// optional "shards" field, validated to [1, kMaxShards]). Execution
  /// resource only: the served bytes are identical for every value, which
  /// serve_smoke proves against unsharded local runs.
  unsigned shards = 1;
  std::vector<PointSpec> points;  // sweep only
  dse::SearchSpec search;         // search only
};

/// One row of the request-type registry: the wire name, the parsed kind,
/// and the body parser invoked after the envelope (v/type/client) is
/// validated. The table drives both parse_request and the client's
/// request validation, so server and client can never disagree on the
/// supported set.
struct RequestTypeInfo {
  const char* name;
  Request::Kind kind;
  bool (*parse_body)(const obs::JsonValue& root, Request* out,
                     std::string* error);
};

/// The registry, sorted by name.
const std::vector<RequestTypeInfo>& request_registry();

/// "ping|search|stats|sweep" — for error messages and client help.
std::string supported_types();

/// Parse one request frame through the registry. False (with *error
/// filled) on malformed JSON, an unsupported "v", an unknown "type", or a
/// body the type's parser rejects.
bool parse_request(const std::string& text, Request* out, std::string* error);

// --------------------------------------------------------------- response

std::string pong_response();
/// Typed error frame. A non-zero `trace_id` (minted at admission) is
/// echoed so the failure can be joined against the server's request log.
std::string error_response(std::string_view code, std::string_view message,
                           std::uint64_t trace_id = 0);
/// {"type":"stats","metrics":{...}} via MetricsExporter::write_json.
std::string stats_response(const obs::MetricsSnapshot& snapshot);
/// Sweep response: per-point flags plus the ResultCache entry object for
/// each result. `keys` are the content-hash keys aligned with `results`;
/// `salt` is the cache salt the keys were computed under. A non-zero
/// `trace_id` is echoed as "trace_id" so a client can correlate its
/// response with the server's request log; it never affects the entry
/// objects (the bit-identity contract covers entries, not envelope).
std::string sweep_response(const std::vector<dse::SweepResult>& results,
                           const std::vector<std::uint64_t>& keys,
                           std::uint64_t salt, std::uint64_t trace_id = 0);
/// Search response: warmth telemetry in the envelope, the deterministic
/// dse::search_result_json block under "result".
std::string search_response(const dse::SearchResult& result,
                            std::uint64_t trace_id = 0);

}  // namespace ara::serve::protocol
