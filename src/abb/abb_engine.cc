#include "abb/abb_engine.h"

#include <cassert>
#include <cmath>

#include "common/config_error.h"
#include "common/units.h"

namespace ara::abb {

AbbEngine::AbbEngine(IslandId island, AbbId id, AbbKind kind,
                     std::uint32_t spm_ports, double base_conflict_rate,
                     bool is_fabric)
    : island_(island),
      id_(id),
      kind_(kind),
      spm_ports_(spm_ports),
      conflict_rate_(0.0),
      is_fabric_(is_fabric) {
  const auto& p = params(kind);
  config_check(spm_ports >= p.min_spm_ports,
               std::string("ABB '") + p.name +
                   "' provisioned below its minimum SPM port count");
  // Conflicts shrink quadratically with port over-provisioning: doubling
  // ports roughly quarters the probability that two same-cycle accesses
  // collide on a bank.
  const double ratio = static_cast<double>(p.min_spm_ports) /
                       static_cast<double>(spm_ports);
  conflict_rate_ = base_conflict_rate * ratio * ratio;
}

double AbbEngine::effective_ii() const {
  const auto& p = params(kind_);
  double ii = static_cast<double>(p.initiation_interval);
  if (is_fabric_) ii *= kFabricIiMultiplier;
  return ii * stall_factor();
}

Tick AbbEngine::compute_cycles(std::uint64_t elements) const {
  const auto& p = params(kind_);
  const double body = static_cast<double>(elements) * effective_ii();
  Tick latency = p.pipeline_latency;
  if (is_fabric_) latency = static_cast<Tick>(latency * kFabricIiMultiplier);
  return latency + static_cast<Tick>(std::ceil(body));
}

Tick AbbEngine::execute(Tick start, std::uint64_t elements) {
  assert(start >= busy_until_ && "ABB double-booked");
  const Tick cycles = compute_cycles(elements);
  busy_until_ = start + cycles;
  busy_cycles_ += cycles;
  elements_ += elements;
  ++tasks_;
  const auto& p = params(kind_);
  spm_words_ += elements * (p.input_words + p.output_words);
  bank_conflicts_ += static_cast<std::uint64_t>(
      std::llround(static_cast<double>(elements) * conflict_rate_));
  return busy_until_;
}

double AbbEngine::dynamic_energy_j() const {
  const auto& p = params(kind_);
  double pj = p.energy_pj_per_elem * static_cast<double>(elements_);
  if (is_fabric_) pj *= kFabricEnergyMultiplier;
  return pj_to_j(pj);
}

double AbbEngine::area_mm2() const {
  return is_fabric_ ? params(AbbKind::kFabric).area_mm2
                    : params(kind_).area_mm2;
}

double AbbEngine::leakage_mw() const {
  return is_fabric_ ? params(AbbKind::kFabric).leakage_mw
                    : params(kind_).leakage_mw;
}

}  // namespace ara::abb
