// AbbEngine: one instantiated ABB compute engine inside an island.
//
// Timing model: a task of E element groups occupies the engine for
//   pipeline_latency + E * II * (1 + conflict_rate)
// cycles, where conflict_rate models residual SPM bank conflicts. The paper
// (Sec. 5.4) observes that software data layout eliminates almost all
// conflicts, so the base rate is small and shrinks quadratically as SPM
// ports are over-provisioned beyond the per-kind minimum.
#pragma once

#include <cstdint>
#include <string>

#include "abb/abb_types.h"
#include "common/types.h"

namespace ara::abb {

class AbbEngine {
 public:
  /// `spm_ports` is the provisioned aggregate port count (>= kind minimum).
  /// `base_conflict_rate` is the residual conflict probability at minimum
  /// porting. `is_fabric` builds a CAMEL PF block that runs `kind`'s ops at
  /// the fabric's II/energy multipliers.
  AbbEngine(IslandId island, AbbId id, AbbKind kind, std::uint32_t spm_ports,
            double base_conflict_rate, bool is_fabric = false);

  AbbKind kind() const { return kind_; }
  bool is_fabric() const { return is_fabric_; }
  AbbId id() const { return id_; }
  IslandId island() const { return island_; }
  std::uint32_t spm_ports() const { return spm_ports_; }

  /// Effective conflict-induced throughput expansion factor (>= 1).
  double stall_factor() const { return 1.0 + conflict_rate_; }

  /// Effective initiation interval in cycles (fabric-adjusted).
  double effective_ii() const;

  /// Cycles to process `elements` element groups once inputs stream in.
  Tick compute_cycles(std::uint64_t elements) const;

  /// Mark the engine busy for a task. `start` must be >= the engine's
  /// previous release. Returns the completion tick. Accounts busy cycles
  /// and element/energy counters.
  Tick execute(Tick start, std::uint64_t elements);

  /// --- occupancy / stats ---
  bool busy_at(Tick t) const { return t < busy_until_; }
  Tick busy_until() const { return busy_until_; }
  Tick busy_cycles() const { return busy_cycles_; }
  std::uint64_t elements_processed() const { return elements_; }
  std::uint64_t tasks_executed() const { return tasks_; }

  /// Deterministic count of SPM bank conflicts absorbed by the stall-factor
  /// model: the expected number of colliding element groups, rounded per
  /// task (the probabilistic model has no discrete conflict events).
  std::uint64_t bank_conflict_estimate() const { return bank_conflicts_; }

  /// Utilization over an elapsed window.
  double utilization(Tick elapsed) const {
    return elapsed == 0 ? 0.0
                        : static_cast<double>(busy_cycles_) /
                              static_cast<double>(elapsed);
  }

  /// Dynamic compute energy consumed so far, in joules.
  double dynamic_energy_j() const;

  /// Engine area (compute only; SPM/network accounted separately).
  double area_mm2() const;

  /// Leakage power in mW.
  double leakage_mw() const;

  /// Words read from / written to SPM so far (for SPM energy accounting).
  std::uint64_t spm_words_accessed() const { return spm_words_; }

 private:
  IslandId island_;
  AbbId id_;
  AbbKind kind_;
  std::uint32_t spm_ports_;
  double conflict_rate_;
  bool is_fabric_;

  Tick busy_until_ = 0;
  Tick busy_cycles_ = 0;
  std::uint64_t elements_ = 0;
  std::uint64_t tasks_ = 0;
  std::uint64_t spm_words_ = 0;
  std::uint64_t bank_conflicts_ = 0;
};

}  // namespace ara::abb
