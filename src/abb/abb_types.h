// Accelerator building block (ABB) kinds and their static parameters.
//
// The paper's evaluated system (Sec. 4) contains 120 ABBs: 78 polynomial,
// 18 divide, 9 sqrt, 6 power, 9 sum — the block set CHARM [8] found
// sufficient to compose the medical-imaging accelerators. Per-kind timing,
// area and energy are 45 nm ASIC-class estimates consistent with the
// characterization style the paper describes (Synopsys DC + TSMC 45nm).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace ara::abb {

enum class AbbKind : std::uint8_t {
  kPoly = 0,   // 16-input polynomial evaluation block
  kDivide,     // FP divide
  kSqrt,       // FP square root / inverse sqrt
  kPower,      // FP power (exp/log based)
  kSum,        // 16-input reduction
  kFabric,     // CAMEL programmable-fabric block (executes any op, slower)
};
inline constexpr std::size_t kNumAbbKinds = 6;
inline constexpr std::size_t kNumAsicAbbKinds = 5;  // excludes kFabric

/// Operand word size: single-precision values.
inline constexpr Bytes kWordBytes = 4;

struct AbbParams {
  AbbKind kind;
  const char* name;
  /// Pipeline depth: cycles from first operand in to first result out.
  Tick pipeline_latency;
  /// Initiation interval: cycles between successive accepted element groups
  /// at peak throughput.
  std::uint32_t initiation_interval;
  /// Operand words consumed per element group.
  std::uint32_t input_words;
  /// Result words produced per element group.
  std::uint32_t output_words;
  /// Aggregate SPM ports required to sustain peak throughput (paper Sec. 3.2:
  /// "the minimum is defined as the number of ports ... necessary to allow
  /// the ABB to run at peak throughput").
  std::uint32_t min_spm_ports;
  /// Local scratch-pad storage fixed by the ABB type (Sec. 3.2).
  Bytes spm_bytes;
  /// Compute-engine silicon area (45 nm), excluding SPM and networks.
  double area_mm2;
  /// Dynamic energy per processed element group.
  double energy_pj_per_elem;
  /// Leakage power of the compute engine.
  double leakage_mw;
};

/// Static parameter table lookup.
const AbbParams& params(AbbKind kind);

const char* kind_name(AbbKind kind);

/// Iterable list of the five ASIC ABB kinds.
const std::array<AbbKind, kNumAsicAbbKinds>& asic_kinds();

/// The paper's 120-ABB system mix (Sec. 4): counts per kind.
struct AbbMix {
  std::array<std::uint32_t, kNumAsicAbbKinds> count{};
  std::uint32_t total() const;
};

/// 78 poly, 18 divide, 9 sqrt, 6 power, 9 sum.
AbbMix paper_mix();

/// Scale the paper mix to a different total, preserving proportions as
/// closely as integer rounding allows (largest-remainder method); the
/// result's total() is exactly `total`.
AbbMix scaled_mix(std::uint32_t total);

/// Slowdown / energy multipliers of the programmable-fabric block relative
/// to the ASIC ABB it emulates (CAMEL [9]: fine-grained reconfigurable
/// fabric trades efficiency for coverage).
inline constexpr double kFabricIiMultiplier = 4.0;
inline constexpr double kFabricEnergyMultiplier = 8.0;

}  // namespace ara::abb
