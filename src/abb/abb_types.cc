#include "abb/abb_types.h"

#include <algorithm>
#include <numeric>

#include "common/config_error.h"

namespace ara::abb {

namespace {

// 45 nm ASIC-class estimates. Latencies and IIs follow standard FP unit
// depths; areas/energies are in the range the CHARM characterization flow
// (AutoPilot HLS + Synopsys DC, TSMC 45 nm) reports for blocks of this size.
constexpr AbbParams kTable[kNumAbbKinds] = {
    // kind            name       lat  ii  in  out  ports  spm        area    pJ/elem leak mW
    {AbbKind::kPoly,   "poly",     40,  1, 16,  1,   5,    8 * 1024,  0.120,  140.0,  1.8},
    {AbbKind::kDivide, "divide",   22,  1,  2,  1,   1,    2 * 1024,  0.020,   20.0,  0.4},
    {AbbKind::kSqrt,   "sqrt",     18,  1,  1,  1,   1,    2 * 1024,  0.016,   15.0,  0.3},
    {AbbKind::kPower,  "power",    32,  1,  2,  1,   1,    4 * 1024,  0.055,   45.0,  0.7},
    {AbbKind::kSum,    "sum",      10,  1, 16,  1,   5,    8 * 1024,  0.030,   28.0,  0.5},
    {AbbKind::kFabric, "fabric",   48,  4, 16,  1,   5,    8 * 1024,  0.300,  400.0,  3.5},
};

}  // namespace

const AbbParams& params(AbbKind kind) {
  return kTable[static_cast<std::size_t>(kind)];
}

const char* kind_name(AbbKind kind) { return params(kind).name; }

const std::array<AbbKind, kNumAsicAbbKinds>& asic_kinds() {
  static const std::array<AbbKind, kNumAsicAbbKinds> kinds = {
      AbbKind::kPoly, AbbKind::kDivide, AbbKind::kSqrt, AbbKind::kPower,
      AbbKind::kSum};
  return kinds;
}

std::uint32_t AbbMix::total() const {
  return std::accumulate(count.begin(), count.end(), 0u);
}

AbbMix paper_mix() {
  AbbMix mix;
  mix.count = {78, 18, 9, 6, 9};  // poly, divide, sqrt, power, sum (Sec. 4)
  return mix;
}

AbbMix scaled_mix(std::uint32_t total) {
  config_check(total >= kNumAsicAbbKinds,
               "ABB mix needs at least one block of each kind");
  const AbbMix base = paper_mix();
  const double base_total = base.total();
  AbbMix mix;
  std::array<double, kNumAsicAbbKinds> remainder{};
  std::uint32_t assigned = 0;
  for (std::size_t k = 0; k < kNumAsicAbbKinds; ++k) {
    const double exact = total * base.count[k] / base_total;
    mix.count[k] = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(exact));
    remainder[k] = exact - static_cast<double>(mix.count[k]);
    assigned += mix.count[k];
  }
  // Largest-remainder distribution of the leftover slots.
  while (assigned < total) {
    std::size_t best = 0;
    for (std::size_t k = 1; k < kNumAsicAbbKinds; ++k) {
      if (remainder[k] > remainder[best]) best = k;
    }
    ++mix.count[best];
    remainder[best] -= 1.0;
    ++assigned;
  }
  while (assigned > total) {
    // Shrink the most over-represented kind, never below 1.
    std::size_t best = 0;
    for (std::size_t k = 1; k < kNumAsicAbbKinds; ++k) {
      if (remainder[k] < remainder[best] && mix.count[k] > 1) best = k;
    }
    if (mix.count[best] <= 1) break;
    --mix.count[best];
    remainder[best] += 1.0;
    --assigned;
  }
  return mix;
}

}  // namespace ara::abb
