#include "island/dma_engine.h"

#include <utility>

#include "common/config_error.h"
#include "common/units.h"
#include "power/area_model.h"
#include "power/orion_like.h"

namespace ara::island {

DmaEngine::DmaEngine(std::string name, double bytes_per_cycle,
                     Bytes chunk_bytes)
    : engine_(std::move(name), bytes_per_cycle, /*pipeline_latency=*/4),
      chunk_(chunk_bytes) {
  config_check(chunk_bytes >= kBlockBytes,
               "DMA chunk must be at least one block");
}

double DmaEngine::dynamic_energy_j() const {
  return pj_to_j(power::kDmaPjPerByte * static_cast<double>(total_bytes()));
}

double DmaEngine::area_mm2() const { return power::kDmaEngineMm2; }

double DmaEngine::leakage_mw() const {
  return power::kLogicLeakMwPerMm2 * area_mm2();
}

}  // namespace ara::island
