// The SPM<->DMA network inside an ABB island (paper Sec. 3.2): moves data
// between the DMA engine and the per-ABB SPM groups, and carries chaining
// traffic between SPM groups.
//
// Three implementations:
//  - ProxyXbarNet: crossbar centered on the DMA engine. Chaining costs two
//    traversals (source SPM -> DMA -> destination SPM), serializing on the
//    DMA hub — the behaviour that makes it lose to rings on chaining-heavy
//    workloads (Sec. 5.5).
//  - ChainingXbarNet: all-to-all crossbar; single-traversal chaining but
//    cubically growing area (Sec. 5.2).
//  - RingNet: 1..K unidirectional rings of 16- or 32-byte links with one
//    stop per ABB plus a DMA stop; chunks stripe round-robin across rings
//    (Sec. 5.3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "island/island_config.h"
#include "sim/shared_link.h"

namespace ara::island {

class SpmDmaNet {
 public:
  virtual ~SpmDmaNet() = default;

  /// DMA -> SPM group of ABB `dst`.
  virtual Tick to_spm(Tick ready_at, AbbId dst, Bytes bytes) = 0;
  /// SPM group of ABB `src` -> DMA.
  virtual Tick from_spm(Tick ready_at, AbbId src, Bytes bytes) = 0;
  /// Chaining: SPM group of `src` -> SPM group of `dst`, same island.
  virtual Tick chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) = 0;

  virtual SpmDmaTopology topology() const = 0;
  virtual double area_mm2() const = 0;
  /// Dynamic energy of all traffic so far, in joules.
  virtual double dynamic_energy_j() const = 0;
  virtual double leakage_mw() const = 0;
  virtual Bytes total_bytes() const = 0;

  std::uint32_t num_abbs() const { return num_abbs_; }

 protected:
  explicit SpmDmaNet(std::uint32_t num_abbs) : num_abbs_(num_abbs) {}
  std::uint32_t num_abbs_;
};

/// Factory from config. `name` prefixes stat identifiers.
std::unique_ptr<SpmDmaNet> make_spm_dma_net(const std::string& name,
                                            const SpmDmaNetConfig& config,
                                            std::uint32_t num_abbs);

/// --- concrete implementations (exposed for unit tests) ---

class ProxyXbarNet final : public SpmDmaNet {
 public:
  ProxyXbarNet(const std::string& name, const SpmDmaNetConfig& config,
               std::uint32_t num_abbs);

  Tick to_spm(Tick ready_at, AbbId dst, Bytes bytes) override;
  Tick from_spm(Tick ready_at, AbbId src, Bytes bytes) override;
  Tick chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) override;

  SpmDmaTopology topology() const override {
    return SpmDmaTopology::kProxyXbar;
  }
  double area_mm2() const override;
  double dynamic_energy_j() const override;
  double leakage_mw() const override;
  Bytes total_bytes() const override;

  double dma_hub_utilization(Tick elapsed) const {
    return hub_.utilization(elapsed);
  }

 private:
  SpmDmaNetConfig config_;
  /// The DMA-side hub port every transfer must cross.
  sim::SharedLink hub_;
  /// Per-SPM-group ports.
  std::vector<sim::SharedLink> spm_ports_;
  Tick traversal_latency_;
};

class ChainingXbarNet final : public SpmDmaNet {
 public:
  ChainingXbarNet(const std::string& name, const SpmDmaNetConfig& config,
                  std::uint32_t num_abbs);

  Tick to_spm(Tick ready_at, AbbId dst, Bytes bytes) override;
  Tick from_spm(Tick ready_at, AbbId src, Bytes bytes) override;
  Tick chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) override;

  SpmDmaTopology topology() const override {
    return SpmDmaTopology::kChainingXbar;
  }
  double area_mm2() const override;
  double dynamic_energy_j() const override;
  double leakage_mw() const override;
  Bytes total_bytes() const override;

 private:
  SpmDmaNetConfig config_;
  /// Port 0 = DMA; ports 1..N = SPM groups. Output-side contention only.
  std::vector<sim::SharedLink> ports_;
  Tick traversal_latency_;
};

class RingNet final : public SpmDmaNet {
 public:
  RingNet(const std::string& name, const SpmDmaNetConfig& config,
          std::uint32_t num_abbs);

  Tick to_spm(Tick ready_at, AbbId dst, Bytes bytes) override;
  Tick from_spm(Tick ready_at, AbbId src, Bytes bytes) override;
  Tick chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) override;

  SpmDmaTopology topology() const override { return SpmDmaTopology::kRing; }
  double area_mm2() const override;
  double dynamic_energy_j() const override;
  double leakage_mw() const override;
  Bytes total_bytes() const override;

  std::uint32_t num_rings() const { return config_.num_rings; }
  std::uint32_t stops() const { return num_abbs_ + 1; }
  std::uint64_t byte_hops() const { return byte_hops_; }
  /// Peak link utilization across all ring segments.
  double max_link_utilization(Tick elapsed) const;

 private:
  /// Stop index: 0 = DMA, 1..N = ABB SPM groups.
  Tick transfer(Tick ready_at, std::uint32_t from_stop, std::uint32_t to_stop,
                Bytes bytes);

  SpmDmaNetConfig config_;
  /// links_[ring][stop] carries traffic from `stop` to `stop+1 (mod S)`.
  std::vector<std::vector<sim::SharedLink>> links_;
  std::uint32_t next_ring_ = 0;
  std::uint64_t byte_hops_ = 0;
  Bytes total_bytes_ = 0;
};

}  // namespace ara::island
