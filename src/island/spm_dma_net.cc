#include "island/spm_dma_net.h"

#include <algorithm>
#include <cmath>

#include "common/config_error.h"
#include "common/units.h"
#include "power/area_model.h"
#include "power/orion_like.h"

namespace ara::island {

const char* topology_name(SpmDmaTopology t) {
  switch (t) {
    case SpmDmaTopology::kProxyXbar:
      return "proxy-xbar";
    case SpmDmaTopology::kChainingXbar:
      return "chaining-xbar";
    case SpmDmaTopology::kRing:
      return "ring";
  }
  return "?";
}

std::unique_ptr<SpmDmaNet> make_spm_dma_net(const std::string& name,
                                            const SpmDmaNetConfig& config,
                                            std::uint32_t num_abbs) {
  config_check(num_abbs > 0, "island needs at least one ABB");
  config_check(config.link_bytes > 0, "SPM<->DMA link width must be positive");
  switch (config.topology) {
    case SpmDmaTopology::kProxyXbar:
      return std::make_unique<ProxyXbarNet>(name, config, num_abbs);
    case SpmDmaTopology::kChainingXbar:
      return std::make_unique<ChainingXbarNet>(name, config, num_abbs);
    case SpmDmaTopology::kRing:
      config_check(config.num_rings > 0, "ring network needs >= 1 ring");
      return std::make_unique<RingNet>(name, config, num_abbs);
  }
  throw ConfigError("unknown SPM<->DMA topology");
}

namespace {
/// Crossbar traversal latency grows logarithmically with port count
/// (mux tree depth).
Tick xbar_latency(Tick base, std::uint32_t ports) {
  return base + static_cast<Tick>(std::ceil(std::log2(
             std::max<std::uint32_t>(2, ports))));
}
}  // namespace

// ---------------------------------------------------------------- proxy

ProxyXbarNet::ProxyXbarNet(const std::string& name,
                           const SpmDmaNetConfig& config,
                           std::uint32_t num_abbs)
    : SpmDmaNet(num_abbs),
      config_(config),
      hub_(name + ".hub", static_cast<double>(config.link_bytes), 0),
      traversal_latency_(xbar_latency(config.xbar_base_latency, num_abbs + 1)) {
  spm_ports_.reserve(num_abbs);
  for (std::uint32_t i = 0; i < num_abbs; ++i) {
    spm_ports_.emplace_back(name + ".p" + std::to_string(i),
                            static_cast<double>(config.link_bytes), 0);
  }
}

Tick ProxyXbarNet::to_spm(Tick ready_at, AbbId dst, Bytes bytes) {
  Tick t = hub_.submit(ready_at, bytes);
  t = spm_ports_[dst].submit(t, bytes);
  return t + traversal_latency_;
}

Tick ProxyXbarNet::from_spm(Tick ready_at, AbbId src, Bytes bytes) {
  Tick t = spm_ports_[src].submit(ready_at, bytes);
  t = hub_.submit(t, bytes);
  return t + traversal_latency_;
}

Tick ProxyXbarNet::chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) {
  // Two traversals through the DMA hub (Sec. 3.2: "sending data from the
  // source SPM to the DMA, then to the destination SPM").
  const Tick at_dma = from_spm(ready_at, src, bytes);
  return to_spm(at_dma, dst, bytes);
}

double ProxyXbarNet::area_mm2() const {
  return power::proxy_xbar_area_mm2(num_abbs_, config_.link_bytes);
}

double ProxyXbarNet::dynamic_energy_j() const {
  return pj_to_j(power::xbar_pj_per_byte(num_abbs_ + 1) *
                 static_cast<double>(total_bytes()));
}

double ProxyXbarNet::leakage_mw() const {
  return power::kLogicLeakMwPerMm2 * area_mm2();
}

Bytes ProxyXbarNet::total_bytes() const {
  // Count hub traffic: every transfer crosses the hub exactly once per
  // traversal, so this reflects switched data.
  return hub_.total_bytes();
}

// ------------------------------------------------------------- chaining

ChainingXbarNet::ChainingXbarNet(const std::string& name,
                                 const SpmDmaNetConfig& config,
                                 std::uint32_t num_abbs)
    : SpmDmaNet(num_abbs),
      config_(config),
      traversal_latency_(xbar_latency(config.xbar_base_latency, num_abbs + 1)) {
  ports_.reserve(num_abbs + 1);
  for (std::uint32_t i = 0; i <= num_abbs; ++i) {
    ports_.emplace_back(name + ".p" + std::to_string(i),
                        static_cast<double>(config.link_bytes), 0);
  }
}

Tick ChainingXbarNet::to_spm(Tick ready_at, AbbId dst, Bytes bytes) {
  // Output-port contention at the destination SPM group.
  return ports_[dst + 1].submit(ready_at, bytes) + traversal_latency_;
}

Tick ChainingXbarNet::from_spm(Tick ready_at, AbbId src, Bytes bytes) {
  (void)src;
  // Output port is the DMA side (port 0).
  return ports_[0].submit(ready_at, bytes) + traversal_latency_;
}

Tick ChainingXbarNet::chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) {
  (void)src;
  // Single traversal, contending only on the destination output port.
  return ports_[dst + 1].submit(ready_at, bytes) + traversal_latency_;
}

double ChainingXbarNet::area_mm2() const {
  return power::chaining_xbar_area_mm2(num_abbs_, config_.link_bytes);
}

double ChainingXbarNet::dynamic_energy_j() const {
  return pj_to_j(power::xbar_pj_per_byte(num_abbs_ + 1) *
                 static_cast<double>(total_bytes()));
}

double ChainingXbarNet::leakage_mw() const {
  return power::kLogicLeakMwPerMm2 * area_mm2();
}

Bytes ChainingXbarNet::total_bytes() const {
  Bytes sum = 0;
  for (const auto& p : ports_) sum += p.total_bytes();
  return sum;
}

// ----------------------------------------------------------------- ring

RingNet::RingNet(const std::string& name, const SpmDmaNetConfig& config,
                 std::uint32_t num_abbs)
    : SpmDmaNet(num_abbs), config_(config) {
  const std::uint32_t S = stops();
  links_.reserve(config.num_rings);
  for (std::uint32_t r = 0; r < config.num_rings; ++r) {
    std::vector<sim::SharedLink> ring;
    ring.reserve(S);
    for (std::uint32_t s = 0; s < S; ++s) {
      ring.emplace_back(
          name + ".r" + std::to_string(r) + ".l" + std::to_string(s),
          static_cast<double>(config.link_bytes), config.ring_hop_latency);
    }
    links_.push_back(std::move(ring));
  }
}

Tick RingNet::transfer(Tick ready_at, std::uint32_t from_stop,
                       std::uint32_t to_stop, Bytes bytes) {
  if (bytes == 0 || from_stop == to_stop) return ready_at;
  const std::uint32_t S = stops();
  total_bytes_ += bytes;

  Tick last = ready_at;
  Bytes remaining = bytes;
  while (remaining > 0) {
    const Bytes chunk = std::min<Bytes>(remaining, kBlockBytes);
    // Stripe chunks round-robin across rings (Sec. 5.3: multiple narrow
    // rings transmit multiple flits simultaneously).
    auto& ring = links_[next_ring_];
    next_ring_ = (next_ring_ + 1) % config_.num_rings;

    Tick t = ready_at;
    std::uint32_t s = from_stop;
    std::uint32_t hops = 0;
    while (s != to_stop) {
      t = ring[s].submit(t, chunk);
      s = (s + 1) % S;
      ++hops;
    }
    byte_hops_ += static_cast<std::uint64_t>(chunk) * hops;
    last = std::max(last, t);
    remaining -= chunk;
  }
  return last;
}

Tick RingNet::to_spm(Tick ready_at, AbbId dst, Bytes bytes) {
  return transfer(ready_at, 0, dst + 1, bytes);
}

Tick RingNet::from_spm(Tick ready_at, AbbId src, Bytes bytes) {
  return transfer(ready_at, src + 1, 0, bytes);
}

Tick RingNet::chain(Tick ready_at, AbbId src, AbbId dst, Bytes bytes) {
  return transfer(ready_at, src + 1, dst + 1, bytes);
}

double RingNet::area_mm2() const {
  return power::ring_area_mm2(config_.link_bytes, stops(),
                              config_.num_rings);
}

double RingNet::dynamic_energy_j() const {
  return pj_to_j(power::kRingPjPerByteHop * static_cast<double>(byte_hops_));
}

double RingNet::leakage_mw() const {
  return power::kLogicLeakMwPerMm2 * area_mm2();
}

Bytes RingNet::total_bytes() const { return total_bytes_; }

double RingNet::max_link_utilization(Tick elapsed) const {
  double peak = 0.0;
  for (const auto& ring : links_) {
    for (const auto& link : ring) {
      peak = std::max(peak, link.utilization(elapsed));
    }
  }
  return peak;
}

}  // namespace ara::island
