// AbbSpmXbar: the crossbar between one ABB and its SPM banks.
//
// Two variants (paper Sec. 3.2 / 5.1):
//  - private: the ABB reaches only its own banks;
//  - neighbor-sharing: a wider crossbar also reaching both neighbors' banks,
//    allowing 2/3 the SPM capacity but tripling crossbar area, adding a
//    cycle of traversal latency, and constraining concurrent allocation
//    (enforced by the ABC, not here).
//
// Bandwidth provisioning equals the SPM port count by construction, so the
// crossbar itself adds latency and area/energy, not an extra throughput
// limit (bank conflicts are modelled in AbbEngine).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace ara::island {

class AbbSpmXbar {
 public:
  AbbSpmXbar(std::string name, std::uint32_t ports, Bytes spm_capacity,
             bool neighbor_sharing);

  bool sharing() const { return sharing_; }
  std::uint32_t ports() const { return ports_; }

  /// Traversal latency in cycles.
  Tick latency() const { return sharing_ ? 2 : 1; }

  void record(Bytes bytes) { bytes_ += bytes; }
  Bytes total_bytes() const { return bytes_; }

  double area_mm2() const;
  double dynamic_energy_j() const;
  double leakage_mw() const;

 private:
  std::string name_;
  std::uint32_t ports_;
  Bytes spm_capacity_;
  bool sharing_;
  Bytes bytes_ = 0;
};

}  // namespace ara::island
