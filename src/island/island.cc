#include "island/island.h"

#include <algorithm>

#include "common/config_error.h"
#include "power/area_model.h"

namespace ara::island {

namespace {
/// With neighbor sharing, per-ABB SPM capacity drops to ~2/3 (Sec. 5.1:
/// sharing "potentially reduces the number of SPM banks by 0.66X").
Bytes effective_spm_bytes(Bytes base, bool sharing) {
  return sharing ? base * 2 / 3 : base;
}
}  // namespace

Island::Island(IslandId id, noc::Mesh& mesh, NodeId node,
               mem::MemorySystem& mem, const IslandConfig& config,
               const std::vector<abb::AbbKind>& abbs)
    : id_(id),
      mesh_(mesh),
      node_(node),
      mem_(mem),
      config_(config),
      dma_("isl" + std::to_string(id) + ".dma", config.dma_bytes_per_cycle,
           config.dma_chunk_bytes),
      tlb_("isl" + std::to_string(id) + ".tlb", config.tlb) {
  config_check(!abbs.empty() || config.fabric_blocks > 0,
               "island needs at least one compute block");
  config_check(config.spm_port_multiplier >= 1,
               "SPM port multiplier must be >= 1");

  const std::string prefix = "isl" + std::to_string(id);
  AbbId next = 0;
  auto add_block = [&](abb::AbbKind kind, bool fabric) {
    const auto& p = abb::params(fabric ? abb::AbbKind::kFabric : kind);
    const std::uint32_t ports = p.min_spm_ports * config.spm_port_multiplier;
    engines_.push_back(std::make_unique<abb::AbbEngine>(
        id_, next, kind, ports, config.base_conflict_rate, fabric));
    const Bytes cap = effective_spm_bytes(p.spm_bytes, config.spm_sharing);
    spms_.push_back(std::make_unique<SpmGroup>(
        prefix + ".spm" + std::to_string(next), cap, ports, ports));
    // The crossbar's size is set by its connectivity (ports x banks
    // reached), not by the shrunken bank capacity, so it is derived from
    // the kind's baseline SPM footprint.
    xbars_.push_back(std::make_unique<AbbSpmXbar>(
        prefix + ".axs" + std::to_string(next), ports, p.spm_bytes,
        config.spm_sharing));
    ++next;
  };

  for (abb::AbbKind kind : abbs) add_block(kind, /*fabric=*/false);
  for (std::uint32_t i = 0; i < config.fabric_blocks; ++i) {
    add_block(abb::AbbKind::kPoly, /*fabric=*/true);
  }

  net_ = make_spm_dma_net(prefix + ".net", config.net, num_abbs());
}

Tick Island::dma_load(Tick ready_at, Addr addr, Bytes bytes, AbbId dst) {
  if (bytes == 0) return ready_at;
  const Tick issued = ready_at;
  // DMA descriptors carry virtual addresses; translate every page touched
  // before the transfer streams (hardware overlaps walks with setup).
  if (config_.tlb_enabled) {
    ready_at = tlb_.translate_range(ready_at, addr, bytes);
  }
  Tick done = ready_at;
  Tick dma_stage_done = ready_at;
  Bytes off = 0;
  while (off < bytes) {
    const Bytes chunk = std::min<Bytes>(bytes - off, dma_.chunk_bytes());
    Tick t = mem_.read(ready_at, node_, addr + off, chunk);
    t = dma_.process(t, chunk);
    dma_stage_done = std::max(dma_stage_done, t);
    t = net_->to_spm(t, dst, chunk);
    t += xbars_[dst]->latency();
    done = std::max(done, t);
    off += chunk;
  }
  spms_[dst]->record_write(bytes);
  xbars_[dst]->record(bytes);
  if (dma_load_latency_h_ != nullptr) {
    dma_load_latency_h_->record(done - issued);
    dma_loads_c_->inc();
  }
  if (trace_ != nullptr) {
    // Arrow following the payload: shared memory -> this island's DMA
    // engine -> the destination SPM slot.
    trace_->record_span("dma_load", id_, sim::kTraceTidDma, issued, done,
                        "dma");
    const auto flow =
        trace_->begin_flow("dma_load", sim::kTracePidMem, 0, issued, "dma");
    trace_->step_flow(flow, "dma_load", id_, sim::kTraceTidDma,
                      dma_stage_done, "dma");
    trace_->end_flow(flow, "dma_load", id_, dst, done, "dma");
  }
  return done;
}

Tick Island::dma_store(Tick ready_at, AbbId src, Addr addr, Bytes bytes) {
  if (bytes == 0) return ready_at;
  const Tick issued = ready_at;
  if (config_.tlb_enabled) {
    ready_at = tlb_.translate_range(ready_at, addr, bytes);
  }
  Tick done = ready_at;
  Tick dma_stage_done = ready_at;
  Bytes off = 0;
  while (off < bytes) {
    const Bytes chunk = std::min<Bytes>(bytes - off, dma_.chunk_bytes());
    Tick t = ready_at + xbars_[src]->latency();
    t = net_->from_spm(t, src, chunk);
    t = dma_.process(t, chunk);
    dma_stage_done = std::max(dma_stage_done, t);
    t = mem_.write(t, node_, addr + off, chunk);
    done = std::max(done, t);
    off += chunk;
  }
  spms_[src]->record_read(bytes);
  xbars_[src]->record(bytes);
  if (dma_store_latency_h_ != nullptr) {
    dma_store_latency_h_->record(done - issued);
    dma_stores_c_->inc();
  }
  if (trace_ != nullptr) {
    // SPM slot -> DMA engine -> shared memory.
    trace_->record_span("dma_store", id_, sim::kTraceTidDma, issued, done,
                        "dma");
    const auto flow = trace_->begin_flow("dma_store", id_, src, issued, "dma");
    trace_->step_flow(flow, "dma_store", id_, sim::kTraceTidDma,
                      dma_stage_done, "dma");
    trace_->end_flow(flow, "dma_store", sim::kTracePidMem, 0, done, "dma");
  }
  return done;
}

Tick Island::chain(Tick ready_at, Island& src_island, AbbId src,
                   Island& dst_island, AbbId dst, Bytes bytes) {
  if (bytes == 0) return ready_at;
  src_island.spms_[src]->record_read(bytes);
  src_island.xbars_[src]->record(bytes);
  dst_island.spms_[dst]->record_write(bytes);
  dst_island.xbars_[dst]->record(bytes);

  Tick done = ready_at;
  if (&src_island == &dst_island) {
    // Intra-island: the SPM<->DMA network's chaining path, chunked for
    // pipelining.
    Bytes off = 0;
    while (off < bytes) {
      const Bytes chunk =
          std::min<Bytes>(bytes - off, src_island.dma_.chunk_bytes());
      Tick t = ready_at + src_island.xbars_[src]->latency();
      t = src_island.net_->chain(t, src, dst, chunk);
      t += dst_island.xbars_[dst]->latency();
      done = std::max(done, t);
      off += chunk;
    }
    return done;
  }

  // Inter-island: source SPM -> source DMA -> NoC -> dest DMA -> dest SPM.
  Bytes off = 0;
  while (off < bytes) {
    const Bytes chunk =
        std::min<Bytes>(bytes - off, src_island.dma_.chunk_bytes());
    Tick t = ready_at + src_island.xbars_[src]->latency();
    t = src_island.net_->from_spm(t, src, chunk);
    t = src_island.dma_.process(t, chunk);
    t = src_island.mesh_.transfer(t, src_island.node_, dst_island.node_,
                                  chunk);
    t = dst_island.dma_.process(t, chunk);
    t = dst_island.net_->to_spm(t, dst, chunk);
    t += dst_island.xbars_[dst]->latency();
    done = std::max(done, t);
    off += chunk;
  }
  return done;
}

double Island::compute_area_mm2() const {
  double sum = 0;
  for (const auto& e : engines_) sum += e->area_mm2();
  return sum;
}

double Island::spm_area_mm2() const {
  double sum = 0;
  for (const auto& s : spms_) sum += s->area_mm2();
  return sum;
}

double Island::abb_spm_xbar_area_mm2() const {
  double sum = 0;
  for (const auto& x : xbars_) sum += x->area_mm2();
  return sum;
}

double Island::net_area_mm2() const { return net_->area_mm2(); }

double Island::total_area_mm2() const {
  return compute_area_mm2() + spm_area_mm2() + abb_spm_xbar_area_mm2() +
         net_area_mm2() + dma_.area_mm2() + power::kNocInterfaceMm2;
}

double Island::dynamic_energy_j() const {
  return compute_energy_j() + spm_energy_j() + xbar_energy_j() +
         net_energy_j() + dma_energy_j();
}

double Island::compute_energy_j() const {
  double sum = 0;
  for (const auto& e : engines_) sum += e->dynamic_energy_j();
  return sum;
}

double Island::spm_energy_j() const {
  double sum = 0;
  for (const auto& s : spms_) sum += s->dynamic_energy_j();
  return sum;
}

double Island::xbar_energy_j() const {
  double sum = 0;
  for (const auto& x : xbars_) sum += x->dynamic_energy_j();
  return sum;
}

double Island::net_energy_j() const { return net_->dynamic_energy_j(); }

double Island::dma_energy_j() const { return dma_.dynamic_energy_j(); }

double Island::leakage_mw() const {
  double sum = 0;
  for (const auto& e : engines_) sum += e->leakage_mw();
  for (const auto& s : spms_) sum += s->leakage_mw();
  for (const auto& x : xbars_) sum += x->leakage_mw();
  sum += net_->leakage_mw();
  sum += dma_.leakage_mw();
  return sum;
}

double Island::avg_abb_utilization(Tick elapsed) const {
  if (engines_.empty()) return 0.0;
  double sum = 0;
  for (const auto& e : engines_) sum += e->utilization(elapsed);
  return sum / static_cast<double>(engines_.size());
}

double Island::peak_abb_utilization(Tick elapsed) const {
  double peak = 0;
  for (const auto& e : engines_) {
    peak = std::max(peak, e->utilization(elapsed));
  }
  return peak;
}

void Island::set_stats(sim::StatRegistry& reg) {
  const std::string p = "island." + std::to_string(id_) + ".";
  dma_load_latency_h_ = &reg.histogram(p + "dma.load_latency",
                                       /*bucket_width=*/64, /*buckets=*/128);
  dma_store_latency_h_ = &reg.histogram(p + "dma.store_latency",
                                        /*bucket_width=*/64, /*buckets=*/128);
  dma_loads_c_ = &reg.counter(p + "dma.loads");
  dma_stores_c_ = &reg.counter(p + "dma.stores");
}

void Island::snapshot_stats(sim::StatRegistry& reg) const {
  const std::string p = "island." + std::to_string(id_) + ".";
  Bytes spm_read = 0, spm_written = 0;
  for (const auto& s : spms_) {
    spm_read += s->bytes_read();
    spm_written += s->bytes_written();
  }
  reg.set_counter(p + "spm.bytes_read", spm_read);
  reg.set_counter(p + "spm.bytes_written", spm_written);

  std::uint64_t conflicts = 0, tasks = 0, elements = 0;
  for (const auto& e : engines_) {
    conflicts += e->bank_conflict_estimate();
    tasks += e->tasks_executed();
    elements += e->elements_processed();
  }
  reg.set_counter(p + "spm.bank_conflicts", conflicts);
  reg.set_counter(p + "abb.tasks", tasks);
  reg.set_counter(p + "abb.elements", elements);

  Bytes xbar_bytes = 0;
  for (const auto& x : xbars_) xbar_bytes += x->total_bytes();
  reg.set_counter(p + "xbar.bytes", xbar_bytes);
  reg.set_counter(p + "net.bytes", net_->total_bytes());
  reg.set_counter(p + "dma.bytes", dma_.total_bytes());
  reg.set_counter(p + "dma.transfers", dma_.transfers());
  reg.set_counter(p + "tlb.hits", tlb_.hits());
  reg.set_counter(p + "tlb.misses", tlb_.misses());
}

}  // namespace ara::island
