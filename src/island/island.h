// Island: one ABB island — ABB compute engines, their private SPM groups
// and ABB<->SPM crossbars, the SPM<->DMA network, the DMA engine, and the
// island's NoC interface (paper Sec. 3.1 / Fig. 5).
//
// The island provides the data-movement primitives the runtime (ABC /
// scheduler) composes into task execution: DMA loads/stores against shared
// memory, and chain transfers between producer and consumer SPM groups
// (intra-island over the SPM<->DMA network, inter-island over the NoC).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "abb/abb_engine.h"
#include "abb/abb_types.h"
#include "common/types.h"
#include "island/abb_spm_xbar.h"
#include "island/dma_engine.h"
#include "island/island_config.h"
#include "island/spm.h"
#include "island/spm_dma_net.h"
#include "island/tlb.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/stats.h"
#include "sim/trace.h"

namespace ara::island {

class Island {
 public:
  /// `abbs` lists the ASIC ABB kinds instantiated on this island, in slot
  /// order; `config.fabric_blocks` additional programmable-fabric slots are
  /// appended after them.
  Island(IslandId id, noc::Mesh& mesh, NodeId node, mem::MemorySystem& mem,
         const IslandConfig& config, const std::vector<abb::AbbKind>& abbs);

  IslandId id() const { return id_; }
  NodeId node() const { return node_; }
  const IslandConfig& config() const { return config_; }

  std::uint32_t num_abbs() const {
    return static_cast<std::uint32_t>(engines_.size());
  }
  abb::AbbEngine& engine(AbbId a) { return *engines_[a]; }
  const abb::AbbEngine& engine(AbbId a) const { return *engines_[a]; }
  SpmGroup& spm(AbbId a) { return *spms_[a]; }
  const SpmGroup& spm(AbbId a) const { return *spms_[a]; }
  SpmDmaNet& net() { return *net_; }
  const SpmDmaNet& net() const { return *net_; }
  const DmaEngine& dma() const { return dma_; }
  const Tlb& tlb() const { return tlb_; }

  /// DMA load: shared memory [addr, addr+bytes) -> SPM group of `dst`.
  /// Chunked so the NoC/memory path, DMA engine and island network pipeline.
  Tick dma_load(Tick ready_at, Addr addr, Bytes bytes, AbbId dst);

  /// DMA store: SPM group of `src` -> shared memory [addr, addr+bytes).
  Tick dma_store(Tick ready_at, AbbId src, Addr addr, Bytes bytes);

  /// Chain transfer between two ABBs, possibly across islands. Intra-island
  /// uses the SPM<->DMA network's chain path; inter-island crosses both
  /// islands' DMA engines and the NoC.
  static Tick chain(Tick ready_at, Island& src_island, AbbId src,
                    Island& dst_island, AbbId dst, Bytes bytes);

  /// --- area & energy roll-ups ---
  double compute_area_mm2() const;
  double spm_area_mm2() const;
  double abb_spm_xbar_area_mm2() const;
  double net_area_mm2() const;
  double total_area_mm2() const;

  /// Dynamic energy of everything island-local (compute, SPM, crossbars,
  /// island network, DMA), in joules.
  double dynamic_energy_j() const;
  /// Per-component dynamic energies, joules.
  double compute_energy_j() const;
  double spm_energy_j() const;
  double xbar_energy_j() const;
  double net_energy_j() const;
  double dma_energy_j() const;
  /// Total island leakage power, mW.
  double leakage_mw() const;

  /// Average ABB utilization over an elapsed window.
  double avg_abb_utilization(Tick elapsed) const;
  /// Peak single-ABB utilization over an elapsed window.
  double peak_abb_utilization(Tick elapsed) const;

  /// Install live instrumentation into `reg` under "island.<id>.*": DMA
  /// load/store latency histograms and transfer counters.
  void set_stats(sim::StatRegistry& reg);

  /// Roll component totals (SPM/crossbar/net/DMA traffic, TLB hit/miss,
  /// bank-conflict estimates) into `reg` under "island.<id>.*".
  void snapshot_stats(sim::StatRegistry& reg) const;

  /// Attach a trace collector: each DMA transfer records a span on this
  /// island's DMA track plus a flow arrow following the payload between the
  /// memory side and the SPM slot.
  void set_trace(sim::TraceCollector* trace) { trace_ = trace; }

 private:
  IslandId id_;
  noc::Mesh& mesh_;
  NodeId node_;
  mem::MemorySystem& mem_;
  IslandConfig config_;
  std::vector<std::unique_ptr<abb::AbbEngine>> engines_;
  std::vector<std::unique_ptr<SpmGroup>> spms_;
  std::vector<std::unique_ptr<AbbSpmXbar>> xbars_;
  std::unique_ptr<SpmDmaNet> net_;
  DmaEngine dma_;
  Tlb tlb_;
  /// Live instrumentation (null until set_stats / set_trace).
  sim::Histogram* dma_load_latency_h_ = nullptr;
  sim::Histogram* dma_store_latency_h_ = nullptr;
  sim::Counter* dma_loads_c_ = nullptr;
  sim::Counter* dma_stores_c_ = nullptr;
  sim::TraceCollector* trace_ = nullptr;
};

}  // namespace ara::island
