// SpmGroup: the scratch-pad memory banks privately attached to one ABB.
//
// Capacity and minimum porting are fixed by the ABB kind (paper Sec. 3.2);
// the design space varies the port multiplier and, with neighbor sharing,
// shrinks capacity to 2/3 (Sec. 5.1). Banks are an accounting construct
// here: bank-conflict timing lives in AbbEngine's conflict model, while
// this class tracks capacity, traffic, area and energy.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace ara::island {

class SpmGroup {
 public:
  SpmGroup(std::string name, Bytes capacity, std::uint32_t ports,
           std::uint32_t banks);

  Bytes capacity() const { return capacity_; }
  std::uint32_t ports() const { return ports_; }
  std::uint32_t banks() const { return banks_; }
  const std::string& name() const { return name_; }

  /// Traffic accounting (DMA fills, chain transfers, ABB operand traffic).
  void record_write(Bytes bytes) { bytes_written_ += bytes; }
  void record_read(Bytes bytes) { bytes_read_ += bytes; }
  Bytes bytes_written() const { return bytes_written_; }
  Bytes bytes_read() const { return bytes_read_; }

  double area_mm2() const;
  double dynamic_energy_j() const;
  double leakage_mw() const;

 private:
  std::string name_;
  Bytes capacity_;
  std::uint32_t ports_;
  std::uint32_t banks_;
  Bytes bytes_written_ = 0;
  Bytes bytes_read_ = 0;
};

}  // namespace ara::island
