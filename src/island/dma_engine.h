// DmaEngine: per-island DMA controller coordinating traffic between shared
// memory (over the NoC) and the island's SPM groups (over the SPM<->DMA
// network). Models the engine's own processing throughput as a shared
// resource; large transfers are chunked so the memory path, the engine and
// the island network pipeline against each other.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"
#include "sim/shared_link.h"

namespace ara::island {

class DmaEngine {
 public:
  DmaEngine(std::string name, double bytes_per_cycle, Bytes chunk_bytes);

  /// Occupy the engine for `bytes` starting at `ready_at`; returns done tick.
  Tick process(Tick ready_at, Bytes bytes) {
    return engine_.submit(ready_at, bytes);
  }

  Bytes chunk_bytes() const { return chunk_; }
  Bytes total_bytes() const { return engine_.total_bytes(); }
  std::uint64_t transfers() const { return engine_.transfers(); }
  double utilization(Tick elapsed) const {
    return engine_.utilization(elapsed);
  }

  double dynamic_energy_j() const;
  double area_mm2() const;
  double leakage_mw() const;

 private:
  sim::SharedLink engine_;
  Bytes chunk_;
};

}  // namespace ara::island
