// Configuration of one ABB island: the design-space parameters the paper
// sweeps in Sections 3.2 and 5.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "island/tlb.h"

namespace ara::island {

/// SPM<->DMA network topology choices (paper Sec. 3.2).
enum class SpmDmaTopology : std::uint8_t {
  kProxyXbar = 0,    // DMA-centered crossbar; chaining routes through DMA
  kChainingXbar,     // all-to-all crossbar; direct SPM->SPM chaining
  kRing,             // unidirectional ring(s)
};

const char* topology_name(SpmDmaTopology t);

struct SpmDmaNetConfig {
  SpmDmaTopology topology = SpmDmaTopology::kProxyXbar;
  /// Number of parallel rings (ring topology only).
  std::uint32_t num_rings = 1;
  /// Link width in bytes (16 or 32 in the paper's sweeps).
  Bytes link_bytes = 32;
  /// Per-hop ring router latency.
  Tick ring_hop_latency = 1;
  /// Crossbar traversal latency grows with size; this is the base.
  Tick xbar_base_latency = 2;
};

struct IslandConfig {
  SpmDmaNetConfig net;
  /// Neighbor SPM sharing in the ABB<->SPM crossbar (Sec. 5.1). Sharing
  /// shrinks per-ABB SPM capacity to 2/3 but triples the crossbar and
  /// constrains concurrent allocation (neighbors of an active ABB are
  /// unusable).
  bool spm_sharing = false;
  /// SPM port provisioning: 1 = exact minimum, 2 = doubled (Sec. 5.4).
  std::uint32_t spm_port_multiplier = 1;
  /// Residual SPM bank-conflict rate at minimum porting, after software
  /// data layout (Sec. 5.4: layout "could eliminate almost all conflicts").
  double base_conflict_rate = 0.04;
  /// DMA engine internal throughput.
  double dma_bytes_per_cycle = 64.0;
  /// DMA pipelining granularity between memory and the island network.
  Bytes dma_chunk_bytes = 512;
  /// CAMEL programmable-fabric blocks per island (0 = pure CHARM).
  std::uint32_t fabric_blocks = 0;
  /// Per-island DMA TLB (paper Sec. 2: each accelerator node carries a
  /// small TLB for virtual-to-physical translation).
  bool tlb_enabled = true;
  TlbConfig tlb;
};

}  // namespace ara::island
