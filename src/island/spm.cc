#include "island/spm.h"

#include <utility>

#include "common/config_error.h"
#include "common/units.h"
#include "power/area_model.h"
#include "power/orion_like.h"

namespace ara::island {

SpmGroup::SpmGroup(std::string name, Bytes capacity, std::uint32_t ports,
                   std::uint32_t banks)
    : name_(std::move(name)), capacity_(capacity), ports_(ports),
      banks_(banks) {
  config_check(capacity > 0, "SPM group needs positive capacity");
  config_check(ports > 0 && banks > 0, "SPM group needs ports and banks");
}

double SpmGroup::area_mm2() const {
  return power::spm_group_area_mm2(capacity_, ports_);
}

double SpmGroup::dynamic_energy_j() const {
  return pj_to_j(power::kSpmPjPerByte *
                 static_cast<double>(bytes_written_ + bytes_read_));
}

double SpmGroup::leakage_mw() const {
  return power::kSpmLeakMwPerKiB * static_cast<double>(capacity_) / 1024.0;
}

}  // namespace ara::island
