// Tlb: the small per-island translation look-aside buffer the paper's
// island description includes ("a small translation look-aside buffer
// (TLB) for translating from virtual to physical addresses" — Sec. 2).
//
// DMA descriptors arrive with virtual addresses; each page touched by a
// transfer is translated through this TLB. Hits are free (folded into the
// DMA pipeline); misses cost a page-table walk, modelled as a fixed number
// of memory accesses' worth of latency supplied by the island. The TLB is
// fully associative with LRU replacement — typical for the small (16-64
// entry) translation structures accelerators carry.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "common/types.h"

namespace ara::island {

struct TlbConfig {
  std::uint32_t entries = 32;
  /// Default to huge pages: accelerator DMA buffers are pinned and
  /// huge-page mapped (with 4 KB pages a 32-entry TLB covers only 128 KB
  /// and thrashes under streaming — see Tlb.HugePagesRescueStreamingHitRate).
  Bytes page_bytes = 2 * 1024 * 1024;
  /// Page-walk latency charged per miss (pointer chases through the page
  /// table in shared memory; a constant is accurate enough because walks
  /// mostly hit the L2).
  Tick walk_latency = 120;
};

class Tlb {
 public:
  Tlb(std::string name, const TlbConfig& config);

  /// Translate one access at `vaddr`, ready at `ready_at`. Returns the tick
  /// at which the translation is available (== ready_at on a hit).
  Tick translate(Tick ready_at, Addr vaddr);

  /// Translate every page of a [vaddr, vaddr+bytes) transfer; returns the
  /// tick when all translations are available. Sequential walks are charged
  /// for each missing page (hardware walks one miss at a time).
  Tick translate_range(Tick ready_at, Addr vaddr, Bytes bytes);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(hits_) /
                            static_cast<double>(total);
  }
  void flush();

  const TlbConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

 private:
  Addr page_of(Addr vaddr) const { return vaddr / config_.page_bytes; }
  bool lookup_and_fill(Addr page);

  std::string name_;
  TlbConfig config_;
  /// LRU list of resident pages (front = most recent) + index into it.
  std::list<Addr> lru_;
  std::unordered_map<Addr, std::list<Addr>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace ara::island
