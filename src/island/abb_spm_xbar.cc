#include "island/abb_spm_xbar.h"

#include <utility>

#include "common/units.h"
#include "power/area_model.h"
#include "power/orion_like.h"

namespace ara::island {

AbbSpmXbar::AbbSpmXbar(std::string name, std::uint32_t ports,
                       Bytes spm_capacity, bool neighbor_sharing)
    : name_(std::move(name)),
      ports_(ports),
      spm_capacity_(spm_capacity),
      sharing_(neighbor_sharing) {}

double AbbSpmXbar::area_mm2() const {
  return power::abb_spm_xbar_area_mm2(ports_, spm_capacity_, sharing_);
}

double AbbSpmXbar::dynamic_energy_j() const {
  // Effective port count triples with sharing (own + two neighbours).
  const std::uint32_t eff_ports = sharing_ ? ports_ * 3 : ports_;
  return pj_to_j(power::xbar_pj_per_byte(eff_ports) *
                 static_cast<double>(bytes_));
}

double AbbSpmXbar::leakage_mw() const {
  return power::kLogicLeakMwPerMm2 * area_mm2();
}

}  // namespace ara::island
