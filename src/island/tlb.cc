#include "island/tlb.h"

#include <utility>

#include "common/config_error.h"

namespace ara::island {

Tlb::Tlb(std::string name, const TlbConfig& config)
    : name_(std::move(name)), config_(config) {
  config_check(config.entries > 0, "TLB needs at least one entry");
  config_check(config.page_bytes >= kBlockBytes,
               "TLB page must be at least one block");
}

bool Tlb::lookup_and_fill(Addr page) {
  auto it = map_.find(page);
  if (it != map_.end()) {
    // Refresh LRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (lru_.size() >= config_.entries) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(page);
  map_[page] = lru_.begin();
  return false;
}

Tick Tlb::translate(Tick ready_at, Addr vaddr) {
  return lookup_and_fill(page_of(vaddr)) ? ready_at
                                         : ready_at + config_.walk_latency;
}

Tick Tlb::translate_range(Tick ready_at, Addr vaddr, Bytes bytes) {
  if (bytes == 0) return ready_at;
  Tick t = ready_at;
  const Addr first = page_of(vaddr);
  const Addr last = page_of(vaddr + bytes - 1);
  for (Addr p = first; p <= last; ++p) {
    if (!lookup_and_fill(p)) t += config_.walk_latency;
  }
  return t;
}

void Tlb::flush() {
  lru_.clear();
  map_.clear();
}

}  // namespace ara::island
