#include "power/area_model.h"

#include <cmath>

namespace ara::power {

double spm_group_area_mm2(Bytes capacity, std::uint32_t ports) {
  const double kib = static_cast<double>(capacity) / 1024.0;
  const double port_factor =
      1.0 + kSpmPortAreaFactor * (ports > 0 ? ports - 1 : 0);
  return kSpmMm2PerKiB * kib * port_factor;
}

double abb_spm_xbar_area_mm2(std::uint32_t ports, Bytes spm_capacity,
                             bool neighbor_sharing) {
  // Calibration anchor (Sec. 5.1): for a typical ABB the SPM banks are
  // ~20% of the private crossbar area, and neighbor sharing grows the
  // crossbar 3X (each ABB now reaches its own banks plus two neighbors').
  const double spm_area = spm_group_area_mm2(spm_capacity, ports);
  const double private_area = spm_area * 5.0;  // SPM = 20% of crossbar
  return neighbor_sharing ? private_area * 3.0 : private_area;
}

double proxy_xbar_area_mm2(std::uint32_t num_abbs, Bytes link_width) {
  const double ports = num_abbs + 1.0;  // SPM groups + DMA hub
  return 0.0042 * std::pow(ports, 1.3) * static_cast<double>(link_width);
}

double chaining_xbar_area_mm2(std::uint32_t num_abbs, Bytes link_width) {
  const double ports = num_abbs + 1.0;
  return 0.00092 * ports * ports * ports * static_cast<double>(link_width);
}

double ring_stop_area_mm2(Bytes link_width) {
  return 0.0045 * static_cast<double>(link_width);
}

double ring_area_mm2(Bytes link_width, std::uint32_t stops,
                     std::uint32_t rings) {
  // Additional rings share spine wiring and placement, so area grows
  // sublinearly in ring count.
  return ring_stop_area_mm2(link_width) * static_cast<double>(stops) *
         std::pow(static_cast<double>(rings), 0.85);
}

}  // namespace ara::power
