// McPAT-like [17] energy model of a superscalar out-of-order pipeline:
// reproduces the paper's Figure 1 (hardware parameters), Figure 2 (energy
// breakdown under a SPEC-like instruction mix) and Figure 3 (the same
// pipeline with custom-ASIC compute units).
//
// Modelling approach: per-instruction component energy =
//     base_energy x structure_scale(params) x activity(mix).
// Base energies are calibrated so the default parameters and mix reproduce
// the published Fig. 2 shares exactly (the shares are the data being
// reproduced); structure and activity scaling keep the model responsive to
// parameter changes so it can be exercised beyond the published point.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace ara::power {

/// Figure 1 hardware parameters.
struct PipelineParams {
  std::uint32_t fetch_width = 4;   // fetch/issue/retire width
  std::uint32_t int_alus = 3;
  std::uint32_t fp_alus = 2;
  std::uint32_t rob_entries = 96;
  std::uint32_t rs_entries = 64;
  std::uint32_t l1i_kb = 32;       // 8-way
  std::uint32_t l1d_kb = 32;       // 8-way
  std::uint32_t l2_mb = 6;         // 8-way
  std::uint32_t assoc = 8;
  double freq_ghz = 2.0;
};

/// Dynamic instruction mix (fractions; SPEC-like default).
struct InstructionMix {
  double int_alu = 0.40;
  double fp = 0.12;
  double muldiv = 0.04;
  double load = 0.22;
  double store = 0.10;
  double branch = 0.12;
  double total() const {
    return int_alu + fp + muldiv + load + store + branch;
  }
};

enum class PipeComponent : std::uint8_t {
  kFetch = 0,
  kDecode,
  kRename,
  kRegFiles,
  kScheduler,
  kMisc,      // pipeline registers, control, undifferentiated logic
  kFpu,
  kIntAlu,
  kMulDiv,
  kMemory,
};
inline constexpr std::size_t kNumPipeComponents = 10;

const char* component_name(PipeComponent c);

/// True for the compute units the ASIC substitution replaces (Fig. 3).
bool is_compute_unit(PipeComponent c);

class McPatLikePipeline {
 public:
  McPatLikePipeline(const PipelineParams& params, const InstructionMix& mix);

  /// Energy per average instruction for one component, picojoules.
  double energy_pj(PipeComponent c) const {
    return energy_pj_[static_cast<std::size_t>(c)];
  }
  double total_pj() const;
  /// Fraction of the pipeline total (Fig. 2 bars).
  double share(PipeComponent c) const;

  /// Figure 3: replace Int ALU / FPU / Mul-Div with custom ASIC units that
  /// eliminate `reduction` (default 97%) of their energy. Non-compute
  /// components are untouched.
  McPatLikePipeline with_asic_compute_units(double reduction = 0.97) const;

  /// Fraction of the *original* total saved by the substitution (the
  /// "energy savings" slice in Fig. 3); 0 for an unsubstituted model.
  double savings_share() const { return savings_share_; }

  const PipelineParams& params() const { return params_; }
  const InstructionMix& mix() const { return mix_; }

 private:
  PipelineParams params_;
  InstructionMix mix_;
  std::array<double, kNumPipeComponents> energy_pj_{};
  double savings_share_ = 0.0;
};

}  // namespace ara::power
