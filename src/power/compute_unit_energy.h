// Compute-unit energy characterization (paper Sec. 1): per-operation
// energies of a general-purpose processor's compute units at 2 GHz versus
// dedicated 45 nm ASIC logic blocks (TSMC library), as the paper reports:
//
//   32-bit add:  processor 0.122 nJ  vs  ASIC 0.002 nJ (1 GHz)   -> 61X
//   32-bit mul:  processor 0.120 nJ  vs  ASIC 0.007 nJ (1 GHz)   -> 17X
//   SP FP op:    processor 0.150 nJ  vs  ASIC 0.008 nJ (500 MHz) -> 19X
//
// Plus the footnote anchor: McPAT reports 422.02 mW for the Int ALU at
// 2 GHz, while 45 nm synthesis yields 11.41 mW at a 500 MHz max clock.
#pragma once

#include <array>
#include <string>

namespace ara::power {

enum class ComputeOp { kAdd32 = 0, kMul32, kFpSingle };
inline constexpr std::size_t kNumComputeOps = 3;

struct ComputeOpEnergy {
  ComputeOp op;
  const char* name;
  double processor_nj;  // at 2 GHz, 64-bit datapath, dynamic logic
  double asic_nj;       // dedicated block, exact precision, static logic
  double asic_clock_mhz;
};

/// The characterized table (values straight from the paper).
const std::array<ComputeOpEnergy, kNumComputeOps>& compute_op_table();

/// Energy-saving factor processor/ASIC for one op.
double asic_saving_factor(ComputeOp op);

/// Why the processor's units cost more (paper's three reasons): excess
/// functionality, excess precision, and high-frequency dynamic logic.
/// Returns the approximate multiplicative contribution of each for `op`,
/// whose product ~= asic_saving_factor(op).
struct SavingDecomposition {
  double excess_functionality;
  double excess_precision;
  double dynamic_logic;
};
SavingDecomposition saving_decomposition(ComputeOp op);

/// Footnote anchor values.
inline constexpr double kMcPatIntAluPowerMw = 422.02;  // at 2 GHz
inline constexpr double kSynthIntAluPowerMw = 11.41;   // 45 nm DC synthesis
inline constexpr double kSynthIntAluClockMhz = 500.0;

}  // namespace ara::power
