#include "power/mcpat_like.h"

#include <cmath>

#include "common/config_error.h"

namespace ara::power {

namespace {

/// Fig. 2 shares (percent) at the default parameters and mix.
constexpr std::array<double, kNumPipeComponents> kBaseShares = {
    8.9,   // Fetch
    6.0,   // Decode
    12.1,  // Rename
    2.7,   // Reg Files
    10.8,  // Scheduler
    23.7,  // Miscellaneous
    7.9,   // FPU
    13.8,  // Int ALU
    4.0,   // Mul/Div
    10.1,  // Memory
};

/// Total pipeline energy per average instruction at defaults, picojoules.
/// Anchored so the Int ALU's per-executed-op energy equals the paper's
/// 0.122 nJ figure: 460 * 13.8% / 52% int-ish ops = 122 pJ.
constexpr double kTotalPjPerInstr = 460.0;

constexpr InstructionMix kDefaultMix{};

double structure_scale(PipeComponent c, const PipelineParams& p) {
  const PipelineParams d;  // defaults
  auto ratio = [](double a, double b) { return a / b; };
  switch (c) {
    case PipeComponent::kFetch:
      return std::sqrt(ratio(p.l1i_kb, d.l1i_kb)) *
             std::sqrt(ratio(p.fetch_width, d.fetch_width));
    case PipeComponent::kDecode:
      return ratio(p.fetch_width, d.fetch_width);
    case PipeComponent::kRename:
      return ratio(p.fetch_width, d.fetch_width) *
             std::sqrt(ratio(p.rob_entries, d.rob_entries));
    case PipeComponent::kRegFiles:
      return 1.0;
    case PipeComponent::kScheduler:
      return std::sqrt(ratio(p.rs_entries, d.rs_entries));
    case PipeComponent::kMisc:
      return std::sqrt(ratio(p.rob_entries, d.rob_entries));
    case PipeComponent::kFpu:
    case PipeComponent::kIntAlu:
    case PipeComponent::kMulDiv:
      return 1.0;
    case PipeComponent::kMemory:
      return std::sqrt(ratio(p.l1d_kb, d.l1d_kb));
  }
  return 1.0;
}

double activity_scale(PipeComponent c, const InstructionMix& m) {
  const InstructionMix& d = kDefaultMix;
  switch (c) {
    case PipeComponent::kFpu:
      return m.fp / d.fp;
    case PipeComponent::kIntAlu:
      return (m.int_alu + m.branch) / (d.int_alu + d.branch);
    case PipeComponent::kMulDiv:
      return m.muldiv / d.muldiv;
    case PipeComponent::kMemory:
      return (m.load + m.store) / (d.load + d.store);
    default:
      return 1.0;  // front end / bookkeeping touched by every instruction
  }
}

}  // namespace

const char* component_name(PipeComponent c) {
  switch (c) {
    case PipeComponent::kFetch: return "Fetch";
    case PipeComponent::kDecode: return "Decode";
    case PipeComponent::kRename: return "Rename";
    case PipeComponent::kRegFiles: return "Reg Files";
    case PipeComponent::kScheduler: return "Scheduler";
    case PipeComponent::kMisc: return "Miscellaneous";
    case PipeComponent::kFpu: return "FPU";
    case PipeComponent::kIntAlu: return "Int ALU";
    case PipeComponent::kMulDiv: return "Mul/Div";
    case PipeComponent::kMemory: return "Memory";
  }
  return "?";
}

bool is_compute_unit(PipeComponent c) {
  return c == PipeComponent::kFpu || c == PipeComponent::kIntAlu ||
         c == PipeComponent::kMulDiv;
}

McPatLikePipeline::McPatLikePipeline(const PipelineParams& params,
                                     const InstructionMix& mix)
    : params_(params), mix_(mix) {
  config_check(std::abs(mix.total() - 1.0) < 1e-6,
               "instruction mix fractions must sum to 1");
  for (std::size_t i = 0; i < kNumPipeComponents; ++i) {
    const auto c = static_cast<PipeComponent>(i);
    energy_pj_[i] = kBaseShares[i] / 100.0 * kTotalPjPerInstr *
                    structure_scale(c, params) * activity_scale(c, mix);
  }
}

double McPatLikePipeline::total_pj() const {
  double sum = 0;
  for (double e : energy_pj_) sum += e;
  return sum;
}

double McPatLikePipeline::share(PipeComponent c) const {
  const double t = total_pj();
  return t <= 0 ? 0.0 : energy_pj(c) / t;
}

McPatLikePipeline McPatLikePipeline::with_asic_compute_units(
    double reduction) const {
  config_check(reduction >= 0.0 && reduction <= 1.0,
               "reduction must be a fraction");
  McPatLikePipeline out = *this;
  const double original = total_pj();
  double removed = 0;
  for (std::size_t i = 0; i < kNumPipeComponents; ++i) {
    if (!is_compute_unit(static_cast<PipeComponent>(i))) continue;
    const double before = out.energy_pj_[i];
    out.energy_pj_[i] = before * (1.0 - reduction);
    removed += before - out.energy_pj_[i];
  }
  out.savings_share_ = original <= 0 ? 0.0 : removed / original;
  return out;
}

}  // namespace ara::power
