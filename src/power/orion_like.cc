#include "power/orion_like.h"

#include <cmath>

namespace ara::power {

double xbar_pj_per_byte(std::uint32_t ports) {
  // Wire length (and thus switched capacitance) grows with the crossbar's
  // linear dimension, i.e. with port count.
  return 0.25 + 0.03 * static_cast<double>(ports);
}

}  // namespace ara::power
