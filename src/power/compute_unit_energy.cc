#include "power/compute_unit_energy.h"

#include <cmath>

namespace ara::power {

const std::array<ComputeOpEnergy, kNumComputeOps>& compute_op_table() {
  static const std::array<ComputeOpEnergy, kNumComputeOps> table = {{
      {ComputeOp::kAdd32, "32-bit add", 0.122, 0.002, 1000.0},
      {ComputeOp::kMul32, "32-bit mul", 0.120, 0.007, 1000.0},
      {ComputeOp::kFpSingle, "SP FP", 0.150, 0.008, 500.0},
  }};
  return table;
}

double asic_saving_factor(ComputeOp op) {
  const auto& e = compute_op_table()[static_cast<std::size_t>(op)];
  return e.processor_nj / e.asic_nj;
}

SavingDecomposition saving_decomposition(ComputeOp op) {
  // The three inefficiency sources the paper names. The split is
  // approximate: precision (64b units doing 32b work) ~2X, dynamic/domino
  // logic at high clock ~3X, and the remainder attributed to excess
  // functionality (multi-op units, bypass fanout, control).
  const double total = asic_saving_factor(op);
  SavingDecomposition d;
  d.excess_precision = 2.0;
  d.dynamic_logic = 3.0;
  d.excess_functionality = total / (d.excess_precision * d.dynamic_logic);
  return d;
}

}  // namespace ara::power
