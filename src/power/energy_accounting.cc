#include "power/energy_accounting.h"

#include "common/units.h"
#include "power/orion_like.h"

namespace ara::power {

core::EnergyBreakdown collect_energy(
    const std::vector<island::Island*>& islands, const noc::Mesh& mesh,
    const mem::MemorySystem& mem, const abc::Abc& abc, Tick elapsed) {
  core::EnergyBreakdown e;
  double leak_mw = 0;
  for (const island::Island* isl : islands) {
    e.abb_j += isl->compute_energy_j();
    e.spm_j += isl->spm_energy_j();
    e.abb_spm_xbar_j += isl->xbar_energy_j();
    e.island_net_j += isl->net_energy_j();
    e.dma_j += isl->dma_energy_j();
    leak_mw += isl->leakage_mw();
  }

  // NoC: per byte-hop energy from flit-hop accounting.
  e.noc_j = pj_to_j(kNocPjPerByteHop *
                    static_cast<double>(mesh.total_flit_hops()) *
                    static_cast<double>(mesh.config().flit_bytes));
  leak_mw += kNocRouterLeakMw * static_cast<double>(mesh.node_count());

  // L2 and DRAM.
  std::uint64_t l2_accesses = 0;
  Bytes l2_capacity = 0;
  for (std::size_t b = 0; b < mem.l2_bank_count(); ++b) {
    l2_accesses += mem.l2_bank(b).accesses();
    l2_capacity += mem.l2_bank(b).config().capacity;
  }
  e.l2_j = pj_to_j(kL2PjPerByte * static_cast<double>(l2_accesses) *
                   static_cast<double>(kBlockBytes));
  e.dram_j = pj_to_j(kDramPjPerByte * static_cast<double>(mem.dram_bytes()));
  leak_mw += kL2LeakMwPerKiB * static_cast<double>(l2_capacity) / 1024.0;
  leak_mw += kMcLeakMw * static_cast<double>(mem.controller_count());

  e.mono_j = abc.mono_dynamic_energy_j();
  e.leakage_j = mw_over_ticks_to_j(leak_mw, elapsed);
  e.platform_j = kPlatformPowerW * ticks_to_seconds(elapsed);
  return e;
}

core::AreaBreakdown collect_area(
    const std::vector<island::Island*>& islands, const noc::Mesh& mesh,
    const mem::MemorySystem& mem) {
  core::AreaBreakdown a;
  for (const island::Island* isl : islands) {
    a.islands_mm2 += isl->total_area_mm2();
  }
  a.noc_mm2 = kNocRouterMm2 * static_cast<double>(mesh.node_count());
  for (std::size_t b = 0; b < mem.l2_bank_count(); ++b) {
    a.l2_mm2 += kL2Mm2PerKiB *
                static_cast<double>(mem.l2_bank(b).config().capacity) / 1024.0;
  }
  a.mc_mm2 = kMcMm2 * static_cast<double>(mem.controller_count());
  return a;
}

}  // namespace ara::power
