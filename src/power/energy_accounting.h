// System-level energy and area roll-ups: walks the simulated components
// after a run and produces the breakdowns RunResult reports.
#pragma once

#include <vector>

#include "abc/abc.h"
#include "core/run_result.h"
#include "island/island.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"

namespace ara::power {

/// Additional fixed-area constants for chip-level components.
inline constexpr double kNocRouterMm2 = 0.12;
inline constexpr double kL2Mm2PerKiB = 0.005;
inline constexpr double kMcMm2 = 1.5;
inline constexpr double kMcLeakMw = 50.0;
inline constexpr double kL2LeakMwPerKiB = 0.010;

/// Machine-level fixed power while the accelerator-rich chip runs: host
/// cores idling, uncore, DRAM background, VRs/board. The paper compares
/// wall-level CMP energy against the accelerator platform, and its
/// energy-gain/speedup ratio is a near-constant ~2.76 across benchmarks,
/// implying a fixed platform power of roughly 113 W / 2.76 ~= 41 W total;
/// ~34 W of that is this floor (the rest is chip dynamic + leakage).
inline constexpr double kPlatformPowerW = 34.0;

core::EnergyBreakdown collect_energy(
    const std::vector<island::Island*>& islands, const noc::Mesh& mesh,
    const mem::MemorySystem& mem, const abc::Abc& abc, Tick elapsed);

core::AreaBreakdown collect_area(
    const std::vector<island::Island*>& islands, const noc::Mesh& mesh,
    const mem::MemorySystem& mem);

}  // namespace ara::power
