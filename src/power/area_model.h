// Silicon area model (45 nm) for island components.
//
// Crossbar and ring formulas are analytical, Orion-style: area grows with
// port count and datapath width. Constants are calibrated so the paper's
// reported area ratios hold:
//  - Sec. 5.1: neighbor-sharing triples the ABB<->SPM crossbar, SPM banks
//    are ~20% of the private crossbar's area (7% with sharing);
//  - Sec. 5.2: the chaining-optimized crossbar exceeds 99% of a 40-ABB
//    island's area;
//  - Sec. 5.7: SPM<->DMA ring = 16-40% of island area across width/ring
//    count, proxy crossbar = 44-50% for large islands.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ara::power {

/// SRAM macro area per KiB, single-ported (45 nm compiled SRAM).
inline constexpr double kSpmMm2PerKiB = 0.0047;

/// Additional area factor per SPM port beyond the first (multi-porting an
/// SRAM costs roughly 35% area per extra port).
inline constexpr double kSpmPortAreaFactor = 0.35;

/// DMA engine fixed area per island.
inline constexpr double kDmaEngineMm2 = 0.15;

/// Island NoC interface (NI) fixed area.
inline constexpr double kNocInterfaceMm2 = 0.10;

/// SPM bank area for a group of `banks` banks totalling `capacity` bytes
/// with `ports` aggregate ports.
double spm_group_area_mm2(Bytes capacity, std::uint32_t ports);

/// ABB<->SPM crossbar connecting one ABB's `ports` ports to its private
/// banks. Calibrated so the SPM of a typical ABB is ~20% of this area
/// (paper Sec. 5.1).
double abb_spm_xbar_area_mm2(std::uint32_t ports, Bytes spm_capacity,
                             bool neighbor_sharing);

/// Proxy crossbar (DMA hub to N SPM groups): mildly superlinear in port
/// count, linear in link width.
double proxy_xbar_area_mm2(std::uint32_t num_abbs, Bytes link_width);

/// Chaining-optimized crossbar (all-to-all among N SPM groups + DMA):
/// cubic port-count growth from wiring congestion; this is what makes it
/// untenable beyond the smallest islands (Sec. 5.2).
double chaining_xbar_area_mm2(std::uint32_t num_abbs, Bytes link_width);

/// One ring stop (router + link segment) of a given link width.
double ring_stop_area_mm2(Bytes link_width);

/// Whole SPM<->DMA ring network: `stops` stops x `rings` rings, with a
/// sublinear ring-count factor (shared spine wiring).
double ring_area_mm2(Bytes link_width, std::uint32_t stops,
                     std::uint32_t rings);

}  // namespace ara::power
