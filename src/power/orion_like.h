// Orion-style [24] per-event dynamic energy and leakage for interconnect
// and storage structures. Values are 45 nm class; what matters for the
// paper's figures is relative magnitudes (interconnect energy per byte vs.
// compute energy per op), which these preserve.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ara::power {

/// --- dynamic energy per byte (picojoules) ---

/// NoC router+link energy per byte-hop, decomposed Orion-style [24] into
/// input-buffer write, buffer read, crossbar traversal, allocation/
/// arbitration, and link traversal. The components sum to the headline
/// per-byte-hop constant used by the accounting roll-up.
struct NocEnergyBreakdownPj {
  double buffer_write = 0.35;
  double buffer_read = 0.25;
  double crossbar = 0.40;
  double arbitration = 0.10;
  double link = 0.50;
  double total() const {
    return buffer_write + buffer_read + crossbar + arbitration + link;
  }
};

/// NoC: energy for one byte traversing one router + one inter-router link
/// (== NocEnergyBreakdownPj{}.total()).
inline constexpr double kNocPjPerByteHop = 1.6;

/// Island SPM<->DMA ring: shorter links, simpler 2-port routers.
inline constexpr double kRingPjPerByteHop = 0.45;

/// Crossbar traversal (proxy or chaining); grows with port count because
/// longer wires must be driven.
double xbar_pj_per_byte(std::uint32_t ports);

/// SPM read/write energy per byte.
inline constexpr double kSpmPjPerByte = 0.55;

/// DRAM access energy per byte (device + channel).
inline constexpr double kDramPjPerByte = 22.0;

/// L2 access energy per byte.
inline constexpr double kL2PjPerByte = 2.2;

/// DMA engine processing energy per byte moved.
inline constexpr double kDmaPjPerByte = 0.12;

/// --- leakage power (milliwatts) ---

/// Per-KiB SPM leakage.
inline constexpr double kSpmLeakMwPerKiB = 0.012;

/// Per-mm2 generic logic leakage (crossbars, routers, DMA).
inline constexpr double kLogicLeakMwPerMm2 = 2.0;

/// NoC router leakage each.
inline constexpr double kNocRouterLeakMw = 4.0;

}  // namespace ara::power
