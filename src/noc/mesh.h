// 2-D mesh NoC with dimension-order (XY) routing and reservation-based
// contention modelling.
//
// transfer() moves a payload from one node to another: the payload is split
// into chunks (default one cache block) and each chunk reserves, in order,
// the output-port links along the XY route. Chunks pipeline across hops
// (chunk i+1 can occupy hop h while chunk i occupies hop h+1), giving
// store-and-forward behaviour at chunk granularity. Reservations are made
// at submit time for the whole path, so backpressure is approximated by
// FIFO queueing at each link rather than credit stalls; this matches the
// fluid-traffic abstraction used throughout the simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "noc/noc_config.h"
#include "noc/router.h"
#include "sim/stats.h"

namespace ara::noc {

class Mesh {
 public:
  explicit Mesh(const MeshConfig& config);

  const MeshConfig& config() const { return config_; }
  std::uint32_t width() const { return config_.width; }
  std::uint32_t height() const { return config_.height; }
  std::size_t node_count() const { return routers_.size(); }

  NodeId node_at(std::uint32_t x, std::uint32_t y) const {
    return y * config_.width + x;
  }
  std::uint32_t x_of(NodeId n) const { return n % config_.width; }
  std::uint32_t y_of(NodeId n) const { return n / config_.width; }

  Router& router(NodeId n) { return *routers_[n]; }
  const Router& router(NodeId n) const { return *routers_[n]; }

  /// Number of hops on the XY route between two nodes (0 when equal).
  std::uint32_t hops(NodeId src, NodeId dst) const;

  /// Move `bytes` from `src` to `dst`, earliest start `ready_at`.
  /// Returns the arrival tick of the last byte at `dst`'s local port.
  /// Also accounts flit-hops for the Orion-style energy model.
  Tick transfer(Tick ready_at, NodeId src, NodeId dst, Bytes bytes);

  /// Send a small control message (one flit); convenience wrapper.
  Tick send_control(Tick ready_at, NodeId src, NodeId dst) {
    return transfer(ready_at, src, dst, config_.flit_bytes);
  }

  /// --- accounting for power/energy models ---
  std::uint64_t total_flit_hops() const { return flit_hops_; }
  Bytes total_bytes_injected() const { return bytes_injected_; }
  std::uint64_t total_packets() const { return packets_; }

  /// Peak per-link utilization across the mesh over `elapsed` ticks.
  double max_link_utilization(Tick elapsed) const;

  /// Install live instrumentation into `reg`: a "noc.transfer_latency"
  /// histogram plus a "noc.router.<n>.flits" counter per router (flits
  /// forwarded through that router, all ports). Recording is deterministic,
  /// so stats-on vs stats-off runs produce identical timing.
  void set_stats(sim::StatRegistry& reg);

 private:
  /// Sequence of (router, output port) pairs along the XY route, ending with
  /// the destination's local ejection port.
  struct Hop {
    NodeId router;
    Direction out;
  };
  std::vector<Hop> route(NodeId src, NodeId dst) const;

  MeshConfig config_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::uint64_t flit_hops_ = 0;
  Bytes bytes_injected_ = 0;
  std::uint64_t packets_ = 0;
  /// Live instrumentation (null until set_stats).
  sim::Histogram* transfer_latency_h_ = nullptr;
  std::vector<sim::Counter*> router_flits_;
};

}  // namespace ara::noc
