// A mesh router: five output ports (four directions + local ejection), each
// modelled as a SharedLink. Input buffering and VC allocation are abstracted
// into the per-hop pipeline latency; contention appears as output-port
// serialization, which is the first-order effect for the traffic patterns
// the paper studies (DMA streams to/from memory controllers).
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "common/types.h"
#include "sim/shared_link.h"

namespace ara::noc {

enum class Direction : std::uint8_t { kEast = 0, kWest, kNorth, kSouth, kLocal };
inline constexpr std::size_t kNumPorts = 5;

class Router {
 public:
  Router(NodeId id, std::uint32_t x, std::uint32_t y,
         double link_bytes_per_cycle, double local_bytes_per_cycle,
         Tick router_latency);

  NodeId id() const { return id_; }
  std::uint32_t x() const { return x_; }
  std::uint32_t y() const { return y_; }

  /// Output port toward `dir`. All five ports always exist; edge ports that
  /// point off-mesh are never routed to.
  sim::SharedLink& port(Direction dir) {
    return *ports_[static_cast<std::size_t>(dir)];
  }
  const sim::SharedLink& port(Direction dir) const {
    return *ports_[static_cast<std::size_t>(dir)];
  }

  /// Total bytes forwarded through this router (all ports).
  Bytes total_bytes() const;

 private:
  NodeId id_;
  std::uint32_t x_, y_;
  std::array<std::unique_ptr<sim::SharedLink>, kNumPorts> ports_;
};

}  // namespace ara::noc
