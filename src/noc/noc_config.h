// Configuration for the chip-wide network-on-chip.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ara::noc {

struct MeshConfig {
  /// Mesh dimensions in routers.
  std::uint32_t width = 8;
  std::uint32_t height = 8;
  /// Per-direction link bandwidth in bytes per cycle (16-byte flits at the
  /// 2 GHz core clock = 32 B per 1 GHz accelerator cycle, matching the
  /// GEMS-based infrastructure the paper used).
  double link_bytes_per_cycle = 32.0;
  /// Router pipeline latency per hop, in cycles.
  Tick router_latency = 3;
  /// Local injection/ejection port bandwidth in bytes per cycle. This is the
  /// island<->NoC interface the paper identifies as the system bottleneck
  /// (Sec. 5.5), so it is a first-class knob.
  double local_port_bytes_per_cycle = 32.0;
  /// Flit width in bytes, for energy accounting.
  Bytes flit_bytes = 16;
  /// Payload chunk size used when pipelining large transfers across hops.
  Bytes chunk_bytes = 64;
};

}  // namespace ara::noc
