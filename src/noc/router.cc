#include "noc/router.h"

#include <string>

namespace ara::noc {

namespace {
const char* dir_name(Direction d) {
  switch (d) {
    case Direction::kEast:
      return "E";
    case Direction::kWest:
      return "W";
    case Direction::kNorth:
      return "N";
    case Direction::kSouth:
      return "S";
    case Direction::kLocal:
      return "L";
  }
  return "?";
}
}  // namespace

Router::Router(NodeId id, std::uint32_t x, std::uint32_t y,
               double link_bytes_per_cycle, double local_bytes_per_cycle,
               Tick router_latency)
    : id_(id), x_(x), y_(y) {
  for (std::size_t p = 0; p < kNumPorts; ++p) {
    const auto dir = static_cast<Direction>(p);
    const double bw = dir == Direction::kLocal ? local_bytes_per_cycle
                                               : link_bytes_per_cycle;
    ports_[p] = std::make_unique<sim::SharedLink>(
        "noc.r" + std::to_string(id) + "." + dir_name(dir), bw,
        router_latency);
  }
}

Bytes Router::total_bytes() const {
  Bytes sum = 0;
  for (const auto& p : ports_) sum += p->total_bytes();
  return sum;
}

}  // namespace ara::noc
