#include "noc/mesh.h"

#include <algorithm>
#include <cstdlib>

#include "common/config_error.h"

namespace ara::noc {

Mesh::Mesh(const MeshConfig& config) : config_(config) {
  config_check(config.width > 0 && config.height > 0,
               "mesh dimensions must be positive");
  config_check(config.chunk_bytes > 0, "mesh chunk size must be positive");
  routers_.reserve(static_cast<std::size_t>(config.width) * config.height);
  for (std::uint32_t y = 0; y < config.height; ++y) {
    for (std::uint32_t x = 0; x < config.width; ++x) {
      routers_.push_back(std::make_unique<Router>(
          node_at(x, y), x, y, config.link_bytes_per_cycle,
          config.local_port_bytes_per_cycle, config.router_latency));
    }
  }
}

std::uint32_t Mesh::hops(NodeId src, NodeId dst) const {
  const auto dx = static_cast<std::int64_t>(x_of(src)) - x_of(dst);
  const auto dy = static_cast<std::int64_t>(y_of(src)) - y_of(dst);
  return static_cast<std::uint32_t>(std::llabs(dx) + std::llabs(dy));
}

std::vector<Mesh::Hop> Mesh::route(NodeId src, NodeId dst) const {
  std::vector<Hop> hops;
  std::uint32_t x = x_of(src), y = y_of(src);
  const std::uint32_t tx = x_of(dst), ty = y_of(dst);
  // X first, then Y (deterministic, deadlock-free dimension order).
  while (x != tx) {
    const Direction d = tx > x ? Direction::kEast : Direction::kWest;
    hops.push_back({node_at(x, y), d});
    x = tx > x ? x + 1 : x - 1;
  }
  while (y != ty) {
    const Direction d = ty > y ? Direction::kSouth : Direction::kNorth;
    hops.push_back({node_at(x, y), d});
    y = ty > y ? y + 1 : y - 1;
  }
  hops.push_back({dst, Direction::kLocal});  // ejection
  return hops;
}

Tick Mesh::transfer(Tick ready_at, NodeId src, NodeId dst, Bytes bytes) {
  config_check(src < node_count() && dst < node_count(),
               "mesh transfer endpoints out of range");
  if (bytes == 0) return ready_at;
  const auto path = route(src, dst);

  // Flit accounting for the energy model: every chunk is flitized on every
  // hop it traverses.
  const auto flits_total = ceil_div<Bytes>(bytes, config_.flit_bytes);
  flit_hops_ += flits_total * path.size();
  bytes_injected_ += bytes;
  ++packets_;
  if (!router_flits_.empty()) {
    for (const auto& hop : path) router_flits_[hop.router]->inc(flits_total);
  }

  Tick last_arrival = ready_at;
  Bytes remaining = bytes;
  // Chunks pipeline: chunk n enters hop h as soon as the link is free; the
  // per-link FIFO (SharedLink) provides serialization at each hop.
  Tick chunk_ready = ready_at;
  while (remaining > 0) {
    const Bytes chunk = std::min<Bytes>(remaining, config_.chunk_bytes);
    Tick t = chunk_ready;
    for (const auto& hop : path) {
      t = routers_[hop.router]->port(hop.out).submit(t, chunk);
    }
    last_arrival = std::max(last_arrival, t);
    remaining -= chunk;
    // The next chunk can enter the first hop immediately; SharedLink FIFO
    // order enforces serialization on each link.
  }
  if (transfer_latency_h_ != nullptr) {
    transfer_latency_h_->record(last_arrival - ready_at);
  }
  return last_arrival;
}

void Mesh::set_stats(sim::StatRegistry& reg) {
  transfer_latency_h_ = &reg.histogram("noc.transfer_latency",
                                       /*bucket_width=*/16, /*buckets=*/128);
  router_flits_.assign(routers_.size(), nullptr);
  for (std::size_t n = 0; n < routers_.size(); ++n) {
    router_flits_[n] =
        &reg.counter("noc.router." + std::to_string(n) + ".flits");
  }
}

double Mesh::max_link_utilization(Tick elapsed) const {
  double peak = 0.0;
  for (const auto& r : routers_) {
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      peak = std::max(
          peak, r->port(static_cast<Direction>(p)).utilization(elapsed));
    }
  }
  return peak;
}

}  // namespace ara::noc
