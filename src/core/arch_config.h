// ArchConfig: full description of one simulated accelerator-rich chip —
// the design point the DSE sweeps (paper Sec. 3.2 / 4).
#pragma once

#include <cstdint>
#include <string>

#include "abc/abc.h"
#include "abc/gam.h"
#include "island/island_config.h"
#include "mem/memory_system.h"
#include "noc/noc_config.h"

namespace ara::core {

struct ArchConfig {
  /// Number of ABB islands (the paper sweeps 3-24 with 120 ABBs fixed).
  std::uint32_t num_islands = 8;
  /// Total ABBs across the chip, distributed uniformly over islands using
  /// the paper's mix (78 poly / 18 divide / 9 sqrt / 6 power / 9 sum).
  std::uint32_t total_abbs = 120;

  island::IslandConfig island;
  noc::MeshConfig mesh;
  mem::MemorySystemConfig mem;

  /// CHARM-style composition vs ARC-style monolithic accelerators.
  abc::ExecutionMode mode = abc::ExecutionMode::kComposable;
  /// Ablation: per-task placement instead of atomic composition.
  bool force_per_task = false;
  /// Monolithic mode: dedicated accelerator instances (0 = one/island).
  std::uint32_t mono_instances = 0;

  std::uint32_t num_cores = 8;
  std::uint32_t max_jobs_in_flight = 32;
  abc::GamPolicy gam_policy = abc::GamPolicy::kFifo;
  /// Collect a task-level execution trace (exported via
  /// System::write_trace as Chrome trace-event JSON).
  bool trace_enabled = false;
  /// Cap on buffered trace events; once reached, further events are counted
  /// in TraceCollector::dropped() instead of stored.
  std::size_t trace_capacity = 1u << 20;
  /// Period, in ticks, of the counter-track sampler feeding the trace
  /// (queue depths, link utilization). 0 disables sampling.
  Tick trace_sample_interval = 256;
  Tick gam_request_latency = 10;
  Tick interrupt_overhead = 50;

  /// Throws ConfigError when internally inconsistent.
  void validate() const;

  /// ABBs per island (validate() guarantees exact divisibility).
  std::uint32_t abbs_per_island() const { return total_abbs / num_islands; }

  /// One-line human-readable description of the design point.
  std::string summary() const;

  /// The paper's baseline island design (Sec. 5): proxy crossbar
  /// SPM<->DMA network, conservative (exact) SPM porting, no SPM sharing.
  static ArchConfig paper_baseline(std::uint32_t islands);

  /// A ring-network design point.
  static ArchConfig ring_design(std::uint32_t islands, std::uint32_t rings,
                                Bytes link_bytes);

  /// The best configuration found by the paper's DSE (Sec. 5.8): 24
  /// islands, 2-ring SPM<->DMA network with 32-byte links, no sharing,
  /// exact SPM ports.
  static ArchConfig best_config();
};

}  // namespace ara::core
