// RunResult: everything a simulation run reports — timing, energy and area
// breakdowns, utilizations, and derived figures of merit (performance,
// performance/energy, performance/area) used by the paper's Figures 6-10.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "common/types.h"

namespace ara::core {

struct EnergyBreakdown {
  double abb_j = 0;        // ABB compute engines (dynamic)
  double spm_j = 0;        // scratch-pad accesses
  double abb_spm_xbar_j = 0;
  double island_net_j = 0; // SPM<->DMA network
  double dma_j = 0;
  double noc_j = 0;
  double l2_j = 0;
  double dram_j = 0;
  double mono_j = 0;       // monolithic-accelerator compute (ARC mode)
  double leakage_j = 0;
  /// Platform floor (host cores idle, uncore, DRAM background, board) —
  /// included because the paper's CMP energy numbers are machine-level, so
  /// the accelerator side must carry the same fixed costs.
  double platform_j = 0;
  double total() const {
    return abb_j + spm_j + abb_spm_xbar_j + island_net_j + dma_j + noc_j +
           l2_j + dram_j + mono_j + leakage_j + platform_j;
  }

  /// Exact (bitwise) field equality — determinism checks, not tolerance
  /// comparison. Same config + workload + seed must reproduce every joule.
  friend bool operator==(const EnergyBreakdown&,
                         const EnergyBreakdown&) = default;
};

struct AreaBreakdown {
  double islands_mm2 = 0;
  double noc_mm2 = 0;
  double l2_mm2 = 0;
  double mc_mm2 = 0;
  double total() const { return islands_mm2 + noc_mm2 + l2_mm2 + mc_mm2; }

  friend bool operator==(const AreaBreakdown&, const AreaBreakdown&) = default;
};

struct RunResult {
  std::string workload;
  std::string config;
  Tick makespan = 0;
  std::uint64_t jobs = 0;

  EnergyBreakdown energy;
  AreaBreakdown area;

  double avg_abb_utilization = 0;
  double peak_abb_utilization = 0;
  double l2_hit_rate = 0;
  Bytes dram_bytes = 0;
  std::uint64_t chains_direct = 0;
  std::uint64_t chains_spilled = 0;
  std::uint64_t tasks_queued = 0;
  double noc_peak_link_utilization = 0;

  /// Job latency distribution (cycles): mean / median / p95 / worst.
  double job_latency_mean = 0;
  Tick job_latency_p50 = 0;
  Tick job_latency_p95 = 0;
  Tick job_latency_max = 0;

  /// Wall-clock of the simulated execution in seconds.
  double seconds() const;
  /// Throughput: kernel invocations per second.
  double performance() const;
  /// Performance per unit energy (Fig. 8's metric): throughput divided by
  /// total energy, (inv/s)/J. For a fixed job count this is ~1/(t^2 * P),
  /// which is why the paper's Fig. 8 gains track the square of the Fig. 7
  /// performance gains.
  double perf_per_energy() const;
  /// Invocations per second per mm^2 of island area (compute density,
  /// Fig. 9 normalizes per island area since everything else is fixed).
  double perf_per_island_area() const;

  void print(std::ostream& os) const;

  /// Exact field equality: the determinism contract is that serial and
  /// parallel sweeps produce bit-identical results, so no epsilon.
  friend bool operator==(const RunResult&, const RunResult&) = default;
};

}  // namespace ara::core
