#include "core/system.h"

#include <algorithm>

#include "check/check.h"
#include "common/config_error.h"
#include "power/energy_accounting.h"
#include "sim/shard.h"

namespace ara::core {

System::~System() = default;

System::System(const ArchConfig& config) : config_(config) {
  config_.validate();
  mesh_ = std::make_unique<noc::Mesh>(config_.mesh);
  place_components();
  memory_ = std::make_unique<mem::MemorySystem>(*mesh_, config_.mem, l2_nodes_,
                                                mc_nodes_);
  build_islands();

  abc::AbcConfig ac;
  ac.mode = config_.mode;
  ac.force_per_task = config_.force_per_task;
  ac.mono_instances = config_.mono_instances;
  abc_ = std::make_unique<abc::Abc>(sim_, *memory_, island_ptrs_, ac);

  abc::GamConfig gc;
  gc.node = gam_node_;
  gc.max_jobs_in_flight = config_.max_jobs_in_flight;
  gc.policy = config_.gam_policy;
  gc.request_latency = config_.gam_request_latency;
  gc.interrupt_overhead = config_.interrupt_overhead;
  gam_ = std::make_unique<abc::Gam>(sim_, *mesh_, *abc_, gc);

  setup_observability();
  if (check::enabled()) enable_invariant_checker();
}

void System::enable_invariant_checker() {
  if (checker_ == nullptr) {
    checker_ = std::make_unique<check::InvariantChecker>(*this);
  }
}

void System::setup_observability() {
  mesh_->set_stats(stats_);
  memory_->set_stats(stats_);
  for (auto& isl : islands_) isl->set_stats(stats_);
  abc_->set_stats(stats_);
  gam_->set_stats(stats_);

  if (!config_.trace_enabled) return;
  trace_.set_capacity(config_.trace_capacity);
  abc_->set_trace(&trace_);
  gam_->set_trace(&trace_);
  for (auto& isl : islands_) isl->set_trace(&trace_);

  // Name every track so the viewer shows "island 3 / slot 2: divide"
  // instead of raw pid/tid numbers.
  for (IslandId i = 0; i < islands_.size(); ++i) {
    trace_.name_process(i, "island " + std::to_string(i));
    const auto& isl = *islands_[i];
    for (AbbId a = 0; a < isl.num_abbs(); ++a) {
      const auto& e = isl.engine(a);
      trace_.name_thread(
          i, a,
          "slot " + std::to_string(a) + ": " +
              (e.is_fabric() ? "fabric" : abb::kind_name(e.kind())));
    }
    trace_.name_thread(i, sim::kTraceTidDma, "dma engine");
  }
  trace_.name_process(sim::kTracePidMem, "shared memory");
  trace_.name_process(sim::kTracePidNoc, "noc");
  trace_.name_process(sim::kTracePidGam, "gam");
  trace_.name_process(sim::kTracePidSim, "simulator");
}

void System::sample_trace_counters() {
  const Tick now = sim_.now();
  trace_.record_counter("gam queue", sim::kTracePidGam, now, "jobs",
                        static_cast<double>(gam_->queue_depth()));
  trace_.record_counter("abc pending", sim::kTracePidGam, now, "tasks",
                        static_cast<double>(abc_->pending_depth()));
  trace_.record_counter("event queue", sim::kTracePidSim, now, "events",
                        static_cast<double>(sim_.pending()));
  trace_.record_counter("noc peak link util", sim::kTracePidNoc, now, "util",
                        now == 0 ? 0.0 : mesh_->max_link_utilization(now));
  // Reschedule only while other work is pending, so the sampler never keeps
  // the event queue alive on its own.
  if (sim_.pending() > 0) {
    sim_.schedule_in(
        config_.trace_sample_interval, [this] { sample_trace_counters(); },
        sim::EventKind::kTraceSampler);
  }
}

void System::place_components() {
  auto& m = *mesh_;
  // Fig. 4-style floorplan on the 8x8 mesh:
  //  - memory controllers at the corners,
  //  - shared L2 banks in columns 2 and 5,
  //  - GAM at (3,3), cores filling the remaining centre nodes,
  //  - islands around the periphery (columns 0, 1, 6, 7, rows 1-6).
  mc_nodes_ = {m.node_at(0, 0), m.node_at(7, 0), m.node_at(0, 7),
               m.node_at(7, 7)};
  config_check(config_.mem.num_memory_controllers == mc_nodes_.size(),
               "placement supports exactly 4 memory controllers");

  for (std::uint32_t y = 0; y < 8; ++y) l2_nodes_.push_back(m.node_at(2, y));
  for (std::uint32_t y = 0; y < 8; ++y) l2_nodes_.push_back(m.node_at(5, y));
  config_check(config_.mem.num_l2_banks == l2_nodes_.size(),
               "placement supports exactly 16 L2 banks");

  gam_node_ = m.node_at(3, 3);
  for (std::uint32_t x : {3u, 4u}) {
    for (std::uint32_t y : {0u, 1u, 2u, 4u}) {
      core_nodes_.push_back(m.node_at(x, y));
    }
  }
  config_check(config_.num_cores <= core_nodes_.size(),
               "too many cores for the floorplan");
  core_nodes_.resize(config_.num_cores);

  for (std::uint32_t x : {0u, 1u, 6u, 7u}) {
    for (std::uint32_t y = 1; y <= 6; ++y) {
      island_nodes_.push_back(m.node_at(x, y));
    }
  }
  config_check(config_.num_islands <= island_nodes_.size(),
               "too many islands for the floorplan");
  island_nodes_.resize(config_.num_islands);
}

void System::build_islands() {
  // Deal the paper's ABB mix uniformly across islands: the global kind list
  // is strided so each island receives a proportional share (Sec. 4).
  const auto mix = abb::scaled_mix(config_.total_abbs);
  std::vector<abb::AbbKind> global;
  global.reserve(config_.total_abbs);
  for (std::size_t k = 0; k < abb::kNumAsicAbbKinds; ++k) {
    for (std::uint32_t i = 0; i < mix.count[k]; ++i) {
      global.push_back(abb::asic_kinds()[k]);
    }
  }
  const std::uint32_t n = config_.num_islands;
  island_abbs_.assign(n, {});
  for (std::uint32_t i = 0; i < global.size(); ++i) {
    island_abbs_[i % n].push_back(global[i]);
  }

  for (IslandId i = 0; i < n; ++i) {
    islands_.push_back(std::make_unique<island::Island>(
        i, *mesh_, island_nodes_[i], *memory_, config_.island,
        island_abbs_[i]));
    island_ptrs_.push_back(islands_.back().get());
  }
}

double System::islands_area_mm2() const {
  double sum = 0;
  for (const auto& isl : islands_) sum += isl->total_area_mm2();
  return sum;
}

RunResult System::run(const workloads::Workload& workload) {
  const auto* dfg = &workload.dfg;
  config_check(dfg->finalized() && !dfg->empty(),
               "workload DFG must be finalized and non-empty");

  // Rotated input/output tile buffers (controls the L2 working set).
  const std::uint32_t rotation = std::max<std::uint32_t>(
      1, std::min(workload.buffer_rotation, workload.invocations));
  std::vector<Addr> in_bufs(rotation), out_bufs(rotation);
  const Bytes in_bytes = std::max<Bytes>(dfg->total_mem_in(), kBlockBytes);
  const Bytes out_bytes = std::max<Bytes>(dfg->total_mem_out(), kBlockBytes);
  for (std::uint32_t r = 0; r < rotation; ++r) {
    in_bufs[r] = memory_->allocate(in_bytes);
    out_bufs[r] = memory_->allocate(out_bytes);
    // BiN: pin the streaming buffers into the NUCA L2 (budget permitting).
    memory_->pin_buffer(in_bufs[r], in_bytes);
    memory_->pin_buffer(out_bufs[r], out_bytes);
  }

  if (checker_ != nullptr) checker_->begin_run(workload);

  std::uint32_t submitted = 0;
  std::uint32_t completed = 0;
  Tick makespan = 0;

  // Self-sustaining submission window: `concurrency` invocations in flight,
  // refilled from each completion (tile pipeline on the cores).
  std::function<void()> submit_next = [&] {
    if (submitted >= workload.invocations) return;
    const std::uint32_t i = submitted++;
    const NodeId origin = core_nodes_[i % core_nodes_.size()];
    gam_->submit(dfg, in_bufs[i % rotation], out_bufs[i % rotation], origin,
                 [&](JobId, Tick done) {
                   ++completed;
                   makespan = std::max(makespan, done);
                   submit_next();
                 });
  };
  const std::uint32_t initial =
      std::min(workload.concurrency, workload.invocations);
  for (std::uint32_t i = 0; i < initial; ++i) submit_next();

  if (config_.trace_enabled && config_.trace_sample_interval > 0) {
    sim_.schedule_in(
        config_.trace_sample_interval, [this] { sample_trace_counters(); },
        sim::EventKind::kTraceSampler);
  }

  run_kernel();
  config_check(completed == workload.invocations,
               "simulation drained with incomplete jobs (deadlock?)");

  RunResult r;
  r.workload = workload.name;
  r.config = config_.summary();
  r.makespan = makespan;
  r.jobs = completed;
  r.energy =
      power::collect_energy(island_ptrs_, *mesh_, *memory_, *abc_, makespan);
  r.area = power::collect_area(island_ptrs_, *mesh_, *memory_);

  double util_sum = 0;
  for (const auto& isl : islands_) {
    util_sum += isl->avg_abb_utilization(makespan);
    r.peak_abb_utilization =
        std::max(r.peak_abb_utilization, isl->peak_abb_utilization(makespan));
  }
  r.avg_abb_utilization = util_sum / static_cast<double>(islands_.size());
  if (config_.mode == abc::ExecutionMode::kMonolithic && makespan > 0) {
    // Monolithic mode: "utilization" is the fused accelerator's busy share.
    double busy = 0;
    for (std::size_t i = 0; i < abc_->mono_instance_count(); ++i) {
      busy += static_cast<double>(abc_->mono_busy_cycles(i));
    }
    r.avg_abb_utilization =
        busy / static_cast<double>(makespan) /
        static_cast<double>(abc_->mono_instance_count());
  }
  r.l2_hit_rate = memory_->l2_hit_rate();
  r.dram_bytes = memory_->dram_bytes();
  r.chains_direct = abc_->chains_direct();
  r.chains_spilled = abc_->chains_spilled();
  r.tasks_queued = abc_->tasks_queued();
  r.noc_peak_link_utilization = mesh_->max_link_utilization(makespan);
  const auto& lat = gam_->job_latency();
  r.job_latency_mean = lat.mean();
  r.job_latency_p50 = lat.percentile(0.50);
  r.job_latency_p95 = lat.percentile(0.95);
  r.job_latency_max = lat.max_seen();

  snapshot_stats(makespan);
  if (checker_ != nullptr) checker_->end_run(r);
  return r;
}

void System::run_kernel() {
  // The shard plan is fixed by the architecture: one site per island plus
  // the hub (GAM/NoC/MC) as site 0, with the NoC hop latency as the
  // conservative lookahead. Today every model event lives on the hub — the
  // composer orchestrates islands synchronously — so the plan has no cross
  // edges and the runner collapses to one mega-window per site; the
  // island-affine DNN/systolic workloads (ROADMAP item 3) are the first
  // tenant of real cross traffic. Telemetry below is identical on both
  // paths by construction, which the shard_test battery pins.
  const bool had_work = sim_.pending() > 0;
  if (shards_ == 1) {
    sim_.run();
    if (had_work) {
      shard_windows_ += 1;
      shard_idle_site_windows_ += config_.num_islands;
    }
    return;
  }
  sim::ShardOptions so;
  so.sites = 1 + config_.num_islands;
  so.lookahead = std::max<Tick>(1, config_.mesh.router_latency);
  so.workers = shards_;
  so.cross_traffic = false;
  sim::ShardedSimulator sharded(so, &sim_);
  sharded.run();
  shard_windows_ += sharded.windows();
  shard_cross_sent_ += sharded.cross_sent();
  shard_cross_delivered_ += sharded.cross_delivered();
  shard_channel_peak_ =
      std::max<std::uint64_t>(shard_channel_peak_, sharded.channel_peak());
  shard_idle_site_windows_ += sharded.idle_site_windows();
}

void System::snapshot_stats(Tick makespan) {
  stats_.set_counter("sim.ticks", makespan);
  stats_.set_counter("sim.events", sim_.events_processed());
  const auto& kinds = sim_.kind_stats();
  for (std::size_t k = 0; k < sim::kNumEventKinds; ++k) {
    stats_.set_counter(
        std::string("sim.events.") +
            sim::event_kind_name(static_cast<sim::EventKind>(k)),
        kinds[k].count);
  }
  stats_.set_counter("sim.shard.sites", shard_sites());
  stats_.set_counter("sim.shard.windows", shard_windows_);
  stats_.set_counter("sim.shard.cross.sent", shard_cross_sent_);
  stats_.set_counter("sim.shard.cross.delivered", shard_cross_delivered_);
  stats_.set_counter("sim.shard.channel.peak", shard_channel_peak_);
  stats_.set_counter("sim.shard.idle_site_windows", shard_idle_site_windows_);
  stats_.set_counter("noc.flit_hops", mesh_->total_flit_hops());
  stats_.set_counter("noc.bytes_injected", mesh_->total_bytes_injected());
  stats_.set_counter("noc.packets", mesh_->total_packets());
  memory_->snapshot_stats(stats_);
  for (const auto& isl : islands_) isl->snapshot_stats(stats_);
  abc_->snapshot_stats(stats_);
  gam_->snapshot_stats(stats_);
  if (config_.trace_enabled) {
    stats_.set_counter("trace.events", trace_.size());
    stats_.set_counter("trace.dropped", trace_.dropped());
  }
}

}  // namespace ara::core
