#include "core/pipeline.h"

#include <algorithm>
#include <functional>

#include "common/config_error.h"
#include "power/energy_accounting.h"

namespace ara::core {

PipelineResult run_pipeline(System& system,
                            const std::vector<workloads::Workload>& stages,
                            std::uint32_t tiles) {
  config_check(!stages.empty(), "pipeline needs at least one stage");
  config_check(tiles > 0, "pipeline needs at least one tile");
  for (const auto& s : stages) {
    config_check(s.dfg.finalized() && !s.dfg.empty(),
                 "pipeline stage DFG must be finalized");
  }
  const std::size_t S = stages.size();
  auto& mem = system.memory();

  // Inter-stage buffers, rotated per tile: buf[s][r] feeds stage s; stage
  // s writes buf[s+1][r]. Sized to cover both the producer's output and
  // the consumer's input footprint.
  const std::uint32_t rotation =
      std::max<std::uint32_t>(1, std::min(stages.front().buffer_rotation,
                                          tiles));
  std::vector<std::vector<Addr>> bufs(S + 1,
                                      std::vector<Addr>(rotation, 0));
  for (std::size_t s = 0; s <= S; ++s) {
    Bytes bytes = kBlockBytes;
    if (s < S) bytes = std::max(bytes, stages[s].dfg.total_mem_in());
    if (s > 0) bytes = std::max(bytes, stages[s - 1].dfg.total_mem_out());
    for (std::uint32_t r = 0; r < rotation; ++r) {
      bufs[s][r] = mem.allocate(bytes);
      mem.pin_buffer(bufs[s][r], bytes);
    }
  }

  std::uint32_t submitted = 0;
  std::uint32_t completed = 0;
  Tick makespan = 0;
  std::vector<double> latency_sum(S, 0.0);
  std::vector<std::uint64_t> stage_runs(S, 0);
  // Per-(stage, tile) issue stamps for latency accounting.
  std::vector<std::vector<Tick>> issue_at(S,
                                          std::vector<Tick>(tiles, 0));

  std::function<void(std::uint32_t, std::size_t)> launch_stage;
  std::function<void()> submit_next_tile;

  launch_stage = [&](std::uint32_t tile, std::size_t s) {
    issue_at[s][tile] = system.simulator().now();
    const NodeId origin =
        system.core_node(tile % system.config().num_cores);
    system.gam().submit(
        &stages[s].dfg, bufs[s][tile % rotation],
        bufs[s + 1][tile % rotation], origin,
        [&, tile, s](JobId, Tick done) {
          latency_sum[s] += static_cast<double>(done - issue_at[s][tile]);
          ++stage_runs[s];
          if (s + 1 < S) {
            launch_stage(tile, s + 1);
          } else {
            ++completed;
            makespan = std::max(makespan, done);
            submit_next_tile();
          }
        });
  };

  submit_next_tile = [&] {
    if (submitted >= tiles) return;
    launch_stage(submitted++, 0);
  };

  const std::uint32_t initial =
      std::min(stages.front().concurrency, tiles);
  for (std::uint32_t i = 0; i < initial; ++i) submit_next_tile();
  system.simulator().run();
  config_check(completed == tiles, "pipeline drained with incomplete tiles");

  PipelineResult result;
  result.tiles = tiles;
  result.overall.workload = "pipeline";
  result.overall.config = system.config().summary();
  result.overall.makespan = makespan;
  result.overall.jobs = tiles;
  {
    std::vector<island::Island*> islands;
    for (IslandId i = 0; i < system.island_count(); ++i) {
      islands.push_back(&system.island(i));
    }
    result.overall.energy = power::collect_energy(
        islands, system.mesh(), system.memory(), system.composer(), makespan);
    result.overall.area =
        power::collect_area(islands, system.mesh(), system.memory());
    double util = 0;
    for (auto* isl : islands) {
      util += isl->avg_abb_utilization(makespan);
      result.overall.peak_abb_utilization =
          std::max(result.overall.peak_abb_utilization,
                   isl->peak_abb_utilization(makespan));
    }
    result.overall.avg_abb_utilization =
        util / static_cast<double>(islands.size());
  }
  result.overall.l2_hit_rate = system.memory().l2_hit_rate();
  result.overall.dram_bytes = system.memory().dram_bytes();
  result.overall.chains_direct = system.composer().chains_direct();
  result.overall.chains_spilled = system.composer().chains_spilled();

  for (std::size_t s = 0; s < S; ++s) {
    PipelineStageStats st;
    st.name = stages[s].name;
    st.invocations = stage_runs[s];
    st.mean_latency_cycles =
        stage_runs[s] == 0 ? 0.0
                           : latency_sum[s] / static_cast<double>(stage_runs[s]);
    result.stages.push_back(std::move(st));
  }
  return result;
}

}  // namespace ara::core
