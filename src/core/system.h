// System: assembles one simulated accelerator-rich chip — mesh NoC, shared
// L2 banks, memory controllers, ABB islands, the GAM/ABC — places the
// components on the 8x8 mesh (Fig. 4 style floorplan), and drives workload
// runs to completion.
//
// A System instance is single-use per experiment: construct, run one
// workload, read the RunResult. (Stats accumulate monotonically; running a
// second workload on the same instance measures the combination.)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "abc/abc.h"
#include "abc/gam.h"
#include "core/arch_config.h"
#include "core/run_result.h"
#include "island/island.h"
#include "mem/memory_system.h"
#include "noc/mesh.h"
#include "sim/event_queue.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "workloads/workload.h"

namespace ara::check {
class InvariantChecker;
}  // namespace ara::check

namespace ara::core {

class System {
 public:
  explicit System(const ArchConfig& config);
  ~System();

  /// Execute `workload` to completion; returns the measured results.
  RunResult run(const workloads::Workload& workload);

  /// Worker threads for the partitioned event kernel (--shards/ARA_SHARDS).
  /// 1 (default) runs the classic serial kernel; N > 1 drives the run
  /// through sim::ShardedSimulator with N workers; 0 resolves to the host's
  /// hardware concurrency. Purely an execution-strategy knob: results,
  /// stats and traces are byte-identical for every value (the differential
  /// battery in tests/shard_test.cc and ara_fuzz enforces this). The
  /// partition itself — one site per island plus a hub site — is fixed by
  /// the architecture, not by this count; see DESIGN.md "Partitioned
  /// kernel".
  void set_shards(unsigned shards) { shards_ = shards; }
  unsigned shards() const { return shards_; }

  /// Cumulative partitioned-kernel telemetry (the sim.shard.* counters).
  /// All values are deterministic functions of config + workload — never of
  /// the shard/worker count — or MetricsSnapshot byte-identity across
  /// --shards values would break.
  std::uint64_t shard_sites() const { return 1 + config_.num_islands; }
  std::uint64_t shard_windows() const { return shard_windows_; }
  std::uint64_t cross_shard_sent() const { return shard_cross_sent_; }
  std::uint64_t cross_shard_delivered() const {
    return shard_cross_delivered_;
  }
  std::uint64_t shard_channel_peak() const { return shard_channel_peak_; }
  std::uint64_t shard_idle_site_windows() const {
    return shard_idle_site_windows_;
  }

  /// --- component access (tests, benches) ---
  const ArchConfig& config() const { return config_; }
  sim::Simulator& simulator() { return sim_; }
  noc::Mesh& mesh() { return *mesh_; }
  mem::MemorySystem& memory() { return *memory_; }
  island::Island& island(IslandId i) { return *islands_[i]; }
  std::size_t island_count() const { return islands_.size(); }
  abc::Abc& composer() { return *abc_; }
  abc::Gam& gam() { return *gam_; }
  NodeId core_node(std::uint32_t core) const { return core_nodes_[core]; }
  NodeId island_node(IslandId i) const { return island_nodes_[i]; }
  NodeId gam_node() const { return gam_node_; }

  /// Per-kind ABB slot layout used for island `i` (for tests).
  const std::vector<abb::AbbKind>& island_abbs(IslandId i) const {
    return island_abbs_[i];
  }

  /// Total island area of this design point (available pre-run).
  double islands_area_mm2() const;

  /// Task-level trace (empty unless config.trace_enabled).
  const sim::TraceCollector& trace() const { return trace_; }
  /// Write the collected trace as Chrome trace-event JSON.
  void write_trace(std::ostream& os) const { trace_.write_json(os); }

  /// Every subsystem's stats, namespaced "<subsystem>.<id>.<stat>". Live
  /// histograms (latencies) fill during run(); component totals are rolled
  /// up when run() returns. Contents are fully deterministic.
  sim::StatRegistry& stats() { return stats_; }
  const sim::StatRegistry& stats() const { return stats_; }

  /// Runtime invariant checker (ara::check). Attached automatically at
  /// construction when check::enabled() (ARA_CHECK / --check); every run()
  /// is then bracketed by conservation-law and allocation audits, with live
  /// samples riding the simulator's observer hook. Zero cost when off.
  void enable_invariant_checker();
  check::InvariantChecker* checker() { return checker_.get(); }

 private:
  void place_components();
  void build_islands();
  /// Drain the event queue for one run: the serial kernel at shards_ == 1,
  /// the partitioned runner otherwise. Either way accumulates the
  /// sim.shard.* telemetry for snapshot_stats.
  void run_kernel();
  /// Wire set_stats/set_trace into every component + trace metadata.
  void setup_observability();
  /// Record one round of counter-track samples and reschedule while other
  /// events remain (so the event queue still drains at the end of a run).
  void sample_trace_counters();
  /// End-of-run roll-up of component totals into stats_.
  void snapshot_stats(Tick makespan);

  ArchConfig config_;
  sim::Simulator sim_;
  sim::StatRegistry stats_;
  std::unique_ptr<noc::Mesh> mesh_;
  std::unique_ptr<mem::MemorySystem> memory_;
  std::vector<std::unique_ptr<island::Island>> islands_;
  std::vector<island::Island*> island_ptrs_;
  std::unique_ptr<abc::Abc> abc_;
  std::unique_ptr<abc::Gam> gam_;
  std::unique_ptr<check::InvariantChecker> checker_;
  sim::TraceCollector trace_;

  std::vector<NodeId> l2_nodes_;
  std::vector<NodeId> mc_nodes_;
  std::vector<NodeId> island_nodes_;
  std::vector<NodeId> core_nodes_;
  NodeId gam_node_ = 0;
  std::vector<std::vector<abb::AbbKind>> island_abbs_;

  unsigned shards_ = 1;
  std::uint64_t shard_windows_ = 0;
  std::uint64_t shard_cross_sent_ = 0;
  std::uint64_t shard_cross_delivered_ = 0;
  std::uint64_t shard_channel_peak_ = 0;
  std::uint64_t shard_idle_site_windows_ = 0;
};

}  // namespace ara::core
