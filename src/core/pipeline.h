// Multi-kernel pipelines: the medical-imaging use case the paper's driver
// applications come from [11] — tiles flow through a sequence of kernels
// (e.g. Deblur -> Denoise -> Registration -> Segmentation), with stage
// s+1's invocation for a tile launching when stage s's completes and
// consuming the buffer it produced. Stages overlap across tiles, so the
// chip runs a software pipeline of virtual accelerators.
#pragma once

#include <vector>

#include "core/run_result.h"
#include "core/system.h"
#include "workloads/workload.h"

namespace ara::core {

struct PipelineStageStats {
  std::string name;
  std::uint64_t invocations = 0;
  /// Mean per-invocation latency of this stage, cycles.
  double mean_latency_cycles = 0;
};

struct PipelineResult {
  RunResult overall;  // makespan/energy/area of the whole pipeline run
  std::vector<PipelineStageStats> stages;
  std::uint64_t tiles = 0;
};

/// Run `tiles` tiles through the stage sequence on `system`. Stage 0's
/// concurrency bounds tiles in flight. The system must be freshly built.
PipelineResult run_pipeline(System& system,
                            const std::vector<workloads::Workload>& stages,
                            std::uint32_t tiles);

}  // namespace ara::core
