// Canonical text form + content hash of a design point.
//
// The DSE result cache (dse::ResultCache) memoizes simulation results by
// content: two sweep points with identical architecture configuration and
// workload must map to the same key, and ANY field change must produce a
// different key. canonical_text() therefore enumerates every ArchConfig /
// Workload field explicitly — adding a field to either struct without
// extending the digest is caught by tests/result_cache_test.cc's field
// coverage check. Doubles are rendered with 17 significant digits so the
// text round-trips the exact bit pattern.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/arch_config.h"
#include "workloads/workload.h"

namespace ara::core {

/// 64-bit FNV-1a over `text` (the cache's content-address hash; fast,
/// dependency-free, and stable across platforms and runs).
std::uint64_t fnv1a64(std::string_view text);

/// Deterministic, human-readable key=value rendering of every ArchConfig
/// field (one per line, fixed order).
std::string canonical_text(const ArchConfig& config);

/// Deterministic rendering of a workload's identity: invocation parameters,
/// software cost profile, and the full DFG structure (kinds, sizes, edges).
/// Two workloads with equal canonical text produce identical simulations.
std::string canonical_text(const workloads::Workload& workload);

}  // namespace ara::core
