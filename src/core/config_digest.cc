#include "core/config_digest.h"

#include <cstdio>
#include <sstream>

#include "island/island_config.h"

namespace ara::core {

namespace {

/// 17 significant digits round-trip any IEEE-754 double exactly.
void put(std::ostringstream& os, const char* key, double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << key << "=" << buf << "\n";
}

void put(std::ostringstream& os, const char* key, std::uint64_t v) {
  os << key << "=" << v << "\n";
}

void put(std::ostringstream& os, const char* key, bool v) {
  os << key << "=" << (v ? 1 : 0) << "\n";
}

void put(std::ostringstream& os, const char* key, const std::string& v) {
  os << key << "=" << v << "\n";
}

}  // namespace

std::uint64_t fnv1a64(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string canonical_text(const ArchConfig& c) {
  std::ostringstream os;
  os << "[arch]\n";
  put(os, "num_islands", std::uint64_t{c.num_islands});
  put(os, "total_abbs", std::uint64_t{c.total_abbs});
  put(os, "mode", std::uint64_t(c.mode));
  put(os, "force_per_task", c.force_per_task);
  put(os, "mono_instances", std::uint64_t{c.mono_instances});
  put(os, "num_cores", std::uint64_t{c.num_cores});
  put(os, "max_jobs_in_flight", std::uint64_t{c.max_jobs_in_flight});
  put(os, "gam_policy", std::uint64_t(c.gam_policy));
  put(os, "trace_enabled", c.trace_enabled);
  put(os, "trace_capacity", std::uint64_t{c.trace_capacity});
  put(os, "trace_sample_interval", c.trace_sample_interval);
  put(os, "gam_request_latency", c.gam_request_latency);
  put(os, "interrupt_overhead", c.interrupt_overhead);

  const auto& isl = c.island;
  os << "[island]\n";
  put(os, "net.topology", std::uint64_t(isl.net.topology));
  put(os, "net.num_rings", std::uint64_t{isl.net.num_rings});
  put(os, "net.link_bytes", isl.net.link_bytes);
  put(os, "net.ring_hop_latency", isl.net.ring_hop_latency);
  put(os, "net.xbar_base_latency", isl.net.xbar_base_latency);
  put(os, "spm_sharing", isl.spm_sharing);
  put(os, "spm_port_multiplier", std::uint64_t{isl.spm_port_multiplier});
  put(os, "base_conflict_rate", isl.base_conflict_rate);
  put(os, "dma_bytes_per_cycle", isl.dma_bytes_per_cycle);
  put(os, "dma_chunk_bytes", isl.dma_chunk_bytes);
  put(os, "fabric_blocks", std::uint64_t{isl.fabric_blocks});
  put(os, "tlb_enabled", isl.tlb_enabled);
  put(os, "tlb.entries", std::uint64_t{isl.tlb.entries});
  put(os, "tlb.page_bytes", isl.tlb.page_bytes);
  put(os, "tlb.walk_latency", isl.tlb.walk_latency);

  os << "[mesh]\n";
  put(os, "width", std::uint64_t{c.mesh.width});
  put(os, "height", std::uint64_t{c.mesh.height});
  put(os, "link_bytes_per_cycle", c.mesh.link_bytes_per_cycle);
  put(os, "router_latency", c.mesh.router_latency);
  put(os, "local_port_bytes_per_cycle", c.mesh.local_port_bytes_per_cycle);
  put(os, "flit_bytes", c.mesh.flit_bytes);
  put(os, "chunk_bytes", c.mesh.chunk_bytes);

  const auto& m = c.mem;
  os << "[mem]\n";
  put(os, "num_memory_controllers", std::uint64_t{m.num_memory_controllers});
  put(os, "num_l2_banks", std::uint64_t{m.num_l2_banks});
  put(os, "mc.bandwidth_bytes_per_cycle", m.mc.bandwidth_bytes_per_cycle);
  put(os, "mc.avg_latency", m.mc.avg_latency);
  put(os, "l2.capacity", m.l2.capacity);
  put(os, "l2.associativity", std::uint64_t{m.l2.associativity});
  put(os, "l2.block_bytes", m.l2.block_bytes);
  put(os, "l2.port_bytes_per_cycle", m.l2.port_bytes_per_cycle);
  put(os, "l2.hit_latency", m.l2.hit_latency);
  put(os, "control_bytes", m.control_bytes);
  put(os, "mc_interleave", m.mc_interleave);
  put(os, "l2_bypass", m.l2_bypass);
  put(os, "bin_pinning", m.bin_pinning);
  put(os, "bin.max_pinned_fraction", m.bin.max_pinned_fraction);
  return os.str();
}

std::string canonical_text(const workloads::Workload& w) {
  std::ostringstream os;
  os << "[workload]\n";
  put(os, "name", w.name);
  put(os, "invocations", std::uint64_t{w.invocations});
  put(os, "concurrency", std::uint64_t{w.concurrency});
  put(os, "buffer_rotation", std::uint64_t{w.buffer_rotation});
  put(os, "cmp_cycles_per_invocation", w.cmp_cycles_per_invocation);
  put(os, "cmp_parallel_eff", w.cmp_parallel_eff);

  const auto& dfg = w.dfg;
  os << "[dfg]\n";
  put(os, "name", dfg.name());
  put(os, "nodes", std::uint64_t{dfg.size()});
  for (std::size_t i = 0; i < dfg.size(); ++i) {
    const auto& n = dfg.node(static_cast<TaskId>(i));
    os << "node." << i << "=" << int(n.kind) << "," << n.elements << ","
       << n.mem_in_bytes << "," << n.mem_out_bytes << "," << n.chain_in_bytes
       << "," << (n.needs_fabric ? 1 : 0) << ",preds:";
    for (std::size_t p = 0; p < n.preds.size(); ++p) {
      if (p > 0) os << "+";
      os << n.preds[p];
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ara::core
