#include "core/run_result.h"

#include <iomanip>

#include "common/units.h"

namespace ara::core {

double RunResult::seconds() const { return ticks_to_seconds(makespan); }

double RunResult::performance() const {
  const double s = seconds();
  return s <= 0 ? 0.0 : static_cast<double>(jobs) / s;
}

double RunResult::perf_per_energy() const {
  const double e = energy.total();
  return e <= 0 ? 0.0 : performance() / e;
}

double RunResult::perf_per_island_area() const {
  return area.islands_mm2 <= 0 ? 0.0 : performance() / area.islands_mm2;
}

void RunResult::print(std::ostream& os) const {
  os << std::fixed;
  os << "run: " << workload << " on [" << config << "]\n"
     << "  makespan        " << makespan << " cycles ("
     << std::setprecision(4) << seconds() * 1e3 << " ms)\n"
     << "  jobs            " << jobs << "\n"
     << std::setprecision(3)
     << "  perf            " << performance() << " inv/s\n"
     << "  energy          " << energy.total() * 1e3 << " mJ"
     << "  (abb " << energy.abb_j * 1e3 << ", spm " << energy.spm_j * 1e3
     << ", net " << energy.island_net_j * 1e3 << ", noc "
     << energy.noc_j * 1e3 << ", dram " << energy.dram_j * 1e3 << ", leak "
     << energy.leakage_j * 1e3 << ")\n"
     << "  area            " << area.total() << " mm2 (islands "
     << area.islands_mm2 << ")\n"
     << "  abb util        avg " << avg_abb_utilization * 100 << "% peak "
     << peak_abb_utilization * 100 << "%\n"
     << "  l2 hit rate     " << l2_hit_rate * 100 << "%\n"
     << "  chains          " << chains_direct << " direct, " << chains_spilled
     << " spilled\n"
     << "  job latency     mean " << std::setprecision(0) << job_latency_mean
     << " p50 " << job_latency_p50 << " p95 " << job_latency_p95 << " max "
     << job_latency_max << " cycles\n";
}

}  // namespace ara::core
