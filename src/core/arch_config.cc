#include "core/arch_config.h"

#include <sstream>

#include "common/config_error.h"

namespace ara::core {

void ArchConfig::validate() const {
  config_check(num_islands >= 1 && num_islands <= 24,
               "num_islands must be in [1, 24] (mesh placement limit)");
  config_check(total_abbs >= num_islands, "need at least one ABB per island");
  config_check(total_abbs % num_islands == 0,
               "total_abbs must divide evenly across islands (paper Sec. 4: "
               "uniform distribution)");
  config_check(num_cores >= 1 && num_cores <= 8,
               "num_cores must be in [1, 8] (mesh placement limit)");
  config_check(island.spm_port_multiplier >= 1 &&
                   island.spm_port_multiplier <= 2,
               "SPM port multiplier is swept over {1, 2} (Sec. 3.2)");
  config_check(mesh.width == 8 && mesh.height == 8,
               "component placement assumes an 8x8 mesh");
  config_check(max_jobs_in_flight >= 1, "need a positive admission window");
}

std::string ArchConfig::summary() const {
  std::ostringstream os;
  os << num_islands << " islands x " << abbs_per_island() << " ABBs, "
     << island::topology_name(island.net.topology);
  if (island.net.topology == island::SpmDmaTopology::kRing) {
    os << " x" << island.net.num_rings;
  }
  os << " " << island.net.link_bytes << "B links"
     << ", ports x" << island.spm_port_multiplier
     << (island.spm_sharing ? ", SPM sharing" : "")
     << (mode == abc::ExecutionMode::kMonolithic ? ", monolithic" : "");
  return os.str();
}

ArchConfig ArchConfig::paper_baseline(std::uint32_t islands) {
  ArchConfig c;
  c.num_islands = islands;
  c.island.net.topology = island::SpmDmaTopology::kProxyXbar;
  c.island.net.link_bytes = 32;
  c.island.spm_sharing = false;
  c.island.spm_port_multiplier = 1;
  return c;
}

ArchConfig ArchConfig::ring_design(std::uint32_t islands, std::uint32_t rings,
                                   Bytes link_bytes) {
  ArchConfig c = paper_baseline(islands);
  c.island.net.topology = island::SpmDmaTopology::kRing;
  c.island.net.num_rings = rings;
  c.island.net.link_bytes = link_bytes;
  return c;
}

ArchConfig ArchConfig::best_config() {
  // Sec. 5.8: 24 islands, 2-ring 32-byte SPM<->DMA network, no SPM sharing,
  // no over-provisioning of SPM ports.
  return ring_design(24, 2, 32);
}

}  // namespace ara::core
