// Configuration validation error type used by ArchConfig and module configs.
#pragma once

#include <stdexcept>
#include <string>

namespace ara {

/// Thrown when a simulation configuration is internally inconsistent
/// (e.g. zero islands, an SPM port count below the ABB minimum, or an
/// unknown network topology). Configuration errors are programming errors
/// on the caller's side, so an exception (rather than a status return) is
/// appropriate: no valid simulation can be constructed.
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what);
};

/// Throws ConfigError with `message` when `ok` is false.
void config_check(bool ok, const std::string& message);

}  // namespace ara
