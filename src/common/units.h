// Unit helpers: conversions between physical units and simulator ticks.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace ara {

/// Accelerator-side clock frequency. One simulator tick == one cycle here.
inline constexpr double kAccelClockGHz = 1.0;

constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
constexpr Bytes operator""_MiB(unsigned long long v) {
  return v * 1024ull * 1024ull;
}

/// Convert a bandwidth in GB/s into bytes per accelerator cycle.
constexpr double gbps_to_bytes_per_cycle(double gb_per_s) {
  return gb_per_s / kAccelClockGHz;  // 1 GB/s at 1 GHz == 1 B/cycle
}

/// Convert ticks (cycles) to seconds.
constexpr double ticks_to_seconds(Tick t) {
  return static_cast<double>(t) / (kAccelClockGHz * 1e9);
}

/// Convert a per-op energy in picojoules to joules.
constexpr double pj_to_j(double pj) { return pj * 1e-12; }

/// Convert nanojoules to joules.
constexpr double nj_to_j(double nj) { return nj * 1e-9; }

/// Convert milliwatts of static power into joules over a tick span.
constexpr double mw_over_ticks_to_j(double mw, Tick span) {
  return mw * 1e-3 * ticks_to_seconds(span);
}

}  // namespace ara
