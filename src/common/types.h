// Strong basic types shared across the ara simulator.
#pragma once

#include <cstdint>

namespace ara {

/// Simulation time in cycles of the accelerator-side 1 GHz clock domain.
using Tick = std::uint64_t;

/// Sentinel for "never" / unscheduled.
inline constexpr Tick kTickMax = ~Tick{0};

/// Byte counts for data transfers.
using Bytes = std::uint64_t;

/// Physical address within the simulated shared address space.
using Addr = std::uint64_t;

/// Cache/DMA block size used throughout the memory system (paper Sec. 5.3:
/// the SPM<->DMA network "almost exclusively transmits data at the
/// granularity of cache blocks (64-byte) or half-blocks (32-byte)").
inline constexpr Bytes kBlockBytes = 64;

/// Identifier types. Plain integers wrapped in distinct enums would be
/// heavier than the codebase needs; we use named aliases and keep id spaces
/// separate by convention (each id is an index into its owning container).
using IslandId = std::uint32_t;
using AbbId = std::uint32_t;      // island-local ABB index
using SpmBankId = std::uint32_t;  // island-local SPM bank index
using NodeId = std::uint32_t;     // NoC node index
using TaskId = std::uint32_t;     // DFG-instance-local task index
using JobId = std::uint64_t;      // system-wide kernel invocation id

inline constexpr std::uint32_t kInvalidId = ~std::uint32_t{0};

/// Ceiling division for unsigned integers.
template <typename T>
constexpr T ceil_div(T num, T den) {
  return (num + den - 1) / den;
}

}  // namespace ara
