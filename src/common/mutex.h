// Annotated mutex + RAII guard used for all shared mutable state in ara.
//
// std::mutex / std::lock_guard carry no thread-safety attributes under
// libstdc++, so Clang's capability analysis cannot see their acquire /
// release semantics — ARA_GUARDED_BY members locked through a bare
// std::lock_guard would warn on every (correct) access. ara::common::Mutex
// is a zero-overhead wrapper that exposes those semantics to the analysis;
// MutexLock is the only sanctioned way to take it (ara_lint's no-naked-lock
// rule bans direct .lock()/.unlock() calls everywhere else).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace ara::common {

/// Exclusive capability. Same cost as std::mutex; adds the annotations the
/// analysis needs. Prefer MutexLock over calling lock()/unlock() directly.
class ARA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // The wrapper is the one place allowed to touch the raw lock interface —
  // everything else goes through MutexLock (enforced by ara_lint).
  void lock() ARA_ACQUIRE() { m_.lock(); }      // ara-lint: allow(no-naked-lock)
  void unlock() ARA_RELEASE() { m_.unlock(); }  // ara-lint: allow(no-naked-lock)
  bool try_lock() ARA_TRY_ACQUIRE(true) {
    return m_.try_lock();  // ara-lint: allow(no-naked-lock)
  }

 private:
  std::mutex m_;
};

/// RAII guard over Mutex, visible to the capability analysis as a scoped
/// capability: the guarded members are accessible exactly within the
/// guard's lexical scope.
class ARA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ARA_ACQUIRE(mu) : mu_(mu) {
    mu_.lock();  // ara-lint: allow(no-naked-lock)
  }
  ~MutexLock() ARA_RELEASE() {
    mu_.unlock();  // ara-lint: allow(no-naked-lock)
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with common::Mutex. wait() takes the Mutex
/// itself (which the caller must hold via a live MutexLock in the same
/// scope): condition_variable_any unlocks/relocks it internally, so the
/// RAII guard's invariant — locked for the guard's lexical scope — holds
/// again by the time wait() returns.
class CondVar {
 public:
  /// Blocks until notified; spurious wakeups possible, so callers loop on
  /// their predicate. Precondition: `mu` is held by this thread.
  void wait(Mutex& mu) ARA_REQUIRES(mu) { cv_.wait(mu); }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace ara::common
