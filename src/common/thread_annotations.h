// Clang thread-safety capability annotations, ARA-prefixed.
//
// These macros expand to Clang's thread-safety attributes when the compiler
// supports them and to nothing everywhere else (GCC, MSVC), so annotated
// headers stay portable. Build with
//
//   cmake -DARA_ENABLE_THREAD_SAFETY_ANALYSIS=ON   (Clang only)
//
// to compile the whole tree with -Wthread-safety and promote every analysis
// finding to an error — the static complement of the TSan tier: TSan samples
// the schedules a test run happens to execute, the capability analysis
// rejects lock-discipline violations on every path at compile time.
//
// Conventions (DESIGN.md "Static analysis" has the full catalog):
//  - shared mutable state is guarded by an ara::common::Mutex member and
//    annotated ARA_GUARDED_BY(mu_);
//  - public member functions that take the lock themselves are annotated
//    ARA_EXCLUDES(mu_); private helpers that expect it held use
//    ARA_REQUIRES(mu_);
//  - per-System simulator state (stats, trace buffers, checker ledgers) is
//    single-owner by design — one Simulator per thread, never shared — and
//    intentionally carries no annotations; the ownership rule is documented
//    at the class instead.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define ARA_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define ARA_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op outside Clang
#endif

/// Marks a type as a lockable capability ("mutex" names the capability kind
/// in diagnostics).
#define ARA_CAPABILITY(x) ARA_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (e.g. ara::common::MutexLock).
#define ARA_SCOPED_CAPABILITY ARA_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define ARA_GUARDED_BY(x) ARA_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given capability.
#define ARA_PT_GUARDED_BY(x) ARA_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function precondition: the listed capabilities must be held (exclusive /
/// shared) by the caller.
#define ARA_REQUIRES(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define ARA_REQUIRES_SHARED(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function acquires / releases the listed capabilities.
#define ARA_ACQUIRE(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ARA_ACQUIRE_SHARED(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define ARA_RELEASE(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function attempts to acquire; first argument is the success return value.
#define ARA_TRY_ACQUIRE(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function precondition: the listed capabilities must NOT be held (guards
/// against self-deadlock on non-reentrant mutexes).
#define ARA_EXCLUDES(...) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function returns a reference to the given capability.
#define ARA_RETURN_CAPABILITY(x) \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining why the pattern cannot be expressed (and expect the
/// reviewer to push back).
#define ARA_NO_THREAD_SAFETY_ANALYSIS \
  ARA_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)
