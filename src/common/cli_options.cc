#include "common/cli_options.h"

#include <cstdlib>
#include <string_view>

namespace ara::common {

namespace {

/// `--name V` / `--name=V` matcher. Returns the number of argv slots the
/// flag consumed (0 = no match) and sets `*value`. A following token that
/// is itself a `--` flag is never consumed as a value: `--metrics --trace
/// t.json` is a missing-value error for --metrics, not a metrics file
/// literally named "--trace" (use the `--name=V` form for values that
/// really start with dashes).
int match(std::string_view name, int i, int argc, char** argv,
          std::string* value) {
  const std::string_view arg = argv[i];
  if (arg.size() > name.size() && arg.compare(0, name.size(), name) == 0 &&
      arg[name.size()] == '=') {
    *value = std::string(arg.substr(name.size() + 1));
    return 1;
  }
  if (arg == name) {
    if (i + 1 >= argc ||
        std::string_view(argv[i + 1]).substr(0, 2) == "--") {
      *value = "";
      return -1;  // flag present, value missing
    }
    *value = argv[i + 1];
    return 2;
  }
  return 0;
}

/// Truthiness rule shared with check::enabled()'s ARA_CHECK handling:
/// empty, "0", "off" and "false" mean unset.
bool truthy(std::string_view v) {
  return !v.empty() && v != "0" && v != "off" && v != "false";
}

bool parse_jobs_value(const std::string& text, unsigned* out) {
  // strtoul would happily wrap "-1" to ULONG_MAX; require plain digits.
  if (text.empty() || text[0] < '0' || text[0] > '9') return false;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<unsigned>(v);
  return true;
}

}  // namespace

CliOptions CliOptions::parse(int& argc, char** argv, unsigned accept) {
  CliOptions opts;

  // Environment defaults first; explicit flags overwrite below.
  if ((accept & kJobs) != 0) {
    if (const char* s = std::getenv("ARA_JOBS")) {
      if (!parse_jobs_value(s, &opts.jobs)) {
        opts.error = "ARA_JOBS: expected a non-negative integer, got '" +
                     std::string(s) + "'";
      }
    }
  }
  if ((accept & kMetrics) != 0) {
    if (const char* s = std::getenv("ARA_METRICS")) opts.metrics_file = s;
  }
  if ((accept & kTrace) != 0) {
    if (const char* s = std::getenv("ARA_TRACE")) opts.trace_file = s;
  }
  if ((accept & kCache) != 0) {
    if (const char* s = std::getenv("ARA_CACHE")) opts.cache_dir = s;
  }
  if ((accept & kCheck) != 0) {
    if (const char* s = std::getenv("ARA_CHECK")) opts.check = truthy(s);
  }
  if ((accept & kLog) != 0) {
    if (const char* s = std::getenv("ARA_LOG")) opts.log_file = s;
  }
  if ((accept & kShards) != 0) {
    if (const char* s = std::getenv("ARA_SHARDS")) {
      if (!parse_jobs_value(s, &opts.shards)) {
        opts.error = "ARA_SHARDS: expected a non-negative integer, got '" +
                     std::string(s) + "'";
      }
    }
  }

  for (int i = 1; i < argc; ++i) {
    std::string value;
    int consumed = 0;
    const char* flag = nullptr;
    // --check is the one boolean flag: bare form means true, and the
    // `--check=BOOL` form goes through the shared truthy() rule (so
    // `--check=0` can override an ARA_CHECK=1 environment default).
    // Either way it consumes exactly its own argv slot.
    if ((accept & kCheck) != 0) {
      const std::string_view arg = argv[i];
      if (arg == "--check" || arg.substr(0, 8) == "--check=") {
        opts.check = arg == "--check" || truthy(arg.substr(8));
        for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
        --argc;
        --i;
        continue;
      }
    }
    if ((accept & kJobs) != 0 &&
        (consumed = match("--jobs", i, argc, argv, &value)) != 0) {
      flag = "--jobs";
      if (consumed > 0 && !parse_jobs_value(value, &opts.jobs)) {
        opts.error = "--jobs: expected a non-negative integer, got '" +
                     value + "'";
      }
    } else if ((accept & kMetrics) != 0 &&
               (consumed = match("--metrics", i, argc, argv, &value)) != 0) {
      flag = "--metrics";
      opts.metrics_file = value;
    } else if ((accept & kTrace) != 0 &&
               (consumed = match("--trace", i, argc, argv, &value)) != 0) {
      flag = "--trace";
      opts.trace_file = value;
    } else if ((accept & kCache) != 0 &&
               (consumed = match("--cache", i, argc, argv, &value)) != 0) {
      flag = "--cache";
      opts.cache_dir = value;
    } else if ((accept & kLog) != 0 &&
               (consumed = match("--log", i, argc, argv, &value)) != 0) {
      flag = "--log";
      opts.log_file = value;
    } else if ((accept & kShards) != 0 &&
               (consumed = match("--shards", i, argc, argv, &value)) != 0) {
      flag = "--shards";
      if (consumed > 0 && !parse_jobs_value(value, &opts.shards)) {
        opts.error = "--shards: expected a non-negative integer, got '" +
                     value + "'";
      }
    }
    if (consumed == 0) continue;
    if (consumed < 0) {
      opts.error = std::string(flag) + ": missing value";
      consumed = 1;  // strip the bare flag anyway
    }
    for (int j = i; j + consumed < argc; ++j) argv[j] = argv[j + consumed];
    argc -= consumed;
    --i;
  }
  return opts;
}

std::string CliOptions::help(unsigned accept) {
  std::string out;
  if ((accept & kJobs) != 0) {
    out +=
        "  --jobs N         parallel sweep workers (default: hardware "
        "concurrency; env ARA_JOBS)\n";
  }
  if ((accept & kMetrics) != 0) {
    out +=
        "  --metrics FILE   dump the stat registry (.csv -> CSV, else "
        "JSON; env ARA_METRICS)\n";
  }
  if ((accept & kTrace) != 0) {
    out +=
        "  --trace FILE     write a Chrome trace of task execution "
        "(env ARA_TRACE)\n";
  }
  if ((accept & kCache) != 0) {
    out +=
        "  --cache DIR      on-disk result cache for sweep points "
        "(env ARA_CACHE)\n";
  }
  if ((accept & kCheck) != 0) {
    out +=
        "  --check[=BOOL]   enable runtime invariant checking on every "
        "simulated system (env ARA_CHECK)\n";
  }
  if ((accept & kLog) != 0) {
    out +=
        "  --log FILE       append one JSONL line per served request "
        "(trace id, spans, outcome; env ARA_LOG)\n";
  }
  if ((accept & kShards) != 0) {
    out +=
        "  --shards N       partitioned-kernel workers per simulation "
        "(default 1 = serial; 0 = hardware concurrency; results are "
        "byte-identical for every value; env ARA_SHARDS)\n";
  }
  return out;
}

}  // namespace ara::common
