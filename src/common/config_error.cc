#include "common/config_error.h"

namespace ara {

ConfigError::ConfigError(const std::string& what)
    : std::runtime_error("ara config error: " + what) {}

void config_check(bool ok, const std::string& message) {
  if (!ok) throw ConfigError(message);
}

}  // namespace ara
