// Shared command-line flags for the tools and bench binaries.
//
// --jobs / --metrics / --trace / --cache (each with an ARA_* environment
// fallback) used to be re-parsed, slightly differently, by every binary
// that needed them. CliOptions::parse() is the single implementation: it
// strips the flags it recognizes out of argv (so wrappers like
// google-benchmark never see them), applies env defaults, and reports
// malformed values instead of silently zeroing them. Each tool states
// which flags it accepts via the `accept` bitmask, and help(accept)
// renders the matching --help lines so every flag is documented exactly
// once.
#pragma once

#include <string>

namespace ara::common {

struct CliOptions {
  enum Flag : unsigned {
    kJobs = 1u << 0,     // --jobs N     | ARA_JOBS
    kMetrics = 1u << 1,  // --metrics F  | ARA_METRICS
    kTrace = 1u << 2,    // --trace F    | ARA_TRACE
    kCache = 1u << 3,    // --cache DIR  | ARA_CACHE
    kCheck = 1u << 4,    // --check      | ARA_CHECK
    kLog = 1u << 5,      // --log FILE   | ARA_LOG
    kShards = 1u << 6,   // --shards N   | ARA_SHARDS
  };

  /// Worker threads for parallel sweeps; 0 = hardware concurrency.
  unsigned jobs = 0;
  /// Worker threads inside each simulated system (the partitioned event
  /// kernel, sim/shard.h). 1 = classic serial kernel; 0 = hardware
  /// concurrency. Results are byte-identical for every value.
  unsigned shards = 1;
  /// Stat-registry export path ("" = off; ".csv" selects CSV).
  std::string metrics_file;
  /// Chrome-trace export path ("" = off).
  std::string trace_file;
  /// On-disk result-cache directory ("" = memory-only / off).
  std::string cache_dir;
  /// JSONL request-log path ("" = off; serve tools only).
  std::string log_file;
  /// Run with the ara::check invariant checker armed on every System.
  /// Boolean: bare `--check` means true, `--check=BOOL` goes through the
  /// shared truthiness rule (0/off/false/empty = off), and ARA_CHECK obeys
  /// the same rule.
  bool check = false;

  /// Non-empty after parse() when a flag had a malformed value (e.g.
  /// `--jobs banana`); the message names the flag. Tools print it and
  /// exit 2.
  std::string error;
  bool ok() const { return error.empty(); }

  /// Parse flags in `accept` out of argv (both `--flag V` and `--flag=V`),
  /// compacting argv in place so only unrecognized arguments remain.
  /// Environment variables seed the defaults; explicit flags win. A token
  /// starting with `--` is never consumed as another flag's value — use
  /// the `--flag=V` form for values that genuinely start with dashes.
  static CliOptions parse(int& argc, char** argv, unsigned accept);

  /// "  --jobs N   ..." help lines for exactly the flags in `accept`.
  static std::string help(unsigned accept);
};

}  // namespace ara::common
