// Analytical chip-multiprocessor baseline for the paper's software
// comparisons: the 12-core 1.9 GHz Xeon E5-2420 (Fig. 10) and the 4-core
// 2 GHz Xeon E5405 (Sec. 2, and the CAMEL comparison).
//
// The model is intentionally simple — cores x frequency x parallel
// efficiency for time, package power x time for energy — because the
// paper's own numbers come from wall-socket measurements of machines we do
// not have; the workload's software cost (cycles per invocation) carries
// the per-benchmark character and is calibrated in
// src/workloads/calibration.h.
#pragma once

#include <cstdint>
#include <string>

#include "workloads/workload.h"

namespace ara::cmp {

struct CmpConfig {
  std::string name = "xeon-e5-2420";
  std::uint32_t cores = 12;
  double freq_ghz = 1.9;
  /// Package power when all cores are busy (W).
  double busy_power_w = 95.0;
  /// Idle/uncore floor included while the job runs (W).
  double uncore_power_w = 18.0;

  /// Fig. 10's machine: 12-core 1.9 GHz Intel Xeon E5-2420.
  static CmpConfig xeon_e5_2420();
  /// Sec. 2's machine: 4-core 2 GHz Intel Xeon E5405.
  static CmpConfig xeon_e5405();
};

struct CmpResult {
  double seconds = 0;
  double joules = 0;
  double performance() const {  // invocations per second
    return seconds <= 0 ? 0 : jobs / seconds;
  }
  double jobs = 0;
};

class CmpModel {
 public:
  explicit CmpModel(const CmpConfig& config) : config_(config) {}

  /// Software execution of the whole workload (all invocations).
  CmpResult run(const workloads::Workload& w) const;

  const CmpConfig& config() const { return config_; }

 private:
  CmpConfig config_;
};

}  // namespace ara::cmp
