#include "cmp/cmp_model.h"

#include "common/config_error.h"

namespace ara::cmp {

CmpConfig CmpConfig::xeon_e5_2420() { return CmpConfig{}; }

CmpConfig CmpConfig::xeon_e5405() {
  CmpConfig c;
  c.name = "xeon-e5405";
  c.cores = 4;
  c.freq_ghz = 2.0;
  // Harpertown-era FB-DIMM systems: high package + platform power.
  c.busy_power_w = 105.0;
  c.uncore_power_w = 20.0;
  return c;
}

CmpResult CmpModel::run(const workloads::Workload& w) const {
  config_check(config_.cores > 0 && config_.freq_ghz > 0,
               "CMP config needs cores and frequency");
  const double total_cycles =
      w.cmp_cycles_per_invocation * static_cast<double>(w.invocations);
  const double effective_hz = config_.freq_ghz * 1e9 *
                              static_cast<double>(config_.cores) *
                              w.cmp_parallel_eff;
  CmpResult r;
  r.jobs = static_cast<double>(w.invocations);
  r.seconds = total_cycles / effective_hz;
  r.joules = r.seconds * (config_.busy_power_w + config_.uncore_power_w);
  return r;
}

}  // namespace ara::cmp
