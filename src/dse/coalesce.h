// In-flight sweep-point coalescing.
//
// The ResultCache deduplicates identical *cached* points: a point that
// already finished is never re-simulated. PointCoalescer closes the
// remaining window — identical points that are currently *in flight* in
// concurrent dse::run calls. Without it, two clients of a sweep server
// that submit the same request a millisecond apart both miss the cache
// (the first simulation has not finished yet) and the point is simulated
// twice. With it, the first request to claim a point's key becomes the
// leader and simulates it; every concurrent request holding the same key
// becomes a follower and waits for the leader's published entry instead.
//
// Protocol per key:
//  1. join(key) — returns a leader ticket (first claimant) or a follower
//     ticket attached to the leader's slot.
//  2. leader: simulate, insert into the ResultCache (cache first, so a
//     late joiner that misses the coalescer window hits the cache), then
//     publish(ticket, entry). Publishing retires the key: later joins
//     start a fresh claim.
//  3. follower: wait(ticket, &entry) blocks until the leader publishes.
//  4. If the leader's sweep throws before publishing, it must
//     abandon(ticket) every unpublished claim (dse::run does this on the
//     exception path); wait() then returns kAbandoned and the follower
//     falls back to simulating the point itself — simulation is a pure
//     function of the key, so the fallback is bit-identical, and because
//     abandonment only happens on a failing sweep there is no livelock.
//
// Results delivered through a follower ticket are bit-identical to a
// fresh simulation (the published Entry is exactly what the cache stores).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dse/result_cache.h"

namespace ara::dse {

class PointCoalescer {
 public:
  enum class Outcome {
    kReady,      // leader published; the entry is valid
    kAbandoned,  // leader failed before publishing; simulate locally
  };

  /// One in-flight point. Shared by the leader and every follower; lives
  /// until the last ticket holder drops it.
  struct Slot;

  /// Claim handle returned by join(). `leader` tells the holder which side
  /// of the protocol it is on.
  struct Ticket {
    std::uint64_t key = 0;
    bool leader = false;
    std::shared_ptr<Slot> slot;
  };

  PointCoalescer() = default;
  PointCoalescer(const PointCoalescer&) = delete;
  PointCoalescer& operator=(const PointCoalescer&) = delete;

  /// First claimant of `key` since its last publish/abandon becomes the
  /// leader; everyone else becomes a follower on the leader's slot.
  Ticket join(std::uint64_t key) ARA_EXCLUDES(mu_);

  /// Leader only: deliver the finished entry to every follower and retire
  /// the key. The entry should already be in the ResultCache (see header
  /// comment for why cache-then-publish ordering matters).
  void publish(const Ticket& ticket, const ResultCache::Entry& entry)
      ARA_EXCLUDES(mu_);

  /// Leader only: give up without a result (the sweep threw). Followers
  /// wake with kAbandoned and self-simulate. Idempotent after publish.
  void abandon(const Ticket& ticket) ARA_EXCLUDES(mu_);

  /// Follower only: block until the leader publishes or abandons. On
  /// kReady, `*out` holds the published entry.
  Outcome wait(const Ticket& ticket, ResultCache::Entry* out)
      ARA_EXCLUDES(mu_);

  // --- telemetry ---
  /// Follower tickets handed out (each one is a simulation avoided, unless
  /// the leader abandoned).
  std::uint64_t coalesced() const ARA_EXCLUDES(mu_);
  /// Keys currently in flight (leaders that have not published yet).
  std::size_t in_flight() const ARA_EXCLUDES(mu_);

 private:
  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::map<std::uint64_t, std::shared_ptr<Slot>> slots_ ARA_GUARDED_BY(mu_);
  std::uint64_t coalesced_ ARA_GUARDED_BY(mu_) = 0;
};

}  // namespace ara::dse
