#include "dse/report.h"

#include "dse/bottleneck.h"
#include "dse/table.h"
#include "noc/router.h"

namespace ara::dse {

SystemReport::SystemReport(core::System& system,
                           const core::RunResult& result)
    : result_(result) {
  const Tick span = result.makespan;
  for (IslandId i = 0; i < system.island_count(); ++i) {
    auto& isl = system.island(i);
    IslandRow row;
    row.id = i;
    row.abb_util = isl.avg_abb_utilization(span);
    row.peak_abb_util = isl.peak_abb_utilization(span);
    row.dma_util = isl.dma().utilization(span);
    row.ni_util = system.mesh()
                      .router(system.island_node(i))
                      .port(noc::Direction::kLocal)
                      .utilization(span);
    row.net_bytes = isl.net().total_bytes();
    row.tlb_hit = isl.tlb().hit_rate();
    islands_.push_back(row);
    mean_ni_util_ += row.ni_util;
    mean_dma_util_ += row.dma_util;
    mean_tlb_hit_ += row.tlb_hit;
  }
  const double n = static_cast<double>(islands_.size());
  mean_ni_util_ /= n;
  mean_dma_util_ /= n;
  mean_tlb_hit_ /= n;

  auto& mem = system.memory();
  for (std::size_t m = 0; m < mem.controller_count(); ++m) {
    mc_util_.push_back(mem.controller(m).utilization(span));
    mean_mc_util_ += mc_util_.back();
  }
  mean_mc_util_ /= static_cast<double>(mc_util_.size());
  l2_hit_ = mem.l2_hit_rate();

  gam_requests_ = system.gam().requests();
  gam_queued_ = system.gam().queued_requests();
  interrupts_ = system.gam().interrupts_delivered();
  noc_peak_ = result.noc_peak_link_utilization;
  metrics_ = obs::MetricsSnapshot::capture(system.stats());
}

void SystemReport::print(std::ostream& os) const {
  os << "=== system report: " << result_.workload << " on ["
     << result_.config << "] ===\n";
  result_.print(os);

  os << "\nper-island utilization:\n";
  Table t({"island", "ABB avg", "ABB peak", "DMA", "NI (NoC port)",
           "net KB", "TLB hit"});
  for (const auto& r : islands_) {
    t.add_row({std::to_string(r.id), Table::pct(r.abb_util),
               Table::pct(r.peak_abb_util), Table::pct(r.dma_util),
               Table::pct(r.ni_util),
               Table::num(static_cast<double>(r.net_bytes) / 1024.0, 0),
               Table::pct(r.tlb_hit)});
  }
  t.print(os);

  os << "\nmemory system: L2 hit " << Table::pct(l2_hit_) << ", MC util";
  for (double u : mc_util_) os << " " << Table::pct(u);
  os << "\nNoC peak link utilization: " << Table::pct(noc_peak_) << "\n";
  os << "GAM: " << gam_requests_ << " requests, " << gam_queued_
     << " queued, " << interrupts_ << " interrupts delivered\n";

  // Chip-level latency distributions from the stat registry (the per-id
  // histograms stay available through metrics()/MetricsExporter).
  Table lt({"latency (cycles)", "count", "mean", "p50", "p95", "p99", "max"});
  for (const auto& h : metrics_.histograms) {
    if (h.name.find('.') != h.name.rfind('.')) continue;  // skip per-id
    if (h.count == 0) continue;
    lt.add_row({h.name, std::to_string(h.count), Table::num(h.mean, 1),
                std::to_string(h.p50), std::to_string(h.p95),
                std::to_string(h.p99), std::to_string(h.max)});
  }
  os << "\n";
  lt.print(os);
  os << "stat registry: " << metrics_.counters.size() << " counters, "
     << metrics_.histograms.size() << " histograms (export with --metrics)\n";
}

}  // namespace ara::dse
