#include "dse/bottleneck.h"

#include <algorithm>

#include "dse/table.h"
#include "island/spm_dma_net.h"
#include "noc/router.h"

namespace ara::dse {

const char* resource_name(Resource r) {
  switch (r) {
    case Resource::kNocInterface:
      return "island NoC interface";
    case Resource::kNocLinks:
      return "NoC mesh links";
    case Resource::kIslandNetHub:
      return "SPM<->DMA crossbar hub";
    case Resource::kIslandNetRing:
      return "SPM<->DMA ring links";
    case Resource::kDmaEngine:
      return "DMA engine";
    case Resource::kMemoryController:
      return "memory controller";
    case Resource::kL2Port:
      return "L2 bank port";
    case Resource::kAbbCompute:
      return "ABB compute";
  }
  return "?";
}

BottleneckReport analyze_bottleneck(core::System& system,
                                    const core::RunResult& result) {
  const Tick span = result.makespan;
  struct Agg {
    double peak = 0, sum = 0;
    std::size_t n = 0;
    void add(double u) {
      peak = std::max(peak, u);
      sum += u;
      ++n;
    }
    double mean() const { return n == 0 ? 0 : sum / static_cast<double>(n); }
  };
  Agg ni, hub, ring, dma, abb;
  for (IslandId i = 0; i < system.island_count(); ++i) {
    auto& isl = system.island(i);
    ni.add(system.mesh()
               .router(system.island_node(i))
               .port(noc::Direction::kLocal)
               .utilization(span));
    dma.add(isl.dma().utilization(span));
    abb.add(isl.peak_abb_utilization(span));
    if (auto* px = dynamic_cast<island::ProxyXbarNet*>(&isl.net())) {
      hub.add(px->dma_hub_utilization(span));
    }
    if (auto* rn = dynamic_cast<island::RingNet*>(&isl.net())) {
      ring.add(rn->max_link_utilization(span));
    }
  }
  Agg mc;
  for (std::size_t m = 0; m < system.memory().controller_count(); ++m) {
    mc.add(system.memory().controller(m).utilization(span));
  }
  Agg links;
  links.add(system.mesh().max_link_utilization(span));
  // L2 port utilization is not tracked per-bank as a link; approximate from
  // access counts: accesses * 2 cycles / span per bank.
  Agg l2;
  for (std::size_t b = 0; b < system.memory().l2_bank_count(); ++b) {
    const double busy =
        static_cast<double>(system.memory().l2_bank(b).accesses()) * 2.0;
    l2.add(span == 0 ? 0.0 : busy / static_cast<double>(span));
  }

  BottleneckReport report;
  auto push = [&](Resource r, const Agg& a) {
    if (a.n == 0) return;
    report.entries.push_back({r, a.peak, a.mean()});
  };
  push(Resource::kNocInterface, ni);
  push(Resource::kNocLinks, links);
  push(Resource::kIslandNetHub, hub);
  push(Resource::kIslandNetRing, ring);
  push(Resource::kDmaEngine, dma);
  push(Resource::kMemoryController, mc);
  push(Resource::kL2Port, l2);
  push(Resource::kAbbCompute, abb);
  std::sort(report.entries.begin(), report.entries.end(),
            [](const auto& a, const auto& b) {
              return a.peak_utilization > b.peak_utilization;
            });
  return report;
}

void BottleneckReport::print(std::ostream& os) const {
  Table t({"resource", "peak util", "mean util"});
  for (const auto& e : entries) {
    t.add_row({resource_name(e.resource), Table::pct(e.peak_utilization),
               Table::pct(e.mean_utilization)});
  }
  t.print(os);
  os << "binding resource: " << resource_name(binding()) << " at "
     << Table::pct(binding_utilization()) << "\n";
}

}  // namespace ara::dse
