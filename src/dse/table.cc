#include "dse/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace ara::dse {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::left << std::setw(
             static_cast<int>(width[c])) << cells[c];
    }
    os << "\n";
  };
  line(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(width[c], '-') + (c + 1 < headers_.size() ? "  " : "");
  }
  os << rule << "\n";
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto cell = [&](const std::string& c) {
    if (c.find(',') != std::string::npos) {
      os << '"' << c << '"';
    } else {
      os << c;
    }
  };
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i != 0) os << ',';
      cell(cells[i]);
    }
    os << "\n";
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  return num(fraction * 100.0, precision) + "%";
}

}  // namespace ara::dse
