#include "dse/search.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "check/fuzz.h"
#include "common/config_error.h"
#include "core/run_result.h"
#include "dse/sweep.h"
#include "obs/json_io.h"
#include "workloads/registry.h"

namespace ara::dse {

namespace {

template <typename T>
std::vector<T> dedup(const std::vector<T>& in) {
  std::vector<T> out;
  for (const T& v : in) {
    if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
  }
  return out;
}

double metric(const SearchCandidate& c, Objective o) {
  switch (o) {
    case Objective::kPerf: return c.performance;
    case Objective::kPerfPerEnergy: return c.perf_per_energy;
    case Objective::kPerfPerArea: return c.perf_per_area;
  }
  return c.performance;
}

/// true iff `b` Pareto-dominates `a` (>= on every axis, > on one).
bool dominates(const SearchCandidate& b, const SearchCandidate& a) {
  const bool ge = b.performance >= a.performance &&
                  b.perf_per_energy >= a.perf_per_energy &&
                  b.perf_per_area >= a.perf_per_area;
  const bool gt = b.performance > a.performance ||
                  b.perf_per_energy > a.perf_per_energy ||
                  b.perf_per_area > a.perf_per_area;
  return ge && gt;
}

/// Objective-major ordering with the canonical label as tie-break, so
/// every ranking step is a total order independent of evaluation order.
struct ObjectiveOrder {
  Objective objective;
  bool operator()(const SearchCandidate& a, const SearchCandidate& b) const {
    const double ma = metric(a, objective);
    const double mb = metric(b, objective);
    if (ma != mb) return ma > mb;
    return a.spec.label() < b.spec.label();
  }
};

/// Runs evaluation rounds through dse::run and owns the warmth telemetry.
/// The trace is charged per optimizer round by the caller; inner runs are
/// untraced (outcome counts are reconstructed from the per-point flags).
class Evaluator {
 public:
  explicit Evaluator(const SearchRequest& request) : req_(request) {}

  /// Evaluate every spec at `scale_mult` x the problem's full-fidelity
  /// scale; results land in input order.
  std::vector<SearchCandidate> evaluate(const std::vector<PointSpec>& specs,
                                        double scale_mult,
                                        obs::Phase phase) {
    obs::ScopedSpan span(req_.trace, phase);
    const workloads::Workload wl = workloads::make_benchmark(
        req_.spec.workload, req_.spec.scale * scale_mult);
    SweepRequest rq;
    rq.jobs = req_.jobs;
    rq.shards = req_.shards;
    rq.cache = req_.cache;
    rq.coalescer = req_.coalescer;
    for (const PointSpec& s : specs) rq.add(s.to_config(), wl);
    const std::vector<SweepResult> results = run(rq);

    std::vector<SearchCandidate> out;
    out.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      const SweepResult& r = results[i];
      evaluated_ += 1;
      wall_seconds_ += r.wall_seconds;
      if (r.from_cache) {
        cache_hits_ += 1;
        if (req_.trace != nullptr) req_.trace->hits += 1;
      } else if (r.coalesced) {
        coalesced_ += 1;
        if (req_.trace != nullptr) req_.trace->followers += 1;
      } else {
        simulated_ += 1;
        if (req_.trace != nullptr) req_.trace->misses += 1;
      }
      SearchCandidate c;
      c.spec = specs[i];
      c.makespan = static_cast<std::uint64_t>(r.result.makespan);
      c.performance = r.result.performance();
      c.perf_per_energy = r.result.perf_per_energy();
      c.perf_per_area = r.result.perf_per_island_area();
      c.energy_j = r.result.energy.total();
      c.area_mm2 = r.result.area.total();
      out.push_back(std::move(c));
    }
    return out;
  }

  std::uint64_t evaluated() const { return evaluated_; }
  std::uint64_t simulated() const { return simulated_; }
  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t coalesced() const { return coalesced_; }
  double wall_seconds() const { return wall_seconds_; }

 private:
  const SearchRequest& req_;
  std::uint64_t evaluated_ = 0;
  std::uint64_t simulated_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t coalesced_ = 0;
  double wall_seconds_ = 0;
};

/// Enumerate the whole (normalized) space in lexicographic knob order.
std::vector<PointSpec> enumerate_space(const SearchSpace& sp) {
  std::vector<PointSpec> out;
  for (const auto islands : sp.islands)
    for (const auto& net : sp.nets)
      for (const auto rings : sp.rings)
        for (const auto width : sp.widths)
          for (const auto ports : sp.ports)
            for (const bool sharing : sp.sharing)
              for (const bool mono : sp.mono)
                for (const auto& policy : sp.policies) {
                  PointSpec s;
                  s.islands = islands;
                  s.net = net;
                  s.rings = rings;
                  s.link_bytes = width;
                  s.ports = ports;
                  s.sharing = sharing;
                  s.mono = mono;
                  s.policy = policy;
                  out.push_back(std::move(s));
                }
  return out;
}

/// One sampled candidate: one pick per knob, in declaration order, off
/// the shared check::PointSampler stream.
PointSpec draw(check::PointSampler& sampler, const SearchSpace& sp) {
  PointSpec s;
  s.islands = sp.islands[sampler.pick(sp.islands.size())];
  s.net = sp.nets[sampler.pick(sp.nets.size())];
  s.rings = sp.rings[sampler.pick(sp.rings.size())];
  s.link_bytes = sp.widths[sampler.pick(sp.widths.size())];
  s.ports = sp.ports[sampler.pick(sp.ports.size())];
  s.sharing = sp.sharing[sampler.pick(sp.sharing.size())];
  s.mono = sp.mono[sampler.pick(sp.mono.size())];
  s.policy = sp.policies[sampler.pick(sp.policies.size())];
  return s;
}

/// `want` distinct candidates: rejection-sample the seeded stream, then
/// (if the stream keeps colliding) top up from lexicographic enumeration.
/// Pure function of (seed, space, want).
std::vector<PointSpec> sample_candidates(const SearchSpace& sp,
                                         std::uint64_t seed,
                                         std::uint64_t want) {
  check::PointSampler sampler(seed);
  std::set<std::string> seen;
  std::vector<PointSpec> out;
  const std::uint64_t max_attempts = 64 * want + 64;
  for (std::uint64_t attempts = 0; out.size() < want && attempts < max_attempts;
       ++attempts) {
    PointSpec s = draw(sampler, sp);
    if (seen.insert(s.label()).second) out.push_back(std::move(s));
  }
  // Top-up enumeration only for spaces small enough to materialize; in a
  // space this large the rejection stream cannot realistically stall, and
  // a (deterministic) shortfall only shrinks rung 0.
  if (out.size() < want && sp.size() <= (1u << 16)) {
    for (PointSpec& s : enumerate_space(sp)) {
      if (out.size() >= want) break;
      if (seen.insert(s.label()).second) out.push_back(std::move(s));
    }
  }
  return out;
}

/// Find `value`'s index in `values`; the space is normalized so it is
/// present exactly once.
template <typename T>
std::size_t index_of(const std::vector<T>& values, const T& value) {
  return static_cast<std::size_t>(
      std::find(values.begin(), values.end(), value) - values.begin());
}

/// Dimension-adjacent neighbours of `base`: for each knob, the previous
/// and next value in its (normalized) list, in declaration order.
std::vector<PointSpec> neighbours(const PointSpec& base,
                                  const SearchSpace& sp) {
  std::vector<PointSpec> out;
  auto step = [&out, &base](const auto& field_of, const auto& values,
                            const auto current) {
    const std::size_t idx = index_of(values, current);
    for (const int delta : {-1, +1}) {
      if (delta < 0 ? idx == 0 : idx + 1 >= values.size()) continue;
      PointSpec s = base;
      field_of(s) = values[delta < 0 ? idx - 1 : idx + 1];
      out.push_back(std::move(s));
    }
  };
  step([](PointSpec& s) -> auto& { return s.islands; }, sp.islands,
       base.islands);
  step([](PointSpec& s) -> auto& { return s.net; }, sp.nets, base.net);
  step([](PointSpec& s) -> auto& { return s.rings; }, sp.rings, base.rings);
  step([](PointSpec& s) -> auto& { return s.link_bytes; }, sp.widths,
       base.link_bytes);
  step([](PointSpec& s) -> auto& { return s.ports; }, sp.ports, base.ports);
  // vector<bool> has proxy references; handle the two bool knobs directly.
  {
    const std::size_t idx = index_of(sp.sharing, base.sharing);
    for (const int delta : {-1, +1}) {
      if (delta < 0 ? idx == 0 : idx + 1 >= sp.sharing.size()) continue;
      PointSpec s = base;
      s.sharing = sp.sharing[delta < 0 ? idx - 1 : idx + 1];
      out.push_back(std::move(s));
    }
  }
  {
    const std::size_t idx = index_of(sp.mono, base.mono);
    for (const int delta : {-1, +1}) {
      if (delta < 0 ? idx == 0 : idx + 1 >= sp.mono.size()) continue;
      PointSpec s = base;
      s.mono = sp.mono[delta < 0 ? idx - 1 : idx + 1];
      out.push_back(std::move(s));
    }
  }
  step([](PointSpec& s) -> auto& { return s.policy; }, sp.policies,
       base.policy);
  return out;
}

void candidate_json(std::ostringstream& os, const SearchCandidate& c) {
  os << "{\"spec\":{\"islands\":" << c.spec.islands << ",\"net\":\"";
  obs::json_escape(os, c.spec.net);
  os << "\",\"rings\":" << c.spec.rings << ",\"width\":" << c.spec.link_bytes
     << ",\"ports\":" << c.spec.ports
     << ",\"sharing\":" << (c.spec.sharing ? "true" : "false")
     << ",\"mono\":" << (c.spec.mono ? "true" : "false") << ",\"policy\":\"";
  obs::json_escape(os, c.spec.policy);
  os << "\"},\"makespan\":" << c.makespan << ",\"performance\":";
  obs::json_number(os, c.performance, 17);
  os << ",\"perf_per_energy\":";
  obs::json_number(os, c.perf_per_energy, 17);
  os << ",\"perf_per_area\":";
  obs::json_number(os, c.perf_per_area, 17);
  os << ",\"energy_j\":";
  obs::json_number(os, c.energy_j, 17);
  os << ",\"area_mm2\":";
  obs::json_number(os, c.area_mm2, 17);
  os << "}";
}

}  // namespace

SearchSpace SearchSpace::normalized() const {
  SearchSpace sp = *this;
  sp.islands = dedup(sp.islands);
  sp.nets = dedup(sp.nets);
  sp.rings = dedup(sp.rings);
  sp.widths = dedup(sp.widths);
  sp.ports = dedup(sp.ports);
  sp.sharing = dedup(sp.sharing);
  sp.mono = dedup(sp.mono);
  sp.policies = dedup(sp.policies);
  return sp;
}

std::uint64_t SearchSpace::size() const {
  const SearchSpace sp = normalized();
  std::uint64_t n = 1;
  n *= sp.islands.size();
  n *= sp.nets.size();
  n *= sp.rings.size();
  n *= sp.widths.size();
  n *= sp.ports.size();
  n *= sp.sharing.size();
  n *= sp.mono.size();
  n *= sp.policies.size();
  return n;
}

const char* objective_name(Objective o) {
  switch (o) {
    case Objective::kPerf: return "perf";
    case Objective::kPerfPerEnergy: return "perf_per_energy";
    case Objective::kPerfPerArea: return "perf_per_area";
  }
  return "perf";
}

bool objective_from_name(const std::string& name, Objective* out) {
  if (name == "perf") {
    *out = Objective::kPerf;
  } else if (name == "perf_per_energy") {
    *out = Objective::kPerfPerEnergy;
  } else if (name == "perf_per_area") {
    *out = Objective::kPerfPerArea;
  } else {
    return false;
  }
  return true;
}

void SearchSpec::validate() const {
  config_check(!workload.empty(), "search needs a workload name");
  config_check(scale > 0, "search scale must be positive");
  config_check(budget > 0, "search budget must be at least 1");
  const SearchSpace sp = space.normalized();
  config_check(!sp.islands.empty(), "search space: \"islands\" is empty");
  config_check(!sp.nets.empty(), "search space: \"nets\" is empty");
  config_check(!sp.rings.empty(), "search space: \"rings\" is empty");
  config_check(!sp.widths.empty(), "search space: \"widths\" is empty");
  config_check(!sp.ports.empty(), "search space: \"ports\" is empty");
  config_check(!sp.sharing.empty(), "search space: \"sharing\" is empty");
  config_check(!sp.mono.empty(), "search space: \"mono\" is empty");
  config_check(!sp.policies.empty(), "search space: \"policies\" is empty");
  // Per-dimension value check: knob validity never depends on the other
  // knobs, so defaults elsewhere suffice and this stays O(sum of lists)
  // instead of O(space size).
  auto probe = [](PointSpec s) { s.to_config().validate(); };
  for (const auto v : sp.islands) {
    PointSpec s;
    s.islands = v;
    probe(s);
  }
  for (const auto& v : sp.nets) {
    PointSpec s;
    s.net = v;
    probe(s);
  }
  for (const auto v : sp.rings) {
    PointSpec s;
    s.rings = v;
    probe(s);
  }
  for (const auto v : sp.widths) {
    PointSpec s;
    s.link_bytes = v;
    probe(s);
  }
  for (const auto v : sp.ports) {
    PointSpec s;
    s.ports = v;
    probe(s);
  }
  for (const auto& v : sp.policies) {
    PointSpec s;
    s.policy = v;
    probe(s);
  }
}

SearchResult search(const SearchRequest& request) {
  const SearchSpec& spec = request.spec;
  spec.validate();
  const SearchSpace sp = spec.space.normalized();

  SearchResult out;
  out.workload = spec.workload;
  out.scale = spec.scale;
  out.objective = spec.objective;
  out.budget = spec.budget;
  out.seed = spec.seed;
  out.space_size = sp.size();

  Evaluator eval(request);
  const ObjectiveOrder order{spec.objective};
  // Every full-fidelity evaluation, keyed by canonical label (ordered map
  // => deterministic frontier assembly).
  std::map<std::string, SearchCandidate> full;
  auto record_full = [&full](const std::vector<SearchCandidate>& cands) {
    for (const SearchCandidate& c : cands) full.emplace(c.spec.label(), c);
  };

  if (spec.budget >= out.space_size) {
    // Grid mode: the budget covers the whole space, so the "search" is an
    // exhaustive full-fidelity sweep and the frontier is exact.
    const std::vector<PointSpec> specs = enumerate_space(sp);
    record_full(eval.evaluate(specs, 1.0, obs::Phase::kSample));
    out.stages.push_back(
        {"exhaustive", 1.0, static_cast<std::uint64_t>(specs.size()),
         static_cast<std::uint64_t>(specs.size())});
  } else {
    // Successive halving: reserve ~1/4 of the budget for refinement, size
    // rung 0 so the halving schedule fits the rest.
    const std::uint64_t refine_budget = spec.budget / 4;
    const std::uint64_t halve_budget = spec.budget - refine_budget;
    std::vector<double> mults;
    if (halve_budget >= 7) {
      mults = {0.25, 0.5, 1.0};
    } else if (halve_budget >= 3) {
      mults = {0.5, 1.0};
    } else {
      mults = {1.0};
    }
    auto schedule_cost = [&mults](std::uint64_t n0) {
      std::uint64_t cost = 0;
      std::uint64_t n = n0;
      for (std::size_t i = 0; i < mults.size(); ++i) {
        cost += n;
        n = (n + 1) / 2;
      }
      return cost;
    };
    std::uint64_t n0 = 1;
    while (n0 < out.space_size && schedule_cost(n0 + 1) <= halve_budget) {
      ++n0;
    }

    std::vector<PointSpec> rung = sample_candidates(sp, spec.seed, n0);
    for (std::size_t i = 0; i < mults.size(); ++i) {
      const bool last = i + 1 == mults.size();
      const obs::Phase phase =
          i == 0 ? obs::Phase::kSample : obs::Phase::kHalve;
      std::vector<SearchCandidate> cands = eval.evaluate(rung, mults[i], phase);
      std::sort(cands.begin(), cands.end(), order);
      const std::uint64_t keep =
          last ? cands.size() : (cands.size() + 1) / 2;
      out.stages.push_back({i == 0 ? "sample" : "halve", mults[i],
                            static_cast<std::uint64_t>(cands.size()), keep});
      if (last) {
        record_full(cands);
      } else {
        rung.clear();
        for (std::uint64_t k = 0; k < keep; ++k) {
          rung.push_back(cands[k].spec);
        }
      }
    }

    // Local refinement: hill-climb dimension-adjacent neighbours of the
    // incumbent at full fidelity with whatever budget remains.
    auto incumbent = [&full, &order]() {
      const SearchCandidate* best = nullptr;
      for (const auto& [label, cand] : full) {
        if (best == nullptr || order(cand, *best)) best = &cand;
      }
      return *best;
    };
    std::uint64_t refine_evaluated = 0;
    SearchCandidate inc = incumbent();
    while (eval.evaluated() < spec.budget) {
      std::vector<PointSpec> batch;
      for (PointSpec& n : neighbours(inc.spec, sp)) {
        if (eval.evaluated() + batch.size() >= spec.budget) break;
        if (full.count(n.label()) != 0) continue;
        batch.push_back(std::move(n));
      }
      if (batch.empty()) break;
      record_full(eval.evaluate(batch, 1.0, obs::Phase::kRefine));
      refine_evaluated += batch.size();
      SearchCandidate next = incumbent();
      if (next.spec.label() == inc.spec.label()) break;
      inc = next;
    }
    out.stages.push_back({"refine", 1.0, refine_evaluated, 1});
  }

  // Pareto frontier over every full-fidelity evaluation.
  std::vector<SearchCandidate> all;
  all.reserve(full.size());
  for (const auto& [label, cand] : full) all.push_back(cand);
  for (const SearchCandidate& c : all) {
    bool dominated = false;
    for (const SearchCandidate& other : all) {
      if (dominates(other, c)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.frontier.push_back(c);
  }
  std::sort(out.frontier.begin(), out.frontier.end(), order);
  out.best = out.frontier.front();

  out.evaluated = eval.evaluated();
  out.simulated = eval.simulated();
  out.cache_hits = eval.cache_hits();
  out.coalesced = eval.coalesced();
  out.wall_seconds = eval.wall_seconds();
  return out;
}

std::string search_result_json(const SearchResult& r) {
  std::ostringstream os;
  os << "{\"workload\":\"";
  obs::json_escape(os, r.workload);
  os << "\",\"scale\":";
  obs::json_number(os, r.scale, 17);
  os << ",\"objective\":\"" << objective_name(r.objective)
     << "\",\"budget\":" << r.budget << ",\"seed\":" << r.seed
     << ",\"space_size\":" << r.space_size << ",\"evaluated\":" << r.evaluated
     << ",\"stages\":[";
  for (std::size_t i = 0; i < r.stages.size(); ++i) {
    const SearchStage& st = r.stages[i];
    if (i > 0) os << ",";
    os << "{\"name\":\"";
    obs::json_escape(os, st.name);
    os << "\",\"scale_mult\":";
    obs::json_number(os, st.scale_mult, 17);
    os << ",\"evaluated\":" << st.evaluated << ",\"kept\":" << st.kept << "}";
  }
  os << "],\"best\":";
  candidate_json(os, r.best);
  os << ",\"frontier\":[";
  for (std::size_t i = 0; i < r.frontier.size(); ++i) {
    if (i > 0) os << ",";
    candidate_json(os, r.frontier[i]);
  }
  os << "]}";
  return os.str();
}

}  // namespace ara::dse
