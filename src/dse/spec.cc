#include "dse/spec.h"

#include <sstream>

#include "common/config_error.h"

namespace ara::dse {

core::ArchConfig PointSpec::to_config() const {
  // Identical construction order to ara_sim's flag parser: start from the
  // default ring design, then apply each override.
  core::ArchConfig cfg = core::ArchConfig::ring_design(
      islands, rings, static_cast<Bytes>(link_bytes));
  if (net == "proxy") {
    cfg.island.net.topology = island::SpmDmaTopology::kProxyXbar;
  } else if (net == "chain") {
    cfg.island.net.topology = island::SpmDmaTopology::kChainingXbar;
  } else {
    config_check(net == "ring", "unknown net kind '" + net +
                                    "' (expected ring|proxy|chain)");
  }
  cfg.island.spm_port_multiplier = ports;
  cfg.island.spm_sharing = sharing;
  if (mono) cfg.mode = abc::ExecutionMode::kMonolithic;
  if (policy == "sjf") {
    cfg.gam_policy = abc::GamPolicy::kShortestFirst;
  } else if (policy == "ljf") {
    cfg.gam_policy = abc::GamPolicy::kLargestFirst;
  } else {
    config_check(policy == "fifo", "unknown GAM policy '" + policy +
                                       "' (expected fifo|sjf|ljf)");
    cfg.gam_policy = abc::GamPolicy::kFifo;
  }
  return cfg;
}

std::string PointSpec::label() const {
  std::ostringstream os;
  os << "islands=" << islands << ",net=" << net << ",rings=" << rings
     << ",width=" << link_bytes << ",ports=" << ports
     << ",sharing=" << (sharing ? 1 : 0) << ",mono=" << (mono ? 1 : 0)
     << ",policy=" << policy;
  return os.str();
}

}  // namespace ara::dse
