// dse::PointSpec — the one source of truth for "a design point named by
// user-facing knobs" and for turning it into an ArchConfig.
//
// Three front ends name design points with the same eight knobs: the
// ara_sim CLI flags, the ara_serve wire protocol's "points" objects, and
// dse::SearchSpace's per-dimension bounds. Before this module each kept
// its own copy of the knob->ArchConfig construction; PointSpec is the
// single copy they all consume, so a new ArchConfig dimension is added
// here once and every front end picks it up. The field defaults ARE the
// product defaults (24-island 2-ring 32B ring design, 1x ports, no
// sharing, composable mode, fifo GAM) — CLI help, protocol docs, and
// search bounds all derive from these initializers.
//
// to_config() builds the ArchConfig exactly the way the ara_sim flag
// parser historically did (base ring_design, then per-knob overrides, in
// flag order), so a served point, a searched point, and a CLI run of the
// same spec are the same design point — and therefore, through dse::run,
// the same bits.
#pragma once

#include <cstdint>
#include <string>

#include "core/arch_config.h"

namespace ara::dse {

/// One design point named by the user-facing knobs; defaults mirror the
/// ara_sim CLI.
struct PointSpec {
  std::uint32_t islands = 24;
  std::string net = "ring";  // ring | proxy | chain
  std::uint32_t rings = 2;
  std::uint64_t link_bytes = 32;
  std::uint32_t ports = 1;
  bool sharing = false;
  bool mono = false;
  std::string policy = "fifo";  // fifo | sjf | ljf

  /// Build the ArchConfig the way ara_sim's flag parser would (base
  /// ring_design, then overrides). Throws ConfigError on an unknown
  /// net/policy name; the result still needs ArchConfig::validate().
  core::ArchConfig to_config() const;

  /// Canonical one-line name of the point, every knob spelled out in
  /// declaration order ("islands=24,net=ring,rings=2,width=32,ports=1,
  /// sharing=0,mono=0,policy=fifo"). Two specs are the same design point
  /// iff their labels match; dse::search keys its dedup and tie-breaks
  /// on this string.
  std::string label() const;
};

}  // namespace ara::dse
