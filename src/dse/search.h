// dse::search — budget-bounded autotuning over the design space, built on
// dse::run so every candidate evaluation flows through the shared
// ResultCache / PointCoalescer (repeated and overlapping searches get
// measurably cheaper, and a served search reuses sweep traffic's warmth).
//
// The optimizer is deterministic by construction: candidate selection is a
// pure function of (seed, space, budget) — the budget bounds *evaluations*,
// never simulations, so cache warmth changes how much work an evaluation
// costs but never which candidates are chosen. Same spec => byte-identical
// SearchResult deterministic block (search_result_json) across reruns,
// worker counts, and cold/warm caches; only the telemetry fields
// (simulated / cache_hits / coalesced / wall_seconds) vary with warmth.
//
// Algorithm (see DESIGN.md "Autotuning search"):
//   1. If the budget covers the whole space, evaluate it exhaustively at
//      full fidelity (grid mode) — the search result is then exact.
//   2. Otherwise successive halving: sample N0 distinct candidates with
//      check::PointSampler (the fuzzer's deterministic design-space
//      stream), evaluate them at reduced workload scale, keep the top
//      half, re-evaluate at doubled scale, ... until full fidelity.
//   3. Local refinement: hill-climb from the incumbent over
//      dimension-adjacent neighbours at full fidelity until the budget is
//      spent or no neighbour improves the objective.
// The Pareto frontier (performance / perf-per-energy / perf-per-area, all
// maximized) is computed over every full-fidelity evaluation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dse/spec.h"
#include "obs/span.h"

namespace ara::dse {

class ResultCache;
class PointCoalescer;

/// The candidate space: one value list per PointSpec knob; the space is
/// their cross product. Defaults cover the paper's sweep axes (Figs. 6-9:
/// island counts x ring counts x link widths x SPM porting/sharing).
/// Duplicate values in a list are ignored (first occurrence wins).
struct SearchSpace {
  std::vector<std::uint32_t> islands = {3, 6, 12, 24};
  std::vector<std::string> nets = {"ring"};
  std::vector<std::uint32_t> rings = {1, 2, 3};
  std::vector<std::uint64_t> widths = {16, 32};
  std::vector<std::uint32_t> ports = {1, 2};
  std::vector<bool> sharing = {false, true};
  std::vector<bool> mono = {false};
  std::vector<std::string> policies = {"fifo"};

  /// Copy with each list deduplicated in first-occurrence order.
  SearchSpace normalized() const;
  /// Number of distinct design points (product of deduplicated lists).
  std::uint64_t size() const;
};

/// What "best" means; all objectives are maximized.
enum class Objective {
  kPerf,           // invocations per second (Fig. 6)
  kPerfPerEnergy,  // (inv/s)/J (Fig. 8)
  kPerfPerArea,    // (inv/s)/mm^2 of island area (Fig. 9)
};

const char* objective_name(Objective o);
/// False (out untouched) for an unknown name.
bool objective_from_name(const std::string& name, Objective* out);

/// One search problem. Everything that defines the deterministic result
/// lives here; execution resources (jobs/cache/coalescer) live on
/// SearchRequest.
struct SearchSpec {
  std::string workload;              // benchmark name
  double scale = 0.25;               // full-fidelity invocation scale
  SearchSpace space;
  Objective objective = Objective::kPerf;
  std::uint64_t budget = 16;         // max evaluations (simulation slots)
  std::uint64_t seed = 1;            // sampler seed
  /// Throws ConfigError on an empty/degenerate problem: no workload,
  /// budget 0, non-positive scale, an empty dimension list, or a
  /// dimension value to_config/validate rejects.
  void validate() const;
};

/// SearchSpec plus the execution resources, mirroring SweepRequest.
struct SearchRequest {
  SearchSpec spec;
  /// Worker threads per evaluation round; any value produces bit-identical
  /// results (the candidate schedule never depends on it).
  unsigned jobs = 1;
  /// Partitioned-kernel workers inside each evaluation's simulation
  /// (SweepRequest::shards). Execution resource like `jobs`: never part of
  /// the schedule or the result bytes.
  unsigned shards = 1;
  ResultCache* cache = nullptr;          // borrowed, optional
  PointCoalescer* coalescer = nullptr;   // borrowed, optional
  /// Optional trace: search charges optimizer rounds to the sample /
  /// halve / refine spans and counts per-evaluation outcomes. Its inner
  /// dse::run calls are deliberately untraced so no interval is counted
  /// twice. Pure observability.
  obs::RequestTrace* trace = nullptr;
};

/// One fully-evaluated design point (full-fidelity metrics).
struct SearchCandidate {
  PointSpec spec;
  std::uint64_t makespan = 0;
  double performance = 0;
  double perf_per_energy = 0;
  double perf_per_area = 0;
  double energy_j = 0;
  double area_mm2 = 0;
};

/// Per-stage telemetry (deterministic: counts evaluations, not
/// simulations).
struct SearchStage {
  std::string name;           // exhaustive | sample | halve | refine
  double scale_mult = 1;      // workload-scale multiplier of the stage
  std::uint64_t evaluated = 0;
  std::uint64_t kept = 0;     // survivors promoted out of the stage
};

struct SearchResult {
  // --- deterministic block (serialized by search_result_json) ---
  std::string workload;
  double scale = 0;
  Objective objective = Objective::kPerf;
  std::uint64_t budget = 0;
  std::uint64_t seed = 0;
  std::uint64_t space_size = 0;
  std::uint64_t evaluated = 0;  // total evaluations, always <= budget
  std::vector<SearchStage> stages;
  SearchCandidate best;                  // top of the frontier
  std::vector<SearchCandidate> frontier; // Pareto set, objective-major

  // --- cache-warmth-dependent telemetry (never serialized into the
  //     deterministic block) ---
  std::uint64_t simulated = 0;   // evaluations that actually simulated
  std::uint64_t cache_hits = 0;  // evaluations served from the ResultCache
  std::uint64_t coalesced = 0;   // evaluations served by an in-flight leader
  double wall_seconds = 0;       // host simulation time across evaluations
};

/// Run the search. Throws ConfigError for degenerate specs (see
/// SearchSpec::validate) and propagates evaluation failures.
SearchResult search(const SearchRequest& request);

/// Canonical JSON of the deterministic block (17-significant-digit
/// doubles, fixed key order). Two searches of the same spec produce
/// byte-identical strings regardless of jobs or cache warmth — the
/// contract search_test and serve_smoke pin.
std::string search_result_json(const SearchResult& r);

}  // namespace ara::dse
