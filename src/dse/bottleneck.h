// Bottleneck analysis: identify the binding resource of a run — the
// paper's Sec. 5.5 diagnosis ("one of the primary performance limitations
// ... is the interface between the ABB island and the NoC") made
// queryable. Compares the utilization of every shared resource class and
// names the most saturated one.
#pragma once

#include <string>
#include <vector>

#include "core/run_result.h"
#include "core/system.h"

namespace ara::dse {

enum class Resource : std::uint8_t {
  kNocInterface = 0,  // island local port (the paper's usual suspect)
  kNocLinks,          // mesh links
  kIslandNetHub,      // proxy-crossbar DMA hub
  kIslandNetRing,     // ring segments
  kDmaEngine,
  kMemoryController,
  kL2Port,
  kAbbCompute,
};

const char* resource_name(Resource r);

struct BottleneckReport {
  struct Entry {
    Resource resource;
    /// Peak utilization of this resource class across instances.
    double peak_utilization;
    /// Mean across instances.
    double mean_utilization;
  };
  std::vector<Entry> entries;  // sorted most-saturated first

  /// Most saturated resource class.
  Resource binding() const { return entries.front().resource; }
  double binding_utilization() const {
    return entries.front().peak_utilization;
  }
  void print(std::ostream& os) const;
};

/// Analyze a finished run.
BottleneckReport analyze_bottleneck(core::System& system,
                                    const core::RunResult& result);

}  // namespace ara::dse
