// Content-addressed memoization of sweep-point results.
//
// A design-space sweep re-simulates many (ArchConfig, Workload) pairs that
// earlier sweeps — or earlier points of the same sweep — already ran. Every
// point is a pure function of its configuration and workload, so its
// RunResult and MetricsSnapshot can be memoized by content: the cache key is
// an FNV-1a hash of core::canonical_text(config) + canonical_text(workload)
// + a simulator version salt (kSimVersionSalt, bumped whenever simulation
// semantics change so stale entries miss instead of lying).
//
// Two tiers:
//  - in-process: an unordered_map, always on, mutex-protected;
//  - on-disk (optional, `--cache DIR` / ARA_CACHE): one JSON file per key,
//    written with 17-significant-digit doubles so RunResult round-trips
//    bit-exactly (asserted by tests/result_cache_test.cc). Files are
//    validated with obs::validate_json on load; corrupt or truncated files
//    are treated as misses, never as errors.
//
// Host-dependent observability (wall seconds, self-profile seconds) is NOT
// cached — a hit restores the deterministic fields (result, metrics, event
// count, per-kind dispatch counts) and reports wall_seconds = 0.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/arch_config.h"
#include "core/run_result.h"
#include "obs/metrics_export.h"
#include "sim/event_queue.h"
#include "workloads/workload.h"

namespace ara::dse {

/// Simulator version salt folded into every cache key. Bump when any change
/// alters simulation results (event ordering, cost models, config
/// defaults); on-disk entries written under the old salt then miss cleanly.
/// 3 -> 4: Histogram::percentile now reports bucket midpoints (affects
/// job_latency_p50/p95 in RunResult) and serialized histogram samples
/// carry a "min" field — both change entry bytes.
/// 4 -> 5: MetricsSnapshot gained the sim.shard.* partitioned-kernel
/// counters, changing entry bytes. The shard/worker count itself is
/// deliberately NOT in the key: results are byte-identical across shard
/// counts, so warm entries serve every --shards value.
inline constexpr std::uint64_t kSimVersionSalt = 5;

class ResultCache {
 public:
  /// The deterministic portion of a sweep point's outcome.
  struct Entry {
    core::RunResult result;
    obs::MetricsSnapshot metrics;
    /// Events the point's Simulator executed (deterministic).
    std::uint64_t events = 0;
    /// Per-kind dispatch counts. Seconds are host wall-clock and are
    /// zeroed on insert — they never round-trip through the cache.
    std::array<sim::EventKindStats, sim::kNumEventKinds> event_kinds{};
  };

  /// In-process tier only.
  ResultCache() = default;
  /// Adds the on-disk tier rooted at `dir` (created on first store). An
  /// empty dir means memory-only.
  explicit ResultCache(std::string dir, std::uint64_t salt = kSimVersionSalt);

  /// Content hash of a design point under `salt`.
  static std::uint64_t key(const core::ArchConfig& config,
                           const workloads::Workload& workload,
                           std::uint64_t salt = kSimVersionSalt);

  /// Probe memory then disk. A disk hit is promoted into the memory tier.
  bool lookup(std::uint64_t key, Entry* out) ARA_EXCLUDES(mu_, disk_mu_);

  /// Store in memory and (when configured) on disk. Overwrites.
  void insert(std::uint64_t key, const Entry& entry)
      ARA_EXCLUDES(mu_, disk_mu_);

  const std::string& dir() const { return dir_; }
  std::uint64_t salt() const { return salt_; }

  // --- telemetry (each reads its counter under the lock: parallel sweep
  // workers may be mutating the cache while a reporter samples it) ---
  std::uint64_t hits() const ARA_EXCLUDES(mu_);
  std::uint64_t misses() const ARA_EXCLUDES(mu_);
  /// Subset of hits() served by reading a disk file.
  std::uint64_t disk_hits() const ARA_EXCLUDES(mu_);
  std::size_t size() const ARA_EXCLUDES(mu_);

  /// Serialize an entry as one JSON object (exact precision). Exposed for
  /// tests; `key`/`salt` are embedded for validation on load.
  static std::string to_json(std::uint64_t key, std::uint64_t salt,
                             const Entry& entry);
  /// Inverse of to_json. False on malformed JSON, wrong shape, or a
  /// key/salt mismatch.
  static bool from_json(const std::string& text, std::uint64_t key,
                        std::uint64_t salt, Entry* out);

  /// "<dir>/<16-hex-digit-key>.json".
  std::string entry_path(std::uint64_t key) const;

 private:
  /// Serialize one entry to `entry_path(key)` via tmp + rename.
  void write_disk_entry(std::uint64_t key, const Entry& entry) const
      ARA_REQUIRES(disk_mu_);

  // Immutable after construction (safe to read without a lock).
  std::string dir_;
  std::uint64_t salt_ = kSimVersionSalt;

  mutable common::Mutex mu_;
  std::unordered_map<std::uint64_t, Entry> memory_ ARA_GUARDED_BY(mu_);
  std::uint64_t hits_ ARA_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ ARA_GUARDED_BY(mu_) = 0;
  std::uint64_t disk_hits_ ARA_GUARDED_BY(mu_) = 0;

  /// Guards the on-disk tier's tmp-file protocol. Every writer of a given
  /// cache uses the same "<path>.tmp" scratch name, so two concurrent
  /// insert()s of one key would interleave bytes in the tmp file and then
  /// rename the corrupted result into place; serializing writers (but not
  /// readers — rename is atomic, so lookups may race with it freely) keeps
  /// every published file well-formed. Separate from mu_ so file I/O never
  /// blocks the in-memory fast path.
  mutable common::Mutex disk_mu_;
};

}  // namespace ara::dse
