// Parallel design-space-sweep executor.
//
// Every (ArchConfig, Workload) pair of a sweep is an independent simulation:
// each job constructs its own core::System (and therefore its own Simulator,
// stats, RNG streams and trace collector), so nothing but the read-only
// Workload descriptions is shared between workers. A fixed-size pool of
// std::thread workers drains the job list through an atomic cursor and
// writes each result into its pre-allocated, input-order slot — results are
// bit-identical to the serial path regardless of worker count or scheduling
// order (asserted by tests/parallel_sweep_test.cc).
//
// Threading model (see README "Threading model"): one Simulator per thread,
// no cross-thread event scheduling, no shared mutable simulator state. The
// only process-wide state the simulator touches — the log level and the log
// output stream — is atomic/mutex-protected in sim/log.cc.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "dse/sweep.h"
#include "workloads/workload.h"

namespace ara::dse {

class ParallelSweepExecutor {
 public:
  /// `jobs` = number of worker threads; 0 picks
  /// std::thread::hardware_concurrency() (min 1). `shards` = partitioned-
  /// kernel workers inside each simulated point (core::System::set_shards;
  /// 1 = classic serial kernel) — like `jobs`, it cannot affect results.
  explicit ParallelSweepExecutor(unsigned jobs = 0, unsigned shards = 1);

  unsigned jobs() const { return jobs_; }
  unsigned shards() const { return shards_; }

  /// Run every job; results land in input order. Worker threads never share
  /// simulator state. If any job throws, the pool stops claiming further
  /// jobs promptly (jobs already being simulated finish) and the exception
  /// from the lowest-indexed failing job — deterministic across runs and
  /// worker counts — is rethrown on the calling thread.
  std::vector<SweepResult> run(const std::vector<SweepJob>& sweep_jobs) const;

  /// What a worker does with one claimed job: (job, input index, worker).
  /// The default runner simulates the job on a fresh core::System.
  using JobRunner =
      std::function<SweepResult(const SweepJob&, std::size_t, unsigned)>;

  /// run() with an injected per-job runner. This is the pool's real entry
  /// point: tests use it to pin the claim/stop/error-selection contract
  /// (first failure halts claiming, lowest-index error wins) without paying
  /// for real simulations.
  std::vector<SweepResult> run_with(const std::vector<SweepJob>& sweep_jobs,
                                    const JobRunner& runner) const;

  /// Cross product `points` x `workloads`, point-major (the order a nested
  /// `for point / for workload` loop would produce).
  std::vector<SweepResult> run(
      const std::vector<ConfigPoint>& points,
      const std::vector<const workloads::Workload*>& workloads) const;

  /// Single-workload convenience mirroring dse::run_sweep.
  std::vector<SweepResult> run(const std::vector<ConfigPoint>& points,
                               const workloads::Workload& workload) const;

 private:
  unsigned jobs_;
  unsigned shards_;
};

}  // namespace ara::dse
