// Design-space sweep driver: the named configurations the paper evaluates
// and the API to run workloads over them (Figs. 6-9).
//
// The entry point is dse::run(SweepRequest): a request names the
// (config, workload) pairs, the worker count, and (optionally) a
// ResultCache to memoize points through. The pre-PR-3 run_point/run_sweep
// shims have been removed — DESIGN.md "SweepRequest migration" keeps the
// old-to-new call map, and ara_lint's no-deprecated-api rule keeps the
// identifiers from coming back.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/arch_config.h"
#include "core/run_result.h"
#include "dse/result_cache.h"
#include "obs/metrics_export.h"
#include "obs/span.h"
#include "sim/event_queue.h"
#include "workloads/workload.h"

namespace ara::dse {

class PointCoalescer;

struct ConfigPoint {
  std::string label;
  core::ArchConfig config;
};

/// The SPM<->DMA network configurations of Figs. 7-9 for a given island
/// count: proxy crossbar (baseline), 1-ring 16B, 1-ring 32B, 2-ring 32B,
/// 3-ring 32B.
std::vector<ConfigPoint> paper_network_configs(std::uint32_t islands);

/// The island counts of Fig. 6 with 120 ABBs fixed: 3, 6, 12, 24.
const std::vector<std::uint32_t>& paper_island_counts();

/// One unit of sweep work: run `workload` on a fresh System built from
/// `config`. The workload is borrowed — the caller keeps it alive (and
/// unmodified) for the duration of the run.
struct SweepJob {
  core::ArchConfig config;
  const workloads::Workload* workload = nullptr;
};

/// Per-point outcome: the simulation result plus host-side observability.
struct SweepResult {
  core::RunResult result;

  /// Host wall-clock seconds spent simulating this point (0 for a cache
  /// hit — nothing was simulated).
  double wall_seconds = 0;
  /// Discrete events the point's Simulator executed (determinism and
  /// cost-model telemetry). Restored exactly on a cache hit.
  std::uint64_t events = 0;
  /// Index of the worker thread that ran the point (0 .. jobs-1; 0 for a
  /// cache hit).
  unsigned worker = 0;
  /// True when the point was served from a ResultCache instead of being
  /// simulated. All deterministic fields (result, metrics, events,
  /// event-kind counts) are bit-identical either way.
  bool from_cache = false;
  /// True when the point was served by waiting on an identical point
  /// already in flight in a concurrent dse::run (see PointCoalescer) —
  /// nothing was simulated by this request, and the deterministic fields
  /// are bit-identical to a fresh simulation.
  bool coalesced = false;

  /// Full StatRegistry snapshot of the point's System (deterministic;
  /// identical for serial and parallel runs of the same sweep).
  obs::MetricsSnapshot metrics;
  /// Host-side self-profile: per-EventKind dispatch counts and wall-clock
  /// seconds from the point's Simulator. Counts are deterministic; seconds
  /// are host-dependent and never feed back into `metrics` (and are 0 on a
  /// cache hit).
  std::array<sim::EventKindStats, sim::kNumEventKinds> event_kinds{};
};

/// Everything dse::run needs to execute one sweep. Results come back in
/// the order jobs were added, regardless of worker count or cache hits.
struct SweepRequest {
  /// Flat job list; results land in the same order.
  std::vector<SweepJob> sweep;
  /// Worker threads; 0 = hardware concurrency, 1 (default) = serial. Any
  /// value produces bit-identical results (each point owns its simulator).
  unsigned jobs = 1;
  /// Partitioned-kernel workers *inside* each simulated point (the
  /// sim::ShardedSimulator --shards knob; 0 = hardware concurrency, 1 =
  /// classic serial kernel). Like `jobs`, purely an execution resource: any
  /// value produces bit-identical results, and shard count is deliberately
  /// NOT part of the cache key — a warm cache from a --shards 1 run serves
  /// a --shards 4 request the same bytes, which the differential battery
  /// exploits to cross-check the kernels against each other.
  unsigned shards = 1;
  /// Optional memoization tier (borrowed, may be shared across requests):
  /// points whose (config, workload, salt) key hits are restored without
  /// simulating; misses are simulated and inserted.
  ResultCache* cache = nullptr;
  /// Optional in-flight dedup (borrowed, shared across the concurrent
  /// dse::run calls whose duplicate work it should collapse — a sweep
  /// server passes one per process). Identical points submitted while a
  /// simulation of them is still running are served by waiting for that
  /// simulation instead of repeating it; with a coalescer set, duplicate
  /// points *within* one request also simulate only once. Point keys use
  /// cache->salt() when a cache is set, kSimVersionSalt otherwise.
  PointCoalescer* coalescer = nullptr;
  /// Optional request trace (borrowed; null = untraced). dse::run charges
  /// the classification pre-pass to the cache_lookup span, executor time
  /// to simulate, follower waits to coalesce_wait, and counts each
  /// point's outcome. Pure observability: results are bit-identical with
  /// or without a trace.
  obs::RequestTrace* trace = nullptr;

  SweepRequest& add(core::ArchConfig config,
                    const workloads::Workload& workload) {
    sweep.push_back({std::move(config), &workload});
    return *this;
  }
  /// Append every point, all running `workload`.
  SweepRequest& add_points(const std::vector<ConfigPoint>& points,
                           const workloads::Workload& workload) {
    for (const auto& p : points) sweep.push_back({p.config, &workload});
    return *this;
  }
  SweepRequest& with_jobs(unsigned n) {
    jobs = n;
    return *this;
  }
  SweepRequest& with_shards(unsigned n) {
    shards = n;
    return *this;
  }
  SweepRequest& with_cache(ResultCache* c) {
    cache = c;
    return *this;
  }
  SweepRequest& with_coalescer(PointCoalescer* c) {
    coalescer = c;
    return *this;
  }
  SweepRequest& with_trace(obs::RequestTrace* t) {
    trace = t;
    return *this;
  }
};

/// Run the request: probe the cache (when present) for every point,
/// simulate the misses on `request.jobs` workers, insert them back, and
/// return per-point results in input order.
std::vector<SweepResult> run(const SweepRequest& request);

}  // namespace ara::dse
