// Design-space sweep driver: the named configurations the paper evaluates
// and helpers to run workloads over them (Figs. 6-9).
#pragma once

#include <string>
#include <vector>

#include "core/arch_config.h"
#include "core/run_result.h"
#include "core/system.h"
#include "obs/metrics_export.h"
#include "workloads/workload.h"

namespace ara::dse {

struct ConfigPoint {
  std::string label;
  core::ArchConfig config;
};

/// The SPM<->DMA network configurations of Figs. 7-9 for a given island
/// count: proxy crossbar (baseline), 1-ring 16B, 1-ring 32B, 2-ring 32B,
/// 3-ring 32B.
std::vector<ConfigPoint> paper_network_configs(std::uint32_t islands);

/// The island counts of Fig. 6 with 120 ABBs fixed: 3, 6, 12, 24.
const std::vector<std::uint32_t>& paper_island_counts();

/// Build a fresh System for the point and run the workload.
core::RunResult run_point(const core::ArchConfig& config,
                          const workloads::Workload& workload);

/// As above, additionally capturing the point's full StatRegistry snapshot
/// into `*metrics` (ignored when null).
core::RunResult run_point(const core::ArchConfig& config,
                          const workloads::Workload& workload,
                          obs::MetricsSnapshot* metrics);

/// Run a workload on every point; results in the same order. `jobs` worker
/// threads simulate independent points concurrently (see
/// dse/parallel_sweep.h); the default 1 keeps the historical serial
/// behaviour, and any job count produces bit-identical results because each
/// point owns its entire simulator state.
std::vector<core::RunResult> run_sweep(const std::vector<ConfigPoint>& points,
                                       const workloads::Workload& workload,
                                       unsigned jobs = 1);

}  // namespace ara::dse
