// Fixed-width text table printer shared by the benchmark harnesses, so
// every reproduced figure/table prints in a uniform, diff-friendly format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ara::dse {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  /// Comma-separated export (quotes cells containing commas).
  void print_csv(std::ostream& os) const;

  /// Format helpers.
  static std::string num(double v, int precision = 2);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ara::dse
