#include "dse/result_cache.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/config_digest.h"
#include "obs/json_check.h"
#include "obs/json_io.h"

namespace ara::dse {

namespace {

constexpr int kExactDigits = 17;

void member(std::ostream& os, bool& first, const char* name) {
  if (!first) os << ",";
  first = false;
  os << "\"" << name << "\":";
}

void put(std::ostream& os, bool& first, const char* name, double v) {
  member(os, first, name);
  obs::json_number(os, v, kExactDigits);
}

void put(std::ostream& os, bool& first, const char* name, std::uint64_t v) {
  member(os, first, name);
  os << v;
}

void put(std::ostream& os, bool& first, const char* name,
         const std::string& v) {
  member(os, first, name);
  os << "\"";
  obs::json_escape(os, v);
  os << "\"";
}

std::string hex_key(std::uint64_t key) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(key));
  return buf;
}

bool get(const obs::JsonValue& obj, const char* name, double* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->as_double();
  return true;
}

bool get(const obs::JsonValue& obj, const char* name, std::uint64_t* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_number()) return false;
  *out = v->as_u64();
  return true;
}

bool get(const obs::JsonValue& obj, const char* name, std::string* out) {
  const obs::JsonValue* v = obj.find(name);
  if (v == nullptr || !v->is_string()) return false;
  *out = v->text;
  return true;
}

}  // namespace

ResultCache::ResultCache(std::string dir, std::uint64_t salt)
    : dir_(std::move(dir)), salt_(salt) {}

std::uint64_t ResultCache::key(const core::ArchConfig& config,
                               const workloads::Workload& workload,
                               std::uint64_t salt) {
  std::string text = "[salt]\nversion=" + std::to_string(salt) + "\n";
  text += core::canonical_text(config);
  text += core::canonical_text(workload);
  return core::fnv1a64(text);
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  return dir_ + "/" + hex_key(key) + ".json";
}

std::string ResultCache::to_json(std::uint64_t key, std::uint64_t salt,
                                 const Entry& entry) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  put(os, first, "key", hex_key(key));
  put(os, first, "salt", salt);
  const auto& r = entry.result;
  member(os, first, "result");
  {
    os << "{";
    bool f = true;
    put(os, f, "workload", r.workload);
    put(os, f, "config", r.config);
    put(os, f, "makespan", r.makespan);
    put(os, f, "jobs", r.jobs);
    member(os, f, "energy");
    {
      os << "{";
      bool e = true;
      put(os, e, "abb_j", r.energy.abb_j);
      put(os, e, "spm_j", r.energy.spm_j);
      put(os, e, "abb_spm_xbar_j", r.energy.abb_spm_xbar_j);
      put(os, e, "island_net_j", r.energy.island_net_j);
      put(os, e, "dma_j", r.energy.dma_j);
      put(os, e, "noc_j", r.energy.noc_j);
      put(os, e, "l2_j", r.energy.l2_j);
      put(os, e, "dram_j", r.energy.dram_j);
      put(os, e, "mono_j", r.energy.mono_j);
      put(os, e, "leakage_j", r.energy.leakage_j);
      put(os, e, "platform_j", r.energy.platform_j);
      os << "}";
    }
    member(os, f, "area");
    {
      os << "{";
      bool a = true;
      put(os, a, "islands_mm2", r.area.islands_mm2);
      put(os, a, "noc_mm2", r.area.noc_mm2);
      put(os, a, "l2_mm2", r.area.l2_mm2);
      put(os, a, "mc_mm2", r.area.mc_mm2);
      os << "}";
    }
    put(os, f, "avg_abb_utilization", r.avg_abb_utilization);
    put(os, f, "peak_abb_utilization", r.peak_abb_utilization);
    put(os, f, "l2_hit_rate", r.l2_hit_rate);
    put(os, f, "dram_bytes", r.dram_bytes);
    put(os, f, "chains_direct", r.chains_direct);
    put(os, f, "chains_spilled", r.chains_spilled);
    put(os, f, "tasks_queued", r.tasks_queued);
    put(os, f, "noc_peak_link_utilization", r.noc_peak_link_utilization);
    put(os, f, "job_latency_mean", r.job_latency_mean);
    put(os, f, "job_latency_p50", r.job_latency_p50);
    put(os, f, "job_latency_p95", r.job_latency_p95);
    put(os, f, "job_latency_max", r.job_latency_max);
    os << "}";
  }
  put(os, first, "events", entry.events);
  member(os, first, "event_kinds");
  {
    os << "{";
    bool k = true;
    for (std::size_t i = 0; i < sim::kNumEventKinds; ++i) {
      put(os, k, sim::event_kind_name(static_cast<sim::EventKind>(i)),
          entry.event_kinds[i].count);
    }
    os << "}";
  }
  member(os, first, "metrics");
  obs::MetricsExporter::write_snapshot_exact(os, entry.metrics);
  os << "}\n";
  return os.str();
}

bool ResultCache::from_json(const std::string& text, std::uint64_t key,
                            std::uint64_t salt, Entry* out) {
  // Full grammar validation first: a truncated or hand-edited file must be
  // a clean miss.
  if (!obs::validate_json(text)) return false;
  obs::JsonValue root;
  if (!obs::parse_json(text, &root) || !root.is_object()) return false;

  std::string stored_key;
  std::uint64_t stored_salt = 0;
  if (!get(root, "key", &stored_key) || stored_key != hex_key(key)) {
    return false;
  }
  if (!get(root, "salt", &stored_salt) || stored_salt != salt) return false;

  const obs::JsonValue* result = root.find("result");
  const obs::JsonValue* metrics = root.find("metrics");
  if (result == nullptr || !result->is_object() || metrics == nullptr) {
    return false;
  }

  Entry e;
  auto& r = e.result;
  const obs::JsonValue* energy = result->find("energy");
  const obs::JsonValue* area = result->find("area");
  if (energy == nullptr || !energy->is_object() || area == nullptr ||
      !area->is_object()) {
    return false;
  }
  bool ok = get(*result, "workload", &r.workload) &&
            get(*result, "config", &r.config) &&
            get(*result, "makespan", &r.makespan) &&
            get(*result, "jobs", &r.jobs) &&
            get(*energy, "abb_j", &r.energy.abb_j) &&
            get(*energy, "spm_j", &r.energy.spm_j) &&
            get(*energy, "abb_spm_xbar_j", &r.energy.abb_spm_xbar_j) &&
            get(*energy, "island_net_j", &r.energy.island_net_j) &&
            get(*energy, "dma_j", &r.energy.dma_j) &&
            get(*energy, "noc_j", &r.energy.noc_j) &&
            get(*energy, "l2_j", &r.energy.l2_j) &&
            get(*energy, "dram_j", &r.energy.dram_j) &&
            get(*energy, "mono_j", &r.energy.mono_j) &&
            get(*energy, "leakage_j", &r.energy.leakage_j) &&
            get(*energy, "platform_j", &r.energy.platform_j) &&
            get(*area, "islands_mm2", &r.area.islands_mm2) &&
            get(*area, "noc_mm2", &r.area.noc_mm2) &&
            get(*area, "l2_mm2", &r.area.l2_mm2) &&
            get(*area, "mc_mm2", &r.area.mc_mm2) &&
            get(*result, "avg_abb_utilization", &r.avg_abb_utilization) &&
            get(*result, "peak_abb_utilization", &r.peak_abb_utilization) &&
            get(*result, "l2_hit_rate", &r.l2_hit_rate) &&
            get(*result, "dram_bytes", &r.dram_bytes) &&
            get(*result, "chains_direct", &r.chains_direct) &&
            get(*result, "chains_spilled", &r.chains_spilled) &&
            get(*result, "tasks_queued", &r.tasks_queued) &&
            get(*result, "noc_peak_link_utilization",
                &r.noc_peak_link_utilization) &&
            get(*result, "job_latency_mean", &r.job_latency_mean) &&
            get(*result, "job_latency_p50", &r.job_latency_p50) &&
            get(*result, "job_latency_p95", &r.job_latency_p95) &&
            get(*result, "job_latency_max", &r.job_latency_max) &&
            get(root, "events", &e.events);
  if (!ok) return false;

  const obs::JsonValue* kinds = root.find("event_kinds");
  if (kinds == nullptr || !kinds->is_object()) return false;
  for (std::size_t i = 0; i < sim::kNumEventKinds; ++i) {
    if (!get(*kinds, sim::event_kind_name(static_cast<sim::EventKind>(i)),
             &e.event_kinds[i].count)) {
      return false;
    }
  }
  if (!obs::MetricsExporter::snapshot_from_json(*metrics, &e.metrics)) {
    return false;
  }
  *out = std::move(e);
  return true;
}

bool ResultCache::lookup(std::uint64_t key, Entry* out) {
  {
    common::MutexLock lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
      *out = it->second;
      ++hits_;
      return true;
    }
  }
  if (!dir_.empty()) {
    std::ifstream in(entry_path(key));
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      Entry e;
      if (from_json(buf.str(), key, salt_, &e)) {
        common::MutexLock lock(mu_);
        memory_[key] = e;
        ++hits_;
        ++disk_hits_;
        *out = std::move(e);
        return true;
      }
      // Corrupt / stale file: fall through to a miss; the fresh result
      // overwrites it on insert.
    }
  }
  common::MutexLock lock(mu_);
  ++misses_;
  return false;
}

void ResultCache::write_disk_entry(std::uint64_t key,
                                   const Entry& entry) const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // Write-then-rename so a concurrent reader never sees a partial file.
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp";
  std::ofstream os(tmp, std::ios::trunc);
  if (os) {
    os << to_json(key, salt_, entry);
    os.close();
    if (os) {
      std::filesystem::rename(tmp, path, ec);
    }
    if (ec) std::filesystem::remove(tmp, ec);
  }
}

void ResultCache::insert(std::uint64_t key, const Entry& entry) {
  Entry clean = entry;
  for (auto& k : clean.event_kinds) k.seconds = 0;  // host-dependent
  if (!dir_.empty()) {
    // All writers share the "<path>.tmp" scratch name; concurrent inserts
    // of the same key must not interleave bytes in it (see disk_mu_).
    common::MutexLock lock(disk_mu_);
    write_disk_entry(key, clean);
  }
  common::MutexLock lock(mu_);
  memory_[key] = std::move(clean);
}

std::uint64_t ResultCache::hits() const {
  common::MutexLock lock(mu_);
  return hits_;
}

std::uint64_t ResultCache::misses() const {
  common::MutexLock lock(mu_);
  return misses_;
}

std::uint64_t ResultCache::disk_hits() const {
  common::MutexLock lock(mu_);
  return disk_hits_;
}

std::size_t ResultCache::size() const {
  common::MutexLock lock(mu_);
  return memory_.size();
}

}  // namespace ara::dse
