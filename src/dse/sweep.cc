#include "dse/sweep.h"

#include <cstddef>
#include <map>
#include <utility>

#include "common/config_error.h"
#include "dse/coalesce.h"
#include "dse/parallel_sweep.h"
#include "obs/span.h"

namespace ara::dse {

namespace {

/// Fill one result slot from a cache/coalescer entry. Host-dependent
/// fields (wall seconds, worker) stay 0: nothing was simulated here.
void fill_from_entry(SweepResult* out, ResultCache::Entry entry) {
  out->result = std::move(entry.result);
  out->metrics = std::move(entry.metrics);
  out->events = entry.events;
  out->event_kinds = entry.event_kinds;
}

/// The deterministic portion of a fresh result, as the cache stores it
/// (per-kind wall seconds zeroed — they never round-trip).
ResultCache::Entry entry_of(const SweepResult& fresh) {
  ResultCache::Entry entry;
  entry.result = fresh.result;
  entry.metrics = fresh.metrics;
  entry.events = fresh.events;
  entry.event_kinds = fresh.event_kinds;
  for (auto& k : entry.event_kinds) k.seconds = 0;
  return entry;
}

}  // namespace

std::vector<ConfigPoint> paper_network_configs(std::uint32_t islands) {
  std::vector<ConfigPoint> points;
  points.push_back({"proxy-xbar", core::ArchConfig::paper_baseline(islands)});
  points.push_back({"1-ring,16B", core::ArchConfig::ring_design(islands, 1, 16)});
  points.push_back({"1-ring,32B", core::ArchConfig::ring_design(islands, 1, 32)});
  points.push_back({"2-ring,32B", core::ArchConfig::ring_design(islands, 2, 32)});
  points.push_back({"3-ring,32B", core::ArchConfig::ring_design(islands, 3, 32)});
  return points;
}

const std::vector<std::uint32_t>& paper_island_counts() {
  static const std::vector<std::uint32_t> counts = {3, 6, 12, 24};
  return counts;
}

std::vector<SweepResult> run(const SweepRequest& request) {
  std::vector<SweepResult> results(request.sweep.size());
  // Observability only: trace spans/counts never influence which points
  // simulate or what they produce (null trace = identical control flow).
  obs::RequestTrace* trace = request.trace;

  const std::uint64_t salt =
      request.cache != nullptr ? request.cache->salt() : kSimVersionSalt;
  const bool keyed =
      request.cache != nullptr || request.coalescer != nullptr;

  // Classification pre-pass (serial: a lookup is a hash probe or one file
  // read, never a simulation). Each point lands in exactly one bucket:
  //  - cache hit: slot filled immediately;
  //  - follower: an identical point is in flight in a concurrent dse::run;
  //    we wait for its published entry after our own misses are done;
  //  - alias: duplicate of a point already claimed earlier in THIS request
  //    (coalescer only) — copied from the leader's fresh result;
  //  - miss: queued for the executor (claiming leadership of its key when
  //    a coalescer is set).
  std::vector<std::size_t> miss_slot;
  std::vector<std::uint64_t> miss_key;
  std::vector<SweepJob> miss_jobs;
  std::vector<PointCoalescer::Ticket> miss_ticket;  // aligned w/ miss_jobs
  struct Follower {
    std::size_t slot = 0;
    std::uint64_t key = 0;
    PointCoalescer::Ticket ticket;
  };
  std::vector<Follower> followers;
  struct Alias {
    std::size_t slot = 0;
    std::size_t miss = 0;  // index into miss_jobs
  };
  std::vector<Alias> aliases;
  std::map<std::uint64_t, std::size_t> claimed_here;  // key -> miss index

  {
    obs::ScopedSpan lookup_span(trace, obs::Phase::kCacheLookup);
    for (std::size_t i = 0; i < request.sweep.size(); ++i) {
      const SweepJob& job = request.sweep[i];
      config_check(job.workload != nullptr, "SweepJob has no workload");
      std::uint64_t key = 0;
      if (keyed) key = ResultCache::key(job.config, *job.workload, salt);
      if (request.cache != nullptr) {
        ResultCache::Entry entry;
        if (request.cache->lookup(key, &entry)) {
          fill_from_entry(&results[i], std::move(entry));
          results[i].from_cache = true;
          if (trace != nullptr) ++trace->hits;
          continue;
        }
      }
      if (request.coalescer != nullptr) {
        const auto local = claimed_here.find(key);
        if (local != claimed_here.end()) {
          aliases.push_back({i, local->second});
          if (trace != nullptr) ++trace->aliases;
          continue;
        }
        PointCoalescer::Ticket ticket = request.coalescer->join(key);
        if (!ticket.leader) {
          followers.push_back({i, key, std::move(ticket)});
          if (trace != nullptr) ++trace->followers;
          continue;
        }
        claimed_here.emplace(key, miss_jobs.size());
        miss_ticket.push_back(std::move(ticket));
      }
      miss_slot.push_back(i);
      miss_key.push_back(key);
      miss_jobs.push_back(job);
      if (trace != nullptr) ++trace->misses;
    }
  }

  if (!miss_jobs.empty()) {
    obs::ScopedSpan simulate_span(trace, obs::Phase::kSimulate);
    const ParallelSweepExecutor executor(request.jobs, request.shards);
    std::vector<SweepResult> fresh;
    try {
      fresh = executor.run(miss_jobs);
    } catch (...) {
      // A failing sweep must not strand concurrent followers of the keys
      // this request claimed: abandon them so they self-simulate.
      for (const auto& ticket : miss_ticket) {
        request.coalescer->abandon(ticket);
      }
      throw;
    }
    for (std::size_t m = 0; m < fresh.size(); ++m) {
      if (keyed) {
        const ResultCache::Entry entry = entry_of(fresh[m]);
        // Cache before publish: a request that joins after the publish
        // retires the key must find the entry in the cache, not start a
        // redundant simulation.
        if (request.cache != nullptr) {
          request.cache->insert(miss_key[m], entry);
        }
        if (request.coalescer != nullptr) {
          request.coalescer->publish(miss_ticket[m], entry);
        }
      }
      results[miss_slot[m]] = std::move(fresh[m]);
    }
  }

  // Duplicates of our own fresh points: simulated once, fanned out.
  for (const Alias& alias : aliases) {
    fill_from_entry(&results[alias.slot],
                    entry_of(results[miss_slot[alias.miss]]));
    results[alias.slot].coalesced = true;
  }

  // Followers last: by now our own simulations are done, so waiting on
  // other requests' leaders is all that remains. An abandoned key (its
  // leader threw) falls back to a local simulation — same pure function
  // of the key, so the result is bit-identical to what the leader would
  // have published.
  std::vector<std::size_t> orphan_slot;
  std::vector<std::uint64_t> orphan_key;
  std::vector<SweepJob> orphan_jobs;
  {
    obs::ScopedSpan wait_span(trace, obs::Phase::kCoalesceWait);
    for (const Follower& f : followers) {
      ResultCache::Entry entry;
      if (request.coalescer->wait(f.ticket, &entry) ==
          PointCoalescer::Outcome::kReady) {
        fill_from_entry(&results[f.slot], std::move(entry));
        results[f.slot].coalesced = true;
      } else {
        orphan_slot.push_back(f.slot);
        orphan_key.push_back(f.key);
        orphan_jobs.push_back(request.sweep[f.slot]);
        // The leader abandoned this key, so the point is ultimately a
        // fresh simulation here, not a coalesced wait.
        if (trace != nullptr) {
          --trace->followers;
          ++trace->misses;
        }
      }
    }
  }
  if (!orphan_jobs.empty()) {
    obs::ScopedSpan simulate_span(trace, obs::Phase::kSimulate);
    const ParallelSweepExecutor executor(request.jobs, request.shards);
    auto fresh = executor.run(orphan_jobs);
    for (std::size_t m = 0; m < fresh.size(); ++m) {
      if (request.cache != nullptr) {
        request.cache->insert(orphan_key[m], entry_of(fresh[m]));
      }
      results[orphan_slot[m]] = std::move(fresh[m]);
    }
  }
  return results;
}

}  // namespace ara::dse
