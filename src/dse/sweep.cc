#include "dse/sweep.h"

#include <utility>

#include "dse/parallel_sweep.h"

namespace ara::dse {

std::vector<ConfigPoint> paper_network_configs(std::uint32_t islands) {
  std::vector<ConfigPoint> points;
  points.push_back({"proxy-xbar", core::ArchConfig::paper_baseline(islands)});
  points.push_back({"1-ring,16B", core::ArchConfig::ring_design(islands, 1, 16)});
  points.push_back({"1-ring,32B", core::ArchConfig::ring_design(islands, 1, 32)});
  points.push_back({"2-ring,32B", core::ArchConfig::ring_design(islands, 2, 32)});
  points.push_back({"3-ring,32B", core::ArchConfig::ring_design(islands, 3, 32)});
  return points;
}

const std::vector<std::uint32_t>& paper_island_counts() {
  static const std::vector<std::uint32_t> counts = {3, 6, 12, 24};
  return counts;
}

core::RunResult run_point(const core::ArchConfig& config,
                          const workloads::Workload& workload) {
  return run_point(config, workload, nullptr);
}

core::RunResult run_point(const core::ArchConfig& config,
                          const workloads::Workload& workload,
                          obs::MetricsSnapshot* metrics) {
  core::System system(config);
  auto result = system.run(workload);
  if (metrics != nullptr) {
    *metrics = obs::MetricsSnapshot::capture(system.stats());
  }
  return result;
}

std::vector<core::RunResult> run_sweep(const std::vector<ConfigPoint>& points,
                                       const workloads::Workload& workload,
                                       unsigned jobs) {
  ParallelSweepExecutor executor(jobs == 0 ? 0 : jobs);
  auto sweep = executor.run(points, workload);
  std::vector<core::RunResult> results;
  results.reserve(sweep.size());
  for (auto& s : sweep) {
    results.push_back(std::move(s.result));
  }
  return results;
}

}  // namespace ara::dse
