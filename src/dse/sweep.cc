#include "dse/sweep.h"

#include <utility>

#include "common/config_error.h"
#include "dse/parallel_sweep.h"

namespace ara::dse {

std::vector<ConfigPoint> paper_network_configs(std::uint32_t islands) {
  std::vector<ConfigPoint> points;
  points.push_back({"proxy-xbar", core::ArchConfig::paper_baseline(islands)});
  points.push_back({"1-ring,16B", core::ArchConfig::ring_design(islands, 1, 16)});
  points.push_back({"1-ring,32B", core::ArchConfig::ring_design(islands, 1, 32)});
  points.push_back({"2-ring,32B", core::ArchConfig::ring_design(islands, 2, 32)});
  points.push_back({"3-ring,32B", core::ArchConfig::ring_design(islands, 3, 32)});
  return points;
}

const std::vector<std::uint32_t>& paper_island_counts() {
  static const std::vector<std::uint32_t> counts = {3, 6, 12, 24};
  return counts;
}

std::vector<SweepResult> run(const SweepRequest& request) {
  std::vector<SweepResult> results(request.sweep.size());

  // Cache pre-pass (serial: a lookup is a hash probe or one file read,
  // never a simulation). Hits fill their slots immediately; misses queue
  // for the executor.
  std::vector<std::size_t> miss_slot;
  std::vector<std::uint64_t> miss_key;
  std::vector<SweepJob> miss_jobs;
  for (std::size_t i = 0; i < request.sweep.size(); ++i) {
    const SweepJob& job = request.sweep[i];
    config_check(job.workload != nullptr, "SweepJob has no workload");
    if (request.cache != nullptr) {
      const std::uint64_t key = ResultCache::key(job.config, *job.workload,
                                                 request.cache->salt());
      ResultCache::Entry entry;
      if (request.cache->lookup(key, &entry)) {
        SweepResult& out = results[i];
        out.result = std::move(entry.result);
        out.metrics = std::move(entry.metrics);
        out.events = entry.events;
        out.event_kinds = entry.event_kinds;
        out.from_cache = true;
        continue;
      }
      miss_key.push_back(key);
    }
    miss_slot.push_back(i);
    miss_jobs.push_back(job);
  }

  if (!miss_jobs.empty()) {
    const ParallelSweepExecutor executor(request.jobs);
    auto fresh = executor.run(miss_jobs);
    for (std::size_t m = 0; m < fresh.size(); ++m) {
      if (request.cache != nullptr) {
        ResultCache::Entry entry;
        entry.result = fresh[m].result;
        entry.metrics = fresh[m].metrics;
        entry.events = fresh[m].events;
        entry.event_kinds = fresh[m].event_kinds;
        request.cache->insert(miss_key[m], entry);
      }
      results[miss_slot[m]] = std::move(fresh[m]);
    }
  }
  return results;
}

}  // namespace ara::dse
