#include "dse/coalesce.h"

#include <utility>

namespace ara::dse {

struct PointCoalescer::Slot {
  enum class State { kPending, kReady, kAbandoned };
  State state = State::kPending;
  ResultCache::Entry entry;
};

PointCoalescer::Ticket PointCoalescer::join(std::uint64_t key) {
  common::MutexLock lock(mu_);
  Ticket ticket;
  ticket.key = key;
  auto it = slots_.find(key);
  if (it != slots_.end()) {
    ticket.leader = false;
    ticket.slot = it->second;
    ++coalesced_;
  } else {
    ticket.leader = true;
    ticket.slot = std::make_shared<Slot>();
    slots_.emplace(key, ticket.slot);
  }
  return ticket;
}

void PointCoalescer::publish(const Ticket& ticket,
                             const ResultCache::Entry& entry) {
  common::MutexLock lock(mu_);
  if (ticket.slot->state != Slot::State::kPending) return;
  ticket.slot->entry = entry;
  ticket.slot->state = Slot::State::kReady;
  slots_.erase(ticket.key);
  cv_.notify_all();
}

void PointCoalescer::abandon(const Ticket& ticket) {
  common::MutexLock lock(mu_);
  if (ticket.slot->state != Slot::State::kPending) return;
  ticket.slot->state = Slot::State::kAbandoned;
  slots_.erase(ticket.key);
  cv_.notify_all();
}

PointCoalescer::Outcome PointCoalescer::wait(const Ticket& ticket,
                                             ResultCache::Entry* out) {
  common::MutexLock lock(mu_);
  while (ticket.slot->state == Slot::State::kPending) cv_.wait(mu_);
  if (ticket.slot->state == Slot::State::kAbandoned) {
    return Outcome::kAbandoned;
  }
  *out = ticket.slot->entry;
  return Outcome::kReady;
}

std::uint64_t PointCoalescer::coalesced() const {
  common::MutexLock lock(mu_);
  return coalesced_;
}

std::size_t PointCoalescer::in_flight() const {
  common::MutexLock lock(mu_);
  return slots_.size();
}

}  // namespace ara::dse
