// SystemReport: detailed post-run component report — per-island ABB/DMA/
// network utilization, memory-system behaviour, runtime statistics — the
// drill-down behind a RunResult. Used by examples and for debugging design
// points (e.g. confirming the paper's Sec. 5.5 observation that the
// island<->NoC link saturates).
#pragma once

#include <ostream>

#include "core/run_result.h"
#include "core/system.h"
#include "obs/metrics_export.h"

namespace ara::dse {

class SystemReport {
 public:
  /// Snapshot the component stats of `system` after a run with `result`.
  SystemReport(core::System& system, const core::RunResult& result);

  /// Full human-readable report.
  void print(std::ostream& os) const;

  /// The point's full StatRegistry snapshot (drives the latency table in
  /// print() and is exportable via obs::MetricsExporter).
  const obs::MetricsSnapshot& metrics() const { return metrics_; }

  /// --- aggregates (exposed for tests) ---
  double mean_island_ni_utilization() const { return mean_ni_util_; }
  double mean_dma_utilization() const { return mean_dma_util_; }
  double mean_mc_utilization() const { return mean_mc_util_; }
  double mean_tlb_hit_rate() const { return mean_tlb_hit_; }

 private:
  struct IslandRow {
    IslandId id;
    double abb_util;
    double peak_abb_util;
    double dma_util;
    double ni_util;
    Bytes net_bytes;
    double tlb_hit;
  };

  core::RunResult result_;
  std::vector<IslandRow> islands_;
  std::vector<double> mc_util_;
  double l2_hit_ = 0;
  double mean_ni_util_ = 0;
  double mean_dma_util_ = 0;
  double mean_mc_util_ = 0;
  double mean_tlb_hit_ = 0;
  std::uint64_t gam_requests_ = 0;
  std::uint64_t gam_queued_ = 0;
  std::uint64_t interrupts_ = 0;
  double noc_peak_ = 0;
  obs::MetricsSnapshot metrics_;
};

}  // namespace ara::dse
