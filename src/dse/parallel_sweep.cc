#include "dse/parallel_sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/config_error.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/system.h"
#include "obs/clock.h"

namespace ara::dse {

namespace {

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// The exception from the lowest-indexed failing job. Keeping the winner by
/// job index (not completion order) makes which error surfaces from a
/// multi-failure sweep deterministic across runs and worker counts — the
/// same error a serial run would hit first. The only cross-thread mutable
/// state the pool shares besides the job cursor and the stop flag.
class ErrorSlot {
 public:
  void capture(std::size_t index, std::exception_ptr error)
      ARA_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (!error_ || index < index_) {
      error_ = std::move(error);
      index_ = index;
    }
  }
  void rethrow_if_set() ARA_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  common::Mutex mu_;
  std::exception_ptr error_ ARA_GUARDED_BY(mu_);
  std::size_t index_ ARA_GUARDED_BY(mu_) = 0;
};

SweepResult run_one(const SweepJob& job, unsigned worker, unsigned shards) {
  config_check(job.workload != nullptr, "SweepJob has no workload");
  SweepResult out;
  out.worker = worker;
  // Host wall-clock is observability output only (SweepResult.wall_seconds);
  // it never feeds back into simulation state or results. Read through the
  // obs::MonotonicClock seam — the sanctioned wall-clock site — so this
  // file stays clean under ara_lint's no-wall-clock rule.
  obs::MonotonicClock& clock = obs::MonotonicClock::host();
  const std::uint64_t t0_ns = clock.now_ns();
  core::System system(job.config);
  system.set_shards(shards);
  system.simulator().set_self_profiling(true);
  out.result = system.run(*job.workload);
  out.events = system.simulator().events_processed();
  out.metrics = obs::MetricsSnapshot::capture(system.stats());
  out.event_kinds = system.simulator().kind_stats();
  out.wall_seconds = static_cast<double>(clock.now_ns() - t0_ns) * 1e-9;
  return out;
}

}  // namespace

ParallelSweepExecutor::ParallelSweepExecutor(unsigned jobs, unsigned shards)
    : jobs_(resolve_jobs(jobs)), shards_(shards) {}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<SweepJob>& sweep_jobs) const {
  const unsigned shards = shards_;
  return run_with(sweep_jobs,
                  [shards](const SweepJob& job, std::size_t, unsigned worker) {
                    return run_one(job, worker, shards);
                  });
}

std::vector<SweepResult> ParallelSweepExecutor::run_with(
    const std::vector<SweepJob>& sweep_jobs, const JobRunner& runner) const {
  std::vector<SweepResult> results(sweep_jobs.size());

  // Work distribution: an atomic cursor instead of static striding, so a
  // slow point (24 islands, chaining-heavy workload) doesn't idle the other
  // workers. Each worker writes only results[i] for the i values it claimed,
  // so result slots are race-free by construction.
  //
  // `failed` stops the pool promptly on first error: once any job throws,
  // claiming further jobs would only burn the pool on a sweep that is going
  // to rethrow anyway (a long-running server shares this pool across
  // requests, so a doomed request must not starve the others). Jobs already
  // in flight finish; unclaimed jobs stay default-initialized.
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> failed{false};
  ErrorSlot error;

  auto drain = [&](unsigned worker) {
    while (!failed.load(std::memory_order_acquire)) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= sweep_jobs.size()) return;
      try {
        results[i] = runner(sweep_jobs[i], i, worker);
      } catch (...) {
        error.capture(i, std::current_exception());
        failed.store(true, std::memory_order_release);
      }
    }
  };

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(jobs_, sweep_jobs.size()));
  if (workers <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(drain, w);
    }
    for (auto& t : pool) t.join();
  }

  error.rethrow_if_set();
  return results;
}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<ConfigPoint>& points,
    const std::vector<const workloads::Workload*>& workloads) const {
  std::vector<SweepJob> sweep_jobs;
  sweep_jobs.reserve(points.size() * workloads.size());
  for (const auto& p : points) {
    for (const auto* wl : workloads) {
      sweep_jobs.push_back({p.config, wl});
    }
  }
  return run(sweep_jobs);
}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<ConfigPoint>& points,
    const workloads::Workload& workload) const {
  return run(points, std::vector<const workloads::Workload*>{&workload});
}

}  // namespace ara::dse
