#include "dse/parallel_sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>

#include "common/config_error.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/system.h"

namespace ara::dse {

namespace {

unsigned resolve_jobs(unsigned jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// First exception thrown by any worker, in completion order. The only
/// cross-thread mutable state the pool shares besides the job cursor.
class ErrorSlot {
 public:
  void capture(std::exception_ptr error) ARA_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (!first_) first_ = std::move(error);
  }
  void rethrow_if_set() ARA_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    if (first_) std::rethrow_exception(first_);
  }

 private:
  common::Mutex mu_;
  std::exception_ptr first_ ARA_GUARDED_BY(mu_);
};

SweepResult run_one(const SweepJob& job, unsigned worker) {
  config_check(job.workload != nullptr, "SweepJob has no workload");
  SweepResult out;
  out.worker = worker;
  // Host wall-clock is observability output only (SweepResult.wall_seconds);
  // it never feeds back into simulation state or results.
  const auto t0 = std::chrono::steady_clock::now();  // ara-lint: allow(no-wall-clock)
  core::System system(job.config);
  system.simulator().set_self_profiling(true);
  out.result = system.run(*job.workload);
  out.events = system.simulator().events_processed();
  out.metrics = obs::MetricsSnapshot::capture(system.stats());
  out.event_kinds = system.simulator().kind_stats();
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)  // ara-lint: allow(no-wall-clock)
          .count();
  return out;
}

}  // namespace

ParallelSweepExecutor::ParallelSweepExecutor(unsigned jobs)
    : jobs_(resolve_jobs(jobs)) {}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<SweepJob>& sweep_jobs) const {
  std::vector<SweepResult> results(sweep_jobs.size());

  // Work distribution: an atomic cursor instead of static striding, so a
  // slow point (24 islands, chaining-heavy workload) doesn't idle the other
  // workers. Each worker writes only results[i] for the i values it claimed,
  // so result slots are race-free by construction.
  std::atomic<std::size_t> cursor{0};
  ErrorSlot error;

  auto drain = [&](unsigned worker) {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= sweep_jobs.size()) return;
      try {
        results[i] = run_one(sweep_jobs[i], worker);
      } catch (...) {
        error.capture(std::current_exception());
      }
    }
  };

  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(jobs_, sweep_jobs.size()));
  if (workers <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(drain, w);
    }
    for (auto& t : pool) t.join();
  }

  error.rethrow_if_set();
  return results;
}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<ConfigPoint>& points,
    const std::vector<const workloads::Workload*>& workloads) const {
  std::vector<SweepJob> sweep_jobs;
  sweep_jobs.reserve(points.size() * workloads.size());
  for (const auto& p : points) {
    for (const auto* wl : workloads) {
      sweep_jobs.push_back({p.config, wl});
    }
  }
  return run(sweep_jobs);
}

std::vector<SweepResult> ParallelSweepExecutor::run(
    const std::vector<ConfigPoint>& points,
    const workloads::Workload& workload) const {
  return run(points, std::vector<const workloads::Workload*>{&workload});
}

}  // namespace ara::dse
